// Discrete-event scheduler, FIFO/pooled resources, disk & network models,
// rate series and sliding-window counters.

#include <gtest/gtest.h>

#include "sim/cpu.h"
#include "sim/disk.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace gdedup {
namespace {

// -------------------------------------------------------------- Scheduler

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(msec(30), [&] { order.push_back(3); });
  s.at(msec(10), [&] { order.push_back(1); });
  s.at(msec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Scheduler, FifoAmongSameTime) {
  Scheduler s;
  std::vector<int> order;
  s.at(msec(5), [&] { order.push_back(1); });
  s.at(msec(5), [&] { order.push_back(2); });
  s.at(msec(5), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  SimTime fired = -1;
  s.at(sec(1), [&] {
    s.after(msec(500), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, sec(1) + msec(500));
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.at(sec(2), [&] {
    s.at(sec(1), [&] { EXPECT_EQ(s.now(), sec(2)); });
  });
  s.run();
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  auto id = s.at(msec(10), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(sec(5));
  EXPECT_EQ(s.now(), sec(5));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  s.at(sec(1), [&] { count++; });
  s.at(sec(3), [&] { count++; });
  s.run_until(sec(2));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), sec(2));
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.after(msec(1), recurse);
  };
  s.after(0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
}

// -------------------------------------------------------------- Resources

TEST(FifoResource, SerializesJobs) {
  FifoResource r;
  EXPECT_EQ(r.submit(0, 100), 100);
  EXPECT_EQ(r.submit(0, 100), 200);  // queued behind the first
  EXPECT_EQ(r.submit(500, 100), 600);  // idle gap before the third
  EXPECT_EQ(r.cumulative_busy_ns(), 300u);
}

TEST(FifoResource, BacklogReflectsQueue) {
  FifoResource r;
  r.submit(0, 1000);
  EXPECT_EQ(r.backlog(0), 1000);
  EXPECT_EQ(r.backlog(400), 600);
  EXPECT_EQ(r.backlog(2000), 0);
}

TEST(PooledResource, ParallelismUpToServers) {
  PooledResource p(2);
  EXPECT_EQ(p.submit(0, 100), 100);
  EXPECT_EQ(p.submit(0, 100), 100);  // second core
  EXPECT_EQ(p.submit(0, 100), 200);  // queues
}

TEST(PooledResource, UtilizationMath) {
  EXPECT_DOUBLE_EQ(PooledResource::utilization(0, 500, 0, 1000, 1), 0.5);
  EXPECT_DOUBLE_EQ(PooledResource::utilization(0, 500, 0, 1000, 2), 0.25);
}

// ------------------------------------------------------------------ Disk

TEST(Ssd, LatencyPlusBandwidth) {
  Scheduler s;
  SsdConfig cfg;
  cfg.read_latency = usec(100);
  cfg.read_bw_bytes_per_sec = 1e9;  // 1 GB/s
  cfg.journal_write_amplification = 1.0;
  SsdModel d(&s, cfg);
  SimTime done = 0;
  d.read(1'000'000, [&] { done = s.now(); });  // 1MB at 1GB/s = 1ms
  s.run();
  EXPECT_EQ(done, usec(100) + msec(1));
  EXPECT_EQ(d.read_ops(), 1u);
  EXPECT_EQ(d.read_bytes(), 1'000'000u);
}

TEST(Ssd, WritesQueueBehindReads) {
  Scheduler s;
  SsdConfig cfg;
  cfg.read_latency = usec(10);
  cfg.write_latency = usec(10);
  cfg.read_bw_bytes_per_sec = 1e9;
  cfg.write_bw_bytes_per_sec = 1e9;
  cfg.journal_write_amplification = 1.0;
  SsdModel d(&s, cfg);
  SimTime r_done = 0, w_done = 0;
  d.read(1'000'000, [&] { r_done = s.now(); });
  d.write(1'000'000, [&] { w_done = s.now(); });
  s.run();
  EXPECT_GT(w_done, r_done);  // FIFO: write waited for the read
}

TEST(Ssd, JournalAmplificationSlowsWrites) {
  Scheduler s;
  SsdConfig fast;
  fast.journal_write_amplification = 1.0;
  SsdConfig amp = fast;
  amp.journal_write_amplification = 2.0;
  SsdModel d1(&s, fast), d2(&s, amp);
  const SimTime t1 = d1.write(10'000'000);
  const SimTime t2 = d2.write(10'000'000);
  EXPECT_GT(t2, t1);
}

// --------------------------------------------------------------- Network

TEST(Network, TransferTimeMatchesBandwidth) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.nic_bw_bytes_per_sec = 1.25e9;  // 10 Gbit
  cfg.hop_latency = usec(50);
  cfg.per_message_overhead_bytes = 0;
  Network net(&s, 2, cfg);
  SimTime done = 0;
  net.send(0, 1, 1'250'000, [&] { done = s.now(); });  // 1ms serialize
  s.run();
  // tx 1ms + 50us hop + rx 1ms
  EXPECT_EQ(done, msec(1) + usec(50) + msec(1));
}

TEST(Network, SenderSerializationQueues) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.nic_bw_bytes_per_sec = 1e9;
  cfg.hop_latency = 0;
  cfg.per_message_overhead_bytes = 0;
  Network net(&s, 3, cfg);
  SimTime d1 = 0, d2 = 0;
  net.send(0, 1, 1'000'000, [&] { d1 = s.now(); });
  net.send(0, 2, 1'000'000, [&] { d2 = s.now(); });
  s.run();
  // Second message waits for the first to leave node 0's NIC.
  EXPECT_GE(d2, d1 + msec(1));
}

TEST(Network, LoopbackIsCheap) {
  Scheduler s;
  NetworkConfig cfg;
  Network net(&s, 2, cfg);
  SimTime done = 0;
  net.send(1, 1, 100'000'000, [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done, cfg.loopback_latency);
}

TEST(Network, CountsBytes) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.per_message_overhead_bytes = 100;
  Network net(&s, 2, cfg);
  net.send(0, 1, 900, nullptr);
  EXPECT_EQ(net.total_bytes_sent(), 1000u);
}

// ------------------------------------------------------------------ CPU

TEST(Cpu, CoresRunInParallel) {
  Scheduler s;
  CpuConfig cfg;
  cfg.cores = 4;
  CpuModel cpu(&s, cfg);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; i++) {
    cpu.execute(msec(10), [&] { done.push_back(s.now()); });
  }
  cpu.execute(msec(10), [&] { done.push_back(s.now()); });
  s.run();
  ASSERT_EQ(done.size(), 5u);
  for (int i = 0; i < 4; i++) EXPECT_EQ(done[static_cast<size_t>(i)], msec(10));
  EXPECT_EQ(done[4], msec(20));  // fifth job waited for a core
}

TEST(Cpu, CostsScaleWithBytes) {
  Scheduler s;
  CpuConfig cfg;
  CpuModel cpu(&s, cfg);
  EXPECT_GT(cpu.fingerprint_cost(64 * 1024), cpu.fingerprint_cost(16 * 1024));
  EXPECT_LT(cpu.fingerprint_cost(32 * 1024, /*sha1=*/true),
            cpu.fingerprint_cost(32 * 1024, /*sha1=*/false));
  EXPECT_GT(cpu.compress_cost(1 << 20), cpu.crc_cost(1 << 20));
}

TEST(Cpu, UtilizationWindow) {
  Scheduler s;
  CpuConfig cfg;
  cfg.cores = 2;
  CpuModel cpu(&s, cfg);
  const uint64_t before = cpu.cumulative_busy_ns();
  cpu.execute(msec(10));
  s.run();
  // 10ms busy on one of two cores over a 10ms window = 50%.
  EXPECT_NEAR(cpu.utilization(before, cpu.cumulative_busy_ns(), 0, msec(10)),
              0.5, 1e-9);
}

// --------------------------------------------------------------- Metrics

TEST(RateSeries, BucketsPerSecond) {
  RateSeries rs(kSecond);
  rs.add(msec(100), 10);
  rs.add(msec(900), 20);
  rs.add(msec(1500), 5);
  auto rates = rs.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
  EXPECT_DOUBLE_EQ(rs.total(), 35.0);
  EXPECT_DOUBLE_EQ(rs.mean_rate(0, 2), 17.5);
}

TEST(RateSeries, SubSecondBuckets) {
  RateSeries rs(msec(100));
  rs.add(msec(50), 1);
  auto rates = rs.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);  // 1 per 100ms = 10/s
}

TEST(SlidingWindow, CountsRecentOnly) {
  SlidingWindowCounter w(kSecond);
  w.add(msec(0));
  w.add(msec(500));
  w.add(msec(900));
  EXPECT_EQ(w.count(msec(900)), 3u);
  EXPECT_EQ(w.count(msec(1400)), 2u);  // t=0 aged out
  EXPECT_EQ(w.count(msec(2500)), 0u);
}

TEST(SlidingWindow, WeightedAdds) {
  SlidingWindowCounter w(kSecond);
  w.add(0, 10);
  w.add(msec(100), 5);
  EXPECT_EQ(w.count(msec(200)), 15u);
}

}  // namespace
}  // namespace gdedup
