// LZ codec: round-trip property tests across content classes and sizes,
// corruption rejection, compression-effectiveness expectations.

#include "compress/lz.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/content.h"

namespace gdedup {
namespace {

void expect_roundtrip(const Buffer& in) {
  Buffer c = LzCodec::compress(in);
  auto out = LzCodec::decompress(c);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  ASSERT_EQ(out->size(), in.size());
  EXPECT_TRUE(out->content_equals(in));
}

TEST(Lz, EmptyInput) { expect_roundtrip(Buffer()); }

TEST(Lz, TinyInputs) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 15u}) {
    Buffer b(n, 'q');
    expect_roundtrip(b);
  }
}

TEST(Lz, AllZerosCompressesHard) {
  Buffer b(32 * 1024);
  Buffer c = LzCodec::compress(b);
  EXPECT_LT(c.size(), b.size() / 50);
  expect_roundtrip(b);
}

TEST(Lz, RepeatingPattern) {
  Buffer b(10000);
  uint8_t* p = b.mutable_data();
  for (size_t i = 0; i < b.size(); i++) p[i] = "pattern!"[i % 8];
  Buffer c = LzCodec::compress(b);
  EXPECT_LT(c.size(), b.size() / 10);
  expect_roundtrip(b);
}

TEST(Lz, RandomDataStoredRaw) {
  Rng rng(2);
  Buffer b(8192);
  rng.fill(b.mutable_data(), b.size());
  Buffer c = LzCodec::compress(b);
  // Incompressible input must not blow up: stored-raw cap is size + 5.
  EXPECT_LE(c.size(), b.size() + 5);
  expect_roundtrip(b);
}

TEST(Lz, TextLikeContent) {
  std::string text;
  for (int i = 0; i < 500; i++) {
    text += "the quick brown fox jumps over the lazy dog #" +
            std::to_string(i % 37) + "\n";
  }
  Buffer b = Buffer::copy_of(text);
  Buffer c = LzCodec::compress(b);
  EXPECT_LT(c.size(), b.size() / 2);
  expect_roundtrip(b);
}

TEST(Lz, OverlappingMatchCopy) {
  // "aaaa..." triggers matches that overlap their own output.
  Buffer b(1000, 'a');
  expect_roundtrip(b);
}

TEST(Lz, LongMatchExtendedLengths) {
  Buffer b(100000);
  uint8_t* p = b.mutable_data();
  for (size_t i = 0; i < 64; i++) p[i] = static_cast<uint8_t>(i * 7);
  for (size_t i = 64; i < b.size(); i++) p[i] = p[i - 64];
  Buffer c = LzCodec::compress(b);
  EXPECT_LT(c.size(), 4096u);
  expect_roundtrip(b);
}

TEST(Lz, DecompressRejectsTruncation) {
  Buffer b(4096, 'x');
  Buffer c = LzCodec::compress(b);
  Buffer cut = c.slice(0, c.size() / 2);
  auto r = LzCodec::decompress(Buffer::copy_of(cut.span()));
  EXPECT_FALSE(r.is_ok());
}

TEST(Lz, DecompressRejectsBadFlag) {
  Buffer c = LzCodec::compress(Buffer::copy_of("hello world hello world"));
  Buffer bad = c;
  bad.mutable_data()[0] = 9;
  EXPECT_FALSE(LzCodec::decompress(bad).is_ok());
}

TEST(Lz, DecompressRejectsShortStream) {
  EXPECT_FALSE(LzCodec::decompress(Buffer::copy_of("ab")).is_ok());
}

// Property sweep over the synthetic content generator at multiple
// compressibility levels — the exact buffers the experiments store.
class LzContentSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LzContentSweep, RoundTripAndMonotoneRatio) {
  const auto [size_kb, compressible] = GetParam();
  Buffer b = workload::BlockContent::make(/*seed=*/mix64(size_kb * 31 + 7),
                                          static_cast<size_t>(size_kb) * 1024,
                                          compressible);
  Buffer c = LzCodec::compress(b);
  expect_roundtrip(b);
  if (compressible >= 0.5) {
    EXPECT_LT(c.size(), b.size() * 0.7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LzContentSweep,
    ::testing::Combine(::testing::Values(1, 4, 16, 32, 64, 256),
                       ::testing::Values(0.0, 0.3, 0.5, 0.9)));

// Fuzz-ish property: random slices of random data round-trip.
TEST(Lz, RandomizedRoundTrips) {
  Rng rng(77);
  for (int iter = 0; iter < 50; iter++) {
    const size_t n = rng.below(20000);
    Buffer b(n);
    // Mix of runs and noise.
    uint8_t* p = b.mutable_data();
    size_t i = 0;
    while (i < n) {
      if (rng.chance(0.5)) {
        const size_t run = std::min<size_t>(rng.below(200) + 1, n - i);
        const uint8_t v = static_cast<uint8_t>(rng.below(256));
        for (size_t j = 0; j < run; j++) p[i++] = v;
      } else {
        const size_t run = std::min<size_t>(rng.below(100) + 1, n - i);
        rng.fill(p + i, run);
        i += run;
      }
    }
    expect_roundtrip(b);
  }
}

}  // namespace
}  // namespace gdedup
