// Status/Result, encoding, histogram, bloom filter, LRU, CRC32C, options.

#include <gtest/gtest.h>

#include "common/bloom_filter.h"
#include "common/crc32.h"
#include "common/encoding.h"
#include "common/histogram.h"
#include "common/lru.h"
#include "common/random.h"
#include "common/options.h"
#include "common/status.h"

namespace gdedup {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  auto s = Status::not_found("obj x");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.message(), "obj x");
  EXPECT_EQ(s.to_string(), "NotFound: obj x");
}

TEST(Status, AllCodesHaveNames) {
  for (Code c : {Code::kOk, Code::kNotFound, Code::kExists,
                 Code::kInvalidArgument, Code::kOutOfRange, Code::kIoError,
                 Code::kUnavailable, Code::kCorruption, Code::kBusy,
                 Code::kTimedOut, Code::kAborted}) {
    EXPECT_NE(code_name(c), "Unknown");
  }
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrorAccess) {
  Result<int> r(Status::io_error("disk gone"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// -------------------------------------------------------------- Encoding

TEST(Encoding, RoundTripScalars) {
  Encoder e;
  e.put_u8(7);
  e.put_u16(0xBEEF);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  e.put_bool(true);
  e.put_string("hello");
  e.put_bytes(Buffer::copy_of("raw"));
  Buffer b = e.finish();

  Decoder d(b);
  uint8_t v8;
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  bool vb;
  std::string vs;
  Buffer vbuf;
  ASSERT_TRUE(d.get_u8(&v8).is_ok());
  ASSERT_TRUE(d.get_u16(&v16).is_ok());
  ASSERT_TRUE(d.get_u32(&v32).is_ok());
  ASSERT_TRUE(d.get_u64(&v64).is_ok());
  ASSERT_TRUE(d.get_bool(&vb).is_ok());
  ASSERT_TRUE(d.get_string(&vs).is_ok());
  ASSERT_TRUE(d.get_bytes(&vbuf).is_ok());
  EXPECT_EQ(v8, 7);
  EXPECT_EQ(v16, 0xBEEF);
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(vb);
  EXPECT_EQ(vs, "hello");
  EXPECT_EQ(vbuf.view(), "raw");
  EXPECT_TRUE(d.at_end());
}

TEST(Encoding, ShortInputIsCorruption) {
  Encoder e;
  e.put_u32(10);  // claims 10-byte string follows
  Buffer b = e.finish();
  Decoder d(b);
  std::string s;
  auto st = d.get_string(&s);
  EXPECT_EQ(st.code(), Code::kCorruption);
}

TEST(Encoding, TruncatedScalar) {
  Buffer b = Buffer::copy_of("ab");
  Decoder d(b);
  uint64_t v;
  EXPECT_EQ(d.get_u64(&v).code(), Code::kCorruption);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 32; v++) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_NEAR(h.mean(), 15.5, 1e-9);
}

TEST(Histogram, PercentileAccuracy) {
  Histogram h;
  Rng rng(1);
  std::vector<uint64_t> vals;
  for (int i = 0; i < 100000; i++) {
    const uint64_t v = rng.below(10'000'000) + 1;
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const uint64_t exact = vals[static_cast<size_t>(q * (vals.size() - 1))];
    const uint64_t approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * exact)
        << "q=" << q;
  }
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(100);
  b.record(200);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_NEAR(a.mean(), 200.0, 1e-9);
}

TEST(Histogram, FormatHelpers) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(1.26e6), "1.26 ms");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
}

// ------------------------------------------------------------ BloomFilter

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000, 0.01);
  for (uint64_t k = 0; k < 1000; k++) bf.insert(mix64(k));
  for (uint64_t k = 0; k < 1000; k++) {
    EXPECT_TRUE(bf.maybe_contains(mix64(k)));
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter bf(10000, 0.01);
  for (uint64_t k = 0; k < 10000; k++) bf.insert(mix64(k));
  int fp = 0;
  const int probes = 50000;
  for (int k = 0; k < probes; k++) {
    if (bf.maybe_contains(mix64(0xF00D0000ull + k))) fp++;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.03);
  EXPECT_NEAR(bf.estimated_fp_rate(), 0.01, 0.01);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(100, 0.01);
  bf.insert(12345);
  bf.clear();
  EXPECT_FALSE(bf.maybe_contains(12345));
  EXPECT_EQ(bf.inserted(), 0u);
}

// ------------------------------------------------------------------ LRU

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruMap<int, std::string> lru(2);
  EXPECT_FALSE(lru.put(1, "a").has_value());
  EXPECT_FALSE(lru.put(2, "b").has_value());
  auto evicted = lru.put(3, "c");
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
}

TEST(Lru, GetRefreshesRecency) {
  LruMap<int, int> lru(2);
  lru.put(1, 10);
  lru.put(2, 20);
  ASSERT_NE(lru.get(1), nullptr);
  auto evicted = lru.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);  // 1 was refreshed, 2 is the victim
}

TEST(Lru, PeekDoesNotRefresh) {
  LruMap<int, int> lru(2);
  lru.put(1, 10);
  lru.put(2, 20);
  EXPECT_NE(lru.peek(1), nullptr);
  auto evicted = lru.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);  // peek kept 1 cold
}

TEST(Lru, OverwriteKeepsSize) {
  LruMap<int, int> lru(2);
  lru.put(1, 10);
  lru.put(1, 11);
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(*lru.get(1), 11);
}

TEST(Lru, EraseAndColdest) {
  LruMap<int, int> lru(3);
  lru.put(1, 10);
  lru.put(2, 20);
  ASSERT_NE(lru.coldest(), nullptr);
  EXPECT_EQ(lru.coldest()->first, 1);
  EXPECT_TRUE(lru.erase(1));
  EXPECT_FALSE(lru.erase(1));
  EXPECT_EQ(lru.coldest()->first, 2);
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  // "123456789"
  const char* digits = "123456789";
  EXPECT_EQ(crc32c({reinterpret_cast<const uint8_t*>(digits), 9}),
            0xe3069283u);
}

TEST(Crc32c, Rfc3720Vectors) {
  // The remaining RFC 3720 B.4 check values.
  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; i++) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
  std::vector<uint8_t> descending(32);
  for (size_t i = 0; i < 32; i++) descending[i] = static_cast<uint8_t>(31 - i);
  EXPECT_EQ(crc32c(descending), 0x113fdb5cu);
}

TEST(Crc32c, SplitAnywhereMatchesOneShot) {
  // Chaining through the seed must equal the one-shot CRC for every split
  // point; the sweep drags the slicing-by-8 / hardware 8-byte inner loop
  // across every alignment and remainder length.
  Rng rng(13);
  Buffer data(100);
  rng.fill(data.mutable_data(), data.size());
  const uint32_t whole = crc32c(data.span());
  for (size_t cut = 0; cut <= data.size(); cut++) {
    const uint32_t head = crc32c({data.data(), cut});
    EXPECT_EQ(crc32c({data.data() + cut, data.size() - cut}, head), whole)
        << "cut " << cut;
  }
}

TEST(Crc32c, DetectsBitFlip) {
  Buffer b = Buffer::copy_of("some payload for checksum");
  const uint32_t before = crc32c(b.span());
  b.mutable_data()[5] ^= 0x40;
  EXPECT_NE(crc32c(b.span()), before);
}

TEST(Crc32c, SeedChaining) {
  Buffer whole = Buffer::copy_of("abcdefgh");
  // CRC of the whole differs from CRC of a part — sanity on seed plumbing.
  EXPECT_NE(crc32c(whole.span()), crc32c(whole.slice(0, 4).span()));
}

// ---------------------------------------------------------------- Options

TEST(Options, ParsesKeyValues) {
  const char* argv[] = {"prog", "alpha=1", "name=hello", "rate=2.5",
                        "flag=true", "hex=0x10"};
  Options o(6, const_cast<char**>(argv));
  EXPECT_TRUE(o.has("alpha"));
  EXPECT_FALSE(o.has("missing"));
  EXPECT_EQ(o.get_int("alpha", 0), 1);
  EXPECT_EQ(o.get("name", ""), "hello");
  EXPECT_DOUBLE_EQ(o.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_EQ(o.get_int("hex", 0), 16);
  o.check_unused();  // everything queried: must not abort
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options o(1, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("n", 42), 42);
  EXPECT_EQ(o.get("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(o.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(o.get_bool("b", false));
  o.check_unused();
}

TEST(Options, BoolSpellings) {
  const char* argv[] = {"prog", "a=1", "b=yes", "c=true", "d=0", "e=no"};
  Options o(6, const_cast<char**>(argv));
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
  EXPECT_FALSE(o.get_bool("e", true));
  o.check_unused();
}

TEST(Options, ValueMayContainEquals) {
  const char* argv[] = {"prog", "expr=a=b"};
  Options o(2, const_cast<char**>(argv));
  EXPECT_EQ(o.get("expr", ""), "a=b");
  o.check_unused();
}

}  // namespace
}  // namespace gdedup
