// End-to-end cluster I/O without dedup: replicated and EC pools through
// the client, replica consistency, xattrs, block-device striping, and the
// chunk-pool verbs (put-ref / deref) in isolation.

#include <gtest/gtest.h>

#include "test_util.h"

namespace gdedup {
namespace {

using testutil::random_buffer;

class ClusterIo : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(testutil::small_cluster_config());
    rep_ = cluster_->create_replicated_pool("rep", 2);
    ec_ = cluster_->create_ec_pool("ec", 2, 1);
    client_ = std::make_unique<RadosClient>(cluster_.get(),
                                            cluster_->client_node(0));
  }

  std::unique_ptr<Cluster> cluster_;
  PoolId rep_ = -1;
  PoolId ec_ = -1;
  std::unique_ptr<RadosClient> client_;
};

TEST_F(ClusterIo, ReplicatedWriteReadRoundTrip) {
  Buffer data = random_buffer(64 * 1024, 1);
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 0, data).is_ok());
  auto r = sync_read(*cluster_, *client_, rep_, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST_F(ClusterIo, PartialReadAndOffsetWrite) {
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 0,
                         Buffer::copy_of("0123456789"))
                  .is_ok());
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 4,
                         Buffer::copy_of("XY"))
                  .is_ok());
  auto r = sync_read(*cluster_, *client_, rep_, "obj", 2, 6);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->view(), "23XY67");
}

TEST_F(ClusterIo, ReadMissingObjectFails) {
  auto r = sync_read(*cluster_, *client_, rep_, "ghost", 0, 0);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST_F(ClusterIo, WritesLandOnAllReplicas) {
  Buffer data = random_buffer(8 * 1024, 2);
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 0, data).is_ok());
  auto acting = cluster_->osdmap().acting(rep_, "obj");
  ASSERT_EQ(acting.size(), 2u);
  for (OsdId o : acting) {
    const ObjectStore* st = cluster_->osd(o)->store_if_exists(rep_);
    ASSERT_NE(st, nullptr) << "osd " << o;
    auto local = st->read({rep_, "obj"}, 0, 0);
    ASSERT_TRUE(local.is_ok()) << "osd " << o;
    EXPECT_TRUE(local->content_equals(data)) << "osd " << o;
  }
  // Replicas live on distinct hosts.
  EXPECT_NE(cluster_->node_of_osd(acting[0]), cluster_->node_of_osd(acting[1]));
}

TEST_F(ClusterIo, RemoveDeletesAllReplicas) {
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 0,
                         Buffer::copy_of("bye"))
                  .is_ok());
  auto acting = cluster_->osdmap().acting(rep_, "obj");
  ASSERT_TRUE(sync_remove(*cluster_, *client_, rep_, "obj").is_ok());
  for (OsdId o : acting) {
    EXPECT_FALSE(cluster_->osd(o)->local_exists(rep_, "obj"));
  }
  EXPECT_FALSE(sync_read(*cluster_, *client_, rep_, "obj", 0, 0).is_ok());
}

TEST_F(ClusterIo, StatReportsSize) {
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "obj", 100,
                         Buffer::copy_of("xxxx"))
                  .is_ok());
  auto r = sync_stat(*cluster_, *client_, rep_, "obj");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 104u);
}

TEST_F(ClusterIo, LatencyIsPlausible) {
  // One 8KB replicated write: two network hops + journal writes; at the
  // calibrated constants this lands in the sub-2ms band the paper reports
  // for its Original configuration.
  const SimTime before = cluster_->sched().now();
  ASSERT_TRUE(
      sync_write(*cluster_, *client_, rep_, "obj", 0, random_buffer(8192, 3))
          .is_ok());
  const SimTime lat = cluster_->sched().now() - before;
  EXPECT_GT(lat, usec(100));
  EXPECT_LT(lat, msec(5));
}

// ------------------------------------------------------------------- EC

TEST_F(ClusterIo, EcWriteReadRoundTrip) {
  Buffer data = random_buffer(100 * 1024, 4);
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "obj", 0, data).is_ok());
  auto r = sync_read(*cluster_, *client_, ec_, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST_F(ClusterIo, EcShardsAreSpreadAndSmaller) {
  Buffer data = random_buffer(90 * 1024, 5);
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "obj", 0, data).is_ok());
  auto acting = cluster_->osdmap().acting(ec_, "obj");
  ASSERT_EQ(acting.size(), 3u);  // k=2, m=1
  uint64_t total_stored = 0;
  for (OsdId o : acting) {
    const ObjectStore* st = cluster_->osd(o)->store_if_exists(ec_);
    ASSERT_NE(st, nullptr);
    auto sz = st->size({ec_, "obj"});
    ASSERT_TRUE(sz.is_ok());
    EXPECT_EQ(sz.value(), 45u * 1024);  // data/k
    total_stored += sz.value();
  }
  // 1.5x amplification instead of 2x.
  EXPECT_EQ(total_stored, data.size() * 3 / 2);
}

TEST_F(ClusterIo, EcPartialOverwrite) {
  Buffer data = random_buffer(64 * 1024, 6);
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "obj", 0, data).is_ok());
  Buffer patch = random_buffer(1000, 7);
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "obj", 10000, patch).is_ok());
  auto r = sync_read(*cluster_, *client_, ec_, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  Buffer expect = data;
  expect.write_at(10000, patch);
  EXPECT_TRUE(r->content_equals(expect));
}

TEST_F(ClusterIo, EcReadSurvivesOneOsdDown) {
  Buffer data = random_buffer(80 * 1024, 8);
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "obj", 0, data).is_ok());
  auto acting = cluster_->osdmap().acting(ec_, "obj");
  cluster_->fail_osd(acting[1]);
  auto r = sync_read(*cluster_, *client_, ec_, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  cluster_->revive_osd(acting[1], /*wipe_store=*/false);
}

TEST_F(ClusterIo, EcRemove) {
  ASSERT_TRUE(
      sync_write(*cluster_, *client_, ec_, "obj", 0, random_buffer(4096, 9))
          .is_ok());
  ASSERT_TRUE(sync_remove(*cluster_, *client_, ec_, "obj").is_ok());
  EXPECT_FALSE(sync_read(*cluster_, *client_, ec_, "obj", 0, 0).is_ok());
}

TEST_F(ClusterIo, EcSmallWriteCostsMoreThanReplicated) {
  // The Figure 12 mechanism: EC random small writes pay read-modify-write
  // plus parity; replicated writes do not.
  Buffer big = random_buffer(1 << 20, 10);
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "r", 0, big).is_ok());
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "e", 0, big).is_ok());

  Buffer small = random_buffer(8 * 1024, 11);
  SimTime t0 = cluster_->sched().now();
  ASSERT_TRUE(sync_write(*cluster_, *client_, rep_, "r", 64 * 1024, small).is_ok());
  const SimTime rep_lat = cluster_->sched().now() - t0;
  t0 = cluster_->sched().now();
  ASSERT_TRUE(sync_write(*cluster_, *client_, ec_, "e", 64 * 1024, small).is_ok());
  const SimTime ec_lat = cluster_->sched().now() - t0;
  EXPECT_GT(ec_lat, rep_lat * 2);
}

// ----------------------------------------------------------- chunk verbs

OsdOp make_put(PoolId pool, const std::string& cid, Buffer data,
               const ChunkRef& ref) {
  OsdOp op;
  op.type = OsdOpType::kChunkPutRef;
  op.pool = pool;
  op.oid = cid;
  op.data = std::move(data);
  op.ref = ref;
  return op;
}

OsdOp make_deref(PoolId pool, const std::string& cid, const ChunkRef& ref) {
  OsdOp op;
  op.type = OsdOpType::kChunkDeref;
  op.pool = pool;
  op.oid = cid;
  op.ref = ref;
  return op;
}

class ChunkVerbs : public ClusterIo {
 protected:
  Status run_op(OsdOp op) {
    const OsdId primary = cluster_->osdmap().primary(op.pool, op.oid);
    Status out = Status::timed_out("no reply");
    bool done = false;
    send_osd_op(*cluster_, cluster_->client_node(0), primary, std::move(op),
                [&](OsdOpReply rep) {
                  out = rep.status;
                  done = true;
                });
    while (!done && cluster_->sched().step()) {
    }
    return out;
  }

  std::vector<ChunkRef> refs_of(const std::string& cid) {
    const OsdId primary = cluster_->osdmap().primary(rep_, cid);
    auto raw = cluster_->osd(primary)->local_getxattr(rep_, cid, kRefsXattr);
    if (!raw.is_ok()) return {};
    auto refs = decode_refs(raw.value());
    return refs.is_ok() ? refs.value() : std::vector<ChunkRef>{};
  }
};

TEST_F(ChunkVerbs, PutCreatesWithOneRef) {
  Buffer data = random_buffer(32 * 1024, 20);
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c1", data, {0, "src", 0})).is_ok());
  EXPECT_EQ(refs_of("sha256:c1").size(), 1u);
  const OsdId primary = cluster_->osdmap().primary(rep_, "sha256:c1");
  auto stored = cluster_->osd(primary)->store(rep_).read({rep_, "sha256:c1"}, 0, 0);
  ASSERT_TRUE(stored.is_ok());
  EXPECT_TRUE(stored->content_equals(data));
}

TEST_F(ChunkVerbs, DuplicatePutAddsRefNotData) {
  Buffer data = random_buffer(32 * 1024, 21);
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c2", data, {0, "a", 0})).is_ok());
  const auto before = cluster_->pool_stats(rep_);
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c2", data, {0, "b", 0})).is_ok());
  const auto after = cluster_->pool_stats(rep_);
  EXPECT_EQ(refs_of("sha256:c2").size(), 2u);
  EXPECT_EQ(before.stored_data_bytes, after.stored_data_bytes);
  EXPECT_EQ(before.objects, after.objects);
}

TEST_F(ChunkVerbs, PutIsIdempotentPerRef) {
  Buffer data = random_buffer(1024, 22);
  const ChunkRef ref{0, "same", 64};
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c3", data, ref)).is_ok());
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c3", data, ref)).is_ok());
  EXPECT_EQ(refs_of("sha256:c3").size(), 1u);
}

TEST_F(ChunkVerbs, DerefRemovesAtZero) {
  Buffer data = random_buffer(1024, 23);
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c4", data, {0, "a", 0})).is_ok());
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c4", data, {0, "b", 0})).is_ok());
  ASSERT_TRUE(run_op(make_deref(rep_, "sha256:c4", {0, "a", 0})).is_ok());
  EXPECT_EQ(refs_of("sha256:c4").size(), 1u);
  const OsdId primary = cluster_->osdmap().primary(rep_, "sha256:c4");
  EXPECT_TRUE(cluster_->osd(primary)->local_exists(rep_, "sha256:c4"));
  ASSERT_TRUE(run_op(make_deref(rep_, "sha256:c4", {0, "b", 0})).is_ok());
  EXPECT_FALSE(cluster_->osd(primary)->local_exists(rep_, "sha256:c4"));
}

TEST_F(ChunkVerbs, DerefIsIdempotent) {
  Buffer data = random_buffer(1024, 24);
  ASSERT_TRUE(run_op(make_put(rep_, "sha256:c5", data, {0, "a", 0})).is_ok());
  ASSERT_TRUE(run_op(make_deref(rep_, "sha256:c5", {0, "ghost", 0})).is_ok());
  EXPECT_EQ(refs_of("sha256:c5").size(), 1u);
  ASSERT_TRUE(run_op(make_deref(rep_, "sha256:c5", {0, "a", 0})).is_ok());
  ASSERT_TRUE(run_op(make_deref(rep_, "sha256:c5", {0, "a", 0})).is_ok());
}

TEST_F(ChunkVerbs, ConcurrentPutsOfSameNewChunkSerialize) {
  // Two puts of the same brand-new chunk racing: both must survive as
  // refs — the per-object op queue prevents the create/create race.
  Buffer data = random_buffer(32 * 1024, 25);
  const OsdId primary = cluster_->osdmap().primary(rep_, "sha256:c6");
  int done = 0;
  for (int i = 0; i < 2; i++) {
    OsdOp op = make_put(rep_, "sha256:c6", data,
                        {0, "src" + std::to_string(i), 0});
    send_osd_op(*cluster_, cluster_->client_node(i), primary, std::move(op),
                [&](OsdOpReply rep) {
                  EXPECT_TRUE(rep.status.is_ok());
                  done++;
                });
  }
  while (done < 2 && cluster_->sched().step()) {
  }
  EXPECT_EQ(refs_of("sha256:c6").size(), 2u);
}

// ----------------------------------------------------------- BlockDevice

TEST_F(ClusterIo, BlockDeviceStripesAcrossObjects) {
  BlockDevice bd(client_.get(), rep_, "img", 32ull << 20, 4 << 20);
  Buffer data = random_buffer(6 << 20, 30);  // spans two objects
  ASSERT_TRUE(sync_bdev_write(*cluster_, bd, 3 << 20, data).is_ok());
  auto r = sync_bdev_read(*cluster_, bd, 3 << 20, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  EXPECT_NE(bd.object_for(0), bd.object_for(5 << 20));
}

TEST_F(ClusterIo, BlockDeviceUnwrittenReadsZero) {
  BlockDevice bd(client_.get(), rep_, "img2", 8ull << 20);
  ASSERT_TRUE(
      sync_bdev_write(*cluster_, bd, 0, Buffer::copy_of("head")).is_ok());
  auto r = sync_bdev_read(*cluster_, bd, 1 << 20, 4096);
  ASSERT_TRUE(r.is_ok());
  for (size_t i = 0; i < r->size(); i++) ASSERT_EQ((*r)[i], 0);
}

}  // namespace
}  // namespace gdedup
