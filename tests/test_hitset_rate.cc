// HitSet hotness semantics and watermark rate control.

#include <gtest/gtest.h>

#include "dedup/hitset.h"
#include "dedup/rate_controller.h"

namespace gdedup {
namespace {

// ----------------------------------------------------------------- HitSet

TEST(HitSet, ColdByDefault) {
  HitSet hs(kSecond, 4, 2);
  EXPECT_FALSE(hs.is_hot("obj", 0));
}

TEST(HitSet, HotAfterThresholdAccesses) {
  HitSet hs(kSecond, 4, 2);
  hs.access("obj", msec(100));
  EXPECT_FALSE(hs.is_hot("obj", msec(150)));
  hs.access("obj", msec(200));
  EXPECT_TRUE(hs.is_hot("obj", msec(250)));
}

TEST(HitSet, AccessesAcrossPeriodsAccumulate) {
  HitSet hs(kSecond, 4, 2);
  hs.access("obj", msec(500));   // period 0
  hs.access("obj", msec(1500));  // period 1
  EXPECT_TRUE(hs.is_hot("obj", msec(1600)));
}

TEST(HitSet, CoolsDownWhenHistoryAges) {
  HitSet hs(kSecond, 2, 2);  // retain 2 periods
  hs.access("hot", msec(100));
  hs.access("hot", msec(200));
  EXPECT_TRUE(hs.is_hot("hot", msec(300)));
  // 5 seconds later, both the counts and the retained blooms are gone.
  EXPECT_FALSE(hs.is_hot("hot", sec(5) + msec(1)));
}

TEST(HitSet, IndependentObjects) {
  HitSet hs(kSecond, 4, 2);
  hs.access("a", msec(10));
  hs.access("a", msec(20));
  EXPECT_TRUE(hs.is_hot("a", msec(30)));
  EXPECT_FALSE(hs.is_hot("b", msec(30)));
}

TEST(HitSet, ThresholdRespected) {
  HitSet hs(kSecond, 8, 5);
  for (int i = 0; i < 4; i++) hs.access("x", msec(i * 10));
  EXPECT_FALSE(hs.is_hot("x", msec(100)));
  hs.access("x", msec(110));
  EXPECT_TRUE(hs.is_hot("x", msec(120)));
}

// --------------------------------------------------------- RateController

DedupTierConfig tier_cfg(bool rate_on = true) {
  DedupTierConfig c;
  c.mode = DedupMode::kPostProcess;
  c.rate_control = rate_on;
  c.low_watermark_iops = 100;
  c.high_watermark_iops = 1000;
  c.ios_per_dedup_mid = 100;
  c.ios_per_dedup_high = 500;
  return c;
}

TEST(RateController, DisabledGrantsEverything) {
  RateController rc(tier_cfg(false));
  EXPECT_EQ(rc.take(0, 64), 64);
}

TEST(RateController, UnthrottledBelowLowWatermark) {
  RateController rc(tier_cfg());
  // 50 foreground ops in the last second: below low watermark (100).
  for (int i = 0; i < 50; i++) rc.on_foreground(msec(i));
  EXPECT_EQ(rc.take(msec(100), 64), 64);
}

TEST(RateController, MidRegimeOnePerHundred) {
  RateController rc(tier_cfg());
  // 500 fg IOPS: between watermarks -> credit 1/100 per op = 5 credits.
  for (int i = 0; i < 500; i++) rc.on_foreground(msec(i));
  const int granted = rc.take(msec(600), 64);
  EXPECT_GE(granted, 3);
  EXPECT_LE(granted, 5);
}

TEST(RateController, HighRegimeOnePerFiveHundred) {
  RateController rc(tier_cfg());
  // Warm into the high regime (2000 IOPS), then drain accumulated credits.
  SimTime t = 0;
  for (int i = 0; i < 2000; i++) {
    rc.on_foreground(t);
    t += kMillisecond / 2;
  }
  (void)rc.take(t, 1000);
  // Steady state: 1000 further ops at 2000 IOPS accrue 1000/500 = 2.
  for (int i = 0; i < 1000; i++) {
    rc.on_foreground(t);
    t += kMillisecond / 2;
  }
  const int granted = rc.take(t, 64);
  EXPECT_GE(granted, 1);
  EXPECT_LE(granted, 3);
}

TEST(RateController, CreditsAreConsumed) {
  RateController rc(tier_cfg());
  for (int i = 0; i < 600; i++) rc.on_foreground(msec(i));
  const int first = rc.take(msec(700), 64);
  EXPECT_GT(first, 0);
  EXPECT_EQ(rc.take(msec(700), 64), 0);  // drained
}

TEST(RateController, DedupDominatedByForeground) {
  // Property (paper 4.4.2): in the throttled regimes, granted dedup I/Os
  // never exceed foreground I/Os divided by the configured ratio.
  RateController rc(tier_cfg());
  int granted_total = 0;
  int fg_total = 0;
  SimTime t = 0;
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 300; i++) {
      rc.on_foreground(t);
      fg_total++;
      t += kMillisecond;  // 1000 IOPS -> mid/high boundary region
    }
    granted_total += rc.take(t, 64);
  }
  EXPECT_LE(granted_total, fg_total / 100 + 1);
  EXPECT_GT(granted_total, 0);
}

TEST(HitSet, LongIdleGapFastForwardsInConstantWork) {
  // Regression: rotate() used to walk the sealing loop once per elapsed
  // period, so a long-idle object paid O(gap/period) work (and sealed
  // expired hotness into history) on its first access back.  The gap must
  // be absorbed in one step: nothing sealed, history dropped, and the new
  // window aligned to the period grid.
  HitSet hs(kSecond, 4, 2);
  hs.access("obj", msec(100));
  hs.access("obj", msec(200));
  ASSERT_TRUE(hs.is_hot("obj", msec(300)));
  const uint64_t sealed_before = hs.periods_sealed();

  const SimTime later = sec(1000000) + msec(337);
  hs.access("obj", later);
  EXPECT_EQ(hs.periods_sealed(), sealed_before);  // fast-forward seals none
  EXPECT_EQ(hs.window_start(), later - later % kSecond);
  EXPECT_EQ(hs.history_depth(), 0u);
  // The pre-gap accesses are gone; only the single fresh access counts.
  EXPECT_FALSE(hs.is_hot("obj", later + msec(1)));
}

TEST(HitSet, ShortGapsStillSealPeriodByPeriod) {
  // The fast-forward must not swallow gaps within the retention horizon:
  // those seal normally so recent periods stay queryable.
  HitSet hs(kSecond, 4, 2);
  hs.access("obj", msec(100));
  hs.access("obj", sec(2) + msec(100));  // 2 periods later, within horizon
  EXPECT_EQ(hs.periods_sealed(), 2u);
  EXPECT_TRUE(hs.is_hot("obj", sec(2) + msec(200)));
}

TEST(RateController, DisabledControllerAccruesNoCredits) {
  // Regression: a disabled controller kept accruing credits from
  // foreground traffic; nothing should accumulate when rate control is
  // off (take() grants unconditionally, so credits must stay at zero).
  RateController rc(tier_cfg(false));
  for (int i = 0; i < 500; i++) rc.on_foreground(msec(i));
  EXPECT_EQ(rc.credits(), 0.0);
  EXPECT_EQ(rc.take(msec(600), 64), 64);
  EXPECT_EQ(rc.credits(), 0.0);
}

TEST(RateController, FractionalCreditsSumToWholeGrants) {
  // Regression: per_mid accruals of 1/per_mid land a few ulps short of a
  // whole credit in binary (3 * (1/3) = 0.999...), and take() truncated
  // that to zero — the engine starved one extra foreground op per credit.
  DedupTierConfig c = tier_cfg();
  c.low_watermark_iops = 5;
  c.high_watermark_iops = 1000000;
  c.ios_per_dedup_mid = 3;
  RateController rc(c);
  // Ops 1..5 are at/below the low watermark (unthrottled, no accrual);
  // ops 6..8 each accrue 1/3 of a credit.
  for (int i = 0; i < 8; i++) rc.on_foreground(msec(10 * i));
  EXPECT_EQ(rc.take(msec(100), 64), 1);
}

TEST(RateController, TakeCarriesFractionalRemainder) {
  DedupTierConfig c = tier_cfg();
  c.low_watermark_iops = 5;
  c.high_watermark_iops = 1000000;
  c.ios_per_dedup_mid = 3;
  RateController rc(c);
  // 4 mid-regime accruals = 1.33 credits; granting 1 must leave the third.
  for (int i = 0; i < 9; i++) rc.on_foreground(msec(10 * i));
  EXPECT_EQ(rc.take(msec(100), 64), 1);
  EXPECT_NEAR(rc.credits(), 1.0 / 3.0, 1e-6);
}

TEST(RateController, IopsMeasurement) {
  RateController rc(tier_cfg());
  for (int i = 0; i < 250; i++) rc.on_foreground(msec(i * 2));
  EXPECT_NEAR(rc.current_iops(msec(499)), 250, 5);
  EXPECT_NEAR(rc.current_iops(msec(1600)), 0, 1);
}

}  // namespace
}  // namespace gdedup
