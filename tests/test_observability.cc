// Tests for the observability layer: perf counters + registry, op
// tracing (historic ring + slow board), the deterministic JSON dump,
// and the metric primitives they build on (Histogram percentiles,
// SlidingWindowCounter eviction).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "dedup/tier.h"
#include "obs/dump.h"
#include "obs/json.h"
#include "obs/op_tracker.h"
#include "obs/perf_counters.h"
#include "sim/metrics.h"
#include "test_util.h"

using namespace gdedup;
using namespace gdedup::testutil;

namespace {

enum {
  l_test_first = 100,
  l_test_ops,
  l_test_depth,
  l_test_lat,
  l_test_last,
};

obs::PerfCountersRef make_test_counters(const std::string& name) {
  obs::PerfCountersBuilder b(name, l_test_first, l_test_last);
  b.add_counter(l_test_ops, "ops");
  b.add_gauge(l_test_depth, "depth");
  b.add_histogram(l_test_lat, "op_lat");
  return b.create();
}

std::string dump_one(const obs::PerfCountersRef& pc) {
  obs::JsonWriter w;
  pc->dump(w);
  return w.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// PerfCounters / PerfRegistry

TEST(PerfCounters, BasicAccessAndTypes) {
  auto pc = make_test_counters("test.0");
  EXPECT_EQ(pc->name(), "test.0");
  EXPECT_EQ(pc->size(), 3u);

  pc->inc(l_test_ops);
  pc->inc(l_test_ops, 4);
  EXPECT_EQ(pc->get(l_test_ops), 5u);

  pc->set_gauge(l_test_depth, 7);
  pc->dec(l_test_depth, 2);
  pc->inc(l_test_depth, 1);
  EXPECT_EQ(pc->gauge(l_test_depth), 6);

  pc->record(l_test_lat, 1000);
  pc->record(l_test_lat, 3000);
  const Histogram* h = pc->histogram(l_test_lat);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(pc->histogram(l_test_ops), nullptr);
}

TEST(PerfCounters, DumpIsDeterministic) {
  auto a = make_test_counters("test.a");
  auto b = make_test_counters("test.a");
  for (int i = 0; i < 10; i++) {
    a->inc(l_test_ops);
    b->inc(l_test_ops);
    a->record(l_test_lat, 100u * (i + 1));
    b->record(l_test_lat, 100u * (i + 1));
  }
  EXPECT_EQ(dump_one(a), dump_one(b));
  // Declaration order in the dump, not alphabetical.
  const std::string d = dump_one(a);
  EXPECT_LT(d.find("\"ops\""), d.find("\"depth\""));
  EXPECT_LT(d.find("\"depth\""), d.find("\"op_lat\""));
}

TEST(PerfRegistry, SortedIterationAndLookup) {
  obs::PerfRegistry reg;
  reg.add(make_test_counters("osd.2"));
  reg.add(make_test_counters("client.node0"));
  reg.add(make_test_counters("osd.10"));
  ASSERT_EQ(reg.num_entities(), 3u);
  EXPECT_EQ(reg.num_counters(), 9u);

  auto sorted = reg.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  // Lexicographic entity order (so "osd.10" < "osd.2").
  EXPECT_EQ(sorted[0]->name(), "client.node0");
  EXPECT_EQ(sorted[1]->name(), "osd.10");
  EXPECT_EQ(sorted[2]->name(), "osd.2");

  ASSERT_NE(reg.get("osd.2"), nullptr);
  EXPECT_EQ(reg.get("osd.99"), nullptr);

  // unique_name suffixes deterministically: the base is taken, so the
  // first call yields ".1", the next ".2".
  EXPECT_EQ(reg.unique_name("client.node0"), "client.node0.1");
  reg.add(make_test_counters("client.node0.1"));
  EXPECT_EQ(reg.unique_name("client.node0"), "client.node0.2");
  EXPECT_EQ(reg.unique_name("fresh"), "fresh");

  reg.remove("osd.10");
  EXPECT_EQ(reg.num_entities(), 3u);
  EXPECT_EQ(reg.get("osd.10"), nullptr);
}

// ---------------------------------------------------------------------------
// Histogram satellites: empty min() contract, batch percentiles, json().

TEST(Histogram, EmptyMinReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // documented contract: 0 when empty, check count()
  h.record(42);
  EXPECT_EQ(h.min(), 42u);
}

TEST(Histogram, BatchPercentilesMatchSingleQueries) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 5000; i++) h.record(1 + rng.below(1'000'000));
  const auto batch = h.percentiles({0.5, 0.9, 0.99, 1.0});
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], h.percentile(0.5));
  EXPECT_EQ(batch[1], h.percentile(0.9));
  EXPECT_EQ(batch[2], h.percentile(0.99));
  EXPECT_EQ(batch[3], h.percentile(1.0));
  EXPECT_LE(batch[0], batch[1]);
  EXPECT_LE(batch[1], batch[2]);
  EXPECT_LE(batch[2], batch[3]);
}

TEST(Histogram, JsonIsStable) {
  Histogram a, b;
  for (uint64_t v : {10u, 100u, 1000u, 1000u}) {
    a.record(v);
    b.record(v);
  }
  EXPECT_EQ(a.json(), b.json());
  EXPECT_NE(a.json().find("\"count\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SlidingWindowCounter satellite: explicit advance() + out-of-order add().

TEST(SlidingWindow, AdvanceEvictsAndAgreesWithCount) {
  SlidingWindowCounter win(kSecond);
  for (int i = 0; i < 10; i++) win.add(msec(100) * i, 1);
  EXPECT_EQ(win.count(msec(900)), 10u);
  // advance() then count(): entries older than now - window retire.
  win.advance(msec(1500));
  EXPECT_EQ(win.count(msec(1500)), 5u);  // 500..900ms still inside the window
  // count() without advance() reads the same value.
  SlidingWindowCounter lazy(kSecond);
  for (int i = 0; i < 10; i++) lazy.add(msec(100) * i, 1);
  EXPECT_EQ(lazy.count(msec(1500)), 5u);
}

TEST(SlidingWindow, OutOfOrderAddNeverUndercounts) {
  // FIFO eviction contract: a stale timestamp inserted late stays alive
  // until everything inserted before it has expired, so out-of-order
  // arrivals can only over-count, never under-count.
  SlidingWindowCounter win(kSecond);
  win.add(msec(2000), 3);
  win.add(msec(500), 1);  // stale straggler, inserted after a newer entry
  win.add(msec(2100), 2);
  // At t=2.2s the window is (1.2s, 2.2s]; the straggler's timestamp is
  // outside it but it was inserted after the t=2.0s entry, which is still
  // live, so it must still be counted.
  EXPECT_EQ(win.count(msec(2200)), 6u);
  win.advance(msec(2200));
  EXPECT_EQ(win.count(msec(2200)), 6u);
  // Once the window slides past every entry inserted before it, the
  // straggler finally retires along with them.
  win.advance(msec(3500));
  EXPECT_EQ(win.count(msec(3500)), 0u);
}

// ---------------------------------------------------------------------------
// OpTracker: ring eviction order, slow board ordering, text dump.

TEST(OpTracker, HistoricRingEvictsFifo) {
  obs::OpTracker trk(/*historic_cap=*/4, /*slow_cap=*/16);
  for (int i = 0; i < 7; i++) {
    auto t = trk.start("op-" + std::to_string(i), usec(i));
    trk.finish(t, usec(i) + usec(10));
  }
  EXPECT_EQ(trk.started(), 7u);
  EXPECT_EQ(trk.finished(), 7u);
  const auto& hist = trk.historic();
  ASSERT_EQ(hist.size(), 4u);
  // Oldest-first, the first three evicted.
  EXPECT_EQ(hist.front()->description(), "op-3");
  EXPECT_EQ(hist.back()->description(), "op-6");
}

TEST(OpTracker, SlowBoardOrdersByDurationThenId) {
  obs::OpTracker trk(/*historic_cap=*/128, /*slow_cap=*/3);
  // Durations: 5us, 40us, 10us, 40us, 1us.  Board keeps the 3 slowest;
  // the two 40us ops tie and must rank by ascending id.
  const SimTime durs[] = {usec(5), usec(40), usec(10), usec(40), usec(1)};
  for (int i = 0; i < 5; i++) {
    auto t = trk.start("op-" + std::to_string(i), 0);
    trk.finish(t, durs[i]);
  }
  auto slow = trk.dump_historic_slow_ops(10);
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0]->description(), "op-1");  // 40us, lower id first
  EXPECT_EQ(slow[1]->description(), "op-3");  // 40us
  EXPECT_EQ(slow[2]->description(), "op-2");  // 10us
  // The 5us and 1us ops fell off the bounded board.
  const std::string text = trk.slow_ops_text(2);
  EXPECT_NE(text.find("op-1"), std::string::npos);
  EXPECT_NE(text.find("op-3"), std::string::npos);
  EXPECT_EQ(text.find("op-2"), std::string::npos);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(OpTracker, SpansNestAndFinishIsIdempotent) {
  obs::OpTracker trk;
  auto t = trk.start("write p/obj", usec(100));
  const size_t outer = t->span_begin("tier_write", usec(100));
  const size_t inner = t->span_begin("fingerprint", usec(110));
  t->event("fingerprint_cache_hit", usec(115));
  t->span_end(inner, usec(130));
  t->span_end(outer, usec(150));
  EXPECT_EQ(t->duration(), -1);  // unfinished
  trk.finish(t, usec(160));
  trk.finish(t, usec(999));  // double-finish ignored
  trk.finish(nullptr, usec(1));  // null-safe
  EXPECT_EQ(t->duration(), usec(60));
  ASSERT_EQ(t->spans().size(), 3u);
  EXPECT_EQ(t->spans()[0].stage, "tier_write");
  EXPECT_EQ(t->spans()[1].stage, "fingerprint");
  EXPECT_EQ(t->spans()[2].stage, "fingerprint_cache_hit");
  EXPECT_EQ(t->spans()[1].end - t->spans()[1].begin, usec(20));
  EXPECT_EQ(t->spans()[2].begin, t->spans()[2].end);  // zero-duration marker
  EXPECT_EQ(trk.finished(), 1u);
}

// ---------------------------------------------------------------------------
// Cluster-level: span nesting through a real write -> flush -> read cycle,
// compat stat views, and byte-identical same-seed dumps.

namespace {

// Tiny dedup cluster + one client; runs writes, drains the engine so
// flushes happen, then reads everything back.  Returns the metadata pool
// via *meta_out for tests that need to look the tier back up.
std::string run_traced_workload(Cluster& c, PoolId* meta_out = nullptr) {
  const PoolId meta = c.create_replicated_pool("meta", 2, 32);
  if (meta_out != nullptr) *meta_out = meta;
  const PoolId chunks = c.create_replicated_pool("chunks", 2, 32);
  c.enable_dedup(meta, chunks, test_tier_config());

  RadosClient client(&c, c.client_node(0));
  for (int i = 0; i < 6; i++) {
    Buffer data = random_buffer(96 * 1024, 40 + (i % 2));  // dup pairs
    EXPECT_TRUE(
        sync_write(c, client, meta, "o" + std::to_string(i), 0, data).is_ok());
  }
  c.drain_dedup();
  for (int i = 0; i < 6; i++) {
    auto r = sync_read(c, client, meta, "o" + std::to_string(i), 0, 0);
    EXPECT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().size(), 96u * 1024);
  }
  return obs::dump(c);
}

std::set<std::string> span_stages(const obs::OpTraceRef& t) {
  std::set<std::string> s;
  for (const auto& sp : t->spans()) s.insert(sp.stage);
  return s;
}

}  // namespace

TEST(ObservabilityCluster, TracesCoverWriteFlushRead) {
  ClusterConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  Cluster c(cfg);
  run_traced_workload(c);

  obs::OpTracker* trk = c.op_tracker();
  EXPECT_EQ(trk->started(), trk->finished());  // nothing left in flight
  bool saw_write = false, saw_flush = false, saw_read = false;
  for (const auto& t : trk->historic()) {
    ASSERT_GE(t->duration(), 0);
    const auto stages = span_stages(t);
    const std::string& d = t->description();
    if (d.rfind("write ", 0) == 0) {
      // Client write trace carries the tier's handling span.
      EXPECT_TRUE(stages.count("tier_write")) << d;
      saw_write = true;
    } else if (d.rfind("flush ", 0) == 0) {
      // Background flush trace: fingerprint + chunk-pool put stages.
      EXPECT_TRUE(stages.count("fingerprint") ||
                  stages.count("fingerprint_cache_hit"))
          << d;
      EXPECT_TRUE(stages.count("chunk_put")) << d;
      saw_flush = true;
    } else if (d.rfind("read ", 0) == 0) {
      EXPECT_TRUE(stages.count("tier_read")) << d;
      // Flushed objects resolve through the chunk pool.
      if (stages.count("chunk_pool_read")) saw_read = true;
    }
    // Every closed span lies inside [start, finish].
    for (const auto& sp : t->spans()) {
      EXPECT_GE(sp.begin, t->start());
      if (sp.end >= 0) {
        EXPECT_LE(sp.end, t->finish_time());
      }
    }
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_read);
}

TEST(ObservabilityCluster, CountersBackCompatStatViews) {
  ClusterConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  Cluster c(cfg);
  PoolId meta = -1;
  run_traced_workload(c, &meta);

  // The compat stat views are rebuilt from the counters; cross-check a
  // few fields directly against the registry.
  DedupTier* tier = c.tier_of(0, meta);
  ASSERT_NE(tier, nullptr);
  auto pc = c.perf_registry()->get("tier.osd0.pool" + std::to_string(meta));
  ASSERT_NE(pc, nullptr);
  const DedupTierStats& s = tier->stats();
  EXPECT_EQ(s.writes, pc->get(l_tier_writes));
  EXPECT_EQ(s.chunks_flushed, pc->get(l_tier_chunks_flushed));
  EXPECT_EQ(s.flush_bytes, pc->get(l_tier_flush_bytes));

  // Per-stage latency histograms populated by the cycle.
  const Histogram* wl = pc->histogram(l_tier_write_lat);
  ASSERT_NE(wl, nullptr);
  EXPECT_GT(wl->count(), 0u);
  uint64_t flushes = 0, puts = 0;
  for (const auto& e : c.perf_registry()->sorted()) {
    if (e->name().rfind("tier.", 0) == 0) {
      const Histogram* fl = e->histogram(l_tier_flush_lat);
      ASSERT_NE(fl, nullptr);
      flushes += fl->count();
      puts += e->histogram(l_tier_chunk_put_lat)->count();
    }
  }
  EXPECT_GT(flushes, 0u);
  EXPECT_GT(puts, 0u);
}

TEST(ObservabilityCluster, DumpIsByteIdenticalAcrossSameSeedRuns) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.storage_nodes = 2;
    cfg.osds_per_node = 2;
    cfg.client_nodes = 1;
    Cluster c(cfg);
    return run_traced_workload(c);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Structural spot checks: top-level sections present and counters named.
  for (const char* key :
       {"\"sim_time_ns\"", "\"counters\"", "\"pools\"", "\"ops\"",
        "\"tier.osd0.", "\"write_lat\"", "\"slow\""}) {
    EXPECT_NE(a.find(key), std::string::npos) << key;
  }
}

TEST(ObservabilityCluster, SummaryLineIsFiniteOnIdleCluster) {
  // Regression: with zero I/O every ratio in the one-line summary has a
  // zero denominator.  Each must print as 0.000 (or 0.00), never "nan" /
  // "inf" — the line is grepped by scripts, and NaN also poisoned the
  // sha_avoided segment which used to be skipped entirely when idle.
  ClusterConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  Cluster c(cfg);
  const PoolId base = c.create_replicated_pool("base", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  c.enable_dedup(base, chunks, testutil::test_tier_config());

  const std::string line = obs::summary_line(c);
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  // The divide-guarded segments are present even with all-zero inputs.
  for (const char* key : {"sha_avoided=0.000", "meta_read_amp=0.0000",
                          "read_amp=0.00/MB", "asm_hit=0.000", "rpc=0"}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << " in: " << line;
  }
}
