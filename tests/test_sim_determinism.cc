// Determinism digest of the end-to-end simulation scenario.
//
// The golden digests below were captured at the commit *before* the
// simulation-core fast path (slab scheduler, zero-copy plumbing, workload
// synthesis).  The fast path must keep every virtual-time observable —
// per-op latencies in completion order, stats counters, clock, wire bytes
// — bit-identical, so these constants must never change as a side effect
// of a performance PR.  If a future PR intentionally changes simulation
// *behaviour* (new cost model, different event ordering), it must say so
// and re-freeze the goldens.

#include <gtest/gtest.h>

#include "sim_e2e_scenario.h"

namespace gdedup::bench {
namespace {

SimE2eConfig small_config(int nodes, int osds_per_node, uint64_t seed) {
  SimE2eConfig cfg;
  cfg.storage_nodes = nodes;
  cfg.osds_per_node = osds_per_node;
  cfg.client_nodes = nodes == 2 ? 1 : 3;
  cfg.seed = seed;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;  // pinned: goldens depend on the op mix
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  return cfg;
}

struct Golden {
  int nodes;
  int osds_per_node;
  uint64_t seed;
  const char* digest;
};

// Re-frozen for the sharded event engine (PR 6).  Two intentional
// behaviour changes moved every digest off the commit-66474ed goldens:
// (1) rx bandwidth is now reserved when the receiver *sequences* the
// message — in (arrival, sender, msg_seq) order — rather than eagerly at
// send time, so concurrent senders interleave at the receiver by arrival
// instead of by send order; (2) control-plane events (bench issuers,
// recovery) run on a dedicated global lane ordered before same-timestamp
// shard events.  Both orders are pure functions of virtual time; the
// digests are byte-identical for any GDEDUP_SIM_SHARDS and for parallel
// window execution (test_sim_shards enforces this).
constexpr Golden kGoldens[] = {
    {2, 2, 1, "a3446282"},
    {2, 2, 7, "518db629"},
    {4, 4, 1, "8a3248c7"},
    {4, 4, 7, "5f62e2b2"},
};

TEST(SimDeterminism, DigestMatchesPreFastPathGoldens) {
  for (const Golden& g : kGoldens) {
    SimE2eResult r = run_sim_e2e(small_config(g.nodes, g.osds_per_node, g.seed));
    EXPECT_TRUE(r.drained) << g.nodes << "x" << g.osds_per_node
                           << " seed=" << g.seed;
    EXPECT_EQ(r.digest, g.digest)
        << "virtual-time drift at " << g.nodes << "x" << g.osds_per_node
        << " seed=" << g.seed << " (" << r.digest_samples << " samples)";
  }
}

TEST(SimDeterminism, RepeatRunsAreBitIdentical) {
  // Two fresh clusters in one process: global state (buffer generation
  // counters, caches) must not leak into virtual-time results.
  SimE2eResult a = run_sim_e2e(small_config(2, 2, 3));
  SimE2eResult b = run_sim_e2e(small_config(2, 2, 3));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace gdedup::bench
