// The dedup tier: write path (cached+dirty), background flush via double
// hashing, eviction, space accounting, read redirection, partial-write
// pre-reads, hot-object handling, promotion, inline mode, removes.

#include <gtest/gtest.h>

#include "dedup/fingerprint_cache.h"
#include "test_util.h"
#include "workload/content.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(DedupTier, WriteReadBeforeFlush) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(3 * kChunk, 1);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(DedupTier, WriteMarksCachedAndDirty) {
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(2 * kChunk, 2)).is_ok());
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
  auto* cm = &cm0;
  ASSERT_EQ(cm->size(), 2u);
  for (const auto& [off, e] : cm->entries()) {
    EXPECT_TRUE(e.cached);
    EXPECT_TRUE(e.dirty);
    EXPECT_FALSE(e.flushed());
  }
  EXPECT_TRUE(h.cluster->tier_of(primary, h.meta)->is_dirty("obj"));
}

TEST(DedupTier, FlushMovesChunksToChunkPool) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(2 * kChunk, 3);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());

  // Chunk map now references fingerprint OIDs, clean and evicted.
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
  auto* cm = &cm0;
  ASSERT_GT(cm->size(), 0u);
  for (const auto& [off, e] : cm->entries()) {
    EXPECT_TRUE(e.flushed());
    EXPECT_FALSE(e.dirty);
    EXPECT_FALSE(e.cached);
    EXPECT_EQ(e.chunk_id.substr(0, 7), "sha256:");
  }
  EXPECT_EQ(h.chunk_object_count(), 2u);
  // Metadata object's data part was evicted.
  const auto meta_stats = h.cluster->pool_stats(h.meta);
  EXPECT_EQ(meta_stats.stored_data_bytes, 0u);
  // Reads still return the data (redirected).
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, ChunkOidIsContentFingerprint) {
  // Double hashing invariant 1: the chunk object's OID equals the
  // fingerprint of its content, so placement is content-determined.
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 4);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const Fingerprint expect =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());
  const OsdId cp = h.cluster->osdmap().primary(h.chunks, expect.hex());
  EXPECT_TRUE(h.cluster->osd(cp)->local_exists(h.chunks, expect.hex()));
}

TEST(DedupTier, DuplicateContentStoredOnce) {
  DedupHarness h(test_tier_config());
  Buffer dup = random_buffer(kChunk, 5);
  // Ten objects, identical content.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(h.write("obj" + std::to_string(i), 0, dup).is_ok());
  }
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 10u);
  const auto cs = h.cluster->pool_stats(h.chunks);
  // One chunk, replicated twice.
  EXPECT_EQ(cs.stored_data_bytes, 2u * kChunk);
  EXPECT_TRUE(h.refcounts_consistent());
  // All ten objects still read back.
  for (int i = 0; i < 10; i++) {
    auto r = h.read("obj" + std::to_string(i), 0, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(r->content_equals(dup));
  }
}

TEST(DedupTier, DedupWithinOneObject) {
  DedupHarness h(test_tier_config());
  Buffer piece = random_buffer(kChunk, 6);
  Buffer data = Buffer::concat(piece, piece);  // two identical chunks
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 2u);
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(DedupTier, SpaceSavingMatchesDuplication) {
  // 50% duplicate content -> chunk pool stores about half the logical data.
  DedupHarness h(test_tier_config());
  const int n = 32;
  Buffer shared = random_buffer(kChunk, 7);
  for (int i = 0; i < n; i++) {
    Buffer unique = random_buffer(kChunk, 100 + i);
    ASSERT_TRUE(h.write("o" + std::to_string(i), 0,
                        Buffer::concat(shared, unique))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  const auto cs = h.cluster->pool_stats(h.chunks);
  const uint64_t logical = static_cast<uint64_t>(n) * 2 * kChunk;
  // Unique bytes: n unique chunks + 1 shared chunk; x2 replication.
  EXPECT_EQ(cs.stored_data_bytes, (n + 1) * 2ull * kChunk);
  EXPECT_LT(cs.stored_data_bytes, logical * 2);
}

TEST(DedupTier, OverwriteDereferencesOldChunk) {
  DedupHarness h(test_tier_config());
  Buffer v1 = random_buffer(kChunk, 8);
  Buffer v2 = random_buffer(kChunk, 9);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  ASSERT_TRUE(h.write("obj", 0, v2).is_ok());
  ASSERT_TRUE(h.drain());
  // Old chunk reclaimed (refcount hit zero), new one present.
  EXPECT_EQ(h.chunk_object_count(), 1u);
  const Fingerprint f2 =
      Fingerprint::compute(FingerprintAlgo::kSha256, v2.span());
  const OsdId cp = h.cluster->osdmap().primary(h.chunks, f2.hex());
  EXPECT_TRUE(h.cluster->osd(cp)->local_exists(h.chunks, f2.hex()));
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(v2));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, RewriteSameContentIsNoopFlush) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 10);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const auto stats1 = h.cluster->tier_stats(h.meta);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());  // identical rewrite
  ASSERT_TRUE(h.drain());
  const auto stats2 = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(stats2.chunks_flushed, stats1.chunks_flushed);  // no new put
  EXPECT_GT(stats2.noop_flushes, stats1.noop_flushes);
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, NoopReflushHitsFingerprintCache) {
  // Re-flushing unchanged content must not pay for rehashing: the write
  // stores the client's Buffer by value and the flush read returns a
  // zero-copy slice of it, so the memoization key (storage identity +
  // generation) survives the round trip and the second flush hits.
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 10);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const auto stats1 = h.cluster->tier_stats(h.meta);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const auto stats2 = h.cluster->tier_stats(h.meta);
  EXPECT_GT(stats2.fingerprint_cache_hits, stats1.fingerprint_cache_hits);
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(FingerprintCache, SameStorageHitsMutationMisses) {
  FingerprintCache cache;
  Buffer b = random_buffer(4096, 77);
  EXPECT_EQ(cache.find(b, FingerprintAlgo::kSha256), nullptr);
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, b.span());
  cache.insert(b, FingerprintAlgo::kSha256, fp);
  const FingerprintCache::Entry* hit = cache.find(b, FingerprintAlgo::kSha256);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fp, fp);
  Buffer copy = b;  // shares storage and generation
  EXPECT_NE(cache.find(copy, FingerprintAlgo::kSha256), nullptr);
  // The algorithm is part of the key.
  EXPECT_EQ(cache.find(b, FingerprintAlgo::kSha1), nullptr);
  // Mutation bumps the generation, so the stale digest can't come back.
  b.mutable_data()[0] ^= 1;
  EXPECT_EQ(cache.find(b, FingerprintAlgo::kSha256), nullptr);
  EXPECT_EQ(cache.lookups(), 5u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(DedupTier, PartialWriteAfterEvictionMergesInBackground) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 11);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());  // chunk flushed + evicted

  // 16KB write into the evicted 32KB chunk: no foreground pre-read (the
  // entry goes to Figure 8's cached=false/dirty=true state); the missing
  // half is merged from the chunk pool by the background flush.
  Buffer patch = random_buffer(16 * 1024, 12);
  const auto before = h.cluster->tier_stats(h.meta);
  ASSERT_TRUE(h.write("obj", 0, patch).is_ok());
  const auto after = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(after.prereads, before.prereads);  // foreground stayed clean

  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  {
    ChunkMap cm = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
    ASSERT_NE(cm.find(0), nullptr);
    EXPECT_TRUE(cm.find(0)->dirty);
    EXPECT_FALSE(cm.find(0)->cached);  // only the new 16KB is local
  }

  // Reads in the partial-dirty state must overlay local bytes on the old
  // chunk content.
  Buffer expect = data;
  expect.write_at(0, patch);
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(expect));

  ASSERT_TRUE(h.drain());
  const auto drained = h.cluster->tier_stats(h.meta);
  EXPECT_GT(drained.flush_merges, before.flush_merges);
  r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(expect));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, FullChunkOverwriteSkipsPreread) {
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 13)).is_ok());
  ASSERT_TRUE(h.drain());
  const auto before = h.cluster->tier_stats(h.meta);
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 14)).is_ok());
  const auto after = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(after.prereads, before.prereads);
}

TEST(DedupTier, ReadRedirectionCountsChunks) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(4 * kChunk, 15);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  const auto cached = h.cluster->tier_stats(h.meta);
  ASSERT_TRUE(h.read("obj", 0, 0).is_ok());
  const auto after_cached_read = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(after_cached_read.cached_read_chunks - cached.cached_read_chunks,
            4u);
  ASSERT_TRUE(h.drain());
  ASSERT_TRUE(h.read("obj", 0, 0).is_ok());
  const auto after_remote_read = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(after_remote_read.redirected_read_chunks -
                after_cached_read.redirected_read_chunks,
            4u);
}

TEST(DedupTier, RedirectedReadIsSlowerThanCached) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 16);
  ASSERT_TRUE(h.write("hot", 0, data).is_ok());
  ASSERT_TRUE(h.write("cold", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  // Re-cache "hot" by writing it again (cached+dirty), leave "cold" evicted.
  ASSERT_TRUE(h.write("hot", 0, data).is_ok());

  SimTime t0 = h.cluster->sched().now();
  ASSERT_TRUE(h.read("hot", 0, 8192).is_ok());
  const SimTime cached_lat = h.cluster->sched().now() - t0;
  t0 = h.cluster->sched().now();
  ASSERT_TRUE(h.read("cold", 0, 8192).is_ok());
  const SimTime remote_lat = h.cluster->sched().now() - t0;
  EXPECT_GT(remote_lat, cached_lat);  // the Figure 10 redirection penalty
}

TEST(DedupTier, ReadYourWritesAcrossAllStates) {
  // Invariant 5: reads return the latest write in every dedup state.
  DedupHarness h(test_tier_config());
  Buffer v1 = random_buffer(2 * kChunk, 17);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v1));  // cached dirty
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v1));  // flushed evicted
  Buffer v2 = random_buffer(2 * kChunk, 18);
  ASSERT_TRUE(h.write("obj", 0, v2).is_ok());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v2));  // dirty again
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v2));
}

TEST(DedupTier, HotObjectNotDeduplicated) {
  auto cfg = test_tier_config();
  cfg.hitcount_threshold = 2;  // easy to heat
  cfg.hitset_period = sec(10);
  cfg.hitset_count = 4;
  DedupHarness h(cfg);
  Buffer data = random_buffer(kChunk, 19);
  // Two writes make the object hot.
  ASSERT_TRUE(h.write("hot", 0, data).is_ok());
  ASSERT_TRUE(h.write("hot", 0, data).is_ok());
  // Run the engine for a while: object must stay cached and dirty.
  h.cluster->sched().run_for(sec(2));
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "hot");
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "hot");
  auto* cm = &cm0;
  ASSERT_GT(cm->size(), 0u);
  EXPECT_TRUE(cm->find(0)->dirty);
  EXPECT_TRUE(cm->find(0)->cached);
  EXPECT_GT(h.cluster->tier_stats(h.meta).hot_skips, 0u);
}

TEST(DedupTier, HotObjectFlushedAfterCooling) {
  auto cfg = test_tier_config();
  cfg.hitcount_threshold = 2;
  cfg.hitset_period = msec(500);
  cfg.hitset_count = 2;
  DedupHarness h(cfg);
  Buffer data = random_buffer(kChunk, 20);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());  // hot now
  // After the hitset history ages out, the engine flushes it.
  h.cluster->sched().run_for(sec(5));
  ASSERT_TRUE(h.drain());
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
  auto* cm = &cm0;
  ASSERT_NE(cm->find(0), nullptr);
  EXPECT_FALSE(cm->find(0)->dirty);
  EXPECT_TRUE(cm->find(0)->flushed());
}

TEST(DedupTier, PromoteOnHotRead) {
  auto cfg = test_tier_config();
  cfg.hitcount_threshold = 2;
  cfg.hitset_period = sec(10);
  cfg.promote_on_read = true;
  DedupHarness h(cfg);
  Buffer data = random_buffer(2 * kChunk, 21);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());  // evicted
  // Repeated reads heat the object; promotion caches it again.
  for (int i = 0; i < 3; i++) ASSERT_TRUE(h.read("obj", 0, 0).is_ok());
  h.cluster->sched().run_for(sec(2));
  EXPECT_GT(h.cluster->tier_stats(h.meta).promotions, 0u);
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
  auto* cm = &cm0;
  ASSERT_NE(cm->find(0), nullptr);
  EXPECT_TRUE(cm->find(0)->cached);
  // Promoted data serves locally and correctly.
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(data));
}

TEST(DedupTier, RemoveReleasesChunks) {
  DedupHarness h(test_tier_config());
  Buffer shared = random_buffer(kChunk, 22);
  ASSERT_TRUE(h.write("a", 0, shared).is_ok());
  ASSERT_TRUE(h.write("b", 0, shared).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.total_chunk_refs(), 2u);
  ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, "a").is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.total_chunk_refs(), 1u);
  EXPECT_EQ(h.chunk_object_count(), 1u);  // still referenced by b
  ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, "b").is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 0u);  // reclaimed
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, WriteFullShrinkReleasesTailChunks) {
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(4 * kChunk, 23)).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 4u);
  // Shrink to one chunk via write_full.
  Buffer small = random_buffer(kChunk, 24);
  ASSERT_TRUE(
      sync_write_full(*h.cluster, *h.client, h.meta, "obj", small).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(small));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, EcChunkPool) {
  // Proposed-EC: chunk pool erasure-coded, metadata pool replicated.
  DedupHarness h(test_tier_config(), testutil::small_cluster_config(),
                 RedundancyScheme::kErasure);
  Buffer data = random_buffer(2 * kChunk, 25);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  // EC 2+1 amplification: 1.5x instead of replication's 2x.
  const auto cs = h.cluster->pool_stats(h.chunks);
  EXPECT_EQ(cs.stored_data_bytes, 2 * kChunk * 3 / 2);
}

TEST(DedupTier, UnalignedAndSpanningWrites) {
  DedupHarness h(test_tier_config());
  // Write a region straddling three chunks at odd offsets.
  Buffer a = random_buffer(kChunk + 5000, 26);
  ASSERT_TRUE(h.write("obj", 10000, a).is_ok());
  Buffer expect(10000 + a.size());
  expect.write_at(10000, a);
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(expect));
  ASSERT_TRUE(h.drain());
  r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(expect));
  // Sub-chunk read at an odd offset.
  auto rr = h.read("obj", 12345, 777);
  ASSERT_TRUE(rr.is_ok());
  EXPECT_TRUE(rr->content_equals(expect.slice(12345, 777)));
}

TEST(DedupTier, InlineModeFlushesOnWritePath) {
  auto cfg = test_tier_config();
  cfg.mode = DedupMode::kInline;
  DedupHarness h(cfg);
  Buffer data = random_buffer(2 * kChunk, 27);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  // No background work needed: chunks are already in the chunk pool.
  EXPECT_EQ(h.chunk_object_count(), 2u);
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  EXPECT_FALSE(h.cluster->tier_of(primary, h.meta)->is_dirty("obj"));
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(DedupTier, InlinePartialWritePaysRmw) {
  auto cfg = test_tier_config();
  cfg.mode = DedupMode::kInline;
  DedupHarness h(cfg);
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 28)).is_ok());

  // The Figure 5(a) pathology: 16KB write into a 32KB chunk.
  const auto before = h.cluster->tier_stats(h.meta);
  const SimTime t0 = h.cluster->sched().now();
  Buffer patch = random_buffer(16 * 1024, 29);
  ASSERT_TRUE(h.write("obj", 16 * 1024, patch).is_ok());
  const SimTime inline_lat = h.cluster->sched().now() - t0;
  const auto after = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(after.prereads, before.prereads + 1);

  // Same pattern under post-processing: far cheaper foreground latency.
  auto pp = test_tier_config();
  DedupHarness h2(pp);
  ASSERT_TRUE(h2.write("obj", 0, random_buffer(kChunk, 28)).is_ok());
  ASSERT_TRUE(h2.drain());
  const SimTime t1 = h2.cluster->sched().now();
  ASSERT_TRUE(h2.write("obj", 16 * 1024, patch).is_ok());
  const SimTime pp_lat = h2.cluster->sched().now() - t1;
  // Post-processing still pre-reads (chunk was evicted) but skips the
  // foreground fingerprint + chunk-pool round trips.
  EXPECT_LT(pp_lat, inline_lat);

  // Correctness both ways.
  Buffer expect = random_buffer(kChunk, 28);
  expect.write_at(16 * 1024, patch);
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(expect));
  EXPECT_TRUE(h2.read("obj", 0, 0)->content_equals(expect));
}

TEST(DedupTier, MidFlushWriteStaysDirty) {
  // A client write racing the background flush must leave the object
  // dirty (racy flush) and never lose the newer bytes.
  auto cfg = test_tier_config();
  cfg.engine_tick = msec(10);
  DedupHarness h(cfg);
  Buffer v1 = random_buffer(kChunk, 30);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());

  // Start the flush, then immediately issue an overlapping write and let
  // both complete.
  Buffer v2 = random_buffer(kChunk, 31);
  bool wdone = false;
  h.cluster->sched().run_for(msec(12));  // engine picked up the object
  h.client->write(h.meta, "obj", 0, v2, [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    wdone = true;
  });
  while (!wdone) ASSERT_TRUE(h.cluster->sched().step());
  ASSERT_TRUE(h.drain());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(v2));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DedupTier, ManyObjectsManyChunksStress) {
  auto cfg = test_tier_config();
  cfg.max_dedup_per_tick = 512;
  DedupHarness h(cfg);
  Rng rng(32);
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 24; i++) {
    const std::string oid = "s" + std::to_string(i);
    // Each object is 1-4 chunks drawn from a pool of 8 distinct contents:
    // heavy cross-object duplication by construction.
    Buffer data;
    const uint64_t nchunks = 1 + rng.below(4);
    for (uint64_t j = 0; j < nchunks; j++) {
      data = Buffer::concat(
          data, workload::BlockContent::make(rng.below(8), kChunk, 0.0));
    }
    ASSERT_TRUE(h.write(oid, 0, data).is_ok());
    truth[oid] = data;
  }
  ASSERT_TRUE(h.drain());
  for (const auto& [oid, data] : truth) {
    auto r = h.read(oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(data)) << oid;
  }
  EXPECT_TRUE(h.refcounts_consistent());
  // Only 8 distinct chunk contents were used, so cross-object dedup is
  // heavy: at most 8 chunk objects despite dozens of logical chunks.
  EXPECT_LE(h.chunk_object_count(), 8u);
  const auto ts = h.cluster->tier_stats(h.meta);
  EXPECT_GT(ts.chunks_flushed, h.chunk_object_count());
}

}  // namespace
}  // namespace gdedup
