// SHA-1 / SHA-256 against FIPS vectors; Fingerprint identity; FNV; Rabin.

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/random.h"
#include "hash/fingerprint.h"
#include "hash/rabin.h"
#include "hash/sha1.h"
#include "hash/sha256.h"

namespace gdedup {
namespace {

std::string hex_of(std::span<const uint8_t> d) {
  static const char* k = "0123456789abcdef";
  std::string s;
  for (uint8_t b : d) {
    s.push_back(k[b >> 4]);
    s.push_back(k[b & 0xf]);
  }
  return s;
}

std::span<const uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ------------------------------------------------------------------ SHA-1

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_of(Sha1::of({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_of(Sha1::of(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha1::of(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, Nist896BitMessage) {
  // FIPS 180-2 vector whose 112-byte length exceeds one 512-bit block and
  // forces the bulk multi-block update path.
  EXPECT_EQ(hex_of(Sha1::of(bytes_of(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
            "a49b2446a02c645bf419f995b67091253a04a259");
}

TEST(Sha1, PaddingBoundaryLengthSweep) {
  // One-shot vs byte-at-a-time agreement for every length through two
  // blocks, covering the 55/56/64-byte padding edges and the bulk-block
  // fast path's entry conditions.
  Rng rng(11);
  Buffer data(130);
  rng.fill(data.mutable_data(), data.size());
  for (size_t n = 0; n <= data.size(); n++) {
    Sha1 inc;
    for (size_t i = 0; i < n; i++) inc.update({data.data() + i, 1});
    EXPECT_EQ(inc.finish(), Sha1::of({data.data(), n})) << "len " << n;
  }
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Rng rng(5);
  Buffer data(100000);
  rng.fill(data.mutable_data(), data.size());
  Sha1 inc;
  size_t pos = 0;
  size_t step = 1;
  while (pos < data.size()) {
    const size_t n = std::min(step, data.size() - pos);
    inc.update({data.data() + pos, n});
    pos += n;
    step = step * 3 + 1;
  }
  EXPECT_EQ(inc.finish(), Sha1::of(data.span()));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::of({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::of(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::of(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, Nist896BitMessage) {
  EXPECT_EQ(hex_of(Sha256::of(bytes_of(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, PaddingBoundaryLengthSweep) {
  Rng rng(12);
  Buffer data(130);
  rng.fill(data.mutable_data(), data.size());
  for (size_t n = 0; n <= data.size(); n++) {
    Sha256 inc;
    for (size_t i = 0; i < n; i++) inc.update({data.data() + i, 1});
    EXPECT_EQ(inc.finish(), Sha256::of({data.data(), n})) << "len " << n;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(6);
  Buffer data(65537);
  rng.fill(data.mutable_data(), data.size());
  Sha256 inc;
  size_t pos = 0;
  size_t step = 7;
  while (pos < data.size()) {
    const size_t n = std::min(step, data.size() - pos);
    inc.update({data.data() + pos, n});
    pos += n;
    step = (step * 5) % 1000 + 1;
  }
  EXPECT_EQ(inc.finish(), Sha256::of(data.span()));
}

// ------------------------------------------------------------- Fingerprint

TEST(Fingerprint, EqualContentEqualPrint) {
  Buffer a = Buffer::copy_of("identical chunk data");
  Buffer b = Buffer::copy_of("identical chunk data");
  const auto fa = Fingerprint::compute(FingerprintAlgo::kSha256, a.span());
  const auto fb = Fingerprint::compute(FingerprintAlgo::kSha256, b.span());
  EXPECT_EQ(fa, fb);
  EXPECT_EQ(fa.hex(), fb.hex());
}

TEST(Fingerprint, DifferentContentDifferentPrint) {
  const auto fa = Fingerprint::compute(FingerprintAlgo::kSha256,
                                       bytes_of("chunk A"));
  const auto fb = Fingerprint::compute(FingerprintAlgo::kSha256,
                                       bytes_of("chunk B"));
  EXPECT_FALSE(fa == fb);
}

TEST(Fingerprint, HexRoundTrip) {
  const auto f =
      Fingerprint::compute(FingerprintAlgo::kSha256, bytes_of("round trip"));
  auto parsed = Fingerprint::from_hex(f.hex());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), f);
}

TEST(Fingerprint, HexHasAlgoPrefix) {
  const auto f256 =
      Fingerprint::compute(FingerprintAlgo::kSha256, bytes_of("x"));
  const auto f1 = Fingerprint::compute(FingerprintAlgo::kSha1, bytes_of("x"));
  EXPECT_EQ(f256.hex().substr(0, 7), "sha256:");
  EXPECT_EQ(f1.hex().substr(0, 5), "sha1:");
  EXPECT_FALSE(f256 == f1);
}

TEST(Fingerprint, FromHexRejectsGarbage) {
  EXPECT_FALSE(Fingerprint::from_hex("no-colon").is_ok());
  EXPECT_FALSE(Fingerprint::from_hex("md5:abcd").is_ok());
  EXPECT_FALSE(Fingerprint::from_hex("sha256:abcd").is_ok());  // short
  std::string bad = "sha256:";
  bad.append(64, 'z');
  EXPECT_FALSE(Fingerprint::from_hex(bad).is_ok());
}

TEST(Fingerprint, Prefix64Stable) {
  const auto f =
      Fingerprint::compute(FingerprintAlgo::kSha256, bytes_of("stable"));
  EXPECT_EQ(f.prefix64(),
            Fingerprint::compute(FingerprintAlgo::kSha256, bytes_of("stable"))
                .prefix64());
  EXPECT_NE(f.prefix64(), 0u);
}

TEST(Fnv1a, KnownBehaviour) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("same"), fnv1a("same"));
}

// ------------------------------------------------------------------ Rabin

TEST(Rabin, SameWindowSameHash) {
  RabinRolling a, b;
  Rng rng(8);
  std::vector<uint8_t> data(256);
  rng.fill(data.data(), data.size());
  // Feed b an extra prefix; once both have consumed the same final window,
  // hashes must match — the rolling property.
  for (uint8_t x : {uint8_t(1), uint8_t(2), uint8_t(3)}) b.roll(x);
  uint64_t ha = 0, hb = 0;
  for (uint8_t x : data) ha = a.roll(x);
  for (uint8_t x : data) hb = b.roll(x);
  EXPECT_EQ(ha, hb);
}

TEST(Rabin, DifferentWindowsDiffer) {
  RabinRolling a, b;
  uint64_t ha = 0, hb = 0;
  for (int i = 0; i < 100; i++) ha = a.roll(static_cast<uint8_t>(i));
  for (int i = 0; i < 100; i++) hb = b.roll(static_cast<uint8_t>(i + 1));
  EXPECT_NE(ha, hb);
}

TEST(Rabin, WindowFullAfterKBytes) {
  RabinRolling r;
  for (size_t i = 0; i < RabinRolling::kWindow - 1; i++) {
    r.roll(1);
    EXPECT_FALSE(r.window_full());
  }
  r.roll(1);
  EXPECT_TRUE(r.window_full());
}

}  // namespace
}  // namespace gdedup
