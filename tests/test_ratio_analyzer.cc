// Local-vs-global dedup ratio accounting (the Figure 3 / Table 1 baseline)
// and a cross-check of the analyzer against the real dedup system.

#include "dedup/ratio_analyzer.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fio_gen.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::test_tier_config;

OsdMap make_map(int osds) {
  OsdMap m;
  for (int i = 0; i < osds; i++) m.add_osd(i, i / 4);
  PoolConfig cfg;
  cfg.name = "p";
  // High PG count so placement variance reflects per-object hashing, not
  // PG granularity (real clusters balance this with upmap).
  cfg.pg_num = 4096;
  m.create_pool(cfg);
  return m;
}

TEST(RatioAnalyzer, AllUniqueIsZero) {
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, 32 * 1024);
  Rng rng(1);
  for (int i = 0; i < 32; i++) {
    Buffer b(32 * 1024);
    rng.fill(b.mutable_data(), b.size());
    a.add_object("o" + std::to_string(i), b);
  }
  EXPECT_DOUBLE_EQ(a.global().ratio(), 0.0);
  EXPECT_DOUBLE_EQ(a.local().ratio(), 0.0);
}

TEST(RatioAnalyzer, AllIdenticalNearsOne) {
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, 32 * 1024);
  Buffer b = testutil::random_buffer(32 * 1024, 2);
  const int n = 64;
  for (int i = 0; i < n; i++) a.add_object("o" + std::to_string(i), b);
  EXPECT_NEAR(a.global().ratio(), 1.0 - 1.0 / n, 1e-9);
  // Local: one unique copy per OSD that received at least one object.
  EXPECT_LT(a.local().ratio(), a.global().ratio());
  EXPECT_GT(a.local().ratio(), 0.5);
}

TEST(RatioAnalyzer, GlobalMatchesFioKnob) {
  // FIO dedupe_percentage=50 must yield ~50% global dedup — the paper's
  // Figure 3 observation that "global deduplication shows the same results
  // as given deduplication ratios".
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, 8192);
  workload::FioConfig fc;
  fc.total_bytes = 16ull << 20;
  fc.block_size = 8192;
  fc.dedupe_ratio = 0.5;
  workload::FioGenerator gen(fc);
  for (uint64_t i = 0; i < gen.num_blocks(); i++) {
    a.add_object("b" + std::to_string(i), gen.block(i));
  }
  EXPECT_NEAR(a.global().percent(), 50.0, 3.0);
  EXPECT_NEAR(a.global().ratio(), gen.exact_dedup_ratio(), 1e-9);
}

TEST(RatioAnalyzer, LocalShrinksWithMoreOsds) {
  // Table 1's trend: local dedup ratio decays roughly as 1/#OSDs while
  // global stays put.
  workload::FioConfig fc;
  fc.total_bytes = 16ull << 20;
  fc.block_size = 8192;
  fc.dedupe_ratio = 0.5;
  workload::FioGenerator gen(fc);

  double prev_local = 1.0;
  for (int osds : {4, 8, 16}) {
    OsdMap m = make_map(osds);
    RatioAnalyzer a(&m, 0, 8192);
    for (uint64_t i = 0; i < gen.num_blocks(); i++) {
      a.add_object("b" + std::to_string(i), gen.block(i));
    }
    EXPECT_NEAR(a.global().percent(), 50.0, 3.0) << osds;
    EXPECT_LT(a.local().percent(), prev_local * 100.0) << osds;
    // Local sits in the band around (dedupe / osds) the paper reports.
    EXPECT_GT(a.local().percent(), 0.5 * 50.0 / osds) << osds;
    EXPECT_LT(a.local().percent(), 3.0 * 50.0 / osds) << osds;
    prev_local = a.local().ratio();
  }
}

TEST(RatioAnalyzer, PlacementBalanced) {
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, 8192);
  Rng rng(3);
  for (int i = 0; i < 2000; i++) {
    Buffer b(8192);
    rng.fill(b.mutable_data(), b.size());
    a.add_object("o" + std::to_string(i), b);
  }
  ASSERT_EQ(a.per_osd().size(), 16u);
  for (const auto& [osd, rep] : a.per_osd()) {
    EXPECT_NEAR(static_cast<double>(rep.logical_bytes),
                2000.0 * 8192 / 16, 2000.0 * 8192 / 16 * 0.35);
  }
}

TEST(RatioAnalyzer, PooledScanMatchesSerial) {
  // Chunk scans offloaded to exec-pool workers must report exactly the
  // ratios of the inline serial path: the analyzer drains pending scans in
  // submission order, so worker count cannot reorder the accounting.
  OsdMap m = make_map(16);
  RatioAnalyzer serial(&m, 0, 8192);
  ExecPool pool(4);
  RatioAnalyzer pooled(&m, 0, 8192, FingerprintAlgo::kSha256, &pool);

  workload::FioConfig fc;
  fc.total_bytes = 8ull << 20;
  fc.block_size = 8192;
  fc.dedupe_ratio = 0.4;
  workload::FioGenerator gen(fc);
  for (uint64_t i = 0; i < gen.num_blocks(); i++) {
    const std::string oid = "b" + std::to_string(i);
    serial.add_object(oid, gen.block(i));
    pooled.add_object(oid, gen.block(i));
  }

  EXPECT_EQ(serial.global().logical_bytes, pooled.global().logical_bytes);
  EXPECT_EQ(serial.global().unique_bytes, pooled.global().unique_bytes);
  EXPECT_EQ(serial.local().unique_bytes, pooled.local().unique_bytes);
  ASSERT_EQ(serial.per_osd().size(), pooled.per_osd().size());
  for (const auto& [osd, rep] : serial.per_osd()) {
    const auto& prep = pooled.per_osd().at(osd);
    EXPECT_EQ(rep.logical_bytes, prep.logical_bytes);
    EXPECT_EQ(rep.unique_bytes, prep.unique_bytes);
  }
}

TEST(RatioAnalyzer, MatchesRealSystemStoredBytes) {
  // Cross-check: the analyzer's predicted unique bytes equal what the real
  // dedup pipeline actually stores in the chunk pool (per replica).
  DedupHarness h(test_tier_config());
  RatioAnalyzer a(&h.cluster->osdmap(), h.meta, 32 * 1024);

  Rng rng(4);
  std::vector<uint64_t> seeds = {10, 11, 12, 10, 11, 10, 13, 10};  // dups
  for (size_t i = 0; i < seeds.size(); i++) {
    Buffer data = testutil::random_buffer(32 * 1024, seeds[i]);
    const std::string oid = "x" + std::to_string(i);
    a.add_object(oid, data);
    ASSERT_TRUE(h.write(oid, 0, data).is_ok());
  }
  ASSERT_TRUE(h.drain());
  const auto cs = h.cluster->pool_stats(h.chunks);
  // Chunk pool stores unique bytes x2 (replication).
  EXPECT_EQ(cs.stored_data_bytes, a.global().unique_bytes * 2);
}

}  // namespace
}  // namespace gdedup
