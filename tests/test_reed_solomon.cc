// GF(256) field axioms and Reed-Solomon erasure properties.

#include "ec/reed_solomon.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ec/galois.h"

namespace gdedup {
namespace {

// ------------------------------------------------------------------ field

TEST(Galois, MultiplicationCommutesAndAssociates) {
  Rng rng(1);
  for (int i = 0; i < 2000; i++) {
    const uint8_t a = static_cast<uint8_t>(rng.below(256));
    const uint8_t b = static_cast<uint8_t>(rng.below(256));
    const uint8_t c = static_cast<uint8_t>(rng.below(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(a, gf256::mul(b, c)), gf256::mul(gf256::mul(a, b), c));
  }
}

TEST(Galois, DistributesOverXor) {
  Rng rng(2);
  for (int i = 0; i < 2000; i++) {
    const uint8_t a = static_cast<uint8_t>(rng.below(256));
    const uint8_t b = static_cast<uint8_t>(rng.below(256));
    const uint8_t c = static_cast<uint8_t>(rng.below(256));
    EXPECT_EQ(gf256::mul(a, static_cast<uint8_t>(b ^ c)),
              gf256::mul(a, b) ^ gf256::mul(a, c));
  }
}

TEST(Galois, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; a++) {
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Galois, InverseIsExact) {
  for (int a = 1; a < 256; a++) {
    const uint8_t inv = gf256::inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Galois, DivisionInvertsMultiplication) {
  Rng rng(3);
  for (int i = 0; i < 2000; i++) {
    const uint8_t a = static_cast<uint8_t>(rng.below(256));
    const uint8_t b = static_cast<uint8_t>(rng.below(255) + 1);
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

TEST(Galois, MulAccKernel) {
  Rng rng(4);
  std::vector<uint8_t> src(1000), dst(1000), expect(1000);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  expect = dst;
  const uint8_t c = 0x53;
  for (size_t i = 0; i < src.size(); i++) {
    expect[i] ^= gf256::mul(src[i], c);
  }
  gf256::mul_acc(dst.data(), src.data(), src.size(), c);
  EXPECT_EQ(dst, expect);
}

// ---------------------------------------------------------- Reed-Solomon

Buffer random_buffer(size_t n, uint64_t seed) {
  Buffer b(n);
  Rng rng(seed);
  rng.fill(b.mutable_data(), n);
  return b;
}

TEST(ReedSolomon, EncodeShapesAndPadding) {
  ReedSolomon rs(3, 2);
  Buffer data = random_buffer(1000, 1);  // 1000 / 3 -> 334-byte shards
  auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), 5u);
  for (const auto& s : shards) EXPECT_EQ(s.size(), rs.shard_len(1000));
}

TEST(ReedSolomon, DecodeWithoutLoss) {
  ReedSolomon rs(2, 1);
  Buffer data = random_buffer(10000, 2);
  auto shards = rs.encode(data);
  std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
  auto out = rs.decode(opt, data.size());
  ASSERT_TRUE(out.is_ok());
  EXPECT_TRUE(out->content_equals(data));
}

TEST(ReedSolomon, TooManyLossesFails) {
  ReedSolomon rs(2, 1);
  Buffer data = random_buffer(4096, 3);
  auto shards = rs.encode(data);
  std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
  opt[0].reset();
  opt[2].reset();
  EXPECT_FALSE(rs.reconstruct(opt).is_ok());
}

TEST(ReedSolomon, RejectsUnequalShards) {
  ReedSolomon rs(2, 1);
  std::vector<std::optional<Buffer>> opt(3);
  opt[0] = Buffer(10);
  opt[1] = Buffer(11);
  EXPECT_FALSE(rs.reconstruct(opt).is_ok());
}

// Exhaustive erasure property over (k, m) configurations: losing ANY
// subset of <= m shards reconstructs every shard bit-exactly.
class RsErasureSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RsErasureSweep, AnyErasurePatternRecovers) {
  const auto [k, m, data_len] = GetParam();
  ReedSolomon rs(k, m);
  Buffer data = random_buffer(static_cast<size_t>(data_len),
                              static_cast<uint64_t>(k * 1000 + m * 10 + data_len));
  auto shards = rs.encode(data);
  const int total = k + m;

  // All subsets of shards of size <= m to erase.
  for (uint32_t mask = 1; mask < (1u << total); mask++) {
    if (__builtin_popcount(mask) > m) continue;
    std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
    for (int i = 0; i < total; i++) {
      if (mask & (1u << i)) opt[static_cast<size_t>(i)].reset();
    }
    ASSERT_TRUE(rs.reconstruct(opt).is_ok()) << "mask=" << mask;
    for (int i = 0; i < total; i++) {
      ASSERT_TRUE(opt[static_cast<size_t>(i)].has_value());
      EXPECT_TRUE(opt[static_cast<size_t>(i)]->content_equals(
          shards[static_cast<size_t>(i)]))
          << "mask=" << mask << " shard=" << i;
    }
    auto out = rs.decode(opt, data.size());
    ASSERT_TRUE(out.is_ok());
    EXPECT_TRUE(out->content_equals(data)) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RsErasureSweep,
    ::testing::Values(std::make_tuple(2, 1, 3000),   // paper's EC profile
                      std::make_tuple(2, 2, 1024),
                      std::make_tuple(3, 2, 5000),
                      std::make_tuple(4, 2, 4096),
                      std::make_tuple(6, 3, 2000),
                      std::make_tuple(1, 1, 100),
                      std::make_tuple(5, 1, 777)));

TEST(ReedSolomon, ZeroLengthData) {
  ReedSolomon rs(2, 1);
  auto shards = rs.encode(Buffer());
  std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
  auto out = rs.decode(opt, 0);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(ReedSolomon, ParityOnlyRebuild) {
  ReedSolomon rs(2, 2);
  Buffer data = random_buffer(2048, 9);
  auto shards = rs.encode(data);
  std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
  opt[2].reset();
  opt[3].reset();  // both parities gone, data intact
  ASSERT_TRUE(rs.reconstruct(opt).is_ok());
  EXPECT_TRUE(opt[2]->content_equals(shards[2]));
  EXPECT_TRUE(opt[3]->content_equals(shards[3]));
}

}  // namespace
}  // namespace gdedup
