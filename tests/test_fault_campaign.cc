// Fault-injection campaign: seeded crash schedules against a live dedup
// cluster, refereed by the cluster-wide invariant checker.  The smoke tests
// here are the tier-1 slice of the campaign; the full >= 200-seed sweep
// lives in examples/fault_storm.cpp (scripts/run_faults.sh).

#include "rados/fault_campaign.h"

#include <gtest/gtest.h>

#include "cluster/fault_planner.h"
#include "dedup/invariants.h"
#include "rados/sync.h"

namespace gdedup {
namespace {

TEST(FaultPlan, SameSeedSameSchedule) {
  OsdMap map;
  for (int i = 0; i < 6; i++) map.add_osd(i, i / 2);
  const FaultPlan a = plan_faults(map, 42);
  const FaultPlan b = plan_faults(map, 42);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(a.events.empty());
  const FaultPlan c = plan_faults(map, 43);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, EpisodesAreSurvivable) {
  // Never two OSDs down at once; every crash is revived; net faults healed.
  OsdMap map;
  for (int i = 0; i < 6; i++) map.add_osd(i, i / 2);
  for (uint64_t seed = 1; seed <= 50; seed++) {
    const FaultPlan plan = plan_faults(map, seed);
    int down = 0;
    bool armed = false;
    bool net_fault = false;
    for (const FaultEvent& ev : plan.events) {
      switch (ev.action) {
        case FaultAction::kCrashOsd:
          down++;
          EXPECT_LE(down, 1) << "seed " << seed;
          break;
        case FaultAction::kReviveOsd:
          if (ev.osd >= 0) down--;
          armed = false;
          break;
        case FaultAction::kArmEnginePoint:
        case FaultAction::kArmOsdPoint:
          EXPECT_FALSE(armed) << "seed " << seed;  // one armed point at a time
          armed = true;
          break;
        case FaultAction::kNetDelay:
          EXPECT_LE(ev.dur, msec(25)) << "seed " << seed;
          net_fault = true;
          break;
        case FaultAction::kNetDrop:
          EXPECT_GE(ev.arg, 2) << "seed " << seed;
          net_fault = true;
          break;
        case FaultAction::kNetHeal:
          net_fault = false;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(down, 0) << "seed " << seed;
    EXPECT_FALSE(armed) << "seed " << seed;
    EXPECT_FALSE(net_fault) << "seed " << seed;
  }
}

TEST(FaultCampaign, SmokeReplicated) {
  FaultScheduleConfig cfg = schedule_config_for_seed(2);
  ASSERT_FALSE(cfg.ec_chunks);
  const ScheduleResult r = run_fault_schedule(cfg);
  EXPECT_TRUE(r.clean()) << r.report;
}

TEST(FaultCampaign, SmokeEc) {
  FaultScheduleConfig cfg = schedule_config_for_seed(1);
  ASSERT_TRUE(cfg.ec_chunks);
  const ScheduleResult r = run_fault_schedule(cfg);
  EXPECT_TRUE(r.clean()) << r.report;
}

TEST(FaultCampaign, SmokeSweep) {
  // One pass over the variant matrix (replicated/EC x async-deref x rate
  // control) — bounded for tier-1; the wide sweep is scripts/run_faults.sh.
  for (uint64_t seed = 1; seed <= 8; seed++) {
    const ScheduleResult r = run_fault_schedule(schedule_config_for_seed(seed));
    EXPECT_TRUE(r.clean()) << "seed " << seed << "\n" << r.report;
  }
}

TEST(FaultCampaign, SameSeedByteIdenticalReport) {
  const ScheduleResult a = run_fault_schedule(schedule_config_for_seed(5));
  const ScheduleResult b = run_fault_schedule(schedule_config_for_seed(5));
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.fired_points, b.fired_points);
}

TEST(FaultCampaign, CampaignAggregates) {
  CampaignConfig cc;
  cc.first_seed = 1;
  cc.schedules = 4;
  const CampaignSummary sum = run_fault_campaign(cc);
  EXPECT_EQ(sum.schedules, 4);
  EXPECT_TRUE(sum.clean()) << sum.to_string();
  EXPECT_FALSE(sum.to_string().empty());
}

TEST(FaultCampaign, InvariantCheckerFlagsPlantedDamage) {
  // The referee must actually referee: plant an unreachable chunk and a
  // truncated object in an otherwise-clean cluster and expect violations.
  FaultScheduleConfig cfg = schedule_config_for_seed(2);
  cfg.plan.max_episodes = 1;
  cfg.plan.allow_net_faults = false;
  const ScheduleResult clean = run_fault_schedule(cfg);
  ASSERT_TRUE(clean.clean()) << clean.report;

  // Separately, verify check() notices oracle drift on a live cluster.
  ClusterConfig ccfg;
  ccfg.storage_nodes = 3;
  ccfg.osds_per_node = 2;
  ccfg.client_nodes = 1;
  Cluster c(ccfg);
  const PoolId meta = c.create_replicated_pool("meta", 2, 64);
  const PoolId chunks = c.create_replicated_pool("chunks", 2, 64);
  DedupTierConfig d;
  d.mode = DedupMode::kPostProcess;
  d.chunk_size = 8 * 1024;
  d.engine_tick = msec(10);
  d.rate_control = false;
  c.enable_dedup(meta, chunks, d);
  RadosClient client(&c, c.client_node());
  Buffer body(32 * 1024, 0xAB);
  ASSERT_TRUE(sync_write_full(c, client, meta, "obj", body).is_ok());
  ASSERT_TRUE(c.drain_dedup(sec(60)));

  InvariantChecker checker(&c, meta, chunks);
  auto read_fn = [&](const std::string& oid) {
    return sync_read(c, client, meta, oid, 0, 0);
  };
  std::map<std::string, Buffer> oracle;
  oracle["obj"] = body;
  EXPECT_TRUE(checker.check(oracle, {}, read_fn).clean());

  // Oracle expects different bytes -> readback mismatch.
  std::map<std::string, Buffer> wrong;
  wrong["obj"] = Buffer(32 * 1024, 0xCD);
  const InvariantReport bad = checker.check(wrong, {}, read_fn);
  EXPECT_FALSE(bad.clean());

  // An object the oracle believes removed -> violation.
  const InvariantReport ghost = checker.check(oracle, {"obj"}, read_fn);
  EXPECT_FALSE(ghost.clean());
}

}  // namespace
}  // namespace gdedup
