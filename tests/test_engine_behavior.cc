// Background-engine behaviour under load: parallelism, budget accounting,
// rate-control integration with the live cluster, idempotent redo of the
// whole pipeline, and stop/start semantics.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/content.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(Engine, StoppedEngineNeverFlushes) {
  auto cfg = test_tier_config();
  DedupHarness h(cfg);
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)->stop();
  }
  ASSERT_TRUE(h.write("obj", 0, random_buffer(2 * kChunk, 1)).is_ok());
  h.cluster->sched().run_for(sec(5));
  EXPECT_EQ(h.cluster->tier_stats(h.meta).chunks_flushed, 0u);
  EXPECT_EQ(h.chunk_object_count(), 0u);

  // Restart: the backlog drains.
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)->start();
  }
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 2u);
}

TEST(Engine, KickRunsImmediately) {
  auto cfg = test_tier_config();
  cfg.engine_tick = sec(3600);  // a tick would naturally be an hour away
  DedupHarness h(cfg);
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 2)).is_ok());
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  h.cluster->tier_of(primary, h.meta)->kick();
  h.cluster->sched().run_for(sec(1));
  EXPECT_EQ(h.cluster->tier_stats(h.meta).chunks_flushed, 1u);
}

TEST(Engine, RateControlThrottlesOnBusyOsd) {
  // Saturate one OSD with foreground ops; its tier must trickle while the
  // idle tiers stay unthrottled (per-OSD watermarks).
  auto cfg = test_tier_config();
  cfg.rate_control = true;
  cfg.low_watermark_iops = 100;
  cfg.high_watermark_iops = 1000;
  cfg.engine_tick = msec(20);
  DedupHarness h(cfg);

  // Build a backlog on one object (its primary is the busy OSD).
  ASSERT_TRUE(h.write("busy", 0, random_buffer(8 * kChunk, 3)).is_ok());
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "busy");

  // Foreground hammer: 2000 IOPS of 4KB reads against the same object for
  // two virtual seconds.
  size_t outstanding = 0;
  for (int i = 0; i < 4000; i++) {
    h.cluster->sched().at(i * kMillisecond / 2, [&, i] {
      outstanding++;
      h.client->read(h.meta, "busy", (static_cast<uint64_t>(i) % 64) * 4096,
                     4096, [&](Result<Buffer>) { outstanding--; });
    });
  }
  h.cluster->sched().run_for(sec(2));
  const auto mid = h.cluster->tier_stats(h.meta);
  // Under ~2000 IOPS (above high watermark), at most fg/500 + slack dedup
  // ops may have run.
  EXPECT_LE(mid.chunks_flushed, 4000 / 500 + 4);

  // Load stops; the engine catches up.
  while (outstanding > 0) ASSERT_TRUE(h.cluster->sched().step());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.cluster->tier_stats(h.meta).chunks_flushed, 8u);
  (void)primary;
}

TEST(Engine, ParallelismShortensDrain) {
  // With parallelism 1 each tier flushes one object at a time; with 8 it
  // overlaps objects — a wide backlog drains measurably faster.
  auto run = [](int parallelism) {
    auto cfg = test_tier_config();
    cfg.engine_parallelism = parallelism;
    cfg.max_dedup_per_tick = 512;
    DedupHarness h(cfg);
    // ~4 dirty objects per OSD tier.
    for (int i = 0; i < 64; i++) {
      EXPECT_TRUE(
          h.write("o" + std::to_string(i), 0, random_buffer(4 * kChunk, 50 + i))
              .is_ok());
    }
    const SimTime t0 = h.cluster->sched().now();
    // Fine-grained drain polling (drain_dedup's 200ms poll would mask the
    // difference).
    auto busy = [&] {
      for (Osd* o : h.cluster->osds()) {
        if (h.cluster->tier_of(o->id(), h.meta)->dirty_backlog() > 0) {
          return true;
        }
      }
      return false;
    };
    while (busy()) h.cluster->sched().run_for(msec(1));
    return h.cluster->sched().now() - t0;
  };
  const SimTime serial = run(1);
  const SimTime parallel = run(8);
  EXPECT_LT(parallel, serial);
  // Both produced identical results; only the schedule differs.
}

TEST(Engine, RedoAfterFullVolatileLoss) {
  // Nuke every tier's volatile state *mid-flush storm*, rebuild, and
  // verify the persisted dirty bits drive the redo to a clean state.
  auto cfg = test_tier_config();
  cfg.engine_tick = msec(10);
  DedupHarness h(cfg);
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 12; i++) {
    Buffer d = workload::BlockContent::make(static_cast<uint64_t>(i % 5),
                                            3 * kChunk, 0.0);
    ASSERT_TRUE(h.write("r" + std::to_string(i), 0, d).is_ok());
    truth["r" + std::to_string(i)] = d;
  }
  // Let flushing start, then "restart" every OSD's tier.
  h.cluster->sched().run_for(msec(30));
  for (Osd* o : h.cluster->osds()) {
    DedupTier* t = h.cluster->tier_of(o->id(), h.meta);
    t->stop();
    t->rebuild_dirty_list();
    t->start();
  }
  ASSERT_TRUE(h.drain());
  for (const auto& [oid, d] : truth) {
    auto r = h.read(oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(d)) << oid;
  }
  EXPECT_TRUE(h.refcounts_consistent());
  // 5 distinct object contents, each splitting into 3 distinct chunks:
  // 15 unique chunk objects, no duplicates from the redo.
  EXPECT_EQ(h.chunk_object_count(), 15u);
}

TEST(Engine, DirtyBacklogVisibleInStats) {
  auto cfg = test_tier_config();
  cfg.engine_tick = sec(3600);
  DedupHarness h(cfg);
  ASSERT_TRUE(h.write("a", 0, random_buffer(kChunk, 1)).is_ok());
  ASSERT_TRUE(h.write("b", 0, random_buffer(kChunk, 2)).is_ok());
  size_t backlog = 0;
  for (Osd* o : h.cluster->osds()) {
    backlog += h.cluster->tier_of(o->id(), h.meta)->dirty_backlog();
  }
  EXPECT_EQ(backlog, 2u);
}

TEST(Engine, LruCacheCapacityEvictsColdest) {
  // Section 4.3: LRU cache management.  Cap the cached bytes; the coldest
  // objects lose their cached copies first, the recently-touched survive.
  auto cfg = test_tier_config();
  cfg.evict_after_flush = false;  // keep chunks cached after flushing
  // Per-OSD cap of one chunk: any tier that accumulates two cached
  // objects must shed its colder one.
  cfg.cache_capacity_bytes = kChunk;
  cfg.engine_tick = msec(20);
  DedupHarness h(cfg);

  // 24 objects x 1 chunk: several land on the same primary tier.
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 24; i++) {
    Buffer d = random_buffer(kChunk, 70 + static_cast<uint64_t>(i));
    ASSERT_TRUE(h.write("c" + std::to_string(i), 0, d).is_ok());
    truth["c" + std::to_string(i)] = d;
  }
  ASSERT_TRUE(h.drain());
  h.cluster->sched().run_for(sec(1));  // ticks enforce the cap

  const auto ts = h.cluster->tier_stats(h.meta);
  EXPECT_GT(ts.capacity_evictions, 0u);
  // Per-tier cap of one chunk: at most 16 cached chunks remain (x2
  // replicas) of the 24 written.
  const auto ms = h.cluster->pool_stats(h.meta);
  EXPECT_LE(ms.stored_data_bytes, 2u * 16 * kChunk);
  EXPECT_LT(ms.stored_data_bytes, 2u * 24 * kChunk);
  // Everything still reads back (evicted chunks redirect).
  for (const auto& [oid, d] : truth) {
    auto r = h.read(oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(d)) << oid;
  }
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(Engine, CacheCapUnlimitedByDefault) {
  auto cfg = test_tier_config();
  cfg.evict_after_flush = false;
  DedupHarness h(cfg);
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(h.write("u" + std::to_string(i), 0,
                        random_buffer(kChunk, 80 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  h.cluster->sched().run_for(sec(1));
  EXPECT_EQ(h.cluster->tier_stats(h.meta).capacity_evictions, 0u);
  // All chunks still cached (flush kept them, no cap).
  const auto ms = h.cluster->pool_stats(h.meta);
  EXPECT_EQ(ms.stored_data_bytes, 2u * 6 * kChunk);
}

}  // namespace
}  // namespace gdedup
