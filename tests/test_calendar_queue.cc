// Calendar-queue ordering property tests (sim/calendar_queue.h).
//
// The contract under test: pop order is strictly (t, key) ascending and a
// pure function of the queue contents — bucket geometry, width retunes and
// resizes can never reorder anything, including same-timestamp ties.  The
// sharded scheduler's determinism proof leans entirely on that, so the
// check here is exhaustive: every randomized workload is mirrored into a
// std::priority_queue reference and the two pop streams must be identical
// element by element.
//
// Workloads follow the hold model the scheduler produces in practice:
// interleaved insert/pop with a rising time cursor (the monotonicity
// contract — inserts carry t >= the last popped t), dense same-timestamp
// bursts (batch dispatch), tight near-time clusters (device completions),
// and sparse far-future tails (engine ticks, timeouts) that force the lap
// scan onto its min-over-heads fallback.  Volumes are chosen to push the
// queue through grow and shrink resizes mid-stream.

#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "common/random.h"
#include "sim/calendar_queue.h"
#include "sim/time.h"

namespace gdedup {
namespace {

// Min-heap reference with the exact (t, key) order the calendar promises.
struct RefLater {
  bool operator()(const std::pair<SimTime, uint64_t>& a,
                  const std::pair<SimTime, uint64_t>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};
using RefQueue =
    std::priority_queue<std::pair<SimTime, uint64_t>,
                        std::vector<std::pair<SimTime, uint64_t>>, RefLater>;

class Mirror {
 public:
  Mirror() : q_(&arena_) {}

  void insert(SimTime t, uint64_t key) {
    q_.insert(arena_.make(t, key));
    ref_.push({t, key});
  }

  // Pops from both and checks they agree (fatal on structural mismatch).
  void pop_checked() {
    EventNode* n = q_.pop_min();
    ASSERT_NE(n, nullptr) << "calendar empty but reference has "
                          << ref_.size() << " events";
    const auto expect = ref_.top();
    ref_.pop();
    EXPECT_EQ(n->t, expect.first);
    EXPECT_EQ(n->key, expect.second);
    last_t_ = n->t;
    arena_.destroy(n);
  }

  void drain_checked() {
    while (!ref_.empty()) {
      pop_checked();
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_TRUE(q_.empty());
    EXPECT_EQ(q_.size(), 0u);
  }

  SimTime last_t() const { return last_t_; }
  size_t size() const { return ref_.size(); }
  CalendarQueue& calendar() { return q_; }

 private:
  EventArena arena_;
  CalendarQueue q_;
  RefQueue ref_;
  SimTime last_t_ = 0;
};

TEST(CalendarQueue, FifoAmongSameTimestamp) {
  // Keys are the tie-break: a burst at one timestamp must come back in
  // key (i.e. insertion) order, exactly like the scheduler's FIFO seqs.
  Mirror m;
  uint64_t key = 1;
  for (int burst = 0; burst < 8; burst++) {
    const SimTime t = burst * 10 * kMicrosecond;
    for (int i = 0; i < 50; i++) m.insert(t, key++);
  }
  m.drain_checked();
}

TEST(CalendarQueue, OutOfOrderInsertWithinBucket) {
  // Inserts inside one bucket slice arrive in descending (t, key) so every
  // list-insert path (head, tail, middle) runs; pop order must still be
  // fully sorted.
  Mirror m;
  uint64_t key = 1000;
  for (int i = 63; i >= 0; i--) m.insert(i, key--);
  m.drain_checked();
}

TEST(CalendarQueue, SparseTailFallback)
{
  // Events far beyond one calendar lap of the scan point exercise the
  // min-over-heads fallback and the scan-point jump.
  Mirror m;
  uint64_t key = 1;
  m.insert(5 * kSecond, key++);
  m.insert(2 * kSecond, key++);
  m.insert(7 * kSecond, key++);
  m.insert(2 * kSecond, key++);  // tie at 2s: keys 2 then 4
  m.drain_checked();
}

// The main property: randomized hold-model streams, calendar vs reference.
void run_hold_model(uint64_t seed, int steps, int grow_target) {
  Rng rng(seed);
  Mirror m;
  uint64_t key = 1;
  SimTime cursor = 0;  // inserts must be >= the last popped time

  for (int step = 0; step < steps; step++) {
    // Bias toward inserts until the queue is big enough to have resized
    // upward, then toward pops so it shrinks back down — one pass covers
    // both resize directions plus steady-state churn in the middle.
    const bool want_insert =
        m.size() < static_cast<size_t>(grow_target)
            ? rng.uniform01() < 0.7
            : rng.uniform01() < 0.35;
    if (want_insert || m.size() == 0) {
      SimTime t;
      const double shape = rng.uniform01();
      if (shape < 0.30) {
        t = cursor;  // same-timestamp burst member
      } else if (shape < 0.85) {
        t = cursor + static_cast<SimTime>(rng.below(20 * kMicrosecond));
      } else if (shape < 0.97) {
        t = cursor + static_cast<SimTime>(rng.below(5 * kMillisecond));
      } else {
        t = cursor + kSecond + static_cast<SimTime>(rng.below(kSecond));
      }
      m.insert(t, key++);
    } else {
      m.pop_checked();
      if (::testing::Test::HasFatalFailure()) return;
      cursor = m.last_t();
    }
  }
  m.drain_checked();
}

TEST(CalendarQueue, HoldModelMatchesHeapReference) {
  // Several seeds, each long enough to grow past the initial 256 buckets
  // (grow triggers at size > 2 * buckets) and drain back through shrink.
  for (uint64_t seed : {1u, 2u, 3u, 12345u, 0xdeadu}) {
    run_hold_model(seed, 20000, 2000);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "hold-model divergence at seed " << seed;
    }
  }
}

TEST(CalendarQueue, ResizeActuallyHappens) {
  // Guard against the property test silently not covering resizes: the
  // bucket count must move both directions over a grow-then-drain pass.
  Mirror m;
  const size_t initial = m.calendar().num_buckets();
  uint64_t key = 1;
  Rng rng(99);
  for (int i = 0; i < 4096; i++) {
    m.insert(static_cast<SimTime>(rng.below(50 * kMicrosecond)), key++);
  }
  const size_t grown = m.calendar().num_buckets();
  EXPECT_GT(grown, initial);
  m.drain_checked();
  EXPECT_LT(m.calendar().num_buckets(), grown);
}

}  // namespace
}  // namespace gdedup
