// Cluster I/O edge cases: at-rest compression pools, higher redundancy
// (3x replication, EC m=2), boundary offsets, recreate-after-remove, and
// placement corner cases.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/content.h"

namespace gdedup {
namespace {

using testutil::random_buffer;

TEST(IoEdge, CompressedPoolRoundTrip) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("z", 2, 128, /*compress=*/true);
  RadosClient client(&c, c.client_node(0));
  // Highly compressible payload.
  Buffer data = workload::BlockContent::make(1, 256 * 1024, 0.9);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  auto r = sync_read(c, client, pool, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  const auto s = c.pool_stats(pool);
  EXPECT_EQ(s.logical_bytes, 2u * 256 * 1024);      // 2 replicas
  EXPECT_LT(s.stored_data_bytes, s.logical_bytes / 2);  // really compressed
}

TEST(IoEdge, CompressedPoolIncompressibleData) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("z", 2, 128, true);
  RadosClient client(&c, c.client_node(0));
  Buffer data = random_buffer(64 * 1024, 2);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  const auto s = c.pool_stats(pool);
  // Stored-raw fallback: at most a few bytes of framing per extent.
  EXPECT_LE(s.stored_data_bytes, s.logical_bytes + 64);
  EXPECT_TRUE(sync_read(c, client, pool, "obj", 0, 0)->content_equals(data));
}

TEST(IoEdge, ThreeWayReplication) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("r3", 3);
  RadosClient client(&c, c.client_node(0));
  Buffer data = random_buffer(16 * 1024, 3);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  auto acting = c.osdmap().acting(pool, "obj");
  ASSERT_EQ(acting.size(), 3u);
  std::set<NodeId> hosts;
  for (OsdId o : acting) {
    hosts.insert(c.node_of_osd(o));
    EXPECT_TRUE(c.osd(o)->local_exists(pool, "obj"));
  }
  EXPECT_EQ(hosts.size(), 3u);  // three distinct failure domains

  // Survives two failures.
  c.fail_osd(acting[0]);
  c.fail_osd(acting[1]);
  auto r = sync_read(c, client, pool, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(IoEdge, EcWithTwoParityShards) {
  Cluster c;
  const PoolId pool = c.create_ec_pool("ec22", 2, 2);
  RadosClient client(&c, c.client_node(0));
  Buffer data = random_buffer(100 * 1024, 4);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  auto acting = c.osdmap().acting(pool, "obj");
  ASSERT_EQ(acting.size(), 4u);
  // Any two shards may die.
  c.fail_osd(acting[0]);
  c.fail_osd(acting[2]);
  auto r = sync_read(c, client, pool, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(IoEdge, RecreateAfterRemove) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  ASSERT_TRUE(
      sync_write(c, client, pool, "obj", 0, Buffer::copy_of("first")).is_ok());
  ASSERT_TRUE(sync_remove(c, client, pool, "obj").is_ok());
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0,
                         Buffer::copy_of("second life"))
                  .is_ok());
  auto r = sync_read(c, client, pool, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->view(), "second life");
}

TEST(IoEdge, ReadWindowsAtExactBoundaries) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  Buffer data = random_buffer(10000, 5);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  // Exactly at the end, one before, one past.
  EXPECT_EQ(sync_read(c, client, pool, "obj", 10000, 10)->size(), 0u);
  EXPECT_EQ(sync_read(c, client, pool, "obj", 9999, 10)->size(), 1u);
  auto whole = sync_read(c, client, pool, "obj", 0, 10000);
  ASSERT_TRUE(whole.is_ok());
  EXPECT_TRUE(whole->content_equals(data));
}

TEST(IoEdge, ManySmallObjectsBalance) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2, /*pg_num=*/512);
  RadosClient client(&c, c.client_node(0));
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(sync_write(c, client, pool, "o" + std::to_string(i), 0,
                           Buffer(1024, static_cast<uint8_t>(i)))
                    .is_ok());
  }
  // Every OSD holds a share; no OSD dominates.
  size_t min_objs = SIZE_MAX, max_objs = 0;
  for (Osd* o : c.osds()) {
    const ObjectStore* st = o->store_if_exists(pool);
    const size_t n = st == nullptr ? 0 : st->list(pool).size();
    min_objs = std::min(min_objs, n);
    max_objs = std::max(max_objs, n);
  }
  EXPECT_GT(min_objs, 0u);
  EXPECT_LT(max_objs, 400u / 16 * 2 * 4);  // loose balance bound
}

TEST(IoEdge, XattrRoundTripThroughClient) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  ASSERT_TRUE(
      sync_write(c, client, pool, "obj", 0, Buffer::copy_of("x")).is_ok());
  bool done = false;
  client.setxattr(pool, "obj", "user.tag", Buffer::copy_of("blue"),
                  [&](Status s) {
                    ASSERT_TRUE(s.is_ok());
                    done = true;
                  });
  while (!done) ASSERT_TRUE(c.sched().step());
  done = false;
  Buffer got;
  client.getxattr(pool, "obj", "user.tag", [&](Result<Buffer> r) {
    ASSERT_TRUE(r.is_ok());
    got = std::move(r).value();
    done = true;
  });
  while (!done) ASSERT_TRUE(c.sched().step());
  EXPECT_EQ(got.view(), "blue");
}

TEST(IoEdge, DedupWithCompressedChunkPool) {
  // Dedup + at-rest compression composing (the Figure 13 "rep+dedup+comp"
  // path) down at the pool level.
  auto cfg = testutil::test_tier_config();
  Cluster c;
  const PoolId meta = c.create_replicated_pool("meta", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2, 128, true);
  c.enable_dedup(meta, chunks, cfg);
  RadosClient client(&c, c.client_node(0));
  Buffer data = workload::BlockContent::make(7, 64 * 1024, 0.8);
  ASSERT_TRUE(sync_write(c, client, meta, "obj", 0, data).is_ok());
  ASSERT_TRUE(c.drain_dedup());
  const auto ck = c.pool_stats(chunks);
  EXPECT_LT(ck.stored_data_bytes, 2u * 64 * 1024 / 2);  // compressed
  EXPECT_TRUE(sync_read(c, client, meta, "obj", 0, 0)->content_equals(data));
}

TEST(IoEdge, SequentialOverwriteConvergesToLastWriter) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  Buffer last;
  for (int i = 0; i < 10; i++) {
    last = random_buffer(8192, static_cast<uint64_t>(100 + i));
    ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, last).is_ok());
  }
  EXPECT_TRUE(sync_read(c, client, pool, "obj", 0, 0)->content_equals(last));
  // Replicas agree.
  auto acting = c.osdmap().acting(pool, "obj");
  auto a = c.osd(acting[0])->store(pool).read({pool, "obj"}, 0, 0);
  auto b = c.osd(acting[1])->store(pool).read({pool, "obj"}, 0, 0);
  EXPECT_TRUE(a->content_equals(*b));
}

}  // namespace
}  // namespace gdedup
