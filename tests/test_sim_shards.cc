// Shard-count invariance of the sharded event engine (sim/scheduler.h).
//
// The engine's contract: GDEDUP_SIM_SHARDS (and parallel window execution)
// change wall-clock behaviour only.  Every virtual-time observable — the
// e2e determinism digest, event counts, the virtual clock, the byte-stable
// fault-schedule report — must be identical at any shard count, because
// cross-shard messages are receiver-sequenced by (arrival, sender, msg_seq)
// and control-plane events run on the exclusive global lane (DESIGN.md §9
// has the full argument).  These tests enforce the contract at S in
// {1, 2, 4, 8} on both replicated and EC pools, under parallel window
// execution, and on a slice of the fault-injection campaign.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "rados/fault_campaign.h"
#include "sim_e2e_scenario.h"

namespace gdedup::bench {
namespace {

// Scoped setenv that restores the previous value (the sanitizer script
// runs this whole binary with GDEDUP_SIM_* already set; tests must not
// clobber that for their siblings).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = ::getenv(name);
    if (prev != nullptr) saved_ = prev;
    had_ = prev != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

SimE2eConfig shard_config(uint64_t seed, bool ec) {
  SimE2eConfig cfg;
  cfg.storage_nodes = 4;
  cfg.osds_per_node = 4;
  cfg.seed = seed;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  cfg.ec = ec;
  return cfg;
}

// Run the scenario at each shard count and require byte-identical
// virtual-time results against the 1-shard baseline.
void expect_shard_invariant(uint64_t seed, bool ec) {
  SimE2eConfig cfg = shard_config(seed, ec);
  cfg.sim_shards = 1;
  const SimE2eResult base = run_sim_e2e(cfg);
  ASSERT_TRUE(base.drained);
  EXPECT_EQ(base.sim_shards_used, 1);

  for (int shards : {2, 4, 8}) {
    cfg.sim_shards = shards;
    const SimE2eResult r = run_sim_e2e(cfg);
    EXPECT_EQ(r.sim_shards_used, shards);
    EXPECT_EQ(r.digest, base.digest)
        << (ec ? "EC" : "replicated") << " seed=" << seed << " diverged at "
        << shards << " shards (" << r.digest_samples << " samples)";
    EXPECT_EQ(r.sim_duration, base.sim_duration);
    EXPECT_EQ(r.events, base.events);
    EXPECT_EQ(r.ops, base.ops);
    EXPECT_TRUE(r.drained);
    // Sharding bookkeeping is real: multi-shard runs must have synced
    // windows and sequenced cross-shard traffic through ingress records.
    EXPECT_GT(r.sim.shard_sync_barriers, 0u);
    EXPECT_GT(r.sim.ingress_messages, 0u);
  }
}

TEST(SimShards, ReplicatedDigestInvariant) {
  expect_shard_invariant(/*seed=*/1, /*ec=*/false);
}

TEST(SimShards, EcDigestInvariant) {
  expect_shard_invariant(/*seed=*/7, /*ec=*/true);
}

TEST(SimShards, ParallelWindowsMatchSerial) {
  // Worker-thread window execution must reproduce the serial digest bit
  // for bit — the shared-state peeks are guarded by the gated locks and
  // cross-shard posts ride the inbox, so host-thread timing is invisible.
  SimE2eConfig cfg = shard_config(/*seed=*/1, /*ec=*/false);
  cfg.sim_shards = 1;
  SimE2eResult serial;
  {
    ScopedEnv env("GDEDUP_SIM_PARALLEL", "0");  // pin even under the script
    serial = run_sim_e2e(cfg);
  }

  cfg.sim_shards = 4;
  SimE2eResult par;
  {
    ScopedEnv env("GDEDUP_SIM_PARALLEL", "1");
    par = run_sim_e2e(cfg);
  }

  EXPECT_EQ(par.digest, serial.digest);
  EXPECT_EQ(par.sim_duration, serial.sim_duration);
  EXPECT_EQ(par.events, serial.events);
}

TEST(SimShards, EnvShardsReachTheCluster) {
  // ClusterConfig.sim_shards = 0 defers to GDEDUP_SIM_SHARDS: the knob
  // every bench and script uses.
  SimE2eConfig cfg = shard_config(/*seed=*/1, /*ec=*/false);
  cfg.image_bytes = 1ull << 20;
  cfg.random_writes = 16;
  cfg.random_reads = 16;
  cfg.sim_shards = 0;
  SimE2eResult r;
  {
    ScopedEnv env("GDEDUP_SIM_SHARDS", "4");
    r = run_sim_e2e(cfg);
  }
  EXPECT_EQ(r.sim_shards_used, 4);
  EXPECT_TRUE(r.drained);
}

TEST(SimShards, FaultScheduleReportInvariant) {
  // The fault campaign forces lockstep windows (injection hooks observe
  // cluster state at event granularity); its byte-stable report must still
  // be shard-count independent.  Seeds 1..4 sweep the campaign's
  // replicated/EC x async-deref variant matrix.
  for (uint64_t seed = 1; seed <= 4; seed++) {
    const FaultScheduleConfig cfg = schedule_config_for_seed(seed);
    ScheduleResult base;
    {
      ScopedEnv env("GDEDUP_SIM_SHARDS", "1");  // pin even under the script
      base = run_fault_schedule(cfg);
    }

    ScheduleResult sharded;
    {
      ScopedEnv env("GDEDUP_SIM_SHARDS", "4");
      sharded = run_fault_schedule(cfg);
    }

    EXPECT_EQ(sharded.report, base.report)
        << "fault schedule seed=" << seed << " diverged at 4 shards";
    EXPECT_EQ(sharded.clean(), base.clean());
  }
}

}  // namespace
}  // namespace gdedup::bench
