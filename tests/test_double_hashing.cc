// The headline idea, tested as properties: double hashing replaces the
// fingerprint index with the cluster placement function.
//
//  - equal content  => equal chunk OID => equal acting set, computed
//    identically by any node with the map (no coordination, no index)
//  - distinct content scatters uniformly over OSDs (the chunk pool load
//    balances by construction)
//  - the system needs no lookup structure: the number of bytes of
//    cluster-wide dedup metadata outside the objects themselves is zero

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/content.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(DoubleHashing, AnyObserverComputesTheSamePlacement) {
  // Two independent OsdMap instances with the same topology resolve a
  // content-derived OID to the same acting set — the property that lets
  // every OSD route chunk I/O without asking anyone.
  auto build = [] {
    OsdMap m;
    for (int i = 0; i < 16; i++) m.add_osd(i, i / 4);
    PoolConfig cfg;
    cfg.name = "chunks";
    m.create_pool(cfg);
    return m;
  };
  OsdMap a = build();
  OsdMap b = build();
  Rng rng(1);
  for (int i = 0; i < 200; i++) {
    Buffer content = random_buffer(1024, rng.next());
    const std::string oid =
        Fingerprint::compute(FingerprintAlgo::kSha256, content.span()).hex();
    EXPECT_EQ(a.acting(0, oid), b.acting(0, oid));
  }
}

TEST(DoubleHashing, DuplicatesWrittenFromDifferentClientsCollide) {
  // Three clients on different nodes write the same content to different
  // objects; one chunk object results, found with zero index lookups.
  DedupHarness h(test_tier_config());
  Buffer dup = random_buffer(kChunk, 7);
  for (int i = 0; i < 3; i++) {
    RadosClient client(h.cluster.get(), h.cluster->client_node(i));
    ASSERT_TRUE(sync_write(*h.cluster, client, h.meta,
                           "client" + std::to_string(i), 0, dup)
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 3u);
}

TEST(DoubleHashing, ChunkPoolLoadBalances) {
  // Unique chunks spread across OSDs proportionally — placement by
  // content hash inherits CRUSH's balance.
  DedupHarness h(test_tier_config());
  const int n = 256;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(h.write("o" + std::to_string(i), 0,
                        random_buffer(kChunk, 1000 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  size_t total = 0, max_per_osd = 0;
  for (Osd* o : h.cluster->osds()) {
    const ObjectStore* st = o->store_if_exists(h.chunks);
    const size_t k = st == nullptr ? 0 : st->list(h.chunks).size();
    total += k;
    max_per_osd = std::max(max_per_osd, k);
  }
  EXPECT_EQ(total, 2u * n);  // every chunk x2 replicas
  // Perfect balance would be 2n/16 = 32; allow PG-granularity slack.
  EXPECT_LT(max_per_osd, 32u * 3);
}

TEST(DoubleHashing, NoExternalMetadataStructures) {
  // Invariant: after arbitrary dedup activity, every byte of dedup state
  // lives inside pool objects (chunk maps in omap, refs in xattrs).  The
  // only process-wide structures are volatile queues that rebuild from
  // the objects — proven by wiping them and re-deriving.
  DedupHarness h(test_tier_config());
  Buffer a = random_buffer(kChunk, 1);
  Buffer b = random_buffer(2 * kChunk, 2);
  ASSERT_TRUE(h.write("a", 0, a).is_ok());
  ASSERT_TRUE(h.write("b", 0, b).is_ok());
  // Wipe volatile tier state mid-dirty, rebuild from persisted objects.
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)->rebuild_dirty_list();
  }
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("a", 0, 0)->content_equals(a));
  EXPECT_TRUE(h.read("b", 0, 0)->content_equals(b));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(DoubleHashing, FingerprintSpaceHasNoObservedCollisions) {
  // 20k distinct 64-byte contents -> 20k distinct OIDs (SHA-256: a
  // collision here would be publishable).
  std::unordered_set<std::string> oids;
  Rng rng(3);
  for (int i = 0; i < 20000; i++) {
    Buffer b(64);
    rng.fill(b.mutable_data(), b.size());
    oids.insert(
        Fingerprint::compute(FingerprintAlgo::kSha256, b.span()).hex());
  }
  EXPECT_EQ(oids.size(), 20000u);
}

TEST(DoubleHashing, RemapFollowsContentNotHistory) {
  // After topology change, a *reader that never saw the old map* still
  // finds every chunk: placement is a pure function of (content, map).
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(3 * kChunk, 9);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  h.cluster->add_osd(1);
  h.cluster->add_osd(3);
  h.cluster->recover();
  // A brand-new client resolves reads purely through the current map.
  RadosClient fresh(h.cluster.get(), h.cluster->client_node(2));
  auto r = sync_read(*h.cluster, fresh, h.meta, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

}  // namespace
}  // namespace gdedup
