// Cross-cutting determinism properties: the whole simulation is a pure
// function of its seeds — identical runs produce identical clusters, and
// op-stream generators are stable across instances (the property every
// bench's paper-vs-measured comparison quietly relies on).

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fio_gen.h"
#include "workload/sfs_db.h"
#include "workload/vm_corpus.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(Determinism, IdenticalRunsProduceIdenticalClusters) {
  auto run = [] {
    DedupHarness h(test_tier_config());
    workload::FioConfig cfg;
    cfg.total_bytes = 4ull << 20;
    cfg.block_size = kChunk;
    cfg.dedupe_ratio = 0.5;
    workload::FioGenerator gen(cfg);
    for (uint64_t b = 0; b < gen.num_blocks(); b++) {
      EXPECT_TRUE(h.write("o" + std::to_string(b), 0, gen.block(b)).is_ok());
    }
    EXPECT_TRUE(h.drain());
    struct Snapshot {
      SimTime now;
      uint64_t physical;
      uint64_t chunks;
      uint64_t refs;
      uint64_t flushed;
    };
    return Snapshot{h.cluster->sched().now(),
                    h.cluster->total_physical_bytes(), h.chunk_object_count(),
                    h.total_chunk_refs(),
                    h.cluster->tier_stats(h.meta).chunks_flushed};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.now, b.now);  // virtual time itself is reproducible
  EXPECT_EQ(a.physical, b.physical);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.refs, b.refs);
  EXPECT_EQ(a.flushed, b.flushed);
}

TEST(Determinism, OpStreamsStableAcrossInstances) {
  auto a = workload::make_random_ops(1 << 20, 8192, 500, true, 0.3, 99);
  auto b = workload::make_random_ops(1 << 20, 8192, 500, true, 0.3, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].content_seed, b[i].content_seed);
  }
  auto c = workload::make_random_ops(1 << 20, 8192, 500, true, 0.3, 100);
  bool differs = false;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].offset != c[i].offset) differs = true;
  }
  EXPECT_TRUE(differs);  // different seed, different stream
}

TEST(Determinism, SfsDatasetStableButLoadSensitive) {
  workload::SfsDbConfig c1;
  c1.load = 3;
  c1.dataset_bytes = 8 << 20;
  workload::SfsDbGenerator g1(c1), g2(c1);
  for (uint64_t i = 0; i < g1.num_pages(); i += 17) {
    EXPECT_EQ(g1.dataset_page_seed(i), g2.dataset_page_seed(i));
  }
  workload::SfsDbConfig c2 = c1;
  c2.load = 10;
  workload::SfsDbGenerator g3(c2);
  size_t diff = 0;
  for (uint64_t i = 0; i < g1.num_pages(); i++) {
    if (g1.dataset_page_seed(i) != g3.dataset_page_seed(i)) diff++;
  }
  EXPECT_GT(diff, g1.num_pages() / 4);  // the profile really changes
}

TEST(Determinism, VmImageCorpusStable) {
  workload::VmImageConfig cfg;
  cfg.image_bytes = 4 << 20;
  workload::VmImageCorpus a(cfg), b(cfg);
  for (uint64_t blk = 0; blk < a.blocks_per_image(); blk += 13) {
    EXPECT_TRUE(a.image_block(2, blk).content_equals(b.image_block(2, blk)));
  }
}

TEST(Determinism, RecoveryIsReproducible) {
  auto run = [] {
    Cluster c;
    const PoolId pool = c.create_replicated_pool("p", 2);
    RadosClient client(&c, c.client_node(0));
    for (int i = 0; i < 20; i++) {
      EXPECT_TRUE(sync_write(c, client, pool, "o" + std::to_string(i), 0,
                             testutil::random_buffer(32 * 1024,
                                                     static_cast<uint64_t>(i)))
                      .is_ok());
    }
    c.fail_osd(5);
    c.revive_osd(5, true);
    uint64_t bytes = 0;
    const SimTime dur = c.recover(nullptr, &bytes);
    return std::make_pair(dur, bytes);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace gdedup
