// Failure recovery: replicated backfill, EC shard rebuild, dedup metadata
// surviving recovery intact, and the Table 3 effect (dedup shrinks the
// recovery volume).

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fio_gen.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(Recovery, ReplicatedBackfillRestoresReplicas) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));

  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 20; i++) {
    const std::string oid = "o" + std::to_string(i);
    Buffer data = random_buffer(64 * 1024, static_cast<uint64_t>(i));
    ASSERT_TRUE(sync_write(c, client, pool, oid, 0, data).is_ok());
    truth[oid] = data;
  }

  // Fail one OSD, wipe it (disk replacement), re-add, backfill.
  c.fail_osd(3);
  c.revive_osd(3, /*wipe_store=*/true);
  uint64_t objects = 0, bytes = 0;
  const SimTime dur = c.recover(&objects, &bytes);
  EXPECT_GT(dur, 0);
  EXPECT_GT(objects, 0u);
  EXPECT_GT(bytes, 0u);

  // Every object again has a full acting set of holders with equal bytes.
  for (const auto& [oid, data] : truth) {
    auto acting = c.osdmap().acting(pool, oid);
    ASSERT_EQ(acting.size(), 2u);
    for (OsdId o : acting) {
      const ObjectStore* st = c.osd(o)->store_if_exists(pool);
      ASSERT_NE(st, nullptr);
      auto local = st->read({pool, oid}, 0, 0);
      ASSERT_TRUE(local.is_ok()) << oid << " on osd " << o;
      EXPECT_TRUE(local->content_equals(data));
    }
    auto r = sync_read(c, client, pool, oid, 0, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(r->content_equals(data));
  }
}

TEST(Recovery, RecoveryPreservesXattrsAndOmap) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  ASSERT_TRUE(
      sync_write(c, client, pool, "obj", 0, random_buffer(4096, 1)).is_ok());
  bool done = false;
  client.setxattr(pool, "obj", "meta", Buffer::copy_of("v"), [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  while (!done) ASSERT_TRUE(c.sched().step());

  auto acting = c.osdmap().acting(pool, "obj");
  c.fail_osd(acting[1]);
  c.revive_osd(acting[1], /*wipe_store=*/true);
  c.recover();
  auto raw = c.osd(acting[1])->local_getxattr(pool, "obj", "meta");
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ(raw->view(), "v");
}

TEST(Recovery, EcShardRebuild) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_ec_pool("ec", 2, 1);
  RadosClient client(&c, c.client_node(0));

  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 12; i++) {
    const std::string oid = "e" + std::to_string(i);
    Buffer data = random_buffer(96 * 1024, static_cast<uint64_t>(100 + i));
    ASSERT_TRUE(sync_write(c, client, pool, oid, 0, data).is_ok());
    truth[oid] = data;
  }

  c.fail_osd(5);
  c.revive_osd(5, /*wipe_store=*/true);
  uint64_t objects = 0;
  c.recover(&objects, nullptr);

  for (const auto& [oid, data] : truth) {
    auto acting = c.osdmap().acting(pool, oid);
    ASSERT_EQ(acting.size(), 3u);
    for (size_t i = 0; i < acting.size(); i++) {
      ASSERT_TRUE(c.osd(acting[i])->local_exists(pool, oid))
          << oid << " missing on shard " << i;
    }
    auto r = sync_read(c, client, pool, oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(data)) << oid;
  }
}

TEST(Recovery, EcReadWorksDuringDegradedWindow) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_ec_pool("ec", 2, 1);
  RadosClient client(&c, c.client_node(0));
  Buffer data = random_buffer(64 * 1024, 7);
  ASSERT_TRUE(sync_write(c, client, pool, "obj", 0, data).is_ok());
  auto acting_before = c.osdmap().acting(pool, "obj");
  c.fail_osd(acting_before[0]);  // lose the primary shard
  auto r = sync_read(c, client, pool, "obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

TEST(Recovery, DedupStateSurvivesRecovery) {
  // Invariant 2 end-to-end: chunk maps, refcounts and chunk objects are
  // ordinary object state, so recovery restores dedup functionality with
  // zero special-casing.
  DedupHarness h(test_tier_config());
  Buffer shared = random_buffer(kChunk, 1);
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(h.write("o" + std::to_string(i), 0, shared).is_ok());
  }
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);

  h.cluster->fail_osd(2);
  h.cluster->revive_osd(2, /*wipe_store=*/true);
  h.cluster->recover();

  EXPECT_TRUE(h.refcounts_consistent());
  for (int i = 0; i < 8; i++) {
    auto r = h.read("o" + std::to_string(i), 0, 0);
    ASSERT_TRUE(r.is_ok()) << i;
    EXPECT_TRUE(r->content_equals(shared)) << i;
  }
  // Writes after recovery continue to dedup against existing chunks.
  ASSERT_TRUE(h.write("new", 0, shared).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 9u);
}

TEST(Recovery, DedupShrinksRecoveryTime) {
  // Table 3's mechanism: with 50% duplicate content, the deduplicated
  // cluster recovers materially faster because fewer bytes move.
  const uint64_t kTotal = 16ull << 20;  // scaled volume
  auto build_and_measure = [&](bool dedup) {
    auto cfg = test_tier_config();
    cfg.max_dedup_per_tick = 1024;
    std::unique_ptr<DedupHarness> h;
    std::unique_ptr<Cluster> plain;
    PoolId pool = -1;
    RadosClient* client = nullptr;
    std::unique_ptr<RadosClient> plain_client;
    if (dedup) {
      h = std::make_unique<DedupHarness>(cfg);
      pool = h->meta;
      client = h->client.get();
    } else {
      plain = std::make_unique<Cluster>(testutil::small_cluster_config());
      pool = plain->create_replicated_pool("p", 2);
      plain_client =
          std::make_unique<RadosClient>(plain.get(), plain->client_node(0));
      client = plain_client.get();
    }
    Cluster& c = dedup ? *h->cluster : *plain;

    // 50%-duplicate content, 1MB objects.
    workload::FioConfig fcfg;
    fcfg.total_bytes = kTotal;
    fcfg.block_size = kChunk;
    fcfg.dedupe_ratio = 0.5;
    workload::FioGenerator gen(fcfg);
    const uint64_t blocks_per_obj = (1 << 20) / kChunk;
    for (uint64_t b = 0; b < gen.num_blocks(); b++) {
      const std::string oid = "img" + std::to_string(b / blocks_per_obj);
      EXPECT_TRUE(sync_write(c, *client, pool,
                             oid, (b % blocks_per_obj) * kChunk, gen.block(b))
                      .is_ok());
    }
    if (dedup) {
      EXPECT_TRUE(h->drain());
    }

    // Lose a whole host (4 OSDs): replicas never share a host, so data
    // survives, and a quarter of all replicas must be rebuilt.
    for (OsdId o : {0, 1, 2, 3}) {
      c.fail_osd(o);
      c.revive_osd(o, /*wipe_store=*/true);
    }
    uint64_t bytes = 0;
    const SimTime dur = c.recover(nullptr, &bytes);
    EXPECT_GT(bytes, 0u);
    return std::make_pair(dur, bytes);
  };

  const auto [t_plain, b_plain] = build_and_measure(false);
  const auto [t_dedup, b_dedup] = build_and_measure(true);
  EXPECT_LT(b_dedup, b_plain);
  EXPECT_LT(t_dedup, t_plain);
}

TEST(Recovery, NothingToRecoverIsFast) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  ASSERT_TRUE(
      sync_write(c, client, pool, "obj", 0, random_buffer(4096, 1)).is_ok());
  uint64_t objects = 99;
  c.recover(&objects, nullptr);
  EXPECT_EQ(objects, 0u);
}

TEST(Recovery, MultipleFailedOsds) {
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 30; i++) {
    const std::string oid = "m" + std::to_string(i);
    Buffer data = random_buffer(32 * 1024, static_cast<uint64_t>(i));
    ASSERT_TRUE(sync_write(c, client, pool, oid, 0, data).is_ok());
    truth[oid] = data;
  }
  // Fail two OSDs on the same host: replicas never share a host, so at
  // most one copy of each object is lost.
  c.fail_osd(0);
  c.fail_osd(1);
  c.revive_osd(0, true);
  c.revive_osd(1, true);
  c.recover();
  for (const auto& [oid, data] : truth) {
    auto r = sync_read(c, client, pool, oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(data));
  }
}

TEST(Recovery, DedupWithEcChunkPoolSurvivesRecovery) {
  // The Proposed-EC layout under failure: chunk shards rebuilt via
  // Reed-Solomon, chunk maps via replication, dedup still functional.
  DedupHarness h(test_tier_config(), testutil::small_cluster_config(),
                 RedundancyScheme::kErasure);
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 6; i++) {
    Buffer data = random_buffer(2 * kChunk + 500, 300 + static_cast<uint64_t>(i));
    ASSERT_TRUE(h.write("e" + std::to_string(i), 0, data).is_ok());
    truth["e" + std::to_string(i)] = data;
  }
  ASSERT_TRUE(h.drain());

  h.cluster->fail_osd(6);
  h.cluster->revive_osd(6, /*wipe_store=*/true);
  h.cluster->recover();

  for (const auto& [oid, data] : truth) {
    auto r = h.read(oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(data)) << oid;
  }
  // Dedup still collapses new duplicates post-recovery.
  ASSERT_TRUE(h.write("dup", 0, truth["e0"]).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(Recovery, RepeatedFailureCycles) {
  // Churn: fail/revive different OSDs in sequence; data survives every
  // cycle and recovery volume stays bounded.
  Cluster c(testutil::small_cluster_config());
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 24; i++) {
    Buffer d = random_buffer(16 * 1024, static_cast<uint64_t>(400 + i));
    ASSERT_TRUE(
        sync_write(c, client, pool, "c" + std::to_string(i), 0, d).is_ok());
    truth["c" + std::to_string(i)] = d;
  }
  for (OsdId victim : {2, 7, 11, 14, 2}) {
    c.fail_osd(victim);
    c.revive_osd(victim, /*wipe_store=*/true);
    c.recover();
    for (const auto& [oid, d] : truth) {
      auto r = sync_read(c, client, pool, oid, 0, 0);
      ASSERT_TRUE(r.is_ok()) << oid << " after osd " << victim;
      EXPECT_TRUE(r->content_equals(d));
    }
  }
}

}  // namespace
}  // namespace gdedup
