// Consistency model (Section 4.6): injected engine crashes at every
// failure point must never lose data, and redoing the dedup pass must
// converge to a clean, refcount-consistent state.  Also covers dirty-list
// reconstruction from self-contained objects after a primary restart.

#include <gtest/gtest.h>

#include "dedup/scrub.h"
#include "test_util.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

class FailurePointSweep : public ::testing::TestWithParam<FailurePoint> {};

// Crash the engine once at the parameterized point during the first flush
// of an object, then let the redo pass run.  The object must stay readable
// throughout and end up clean.
TEST_P(FailurePointSweep, FirstFlushCrashConverges) {
  const FailurePoint fp = GetParam();
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 1);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());

  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  DedupTier* tier = h.cluster->tier_of(primary, h.meta);
  int hits = 0;
  tier->set_failure_hook([&](FailurePoint p, const std::string& oid) {
    if (p == fp && oid == "obj" && hits == 0) {
      hits++;
      return true;  // crash here, once
    }
    return false;
  });

  h.cluster->sched().run_for(sec(1));
  if (fp != FailurePoint::kBeforeDeref) {
    // kBeforeDeref fires on every flush attempt's entry; the others need
    // the pipeline to have reached them at least once.
    EXPECT_GE(hits, 0);
  }
  // Data readable mid-redo.
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));

  // Redo converges.
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(hits, 1);
  ChunkMap cm0 = testutil::load_map_at(*h.cluster, primary, h.meta, "obj");
  auto* cm = &cm0;
  ASSERT_NE(cm->find(0), nullptr);
  EXPECT_FALSE(cm->find(0)->dirty);
  EXPECT_TRUE(cm->find(0)->flushed());
  EXPECT_TRUE(h.refcounts_consistent());
  r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
}

// Crash during a *re*-flush (overwrite of already-flushed content): the
// dangerous window where the old chunk is dereferenced before the new one
// lands (Figure 9 steps 3-5).
TEST_P(FailurePointSweep, ReflushCrashNeverLosesNewData) {
  const FailurePoint fp = GetParam();
  DedupHarness h(test_tier_config());
  Buffer v1 = random_buffer(kChunk, 2);
  Buffer v2 = random_buffer(kChunk, 3);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  ASSERT_TRUE(h.drain());

  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  DedupTier* tier = h.cluster->tier_of(primary, h.meta);
  int hits = 0;
  tier->set_failure_hook([&](FailurePoint p, const std::string& oid) {
    if (p == fp && oid == "obj" && hits == 0) {
      hits++;
      return true;
    }
    return false;
  });

  ASSERT_TRUE(h.write("obj", 0, v2).is_ok());
  h.cluster->sched().run_for(sec(1));
  // The cached copy is authoritative while dirty: reads must return v2
  // even though chunk-pool state is mid-transition.
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(v2));

  ASSERT_TRUE(h.drain());
  EXPECT_EQ(hits, 1);
  r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(v2));
  EXPECT_TRUE(h.refcounts_consistent());
  // v1's chunk must be reclaimed.  The pipeline releases the old chunk
  // only after the new one is committed, so a crash at or before the
  // deref leaves v1's chunk holding a false-positive ref (Section 4.6) —
  // one GC pass drops the stale ref and reclaims it.
  Scrubber gc(h.cluster.get(), h.meta, h.chunks);
  (void)gc.collect_garbage();
  const Fingerprint f1 =
      Fingerprint::compute(FingerprintAlgo::kSha256, v1.span());
  const OsdId cp = h.cluster->osdmap().primary(h.chunks, f1.hex());
  EXPECT_FALSE(h.cluster->osd(cp)->local_exists(h.chunks, f1.hex()));
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, FailurePointSweep,
    ::testing::Values(FailurePoint::kBeforeDeref, FailurePoint::kAfterDeref,
                      FailurePoint::kAfterChunkPut,
                      FailurePoint::kBeforeMapUpdate),
    [](const ::testing::TestParamInfo<FailurePoint>& info) {
      switch (info.param) {
        case FailurePoint::kBeforeDeref:
          return std::string("BeforeDeref");
        case FailurePoint::kAfterDeref:
          return std::string("AfterDeref");
        case FailurePoint::kAfterChunkPut:
          return std::string("AfterChunkPut");
        case FailurePoint::kBeforeMapUpdate:
          return std::string("BeforeMapUpdate");
      }
      return std::string("Unknown");
    });

TEST(Consistency, RepeatedCrashesEventuallyConverge) {
  // Crash the engine on the first N flush attempts; attempt N+1 succeeds.
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(2 * kChunk, 4);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());

  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  DedupTier* tier = h.cluster->tier_of(primary, h.meta);
  int budget = 5;
  tier->set_failure_hook([&](FailurePoint p, const std::string&) {
    if (p == FailurePoint::kAfterChunkPut && budget > 0) {
      budget--;
      return true;
    }
    return false;
  });
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(budget, 0);
  EXPECT_TRUE(h.refcounts_consistent());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(data));
  // Idempotent puts: duplicate flush retries did not double-store.
  EXPECT_EQ(h.chunk_object_count(), 2u);
}

TEST(Consistency, DirtyListRebuiltFromChunkMaps) {
  // The dirty list is volatile; the authoritative dirty bits live in the
  // self-contained objects.  Simulate an engine restart that lost the
  // in-memory list and rebuild it by scanning chunk maps.
  auto cfg = test_tier_config();
  cfg.engine_tick = sec(3600);  // engine effectively off
  DedupHarness h(cfg);
  ASSERT_TRUE(h.write("a", 0, random_buffer(kChunk, 5)).is_ok());
  ASSERT_TRUE(h.write("b", 0, random_buffer(kChunk, 6)).is_ok());

  for (Osd* o : h.cluster->osds()) {
    DedupTier* t = h.cluster->tier_of(o->id(), h.meta);
    // "Restart": wipe the volatile list, then rebuild from the store.
    t->rebuild_dirty_list();
  }
  const OsdId pa = h.cluster->osdmap().primary(h.meta, "a");
  const OsdId pb = h.cluster->osdmap().primary(h.meta, "b");
  EXPECT_TRUE(h.cluster->tier_of(pa, h.meta)->is_dirty("a"));
  EXPECT_TRUE(h.cluster->tier_of(pb, h.meta)->is_dirty("b"));
  // Non-primaries scanning their replica stores also see the dirty bits —
  // any replica can take over the engine role.
  int holders_a = 0;
  for (Osd* o : h.cluster->osds()) {
    if (o->local_exists(h.meta, "a")) holders_a++;
  }
  EXPECT_EQ(holders_a, 2);
}

TEST(Consistency, ChunkMapReplicatedWithObject) {
  // Invariant 2: dedup metadata rides inside the object, so every replica
  // holds an identical chunk map (no external structures to sync).
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(3 * kChunk, 7);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  auto acting = h.cluster->osdmap().acting(h.meta, "obj");
  ASSERT_EQ(acting.size(), 2u);
  ChunkMap m0 = testutil::load_map_at(*h.cluster, acting[0], h.meta, "obj");
  ChunkMap m1 = testutil::load_map_at(*h.cluster, acting[1], h.meta, "obj");
  ASSERT_GT(m0.size(), 0u);
  EXPECT_TRUE(m0.encode().content_equals(m1.encode()));
}

TEST(Consistency, RefsReplicatedWithChunkObject) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 8);
  ASSERT_TRUE(h.write("a", 0, data).is_ok());
  ASSERT_TRUE(h.write("b", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());
  auto acting = h.cluster->osdmap().acting(h.chunks, fp.hex());
  ASSERT_EQ(acting.size(), 2u);
  for (OsdId o : acting) {
    auto raw = h.cluster->osd(o)->local_getxattr(h.chunks, fp.hex(),
                                                 kRefsXattr);
    ASSERT_TRUE(raw.is_ok()) << "osd " << o;
    auto refs = decode_refs(raw.value());
    ASSERT_TRUE(refs.is_ok());
    EXPECT_EQ(refs->size(), 2u) << "osd " << o;
  }
}

TEST(Consistency, CrashedClientWriteIsDetectable) {
  // Failure at step (1)/(2) of Figure 9: the client write never acks when
  // the primary crashes; the client can detect it by timeout and the
  // store is not half-written on the survivors after recovery redo.
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 9)).is_ok());
  const OsdId primary = h.cluster->osdmap().primary(h.meta, "obj");
  // Undetected crash: the map still routes to the dead primary (failure
  // detection has not fired yet), and the op is silently dropped.
  Osd* po = h.cluster->osd(primary);
  po->set_drop_when_down(true);
  po->set_up(false);

  bool acked = false;
  h.client->write(h.meta, "obj", 0, random_buffer(kChunk, 10),
                  [&](Status) { acked = true; });
  h.cluster->sched().run_for(sec(1));
  EXPECT_FALSE(acked);  // write time-out: client knows it failed
  po->set_up(true);
}

}  // namespace
}  // namespace gdedup
