// Buffer: copy-on-write semantics, slicing, resize, write_at.

#include "common/buffer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gdedup {
namespace {

TEST(Buffer, EmptyDefault) {
  Buffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Buffer, ZeroFilledConstruction) {
  Buffer b(16);
  ASSERT_EQ(b.size(), 16u);
  for (size_t i = 0; i < 16; i++) EXPECT_EQ(b[i], 0);
}

TEST(Buffer, FillConstruction) {
  Buffer b(8, 0xAB);
  for (size_t i = 0; i < 8; i++) EXPECT_EQ(b[i], 0xAB);
}

TEST(Buffer, CopyOfString) {
  Buffer b = Buffer::copy_of("hello");
  EXPECT_EQ(b.view(), "hello");
}

TEST(Buffer, CopySharesStorage) {
  Buffer a = Buffer::copy_of("shared bytes");
  Buffer b = a;
  EXPECT_TRUE(a.shares_storage_with(b));
}

TEST(Buffer, MutationDetaches) {
  Buffer a = Buffer::copy_of("shared bytes");
  Buffer b = a;
  b.mutable_data()[0] = 'X';
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(a.view(), "shared bytes");
  EXPECT_EQ(b.view(), "Xhared bytes");
}

TEST(Buffer, SliceIsZeroCopy) {
  Buffer a = Buffer::copy_of("0123456789");
  Buffer s = a.slice(2, 4);
  EXPECT_EQ(s.view(), "2345");
  EXPECT_TRUE(s.shares_storage_with(a));
}

TEST(Buffer, SliceClampsToBounds) {
  Buffer a = Buffer::copy_of("abc");
  EXPECT_EQ(a.slice(1, 100).view(), "bc");
  EXPECT_EQ(a.slice(5, 2).size(), 0u);
}

TEST(Buffer, SliceThenMutateDetachesCorrectWindow) {
  Buffer a = Buffer::copy_of("0123456789");
  Buffer s = a.slice(3, 3);
  s.mutable_data()[0] = 'X';
  EXPECT_EQ(s.view(), "X45");
  EXPECT_EQ(a.view(), "0123456789");
}

TEST(Buffer, Concat) {
  Buffer c = Buffer::concat(Buffer::copy_of("foo"), Buffer::copy_of("bar"));
  EXPECT_EQ(c.view(), "foobar");
  EXPECT_EQ(Buffer::concat(Buffer(), Buffer()).size(), 0u);
}

TEST(Buffer, WriteAtGrows) {
  Buffer b = Buffer::copy_of("abc");
  b.write_at(5, Buffer::copy_of("XY"));
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[3], 0);  // gap zero-filled
  EXPECT_EQ(b[5], 'X');
}

TEST(Buffer, WriteAtOverlap) {
  Buffer b = Buffer::copy_of("abcdef");
  b.write_at(2, Buffer::copy_of("XY"));
  EXPECT_EQ(b.view(), "abXYef");
}

TEST(Buffer, ResizeShrinkAndGrow) {
  Buffer b = Buffer::copy_of("abcdef");
  b.resize(3);
  EXPECT_EQ(b.view(), "abc");
  b.resize(5);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[3], 0);
  EXPECT_EQ(b[4], 0);
}

TEST(Buffer, ResizeDetachesSharer) {
  Buffer a = Buffer::copy_of("abcdef");
  Buffer b = a;
  b.resize(2);
  EXPECT_EQ(a.view(), "abcdef");
  EXPECT_EQ(b.view(), "ab");
}

TEST(Buffer, ContentEquals) {
  Buffer a = Buffer::copy_of("same");
  Buffer b = Buffer::copy_of("same");
  Buffer c = Buffer::copy_of("diff");
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_FALSE(a.content_equals(c));
  EXPECT_TRUE(Buffer().content_equals(Buffer()));
}

TEST(Buffer, SliceOfSlice) {
  Buffer a = Buffer::copy_of("0123456789");
  Buffer s1 = a.slice(2, 6);  // "234567"
  Buffer s2 = s1.slice(1, 3);  // "345"
  EXPECT_EQ(s2.view(), "345");
}

TEST(Buffer, MutableDataOnEmpty) {
  Buffer b;
  b.mutable_data();  // must not crash; empty buffers stay empty
  EXPECT_EQ(b.size(), 0u);
  b.write_at(0, Buffer::copy_of("x"));
  EXPECT_EQ(b.view(), "x");
}

// Generation semantics backing the fingerprint memoization cache: equal
// (storage_id, generation) must imply identical bytes for the storage's
// whole lifetime.

TEST(Buffer, GenerationsAreUniquePerAllocation) {
  Buffer a = Buffer::copy_of("aaaa");
  Buffer b = Buffer::copy_of("aaaa");
  EXPECT_NE(a.generation(), 0u);
  EXPECT_NE(a.generation(), b.generation());
  EXPECT_NE(a.storage_id(), nullptr);
  EXPECT_NE(a.storage_id(), b.storage_id());
}

TEST(Buffer, CopyAndSliceInheritGeneration) {
  Buffer a = Buffer::copy_of("0123456789");
  Buffer copy = a;
  Buffer s = a.slice(2, 6);
  EXPECT_EQ(copy.generation(), a.generation());
  EXPECT_EQ(copy.storage_id(), a.storage_id());
  EXPECT_EQ(s.generation(), a.generation());
  EXPECT_EQ(s.storage_id(), a.storage_id());
}

TEST(Buffer, SoleOwnerMutationBumpsGeneration) {
  Buffer a = Buffer::copy_of("abcd");
  const uint64_t g0 = a.generation();
  const void* id0 = a.storage_id();
  a.mutable_data()[0] = 'x';
  EXPECT_EQ(a.storage_id(), id0);  // no sharer: storage reused in place
  EXPECT_NE(a.generation(), g0);
}

TEST(Buffer, SharedMutationDetachesWithFreshGeneration) {
  Buffer a = Buffer::copy_of("abcd");
  Buffer b = a;
  const uint64_t ga = a.generation();
  b.mutable_data()[0] = 'x';
  // The sharer detached onto new storage; a's identity is untouched, so a
  // cached fingerprint for (a.storage_id, ga) remains valid.
  EXPECT_NE(b.storage_id(), a.storage_id());
  EXPECT_NE(b.generation(), ga);
  EXPECT_EQ(a.generation(), ga);
  EXPECT_EQ(a.view(), "abcd");
}

TEST(Buffer, ResizeBumpsGeneration) {
  Buffer a = Buffer::copy_of("abcd");
  const uint64_t g0 = a.generation();
  a.resize(8);
  EXPECT_NE(a.generation(), g0);
}

TEST(Buffer, LargeRandomRoundTrip) {
  Rng rng(99);
  Buffer b(1 << 16);
  rng.fill(b.mutable_data(), b.size());
  Buffer copy = b;
  Buffer slice = b.slice(1000, 5000);
  EXPECT_TRUE(copy.content_equals(b));
  EXPECT_EQ(slice.size(), 5000u);
  EXPECT_EQ(std::memcmp(slice.data(), b.data() + 1000, 5000), 0);
}

}  // namespace
}  // namespace gdedup
