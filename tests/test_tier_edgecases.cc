// Dedup tier edge cases: truncate-based eviction, merged reads at odd
// boundaries, EC metadata pools, grow/shrink sequences, randomized
// write/flush interleavings with full read-back verification.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/content.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::load_map_at;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(TierEdge, FullyFlushedObjectHoldsNoData) {
  // Figure 8's object 2: all cached bits false => no data part at all.
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(3 * kChunk, 1)).is_ok());
  ASSERT_TRUE(h.drain());
  for (OsdId id : h.cluster->osdmap().acting(h.meta, "obj")) {
    const ObjectStore* st = h.cluster->osd(id)->store_if_exists(h.meta);
    ASSERT_NE(st, nullptr);
    const ObjectState* os = st->find({h.meta, "obj"});
    ASSERT_NE(os, nullptr);
    EXPECT_EQ(os->data.stored_bytes(), 0u);
    EXPECT_EQ(os->logical_size, 0u);  // truncated; size lives in the map
  }
  // Logical size still visible through the tier.
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->size(), 3u * kChunk);
}

TEST(TierEdge, GrowAfterEviction) {
  DedupHarness h(test_tier_config());
  Buffer first = random_buffer(kChunk, 2);
  ASSERT_TRUE(h.write("obj", 0, first).is_ok());
  ASSERT_TRUE(h.drain());
  // Append a second chunk after the object was truncated-evicted.
  Buffer second = random_buffer(kChunk, 3);
  ASSERT_TRUE(h.write("obj", kChunk, second).is_ok());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->size(), 2u * kChunk);
  EXPECT_TRUE(r->slice(0, kChunk).content_equals(first));
  EXPECT_TRUE(r->slice(kChunk, kChunk).content_equals(second));
  ASSERT_TRUE(h.drain());
  r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->slice(0, kChunk).content_equals(first));
  EXPECT_TRUE(r->slice(kChunk, kChunk).content_equals(second));
}

TEST(TierEdge, MergedReadAtOddBoundaries) {
  // Partial-dirty chunk (local overlay over chunk-pool content) read at
  // offsets that straddle the overlay edges.
  DedupHarness h(test_tier_config());
  Buffer base = random_buffer(kChunk, 4);
  ASSERT_TRUE(h.write("obj", 0, base).is_ok());
  ASSERT_TRUE(h.drain());
  Buffer patch = random_buffer(5000, 5);
  ASSERT_TRUE(h.write("obj", 10001, patch).is_ok());

  Buffer expect = base;
  expect.write_at(10001, patch);
  // Read windows: inside overlay, straddling start, straddling end, whole.
  for (auto [off, len] : std::vector<std::pair<uint64_t, uint64_t>>{
           {10001, 5000}, {9000, 3000}, {14000, 2500}, {0, 0}, {12000, 1}}) {
    auto r = h.read("obj", off, len);
    ASSERT_TRUE(r.is_ok());
    const uint64_t want = len == 0 ? expect.size() - off : len;
    ASSERT_EQ(r->size(), want);
    EXPECT_TRUE(r->content_equals(expect.slice(off, want)))
        << "window " << off << "+" << len;
  }
}

TEST(TierEdge, MultiplePartialWritesBeforeFlush) {
  DedupHarness h(test_tier_config());
  Buffer base = random_buffer(kChunk, 6);
  ASSERT_TRUE(h.write("obj", 0, base).is_ok());
  ASSERT_TRUE(h.drain());
  Buffer expect = base;
  Rng rng(7);
  for (int i = 0; i < 10; i++) {
    const uint64_t off = rng.below(kChunk - 512);
    const uint64_t len = 1 + rng.below(512);
    Buffer p = random_buffer(len, 100 + static_cast<uint64_t>(i));
    ASSERT_TRUE(h.write("obj", off, p).is_ok());
    expect.write_at(off, p);
  }
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(expect));
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(expect));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(TierEdge, EcMetadataPoolEndToEnd) {
  // Both pools erasure-coded (the Figure 12 Proposed-EC configuration).
  auto cfg = test_tier_config();
  DedupHarness h(cfg, testutil::small_cluster_config());
  // Rebuild pools as EC: easiest is a dedicated cluster here.
  Cluster c;
  const PoolId meta = c.create_ec_pool("meta", 2, 1);
  const PoolId chunks = c.create_ec_pool("chunks", 2, 1);
  c.enable_dedup(meta, chunks, cfg);
  RadosClient client(&c, c.client_node(0));

  Buffer data = random_buffer(2 * kChunk + 777, 8);
  ASSERT_TRUE(sync_write(c, client, meta, "obj", 0, data).is_ok());
  EXPECT_TRUE(sync_read(c, client, meta, "obj", 0, 0)->content_equals(data));
  ASSERT_TRUE(c.drain_dedup());
  EXPECT_TRUE(sync_read(c, client, meta, "obj", 0, 0)->content_equals(data));
  // Eviction reclaimed the EC metadata pool (truncate-to-empty).
  EXPECT_EQ(c.pool_stats(meta).stored_data_bytes, 0u);
  EXPECT_GT(c.pool_stats(chunks).stored_data_bytes, 0u);
  // Partial overwrite on the EC metadata pool.
  Buffer patch = random_buffer(1000, 9);
  ASSERT_TRUE(sync_write(c, client, meta, "obj", kChunk - 500, patch).is_ok());
  Buffer expect = data;
  expect.write_at(kChunk - 500, patch);
  EXPECT_TRUE(sync_read(c, client, meta, "obj", 0, 0)->content_equals(expect));
  ASSERT_TRUE(c.drain_dedup());
  EXPECT_TRUE(sync_read(c, client, meta, "obj", 0, 0)->content_equals(expect));
}

TEST(TierEdge, ZeroLengthWriteIsHarmless) {
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, Buffer()).is_ok());
  ASSERT_TRUE(h.write("obj", 100, random_buffer(50, 10)).is_ok());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->size(), 150u);
}

TEST(TierEdge, ManyChunkObjectLifecycle) {
  // A 24-chunk object through write -> flush -> partial rewrites -> shrink
  // -> regrow, verified at every stage.
  DedupHarness h(test_tier_config());
  const uint64_t n = 24;
  Buffer data = random_buffer(n * kChunk, 11);
  ASSERT_TRUE(h.write("big", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("big", 0, 0)->content_equals(data));

  // Rewrite every third chunk.
  for (uint64_t c = 0; c < n; c += 3) {
    Buffer nc = random_buffer(kChunk, 200 + c);
    ASSERT_TRUE(h.write("big", c * kChunk, nc).is_ok());
    data.write_at(c * kChunk, nc);
  }
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("big", 0, 0)->content_equals(data));

  // Shrink to 5 chunks via write_full.
  Buffer small = random_buffer(5 * kChunk, 12);
  ASSERT_TRUE(
      sync_write_full(*h.cluster, *h.client, h.meta, "big", small).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("big", 0, 0)->content_equals(small));
  ChunkMap cm = load_map_at(*h.cluster,
                            h.cluster->osdmap().primary(h.meta, "big"),
                            h.meta, "big");
  EXPECT_EQ(cm.size(), 5u);

  // Regrow past the old end.
  Buffer tail = random_buffer(2 * kChunk, 13);
  ASSERT_TRUE(h.write("big", 8 * kChunk, tail).is_ok());
  ASSERT_TRUE(h.drain());
  auto r = h.read("big", 0, 0);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->size(), 10u * kChunk);
  EXPECT_TRUE(r->slice(0, 5 * kChunk).content_equals(small));
  EXPECT_TRUE(r->slice(8 * kChunk, 2 * kChunk).content_equals(tail));
  // Hole region reads as zeros.
  Buffer hole = r->slice(5 * kChunk, 3 * kChunk);
  for (size_t i = 0; i < hole.size(); i += 1000) ASSERT_EQ(hole[i], 0);
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(TierEdge, RandomizedInterleavingProperty) {
  // Property test: random writes, reads, removes, drains and engine kicks
  // against a reference model; every read must match, and the final state
  // must be refcount-consistent.
  auto cfg = test_tier_config();
  cfg.engine_tick = msec(20);
  cfg.max_dedup_per_tick = 64;
  DedupHarness h(cfg);
  Rng rng(99);
  std::map<std::string, Buffer> model;
  const std::vector<std::string> oids = {"a", "b", "c", "d"};
  const uint64_t max_size = 4 * kChunk;

  for (int step = 0; step < 120; step++) {
    const std::string& oid = oids[rng.below(oids.size())];
    const double roll = rng.uniform01();
    if (roll < 0.5) {
      // Random write (content drawn from a small pool: real dedup occurs).
      const uint64_t off = rng.below(max_size - 1);
      const uint64_t len = 1 + rng.below(std::min<uint64_t>(
                                   2 * kChunk, max_size - off));
      Buffer data = workload::BlockContent::make(rng.below(6), len, 0.0);
      ASSERT_TRUE(h.write(oid, off, data).is_ok());
      auto& m = model[oid];
      if (m.size() < off + len) m.resize(off + len);
      m.write_at(off, data);
    } else if (roll < 0.8) {
      auto it = model.find(oid);
      auto r = h.read(oid, 0, 0);
      if (it == model.end()) {
        EXPECT_FALSE(r.is_ok()) << oid;
      } else {
        ASSERT_TRUE(r.is_ok()) << oid;
        EXPECT_TRUE(r->content_equals(it->second)) << oid << " step " << step;
      }
    } else if (roll < 0.9) {
      if (model.count(oid)) {
        ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, oid).is_ok());
        model.erase(oid);
      }
    } else {
      h.cluster->sched().run_for(msec(50));  // let the engine churn
    }
  }
  ASSERT_TRUE(h.drain());
  for (const auto& [oid, m] : model) {
    auto r = h.read(oid, 0, 0);
    ASSERT_TRUE(r.is_ok()) << oid;
    EXPECT_TRUE(r->content_equals(m)) << oid;
  }
  EXPECT_TRUE(h.refcounts_consistent());
}

// Chunk-size sweep as a parameterized property: round trip + consistency
// hold at every supported chunk size.
class TierChunkSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TierChunkSizeSweep, RoundTripAndConsistency) {
  const uint32_t cs = GetParam();
  DedupHarness h(test_tier_config(cs));
  Buffer data = random_buffer(3 * cs + cs / 2, cs);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  EXPECT_TRUE(h.refcounts_consistent());
  // Chunk count matches the grid.
  ChunkMap cm = load_map_at(*h.cluster,
                            h.cluster->osdmap().primary(h.meta, "obj"),
                            h.meta, "obj");
  EXPECT_EQ(cm.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TierChunkSizeSweep,
                         ::testing::Values(4u * 1024, 8u * 1024, 16u * 1024,
                                           32u * 1024, 64u * 1024,
                                           128u * 1024));

}  // namespace
}  // namespace gdedup
