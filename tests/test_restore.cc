// Fragmentation-aware restore path: the selective rewrite (container
// coalescing) in dedup/tier.cc and the forward-assembly read cache.
//
// What must hold: rewrite swaps map entries onto content-addressed
// container objects without ever breaking invariant 3 (refs match maps),
// readback is byte-identical, deep scrub stays clean (container OID ==
// fingerprint of the concatenated content), and read amplification
// measurably drops.  The assembly cache is host-side only: the
// determinism digest is byte-identical with it on or off, at any
// shard/thread count.  Rewrite mode changes virtual time by design and
// carries its own frozen digest.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "sim_e2e_scenario.h"
#include "dedup/scrub.h"
#include "dedup/tier.h"
#include "test_util.h"
#include "workload/fio_gen.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::load_map_at;
using testutil::random_buffer;
using testutil::small_cluster_config;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

DedupTierConfig rewrite_tier_config(int run_len = 4, int max_pct = 100) {
  DedupTierConfig t = test_tier_config();
  t.restore_rewrite = true;
  t.rewrite_run_len = run_len;
  t.rewrite_max_pct = max_pct;
  t.rewrite_frag_threshold = 0.5;
  return t;
}

// --- Selective rewrite: container coalescing correctness ---

TEST(RestoreRewrite, CoalescesRunsIntoContainers) {
  DedupHarness h(rewrite_tier_config(/*run_len=*/4, /*max_pct=*/100));
  Buffer image = random_buffer(8 * kChunk, 0xabc);
  ASSERT_TRUE(h.write("obj", 0, image).is_ok());
  ASSERT_TRUE(h.drain());

  // Eight evicted singleton chunks coalesced as two 4-chunk containers;
  // the old chunk objects lost their last ref and were reclaimed.
  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.rewrite_runs, 2u);
  EXPECT_EQ(s.rewrite_chunks, 8u);
  EXPECT_EQ(s.rewrite_bytes, 8ull * kChunk);
  EXPECT_EQ(h.chunk_object_count(), 2u);
  EXPECT_EQ(h.total_chunk_refs(), 8u);  // one ref per slot, per container
  EXPECT_TRUE(h.refcounts_consistent());

  // The map names the containers with cumulative in-object offsets.
  const OsdId prim = h.cluster->osdmap().primary(h.meta, "obj");
  const ChunkMap cm = load_map_at(*h.cluster, prim, h.meta, "obj");
  ASSERT_EQ(cm.entries().size(), 8u);
  std::string run_oid;
  uint64_t expect_off = 0;
  for (const auto& [off, e] : cm.entries()) {
    EXPECT_TRUE(e.container) << "slot @" << off;
    EXPECT_FALSE(e.dirty);
    EXPECT_FALSE(e.cached);
    if (off % (4ull * kChunk) == 0) {  // run boundary
      run_oid = e.chunk_id;
      expect_off = 0;
    }
    EXPECT_EQ(e.chunk_id, run_oid) << "slot @" << off;
    EXPECT_EQ(e.chunk_off, expect_off) << "slot @" << off;
    expect_off += e.length;
  }

  // Byte-identical readback through the container path.
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(image));

  // Read amplification dropped: one full-object read touches 2 distinct
  // chunk objects over 2 RPCs (the digested per-chunk counter still sees
  // all 8 slots).
  const DedupTierStats t0 = h.cluster->tier_stats(h.meta);
  auto r2 = h.read("obj", 0, 0);
  ASSERT_TRUE(r2.is_ok());
  const DedupTierStats t1 = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(t1.read_chunk_objects - t0.read_chunk_objects, 2u);
  EXPECT_EQ(t1.read_chunk_rpcs - t0.read_chunk_rpcs, 2u);
  EXPECT_EQ(t1.redirected_read_chunks - t0.redirected_read_chunks, 8u);
}

TEST(RestoreRewrite, RespectsRewriteCap) {
  // max_pct=50 over 8 eligible chunks caps the rewrite at 4 chunks (one
  // 4-run); the rest stay ordinary singletons.
  DedupHarness h(rewrite_tier_config(/*run_len=*/4, /*max_pct=*/50));
  Buffer image = random_buffer(8 * kChunk, 0xca5);
  ASSERT_TRUE(h.write("obj", 0, image).is_ok());
  ASSERT_TRUE(h.drain());

  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.rewrite_runs, 1u);
  EXPECT_EQ(s.rewrite_chunks, 4u);
  EXPECT_EQ(h.chunk_object_count(), 5u);  // 1 container + 4 singletons
  EXPECT_TRUE(h.refcounts_consistent());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(image));
}

TEST(RestoreRewrite, OverwriteAfterRewriteStaysConsistent) {
  DedupHarness h(rewrite_tier_config(/*run_len=*/4, /*max_pct=*/100));
  Buffer image = random_buffer(8 * kChunk, 0xdef);
  ASSERT_TRUE(h.write("obj", 0, image).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_EQ(h.chunk_object_count(), 2u);

  // Dirty one slot of the first container.  Its flush produces a fresh
  // ordinary chunk and derefs the container's slot ref; the container
  // survives on the remaining three refs.
  Buffer patch = random_buffer(kChunk, 0x123);
  ASSERT_TRUE(h.write("obj", kChunk, patch).is_ok());
  ASSERT_TRUE(h.drain());

  Buffer want = image;  // COW copy, then patch in place
  want.write_at(kChunk, patch);
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(want));
  EXPECT_TRUE(h.refcounts_consistent());

  // Invariants hold under the scrubber too, and GC finds nothing to do.
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  EXPECT_TRUE(s.deep_scrub().clean());
  const ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 0u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 0u);
}

TEST(RestoreRewrite, DeepScrubVerifiesContainerFingerprints) {
  // Container OIDs are content-addressed over the *concatenated* run, so
  // the scrubber's fingerprint recompute must come back clean.
  DedupHarness h(rewrite_tier_config(/*run_len=*/4, /*max_pct=*/100));
  ASSERT_TRUE(h.write("obj", 0, random_buffer(8 * kChunk, 0xbeef)).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_GE(h.cluster->tier_stats(h.meta).rewrite_runs, 1u);

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub();
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(rep.chunks_checked, 0u);
  EXPECT_EQ(rep.fingerprint_mismatches, 0u);
}

TEST(RestoreRewrite, OffByDefaultNeverRewrites) {
  DedupHarness h(test_tier_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(8 * kChunk, 0x777)).is_ok());
  ASSERT_TRUE(h.drain());
  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.rewrite_runs, 0u);
  EXPECT_EQ(s.rewrite_chunks, 0u);
  EXPECT_EQ(h.chunk_object_count(), 8u);
}

// --- Determinism: assembly cache neutrality + frozen rewrite digest ---

struct RestoreDigest {
  std::string digest;
  uint64_t asm_hits = 0;
  uint64_t rewrite_runs = 0;
};

// A small preload -> drain -> sequential-restore scenario, digesting the
// per-op latency stream and the final cluster state (same contract as the
// sim-e2e determinism tests).
RestoreDigest run_restore_digest(int assembly, bool rewrite, int shards,
                                 int threads) {
  ClusterConfig cc;
  cc.storage_nodes = 2;
  cc.osds_per_node = 2;
  cc.client_nodes = 1;
  cc.restore_assembly = assembly;
  cc.sim_shards = shards;
  cc.exec_threads = threads;
  Cluster c(cc);
  const PoolId base = c.create_replicated_pool("base", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  DedupTierConfig t = test_tier_config();
  t.restore_rewrite = rewrite;
  t.rewrite_run_len = 8;
  t.rewrite_max_pct = 100;
  c.enable_dedup(base, chunks, t);

  RadosClient client(&c, c.client_node(0));
  const uint64_t image_bytes = 8ull << 20;
  BlockDevice bdev(&client, base, "img", image_bytes, 4u << 20);

  bench::DeterminismDigest dig;
  workload::FioConfig fio;
  fio.total_bytes = image_bytes;
  fio.block_size = kChunk;
  fio.dedupe_ratio = 0.5;
  fio.seed = 7;
  workload::FioGenerator gen(fio);
  bench::run_closed_loop(
      c, gen.num_blocks(), /*depth=*/8,
      bench::digesting_issuer(
          c,
          [&](size_t idx, std::function<void(uint64_t)> done) {
            bdev.write(static_cast<uint64_t>(idx) * kChunk, gen.block(idx),
                       [done = std::move(done)](Status) { done(kChunk); });
          },
          &dig));
  EXPECT_TRUE(c.drain_dedup());

  const uint32_t rb = 256 * 1024;
  bench::run_closed_loop(
      c, image_bytes / rb, /*depth=*/4,
      bench::digesting_issuer(
          c,
          [&](size_t idx, std::function<void(uint64_t)> done) {
            bdev.read(static_cast<uint64_t>(idx) * rb, rb,
                      [done = std::move(done), rb](Result<Buffer>) {
                        done(rb);
                      });
          },
          &dig));
  bench::digest_final_state(c, base, chunks, &dig);

  const DedupTierStats ts = c.tier_stats(base);
  return {dig.hex(), ts.asm_hits, ts.rewrite_runs};
}

TEST(RestoreAssembly, DigestInvariantAcrossShardsAndThreads) {
  const RestoreDigest off = run_restore_digest(/*assembly=*/0,
                                               /*rewrite=*/false, 1, 1);
  EXPECT_EQ(off.asm_hits, 0u);
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      const RestoreDigest on =
          run_restore_digest(/*assembly=*/1, /*rewrite=*/false, shards,
                             threads);
      const std::string at = "shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads);
      EXPECT_EQ(on.digest, off.digest) << at;
      // The cache must actually engage on a sequential sweep — a digest
      // match against a dormant cache would prove nothing.
      EXPECT_GT(on.asm_hits, 0u) << at;
    }
  }
}

TEST(RestoreRewrite, FrozenDigest) {
  // Rewrite mode intentionally changes placement and virtual time; what
  // it must NOT do is vary across shard/thread counts or silently drift.
  // Re-freeze deliberately when the rewrite policy changes.
  const RestoreDigest serial = run_restore_digest(/*assembly=*/1,
                                                  /*rewrite=*/true, 1, 1);
  const RestoreDigest sharded = run_restore_digest(/*assembly=*/1,
                                                   /*rewrite=*/true, 4, 8);
  EXPECT_GT(serial.rewrite_runs, 0u);
  EXPECT_EQ(serial.digest, sharded.digest);
  EXPECT_EQ(serial.digest, "29a3a1e0");
}

}  // namespace
}  // namespace gdedup
