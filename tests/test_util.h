#pragma once

// Shared fixtures/helpers for the cluster-level tests.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "dedup/recipe.h"
#include "rados/cluster.h"
#include "rados/sync.h"

namespace gdedup::testutil {

inline ClusterConfig small_cluster_config() {
  ClusterConfig cfg;  // paper defaults: 4 nodes x 4 OSDs, 3 clients
  return cfg;
}

inline Buffer random_buffer(size_t n, uint64_t seed) {
  Buffer b(n);
  Rng rng(seed);
  rng.fill(b.mutable_data(), n);
  return b;
}

// Default tier parameters used by the dedup tests: 32KB static chunks,
// aggressive engine, rate control off (tests drive determinism; the rate
// controller has its own tests and benches).
inline DedupTierConfig test_tier_config(uint32_t chunk_size = 32 * 1024) {
  DedupTierConfig t;
  t.mode = DedupMode::kPostProcess;
  t.chunk_size = chunk_size;
  t.rate_control = false;
  t.engine_tick = msec(50);
  t.max_dedup_per_tick = 128;
  t.hitcount_threshold = 1000000;  // effectively "nothing is hot"
  t.promote_on_read = false;
  return t;
}

// Load the persisted chunk map of `oid` from one OSD's local store,
// resolving recipe indirection (a no-op in default mode, where every
// entry has an inline omap record).
inline ChunkMap load_map_at(Cluster& c, OsdId osd, PoolId pool,
                            const std::string& oid) {
  const ObjectStore* st = c.osd(osd)->store_if_exists(pool);
  if (st == nullptr) return ChunkMap();
  auto r = load_chunk_map_resolved(&c, *st, {pool, oid});
  return r.is_ok() ? std::move(r).value() : ChunkMap();
}

// A cluster with a replicated metadata pool tiered onto a replicated
// chunk pool, dedup enabled.
struct DedupHarness {
  std::unique_ptr<Cluster> cluster;
  PoolId meta = -1;
  PoolId chunks = -1;
  std::unique_ptr<RadosClient> client;

  explicit DedupHarness(DedupTierConfig tier,
                        ClusterConfig ccfg = small_cluster_config(),
                        RedundancyScheme chunk_scheme =
                            RedundancyScheme::kReplicated) {
    cluster = std::make_unique<Cluster>(ccfg);
    meta = cluster->create_replicated_pool("meta", 2);
    if (chunk_scheme == RedundancyScheme::kReplicated) {
      chunks = cluster->create_replicated_pool("chunks", 2);
    } else {
      chunks = cluster->create_ec_pool("chunks", 2, 1);
    }
    cluster->enable_dedup(meta, chunks, tier);
    client = std::make_unique<RadosClient>(cluster.get(),
                                           cluster->client_node(0));
  }

  Status write(const std::string& oid, uint64_t off, Buffer data) {
    return sync_write(*cluster, *client, meta, oid, off, std::move(data));
  }
  Result<Buffer> read(const std::string& oid, uint64_t off, uint64_t len) {
    return sync_read(*cluster, *client, meta, oid, off, len);
  }
  bool drain() { return cluster->drain_dedup(); }

  // Total refcount entries across all chunk objects (from primary copies).
  uint64_t total_chunk_refs() {
    uint64_t total = 0;
    for (Osd* o : cluster->osds()) {
      const ObjectStore* st = o->store_if_exists(chunks);
      if (st == nullptr) continue;
      for (const auto& key : st->list(chunks)) {
        if (cluster->osdmap().primary(chunks, key.oid) != o->id()) continue;
        auto raw = st->getxattr(key, kRefsXattr);
        if (!raw.is_ok()) continue;
        auto refs = decode_refs(raw.value());
        if (refs.is_ok()) total += refs->size();
      }
    }
    return total;
  }

  // Number of distinct chunk objects (counted at primaries).
  uint64_t chunk_object_count() {
    uint64_t n = 0;
    for (Osd* o : cluster->osds()) {
      const ObjectStore* st = o->store_if_exists(chunks);
      if (st == nullptr) continue;
      for (const auto& key : st->list(chunks)) {
        if (cluster->osdmap().primary(chunks, key.oid) == o->id()) n++;
      }
    }
    return n;
  }

  // Check invariant 3 of DESIGN.md: every chunk-map reference is matched
  // by a ref entry on the chunk object, and vice versa.
  ::testing::AssertionResult refcounts_consistent();
};

inline ::testing::AssertionResult DedupHarness::refcounts_consistent() {
  // Gather references held by chunk maps (primary metadata objects only).
  std::map<std::string, std::set<std::string>> held;  // chunk oid -> refs
  for (Osd* o : cluster->osds()) {
    const ObjectStore* st = o->store_if_exists(meta);
    if (st == nullptr) continue;
    for (const auto& key : st->list(meta)) {
      if (cluster->osdmap().primary(meta, key.oid) != o->id()) continue;
      auto cm = load_chunk_map_resolved(cluster.get(), *st, key);
      if (!cm.is_ok()) {
        return ::testing::AssertionFailure()
               << "corrupt chunk map on " << key.oid;
      }
      if (cm->unresolved()) {
        return ::testing::AssertionFailure()
               << "unresolvable recipe chunks on " << key.oid;
      }
      for (const auto& [off, e] : cm->entries()) {
        if (e.flushed()) {
          held[e.chunk_id].insert(key.oid + "@" + std::to_string(off));
        }
      }
      for (const auto& [base, rec] : cm->recipes()) {
        held[rec.chunk_id].insert(key.oid + "@" +
                                  std::to_string(kRecipeRefBit | base));
      }
    }
  }
  // Gather refs recorded on chunk objects.
  std::map<std::string, std::set<std::string>> recorded;
  for (Osd* o : cluster->osds()) {
    const ObjectStore* st = o->store_if_exists(chunks);
    if (st == nullptr) continue;
    for (const auto& key : st->list(chunks)) {
      if (cluster->osdmap().primary(chunks, key.oid) != o->id()) continue;
      auto raw = st->getxattr(key, kRefsXattr);
      if (!raw.is_ok()) {
        return ::testing::AssertionFailure()
               << "chunk " << key.oid << " missing refs xattr";
      }
      auto refs = decode_refs(raw.value());
      if (!refs.is_ok()) {
        return ::testing::AssertionFailure()
               << "chunk " << key.oid << " refs undecodable";
      }
      for (const auto& r : refs.value()) {
        recorded[key.oid].insert(r.oid + "@" + std::to_string(r.offset));
      }
    }
  }
  // held must be a subset of recorded (a crash may leave an extra recorded
  // ref pending redo, but never a held-but-unrecorded one), and every
  // chunk object must have at least one recorded ref.
  for (const auto& [cid, hs] : held) {
    auto it = recorded.find(cid);
    if (it == recorded.end()) {
      return ::testing::AssertionFailure()
             << "chunk map references missing chunk object " << cid;
    }
    for (const auto& r : hs) {
      if (!it->second.count(r)) {
        return ::testing::AssertionFailure()
               << "chunk " << cid << " lacks ref entry " << r;
      }
    }
  }
  for (const auto& [cid, rs] : recorded) {
    if (rs.empty()) {
      return ::testing::AssertionFailure()
             << "chunk " << cid << " exists with zero refs";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace gdedup::testutil
