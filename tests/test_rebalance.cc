// Cluster expansion / rebalancing: adding OSDs remaps a minimal share of
// placement, backfill populates the newcomers, and dedup state rides along
// (the paper's claim that rebalancing reuses stock storage features).

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fio_gen.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(Rebalance, NewOsdReceivesBackfill) {
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2);
  RadosClient client(&c, c.client_node(0));
  std::map<std::string, Buffer> truth;
  for (int i = 0; i < 40; i++) {
    const std::string oid = "o" + std::to_string(i);
    Buffer data = random_buffer(32 * 1024, static_cast<uint64_t>(i));
    ASSERT_TRUE(sync_write(c, client, pool, oid, 0, data).is_ok());
    truth[oid] = data;
  }

  const OsdId fresh = c.add_osd(/*host=*/0);
  EXPECT_EQ(fresh, 16);
  uint64_t objects = 0;
  c.recover(&objects, nullptr);
  EXPECT_GT(objects, 0u);  // some PGs remapped to the newcomer

  // The newcomer now holds its placement share.
  const ObjectStore* st = c.osd(fresh)->store_if_exists(pool);
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->list(pool).size(), 0u);

  // Every object readable, every replica in place.
  for (const auto& [oid, data] : truth) {
    for (OsdId o : c.osdmap().acting(pool, oid)) {
      ASSERT_TRUE(c.osd(o)->local_exists(pool, oid)) << oid << "@" << o;
    }
    auto r = sync_read(c, client, pool, oid, 0, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(r->content_equals(data));
  }
}

TEST(Rebalance, MovementIsProportional) {
  // straw2 property at the cluster level: adding 1 OSD to 16 moves about
  // 1/17 of placements, not a reshuffle.
  Cluster c;
  const PoolId pool = c.create_replicated_pool("p", 2, /*pg_num=*/512);
  std::map<uint32_t, std::vector<OsdId>> before;
  for (uint32_t pg = 0; pg < 512; pg++) {
    before[pg] = c.osdmap().acting_for_pg(pool, pg);
  }
  c.add_osd(1);
  size_t moved = 0, total = 0;
  for (uint32_t pg = 0; pg < 512; pg++) {
    auto after = c.osdmap().acting_for_pg(pool, pg);
    for (size_t i = 0; i < after.size(); i++) {
      total++;
      if (after[i] != before[pg][i]) moved++;
    }
  }
  EXPECT_GT(moved, 0u);
  // Expect ~2/17 of slots affected (new device takes its share in either
  // replica position); allow generous slack, but far below a reshuffle.
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(total), 0.30);
}

TEST(Rebalance, DedupSurvivesExpansion) {
  DedupHarness h(test_tier_config());
  workload::FioConfig fcfg;
  fcfg.total_bytes = 8ull << 20;
  fcfg.block_size = kChunk;
  fcfg.dedupe_ratio = 0.5;
  workload::FioGenerator gen(fcfg);
  for (uint64_t b = 0; b < gen.num_blocks(); b++) {
    ASSERT_TRUE(h.write("o" + std::to_string(b), 0, gen.block(b)).is_ok());
  }
  ASSERT_TRUE(h.drain());
  const uint64_t chunks_before = h.chunk_object_count();
  const uint64_t refs_before = h.total_chunk_refs();

  // Grow the cluster by two OSDs on different hosts and rebalance.
  h.cluster->add_osd(0);
  h.cluster->add_osd(2);
  h.cluster->recover();

  // Dedup state is intact: same chunk population, same references, all
  // data readable, and new writes keep deduplicating.
  EXPECT_EQ(h.chunk_object_count(), chunks_before);
  EXPECT_EQ(h.total_chunk_refs(), refs_before);
  EXPECT_TRUE(h.refcounts_consistent());
  for (uint64_t b = 0; b < gen.num_blocks(); b += 7) {
    auto r = h.read("o" + std::to_string(b), 0, 0);
    ASSERT_TRUE(r.is_ok()) << b;
    EXPECT_TRUE(r->content_equals(gen.block(b)));
  }
  ASSERT_TRUE(h.write("fresh", 0, gen.block(0)).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), chunks_before);  // deduped against old
  EXPECT_EQ(h.total_chunk_refs(), refs_before + 1);
}

TEST(Rebalance, ChunkPlacementFollowsContentAfterExpansion) {
  // Double hashing after expansion: the same content written post-growth
  // maps onto the (possibly migrated) chunk object, wherever it now lives.
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 42);
  ASSERT_TRUE(h.write("before", 0, data).is_ok());
  ASSERT_TRUE(h.drain());

  h.cluster->add_osd(3);
  h.cluster->recover();

  ASSERT_TRUE(h.write("after", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 2u);
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());
  const OsdId primary = h.cluster->osdmap().primary(h.chunks, fp.hex());
  EXPECT_TRUE(h.cluster->osd(primary)->local_exists(h.chunks, fp.hex()));
}

}  // namespace
}  // namespace gdedup
