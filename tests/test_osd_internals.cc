// OSD-layer internals: message encodings, omap listing, recovery verbs,
// chunk-verb serialization, down-OSD behaviour, wire-size accounting.

#include <gtest/gtest.h>

#include "common/encoding.h"
#include "test_util.h"

namespace gdedup {
namespace {

using testutil::random_buffer;

// ------------------------------------------------------------- encodings

TEST(Messages, RefsRoundTrip) {
  std::vector<ChunkRef> refs = {
      {0, "object-a", 0},
      {0, "object-a", 32768},
      {3, "pool3/obj", 1234567890123ull},
  };
  auto decoded = decode_refs(encode_refs(refs));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded->size(), 3u);
  for (size_t i = 0; i < refs.size(); i++) {
    EXPECT_TRUE((*decoded)[i] == refs[i]) << i;
  }
}

TEST(Messages, RefsEmptyAndCorrupt) {
  auto empty = decode_refs(encode_refs({}));
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(decode_refs(Buffer::copy_of("xx")).is_ok());
  Encoder e;
  e.put_u32(5);  // claims 5 refs, provides none
  EXPECT_FALSE(decode_refs(e.finish()).is_ok());
}

TEST(Messages, WireBytesScaleWithPayload) {
  OsdOp small;
  small.type = OsdOpType::kWrite;
  small.oid = "o";
  small.data = Buffer(100);
  OsdOp big = small;
  big.data = Buffer(100000);
  EXPECT_GT(big.wire_bytes(), small.wire_bytes() + 99000);

  OsdOpReply rep;
  rep.data = Buffer(5000);
  EXPECT_GE(rep.wire_bytes(), 5000u);
}

TEST(Messages, OpTypeNamesComplete) {
  for (auto t : {OsdOpType::kRead, OsdOpType::kWrite, OsdOpType::kWriteFull,
                 OsdOpType::kRemove, OsdOpType::kStat, OsdOpType::kGetXattr,
                 OsdOpType::kSetXattr, OsdOpType::kChunkPutRef,
                 OsdOpType::kChunkDeref, OsdOpType::kSubWrite,
                 OsdOpType::kShardRead, OsdOpType::kPull, OsdOpType::kPush}) {
    EXPECT_NE(osd_op_type_name(t), "unknown");
  }
}

// ------------------------------------------------------------- omap list

TEST(ObjectStoreOmap, ListByPrefix) {
  ObjectStore st;
  Transaction t;
  const ObjectKey k{0, "obj"};
  t.omap_set(k, "dedup.ck.0001", Buffer::copy_of("a"));
  t.omap_set(k, "dedup.ck.0002", Buffer::copy_of("b"));
  t.omap_set(k, "other.key", Buffer::copy_of("c"));
  t.omap_set(k, "dedup.ck", Buffer::copy_of("short"));  // not under prefix+sep
  ASSERT_TRUE(st.apply(t).is_ok());

  auto got = st.omap_list(k, "dedup.ck.");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, "dedup.ck.0001");
  EXPECT_EQ(got[1].first, "dedup.ck.0002");
  EXPECT_EQ(got[0].second.view(), "a");

  EXPECT_TRUE(st.omap_list(k, "zzz").empty());
  EXPECT_TRUE(st.omap_list({0, "ghost"}, "dedup.").empty());
}

TEST(ObjectStoreOmap, OmapKeyOrderingIsOffsetOrder) {
  // Chunk-map omap keys are zero-padded hex so lexicographic order equals
  // numeric offset order — the loader depends on this.
  ObjectStore st;
  Transaction t;
  const ObjectKey k{0, "obj"};
  for (uint64_t off : {1ull << 40, 0ull, 32768ull, 1ull << 20}) {
    ChunkMapEntry e;
    e.offset = off;
    e.length = 1;
    t.omap_set(k, ChunkMap::omap_key(off), ChunkMap::encode_entry(e));
  }
  ASSERT_TRUE(st.apply(t).is_ok());
  auto got = st.omap_list(k, kChunkEntryPrefix);
  ASSERT_EQ(got.size(), 4u);
  uint64_t prev = 0;
  for (size_t i = 0; i < got.size(); i++) {
    auto e = ChunkMap::decode_entry(got[i].second);
    ASSERT_TRUE(e.is_ok());
    if (i > 0) {
      EXPECT_GT(e->offset, prev);
    }
    prev = e->offset;
  }
}

// --------------------------------------------------------- recovery verbs

class OsdVerbs : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(testutil::small_cluster_config());
    pool_ = cluster_->create_replicated_pool("p", 2);
    client_ = std::make_unique<RadosClient>(cluster_.get(),
                                            cluster_->client_node(0));
  }

  OsdOpReply run_on(OsdId target, OsdOp op) {
    OsdOpReply out;
    bool done = false;
    send_osd_op(*cluster_, cluster_->client_node(0), target, std::move(op),
                [&](OsdOpReply rep) {
                  out = std::move(rep);
                  done = true;
                });
    while (!done && cluster_->sched().step()) {
    }
    return out;
  }

  std::unique_ptr<Cluster> cluster_;
  PoolId pool_ = -1;
  std::unique_ptr<RadosClient> client_;
};

TEST_F(OsdVerbs, PullReturnsFullState) {
  Buffer data = random_buffer(10000, 1);
  ASSERT_TRUE(sync_write(*cluster_, *client_, pool_, "obj", 0, data).is_ok());
  bool done = false;
  client_->setxattr(pool_, "obj", "m", Buffer::copy_of("v"), [&](Status) {
    done = true;
  });
  while (!done) ASSERT_TRUE(cluster_->sched().step());

  const OsdId primary = cluster_->osdmap().primary(pool_, "obj");
  OsdOp pull;
  pull.type = OsdOpType::kPull;
  pull.pool = pool_;
  pull.oid = "obj";
  auto rep = run_on(primary, std::move(pull));
  ASSERT_TRUE(rep.status.is_ok());
  ASSERT_NE(rep.state, nullptr);
  EXPECT_EQ(rep.state->logical_size, 10000u);
  EXPECT_TRUE(rep.state->data.read(0, 10000).content_equals(data));
  EXPECT_EQ(rep.state->xattrs.at("m").view(), "v");
}

TEST_F(OsdVerbs, PushInstallsState) {
  auto state = std::make_shared<ObjectState>();
  state->data.write(0, Buffer::copy_of("installed"));
  state->logical_size = 9;
  state->xattrs["k"] = Buffer::copy_of("v");

  OsdOp push;
  push.type = OsdOpType::kPush;
  push.pool = pool_;
  push.oid = "pushed";
  push.state = state;
  auto rep = run_on(3, std::move(push));
  ASSERT_TRUE(rep.status.is_ok());
  EXPECT_TRUE(cluster_->osd(3)->local_exists(pool_, "pushed"));
  auto r = cluster_->osd(3)->store(pool_).read({pool_, "pushed"}, 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->view(), "installed");
}

TEST_F(OsdVerbs, PullMissingObjectFails) {
  OsdOp pull;
  pull.type = OsdOpType::kPull;
  pull.pool = pool_;
  pull.oid = "ghost";
  auto rep = run_on(0, std::move(pull));
  EXPECT_FALSE(rep.status.is_ok());
}

TEST_F(OsdVerbs, DownOsdAnswersUnavailable) {
  cluster_->osd(2)->set_up(false);  // down but not yet marked in the map
  OsdOp read;
  read.type = OsdOpType::kRead;
  read.pool = pool_;
  read.oid = "x";
  auto rep = run_on(2, std::move(read));
  EXPECT_EQ(rep.status.code(), Code::kUnavailable);
  cluster_->osd(2)->set_up(true);
}

TEST_F(OsdVerbs, CrashedOsdDropsSilently) {
  cluster_->osd(2)->set_drop_when_down(true);
  cluster_->osd(2)->set_up(false);
  OsdOp read;
  read.type = OsdOpType::kRead;
  read.pool = pool_;
  read.oid = "x";
  bool replied = false;
  send_osd_op(*cluster_, cluster_->client_node(0), 2, std::move(read),
              [&](OsdOpReply) { replied = true; });
  cluster_->sched().run_for(sec(2));
  EXPECT_FALSE(replied);
  cluster_->osd(2)->set_up(true);
}

TEST_F(OsdVerbs, StatReflectsLogicalSize) {
  ASSERT_TRUE(sync_write(*cluster_, *client_, pool_, "obj", 5000,
                         random_buffer(1000, 2))
                  .is_ok());
  auto r = sync_stat(*cluster_, *client_, pool_, "obj");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 6000u);
}

TEST_F(OsdVerbs, ChunkVerbQueueKeepsFifoPerObject) {
  // Interleave puts and derefs on one chunk object; the per-object queue
  // must apply them in order, ending with refcount exactly 1.
  const std::string cid = "sha256:feed";
  const OsdId primary = cluster_->osdmap().primary(pool_, cid);
  Buffer data = random_buffer(4096, 3);
  int done = 0;
  auto fire = [&](OsdOpType type, const ChunkRef& ref) {
    OsdOp op;
    op.type = type;
    op.pool = pool_;
    op.oid = cid;
    op.data = data;
    op.ref = ref;
    send_osd_op(*cluster_, cluster_->client_node(0), primary, std::move(op),
                [&](OsdOpReply rep) {
                  EXPECT_TRUE(rep.status.is_ok());
                  done++;
                });
  };
  fire(OsdOpType::kChunkPutRef, {0, "s1", 0});
  fire(OsdOpType::kChunkPutRef, {0, "s2", 0});
  fire(OsdOpType::kChunkDeref, {0, "s1", 0});
  fire(OsdOpType::kChunkPutRef, {0, "s3", 0});
  fire(OsdOpType::kChunkDeref, {0, "s3", 0});
  while (done < 5 && cluster_->sched().step()) {
  }
  ASSERT_EQ(done, 5);
  auto raw = cluster_->osd(primary)->local_getxattr(pool_, cid, kRefsXattr);
  ASSERT_TRUE(raw.is_ok());
  auto refs = decode_refs(raw.value());
  ASSERT_TRUE(refs.is_ok());
  ASSERT_EQ(refs->size(), 1u);
  EXPECT_EQ((*refs)[0].oid, "s2");
}

TEST_F(OsdVerbs, ForegroundWindowCountsClientOps) {
  const OsdId primary = cluster_->osdmap().primary(pool_, "counted");
  const uint64_t before =
      cluster_->osd(primary)->foreground_window().count(
          cluster_->sched().now());
  ASSERT_TRUE(sync_write(*cluster_, *client_, pool_, "counted", 0,
                         random_buffer(100, 4))
                  .is_ok());
  EXPECT_GT(cluster_->osd(primary)->foreground_window().count(
                cluster_->sched().now()),
            before);
}

}  // namespace
}  // namespace gdedup
