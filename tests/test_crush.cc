// CRUSH placement: determinism, failure domains, weight proportionality,
// minimal movement; OsdMap pools, acting sets, epochs.

#include "cluster/crush.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/osd_map.h"
#include "common/random.h"

namespace gdedup {
namespace {

CrushMap paper_map() {
  // 4 hosts x 4 OSDs, the paper's testbed.
  CrushMap m;
  for (int h = 0; h < 4; h++) {
    for (int d = 0; d < 4; d++) m.add_device(h * 4 + d, h);
  }
  return m;
}

TEST(Crush, Deterministic) {
  CrushMap m = paper_map();
  for (uint64_t x = 0; x < 100; x++) {
    EXPECT_EQ(m.select(x, 3), m.select(x, 3));
  }
}

TEST(Crush, DistinctDevices) {
  CrushMap m = paper_map();
  for (uint64_t x = 0; x < 500; x++) {
    auto sel = m.select(x, 3);
    std::set<OsdId> uniq(sel.begin(), sel.end());
    EXPECT_EQ(uniq.size(), sel.size());
  }
}

TEST(Crush, SpreadsAcrossHosts) {
  CrushMap m = paper_map();
  for (uint64_t x = 0; x < 500; x++) {
    auto sel = m.select(x, 3);
    std::set<HostId> hosts;
    for (OsdId o : sel) hosts.insert(o / 4);
    EXPECT_EQ(hosts.size(), sel.size()) << "replicas share a host at x=" << x;
  }
}

TEST(Crush, FallsBackWhenFewHosts) {
  CrushMap m;
  m.add_device(0, 0);
  m.add_device(1, 0);
  m.add_device(2, 0);  // one host only
  auto sel = m.select(42, 2);
  EXPECT_EQ(sel.size(), 2u);  // still finds two distinct devices
}

TEST(Crush, LoadIsBalanced) {
  CrushMap m = paper_map();
  std::map<OsdId, int> primary_count;
  const int n = 20000;
  for (int x = 0; x < n; x++) {
    primary_count[m.select(static_cast<uint64_t>(x), 1)[0]]++;
  }
  for (const auto& [osd, c] : primary_count) {
    EXPECT_NEAR(c, n / 16, n / 16 * 0.2) << "osd " << osd;
  }
}

TEST(Crush, WeightProportionality) {
  CrushMap m;
  m.add_device(0, 0, 1.0);
  m.add_device(1, 1, 2.0);  // double weight
  std::map<OsdId, int> count;
  const int n = 30000;
  for (int x = 0; x < n; x++) {
    count[m.select(static_cast<uint64_t>(x), 1)[0]]++;
  }
  const double frac1 = static_cast<double>(count[1]) / n;
  EXPECT_NEAR(frac1, 2.0 / 3.0, 0.03);
}

TEST(Crush, ZeroWeightExcluded) {
  CrushMap m = paper_map();
  ASSERT_TRUE(m.set_weight(5, 0.0).is_ok());
  for (int x = 0; x < 2000; x++) {
    auto sel = m.select(static_cast<uint64_t>(x), 3);
    for (OsdId o : sel) EXPECT_NE(o, 5);
  }
}

TEST(Crush, ExcludeListRespected) {
  CrushMap m = paper_map();
  for (int x = 0; x < 1000; x++) {
    auto sel = m.select(static_cast<uint64_t>(x), 3, {0, 1, 2, 3});
    for (OsdId o : sel) EXPECT_GE(o, 4);
  }
}

// The property that justifies straw2: removing one device only remaps
// inputs that previously chose it.
TEST(Crush, MinimalMovementOnDeviceLoss) {
  CrushMap m = paper_map();
  const int n = 5000;
  std::vector<OsdId> before(n);
  for (int x = 0; x < n; x++) {
    before[static_cast<size_t>(x)] = m.select(static_cast<uint64_t>(x), 1)[0];
  }
  int moved = 0;
  for (int x = 0; x < n; x++) {
    const OsdId after = m.select(static_cast<uint64_t>(x), 1, {7})[0];
    if (after != before[static_cast<size_t>(x)]) {
      moved++;
      EXPECT_EQ(before[static_cast<size_t>(x)], 7)
          << "input moved although its device survived";
    }
  }
  // Roughly 1/16 of inputs lived on the removed device.
  EXPECT_NEAR(moved, n / 16, n / 16 * 0.35);
}

TEST(Crush, MinimalMovementOnWeightChange) {
  CrushMap m = paper_map();
  const int n = 5000;
  std::vector<OsdId> before(n);
  for (int x = 0; x < n; x++) {
    before[static_cast<size_t>(x)] = m.select(static_cast<uint64_t>(x), 1)[0];
  }
  ASSERT_TRUE(m.set_weight(3, 0.5).is_ok());
  int moved_to_other = 0;
  for (int x = 0; x < n; x++) {
    const OsdId after = m.select(static_cast<uint64_t>(x), 1)[0];
    if (after != before[static_cast<size_t>(x)]) {
      // Only inputs leaving the deweighted device may move.
      EXPECT_EQ(before[static_cast<size_t>(x)], 3);
      moved_to_other++;
    }
  }
  EXPECT_GT(moved_to_other, 0);
  EXPECT_LT(moved_to_other, n / 16);  // about half of osd 3's share
}

// --------------------------------------------------------------- OsdMap

OsdMap paper_osdmap() {
  OsdMap m;
  for (int h = 0; h < 4; h++) {
    for (int d = 0; d < 4; d++) m.add_osd(h * 4 + d, h);
  }
  return m;
}

TEST(OsdMap, PoolCreationAndLookup) {
  OsdMap m = paper_osdmap();
  PoolConfig cfg;
  cfg.name = "meta";
  cfg.replicas = 2;
  const PoolId id = m.create_pool(cfg);
  EXPECT_TRUE(m.has_pool(id));
  EXPECT_EQ(m.pool(id).name, "meta");
  EXPECT_EQ(m.pool_by_name("meta"), id);
  EXPECT_FALSE(m.pool_by_name("nope").has_value());
}

TEST(OsdMap, ActingSizeMatchesScheme) {
  OsdMap m = paper_osdmap();
  PoolConfig rep;
  rep.name = "rep";
  rep.replicas = 2;
  PoolConfig ec;
  ec.name = "ec";
  ec.scheme = RedundancyScheme::kErasure;
  ec.ec_k = 2;
  ec.ec_m = 1;
  const PoolId pr = m.create_pool(rep);
  const PoolId pe = m.create_pool(ec);
  EXPECT_EQ(m.acting(pr, "obj1").size(), 2u);
  EXPECT_EQ(m.acting(pe, "obj1").size(), 3u);
}

TEST(OsdMap, SpaceAmplification) {
  PoolConfig rep;
  rep.replicas = 3;
  EXPECT_DOUBLE_EQ(rep.space_amplification(), 3.0);
  PoolConfig ec;
  ec.scheme = RedundancyScheme::kErasure;
  ec.ec_k = 2;
  ec.ec_m = 1;
  EXPECT_DOUBLE_EQ(ec.space_amplification(), 1.5);
}

TEST(OsdMap, DownOsdLeavesActing) {
  OsdMap m = paper_osdmap();
  PoolConfig cfg;
  cfg.name = "p";
  const PoolId p = m.create_pool(cfg);
  // Find an object whose primary is OSD 0.
  std::string victim;
  for (int i = 0; i < 1000; i++) {
    std::string oid = "obj" + std::to_string(i);
    if (m.primary(p, oid) == 0) {
      victim = oid;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  m.mark_down(0);
  auto acting = m.acting(p, victim);
  for (OsdId o : acting) EXPECT_NE(o, 0);
  EXPECT_EQ(acting.size(), 2u);
  m.mark_up(0);
  EXPECT_EQ(m.primary(p, victim), 0);  // mapping restored
}

TEST(OsdMap, EpochAdvancesOnChange) {
  OsdMap m = paper_osdmap();
  const uint64_t e0 = m.epoch();
  m.mark_down(3);
  EXPECT_GT(m.epoch(), e0);
  const uint64_t e1 = m.epoch();
  m.mark_down(3);  // no-op
  EXPECT_EQ(m.epoch(), e1);
}

TEST(OsdMap, SameContentIdSamePlacement) {
  // The heart of double hashing: a chunk OID derived from content maps to
  // the same acting set no matter who computes it.
  OsdMap m = paper_osdmap();
  PoolConfig cfg;
  cfg.name = "chunks";
  const PoolId p = m.create_pool(cfg);
  const std::string chunk_oid = "sha256:abcdef0123456789";
  EXPECT_EQ(m.acting(p, chunk_oid), m.acting(p, chunk_oid));
  EXPECT_EQ(m.pg_of(p, chunk_oid), m.pg_of(p, chunk_oid));
}

TEST(OsdMap, PgWithinBounds) {
  OsdMap m = paper_osdmap();
  PoolConfig cfg;
  cfg.name = "p";
  cfg.pg_num = 64;
  const PoolId p = m.create_pool(cfg);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(m.pg_of(p, "o" + std::to_string(i)), 64u);
  }
}

TEST(OsdMap, UpOsdsTracksState) {
  OsdMap m = paper_osdmap();
  EXPECT_EQ(m.up_osds().size(), 16u);
  m.mark_down(1);
  m.mark_down(2);
  EXPECT_EQ(m.up_osds().size(), 14u);
  EXPECT_FALSE(m.is_up(1));
  EXPECT_TRUE(m.is_up(0));
}

}  // namespace
}  // namespace gdedup
