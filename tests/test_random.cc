// RNG determinism and distribution sanity; Zipf sampler shape.

#include "common/random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

namespace gdedup {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; i++) counts[r.below(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; i++) {
    const uint64_t v = r.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(5);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, FillDeterministic) {
  Rng a(42), b(42);
  uint8_t ba[37], bb[37];
  a.fill(ba, sizeof(ba));
  b.fill(bb, sizeof(bb));
  EXPECT_EQ(std::memcmp(ba, bb, sizeof(ba)), 0);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::map<uint64_t, uint64_t> seen;
  for (uint64_t i = 0; i < 100000; i++) {
    auto [it, inserted] = seen.emplace(mix64(i), i);
    EXPECT_TRUE(inserted) << "collision between " << i << " and " << it->second;
  }
}

TEST(Zipf, RanksInRange) {
  ZipfDistribution z(1000, 0.99);
  Rng r(9);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(z.sample(r), 1000u);
  }
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfDistribution z(10000, 0.99);
  Rng r(13);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    if (z.sample(r) < 100) head++;  // top 1% of ranks
  }
  // For theta ~1, the top 1% draws a large share (far more than uniform 1%).
  EXPECT_GT(head, n / 4);
}

TEST(Zipf, HigherThetaSkewsMore) {
  Rng r1(17), r2(17);
  ZipfDistribution mild(10000, 0.5);
  ZipfDistribution steep(10000, 1.2);
  int head_mild = 0, head_steep = 0;
  for (int i = 0; i < 20000; i++) {
    if (mild.sample(r1) < 10) head_mild++;
    if (steep.sample(r2) < 10) head_steep++;
  }
  EXPECT_GT(head_steep, head_mild);
}

}  // namespace
}  // namespace gdedup
