// The two-tier fingerprint fast path (hash/weak_hash.h,
// dedup/fingerprint_index.h, the tier probe in dedup/tier.cc) and the
// chunk-refs metadata cache (osd/refs_cache.h).
//
// What must hold: the weak hash is a pure function of the byte stream
// (golden vectors + incremental-vs-oneshot); the index never returns a
// wrong fingerprint, even under forced weak-hash collisions — byte
// verification is the only authority; and the fast path is host-side
// only: the determinism digest is byte-identical with GDEDUP_FP_FASTPATH
// on or off, at any shard/thread count, across replicated, EC and
// crash-schedule workloads.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dedup/chunker.h"
#include "dedup/fingerprint_index.h"
#include "hash/weak_hash.h"
#include "osd/refs_cache.h"
#include "rados/fault_campaign.h"
#include "sim_e2e_scenario.h"
#include "test_util.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::small_cluster_config;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

// --- Weak hash: golden vectors + streaming equivalence ---

TEST(WeakHash, GoldenVectors) {
  // Frozen outputs of the FNV-64-word + splitmix64 construction.  A change
  // here silently invalidates every persisted fingerprint index, so treat
  // the function as a wire format.
  EXPECT_EQ(WeakHasher::oneshot({}), 0xf52a15e9a9b5e89bULL);

  const auto vec = [](const char* s) {
    return WeakHasher::oneshot(
        {reinterpret_cast<const uint8_t*>(s), strlen(s)});
  };
  EXPECT_EQ(vec("a"), 0x8097ca68b9cc797bULL);
  EXPECT_EQ(vec("abc"), 0xe5a156a71fa6f76bULL);
  EXPECT_EQ(vec("The quick brown fox jumps over the lazy dog"),
            0xb4a339c371ac5916ULL);

  Buffer zeros(kChunk);  // zero-filled
  EXPECT_EQ(WeakHasher::oneshot(zeros.span()), 0x5f80f3398eeefe43ULL);

  Buffer seq(256);
  for (size_t i = 0; i < 256; i++) seq.mutable_data()[i] = uint8_t(i);
  EXPECT_EQ(WeakHasher::oneshot(seq.span()), 0xa87803af8d4456deULL);
}

TEST(WeakHash, IncrementalMatchesOneshot) {
  // digest() is defined over the byte stream only — split points must not
  // matter.  Exhaustive over every split of a short buffer (covers all
  // tail-length x word-alignment combinations), then irregular pieces
  // over a longer one.
  Buffer data = random_buffer(131, 0xfeed);
  const uint64_t want = WeakHasher::oneshot(data.span());
  for (size_t cut = 0; cut <= data.size(); cut++) {
    WeakHasher h;
    h.update(data.span().subspan(0, cut));
    h.update(data.span().subspan(cut));
    EXPECT_EQ(h.digest(), want) << "split at " << cut;
    EXPECT_EQ(h.bytes_consumed(), data.size());
  }

  Buffer big = random_buffer(64 * 1024 + 13, 0xbeef);
  const uint64_t want_big = WeakHasher::oneshot(big.span());
  const size_t pieces[] = {1, 3, 7, 8, 9, 13, 64, 1000, 4096, 32768};
  WeakHasher h;
  size_t off = 0, pi = 0;
  while (off < big.size()) {
    const size_t n = std::min(pieces[pi++ % 10], big.size() - off);
    h.update(big.span().subspan(off, n));
    off += n;
  }
  EXPECT_EQ(h.digest(), want_big);
  // digest() must not consume: appending more bytes continues the stream.
  h.update(data.span());
  WeakHasher both;
  both.update(big.span());
  both.update(data.span());
  EXPECT_EQ(h.digest(), both.digest());

  // The raw-pointer alias is the same function.
  EXPECT_EQ(weak_hash64(big.data(), big.size()), want_big);
}

TEST(WeakHash, FusedChunkingMatchesSplitThenHash) {
  // split_with_weak() must produce exactly split()'s boundaries with each
  // chunk's weak hash equal to a standalone oneshot — for both chunkers.
  Buffer image = random_buffer(513 * 1024 + 777, 0xc0de);

  FixedChunker fixed(kChunk);
  const auto fc = fixed.split(image);
  const auto fw = fixed.split_with_weak(image);
  ASSERT_EQ(fc.size(), fw.size());
  for (size_t i = 0; i < fc.size(); i++) {
    EXPECT_EQ(fw[i].offset, fc[i].offset);
    ASSERT_TRUE(fw[i].data.content_equals(fc[i].data));
    EXPECT_EQ(fw[i].weak, WeakHasher::oneshot(fc[i].data.span()));
  }

  CdcChunker cdc(8 * 1024, 16 * 1024, 64 * 1024);
  const auto cc = cdc.split(image);
  const auto cw = cdc.split_with_weak(image);
  ASSERT_EQ(cc.size(), cw.size());
  for (size_t i = 0; i < cc.size(); i++) {
    EXPECT_EQ(cw[i].offset, cc[i].offset);
    ASSERT_TRUE(cw[i].data.content_equals(cc[i].data));
    EXPECT_EQ(cw[i].weak, WeakHasher::oneshot(cc[i].data.span()));
  }
}

// --- Fingerprint index: probe/insert, collisions, capacity ---

TEST(FingerprintIndex, ProbeInsertVerifiedHit) {
  FingerprintIndex idx;
  Buffer a = random_buffer(kChunk, 1);
  const uint64_t wa = WeakHasher::oneshot(a.span());
  const Fingerprint fa = Fingerprint::compute(FingerprintAlgo::kSha256,
                                              a.span());

  // Empty index: the bloom filter proves absence without a map lookup.
  auto pr = idx.probe(wa, a);
  EXPECT_FALSE(pr.hit());
  EXPECT_EQ(pr.outcome, FingerprintIndex::Outcome::kBloomNegative);
  EXPECT_EQ(idx.stats().bloom_negatives, 1u);
  EXPECT_EQ(idx.stats().misses, 1u);

  idx.insert(wa, a, fa);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.retained_bytes(), uint64_t(kChunk));

  pr = idx.probe(wa, a);
  ASSERT_TRUE(pr.hit());
  EXPECT_EQ(pr.outcome, FingerprintIndex::Outcome::kVerifiedHit);
  EXPECT_EQ(*pr.fp, fa);
  EXPECT_EQ(idx.stats().verified_hits, 1u);

  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.retained_bytes(), 0u);
  EXPECT_FALSE(idx.probe(wa, a).hit());
}

TEST(FingerprintIndex, CollisionNeverReturnsWrongFingerprint) {
  FingerprintIndex idx;
  Buffer a = random_buffer(kChunk, 2);
  Buffer b = random_buffer(kChunk, 3);  // different bytes, forced same key
  const uint64_t w = 0x42;
  const Fingerprint fa = Fingerprint::compute(FingerprintAlgo::kSha256,
                                              a.span());
  const Fingerprint fb = Fingerprint::compute(FingerprintAlgo::kSha256,
                                              b.span());

  idx.insert(w, a, fa);
  auto pr = idx.probe(w, b);
  EXPECT_FALSE(pr.hit());
  EXPECT_EQ(pr.outcome, FingerprintIndex::Outcome::kCollision);
  EXPECT_EQ(idx.stats().collisions, 1u);

  // The colliding chunk displaces the candidate in place (no growth).
  idx.insert(w, b, fb);
  EXPECT_EQ(idx.size(), 1u);
  pr = idx.probe(w, b);
  ASSERT_TRUE(pr.hit());
  EXPECT_EQ(*pr.fp, fb);
  pr = idx.probe(w, a);
  EXPECT_EQ(pr.outcome, FingerprintIndex::Outcome::kCollision);
}

TEST(FingerprintIndex, EntryCapEvictsLru) {
  FingerprintIndex::Config cfg;
  cfg.max_entries = 8;  // 2 per shard at 4 shards
  cfg.shards = 4;
  FingerprintIndex idx(cfg);
  for (uint64_t i = 0; i < 64; i++) {
    Buffer c = random_buffer(1024, 100 + i);
    idx.insert(i, c,
               Fingerprint::compute(FingerprintAlgo::kSha256, c.span()));
  }
  EXPECT_LE(idx.size(), 8u);
  EXPECT_GE(idx.stats().evictions, 56u);
  EXPECT_EQ(idx.retained_bytes(), idx.size() * 1024u);
}

TEST(FingerprintIndex, ByteCapEvictsColdest) {
  FingerprintIndex::Config cfg;
  cfg.max_entries = 1024;
  cfg.max_bytes = 2 * kChunk;  // room for two chunks
  cfg.shards = 1;
  FingerprintIndex idx(cfg);
  for (uint64_t i = 0; i < 5; i++) {
    Buffer c = random_buffer(kChunk, 200 + i);
    idx.insert(i, c,
               Fingerprint::compute(FingerprintAlgo::kSha256, c.span()));
  }
  EXPECT_LE(idx.retained_bytes(), uint64_t(2 * kChunk));
  EXPECT_LE(idx.size(), 2u);
  EXPECT_GE(idx.stats().evictions, 3u);
  // The hottest (most recent) entry survived.
  Buffer last = random_buffer(kChunk, 204);
  EXPECT_TRUE(idx.probe(4, last).hit());
}

TEST(FingerprintIndex, ReinsertChurnKeepsByteAccountingExact) {
  // Refreshing an existing key swaps the pinned content in place; the
  // shard's byte gauge must track the swap exactly (debit old, credit
  // new), or the byte cap drifts and either over-evicts or stops bounding
  // memory at all.  Churn one key through growing and shrinking payloads
  // and require retained_bytes to stay a ground-truth recount.
  FingerprintIndex::Config cfg;
  cfg.max_entries = 64;
  cfg.max_bytes = 1ull << 30;  // byte cap out of the way: pure accounting
  cfg.shards = 1;
  FingerprintIndex idx(cfg);
  const size_t sizes[] = {512, kChunk, 256, 4096, kChunk, 100};
  for (uint64_t round = 0; round < 32; round++) {
    const size_t n = sizes[round % (sizeof(sizes) / sizeof(sizes[0]))];
    Buffer c = random_buffer(n, 7000 + round);
    idx.insert(/*weak=*/1, c,
               Fingerprint::compute(FingerprintAlgo::kSha256, c.span()));
    EXPECT_EQ(idx.size(), 1u) << "round " << round;
    EXPECT_EQ(idx.retained_bytes(), n) << "round " << round;
  }
  EXPECT_EQ(idx.stats().evictions, 0u);
  // And under a tight cap, churned re-inserts still respect the bound.
  cfg.max_bytes = 2 * kChunk;
  FingerprintIndex tight(cfg);
  for (uint64_t round = 0; round < 32; round++) {
    Buffer c = random_buffer(kChunk, 8000 + round);
    tight.insert(round % 3, c,
                 Fingerprint::compute(FingerprintAlgo::kSha256, c.span()));
    EXPECT_LE(tight.retained_bytes(), uint64_t(2 * kChunk));
    EXPECT_EQ(tight.retained_bytes(), tight.size() * uint64_t(kChunk));
  }
}

TEST(FingerprintIndex, BloomRebuildsAfterChurn) {
  FingerprintIndex::Config cfg;
  cfg.max_entries = 4;
  cfg.shards = 1;
  FingerprintIndex idx(cfg);
  Buffer c = random_buffer(512, 7);
  const Fingerprint f = Fingerprint::compute(FingerprintAlgo::kSha256,
                                             c.span());
  for (uint64_t i = 0; i < 200; i++) idx.insert(i, c, f);
  EXPECT_GE(idx.stats().bloom_rebuilds, 1u);
  // After the rebuild, long-evicted keys answer through the bloom again
  // (no guarantee for any single key — a rebuilt filter only restores the
  // *rate* — so just require the negative path to be live at all).
  for (uint64_t i = 1000; i < 1200; i++) (void)idx.probe(i, c);
  EXPECT_GT(idx.stats().bloom_negatives, 0u);
}

// --- Refs cache: identity validation (osd/refs_cache.h) ---

TEST(RefsCache, HitsOnExactBufferIdentityOnly) {
  RefsCache cache(8);
  const ObjectKey key{1, "sha256:feed"};
  Buffer enc = random_buffer(64, 1);
  cache.put(key, enc, {{1, "obj", 0}, {1, "obj", kChunk}});

  const std::vector<ChunkRef>* hit = cache.find(key, enc);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);

  // Byte-identical content in a *different* buffer is a different
  // identity (fresh generation): the stale entry is dropped eagerly.
  Buffer twin = random_buffer(64, 1);
  ASSERT_TRUE(twin.content_equals(enc));
  EXPECT_EQ(cache.find(key, twin), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RefsCache, GenerationZeroNeverValidates) {
  // Generation 0 marks a Buffer that never went through
  // next_generation() — e.g. default-constructed.  Such identities are
  // not unique (two empty Buffers share (nullptr, 0, 0)), so an entry
  // bound to one could survive a delete+recreate of the chunk object.
  // Both ends refuse: put() drops gen-0 bindings, find() rejects gen-0
  // probes against a live entry.
  RefsCache cache(8);
  const ObjectKey key{1, "sha256:beef"};

  Buffer untracked;  // no storage, generation 0
  cache.put(key, untracked, {{1, "obj", 0}});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key, untracked), nullptr);

  Buffer real = random_buffer(32, 2);
  cache.put(key, real, {{1, "obj", 0}});
  EXPECT_EQ(cache.size(), 1u);
  Buffer empty_probe;
  EXPECT_EQ(cache.find(key, empty_probe), nullptr);
}

TEST(RefsCache, DeleteRecreateNeverReusesStaleRefs) {
  // End to end through the OSD: flush a deduped object, remove it (chunk
  // derefs to zero -> chunk object deleted -> cache entry dropped), then
  // recreate the same content.  The recreated chunk must carry exactly
  // the fresh ref — a stale cached vector would resurrect the old one.
  DedupHarness h(test_tier_config());
  Buffer piece = random_buffer(kChunk, 77);
  ASSERT_TRUE(h.write("obj", 0, piece).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_EQ(h.chunk_object_count(), 1u);
  ASSERT_EQ(h.total_chunk_refs(), 1u);

  ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, "obj").is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 0u);

  ASSERT_TRUE(h.write("obj2", 0, piece).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 1u);
  EXPECT_TRUE(h.refcounts_consistent());
  auto r = h.read("obj2", 0, kChunk);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(piece));
}

// --- The tier fast path end to end (DedupHarness) ---

ClusterConfig fastpath_cluster_config(int fp_fastpath) {
  ClusterConfig ccfg = small_cluster_config();
  ccfg.fp_fastpath = fp_fastpath;  // explicit: don't inherit the env
  return ccfg;
}

TEST(FpFastpathTier, WeakHitAvoidsSha) {
  DedupHarness h(test_tier_config(), fastpath_cluster_config(1));
  Buffer piece = random_buffer(kChunk, 42);

  // First flush of this content: full SHA, index learns it.
  ASSERT_TRUE(h.write("obj", 0, piece).is_ok());
  ASSERT_TRUE(h.drain());
  const DedupTierStats s0 = h.cluster->tier_stats(h.meta);
  EXPECT_GE(s0.sha_computed, 1u);
  EXPECT_EQ(s0.sha_avoided, 0u);

  // Same bytes in a *fresh* buffer at the next chunk slot of the same
  // object (same primary, same node index; new identity defeats the COW
  // memo).  The weak probe must find the candidate and skip the SHA.
  Buffer again = random_buffer(kChunk, 42);
  ASSERT_TRUE(h.write("obj", kChunk, again).is_ok());
  ASSERT_TRUE(h.drain());
  const DedupTierStats s1 = h.cluster->tier_stats(h.meta);
  EXPECT_GE(s1.weak_hash_hits, s0.weak_hash_hits + 1);
  EXPECT_GE(s1.sha_avoided, 1u);
  EXPECT_EQ(s1.sha_computed, s0.sha_computed);  // no new SHA needed

  // The avoided SHA changed nothing observable: one chunk object, two
  // refs, correct read-back.
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 2u);
  EXPECT_TRUE(h.refcounts_consistent());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(Buffer::concat(piece, again)));
}

TEST(FpFastpathTier, ForcedCollisionFallsBackToSha) {
  // Collision injection: a constant weak hash forces every chunk onto one
  // index key, so distinct contents must survive on byte verification
  // alone — the index may never dedup two different chunks.
  DedupHarness h(test_tier_config(), fastpath_cluster_config(1));
  for (Osd* o : h.cluster->osds()) {
    if (DedupTier* t = h.cluster->tier_of(o->id(), h.meta)) {
      t->set_weak_hash_hook([](const Buffer&) { return uint64_t{42}; });
    }
  }

  Buffer a = random_buffer(kChunk, 50);
  Buffer b = random_buffer(kChunk, 51);  // different content, same weak
  ASSERT_TRUE(h.write("obj", 0, a).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_TRUE(h.write("obj", kChunk, b).is_ok());
  ASSERT_TRUE(h.drain());

  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_GE(s.weak_collisions, 1u);
  EXPECT_EQ(s.sha_avoided, 0u);  // verification rejected every candidate
  EXPECT_GE(s.sha_computed, 2u);

  // Two distinct chunk objects despite the identical weak hash.
  EXPECT_EQ(h.chunk_object_count(), 2u);
  EXPECT_EQ(h.total_chunk_refs(), 2u);
  EXPECT_TRUE(h.refcounts_consistent());
  auto r = h.read("obj", 0, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(Buffer::concat(a, b)));

  // A re-appearance of content `a` probes the (now `b`-holding) slot,
  // collides again, recomputes the SHA — and still dedups against the
  // existing chunk object through the normal OID path.
  Buffer a2 = random_buffer(kChunk, 50);
  ASSERT_TRUE(h.write("obj2", 0, a2).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 2u);
  EXPECT_EQ(h.total_chunk_refs(), 3u);
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(FpFastpathTier, OffModeNeverProbes) {
  DedupHarness h(test_tier_config(), fastpath_cluster_config(0));
  Buffer piece = random_buffer(kChunk, 60);
  ASSERT_TRUE(h.write("obj", 0, piece).is_ok());
  ASSERT_TRUE(h.drain());
  Buffer again = random_buffer(kChunk, 60);
  ASSERT_TRUE(h.write("obj", kChunk, again).is_ok());
  ASSERT_TRUE(h.drain());

  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.weak_hash_hits, 0u);
  EXPECT_EQ(s.weak_hash_misses, 0u);
  EXPECT_EQ(s.weak_collisions, 0u);
  EXPECT_EQ(s.bloom_negative_hits, 0u);
  EXPECT_EQ(s.sha_avoided, 0u);
  EXPECT_GE(s.sha_computed, 2u);
  // Deduplication itself is unaffected — it rides the chunk OID.
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_EQ(h.total_chunk_refs(), 2u);
}

// --- Digest invariance: the fast path is host-side only ---

bench::SimE2eConfig invariance_config(bool ec) {
  bench::SimE2eConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  cfg.dedupe = 0.9;  // dedup-heavy so the fast path actually fires
  cfg.ec = ec;
  return cfg;
}

void check_digest_invariance(bool ec) {
  bench::SimE2eConfig cfg = invariance_config(ec);
  cfg.fp_fastpath = 0;
  cfg.exec_threads = 1;
  cfg.sim_shards = 1;
  const bench::SimE2eResult off = bench::run_sim_e2e(cfg);
  EXPECT_TRUE(off.drained);
  EXPECT_FALSE(off.fp_fastpath_used);
  EXPECT_EQ(off.sha_avoided, 0u);
  EXPECT_EQ(off.weak_hash_hits, 0u);

  cfg.fp_fastpath = 1;
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      cfg.sim_shards = shards;
      cfg.exec_threads = threads;
      const bench::SimE2eResult on = bench::run_sim_e2e(cfg);
      const std::string at = "ec=" + std::to_string(ec) +
                             " shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads);
      EXPECT_EQ(on.digest, off.digest) << at;
      EXPECT_EQ(on.events, off.events) << at;
      EXPECT_EQ(on.sim_duration, off.sim_duration) << at;
      EXPECT_TRUE(on.fp_fastpath_used) << at;
      // Host-side accounting: the fast path only ever removes SHA work.
      EXPECT_LE(on.sha_computed, off.sha_computed) << at;
      EXPECT_GT(on.sha_computed + on.sha_avoided, 0u) << at;
      EXPECT_EQ(on.sha_computed + on.sha_avoided,
                off.sha_computed + off.sha_avoided)
          << at;
    }
  }
}

TEST(FpFastpathDeterminism, DigestInvariantReplicated) {
  check_digest_invariance(/*ec=*/false);
}

TEST(FpFastpathDeterminism, DigestInvariantEc) {
  check_digest_invariance(/*ec=*/true);
}

TEST(FpFastpathDeterminism, FaultCampaignSliceEquivalence) {
  // Crash schedules under the campaign's seed->variant matrix must
  // produce byte-stable reports with the fast path on or off: redo
  // convergence, refcounts and reports never depend on which fingerprints
  // came from the index.  The campaign builds its own Clusters, which
  // read GDEDUP_FP_FASTPATH at construction.
  auto run_slice = [](const char* fastpath) {
    setenv("GDEDUP_FP_FASTPATH", fastpath, 1);
    std::vector<std::string> reports;
    for (uint64_t seed = 1; seed <= 16; seed++) {
      ScheduleResult r = run_fault_schedule(schedule_config_for_seed(seed));
      EXPECT_TRUE(r.clean()) << "seed " << seed << " fastpath=" << fastpath;
      reports.push_back(std::move(r.report));
    }
    unsetenv("GDEDUP_FP_FASTPATH");
    return reports;
  };
  const auto off = run_slice("0");
  const auto on = run_slice("1");
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); i++) {
    EXPECT_EQ(off[i], on[i]) << "schedule seed " << (i + 1);
  }
}

}  // namespace
}  // namespace gdedup
