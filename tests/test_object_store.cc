// ExtentMap sparse semantics, Transaction atomicity, ObjectStore state,
// physical accounting with and without at-rest compression.

#include "osd/object_store.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gdedup {
namespace {

// -------------------------------------------------------------- ExtentMap

TEST(ExtentMap, WriteAndReadBack) {
  ExtentMap em;
  em.write(100, Buffer::copy_of("hello"));
  EXPECT_EQ(em.read(100, 5).view(), "hello");
  EXPECT_EQ(em.stored_bytes(), 5u);
  EXPECT_EQ(em.end_offset(), 105u);
}

TEST(ExtentMap, HolesReadAsZeros) {
  ExtentMap em;
  em.write(10, Buffer::copy_of("xy"));
  Buffer r = em.read(8, 6);
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[2], 'x');
  EXPECT_EQ(r[3], 'y');
  EXPECT_EQ(r[4], 0);
}

TEST(ExtentMap, OverwriteSplitsExtents) {
  ExtentMap em;
  em.write(0, Buffer::copy_of("aaaaaaaaaa"));  // [0,10)
  em.write(3, Buffer::copy_of("BBB"));         // [3,6)
  EXPECT_EQ(em.read(0, 10).view(), "aaaBBBaaaa");
  EXPECT_EQ(em.stored_bytes(), 10u);
}

TEST(ExtentMap, PunchHoleMiddle) {
  ExtentMap em;
  em.write(0, Buffer::copy_of("0123456789"));
  em.punch_hole(3, 4);
  EXPECT_EQ(em.stored_bytes(), 6u);
  Buffer r = em.read(0, 10);
  EXPECT_EQ(r.slice(0, 3).view(), "012");
  EXPECT_EQ(r[4], 0);
  EXPECT_EQ(r.slice(7, 3).view(), "789");
  EXPECT_FALSE(em.fully_present(0, 10));
  EXPECT_TRUE(em.fully_present(0, 3));
  EXPECT_TRUE(em.fully_present(7, 3));
}

TEST(ExtentMap, PunchHoleAcrossExtents) {
  ExtentMap em;
  em.write(0, Buffer::copy_of("aaaa"));
  em.write(10, Buffer::copy_of("bbbb"));
  em.punch_hole(2, 10);  // tail of first, head of second
  EXPECT_EQ(em.read(0, 2).view(), "aa");
  EXPECT_EQ(em.read(12, 2).view(), "bb");
  EXPECT_EQ(em.stored_bytes(), 4u);
}

TEST(ExtentMap, TruncateDropsTail) {
  ExtentMap em;
  em.write(0, Buffer::copy_of("0123456789"));
  em.truncate(4);
  EXPECT_EQ(em.stored_bytes(), 4u);
  EXPECT_EQ(em.end_offset(), 4u);
}

TEST(ExtentMap, FullyPresentEmptyRange) {
  ExtentMap em;
  EXPECT_TRUE(em.fully_present(5, 0));
  EXPECT_FALSE(em.fully_present(0, 1));
}

TEST(ExtentMap, RandomizedAgainstFlatModel) {
  // Property: extent map behaves like a flat byte array + presence bitmap.
  Rng rng(17);
  constexpr size_t kSpan = 2048;
  std::vector<uint8_t> flat(kSpan, 0);
  std::vector<bool> present(kSpan, false);
  ExtentMap em;
  for (int iter = 0; iter < 2000; iter++) {
    const uint64_t off = rng.below(kSpan - 1);
    const uint64_t len = 1 + rng.below(std::min<uint64_t>(64, kSpan - off));
    if (rng.chance(0.6)) {
      Buffer b(len);
      rng.fill(b.mutable_data(), len);
      for (uint64_t i = 0; i < len; i++) {
        flat[off + i] = b[i];
        present[off + i] = true;
      }
      em.write(off, std::move(b));
    } else {
      em.punch_hole(off, len);
      for (uint64_t i = 0; i < len; i++) {
        flat[off + i] = 0;
        present[off + i] = false;
      }
    }
    // Spot-check a random window.
    const uint64_t roff = rng.below(kSpan - 1);
    const uint64_t rlen = 1 + rng.below(std::min<uint64_t>(128, kSpan - roff));
    Buffer got = em.read(roff, rlen);
    for (uint64_t i = 0; i < rlen; i++) {
      const uint8_t want = present[roff + i] ? flat[roff + i] : 0;
      ASSERT_EQ(got[i], want) << "iter=" << iter << " at " << roff + i;
    }
  }
  uint64_t expect_bytes = 0;
  for (bool p : present) expect_bytes += p ? 1 : 0;
  EXPECT_EQ(em.stored_bytes(), expect_bytes);
}

// ------------------------------------------------------------ ObjectStore

ObjectKey key(const std::string& oid) { return {0, oid}; }

TEST(ObjectStore, WriteCreatesObject) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer::copy_of("data"));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_TRUE(st.exists(key("a")));
  EXPECT_EQ(st.size(key("a")).value(), 4u);
  EXPECT_EQ(st.read(key("a"), 0, 0)->view(), "data");
}

TEST(ObjectStore, ReadClampsToLogicalSize) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer::copy_of("12345678"));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_EQ(st.read(key("a"), 6, 100)->view(), "78");
  EXPECT_EQ(st.read(key("a"), 100, 10)->size(), 0u);
}

TEST(ObjectStore, WriteFullReplaces) {
  ObjectStore st;
  Transaction t1;
  t1.write(key("a"), 0, Buffer::copy_of("long old content"));
  ASSERT_TRUE(st.apply(t1).is_ok());
  Transaction t2;
  t2.write_full(key("a"), Buffer::copy_of("new"));
  ASSERT_TRUE(st.apply(t2).is_ok());
  EXPECT_EQ(st.size(key("a")).value(), 3u);
  EXPECT_EQ(st.read(key("a"), 0, 0)->view(), "new");
}

TEST(ObjectStore, XattrAndOmap) {
  ObjectStore st;
  Transaction t;
  t.create(key("a"));
  t.setxattr(key("a"), "attr", Buffer::copy_of("v1"));
  t.omap_set(key("a"), "k", Buffer::copy_of("v2"));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_EQ(st.getxattr(key("a"), "attr")->view(), "v1");
  EXPECT_EQ(st.omap_get(key("a"), "k")->view(), "v2");
  EXPECT_FALSE(st.getxattr(key("a"), "missing").is_ok());

  Transaction t2;
  t2.rmxattr(key("a"), "attr");
  t2.omap_rm(key("a"), "k");
  ASSERT_TRUE(st.apply(t2).is_ok());
  EXPECT_FALSE(st.getxattr(key("a"), "attr").is_ok());
  EXPECT_FALSE(st.omap_get(key("a"), "k").is_ok());
}

TEST(ObjectStore, RemoveMissingFailsWholeTxn) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer::copy_of("x"));
  t.remove(key("ghost"));
  const Status s = st.apply(t);
  EXPECT_FALSE(s.is_ok());
  // Atomicity: nothing applied.
  EXPECT_FALSE(st.exists(key("a")));
}

TEST(ObjectStore, CreateThenRemoveInOneTxn) {
  ObjectStore st;
  Transaction t;
  t.write(key("tmp"), 0, Buffer::copy_of("x"));
  t.remove(key("tmp"));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_FALSE(st.exists(key("tmp")));
}

TEST(ObjectStore, VersionBumpsOncePerTxn) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer::copy_of("x"));
  t.setxattr(key("a"), "m", Buffer::copy_of("y"));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_EQ(st.version(key("a")).value(), 1u);
  Transaction t2;
  t2.write(key("a"), 1, Buffer::copy_of("z"));
  ASSERT_TRUE(st.apply(t2).is_ok());
  EXPECT_EQ(st.version(key("a")).value(), 2u);
}

TEST(ObjectStore, PunchHoleReducesStoredBytes) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer(1000, 7));
  ASSERT_TRUE(st.apply(t).is_ok());
  const auto before = st.stats();
  Transaction t2;
  t2.punch_hole(key("a"), 0, 600);
  ASSERT_TRUE(st.apply(t2).is_ok());
  const auto after = st.stats();
  EXPECT_EQ(before.stored_data_bytes - after.stored_data_bytes, 600u);
  // Logical size unchanged by the hole.
  EXPECT_EQ(st.size(key("a")).value(), 1000u);
}

TEST(ObjectStore, StatsAccounting) {
  ObjectStore st;
  Transaction t;
  t.write(key("a"), 0, Buffer(100, 1));
  t.setxattr(key("a"), "xa", Buffer(20, 2));
  t.omap_set(key("a"), "om", Buffer(30, 3));
  ASSERT_TRUE(st.apply(t).is_ok());
  const auto s = st.stats();
  EXPECT_EQ(s.objects, 1u);
  EXPECT_EQ(s.logical_bytes, 100u);
  EXPECT_EQ(s.stored_data_bytes, 100u);
  EXPECT_EQ(s.xattr_bytes, 22u);  // "xa" + 20
  EXPECT_EQ(s.omap_bytes, 32u);   // "om" + 30
  EXPECT_EQ(s.physical_bytes, 100u + 22 + 32 + kPerObjectBaseBytes);
}

TEST(ObjectStore, PerPoolStats) {
  ObjectStore st;
  Transaction t;
  t.write({1, "a"}, 0, Buffer(10, 1));
  t.write({2, "b"}, 0, Buffer(20, 1));
  ASSERT_TRUE(st.apply(t).is_ok());
  EXPECT_EQ(st.stats(1).logical_bytes, 10u);
  EXPECT_EQ(st.stats(2).logical_bytes, 20u);
  EXPECT_EQ(st.list(1).size(), 1u);
  EXPECT_EQ(st.list_all().size(), 2u);
}

TEST(ObjectStore, CompressionAtRestShrinksPhysical) {
  ObjectStore plain(false);
  ObjectStore comp(true);
  Buffer zeros(64 * 1024);  // maximally compressible
  for (ObjectStore* st : {&plain, &comp}) {
    Transaction t;
    t.write(key("a"), 0, zeros);
    ASSERT_TRUE(st->apply(t).is_ok());
  }
  EXPECT_EQ(plain.stats().stored_data_bytes, 64u * 1024);
  EXPECT_LT(comp.stats().stored_data_bytes, 2048u);
  // Logical view identical.
  EXPECT_TRUE(comp.read(key("a"), 0, 0)->content_equals(
      *plain.read(key("a"), 0, 0)));
}

TEST(ObjectStore, SnapshotInstallRoundTrip) {
  ObjectStore a, b;
  Transaction t;
  t.write(key("a"), 0, Buffer::copy_of("payload"));
  t.setxattr(key("a"), "m", Buffer::copy_of("meta"));
  ASSERT_TRUE(a.apply(t).is_ok());
  auto snap = a.snapshot(key("a"));
  ASSERT_TRUE(snap.is_ok());
  b.install(key("a"), snap.value());
  EXPECT_EQ(b.read(key("a"), 0, 0)->view(), "payload");
  EXPECT_EQ(b.getxattr(key("a"), "m")->view(), "meta");
  EXPECT_EQ(b.version(key("a")).value(), a.version(key("a")).value());
}

TEST(ObjectStore, ApplyToStateMirrorsApply) {
  // Property: applying a transaction to a detached state equals applying
  // it to the store (the EC write path depends on this equivalence).
  ObjectStore st;
  Transaction setup;
  setup.write(key("a"), 0, Buffer::copy_of("0123456789"));
  ASSERT_TRUE(st.apply(setup).is_ok());

  Transaction t;
  t.write(key("a"), 4, Buffer::copy_of("XY"));
  t.setxattr(key("a"), "n", Buffer::copy_of("v"));
  t.truncate(key("a"), 8);

  ObjectState img = st.snapshot(key("a")).value();
  bool exists = true;
  ASSERT_TRUE(ObjectStore::apply_to_state(t, key("a"), &img, &exists).is_ok());
  ASSERT_TRUE(st.apply(t).is_ok());

  EXPECT_TRUE(exists);
  EXPECT_EQ(img.logical_size, st.size(key("a")).value());
  EXPECT_TRUE(img.data.read(0, img.logical_size)
                  .content_equals(*st.read(key("a"), 0, 0)));
  EXPECT_EQ(img.xattrs.at("n").view(), "v");
}

TEST(Transaction, ByteSizeCountsPayload) {
  Transaction t;
  EXPECT_EQ(t.byte_size(), 0u);
  t.write(key("abc"), 0, Buffer(100));
  const uint64_t sz = t.byte_size();
  EXPECT_GE(sz, 100u);
  t.setxattr(key("abc"), "name", Buffer(50));
  EXPECT_GT(t.byte_size(), sz + 50);
}

}  // namespace
}  // namespace gdedup
