// Fixed and content-defined chunkers; chunk map encode/decode with the
// paper's 150-byte entry footprint.

#include <gtest/gtest.h>

#include <set>

#include "common/encoding.h"
#include "common/random.h"
#include "dedup/chunk_map.h"
#include "dedup/chunker.h"
#include "hash/rabin.h"
#include "hash/weak_hash.h"

namespace gdedup {
namespace {

// ----------------------------------------------------------- FixedChunker

TEST(FixedChunker, ExactMultiple) {
  FixedChunker c(4);
  auto chunks = c.split(Buffer::copy_of("abcdefgh"));
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].data.view(), "abcd");
  EXPECT_EQ(chunks[1].offset, 4u);
  EXPECT_EQ(chunks[1].data.view(), "efgh");
}

TEST(FixedChunker, ShortTail) {
  FixedChunker c(4);
  auto chunks = c.split(Buffer::copy_of("abcdef"));
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].data.view(), "ef");
}

TEST(FixedChunker, EmptyInput) {
  FixedChunker c(4);
  EXPECT_TRUE(c.split(Buffer()).empty());
}

TEST(FixedChunker, GridArithmetic) {
  FixedChunker c(32768);
  EXPECT_EQ(c.chunk_start(0), 0u);
  EXPECT_EQ(c.chunk_start(32767), 0u);
  EXPECT_EQ(c.chunk_start(32768), 32768u);
  EXPECT_EQ(c.chunk_index(65536), 2u);
}

TEST(FixedChunker, CoveringRanges) {
  FixedChunker c(10);
  EXPECT_EQ(c.covering(0, 10), (std::vector<uint64_t>{0}));
  EXPECT_EQ(c.covering(5, 10), (std::vector<uint64_t>{0, 10}));
  EXPECT_EQ(c.covering(10, 1), (std::vector<uint64_t>{10}));
  EXPECT_EQ(c.covering(9, 2), (std::vector<uint64_t>{0, 10}));
  EXPECT_TRUE(c.covering(0, 0).empty());
  EXPECT_EQ(c.covering(25, 30), (std::vector<uint64_t>{20, 30, 40, 50}));
}

TEST(FixedChunker, StableGridAcrossWrites) {
  // The property the write path depends on: the same offset always maps to
  // the same chunk slot.
  FixedChunker c(32 * 1024);
  for (uint64_t off : {0ull, 16ull * 1024, 48ull * 1024, 1000000ull}) {
    EXPECT_EQ(c.chunk_start(off), c.covering(off, 1)[0]);
  }
}

// ------------------------------------------------------------- CdcChunker

Buffer random_data(size_t n, uint64_t seed) {
  Buffer b(n);
  Rng rng(seed);
  rng.fill(b.mutable_data(), n);
  return b;
}

TEST(CdcChunker, ReassemblesExactly) {
  CdcChunker c(2048, 8192, 32768);
  Buffer data = random_data(300000, 5);
  auto chunks = c.split(data);
  Buffer joined;
  uint64_t expect_off = 0;
  for (const auto& ch : chunks) {
    EXPECT_EQ(ch.offset, expect_off);
    joined = Buffer::concat(joined, ch.data);
    expect_off += ch.data.size();
  }
  EXPECT_TRUE(joined.content_equals(data));
}

TEST(CdcChunker, RespectsSizeBounds) {
  CdcChunker c(2048, 8192, 32768);
  Buffer data = random_data(500000, 6);
  auto chunks = c.split(data);
  for (size_t i = 0; i + 1 < chunks.size(); i++) {  // last may be short
    EXPECT_GE(chunks[i].data.size(), 2048u);
    EXPECT_LE(chunks[i].data.size(), 32768u);
  }
}

TEST(CdcChunker, AverageNearTarget) {
  CdcChunker c(2048, 8192, 65536);
  Buffer data = random_data(4 << 20, 7);
  auto chunks = c.split(data);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  EXPECT_GT(avg, 4096);
  EXPECT_LT(avg, 20000);
}

TEST(CdcChunker, ShiftResistance) {
  // The CDC selling point: inserting bytes near the front only disturbs
  // nearby boundaries; most chunks stay identical.
  CdcChunker c(2048, 8192, 32768);
  Buffer data = random_data(400000, 8);
  Buffer shifted = Buffer::concat(Buffer::copy_of("INSERTED"), data);

  auto a = c.split(data);
  auto b = c.split(shifted);
  std::set<std::string> set_a;
  for (const auto& ch : a) set_a.insert(ch.data.to_string());
  size_t shared = 0;
  for (const auto& ch : b) {
    if (set_a.count(ch.data.to_string())) shared++;
  }
  EXPECT_GT(shared, a.size() * 7 / 10);
}

TEST(CdcChunker, FixedChunkerLacksShiftResistance) {
  // Contrast case documenting why CDC exists (and what fixed chunking
  // gives up): a one-byte shift destroys fixed-grid chunk identity.
  FixedChunker c(8192);
  Buffer data = random_data(400000, 9);
  Buffer shifted = Buffer::concat(Buffer::copy_of("X"), data);
  auto a = c.split(data);
  auto b = c.split(shifted);
  std::set<std::string> set_a;
  for (const auto& ch : a) set_a.insert(ch.data.to_string());
  size_t shared = 0;
  for (const auto& ch : b) {
    if (set_a.count(ch.data.to_string())) shared++;
  }
  EXPECT_EQ(shared, 0u);
}

// The optimized split() must be bit-identical to the straightforward
// byte-at-a-time scan it replaced; split_reference() is kept precisely so
// this can be asserted on every interesting input shape.
void expect_same_chunks(const CdcChunker& c, const Buffer& data) {
  const auto fast = c.split(data);
  const auto ref = c.split_reference(data);
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < fast.size(); i++) {
    EXPECT_EQ(fast[i].offset, ref[i].offset) << "chunk " << i;
    ASSERT_EQ(fast[i].data.size(), ref[i].data.size()) << "chunk " << i;
    EXPECT_TRUE(fast[i].data.content_equals(ref[i].data)) << "chunk " << i;
  }
}

TEST(CdcChunker, FastPathMatchesReferenceRandom) {
  CdcChunker c(8192, 32768, 131072);
  expect_same_chunks(c, random_data(1 << 20, 21));
  // Odd length exercises the stride-2 scan's scalar tail.
  expect_same_chunks(c, random_data((1 << 20) + 1, 22));
}

TEST(CdcChunker, FastPathMatchesReferenceAcrossConfigs) {
  // Dense cutting (min == window size, tiny average) hits boundaries at
  // exactly min_size and at every loop-parity position; the wide config
  // leaves long boundary-free stretches.
  CdcChunker dense(48, 64, 4096);
  CdcChunker mid(2048, 8192, 32768);
  CdcChunker wide(65536, 262144, 1048576);
  for (uint64_t seed = 30; seed < 34; seed++) {
    for (size_t extra = 0; extra < 3; extra++) {
      Buffer data = random_data(200000 + extra, seed);
      expect_same_chunks(dense, data);
      expect_same_chunks(mid, data);
      expect_same_chunks(wide, data);
    }
  }
}

TEST(CdcChunker, FastPathMatchesReferenceAllZeros) {
  // Zeros never satisfy the boundary mask: every cut is a forced max-size
  // cut, plus a short tail.
  CdcChunker c(2048, 8192, 32768);
  Buffer zeros(100000);
  expect_same_chunks(c, zeros);
  auto chunks = c.split(zeros);
  ASSERT_EQ(chunks.size(), 100000 / 32768 + 1);
  for (size_t i = 0; i + 1 < chunks.size(); i++) {
    EXPECT_EQ(chunks[i].data.size(), 32768u);
  }
  // Exact max-size multiple: no tail chunk.
  Buffer exact(3 * 32768);
  expect_same_chunks(c, exact);
  EXPECT_EQ(c.split(exact).size(), 3u);
}

TEST(CdcChunker, FastPathMatchesReferenceAllBoundaryInput) {
  // Adversarial opposite of all-zeros: a tiled 48-byte block chosen so the
  // rolling hash satisfies the boundary mask at every min_size candidate
  // (min == window == tile period), making every chunk cut immediately at
  // the warm-up check without entering the steady-state scan.
  constexpr uint32_t kWin = RabinRolling::kWindow;
  CdcChunker c(kWin, 64, 4096);
  Rng rng(55);
  Buffer tile(kWin);
  for (int tries = 0; tries < 100000; tries++) {
    rng.fill(tile.mutable_data(), tile.size());
    RabinRolling rh;
    uint64_t h = 0;
    for (uint8_t x : tile.span()) h = rh.roll(x);
    if ((h & 63u) == 63u) break;
  }
  Buffer data(kWin * 100 + 17);  // +17: ragged tail on top of the tiling
  uint8_t* p = data.mutable_data();
  for (size_t i = 0; i < data.size(); i++) p[i] = tile.data()[i % kWin];
  expect_same_chunks(c, data);
  auto chunks = c.split(data);
  ASSERT_EQ(chunks.size(), 101u);
  for (size_t i = 0; i + 1 < chunks.size(); i++) {
    EXPECT_EQ(chunks[i].data.size(), kWin);
  }
}

TEST(CdcChunker, FastPathMatchesReferenceShortInputs) {
  CdcChunker c(2048, 8192, 32768);
  expect_same_chunks(c, Buffer());           // empty
  expect_same_chunks(c, random_data(1, 40));  // below the rolling window
  expect_same_chunks(c, random_data(47, 41));
  expect_same_chunks(c, random_data(2047, 42));  // sub-min_size tail only
  EXPECT_EQ(c.split(random_data(2047, 42)).size(), 1u);
  expect_same_chunks(c, random_data(2048, 43));  // exactly min_size
  expect_same_chunks(c, random_data(2049, 44));
}

// ----------------------------------------------------- split_with_weak

// The fused pass must agree with split() on boundaries and with the
// standalone hasher on every chunk — including the edges where the fusion
// bookkeeping is easiest to get wrong: empty input, input below the
// minimum chunk size, and a final chunk cut exactly at the size bound.

template <typename Chunker>
void expect_weak_matches_split(const Chunker& c, const Buffer& data) {
  const auto plain = c.split(data);
  const auto fused = c.split_with_weak(data);
  ASSERT_EQ(fused.size(), plain.size());
  for (size_t i = 0; i < fused.size(); i++) {
    EXPECT_EQ(fused[i].offset, plain[i].offset) << "chunk " << i;
    EXPECT_TRUE(fused[i].data.content_equals(plain[i].data)) << "chunk " << i;
    EXPECT_EQ(fused[i].weak, WeakHasher::oneshot(fused[i].data.span()))
        << "chunk " << i;
  }
}

TEST(SplitWithWeak, EmptyInput) {
  EXPECT_TRUE(FixedChunker(4096).split_with_weak(Buffer()).empty());
  EXPECT_TRUE(
      CdcChunker(2048, 8192, 32768).split_with_weak(Buffer()).empty());
}

TEST(SplitWithWeak, InputBelowMinChunkIsOneHashedChunk) {
  // Shorter than one grid slot / shorter than min_size: exactly one chunk
  // carrying the whole input, weak-hashed over exactly those bytes.
  const Buffer tiny = random_data(100, 50);
  for (const auto& w : {FixedChunker(4096).split_with_weak(tiny)}) {
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].offset, 0u);
    EXPECT_TRUE(w[0].data.content_equals(tiny));
    EXPECT_EQ(w[0].weak, WeakHasher::oneshot(tiny.span()));
  }
  const auto w = CdcChunker(2048, 8192, 32768).split_with_weak(tiny);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_TRUE(w[0].data.content_equals(tiny));
  EXPECT_EQ(w[0].weak, WeakHasher::oneshot(tiny.span()));
}

TEST(SplitWithWeak, FinalChunkExactlyAtBound) {
  // Fixed grid: input an exact multiple of the chunk size — the final
  // chunk is full-length, and no empty trailing chunk appears.
  FixedChunker fc(4096);
  const Buffer exact = random_data(3 * 4096, 51);
  const auto w = fc.split_with_weak(exact);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.back().offset, 2u * 4096);
  EXPECT_EQ(w.back().data.size(), 4096u);
  expect_weak_matches_split(fc, exact);

  // CDC: input of exactly max_size with no earlier cut point (all-zero
  // bytes never satisfy the boundary predicate) forces the single chunk
  // to be cut at max_size exactly.
  CdcChunker cc(2048, 8192, 32768);
  const Buffer zeros(32768);
  const auto z = cc.split_with_weak(zeros);
  ASSERT_GE(z.size(), 1u);
  uint64_t covered = 0;
  for (const auto& ch : z) covered += ch.data.size();
  EXPECT_EQ(covered, zeros.size());
  EXPECT_EQ(z.back().offset + z.back().data.size(), 32768u);
  expect_weak_matches_split(cc, zeros);
}

TEST(SplitWithWeak, MatchesOneshotAcrossShapes) {
  FixedChunker fc(4096);
  CdcChunker cc(2048, 8192, 32768);
  for (uint64_t seed = 60; seed < 64; seed++) {
    for (size_t n : {size_t(1), size_t(2047), size_t(2048), size_t(4096),
                     size_t(100000), size_t(300000)}) {
      const Buffer data = random_data(n, seed);
      expect_weak_matches_split(fc, data);
      expect_weak_matches_split(cc, data);
    }
  }
}

// --------------------------------------------------------------- ChunkMap

TEST(ChunkMap, ObtainCreatesAndUpdates) {
  ChunkMap cm;
  ChunkMapEntry& e = cm.obtain(0, 100);
  e.dirty = true;
  EXPECT_EQ(cm.size(), 1u);
  ChunkMapEntry& e2 = cm.obtain(0, 150);
  EXPECT_EQ(&e, &e2);
  EXPECT_EQ(e2.length, 150u);
  EXPECT_TRUE(e2.dirty);
}

TEST(ChunkMap, FindMissing) {
  ChunkMap cm;
  EXPECT_EQ(cm.find(42), nullptr);
}

TEST(ChunkMap, AnyDirtyAndLogicalEnd) {
  ChunkMap cm;
  cm.obtain(0, 32768);
  cm.obtain(32768, 1000);
  EXPECT_FALSE(cm.any_dirty());
  cm.find(32768)->dirty = true;
  EXPECT_TRUE(cm.any_dirty());
  EXPECT_EQ(cm.logical_end(), 33768u);
}

TEST(ChunkMap, EncodeDecodeRoundTrip) {
  ChunkMap cm;
  ChunkMapEntry& a = cm.obtain(0, 32768);
  a.chunk_id = "sha256:0011223344";
  a.cached = true;
  a.dirty = false;
  ChunkMapEntry& b = cm.obtain(32768, 16384);
  b.cached = true;
  b.dirty = true;

  auto decoded = ChunkMap::decode(cm.encode());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded->size(), 2u);
  const ChunkMapEntry* da = decoded->find(0);
  ASSERT_NE(da, nullptr);
  EXPECT_EQ(da->chunk_id, "sha256:0011223344");
  EXPECT_TRUE(da->cached);
  EXPECT_FALSE(da->dirty);
  const ChunkMapEntry* db = decoded->find(32768);
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->dirty);
  EXPECT_EQ(db->length, 16384u);
}

TEST(ChunkMap, EncodedSizeIsPaperFootprint) {
  ChunkMap cm;
  ChunkMapEntry& e = cm.obtain(0, 32768);
  e.chunk_id = "sha256:";
  e.chunk_id.append(64, 'a');
  // 4-byte count + one length-prefixed 150-byte entry.
  EXPECT_EQ(cm.encode().size(), 4u + 4u + ChunkMap::kEntryEncodedBytes);
  cm.obtain(32768, 32768);
  EXPECT_EQ(cm.encode().size(), 4u + 2 * (4u + ChunkMap::kEntryEncodedBytes));
}

TEST(ChunkMap, DecodeRejectsGarbage) {
  EXPECT_FALSE(ChunkMap::decode(Buffer::copy_of("zz")).is_ok());
  Encoder e;
  e.put_u32(3);  // claims 3 entries, provides none
  EXPECT_FALSE(ChunkMap::decode(e.finish()).is_ok());
}

TEST(ChunkMap, EraseEntry) {
  ChunkMap cm;
  cm.obtain(0, 10);
  cm.obtain(10, 10);
  EXPECT_TRUE(cm.erase(0));
  EXPECT_FALSE(cm.erase(0));
  EXPECT_EQ(cm.size(), 1u);
}

}  // namespace
}  // namespace gdedup
