// Deterministic worker-pool offload (sim/exec_pool.h).
//
// The contract under test: thread count changes wall-clock only.  Every
// virtual-time observable — the determinism digest of the e2e scenario,
// event counts, fault-campaign reports — must be byte-identical for any
// GDEDUP_EXEC_THREADS, because jobs are pure and joins ride pre-existing
// scheduler callbacks.  Plus pool mechanics: serial deferral, join-steal,
// shutdown with in-flight jobs, and a randomized-duration stress that TSan
// chews on in scripts/check_sanitizers.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "rados/fault_campaign.h"
#include "sim/cpu.h"
#include "sim/exec_pool.h"
#include "sim_e2e_scenario.h"

namespace gdedup {
namespace {

// Burn host cycles without UB: unsigned wrap instead of signed overflow,
// volatile store so the loop survives optimization.
void spin(int iters) {
  unsigned acc = 0;
  for (int i = 0; i < iters; i++) acc += static_cast<unsigned>(i);
  volatile unsigned sink = acc;
  (void)sink;
}

TEST(ExecPool, SerialDefersToJoin) {
  // threads=1 must compile down to today's inline path: nothing runs at
  // submit; take() computes on the caller.
  ExecPool pool(1);
  EXPECT_FALSE(pool.parallel());
  bool ran = false;
  auto fut = kernel_async<int>(&pool, Kernel::kCrc, [&ran] {
    ran = true;
    return 41 + 1;
  });
  EXPECT_FALSE(ran);
  EXPECT_EQ(fut.take(), 42);
  EXPECT_TRUE(ran);
  EXPECT_EQ(pool.jobs_offloaded(), 0u);
  EXPECT_EQ(pool.kernel_stats(Kernel::kCrc).jobs, 1u);
}

TEST(ExecPool, NullPoolRunsInline) {
  // Fixtures without a cluster pass nullptr; same deferred semantics.
  auto fut = kernel_async<int>(nullptr, Kernel::kFingerprint, [] { return 7; });
  EXPECT_TRUE(fut.valid());
  EXPECT_EQ(fut.take(), 7);
}

TEST(ExecPool, ParallelResultsAndJoinOrderIndependence) {
  ExecPool pool(4);
  EXPECT_TRUE(pool.parallel());
  std::vector<KernelFuture<int>> futs;
  for (int i = 0; i < 256; i++) {
    futs.push_back(
        kernel_async<int>(&pool, Kernel::kEcEncode, [i] { return i * i; }));
  }
  // Join in reverse: results must not depend on join order.
  for (int i = 255; i >= 0; i--) EXPECT_EQ(futs[i].take(), i * i);
  EXPECT_EQ(pool.kernel_stats(Kernel::kEcEncode).jobs, 256u);
}

TEST(ExecPool, JoinBeforeDispatchOrdering) {
  // Completion order is dictated by virtual cost, not host duration: a
  // job with a long host runtime but short virtual cost must complete
  // (be joined) before a cheap-host / expensive-virtual one.  This is the
  // join-at-dispatch rule end to end on a raw Scheduler + CpuModel.
  Scheduler sched;
  CpuModel cpu(&sched, CpuConfig{});
  ExecPool pool(8);
  std::vector<int> completion_order;
  struct Spec {
    int id;
    SimTime vcost;
    int host_spin;  // iterations, inverted vs vcost on purpose
  };
  const Spec specs[] = {{0, usec(300), 1000}, {1, usec(100), 2000000},
                        {2, usec(200), 1}};
  std::vector<KernelFuture<int>> futs(3);
  for (const Spec& s : specs) {
    futs[s.id] = kernel_async<int>(&pool, Kernel::kCompress, [s] {
      spin(s.host_spin);
      return s.id;
    });
    cpu.execute(s.vcost, [&completion_order, &futs, id = s.id] {
      completion_order.push_back(futs[id].take());
    });
  }
  sched.run();
  ASSERT_EQ(completion_order.size(), 3u);
  // Virtual costs order them 1 (100us), 2 (200us), 0 (300us).
  EXPECT_EQ(completion_order[0], 1);
  EXPECT_EQ(completion_order[1], 2);
  EXPECT_EQ(completion_order[2], 0);
}

TEST(ExecPool, ShutdownWithInFlightJobs) {
  // Destroying a parallel pool with queued + running jobs must drain:
  // every job has executed by the time the destructor returns.
  std::atomic<int> ran{0};
  {
    ExecPool pool(2);
    for (int i = 0; i < 64; i++) {
      pool.submit(Kernel::kCrc, [&ran] {
        spin(50000);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No joins: the destructor owns the drain.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ExecPool, StressRandomizedDurations) {
  // TSan fodder: many producers' worth of jobs with wildly varying
  // runtimes, joined at randomized points, twice over pool lifetimes.
  for (int round = 0; round < 2; round++) {
    ExecPool pool(4);
    std::vector<KernelFuture<uint64_t>> futs;
    uint64_t rng = 0x9E3779B97F4A7C15ull + round;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    std::vector<uint64_t> expect;
    for (int i = 0; i < 500; i++) {
      const int iters = static_cast<int>(next() % 20000);
      const uint64_t seed = next();
      expect.push_back(seed ^ static_cast<uint64_t>(iters));
      futs.push_back(kernel_async<uint64_t>(
          &pool, Kernel::kFingerprint, [iters, seed] {
            spin(iters);
            return seed ^ static_cast<uint64_t>(iters);
          }));
      if (next() % 3 == 0 && !futs.empty()) {
        // Join a random prefix element early, out of submission order.
        const size_t idx = next() % futs.size();
        if (futs[idx].valid()) {
          EXPECT_EQ(futs[idx].take(), expect[idx]);
        }
      }
    }
    for (size_t i = 0; i < futs.size(); i++) {
      if (futs[i].valid()) {
        EXPECT_EQ(futs[i].take(), expect[i]);
      }
    }
  }
}

// --- Digest equivalence: the headline determinism guarantee ---

bench::SimE2eConfig equivalence_config(bool ec) {
  bench::SimE2eConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  cfg.ec = ec;
  return cfg;
}

TEST(ExecPoolDeterminism, DigestEquivalenceReplicated) {
  bench::SimE2eConfig cfg = equivalence_config(/*ec=*/false);
  cfg.exec_threads = 1;
  const bench::SimE2eResult serial = bench::run_sim_e2e(cfg);
  EXPECT_TRUE(serial.drained);
  EXPECT_EQ(serial.kernel_jobs_offloaded, 0u);
  for (int threads : {2, 8}) {
    cfg.exec_threads = threads;
    const bench::SimE2eResult mt = bench::run_sim_e2e(cfg);
    EXPECT_EQ(mt.digest, serial.digest) << "threads=" << threads;
    EXPECT_EQ(mt.events, serial.events) << "threads=" << threads;
    EXPECT_EQ(mt.sim_duration, serial.sim_duration) << "threads=" << threads;
    EXPECT_EQ(mt.exec_threads_used, threads);
    EXPECT_GT(mt.kernel_jobs_offloaded, 0u) << "threads=" << threads;
  }
}

TEST(ExecPoolDeterminism, DigestEquivalenceEc) {
  bench::SimE2eConfig cfg = equivalence_config(/*ec=*/true);
  cfg.exec_threads = 1;
  const bench::SimE2eResult serial = bench::run_sim_e2e(cfg);
  for (int threads : {2, 8}) {
    cfg.exec_threads = threads;
    const bench::SimE2eResult mt = bench::run_sim_e2e(cfg);
    EXPECT_EQ(mt.digest, serial.digest) << "threads=" << threads;
    EXPECT_EQ(mt.events, serial.events) << "threads=" << threads;
    EXPECT_EQ(mt.sim_duration, serial.sim_duration) << "threads=" << threads;
  }
}

TEST(ExecPoolDeterminism, FaultCampaignSliceEquivalence) {
  // 50 crash schedules (the campaign's seed->variant matrix: replicated /
  // EC chunk pools, async deref, rate control) must produce byte-stable
  // reports regardless of thread count.  The campaign builds its own
  // Clusters, which read GDEDUP_EXEC_THREADS at construction.
  auto run_slice = [](const char* threads) {
    setenv("GDEDUP_EXEC_THREADS", threads, 1);
    std::vector<std::string> reports;
    for (uint64_t seed = 1; seed <= 50; seed++) {
      ScheduleResult r = run_fault_schedule(schedule_config_for_seed(seed));
      EXPECT_TRUE(r.clean()) << "seed " << seed << " threads=" << threads;
      reports.push_back(std::move(r.report));
    }
    unsetenv("GDEDUP_EXEC_THREADS");
    return reports;
  };
  const auto serial = run_slice("1");
  const auto mt = run_slice("4");
  ASSERT_EQ(serial.size(), mt.size());
  for (size_t i = 0; i < serial.size(); i++) {
    EXPECT_EQ(serial[i], mt[i]) << "schedule seed " << (i + 1);
  }
}

}  // namespace
}  // namespace gdedup
