// Workload generators: determinism, dedupability profiles, content layout.

#include <gtest/gtest.h>

#include <unordered_set>

#include "cluster/osd_map.h"
#include "compress/lz.h"
#include "dedup/ratio_analyzer.h"
#include "workload/content.h"
#include "workload/fio_gen.h"
#include "workload/sfs_db.h"
#include "workload/vm_corpus.h"

namespace gdedup {
namespace {

using namespace workload;

OsdMap make_map(int osds) {
  OsdMap m;
  for (int i = 0; i < osds; i++) m.add_osd(i, i / 4);
  PoolConfig cfg;
  cfg.name = "p";
  cfg.pg_num = 4096;  // fine-grained placement for ratio accounting
  m.create_pool(cfg);
  return m;
}

// ------------------------------------------------------------ BlockContent

TEST(BlockContent, DeterministicBySeed) {
  Buffer a = BlockContent::make(42, 8192, 0.3);
  Buffer b = BlockContent::make(42, 8192, 0.3);
  Buffer c = BlockContent::make(43, 8192, 0.3);
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_FALSE(a.content_equals(c));
}

TEST(BlockContent, CompressibilityKnobWorks) {
  for (double frac : {0.0, 0.5, 0.9}) {
    Buffer b = BlockContent::make(7, 32 * 1024, frac);
    const double ratio =
        static_cast<double>(LzCodec::compress(b).size()) / b.size();
    if (frac == 0.0) {
      EXPECT_GT(ratio, 0.95);
    } else {
      EXPECT_LT(ratio, 1.05 - frac + 0.15);
    }
  }
}

TEST(BlockContent, PatternedPartDoesNotCrossDedup) {
  // Two different seeds at high compressibility must still differ —
  // compression must not create accidental duplicates.
  Buffer a = BlockContent::make(1, 8192, 0.9);
  Buffer b = BlockContent::make(2, 8192, 0.9);
  EXPECT_FALSE(a.content_equals(b));
}

// ------------------------------------------------------------------- FIO

TEST(Fio, BlockCountAndSize) {
  FioConfig cfg;
  cfg.total_bytes = 1 << 20;
  cfg.block_size = 8192;
  FioGenerator gen(cfg);
  EXPECT_EQ(gen.num_blocks(), 128u);
  EXPECT_EQ(gen.block(0).size(), 8192u);
}

TEST(Fio, DeterministicAcrossInstances) {
  FioConfig cfg;
  cfg.total_bytes = 1 << 20;
  cfg.dedupe_ratio = 0.5;
  FioGenerator a(cfg), b(cfg);
  for (uint64_t i = 0; i < a.num_blocks(); i++) {
    EXPECT_EQ(a.content_seed(i), b.content_seed(i));
  }
}

TEST(Fio, DedupKnobIsAccurate) {
  for (double p : {0.0, 0.5, 0.8}) {
    FioConfig cfg;
    cfg.total_bytes = 32ull << 20;
    cfg.block_size = 8192;
    cfg.dedupe_ratio = p;
    FioGenerator gen(cfg);
    EXPECT_NEAR(gen.exact_dedup_ratio(), p, 0.03) << p;
  }
}

TEST(Fio, DuplicateBlocksShareBytes) {
  FioConfig cfg;
  cfg.total_bytes = 4 << 20;
  cfg.dedupe_ratio = 0.9;
  FioGenerator gen(cfg);
  // Find two indices with the same seed and verify identical content.
  std::map<uint64_t, uint64_t> first;
  bool verified = false;
  for (uint64_t i = 0; i < gen.num_blocks() && !verified; i++) {
    auto [it, fresh] = first.emplace(gen.content_seed(i), i);
    if (!fresh) {
      EXPECT_TRUE(gen.block(i).content_equals(gen.block(it->second)));
      verified = true;
    }
  }
  EXPECT_TRUE(verified);
}

TEST(Fio, OpStreams) {
  auto seq = make_sequential_ops(1 << 20, 32768, 40, true, 0.0, 1);
  ASSERT_EQ(seq.size(), 40u);
  EXPECT_EQ(seq[0].offset, 0u);
  EXPECT_EQ(seq[1].offset, 32768u);
  EXPECT_TRUE(seq[0].is_write);

  auto rnd = make_random_ops(1 << 20, 8192, 100, false, 0.0, 2);
  for (const auto& op : rnd) {
    EXPECT_FALSE(op.is_write);
    EXPECT_EQ(op.offset % 8192, 0u);
    EXPECT_LT(op.offset, 1u << 20);
  }
}

// ---------------------------------------------------------------- SFS DB

TEST(SfsDb, LoadProfilesMatchPaper) {
  // The content calibration: LD1 ~36%, LD3 ~81%, LD10 ~93% global dedup
  // (Figure 3's SFS DB bars).
  struct Expect {
    int load;
    double global_pct;
    double tol;
  };
  for (const auto& e : {Expect{1, 36.0, 6.0}, Expect{3, 80.6, 6.0},
                        Expect{10, 92.7, 4.0}}) {
    SfsDbConfig cfg;
    cfg.load = e.load;
    cfg.dataset_bytes = 32ull << 20;
    SfsDbGenerator gen(cfg);
    OsdMap m = make_map(16);
    RatioAnalyzer a(&m, 0, cfg.page_size);
    for (uint64_t i = 0; i < gen.num_pages(); i++) {
      a.add_object("p" + std::to_string(i), gen.dataset_page(i));
    }
    EXPECT_NEAR(a.global().percent(), e.global_pct, e.tol)
        << "load " << e.load;
    // Local dedup must trail global but beat the pure-random FIO gap
    // (duplicates have same-object locality).
    EXPECT_LT(a.local().percent(), a.global().percent()) << e.load;
  }
}

TEST(SfsDb, OpsMixRoughly40_40_20) {
  SfsDbConfig cfg;
  cfg.load = 3;
  SfsDbGenerator gen(cfg);
  auto ops = gen.make_ops(10000);
  int w = 0, r8 = 0, scan = 0;
  for (const auto& op : ops) {
    if (op.is_write) {
      w++;
    } else if (op.length == cfg.page_size) {
      r8++;
    } else {
      scan++;
    }
  }
  EXPECT_NEAR(w, 4000, 400);
  EXPECT_NEAR(r8, 4000, 400);
  EXPECT_NEAR(scan, 2000, 300);
}

TEST(SfsDb, IssueRateScalesWithLoad) {
  SfsDbConfig l1;
  l1.load = 1;
  SfsDbConfig l10;
  l10.load = 10;
  EXPECT_DOUBLE_EQ(SfsDbGenerator(l10).issue_rate_ops_per_sec(),
                   10 * SfsDbGenerator(l1).issue_rate_ops_per_sec());
}

// ------------------------------------------------------------- VM corpora

TEST(VmImages, OsRegionSharedAcrossVms) {
  VmImageConfig cfg;
  cfg.image_bytes = 8 << 20;
  VmImageCorpus corpus(cfg);
  EXPECT_TRUE(corpus.image_block(0, 0).content_equals(corpus.image_block(7, 0)));
}

TEST(VmImages, UniqueRegionDiffersPerVm) {
  VmImageConfig cfg;
  cfg.image_bytes = 8 << 20;
  VmImageCorpus corpus(cfg);
  const uint64_t os_blocks =
      static_cast<uint64_t>(corpus.blocks_per_image() * cfg.os_fraction);
  EXPECT_FALSE(corpus.image_block(0, os_blocks)
                   .content_equals(corpus.image_block(1, os_blocks)));
}

TEST(VmImages, TailIsZeros) {
  VmImageConfig cfg;
  cfg.image_bytes = 8 << 20;
  VmImageCorpus corpus(cfg);
  Buffer last = corpus.image_block(3, corpus.blocks_per_image() - 1);
  for (size_t i = 0; i < last.size(); i++) ASSERT_EQ(last[i], 0);
}

TEST(VmImages, DedupCollapsesClones) {
  VmImageConfig cfg;
  cfg.image_bytes = 8 << 20;
  VmImageCorpus corpus(cfg);
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, cfg.block_size);
  for (int vm = 0; vm < 4; vm++) {
    for (uint64_t b = 0; b < corpus.blocks_per_image(); b++) {
      a.add_object(corpus.image_object_name(vm, b), corpus.image_block(vm, b));
    }
  }
  // Clones + zero tail: the corpus is overwhelmingly dedupable.
  EXPECT_GT(a.global().percent(), 85.0);
}

TEST(CloudCorpus, DeterministicAndSized) {
  CloudCorpusConfig cfg;
  cfg.num_vms = 4;
  cfg.vm_bytes = 4 << 20;
  CloudCorpus a(cfg), b(cfg);
  EXPECT_EQ(a.atoms_per_vm(), (4ull << 20) / cfg.atom_size);
  for (uint64_t at = 0; at < a.atoms_per_vm(); at += 13) {
    EXPECT_EQ(a.atom_seed(2, at), b.atom_seed(2, at));
  }
  EXPECT_TRUE(a.read(1, 0, 4).content_equals(b.read(1, 0, 4)));
}

TEST(CloudCorpus, ProfileNearPrivateCloud) {
  // Figure 3's SKT private cloud bars: ~45% global, ~21% local (16 OSDs);
  // the corpus calibration should land in that neighbourhood.
  CloudCorpusConfig cfg;
  cfg.num_vms = 16;
  cfg.vm_bytes = 8 << 20;
  CloudCorpus corpus(cfg);
  OsdMap m = make_map(16);
  RatioAnalyzer a(&m, 0, 32 * 1024);
  const uint64_t atoms_per_obj = (4 << 20) / cfg.atom_size;  // 4MB objects
  for (int vm = 0; vm < cfg.num_vms; vm++) {
    for (uint64_t at = 0; at < corpus.atoms_per_vm(); at += atoms_per_obj) {
      const uint64_t n =
          std::min<uint64_t>(atoms_per_obj, corpus.atoms_per_vm() - at);
      a.add_object("vm" + std::to_string(vm) + "." + std::to_string(at),
                   corpus.read(vm, at, n));
    }
  }
  EXPECT_NEAR(a.global().percent(), 45.0, 12.0);
  EXPECT_GT(a.local().percent(), 10.0);
  EXPECT_LT(a.local().percent(), a.global().percent() * 0.75);
}

TEST(CloudCorpus, ChunkSizeSensitivity) {
  // Table 2's shape: dedup ratio declines gently as chunks grow.
  CloudCorpusConfig cfg;
  cfg.num_vms = 12;
  cfg.vm_bytes = 8 << 20;
  CloudCorpus corpus(cfg);
  OsdMap m = make_map(16);
  double prev = 100.0;
  for (uint32_t cs : {16u * 1024, 32u * 1024, 64u * 1024}) {
    RatioAnalyzer a(&m, 0, cs);
    for (int vm = 0; vm < cfg.num_vms; vm++) {
      a.add_object("vm" + std::to_string(vm),
                   corpus.read(vm, 0, corpus.atoms_per_vm()));
    }
    EXPECT_LT(a.global().percent(), prev + 0.5) << cs;
    prev = a.global().percent();
  }
}

}  // namespace
}  // namespace gdedup
