// Recipe-chunk metadata dedup (dedup/recipe.h, the packed entry codec in
// dedup/chunk_map.h, the compactor in dedup/tier.cc).
//
// What must hold: the varint + packed-entry codecs round-trip every field
// the legacy fixed-150-byte codec carries (dirty_gen/inline_rec are
// volatile and encoded by neither) and the packed form never collides
// with the legacy discriminator size; recipe chunk payloads are
// deterministic and defensive against corruption; in recipe mode the
// background compactor folds cold windows into content-addressed recipe
// chunks that deduplicate across objects, inline overlays win over recipe
// content, shrinks and removes release recipe chunks through the ordinary
// ref/GC machinery; and the recipe-mode determinism digest is
// shard/thread-count invariant (it is a *different* digest from default
// mode — recipe chunks are real chunk-pool traffic).

#include "dedup/recipe.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "dedup/scrub.h"
#include "sim_e2e_scenario.h"
#include "test_util.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::load_map_at;
using testutil::random_buffer;
using testutil::small_cluster_config;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

// --- Varint codec (common/encoding.h) ---

TEST(Varint, RoundTripEdges) {
  struct Case {
    uint64_t v;
    size_t bytes;
  };
  const Case cases[] = {
      {0, 1},           {1, 1},
      {127, 1},         {128, 2},  // first continuation boundary
      {16383, 2},       {16384, 3},
      {1ull << 32, 5},  {~0ull, 10},  // 64 bits need ceil(64/7) bytes
  };
  for (const Case& c : cases) {
    Encoder e;
    e.put_varint(c.v);
    EXPECT_EQ(e.size(), c.bytes) << c.v;
    Buffer b = e.finish();
    Decoder d(b);
    uint64_t got = 1;
    ASSERT_TRUE(d.get_varint(&got).is_ok()) << c.v;
    EXPECT_EQ(got, c.v);
    EXPECT_TRUE(d.at_end());
  }
}

TEST(Varint, ShortBufferIsCorruption) {
  Encoder e;
  e.put_varint(128);  // two bytes
  Buffer whole = e.finish();
  Buffer cut = whole.slice(0, 1);  // continuation bit set, no successor
  Decoder d(cut);
  uint64_t got = 0;
  EXPECT_FALSE(d.get_varint(&got).is_ok());
}

TEST(Varint, UnterminatedIsOverflowNotLoop) {
  // Ten continuation bytes exceed the 64-bit cap: the decoder must fail
  // rather than keep shifting (garbage can't spin it).
  std::vector<uint8_t> raw(10, 0x80);
  Buffer b = Buffer::copy_of(raw.data(), raw.size());
  Decoder d(b);
  uint64_t got = 0;
  EXPECT_FALSE(d.get_varint(&got).is_ok());
}

// --- Packed entry codec vs the legacy fixed form ---

void expect_same_entry(const ChunkMapEntry& a, const ChunkMapEntry& b,
                       const std::string& at) {
  EXPECT_EQ(a.offset, b.offset) << at;
  EXPECT_EQ(a.length, b.length) << at;
  EXPECT_EQ(a.chunk_id, b.chunk_id) << at;
  EXPECT_EQ(a.cached, b.cached) << at;
  EXPECT_EQ(a.dirty, b.dirty) << at;
  EXPECT_EQ(a.chunk_off, b.chunk_off) << at;
  EXPECT_EQ(a.container, b.container) << at;
}

std::string fp_id(FingerprintAlgo algo, uint64_t seed) {
  Buffer b = random_buffer(64, seed);
  return Fingerprint::compute(algo, b.span()).hex();
}

TEST(PackedEntry, MatchesLegacyAcrossFieldCombos) {
  // Sweep every flag combination against every chunk-id shape; the packed
  // decode must agree with the legacy decode field for field.
  const std::string ids[] = {
      std::string(),                              // unflushed
      fp_id(FingerprintAlgo::kSha256, 1),         // binary fp, 32B digest
      fp_id(FingerprintAlgo::kSha1, 2),           // binary fp, 20B digest
      std::string("not-a-fingerprint-oid"),       // raw string fallback
  };
  int combos = 0;
  for (const std::string& id : ids) {
    for (int cached = 0; cached < 2; cached++) {
      for (int dirty = 0; dirty < 2; dirty++) {
        for (int container = 0; container < 2; container++) {
          for (uint64_t coff : {uint64_t{0}, uint64_t{3} * kChunk}) {
            ChunkMapEntry e;
            e.offset = 5ull * kChunk;
            e.length = kChunk;
            e.chunk_id = id;
            e.cached = cached != 0;
            e.dirty = dirty != 0;
            e.container = container != 0;
            e.chunk_off = coff;
            // Volatile fields must not leak into either encoding.
            e.dirty_gen = 7;
            e.inline_rec = true;

            const std::string at =
                "id=" + (id.empty() ? "<none>" : id.substr(0, 12)) +
                " c=" + std::to_string(cached) + " d=" +
                std::to_string(dirty) + " ct=" + std::to_string(container) +
                " off=" + std::to_string(coff);
            Buffer legacy = ChunkMap::encode_entry(e);
            Buffer packed = ChunkMap::encode_entry_packed(e);
            ASSERT_EQ(legacy.size(), ChunkMap::kEntryEncodedBytes) << at;
            EXPECT_NE(packed.size(), ChunkMap::kEntryEncodedBytes) << at;
            EXPECT_LT(packed.size(), legacy.size()) << at;

            auto from_legacy = ChunkMap::decode_entry(legacy);
            auto from_packed = ChunkMap::decode_entry_packed(packed);
            ASSERT_TRUE(from_legacy.is_ok()) << at;
            ASSERT_TRUE(from_packed.is_ok()) << at;
            expect_same_entry(from_packed.value(), from_legacy.value(), at);

            // Auto dispatch: size alone picks the right codec.
            auto auto_legacy = ChunkMap::decode_entry_auto(legacy);
            auto auto_packed = ChunkMap::decode_entry_auto(packed);
            ASSERT_TRUE(auto_legacy.is_ok() && auto_packed.is_ok()) << at;
            expect_same_entry(auto_legacy.value(), from_legacy.value(), at);
            expect_same_entry(auto_packed.value(), from_legacy.value(), at);
            combos++;
          }
        }
      }
    }
  }
  EXPECT_EQ(combos, 4 * 2 * 2 * 2 * 2);
}

TEST(PackedEntry, DirtyUnflushedEntryIsTiny) {
  // The id-less dirty record the batched write path persists: flags +
  // offset + length varints.  This is the footprint the ≥4x metadata
  // reduction gate leans on.
  ChunkMapEntry e;
  e.offset = 5ull * kChunk;  // 3-byte varint
  e.length = kChunk;         // 3-byte varint
  e.dirty = true;
  e.cached = true;
  EXPECT_LE(ChunkMap::encode_entry_packed(e).size(), 8u);
}

TEST(PackedEntry, NeverEmitsTheLegacyDiscriminatorSize) {
  // decode_entry_auto dispatches on size == kEntryEncodedBytes, so the
  // packed encoder pads by one byte if it would land there.  Sweep raw-id
  // lengths across the boundary and make sure the pad both fires and
  // round-trips.
  bool saw_pad = false;
  for (size_t idlen = 100; idlen <= 200; idlen++) {
    ChunkMapEntry e;
    e.offset = 17ull * kChunk;
    e.length = kChunk;
    e.chunk_id = std::string(idlen, 'x');  // raw kind: not fp-parseable
    e.cached = true;
    Buffer packed = ChunkMap::encode_entry_packed(e);
    ASSERT_NE(packed.size(), ChunkMap::kEntryEncodedBytes) << idlen;
    if (packed.size() == ChunkMap::kEntryEncodedBytes + 1) saw_pad = true;
    auto back = ChunkMap::decode_entry_auto(packed);
    ASSERT_TRUE(back.is_ok()) << idlen;
    expect_same_entry(back.value(), e, "idlen=" + std::to_string(idlen));
  }
  EXPECT_TRUE(saw_pad);  // the sweep crossed the pad boundary
}

TEST(PackedEntry, TruncationIsCorruptionNotUb) {
  ChunkMapEntry e;
  e.offset = 3ull * kChunk;
  e.length = kChunk;
  e.chunk_id = fp_id(FingerprintAlgo::kSha256, 9);
  Buffer whole = ChunkMap::encode_entry_packed(e);
  EXPECT_FALSE(ChunkMap::decode_entry_packed(Buffer()).is_ok());
  for (size_t cut = 1; cut + 1 < whole.size(); cut += 3) {
    EXPECT_FALSE(ChunkMap::decode_entry_packed(whole.slice(0, cut)).is_ok())
        << cut;
  }
}

TEST(PackedEntry, FuzzRoundTrip10k) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 10000; i++) {
    ChunkMapEntry e;
    e.offset = rng.below(1ull << 40);
    e.length = static_cast<uint32_t>(rng.between(1, 1u << 22));
    switch (rng.below(4)) {
      case 0:
        break;  // unflushed
      case 1:
        e.chunk_id = fp_id(FingerprintAlgo::kSha256, rng.next());
        break;
      case 2:
        e.chunk_id = fp_id(FingerprintAlgo::kSha1, rng.next());
        break;
      case 3:
        e.chunk_id =
            "raw-" + std::to_string(rng.next());  // non-fp object id
        break;
    }
    e.cached = rng.below(2) != 0;
    e.dirty = rng.below(2) != 0;
    e.container = rng.below(2) != 0;
    e.chunk_off = rng.below(2) != 0 ? rng.below(1ull << 30) : 0;
    Buffer packed = ChunkMap::encode_entry_packed(e);
    ASSERT_NE(packed.size(), ChunkMap::kEntryEncodedBytes) << i;
    auto back = ChunkMap::decode_entry_auto(packed);
    ASSERT_TRUE(back.is_ok()) << i;
    expect_same_entry(back.value(), e, "fuzz " + std::to_string(i));
  }
}

// --- Recipe record codec ---

TEST(RecipeRecord, RoundTrip) {
  RecipeRecord r;
  r.base = 13ull * 4 * kChunk;
  r.count = 4;
  r.chunk_pool = 3;
  r.chunk_id = fp_id(FingerprintAlgo::kSha256, 21);
  auto back = RecipeRecord::decode(r.encode());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->base, r.base);
  EXPECT_EQ(back->count, r.count);
  EXPECT_EQ(back->chunk_pool, r.chunk_pool);
  EXPECT_EQ(back->chunk_id, r.chunk_id);

  r.chunk_id = "not-a-fingerprint";  // raw-id fallback survives too
  back = RecipeRecord::decode(r.encode());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->chunk_id, r.chunk_id);
}

TEST(RecipeRecord, TruncationIsCorruption) {
  RecipeRecord r;
  r.base = 4ull * kChunk;
  r.count = 4;
  r.chunk_pool = 1;
  r.chunk_id = fp_id(FingerprintAlgo::kSha256, 22);
  Buffer whole = r.encode();
  EXPECT_FALSE(RecipeRecord::decode(Buffer()).is_ok());
  for (size_t cut = 1; cut + 1 < whole.size(); cut += 2) {
    EXPECT_FALSE(RecipeRecord::decode(whole.slice(0, cut)).is_ok()) << cut;
  }
}

// --- Recipe chunk payload codec ---

std::vector<ChunkMapEntry> window_entries(int n, uint64_t seed) {
  std::vector<ChunkMapEntry> v;
  for (int i = 0; i < n; i++) {
    ChunkMapEntry e;
    e.offset = static_cast<uint64_t>(i) * kChunk;
    e.length = kChunk;
    e.chunk_id = fp_id(FingerprintAlgo::kSha256, seed + i);
    v.push_back(e);
  }
  return v;
}

TEST(RecipeChunk, EmptyWindowRoundTrips) {
  Buffer b = encode_recipe_chunk({});
  auto back = decode_recipe_chunk(b);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back->empty());
}

TEST(RecipeChunk, SingleEntryRoundTrips) {
  auto v = window_entries(1, 100);
  auto back = decode_recipe_chunk(encode_recipe_chunk(v));
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->size(), 1u);
  expect_same_entry(back->at(0), v[0], "single");
}

TEST(RecipeChunk, ContainerSlotsSurvive) {
  // Slots the selective-rewrite pass coalesced into a container carry a
  // nonzero chunk_off; recipes must preserve that or restores from a
  // recipe-materialized map would read the wrong container region.
  auto v = window_entries(4, 200);
  v[2].container = true;
  v[2].chunk_id = "container-obj-7";
  v[2].chunk_off = 3ull * kChunk;
  auto back = decode_recipe_chunk(encode_recipe_chunk(v));
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->size(), 4u);
  for (size_t i = 0; i < v.size(); i++) {
    expect_same_entry(back->at(i), v[i], "slot " + std::to_string(i));
  }
}

TEST(RecipeChunk, DeterministicBytes) {
  // Content addressing only dedups if equal windows encode to equal
  // bytes.  Encode twice, and from a re-decoded copy.
  auto v = window_entries(4, 300);
  Buffer a = encode_recipe_chunk(v);
  Buffer b = encode_recipe_chunk(v);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(memcmp(a.data(), b.data(), a.size()), 0);
  auto back = decode_recipe_chunk(a);
  ASSERT_TRUE(back.is_ok());
  Buffer c = encode_recipe_chunk(back.value());
  ASSERT_EQ(a.size(), c.size());
  EXPECT_EQ(memcmp(a.data(), c.data(), a.size()), 0);
}

TEST(RecipeChunk, RejectsCorruption) {
  auto v = window_entries(4, 400);
  Buffer good = encode_recipe_chunk(v);
  // Bad magic.
  Buffer bad = good;
  bad.mutable_data()[0] ^= 0xFF;
  EXPECT_FALSE(decode_recipe_chunk(bad).is_ok());
  // Truncations.
  EXPECT_FALSE(decode_recipe_chunk(Buffer()).is_ok());
  for (size_t cut = 1; cut + 1 < good.size(); cut += 7) {
    EXPECT_FALSE(decode_recipe_chunk(good.slice(0, cut)).is_ok()) << cut;
  }
}

// --- End-to-end recipe mode (compaction, overlay, shrink, GC, dedup) ---

DedupTierConfig recipe_tier_config() {
  DedupTierConfig t = test_tier_config();
  t.recipe_entries = 4;  // small windows so a few chunks compact
  return t;
}

ClusterConfig recipe_cluster_config() {
  ClusterConfig c = small_cluster_config();
  c.recipe_dedup = 1;
  return c;
}

OsdId meta_primary(DedupHarness& h, const std::string& oid) {
  return h.cluster->osdmap().primary(h.meta, oid);
}

TEST(RecipeMode, CompactionCreatesRecipesAndDropsInlineRecords) {
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  Buffer data = random_buffer(8 * kChunk, 1);  // two 4-entry windows
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());

  ChunkMap cm = load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj");
  ASSERT_EQ(cm.size(), 8u);
  EXPECT_EQ(cm.recipes().size(), 2u);
  EXPECT_FALSE(cm.unresolved());
  // Recipe members materialize without inline records — the compactor
  // dropped their "dedup.ck." shadows.
  size_t from_recipe = 0;
  for (const auto& [off, e] : cm.entries()) {
    if (!e.inline_rec) from_recipe++;
    EXPECT_TRUE(e.flushed()) << off;
    EXPECT_FALSE(e.dirty) << off;
  }
  EXPECT_EQ(from_recipe, 8u);

  auto r = h.read("obj", 0, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(data));
  EXPECT_TRUE(h.refcounts_consistent());

  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.recipe_chunks, 2u);
  // Batched omap writes + packed/id-less records: actually-written
  // metadata bytes undercut the fixed-150B baseline.
  EXPECT_GT(s.meta_bytes_baseline, s.meta_bytes_actual);
}

TEST(RecipeMode, SingleSlotWindowStaysInline) {
  // A one-member window never compacts (eligibility needs >= 2 members):
  // a recipe over one entry would cost more metadata than it saves.
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 2)).is_ok());
  ASSERT_TRUE(h.drain());
  ChunkMap cm = load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj");
  ASSERT_EQ(cm.size(), 1u);
  EXPECT_TRUE(cm.recipes().empty());
  EXPECT_TRUE(cm.entries().begin()->second.inline_rec);
  EXPECT_EQ(h.cluster->tier_stats(h.meta).recipe_chunks, 0u);
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(RecipeMode, InlineOverlayWinsOverRecipeContent) {
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  Buffer data = random_buffer(4 * kChunk, 3);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_EQ(load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj")
                .recipes()
                .size(),
            1u);

  // Overwrite one member: the dirty inline record must shadow the stale
  // recipe copy both before and after the next flush cycle.
  Buffer patch = random_buffer(kChunk, 4);
  ASSERT_TRUE(h.write("obj", 2 * kChunk, patch).is_ok());
  Buffer want = data;
  memcpy(want.mutable_data() + 2 * kChunk, patch.data(), kChunk);
  auto mid = h.read("obj", 0, want.size());
  ASSERT_TRUE(mid.is_ok());
  EXPECT_TRUE(mid->content_equals(want));

  ASSERT_TRUE(h.drain());
  auto after = h.read("obj", 0, want.size());
  ASSERT_TRUE(after.is_ok());
  EXPECT_TRUE(after->content_equals(want));
  EXPECT_TRUE(h.refcounts_consistent());

  // GC finds nothing stale: overlays and recipes agree on liveness.
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  (void)s.collect_garbage();
  EXPECT_TRUE(s.collect_garbage().clean());
}

TEST(RecipeMode, WriteFullShrinkBreaksRecipes) {
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  Buffer big = random_buffer(8 * kChunk, 5);
  ASSERT_TRUE(h.write("obj", 0, big).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_EQ(load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj")
                .recipes()
                .size(),
            2u);

  // Shrink to one chunk: every old recipe is invalid; its chunks must be
  // released (directly or via GC), and the survivor re-inlined.
  Buffer small = random_buffer(kChunk, 6);
  ASSERT_TRUE(
      sync_write_full(*h.cluster, *h.client, h.meta, "obj", small).is_ok());
  ASSERT_TRUE(h.drain());

  ChunkMap cm = load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj");
  ASSERT_EQ(cm.size(), 1u);
  EXPECT_TRUE(cm.recipes().empty());
  auto r = h.read("obj", 0, kChunk);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->content_equals(small));
  EXPECT_TRUE(h.refcounts_consistent());

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  (void)s.collect_garbage();
  EXPECT_TRUE(s.collect_garbage().clean());
  // Only the survivor's data chunk remains in the chunk pool.
  EXPECT_EQ(h.chunk_object_count(), 1u);
}

TEST(RecipeMode, RemoveThenGcReclaimsRecipeChunks) {
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  ASSERT_TRUE(h.write("obj", 0, random_buffer(8 * kChunk, 7)).is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_GT(h.chunk_object_count(), 0u);

  ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, "obj").is_ok());
  ASSERT_TRUE(h.drain());

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  (void)s.collect_garbage();  // drop refs of the removed holder
  (void)s.collect_garbage();  // reclaim now-unreferenced chunks
  EXPECT_EQ(h.chunk_object_count(), 0u);
  EXPECT_TRUE(s.collect_garbage().clean());
}

TEST(RecipeMode, IdenticalObjectsShareRecipeChunks) {
  // The point of the feature: the same content under two names (two
  // tenants uploading one image) produces identical windows, so the
  // second object's recipe puts dedup against the first's.
  DedupHarness h(recipe_tier_config(), recipe_cluster_config());
  Buffer data = random_buffer(8 * kChunk, 8);
  ASSERT_TRUE(h.write("tenant-a", 0, data).is_ok());
  ASSERT_TRUE(h.write("tenant-b", 0, data).is_ok());
  ASSERT_TRUE(h.drain());

  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  // Four recipe puts total (two windows per object).  At least one dedups
  // against its twin; the exact created/hit split depends on flush
  // interleaving (both flushes may probe before either put lands).
  EXPECT_EQ(s.recipe_chunks + s.recipe_hits, 4u);
  EXPECT_GE(s.recipe_hits, 1u);
  // Chunk pool holds 8 data chunks + 2 recipe chunks, each doubly held.
  EXPECT_EQ(h.chunk_object_count(), 10u);
  EXPECT_TRUE(h.refcounts_consistent());
  auto ra = h.read("tenant-a", 0, data.size());
  auto rb = h.read("tenant-b", 0, data.size());
  ASSERT_TRUE(ra.is_ok() && rb.is_ok());
  EXPECT_TRUE(ra->content_equals(data));
  EXPECT_TRUE(rb->content_equals(data));
}

TEST(RecipeMode, OffModeWritesNoRecipes) {
  // Knob off (forced, so the sanitizer script's env-on phase can't flip
  // it): legacy records only, baseline == actual, no recipe traffic —
  // the frozen default digests depend on this.
  ClusterConfig off = small_cluster_config();
  off.recipe_dedup = 0;
  DedupHarness h(recipe_tier_config(), off);
  ASSERT_TRUE(h.write("obj", 0, random_buffer(8 * kChunk, 9)).is_ok());
  ASSERT_TRUE(h.drain());
  ChunkMap cm = load_map_at(*h.cluster, meta_primary(h, "obj"), h.meta, "obj");
  EXPECT_EQ(cm.size(), 8u);
  EXPECT_TRUE(cm.recipes().empty());
  const DedupTierStats s = h.cluster->tier_stats(h.meta);
  EXPECT_EQ(s.recipe_chunks, 0u);
  EXPECT_EQ(s.recipe_hits, 0u);
  EXPECT_EQ(s.meta_bytes_baseline, s.meta_bytes_actual);
}

// --- Determinism: recipe mode has its own shard/thread-stable digest ---

TEST(RecipeDeterminism, DigestInvariantAcrossShardsAndThreads) {
  bench::SimE2eConfig cfg;
  cfg.storage_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  cfg.dedupe = 0.9;

  cfg.recipe_dedup = 0;
  cfg.exec_threads = 1;
  cfg.sim_shards = 1;
  const bench::SimE2eResult off = bench::run_sim_e2e(cfg);
  EXPECT_TRUE(off.drained);

  cfg.recipe_dedup = 1;
  std::string base_digest;
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      cfg.sim_shards = shards;
      cfg.exec_threads = threads;
      const bench::SimE2eResult on = bench::run_sim_e2e(cfg);
      const std::string at = "shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads);
      EXPECT_TRUE(on.drained) << at;
      if (base_digest.empty()) {
        base_digest = on.digest;
        // Recipe mode is NOT digest-neutral: it adds real chunk-pool
        // objects and traffic, so it owns a separate digest lineage.
        EXPECT_NE(on.digest, off.digest);
      } else {
        EXPECT_EQ(on.digest, base_digest) << at;
      }
    }
  }
}

}  // namespace
}  // namespace gdedup
