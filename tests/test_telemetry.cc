// Telemetry engine + watchdog tests (DESIGN.md §13).
//
// The two contracts under test:
//
//   1. Sampled, never digested — running the TelemetryEngine must not move
//      the determinism digest by a byte, at any (sampling on/off) x
//      (sim shards) x (exec threads) combination, because the sampling
//      tick is a control-lane event that only *reads* cluster state.
//   2. The watchdog's default rules stay silent on a healthy
//      rate-controlled cluster and demonstrably fire when the
//      RateController is misconfigured (degenerate 0/0 watermarks put
//      every nonzero demand in the top throttle band).
//
// Plus unit coverage for the pieces underneath: series aggregation and
// windowed rates, edge-triggered rule hysteresis, probe cadence, OpTracker
// capacity validation (GDEDUP_OPS_HISTORY), Histogram log-bucket boundary
// values and batched percentiles, and SlidingWindowCounter advance()
// jumping far past its window — the sampler-cadence shapes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/op_tracker.h"
#include "obs/perf_counters.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "sim/metrics.h"
#include "sim_e2e_scenario.h"
#include "workload/content.h"

using namespace gdedup;

namespace {

// Scoped setenv that restores the previous value (the sanitizer script
// runs this binary with GDEDUP_* already set; tests must not clobber
// that for their siblings).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = ::getenv(name);
    if (prev != nullptr) saved_ = prev;
    had_ = prev != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

enum {
  l_test_first = 100,
  l_test_ops,
  l_test_depth,
  l_test_lat,
  l_test_last,
};

obs::PerfCountersRef make_test_counters(const std::string& name) {
  obs::PerfCountersBuilder b(name, l_test_first, l_test_last);
  b.add_counter(l_test_ops, "ops");
  b.add_gauge(l_test_depth, "depth");
  b.add_histogram(l_test_lat, "op_lat");
  return b.create();
}

}  // namespace

// ---------------------------------------------------------------------------
// Acceptance: sampling is invisible to the determinism digest.

TEST(Telemetry, DigestInvariantAcrossSamplingShardsThreads) {
  bench::SimE2eConfig cfg;
  cfg.storage_nodes = 4;
  cfg.osds_per_node = 4;
  cfg.seed = 11;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;

  cfg.sim_shards = 1;
  cfg.exec_threads = 1;
  cfg.telemetry = 0;
  const bench::SimE2eResult base = bench::run_sim_e2e(cfg);
  ASSERT_TRUE(base.drained);
  EXPECT_EQ(base.telemetry_ticks, 0u);

  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      for (SimTime telemetry : {SimTime(0), SimTime(100'000'000)}) {
        cfg.sim_shards = shards;
        cfg.exec_threads = threads;
        cfg.telemetry = telemetry;
        const bench::SimE2eResult r = bench::run_sim_e2e(cfg);
        EXPECT_EQ(r.digest, base.digest)
            << "diverged at shards=" << shards << " threads=" << threads
            << " telemetry=" << telemetry;
        EXPECT_EQ(r.sim_duration, base.sim_duration);
        if (telemetry > 0) {
          // The sampler really ran — its ticks are real (counted) control
          // events, they just leave no trace in the digest.
          EXPECT_GT(r.telemetry_ticks, 0u);
          EXPECT_EQ(r.events, base.events + r.telemetry_ticks);
        } else {
          EXPECT_EQ(r.telemetry_ticks, 0u);
          EXPECT_EQ(r.events, base.events);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine unit behavior on a synthetic registry.

TEST(Telemetry, SeriesAggregationRatesAndTimeline) {
  Scheduler sched;
  obs::PerfRegistry reg;
  auto a = make_test_counters("tier.a");
  auto b = make_test_counters("tier.b");
  auto other = make_test_counters("osd.0");
  reg.add(a);
  reg.add(b);
  reg.add(other);

  obs::TelemetryConfig tc;
  tc.interval = kSecond;
  obs::TelemetryEngine eng(&sched, &reg, tc);
  eng.add_series({"ops", "tier.", "ops", obs::SeriesAgg::kSum, true});
  eng.add_series({"depth_max", "tier.", "depth", obs::SeriesAgg::kMax, false});
  eng.add_series({"depth_mean", "tier.", "depth", obs::SeriesAgg::kMean,
                  false});
  eng.add_series({"lat_p99", "tier.", "op_lat.p99", obs::SeriesAgg::kMax,
                  false});
  eng.add_series({"lat_count", "tier.", "op_lat.count", obs::SeriesAgg::kSum,
                  false});

  a->inc(l_test_ops, 10);
  b->inc(l_test_ops, 5);
  other->inc(l_test_ops, 1000);  // wrong prefix: must not be aggregated
  a->set_gauge(l_test_depth, 3);
  b->set_gauge(l_test_depth, 7);
  a->record(l_test_lat, 1000);
  a->record(l_test_lat, 1000);
  b->record(l_test_lat, 50);
  eng.sample_now();

  ASSERT_NE(eng.series("ops"), nullptr);
  EXPECT_DOUBLE_EQ(eng.series("ops")->back(0), 15.0);
  EXPECT_DOUBLE_EQ(eng.series("depth_max")->back(0), 7.0);
  EXPECT_DOUBLE_EQ(eng.series("depth_mean")->back(0), 5.0);
  EXPECT_DOUBLE_EQ(eng.series("lat_count")->back(0), 3.0);
  // p99 of {1000, 1000} on tier.a; log-bucket answer stays <= max.
  EXPECT_GE(eng.series("lat_p99")->back(0), 50.0);
  EXPECT_LE(eng.series("lat_p99")->back(0), 1000.0);

  // Advance virtual time one interval so the second frame has a real
  // frame-to-frame dt for the timeline's rate columns.
  sched.at(kSecond, [] {});
  sched.run_until(kSecond);
  a->inc(l_test_ops, 20);
  eng.sample_now();
  EXPECT_DOUBLE_EQ(eng.series("ops")->back(0), 35.0);
  // Windowed rate: 20 ops over one 1 s interval.
  EXPECT_DOUBLE_EQ(eng.rate("ops", 1), 20.0);
  EXPECT_EQ(eng.ticks(), 2u);
  EXPECT_EQ(eng.frames(), 2u);

  // Timeline: one JSONL line per frame, fixed column order, rate columns
  // derived for rate-enabled specs.
  const std::string jl = eng.timeline_jsonl();
  EXPECT_EQ(std::count(jl.begin(), jl.end(), '\n'), 2);
  EXPECT_NE(jl.find("\"ops\":15"), std::string::npos);
  EXPECT_NE(jl.find("\"ops_rate\":20"), std::string::npos);
  const std::string csv = eng.timeline_csv();
  EXPECT_EQ(csv.rfind("tick,t_s,ops,ops_rate,depth_max,depth_mean,lat_p99,"
                      "lat_count",
                      0),
            0u)
      << csv;
}

TEST(Telemetry, EngineTickRidesTheControlLane) {
  Scheduler sched;
  obs::PerfRegistry reg;
  auto a = make_test_counters("tier.a");
  reg.add(a);

  obs::TelemetryConfig tc;
  tc.interval = kSecond;
  obs::TelemetryEngine eng(&sched, &reg, tc);
  eng.add_series({"ops", "tier.", "ops", obs::SeriesAgg::kSum, false});
  eng.start();
  ASSERT_TRUE(eng.running());

  // Keep non-telemetry work queued so the engine is never the only event
  // source; run 5.5 virtual seconds => exactly 5 samples.
  for (int i = 1; i <= 55; i++) {
    sched.at(static_cast<SimTime>(i) * kSecond / 10,
             [&a] { a->inc(l_test_ops); });
  }
  sched.run_until(5 * kSecond + kSecond / 2);
  EXPECT_EQ(eng.ticks(), 5u);
  eng.stop();
  EXPECT_FALSE(eng.running());
  const uint64_t after_stop = eng.ticks();
  sched.run_until(10 * kSecond);
  EXPECT_EQ(eng.ticks(), after_stop);  // stop() cancelled the armed tick
}

// ---------------------------------------------------------------------------
// Watchdog rule semantics on synthetic series.

namespace {

struct SyntheticDog {
  Scheduler sched;
  obs::PerfRegistry reg;
  obs::PerfCountersRef pc;
  std::unique_ptr<obs::TelemetryEngine> eng;
  std::unique_ptr<obs::Watchdog> dog;

  SyntheticDog() {
    pc = make_test_counters("tier.a");
    reg.add(pc);
    obs::TelemetryConfig tc;
    tc.interval = kSecond;
    eng = std::make_unique<obs::TelemetryEngine>(&sched, &reg, tc);
    eng->add_series(
        {"backlog", "tier.", "depth", obs::SeriesAgg::kSum, false});
    dog = std::make_unique<obs::Watchdog>(eng.get(), nullptr);
  }

  void tick(int64_t backlog) {
    pc->set_gauge(l_test_depth, backlog);
    eng->sample_now();
  }
};

}  // namespace

TEST(Watchdog, GrowthRuleNeedsMonotoneWindowAndHysteresis) {
  SyntheticDog s;
  obs::HealthRule r;
  r.name = "growth";
  r.kind = obs::RuleKind::kGrowth;
  r.series = "backlog";
  r.window = 3;
  r.threshold = 10;
  r.min_consecutive = 2;
  s.dog->add_rule(std::move(r));
  s.dog->arm();

  // Monotone climb: unhealthy once 4 samples exist and growth >= 10, but
  // the incident opens only after 2 consecutive unhealthy ticks.
  for (int64_t v : {0, 10, 20, 30}) s.tick(v);
  EXPECT_EQ(s.dog->incidents().size(), 0u);  // first unhealthy tick
  s.tick(40);
  ASSERT_EQ(s.dog->incidents().size(), 1u);
  EXPECT_EQ(s.dog->incidents()[0].rule, "growth");
  EXPECT_EQ(s.dog->open_incidents(), 1u);

  // A single dip breaks the monotone window => healthy; two healthy ticks
  // resolve the incident (edge-triggered, so no new incident on re-climb
  // until it first resolves).
  s.tick(35);
  EXPECT_EQ(s.dog->open_incidents(), 1u);  // hysteresis: not yet resolved
  s.tick(35);
  EXPECT_EQ(s.dog->open_incidents(), 0u);
  EXPECT_GE(s.dog->incidents()[0].resolved_tick, 0);
  EXPECT_EQ(s.dog->incidents().size(), 1u);  // still just the one incident
}

TEST(Watchdog, PlateauAtZeroGrowthStaysSilent) {
  SyntheticDog s;
  obs::HealthRule r;
  r.name = "growth";
  r.kind = obs::RuleKind::kGrowth;
  r.series = "backlog";
  r.window = 3;
  r.threshold = 10;
  r.min_consecutive = 1;
  s.dog->add_rule(std::move(r));
  s.dog->arm();
  // Non-decreasing but flat: growth 0 < threshold => healthy forever.
  for (int i = 0; i < 10; i++) s.tick(100);
  EXPECT_EQ(s.dog->incidents().size(), 0u);
}

TEST(Watchdog, ProbeRuleRunsOnItsCadence) {
  SyntheticDog s;
  int calls = 0;
  double next_value = 0.0;
  obs::HealthRule r;
  r.name = "probe";
  r.kind = obs::RuleKind::kProbe;
  r.threshold = 0.5;
  r.min_consecutive = 1;
  r.probe_every = 3;
  r.probe = [&calls, &next_value](SimTime) {
    calls++;
    return next_value;
  };
  s.dog->add_rule(std::move(r));
  s.dog->arm();

  for (int i = 0; i < 6; i++) s.tick(0);
  EXPECT_EQ(calls, 2);  // ticks 1 and 4
  EXPECT_EQ(s.dog->incidents().size(), 0u);

  next_value = 1.0;  // next probe (tick 7) sees a violation
  s.tick(0);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(s.dog->incidents().size(), 1u);
  EXPECT_EQ(s.dog->incidents()[0].rule, "probe");
  // Value is held between probes: still unhealthy on non-probe ticks.
  s.tick(0);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(s.dog->open_incidents(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptance: default rules fire on a misconfigured RateController and
// stay silent on the healthy defaults, on a real cluster.

namespace {

struct ClusterRunOutcome {
  size_t incidents = 0;
  std::vector<std::string> rules;
  std::string timeline;
  uint64_t ticks = 0;
};

ClusterRunOutcome run_watchdog_cluster(int low_wm, int high_wm,
                                       int sim_shards) {
  ClusterConfig cc;
  cc.storage_nodes = 2;
  cc.osds_per_node = 2;
  cc.client_nodes = 1;
  cc.sim_shards = sim_shards;
  Cluster c(cc);
  const PoolId base = c.create_replicated_pool("base", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  DedupTierConfig t = bench::bench_tier_config(32 * 1024);
  t.low_watermark_iops = low_wm;
  t.high_watermark_iops = high_wm;
  c.enable_dedup(base, chunks, t);
  RadosClient client(&c, c.client_node(0));

  obs::TelemetryConfig tc;
  tc.interval = kSecond;
  obs::TelemetryEngine eng(&c.sched(), c.perf_registry(), tc);
  eng.add_default_series();
  eng.set_presample([&c](SimTime) { c.sync_telemetry_gauges(); });
  obs::Watchdog dog(&eng, c.op_tracker());
  dog.add_default_rules();
  dog.arm();
  eng.start();

  // 45 virtual seconds of 100 writes/s: enough demand to hold the
  // misconfigured controller in regime 2 past the 15-tick dwell rule.
  bench::run_open_loop(
      c, 4500, 100.0,
      [&](size_t i, std::function<void(uint64_t)> done) {
        const std::string oid = "o" + std::to_string(i % 64);
        const uint64_t off = (i / 64 % 8) * 16384;
        Buffer data = workload::BlockContent::make(0x1234 + i % 96, 16384);
        client.write(base, oid, off, std::move(data),
                     [done = std::move(done)](Status) { done(16384); });
      });
  eng.stop();

  ClusterRunOutcome out;
  out.incidents = dog.incidents().size();
  for (const obs::Incident& inc : dog.incidents()) {
    out.rules.push_back(inc.rule);
  }
  out.timeline = eng.timeline_jsonl();
  out.ticks = eng.ticks();
  return out;
}

}  // namespace

TEST(Watchdog, FiresOnMisconfiguredRateControllerOnly) {
  const ClusterRunOutcome healthy = run_watchdog_cluster(500, 4000, 0);
  EXPECT_GE(healthy.ticks, 40u);
  EXPECT_EQ(healthy.incidents, 0u)
      << "healthy run fired: " << (healthy.rules.empty() ? ""
                                                         : healthy.rules[0]);

  // Degenerate 0/0 watermarks: every nonzero demand is "above high", the
  // engine starves, and the dwell (and usually backlog-growth) rules trip.
  const ClusterRunOutcome sick = run_watchdog_cluster(0, 0, 0);
  bool fired = false;
  for (const std::string& r : sick.rules) {
    if (r == "rate_dwell_high" || r == "dedup_backlog_growth") fired = true;
  }
  EXPECT_TRUE(fired) << "incidents=" << sick.incidents;
}

TEST(Telemetry, TimelineByteIdenticalAcrossShardCounts) {
  // The timeline contains only virtual-time-deterministic aggregates, so
  // the exported JSONL must match byte-for-byte at any shard count.
  const ClusterRunOutcome s1 = run_watchdog_cluster(500, 4000, 1);
  const ClusterRunOutcome s4 = run_watchdog_cluster(500, 4000, 4);
  ASSERT_FALSE(s1.timeline.empty());
  EXPECT_EQ(s1.timeline, s4.timeline);
}

// ---------------------------------------------------------------------------
// Satellite: OpTracker capacity configuration (GDEDUP_OPS_HISTORY).

TEST(OpTracker, CapResolutionPrecedenceAndValidation) {
  // Explicit config wins over everything.
  {
    ScopedEnv env("GDEDUP_OPS_HISTORY", "777");
    EXPECT_EQ(obs::OpTracker::resolve_historic_cap(64), 64u);
  }
  // Env applies when config is unset (<= 0).
  {
    ScopedEnv env("GDEDUP_OPS_HISTORY", "256");
    EXPECT_EQ(obs::OpTracker::resolve_historic_cap(0), 256u);
  }
  // Default when neither is set.
  {
    ScopedEnv env("GDEDUP_OPS_HISTORY", "");
    ::unsetenv("GDEDUP_OPS_HISTORY");
    EXPECT_EQ(obs::OpTracker::resolve_historic_cap(0),
              obs::OpTracker::kDefaultHistoricCap);
    EXPECT_EQ(obs::OpTracker::resolve_slow_cap(0),
              obs::OpTracker::kDefaultSlowCap);
  }
  // Bounds are validated, not silently truncated: explicitly configured
  // out-of-range values clamp to the documented limits (with a WARN — the
  // clamped value is the observable contract).
  EXPECT_EQ(obs::OpTracker::resolve_historic_cap(-5), 1u);
  EXPECT_EQ(obs::OpTracker::resolve_historic_cap(1 << 30),
            obs::OpTracker::kMaxHistoricCap);
  EXPECT_EQ(obs::OpTracker::resolve_slow_cap(1 << 30),
            obs::OpTracker::kMaxSlowCap);
  {
    ScopedEnv env("GDEDUP_OPS_HISTORY", "0");
    EXPECT_EQ(obs::OpTracker::resolve_historic_cap(0), 1u);  // clamped up
  }
  {
    ScopedEnv env("GDEDUP_OPS_HISTORY", "not-a-number");
    EXPECT_EQ(obs::OpTracker::resolve_historic_cap(0),
              obs::OpTracker::kDefaultHistoricCap);
  }
}

TEST(OpTracker, ClusterConfigReachesTheTracker) {
  ClusterConfig cc;
  cc.storage_nodes = 1;
  cc.osds_per_node = 1;
  cc.client_nodes = 1;
  cc.ops_history = 32;
  cc.ops_slow_board = 4;
  Cluster c(cc);
  EXPECT_EQ(c.op_tracker()->historic_cap(), 32u);
  EXPECT_EQ(c.op_tracker()->slow_cap(), 4u);
}

// ---------------------------------------------------------------------------
// Satellite: Histogram log-bucket boundaries + batched percentiles.

TEST(Histogram, SingleSampleBoundaryValuesAreExact) {
  // Below 64 buckets are exact by construction; at and above the first
  // octave split, percentile() clamps to the recorded max, so a
  // single-sample histogram must return that sample exactly for every
  // quantile — including at the power-of-two bucket edges.
  for (uint64_t v : {0ull, 1ull, 63ull, 64ull, 65ull, 127ull, 128ull,
                     4095ull, 4096ull, 4097ull, (1ull << 20),
                     (1ull << 20) + 1, (1ull << 40)}) {
    Histogram h;
    h.record(v);
    EXPECT_EQ(h.percentile(0.0), v) << v;
    EXPECT_EQ(h.percentile(0.5), v) << v;
    EXPECT_EQ(h.percentile(1.0), v) << v;
    const auto batch = h.percentiles({0.0, 0.5, 0.99, 1.0});
    for (uint64_t r : batch) EXPECT_EQ(r, v) << v;
  }
}

TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  const auto batch = h.percentiles({0.5, 0.99, 0.999});
  ASSERT_EQ(batch.size(), 3u);
  for (uint64_t r : batch) EXPECT_EQ(r, 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BatchedPercentilesMatchIndividualWalks) {
  Histogram h;
  // A spread crossing several octaves, with sub-bucket neighbors.
  for (uint64_t v = 1; v <= 100000; v += 37) h.record(v);
  const std::vector<double> qs = {0.999, 0.5, 0.0, 0.99, 1.0, 0.9};
  const auto batch = h.percentiles(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (size_t i = 0; i < qs.size(); i++) {
    EXPECT_EQ(batch[i], h.percentile(qs[i])) << "q=" << qs[i];
  }
  // Log-bucket quantile error stays within the documented ~1.6%.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50000.0,
              50000.0 * 0.017);
}

TEST(Histogram, ExactBelowFirstOctaveSplit) {
  // Values < 64 land in width-1 buckets: quantiles are exact, not
  // approximate, and adjacent values never alias.
  Histogram h;
  for (uint64_t v = 0; v < 64; v++) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 63u);
  const auto batch = h.percentiles({0.25, 0.75});
  // target = q * (count - 1) over 64 exact buckets.
  EXPECT_EQ(batch[0], 15u);
  EXPECT_EQ(batch[1], 47u);
}

// ---------------------------------------------------------------------------
// Satellite: SlidingWindowCounter under sampler-cadence advances.

TEST(SlidingWindow, AdvanceFarPastWindowRetiresEverything) {
  SlidingWindowCounter w(kSecond);
  for (int i = 0; i < 10; i++) {
    w.add(static_cast<SimTime>(i) * kSecond / 10, 1);
  }
  EXPECT_EQ(w.count(kSecond - 1), 10u);
  // A sampler that wakes up long after the last event (idle cluster, 1 s
  // cadence) must see zero, via the pure read and after the mutation.
  const SimTime late = 100 * kSecond;
  EXPECT_EQ(w.count(late), 0u);
  w.advance(late);
  EXPECT_EQ(w.count(late), 0u);
  // The window keeps working after the jump.
  w.add(late, 3);
  EXPECT_EQ(w.count(late), 3u);
  EXPECT_EQ(w.count(late + kSecond + 1), 0u);
}

TEST(SlidingWindow, CountAndAdvanceAgreeAtEveryCadenceStep) {
  SlidingWindowCounter a(kSecond);
  SlidingWindowCounter b(kSecond);
  // Identical event streams; `a` is advanced every virtual second (the
  // sampler cadence), `b` never — the pure-read count() must agree.
  for (int step = 0; step < 50; step++) {
    const SimTime t = static_cast<SimTime>(step) * kSecond / 4;
    a.add(t, static_cast<uint64_t>(step % 3));
    b.add(t, static_cast<uint64_t>(step % 3));
    if (step % 4 == 3) a.advance(t);
    EXPECT_EQ(a.count(t), b.count(t)) << "step " << step;
  }
}
