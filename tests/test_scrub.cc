// Scrub & garbage collection: self-verifying chunk objects (OID ==
// fingerprint), replica repair, dangling-reference GC, leak reclamation.

#include "dedup/scrub.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gdedup {
namespace {

using testutil::DedupHarness;
using testutil::random_buffer;
using testutil::test_tier_config;

constexpr uint32_t kChunk = 32 * 1024;

TEST(Scrub, CleanClusterScrubsClean) {
  DedupHarness h(test_tier_config());
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(h.write("o" + std::to_string(i), 0,
                        random_buffer(2 * kChunk, static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub();
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(rep.chunks_checked, 0u);
  EXPECT_GT(rep.bytes_verified, 0u);
  EXPECT_GT(rep.duration, 0);

  const ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 0u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 0u);
  EXPECT_GT(gc.refs_checked, 0u);
}

TEST(Scrub, DetectsAndRepairsReplicaCorruption) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 1);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());

  // Flip a byte on one replica of the chunk object (silent corruption).
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());
  auto acting = h.cluster->osdmap().acting(h.chunks, fp.hex());
  ASSERT_EQ(acting.size(), 2u);
  ObjectStore& victim = h.cluster->osd(acting[1])->store(h.chunks);
  Buffer corrupted = data;
  corrupted.mutable_data()[100] ^= 0xFF;
  Transaction txn;
  txn.write_full({h.chunks, fp.hex()}, corrupted);
  ASSERT_TRUE(victim.apply(txn).is_ok());

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub(/*repair=*/true);
  EXPECT_EQ(rep.replica_mismatches, 1u);
  EXPECT_EQ(rep.replicas_repaired, 1u);
  EXPECT_EQ(rep.fingerprint_mismatches, 0u);

  // The replica is byte-identical again and a re-scrub is clean.
  auto fixed = victim.read({h.chunks, fp.hex()}, 0, 0);
  ASSERT_TRUE(fixed.is_ok());
  EXPECT_TRUE(fixed->content_equals(data));
  EXPECT_TRUE(s.deep_scrub().clean());
}

TEST(Scrub, DetectsAllReplicasCorrupt) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 2);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());
  Buffer corrupted = data;
  corrupted.mutable_data()[0] ^= 1;
  for (OsdId id : h.cluster->osdmap().acting(h.chunks, fp.hex())) {
    Transaction txn;
    txn.write_full({h.chunks, fp.hex()}, corrupted);
    ASSERT_TRUE(h.cluster->osd(id)->store(h.chunks).apply(txn).is_ok());
  }
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub();
  EXPECT_EQ(rep.fingerprint_mismatches, 1u);  // unrepairable: no good copy
  EXPECT_EQ(rep.replicas_repaired, 0u);
}

TEST(Scrub, GcDropsDanglingRefAndReclaims) {
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(kChunk, 3);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());
  ASSERT_TRUE(h.drain());
  const Fingerprint fp =
      Fingerprint::compute(FingerprintAlgo::kSha256, data.span());

  // Simulate the false-positive refcount residue: plant an extra ref whose
  // source never existed (as a crashed increment-without-decrement would).
  const OsdId primary = h.cluster->osdmap().primary(h.chunks, fp.hex());
  Osd* po = h.cluster->osd(primary);
  auto raw = po->local_getxattr(h.chunks, fp.hex(), kRefsXattr);
  ASSERT_TRUE(raw.is_ok());
  auto refs = decode_refs(raw.value());
  ASSERT_TRUE(refs.is_ok());
  refs->push_back(ChunkRef{h.meta, "ghost-object", 0});
  bool done = false;
  Transaction txn;
  txn.setxattr({h.chunks, fp.hex()}, kRefsXattr, encode_refs(refs.value()));
  po->submit_write(h.chunks, fp.hex(), std::move(txn), [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  while (!done) ASSERT_TRUE(h.cluster->sched().step());

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 1u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 0u);  // live ref remains
  EXPECT_TRUE(h.refcounts_consistent());
  // Data still readable.
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(data));

  // Now remove the object but plant the chunk back as a leak: GC reclaims.
  ASSERT_TRUE(sync_remove(*h.cluster, *h.client, h.meta, "obj").is_ok());
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(h.chunk_object_count(), 0u);
}

TEST(Scrub, GcReclaimsLeakedChunk) {
  // A chunk put whose map update was lost forever (crash, no redo because
  // the object itself was deleted) leaves an orphan chunk; GC removes it.
  DedupHarness h(test_tier_config());
  Buffer keep = random_buffer(kChunk, 4);
  ASSERT_TRUE(h.write("keeper", 0, keep).is_ok());
  ASSERT_TRUE(h.drain());

  // Plant an orphan chunk object directly (bypassing the tier).
  Buffer orphan = random_buffer(kChunk, 5);
  const Fingerprint ofp =
      Fingerprint::compute(FingerprintAlgo::kSha256, orphan.span());
  const OsdId primary = h.cluster->osdmap().primary(h.chunks, ofp.hex());
  OsdOp put;
  put.type = OsdOpType::kChunkPutRef;
  put.pool = h.chunks;
  put.oid = ofp.hex();
  put.data = orphan;
  put.ref = ChunkRef{h.meta, "vanished", 12345};
  bool done = false;
  send_osd_op(*h.cluster, h.cluster->client_node(0), primary, std::move(put),
              [&](OsdOpReply rep) {
                ASSERT_TRUE(rep.status.is_ok());
                done = true;
              });
  while (!done) ASSERT_TRUE(h.cluster->sched().step());
  EXPECT_EQ(h.chunk_object_count(), 2u);

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 1u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 1u);
  EXPECT_EQ(h.chunk_object_count(), 1u);
  // The legitimate chunk survived.
  EXPECT_TRUE(h.read("keeper", 0, 0)->content_equals(keep));
  EXPECT_TRUE(s.collect_garbage().clean());
}

TEST(Scrub, GcKeepsDirtyObjectsRefs) {
  // References held by still-dirty chunk maps are live even though the
  // data also sits cached in the metadata pool.
  DedupHarness h(test_tier_config());
  Buffer v1 = random_buffer(kChunk, 6);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  ASSERT_TRUE(h.drain());
  // Dirty it again (entry keeps the old chunk_id until re-flushed).
  ASSERT_TRUE(h.write("obj", 0, random_buffer(kChunk, 7)).is_ok());

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 0u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 0u);
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(Scrub, EcChunkPoolScrub) {
  DedupHarness h(test_tier_config(), testutil::small_cluster_config(),
                 RedundancyScheme::kErasure);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(h.write("e" + std::to_string(i), 0,
                        random_buffer(2 * kChunk, 10 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub();
  EXPECT_EQ(rep.fingerprint_mismatches, 0u);
  EXPECT_EQ(rep.chunks_checked, 8u);
}

TEST(Scrub, ScrubAfterFailureInjectionConverges) {
  // End-to-end: crash-heavy run, then GC + scrub leave a clean cluster.
  DedupHarness h(test_tier_config());
  const OsdId any = 0;
  (void)any;
  int crashes = 12;
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)
        ->set_failure_hook([&crashes](FailurePoint p, const std::string&) {
          if (p == FailurePoint::kAfterChunkPut && crashes > 0) {
            crashes--;
            return true;
          }
          return false;
        });
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(h.write("w" + std::to_string(i), 0,
                        random_buffer(2 * kChunk, 20 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  (void)s.collect_garbage();
  EXPECT_TRUE(s.deep_scrub().clean());
  EXPECT_TRUE(s.collect_garbage().clean());
  EXPECT_TRUE(h.refcounts_consistent());
  for (int i = 0; i < 10; i++) {
    auto r = h.read("w" + std::to_string(i), 0, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(r->content_equals(
        random_buffer(2 * kChunk, 20 + static_cast<uint64_t>(i))));
  }
}

TEST(Scrub, AsyncDerefModeConvergesWithGc) {
  // Section 4.6's "no locking on decrement": flushes do not wait for the
  // old chunk's de-reference.  Overwrites still converge, and whatever a
  // dropped deref would leave behind is the GC's job.
  auto cfg = test_tier_config();
  cfg.async_deref = true;
  DedupHarness h(cfg);
  Buffer v1 = random_buffer(kChunk, 50);
  Buffer v2 = random_buffer(kChunk, 51);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  ASSERT_TRUE(h.drain());
  ASSERT_TRUE(h.write("obj", 0, v2).is_ok());
  ASSERT_TRUE(h.drain());
  // Let the fire-and-forget derefs land.
  h.cluster->sched().run_for(sec(1));
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v2));

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  (void)s.collect_garbage();
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_TRUE(h.refcounts_consistent());
  EXPECT_TRUE(s.deep_scrub().clean());
}

TEST(Scrub, AsyncDerefLostDecrementReclaimedByGc) {
  // Drop the deref entirely (crash right after it was "sent"): the stale
  // reference keeps the old chunk alive until the GC audits it.
  auto cfg = test_tier_config();
  cfg.async_deref = true;
  DedupHarness h(cfg);
  Buffer v1 = random_buffer(kChunk, 52);
  Buffer v2 = random_buffer(kChunk, 53);
  ASSERT_TRUE(h.write("obj", 0, v1).is_ok());
  ASSERT_TRUE(h.drain());

  // Crash the chunk-pool primary's link for the deref: emulate by marking
  // the old chunk's primary to drop ops during the overwrite flush.
  const Fingerprint f1 =
      Fingerprint::compute(FingerprintAlgo::kSha256, v1.span());
  const OsdId old_primary = h.cluster->osdmap().primary(h.chunks, f1.hex());
  h.cluster->osd(old_primary)->set_drop_when_down(true);
  h.cluster->osd(old_primary)->set_up(false);
  ASSERT_TRUE(h.write("obj", 0, v2).is_ok());
  h.cluster->sched().run_for(sec(2));
  h.cluster->osd(old_primary)->set_up(true);
  ASSERT_TRUE(h.drain());

  // v1's chunk may still exist with its stale ref; the GC reclaims it.
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  ScrubReport gc = s.collect_garbage();
  EXPECT_GE(gc.dangling_refs_dropped + gc.leaked_chunks_reclaimed, 1u);
  EXPECT_EQ(h.chunk_object_count(), 1u);
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(v2));
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(Scrub, GcSparesChunkInOpenFlushWindow) {
  // Regression (Figure 9 step 4): a flush has stored its chunk and recorded
  // the ref, but crashed before the map update.  The ref looks dangling —
  // no flushed map entry matches it — yet the GC must not drop it or
  // reclaim the chunk while the source object still has volatile flush
  // state, or the redo converges onto a chunk someone just deleted.
  DedupHarness h(test_tier_config());
  Buffer data = random_buffer(2 * kChunk, 70);
  ASSERT_TRUE(h.write("obj", 0, data).is_ok());

  // One-shot crash at kAfterChunkPut: chunk + ref persisted, map update
  // abandoned, object stays dirty.
  auto fired = std::make_shared<bool>(false);
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)
        ->set_failure_hook([fired](FailurePoint p, const std::string&) {
          if (*fired || p != FailurePoint::kAfterChunkPut) return false;
          *fired = true;
          return true;
        });
  }
  for (int i = 0; i < 200000 && !*fired; i++) {
    ASSERT_TRUE(h.cluster->sched().step());
  }
  ASSERT_TRUE(*fired);
  // Freeze the window: engines stopped, dirty state intact.
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)->set_failure_hook(nullptr);
    h.cluster->tier_of(o->id(), h.meta)->stop();
  }
  const uint64_t chunks_before = h.chunk_object_count();
  ASSERT_GE(chunks_before, 1u);

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport gc = s.collect_garbage();
  EXPECT_EQ(gc.dangling_refs_dropped, 0u);
  EXPECT_EQ(gc.leaked_chunks_reclaimed, 0u);
  EXPECT_GE(gc.busy_ref_skips, 1u);
  EXPECT_EQ(h.chunk_object_count(), chunks_before);

  // Resume: the redo completes against the spared chunk and converges.
  for (Osd* o : h.cluster->osds()) {
    h.cluster->tier_of(o->id(), h.meta)->start();
  }
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(h.read("obj", 0, 0)->content_equals(data));
  EXPECT_TRUE(h.refcounts_consistent());
  EXPECT_TRUE(s.collect_garbage().clean());
}

TEST(Scrub, DeepScrubSurvivesCrashedHolderReplicated) {
  // Regression: a holder that drops mid-campaign used to be scrubbed as if
  // alive; the pass must route around it and stay clean.
  DedupHarness h(test_tier_config());
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(h.write("r" + std::to_string(i), 0,
                        random_buffer(2 * kChunk, 80 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());

  // Crash an OSD that holds chunk copies (kill -9 semantics).
  OsdId victim = -1;
  for (Osd* o : h.cluster->osds()) {
    const ObjectStore* st = o->store_if_exists(h.chunks);
    if (st != nullptr && !st->list(h.chunks).empty()) {
      victim = o->id();
      break;
    }
  }
  ASSERT_GE(victim, 0);
  h.cluster->crash_osd(victim);

  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub(/*repair=*/true);
  EXPECT_EQ(rep.fingerprint_mismatches, 0u);
  EXPECT_EQ(rep.replica_mismatches, 0u);
  (void)s.collect_garbage();  // must not touch the downed holder either

  h.cluster->revive_osd(victim, /*wipe_store=*/false);
  h.cluster->recover();
  ASSERT_TRUE(h.drain());
  EXPECT_TRUE(s.deep_scrub().clean());
  EXPECT_TRUE(h.refcounts_consistent());
}

TEST(Scrub, DeepScrubSurvivesCrashedHolderEc) {
  // Same survival property on the EC branch, which used to dereference a
  // dropped holder's store without a null / liveness check.
  DedupHarness h(test_tier_config(), testutil::small_cluster_config(),
                 RedundancyScheme::kErasure);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(h.write("e" + std::to_string(i), 0,
                        random_buffer(2 * kChunk, 90 + static_cast<uint64_t>(i)))
                    .is_ok());
  }
  ASSERT_TRUE(h.drain());

  OsdId victim = -1;
  for (Osd* o : h.cluster->osds()) {
    const ObjectStore* st = o->store_if_exists(h.chunks);
    if (st != nullptr && !st->list(h.chunks).empty()) {
      victim = o->id();
      break;
    }
  }
  ASSERT_GE(victim, 0);
  h.cluster->crash_osd(victim);

  // k=2 of the 3 shards survive on up OSDs: every chunk still decodes.
  Scrubber s(h.cluster.get(), h.meta, h.chunks);
  const ScrubReport rep = s.deep_scrub();
  EXPECT_EQ(rep.fingerprint_mismatches, 0u);
  (void)s.collect_garbage();

  h.cluster->revive_osd(victim, /*wipe_store=*/false);
  h.cluster->recover();
  ASSERT_TRUE(h.drain());
  EXPECT_EQ(s.deep_scrub().fingerprint_mismatches, 0u);
}

}  // namespace
}  // namespace gdedup
