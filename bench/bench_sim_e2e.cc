// End-to-end simulation-core wall-clock benchmark.
//
// Runs the canonical write -> flush -> read scenario of
// sim_e2e_scenario.h on the paper's 4x4-OSD testbed shape and reports how
// many *simulated* megabytes of client traffic the simulator pushes per
// *wall-clock* second, plus scheduler events/sec and the determinism
// digest.  The frozen kReference* constants are the serial
// (--exec-threads=1) baseline of this same scenario on the bench host;
// BENCH_SIM.json records current / reference / speedup so the bench
// trajectory has end-to-end points, not just microbenchmarks.
//
// Modes:
//   --json=PATH       write the BENCH_SIM.json trajectory point to PATH
//   --smoke           tiny scenario; structural self-checks only (ctest)
//   --exec-threads=N  exec-pool worker count (default: GDEDUP_EXEC_THREADS
//                     or 1); the digest must not depend on N

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim_e2e_scenario.h"

namespace gdedup::bench {
namespace {

// Frozen serial reference (Release build, --exec-threads=1, this exact
// scenario): the digest is the virtual-time fingerprint of the serial
// run, and every thread count must reproduce it exactly — that equality
// is the whole point of the exec-pool design (test_exec_pool enforces it
// at smoke scale; this check enforces it at full scale).  The throughput
// numbers are the serial baseline on the bench host; speedup > 1 needs
// more than one physical core, which this host does not have.
// The throughput references are the *pre-sharded-engine* serial baseline
// (heap scheduler, eager rx reservation), kept so speedup_vs_reference
// tracks the engine swap; the digest is re-frozen for the sharded engine
// (receiver-sequenced rx + global control lane — see
// tests/test_sim_determinism.cc for the behaviour-change rationale).
constexpr double kReferenceSimMbPerWallSec = 215.0;
constexpr double kReferenceEventsPerWallSec = 0.195e6;
constexpr const char* kReferenceDigest = "fc0493f7";

SimE2eConfig smoke_config() {
  SimE2eConfig cfg;
  cfg.image_bytes = 4ull << 20;
  cfg.preload_block = 64 * 1024;
  cfg.random_writes = 128;
  cfg.random_reads = 128;
  return cfg;
}

// Dedup-heavy variant for the two-tier fast-path comparison: nearly every
// generated block duplicates an earlier one (long content clusters), and
// overwrites are chunk-aligned so phase-2 flushes hash whole generated
// blocks instead of unique overlay merges.  This is the workload the
// fingerprint index exists for; the default 0.5-dedupe scenario keeps the
// frozen digest and measures that the fast path costs nothing there.
SimE2eConfig dedup_heavy_config() {
  SimE2eConfig cfg;
  cfg.image_bytes = 128ull << 20;
  cfg.dedupe = 0.95;
  cfg.small_block = 32 * 1024;  // == chunk_size: aligned overwrites
  cfg.random_writes = 8192;
  cfg.random_reads = 4096;
  return cfg;
}

void print_fastpath(const SimE2eResult& r) {
  std::printf("  fp fast path         : %8s (%llu SHA run, %llu avoided, "
              "%llu memo hits)\n",
              r.fp_fastpath_used ? "on" : "off",
              static_cast<unsigned long long>(r.sha_computed),
              static_cast<unsigned long long>(r.sha_avoided),
              static_cast<unsigned long long>(r.fingerprint_cache_hits));
  std::printf("    sha avoided ratio  : %8.3f (%llu weak hits, %llu "
              "collisions, %llu bloom negatives)\n",
              r.sha_avoided_ratio(),
              static_cast<unsigned long long>(r.weak_hash_hits),
              static_cast<unsigned long long>(r.weak_collisions),
              static_cast<unsigned long long>(r.bloom_negative_hits));
  std::printf("    meta read amp      : %8.4f (%llu KB refs read, %llu KB "
              "written, %llu decodes, %llu cache hits)\n",
              r.meta_read_amp(),
              static_cast<unsigned long long>(r.meta_bytes_read / 1024),
              static_cast<unsigned long long>(r.meta_bytes_written / 1024),
              static_cast<unsigned long long>(r.refs_decodes),
              static_cast<unsigned long long>(r.refs_cache_hits));
}

int run_smoke(int exec_threads) {
  SimE2eConfig cfg = smoke_config();
  cfg.exec_threads = exec_threads;
  WallTimer wt;
  SimE2eResult r = run_sim_e2e(cfg);
  const double wall = wt.elapsed_sec();

  // Structural self-checks: the scenario must complete, drain its dedup
  // backlog, and digest every completed op plus the fixed counter block.
  const uint64_t expect_ops =
      cfg.image_bytes / cfg.preload_block + cfg.random_writes + cfg.random_reads;
  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "bench_sim_e2e smoke FAILED: %s\n", what);
      ok = false;
    }
  };
  check(r.ops == expect_ops, "completed-op count mismatch");
  check(r.drained, "dedup backlog did not drain");
  check(r.sim_bytes > 0, "no simulated bytes moved");
  check(r.events > r.ops, "implausibly few scheduler events");
  check(r.digest_samples > r.ops, "digest missed the counter block");

  // Fast-path invariance at smoke scale: forcing the two-tier path off
  // must reproduce the same digest (it changes host-side work only), and
  // turning it on can only reduce the number of full SHA runs.
  SimE2eConfig off = cfg;
  off.fp_fastpath = 0;
  SimE2eResult roff = run_sim_e2e(off);
  SimE2eConfig on = cfg;
  on.fp_fastpath = 1;
  SimE2eResult ron = run_sim_e2e(on);
  check(roff.digest == r.digest, "digest depends on GDEDUP_FP_FASTPATH=0");
  check(ron.digest == r.digest, "digest depends on GDEDUP_FP_FASTPATH=1");
  check(ron.sha_computed <= roff.sha_computed,
        "fast path increased full-SHA invocations");
  check(roff.sha_avoided == 0 && roff.weak_hash_hits == 0,
        "fast-path counters moved while forced off");

  std::printf("smoke ok=%d ops=%llu events=%llu digest=%s wall=%.2fs\n",
              ok ? 1 : 0, static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.events), r.digest.c_str(),
              wall);
  return ok ? 0 : 1;
}

int run_full(const std::string& json_path, int exec_threads) {
  print_header("Simulation-core end-to-end wall-clock benchmark",
               "bench trajectory (BENCH_SIM.json); scenario of every "
               "figure/table bench");

  SimE2eConfig cfg;  // full-size defaults: 4x4 OSDs, 256 MB image
  cfg.exec_threads = exec_threads;
  WallTimer wt;
  SimE2eResult r = run_sim_e2e(cfg);
  const double wall = wt.elapsed_sec();

  const double sim_mb = static_cast<double>(r.sim_bytes) / 1e6;
  const double mb_per_wall_sec = sim_mb / wall;
  const double events_per_sec = static_cast<double>(r.events) / wall;
  const double speedup = mb_per_wall_sec / kReferenceSimMbPerWallSec;

  std::printf("\nscenario: %d nodes x %d OSDs, %.0f MB image, %zu+%zu random ops\n",
              cfg.storage_nodes, cfg.osds_per_node,
              static_cast<double>(cfg.image_bytes) / 1e6, cfg.random_writes,
              cfg.random_reads);
  std::printf("  wall time            : %8.2f s\n", wall);
  std::printf("  simulated traffic    : %8.1f MB (%llu client ops)\n", sim_mb,
              static_cast<unsigned long long>(r.ops));
  std::printf("  sim MB / wall second : %8.1f  (reference %.1f, speedup %.2fx)\n",
              mb_per_wall_sec, kReferenceSimMbPerWallSec, speedup);
  std::printf("  events / wall second : %8.3gM (reference %.3gM)\n",
              events_per_sec / 1e6, kReferenceEventsPerWallSec / 1e6);
  std::printf("  virtual duration     : %8.2f s (%llu events)\n",
              static_cast<double>(r.sim_duration) / kSecond,
              static_cast<unsigned long long>(r.events));
  const bool digest_ok = r.digest == kReferenceDigest;
  std::printf("  determinism digest   : %s (%llu samples, reference %s%s)\n",
              r.digest.c_str(),
              static_cast<unsigned long long>(r.digest_samples),
              kReferenceDigest, digest_ok ? ", match" : ", MISMATCH");
  std::printf("  drained              : %s\n", r.drained ? "yes" : "NO");
  std::printf("  engine shards        : %8d (%llu windows, %llu sync barriers)\n",
              r.sim_shards_used, static_cast<unsigned long long>(r.sim.windows),
              static_cast<unsigned long long>(r.sim.shard_sync_barriers));
  std::printf("  engine dispatches    : %8llu (%llu batched, %llu ingress, "
              "%.1f KB arena)\n",
              static_cast<unsigned long long>(r.sim.events_dispatched),
              static_cast<unsigned long long>(r.sim.events_batched),
              static_cast<unsigned long long>(r.sim.ingress_messages),
              static_cast<double>(r.sim.arena_bytes) / 1024.0);
  std::printf("  exec threads         : %8d (%llu kernel jobs offloaded)\n",
              r.exec_threads_used,
              static_cast<unsigned long long>(r.kernel_jobs_offloaded));
  for (const auto& k : r.kernels) {
    std::printf("    %-12s %8llu jobs  %8.1f ms worker-busy\n", k.name,
                static_cast<unsigned long long>(k.jobs),
                static_cast<double>(k.busy_ns) / 1e6);
  }
  print_fastpath(r);

  // Two-tier fast-path comparison on the dedup-heavy variant: run it once
  // with the fast path forced on and once forced off.  Both digests must
  // match (the fast path is host-side only) and the on-run must cut full
  // SHA invocations by at least 2x — that pair of properties is the
  // acceptance contract for the fingerprint index.
  std::printf("\ndedup-heavy variant (dedupe=%.2f, chunk-aligned overwrites):\n",
              dedup_heavy_config().dedupe);
  SimE2eConfig hv = dedup_heavy_config();
  hv.exec_threads = exec_threads;
  hv.fp_fastpath = 1;
  WallTimer hwt_on;
  SimE2eResult hon = run_sim_e2e(hv);
  const double heavy_wall_on = hwt_on.elapsed_sec();
  hv.fp_fastpath = 0;
  WallTimer hwt_off;
  SimE2eResult hoff = run_sim_e2e(hv);
  const double heavy_wall_off = hwt_off.elapsed_sec();

  const double heavy_mb = static_cast<double>(hon.sim_bytes) / 1e6;
  const double sha_reduction =
      static_cast<double>(hoff.sha_computed) /
      static_cast<double>(hon.sha_computed > 0 ? hon.sha_computed : 1);
  const bool heavy_digest_ok = hon.digest == hoff.digest;
  std::printf("  sim MB / wall second : %8.1f on, %8.1f off\n",
              heavy_mb / heavy_wall_on, heavy_mb / heavy_wall_off);
  std::printf("  full SHA invocations : %8llu -> %llu  (%.2fx reduction)\n",
              static_cast<unsigned long long>(hoff.sha_computed),
              static_cast<unsigned long long>(hon.sha_computed),
              sha_reduction);
  std::printf("  digest on == off     : %8s (%s vs %s)\n",
              heavy_digest_ok ? "yes" : "NO", hon.digest.c_str(),
              hoff.digest.c_str());
  print_fastpath(hon);

  if (!json_path.empty()) {
    JsonWriter jw;
    jw.add("bench", std::string("sim_e2e"));
    jw.add("scenario", std::string("4x4osd_write_flush_read"));
    jw.add("sim_mb_per_wall_sec", mb_per_wall_sec);
    jw.add("reference_sim_mb_per_wall_sec", kReferenceSimMbPerWallSec);
    jw.add("speedup_vs_reference", speedup);
    jw.add("events_per_wall_sec", events_per_sec);
    jw.add("reference_events_per_wall_sec", kReferenceEventsPerWallSec);
    jw.add("wall_seconds", wall);
    jw.add("simulated_mb", sim_mb);
    jw.add("client_ops", static_cast<double>(r.ops));
    jw.add("scheduler_events", static_cast<double>(r.events));
    jw.add("virtual_seconds", static_cast<double>(r.sim_duration) / kSecond);
    jw.add("determinism_digest", r.digest);
    jw.add("reference_digest", std::string(kReferenceDigest));
    jw.add("digest_samples", static_cast<double>(r.digest_samples));
    jw.add("sim_shards", static_cast<double>(r.sim_shards_used));
    jw.add("sim_events_dispatched", static_cast<double>(r.sim.events_dispatched));
    jw.add("sim_events_batched", static_cast<double>(r.sim.events_batched));
    jw.add("sim_ingress_messages", static_cast<double>(r.sim.ingress_messages));
    jw.add("sim_shard_sync_barriers",
           static_cast<double>(r.sim.shard_sync_barriers));
    jw.add("sim_windows", static_cast<double>(r.sim.windows));
    jw.add("sim_arena_bytes", static_cast<double>(r.sim.arena_bytes));
    jw.add("exec_threads", static_cast<double>(r.exec_threads_used));
    jw.add("kernel_jobs_offloaded",
           static_cast<double>(r.kernel_jobs_offloaded));
    for (const auto& k : r.kernels) {
      jw.add(std::string("offload_") + k.name + "_jobs",
             static_cast<double>(k.jobs));
      jw.add(std::string("offload_") + k.name + "_busy_ms",
             static_cast<double>(k.busy_ns) / 1e6);
    }
    jw.add("fp_fastpath", r.fp_fastpath_used ? 1.0 : 0.0);
    jw.add("fp_sha_computed", static_cast<double>(r.sha_computed));
    jw.add("fp_sha_avoided", static_cast<double>(r.sha_avoided));
    jw.add("fp_sha_avoided_ratio", r.sha_avoided_ratio());
    jw.add("fp_weak_hash_hits", static_cast<double>(r.weak_hash_hits));
    jw.add("fp_weak_collisions", static_cast<double>(r.weak_collisions));
    jw.add("fp_bloom_negative_hits",
           static_cast<double>(r.bloom_negative_hits));
    jw.add("meta_bytes_read", static_cast<double>(r.meta_bytes_read));
    jw.add("meta_bytes_written", static_cast<double>(r.meta_bytes_written));
    jw.add("meta_read_amp", r.meta_read_amp());
    jw.add("refs_decodes", static_cast<double>(r.refs_decodes));
    jw.add("refs_cache_hits", static_cast<double>(r.refs_cache_hits));
    jw.add("heavy_sha_reduction", sha_reduction);
    jw.add("heavy_digest_match", heavy_digest_ok ? 1.0 : 0.0);
    jw.add("heavy_sim_mb_per_wall_sec_on", heavy_mb / heavy_wall_on);
    jw.add("heavy_sim_mb_per_wall_sec_off", heavy_mb / heavy_wall_off);
    jw.add("heavy_sha_avoided_ratio", hon.sha_avoided_ratio());
    jw.add("heavy_meta_read_amp", hon.meta_read_amp());
    if (!jw.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\ntrajectory point written to %s\n", json_path.c_str());
  }
  if (!digest_ok) {
    std::fprintf(stderr,
                 "FATAL: determinism digest drifted from the frozen "
                 "reference — the speedup is not bit-identical\n");
    return 1;
  }
  if (!heavy_digest_ok) {
    std::fprintf(stderr,
                 "FATAL: dedup-heavy digest differs with the fast path on "
                 "vs off — the fast path leaked into virtual time\n");
    return 1;
  }
  if (sha_reduction < 2.0) {
    std::fprintf(stderr,
                 "FATAL: dedup-heavy full-SHA reduction %.2fx is below the "
                 "2x acceptance floor\n", sha_reduction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  int exec_threads = 0;  // 0: GDEDUP_EXEC_THREADS (default 1)
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--exec-threads=", 15) == 0) {
      exec_threads = std::atoi(argv[i] + 15);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json=PATH] [--exec-threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  return smoke ? gdedup::bench::run_smoke(exec_threads)
               : gdedup::bench::run_full(json_path, exec_threads);
}
