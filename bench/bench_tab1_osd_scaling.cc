// Table 1: local vs global dedup ratio as the cluster grows (4/8/12/16
// OSDs), FIO workload with dedupe_percentage=50.
//
// The point of the table: global dedup holds 50% regardless of scale,
// while local dedup decays roughly as 1/#OSDs — the larger the cluster,
// the more a per-node design leaves on the table.

#include "bench_util.h"
#include "dedup/ratio_analyzer.h"

int main(int argc, char** argv) {
  using namespace gdedup;
  using bench::print_header;
  Options opts(argc, argv, "bytes=<dataset bytes> seed=<rng seed>");
  const auto bytes = static_cast<uint64_t>(opts.get_int("bytes", 32ll << 20));
  const auto seed = static_cast<uint64_t>(opts.get_int("seed", 7));
  opts.check_unused();

  print_header("Table 1 — dedup ratio vs number of OSDs (FIO dedupe=50%)",
               "Tab. 1: local 15.5/8.1/5.5/4.1%, global 50% across 4..16 OSDs");

  workload::FioConfig fcfg;
  fcfg.total_bytes = bytes;
  fcfg.block_size = 8192;
  fcfg.dedupe_ratio = 0.5;
  fcfg.seed = seed;
  workload::FioGenerator gen(fcfg);

  struct PaperRow {
    int osds;
    double local;
    double global;
  };
  const PaperRow paper[] = {{4, 15.5, 50.0}, {8, 8.1, 50.0},
                            {12, 5.5, 50.0}, {16, 4.1, 50.0}};

  std::printf("\n%-8s %12s %12s | %12s %12s\n", "OSDs", "local %", "global %",
              "paper local", "paper glob");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const auto& p : paper) {
    OsdMap map;
    for (int i = 0; i < p.osds; i++) map.add_osd(i, i / 4);
    PoolConfig pc;
    pc.name = "data";
    pc.pg_num = 4096;
    const PoolId pool = map.create_pool(pc);
    RatioAnalyzer a(&map, pool, 32 * 1024);
    for (uint64_t i = 0; i < gen.num_blocks(); i++) {
      a.add_object("blk" + std::to_string(i), gen.block(i));
    }
    std::printf("%-8d %12.2f %12.2f | %12.1f %12.1f\n", p.osds,
                a.local().percent(), a.global().percent(), p.local, p.global);
  }
  std::printf("\nshape check: global flat at ~50%%, local ~ (1.2-1.5)x 50/#OSD.\n");
  return 0;
}
