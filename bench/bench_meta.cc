// bench_meta — recipe-chunk metadata dedup + batched omap write path.
//
// The workload the feature is for: T tenants each store the same M
// objects (the shared-image / backup-fleet case), then churn them in
// small identical increments.  Every tenant's chunk map is byte-identical
// per object index, so in recipe mode the compactor's content-addressed
// recipe chunks deduplicate T-ways while the batched write path coalesces
// each flush cycle's omap mutations into one transaction per object.
//
// Measured three ways:
//
//   off        — legacy per-entry 150-byte records, one txn per record.
//   on         — packed/id-less records, recipe compaction, batched txns.
//   gate       — off.meta_bytes_actual / on.meta_bytes_actual >= 4x.
//
// plus the packed-codec footprint assertions (satellite of the 150-byte
// paper format: a flushed sha256 entry must pack to <= 48 bytes, an
// id-less dirty record to <= 8 + key) and, in --smoke, a frozen recipe-
// mode digest: the recipe write path is deterministic at any shard or
// thread count, so this digest only moves when the feature itself does.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dedup/chunk_map.h"
#include "sim_e2e_scenario.h"

namespace gdedup::bench {
namespace {

// Frozen recipe-mode smoke digest (latencies + final counters + omap
// state).  Regenerate with: bench_meta --smoke (prints the digest).
constexpr const char* kFrozenSmokeRecipeDigest = "3043f1aa";

struct MetaConfig {
  int recipe = 0;         // ClusterConfig.recipe_dedup: 0 force off, 1 on
  int tenants = 8;
  int objects = 4;        // per tenant
  int chunks_per_obj = 16;
  int churn_rounds = 6;   // overwrite+drain cycles after preload
};

struct MetaResult {
  uint64_t meta_bytes_actual = 0;
  uint64_t meta_bytes_baseline = 0;
  uint64_t meta_txns = 0;
  uint64_t recipe_chunks = 0;
  uint64_t recipe_hits = 0;
  uint64_t omap_bytes = 0;  // metadata-pool omap footprint at rest
  bool drained = true;
  std::string digest;
};

constexpr uint32_t kChunk = 32 * 1024;

std::string oid_of(int tenant, int obj) {
  return "t" + std::to_string(tenant) + ".obj" + std::to_string(obj);
}

// Chunk content for (object index, chunk slot, version).  Tenant never
// feeds the seed: equal object indexes are byte-identical fleet-wide,
// which is exactly what makes their windows (and recipe chunks) dedup.
Buffer chunk_content(int obj, int slot, int version) {
  const uint64_t seed = 0x9e3779b97f4a7c15ull * (obj + 1) +
                        0x100000001b3ull * (slot + 1) + version;
  Buffer b(kChunk);
  Rng rng(seed);
  rng.fill(b.mutable_data(), kChunk);
  return b;
}

MetaResult run_meta(const MetaConfig& mc, bool print_summary) {
  ClusterConfig cc;
  cc.storage_nodes = 2;
  cc.osds_per_node = 2;
  cc.client_nodes = 1;
  cc.recipe_dedup = mc.recipe;
  Cluster c(cc);

  const PoolId meta = c.create_replicated_pool("meta", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  DedupTierConfig t = bench_tier_config(kChunk);
  t.rate_control = false;      // metadata accounting, not rate posture
  t.promote_on_read = false;
  t.hitcount_threshold = 1000000;  // everything cold: full flush + evict
  t.recipe_entries = 8;            // two windows per 16-chunk object
  c.enable_dedup(meta, chunks, t);

  RadosClient client(&c, c.client_node(0));
  DeterminismDigest dig;
  MetaResult res;

  // Phase 1: fleet preload — every tenant uploads the same M objects.
  struct Op {
    std::string oid;
    uint64_t off;
    int obj;
    int slot;   // -1: whole object
    int version;
  };
  std::vector<Op> ops;
  for (int tn = 0; tn < mc.tenants; tn++) {
    for (int ob = 0; ob < mc.objects; ob++) {
      ops.push_back({oid_of(tn, ob), 0, ob, -1, 0});
    }
  }
  auto issue = [&](size_t idx, std::function<void(uint64_t)> done) {
    const Op& op = ops[idx];
    Buffer data;
    if (op.slot < 0) {
      Buffer whole(static_cast<size_t>(mc.chunks_per_obj) * kChunk);
      for (int s = 0; s < mc.chunks_per_obj; s++) {
        Buffer piece = chunk_content(op.obj, s, op.version);
        memcpy(whole.mutable_data() + static_cast<size_t>(s) * kChunk,
               piece.data(), kChunk);
      }
      data = std::move(whole);
    } else {
      data = chunk_content(op.obj, op.slot, op.version);
    }
    const uint64_t n = data.size();
    client.write(meta, op.oid, op.off, std::move(data),
                 [done = std::move(done), n](Status) { done(n); });
  };
  run_closed_loop(c, ops.size(), /*depth=*/8,
                  digesting_issuer(c, issue, &dig));
  res.drained = c.drain_dedup() && res.drained;

  // Phase 2: churn — each round overwrites one slot per object (the same
  // slot with the same bytes across tenants, so cross-tenant identity
  // survives) and drains, exercising the dirty-record / re-compaction /
  // batched-txn cycle end to end.
  for (int round = 1; round <= mc.churn_rounds; round++) {
    ops.clear();
    for (int tn = 0; tn < mc.tenants; tn++) {
      for (int ob = 0; ob < mc.objects; ob++) {
        const int slot = (3 * round + ob) % mc.chunks_per_obj;
        ops.push_back({oid_of(tn, ob),
                       static_cast<uint64_t>(slot) * kChunk, ob, slot,
                       round});
      }
    }
    run_closed_loop(c, ops.size(), /*depth=*/8,
                    digesting_issuer(c, issue, &dig));
    res.drained = c.drain_dedup() && res.drained;
  }

  digest_final_state(c, meta, chunks, &dig);
  res.digest = dig.hex();

  const DedupTierStats s = c.tier_stats(meta);
  res.meta_bytes_actual = s.meta_bytes_actual;
  res.meta_bytes_baseline = s.meta_bytes_baseline;
  res.meta_txns = s.meta_txns;
  res.recipe_chunks = s.recipe_chunks;
  res.recipe_hits = s.recipe_hits;
  res.omap_bytes = c.pool_stats(meta).omap_bytes;
  if (print_summary) print_obs_summary(c);
  return res;
}

// Packed-codec footprint: the satellite bytes-per-entry bound.  A flushed
// sha256 entry must undercut the paper's 150-byte record by > 3x, and the
// id-less dirty record the batched path persists stays single-digit.
bool check_entry_footprint() {
  ChunkMapEntry e;
  e.offset = 42ull * kChunk;
  e.length = kChunk;
  Buffer probe(kChunk);
  e.chunk_id =
      Fingerprint::compute(FingerprintAlgo::kSha256, probe.span()).hex();
  const size_t flushed = ChunkMap::encode_entry_packed(e).size();

  ChunkMapEntry d;
  d.offset = 42ull * kChunk;
  d.length = kChunk;
  d.dirty = true;
  d.cached = true;
  const size_t dirty = ChunkMap::encode_entry_packed(d).size();

  std::printf("packed entry bytes: flushed=%zu (<= 48), dirty=%zu (<= 8), "
              "legacy=%zu\n",
              flushed, dirty, ChunkMap::kEntryEncodedBytes);
  bool ok = true;
  if (flushed > 48) {
    std::printf("FAIL: packed flushed entry %zu bytes > 48\n", flushed);
    ok = false;
  }
  if (dirty > 8) {
    std::printf("FAIL: packed dirty entry %zu bytes > 8\n", dirty);
    ok = false;
  }
  return ok;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  print_header("Recipe-chunk metadata dedup + batched omap writes",
               "Section 5 Table 2 — metadata overhead, Metadedup-style");

  bool ok = check_entry_footprint();

  MetaConfig mc;
  if (smoke) {
    mc.tenants = 4;
    mc.objects = 2;
    mc.chunks_per_obj = 16;
    mc.churn_rounds = 3;
  }

  MetaConfig off_cfg = mc;
  off_cfg.recipe = 0;
  MetaConfig on_cfg = mc;
  on_cfg.recipe = 1;
  const MetaResult off = run_meta(off_cfg, false);
  const MetaResult on = run_meta(on_cfg, !smoke);

  auto ratio = [](uint64_t num, uint64_t den) {
    return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                   : 0.0;
  };
  std::printf("%6s  %12s  %12s  %9s  %10s  %12s\n", "mode", "meta bytes",
              "omap txns", "recipes", "rcp hits", "omap @rest");
  std::printf("%6s  %12llu  %12llu  %9llu  %10llu  %12llu\n", "off",
              (unsigned long long)off.meta_bytes_actual,
              (unsigned long long)off.meta_txns,
              (unsigned long long)off.recipe_chunks,
              (unsigned long long)off.recipe_hits,
              (unsigned long long)off.omap_bytes);
  std::printf("%6s  %12llu  %12llu  %9llu  %10llu  %12llu\n", "on",
              (unsigned long long)on.meta_bytes_actual,
              (unsigned long long)on.meta_txns,
              (unsigned long long)on.recipe_chunks,
              (unsigned long long)on.recipe_hits,
              (unsigned long long)on.omap_bytes);

  const double bytes_reduction =
      ratio(off.meta_bytes_actual, on.meta_bytes_actual);
  const double txn_reduction = ratio(off.meta_txns, on.meta_txns);
  const double on_dedup =
      ratio(on.meta_bytes_baseline, on.meta_bytes_actual);
  std::printf(
      "meta bytes reduction: %.2fx (>= 4x required)   txn reduction: %.2fx  "
      " on-mode meta_dedup_ratio: %.2fx\n",
      bytes_reduction, txn_reduction, on_dedup);

  if (!off.drained || !on.drained) {
    std::printf("FAIL: background engine did not drain\n");
    ok = false;
  }
  if (bytes_reduction < 4.0) {
    std::printf("FAIL: metadata bytes reduction %.2fx < 4x\n",
                bytes_reduction);
    ok = false;
  }
  if (on.recipe_chunks == 0 || on.recipe_hits == 0) {
    std::printf("FAIL: recipe compaction or cross-tenant dedup never "
                "engaged (chunks=%llu hits=%llu)\n",
                (unsigned long long)on.recipe_chunks,
                (unsigned long long)on.recipe_hits);
    ok = false;
  }
  if (off.recipe_chunks != 0 || off.meta_bytes_actual !=
                                    off.meta_bytes_baseline) {
    std::printf("FAIL: off mode produced recipe traffic\n");
    ok = false;
  }

  std::printf("recipe digest: %s (off-mode: %s)\n", on.digest.c_str(),
              off.digest.c_str());
  if (smoke && on.digest != kFrozenSmokeRecipeDigest) {
    std::printf("FAIL: recipe smoke digest %s != frozen %s\n",
                on.digest.c_str(), kFrozenSmokeRecipeDigest);
    ok = false;
  }

  JsonWriter jw;
  jw.add("tenants", static_cast<double>(mc.tenants));
  jw.add("objects_per_tenant", static_cast<double>(mc.objects));
  jw.add("chunks_per_object", static_cast<double>(mc.chunks_per_obj));
  jw.add("churn_rounds", static_cast<double>(mc.churn_rounds));
  jw.add("off.meta_bytes", static_cast<double>(off.meta_bytes_actual));
  jw.add("off.meta_txns", static_cast<double>(off.meta_txns));
  jw.add("off.omap_bytes", static_cast<double>(off.omap_bytes));
  jw.add("on.meta_bytes", static_cast<double>(on.meta_bytes_actual));
  jw.add("on.meta_txns", static_cast<double>(on.meta_txns));
  jw.add("on.omap_bytes", static_cast<double>(on.omap_bytes));
  jw.add("on.recipe_chunks", static_cast<double>(on.recipe_chunks));
  jw.add("on.recipe_hits", static_cast<double>(on.recipe_hits));
  jw.add("bytes_reduction", bytes_reduction);
  jw.add("txn_reduction", txn_reduction);
  jw.add("meta_dedup_ratio", on_dedup);
  jw.add("recipe_digest", on.digest);
  if (!json_path.empty() && !jw.write_file(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) { return gdedup::bench::run(argc, argv); }
