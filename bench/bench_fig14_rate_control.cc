// Figure 14: foreground sequential-write throughput over time under
// background deduplication, three curves:
//   - No deduplication (ideal)
//   - Dedup without rate control (collapses toward ~1/3 of ideal)
//   - Dedup with watermark rate control (stays near ideal)

#include "bench_util.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;

enum class Mode { kIdeal, kNoControl, kControlled };

std::vector<double> run_mode(Mode mode, SimTime duration) {
  // Scaled cluster + FileStore journal amplification: see the note in
  // bench_fig5_degradation.cc.
  ClusterConfig ccfg;
  ccfg.ssd.journal_write_amplification = 2.0;
  ccfg.storage_nodes = 2;
  ccfg.osds_per_node = 2;
  Cluster c(ccfg);
  const PoolId meta = c.create_replicated_pool("meta", 2);
  if (mode != Mode::kIdeal) {
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    t.rate_control = (mode == Mode::kControlled);
    // Sequential stream: throughput-based watermarks (Section 4.4.2
    // allows "IOPS or throughput"); per-OSD values.
    t.watermark_by_bytes = true;
    t.low_watermark_bps = 12e6;
    t.high_watermark_bps = 45e6;
    t.max_dedup_per_tick = 512;
    t.hitcount_threshold = 1 << 30;
    c.enable_dedup(meta, chunks, t);
  }
  RadosClient client(&c, c.client_node(0));
  const uint64_t span = 192ull << 20;
  BlockDevice bd(&client, meta, "vol", span);

  // Fresh content per write so background flushes move real data (see
  // bench_fig5_degradation.cc).
  const uint32_t bs = 256 * 1024;

  RateSeries series(kSecond);
  auto issue = [&](size_t idx, std::function<void(uint64_t)> done) {
    const uint64_t off = (static_cast<uint64_t>(idx) * bs) % span;
    Buffer content = workload::BlockContent::make(mix64(idx) | 1, bs);
    bd.write(off, std::move(content),
             [done = std::move(done), bs](Status) { done(bs); });
  };
  run_closed_loop_for(c, duration, /*depth=*/8, issue, &series);
  print_obs_summary(c);
  return series.rates();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "seconds=<duration, default 30>");
  const SimTime dur = sec(static_cast<double>(opts.get_int("seconds", 30)));
  opts.check_unused();

  print_header("Figure 14 — dedup rate control, foreground MB/s over time",
               "Fig. 14: ideal ~500-600 MB/s; w/o control drops to ~200; "
               "with control holds ~400-500");

  auto ideal = run_mode(Mode::kIdeal, dur);
  auto noctl = run_mode(Mode::kNoControl, dur);
  auto ctl = run_mode(Mode::kControlled, dur);

  std::printf("\n%-6s %14s %18s %18s\n", "t(s)", "ideal MB/s",
              "no-control MB/s", "controlled MB/s");
  std::printf("%s\n", std::string(60, '-').c_str());
  size_t n = std::min({ideal.size(), noctl.size(), ctl.size()});
  if (n > 1) n--;  // drop the partial trailing bucket
  double si = 0, sn = 0, sc = 0;
  for (size_t t = 0; t < n; t++) {
    std::printf("%-6zu %14.1f %18.1f %18.1f\n", t, ideal[t] / 1e6,
                noctl[t] / 1e6, ctl[t] / 1e6);
    si += ideal[t];
    sn += noctl[t];
    sc += ctl[t];
  }
  std::printf("\nmeans: ideal %.1f, no-control %.1f, controlled %.1f MB/s\n",
              si / n / 1e6, sn / n / 1e6, sc / n / 1e6);
  std::printf("shape check: controlled stays within ~20%% of ideal while "
              "no-control sits far below.\n");
  return 0;
}
