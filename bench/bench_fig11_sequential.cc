// Figure 11: sequential read/write throughput and latency at 32/64/128KB
// block sizes, three 10GbE clients, Original vs Proposed (32KB chunks).
//
// Expected shape (paper): writes land close to Original at every block
// size (rate-controlled post-processing); reads are ~half of Original at
// 32KB due to the metadata-pool -> chunk-pool redirection and close the
// gap at 128KB because the four 32KB chunks are fetched in parallel.

#include "bench_util.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;
constexpr uint64_t kPerClientVolume = 48ull << 20;
constexpr int kClients = 3;

struct Measured {
  double write_mbps, write_ms;
  double read_mbps, read_ms;
};

Measured run_config(bool dedup, uint32_t bs, size_t ops_count) {
  Cluster c;
  const PoolId meta = c.create_replicated_pool("meta", 2);
  if (dedup) {
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    t.hitcount_threshold = 1 << 30;  // keep reads redirected (cold data)
    t.promote_on_read = false;
    // "The write performance is measured based on the high-watermark
    // value": the workload sits above the watermarks, so background dedup
    // trickles at 1/100-1/500 of foreground ops during the write phase.
    t.low_watermark_iops = 50;
    t.high_watermark_iops = 1000;
    c.enable_dedup(meta, chunks, t);
  }

  std::vector<std::unique_ptr<RadosClient>> clients;
  std::vector<std::unique_ptr<BlockDevice>> bdevs;
  for (int i = 0; i < kClients; i++) {
    clients.push_back(std::make_unique<RadosClient>(&c, c.client_node(i)));
    bdevs.push_back(std::make_unique<BlockDevice>(
        clients.back().get(), meta, "vol" + std::to_string(i),
        kPerClientVolume));
  }

  // Write phase: each client streams sequential writes at the block size.
  std::vector<std::vector<workload::IoOp>> wops;
  for (int i = 0; i < kClients; i++) {
    wops.push_back(workload::make_sequential_ops(
        kPerClientVolume, bs, ops_count / kClients, /*writes=*/true, 0.0,
        static_cast<uint64_t>(40 + i)));
  }
  auto wissue = [&](size_t idx, std::function<void(uint64_t)> done) {
    const size_t cl = idx % kClients;
    const auto& op = wops[cl][(idx / kClients) % wops[cl].size()];
    Buffer data = workload::BlockContent::make(op.content_seed, op.length);
    bdevs[cl]->write(op.offset, std::move(data),
                     [done = std::move(done), n = op.length](Status) {
                       done(n);
                     });
  };
  const LoadResult w =
      run_closed_loop(c, ops_count, /*depth=*/4 * kClients, wissue);

  // Reads measured after all data is flushed to the chunk pool.
  if (dedup) c.drain_dedup();

  // Read offsets are block-aligned and spread across each volume so the
  // baseline is not bottlenecked on one hot object at a time — isolating
  // the redirect cost, which is what the figure is about.
  auto rng = std::make_shared<Rng>(99);
  const uint64_t rblocks = kPerClientVolume / bs;
  auto rissue = [&, rng, rblocks](size_t idx,
                                  std::function<void(uint64_t)> done) {
    const size_t cl = idx % kClients;
    const uint64_t off = rng->below(rblocks) * bs;
    bdevs[cl]->read(off, bs,
                    [done = std::move(done), bs](Result<Buffer>) { done(bs); });
  };
  const LoadResult r =
      run_closed_loop(c, ops_count, /*depth=*/4 * kClients, rissue);

  print_obs_summary(c);
  return {w.mbps(), w.mean_latency_ms(), r.mbps(), r.mean_latency_ms()};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "ops=<ops per phase, default 3000>");
  const auto ops_count = static_cast<size_t>(opts.get_int("ops", 3000));
  opts.check_unused();

  print_header("Figure 11 — sequential throughput/latency, 3 clients",
               "Fig. 11: Proposed write ~= Original; Proposed read ~half at "
               "32KB, gap narrows by 128KB (parallel chunk fetch)");

  std::printf("\n%-8s %-10s %14s %12s %14s %12s\n", "blk", "config",
              "wr MB/s", "wr lat ms", "rd MB/s", "rd lat ms");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (uint32_t bs : {32u * 1024, 64u * 1024, 128u * 1024}) {
    const Measured orig = run_config(false, bs, ops_count);
    const Measured prop = run_config(true, bs, ops_count);
    std::printf("%-8u %-10s %14.1f %12.3f %14.1f %12.3f\n", bs / 1024,
                "Original", orig.write_mbps, orig.write_ms, orig.read_mbps,
                orig.read_ms);
    std::printf("%-8u %-10s %14.1f %12.3f %14.1f %12.3f\n", bs / 1024,
                "Proposed", prop.write_mbps, prop.write_ms, prop.read_mbps,
                prop.read_ms);
    std::printf("%-8s %-10s read ratio Proposed/Original = %.2f\n", "", "",
                prop.read_mbps / orig.read_mbps);
  }
  return 0;
}
