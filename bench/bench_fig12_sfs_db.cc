// Figure 12: SPEC SFS 2014 database workload (LOAD=10) against four
// configurations:
//   Replication  — stock, 2x replicated
//   Proposed     — dedup; metadata+chunk pools replicated 2x
//   EC           — stock, erasure-coded 2+1
//   Proposed-EC  — dedup; replicated metadata pool, EC 2+1 chunk pool
//
// Panels reproduced: (a) total throughput, (b) total latency, (c) per-op
// IOPS, (d) per-op latency, (e) storage usage.  SFS issues a fixed demand
// (open loop), so throughput matches across configs that keep up and
// latency explodes where the config cannot (EC small random writes).

#include "bench_util.h"
#include "workload/sfs_db.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;

enum class Config { kReplication, kProposed, kEc, kProposedEc };

const char* config_name(Config c) {
  switch (c) {
    case Config::kReplication:
      return "Replication";
    case Config::kProposed:
      return "Proposed";
    case Config::kEc:
      return "EC";
    case Config::kProposedEc:
      return "Proposed-EC";
  }
  return "?";
}

struct PerOp {
  Histogram lat;
  uint64_t ops = 0;
};

struct Outcome {
  double mbps = 0;
  double total_ms = 0;
  PerOp write, read, scan;
  uint64_t storage_bytes = 0;
  SimTime wall = 0;
};

Outcome run_config(Config cfg, const workload::SfsDbGenerator& gen,
                   size_t total_ops) {
  Cluster c;
  PoolId data_pool = -1;
  if (cfg == Config::kReplication) {
    data_pool = c.create_replicated_pool("data", 2);
  } else if (cfg == Config::kEc) {
    data_pool = c.create_ec_pool("data", 2, 1);
  } else if (cfg == Config::kProposed) {
    data_pool = c.create_replicated_pool("meta", 2);
    PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    // At the paper's scale (240GB over ~60k objects) per-object access
    // rates sit far below the Hitcount threshold, so nothing is hot.  Our
    // scaled dataset concentrates the same demand on a dozen objects; with
    // hotness enabled the cache manager would (correctly) pin the whole
    // dataset in the metadata pool.  Disable it to reproduce the paper's
    // effective regime.
    t.hitcount_threshold = 1 << 30;
    t.promote_on_read = false;
    c.enable_dedup(data_pool, chunks, t);
  } else {
    // Proposed-EC: the whole stack erasure-coded, like the paper's
    // configuration (its latency tracks EC's, so the base pool is EC).
    data_pool = c.create_ec_pool("meta", 2, 1);
    PoolId chunks = c.create_ec_pool("chunks", 2, 1);
    auto t = bench_tier_config(kChunk);
    t.hitcount_threshold = 1 << 30;
    t.promote_on_read = false;
    c.enable_dedup(data_pool, chunks, t);
  }
  RadosClient client(&c, c.client_node(0));
  const auto& scfg = gen.config();
  BlockDevice bd(&client, data_pool, "db", scfg.dataset_bytes);

  // Populate the database image: whole 4MB striping objects written in
  // one op each (fast for both replication and EC — no read-modify-write).
  {
    const uint64_t obj_bytes = 4 << 20;
    const uint32_t pages_per_obj =
        static_cast<uint32_t>(obj_bytes / scfg.page_size);
    const uint64_t nobjs =
        (scfg.dataset_bytes + obj_bytes - 1) / obj_bytes;
    run_closed_loop(c, nobjs, /*depth=*/8,
                    [&](size_t idx, std::function<void(uint64_t)> done) {
                      Buffer buf;
                      for (uint32_t j = 0; j < pages_per_obj; j++) {
                        const uint64_t page =
                            idx * pages_per_obj + j;
                        if (page >= gen.num_pages()) break;
                        buf = Buffer::concat(buf, gen.dataset_page(page));
                      }
                      const uint64_t n = buf.size();
                      client.write_full(data_pool, bd.object_for(idx * obj_bytes),
                                        std::move(buf),
                                        [done = std::move(done), n](Status) {
                                          done(n);
                                        });
                    });
    if (cfg == Config::kProposed || cfg == Config::kProposedEc) {
      c.drain_dedup();
    }
  }

  // Run the measured mixed workload at the SFS demand.
  auto ops = const_cast<workload::SfsDbGenerator&>(gen).make_ops(total_ops, 99);
  Outcome out;
  auto issue = [&](size_t idx, std::function<void(uint64_t)> done) {
    const auto& op = ops[idx];
    const SimTime issued = c.sched().now();
    auto account = [&, issued, idx](uint64_t n) {
      const auto& o = ops[idx];
      PerOp& bucket = o.is_write ? out.write
                      : (o.length > gen.config().page_size ? out.scan
                                                           : out.read);
      bucket.ops++;
      bucket.lat.record(static_cast<uint64_t>(c.sched().now() - issued));
      (void)n;
    };
    if (op.is_write) {
      Buffer data = workload::BlockContent::make(op.content_seed, op.length, 0.3);
      bd.write(op.offset, std::move(data),
               [done = std::move(done), account, n = op.length](Status) {
                 account(n);
                 done(n);
               });
    } else {
      bd.read(op.offset, op.length,
              [done = std::move(done), account, n = op.length](Result<Buffer>) {
                account(n);
                done(n);
              });
    }
  };
  const LoadResult r =
      run_open_loop(c, ops.size(), gen.issue_rate_ops_per_sec(), issue);

  out.mbps = r.mbps();
  out.total_ms = r.mean_latency_ms();
  out.wall = r.wall;

  // Storage usage after the dust settles.
  if (cfg == Config::kProposed || cfg == Config::kProposedEc) {
    c.drain_dedup();
  }
  out.storage_bytes = c.total_physical_bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               "ops=<measured ops, default 3000> load=<SFS LOAD, default 10> "
               "dataset_mb=<default 48>");
  const auto total_ops = static_cast<size_t>(opts.get_int("ops", 3000));
  workload::SfsDbConfig scfg;
  scfg.load = static_cast<int>(opts.get_int("load", 10));
  scfg.dataset_bytes = static_cast<uint64_t>(opts.get_int("dataset_mb", 48)) << 20;
  opts.check_unused();
  workload::SfsDbGenerator gen(scfg);

  print_header(
      "Figure 12 — SPEC SFS 2014 DB workload, LOAD=" + std::to_string(scfg.load),
      "Fig. 12: rep/Proposed similar throughput (fixed demand); latency rep "
      "~1.26ms vs Proposed ~4.1ms; EC/Proposed-EC latency in seconds; "
      "storage rep 428GB / EC 320GB / Proposed 48GB (24GB files)");

  std::printf("\n%-14s %10s %12s | %10s %10s %10s | %12s %12s %12s | %12s\n",
              "config", "MB/s", "totlat ms", "wrIOPS", "rdIOPS", "scIOPS",
              "wr lat ms", "rd lat ms", "scan lat ms", "storage");
  std::printf("%s\n", std::string(140, '-').c_str());
  for (Config cfg : {Config::kReplication, Config::kProposed, Config::kEc,
                     Config::kProposedEc}) {
    const Outcome o = run_config(cfg, gen, total_ops);
    const double secs = static_cast<double>(o.wall) / kSecond;
    std::printf(
        "%-14s %10.1f %12.2f | %10.0f %10.0f %10.0f | %12.2f %12.2f %12.2f | %12s\n",
        config_name(cfg), o.mbps, o.total_ms, o.write.ops / secs,
        o.read.ops / secs, o.scan.ops / secs, o.write.lat.mean() / 1e6,
        o.read.lat.mean() / 1e6, o.scan.lat.mean() / 1e6,
        format_bytes(static_cast<double>(o.storage_bytes)).c_str());
  }
  std::printf(
      "\nshape check: Replication~Proposed throughput; Proposed latency a few"
      " x Replication;\nEC configs orders of magnitude slower on random "
      "writes; Proposed storage ~1/9 of Replication.\n");
  return 0;
}
