// Table 2: deduplication ratio vs chunk size (16/32/64KB) on the
// private-cloud corpus, through the REAL pipeline (not the analyzer):
// ideal ratio counts data only; actual ratio charges the dedup metadata —
// chunk maps (150B/entry), chunk-object reference lists and per-object
// base overhead — so the smallest chunk wins on ideal ratio but loses on
// actual ratio, and 32KB is the sweet spot.

#include "bench_util.h"
#include "dedup/ratio_analyzer.h"
#include "workload/vm_corpus.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

struct Row {
  uint32_t chunk_size;
  double ideal_pct;
  uint64_t stored_data;
  uint64_t stored_meta;
  double actual_pct;
};

Row run_chunk_size(const workload::CloudCorpus& corpus, uint32_t cs) {
  Cluster c;
  const PoolId meta = c.create_replicated_pool("meta", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  auto t = bench_tier_config(cs);
  t.rate_control = false;  // drain fully; this is a capacity experiment
  t.max_dedup_per_tick = 2048;
  t.hitcount_threshold = 1 << 30;
  c.enable_dedup(meta, chunks, t);
  RadosClient client(&c, c.client_node(0));

  const auto& ccfg = corpus.config();
  const uint64_t atoms_per_obj = (4 << 20) / ccfg.atom_size;
  uint64_t logical = 0;
  for (int vm = 0; vm < corpus.num_vms(); vm++) {
    for (uint64_t at = 0; at < corpus.atoms_per_vm(); at += atoms_per_obj) {
      const uint64_t n =
          std::min<uint64_t>(atoms_per_obj, corpus.atoms_per_vm() - at);
      Buffer data = corpus.read(vm, at, n);
      logical += data.size();
      const std::string oid =
          "vm" + std::to_string(vm) + "." + std::to_string(at / atoms_per_obj);
      sync_write(c, client, meta, oid, 0, std::move(data));
    }
  }
  c.drain_dedup();

  const auto ms = c.pool_stats(meta);
  const auto cks = c.pool_stats(chunks);
  // Per-replica accounting (the paper excludes redundancy copies).
  const uint64_t data_bytes = (ms.stored_data_bytes + cks.stored_data_bytes) / 2;
  const uint64_t meta_bytes =
      (ms.xattr_bytes + ms.omap_bytes + ms.objects * kPerObjectBaseBytes +
       cks.xattr_bytes + cks.omap_bytes + cks.objects * kPerObjectBaseBytes) /
      2;
  Row r;
  r.chunk_size = cs;
  r.ideal_pct =
      100.0 * (1.0 - static_cast<double>(data_bytes) / static_cast<double>(logical));
  r.stored_data = data_bytes;
  r.stored_meta = meta_bytes;
  r.actual_pct =
      100.0 * (1.0 - static_cast<double>(data_bytes + meta_bytes) /
                         static_cast<double>(logical));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "vms=<count, default 16> vm_mb=<MB per vm, default 12>");
  workload::CloudCorpusConfig ccfg;
  ccfg.num_vms = static_cast<int>(opts.get_int("vms", 16));
  ccfg.vm_bytes = static_cast<uint64_t>(opts.get_int("vm_mb", 12)) << 20;
  opts.check_unused();

  print_header("Table 2 — dedup ratio vs chunk size (private-cloud corpus)",
               "Tab. 2: ideal 46.4/44.8/43.7%, actual 41.7/42.4/43.3% at "
               "16/32/64KB (3.3TB corpus; ours is scaled)");
  workload::CloudCorpus corpus(ccfg);

  std::printf("\n%-8s %10s %14s %14s %10s | %8s %8s\n", "chunk", "ideal %",
              "data stored", "metadata", "actual %", "paperI", "paperA");
  std::printf("%s\n", std::string(84, '-').c_str());
  const double paper_ideal[] = {46.4, 44.8, 43.7};
  const double paper_actual[] = {41.7, 42.4, 43.3};
  int i = 0;
  for (uint32_t cs : {16u * 1024, 32u * 1024, 64u * 1024}) {
    const Row r = run_chunk_size(corpus, cs);
    std::printf("%-8u %10.2f %14s %14s %10.2f | %8.1f %8.1f\n", cs / 1024,
                r.ideal_pct, format_bytes(static_cast<double>(r.stored_data)).c_str(),
                format_bytes(static_cast<double>(r.stored_meta)).c_str(),
                r.actual_pct, paper_ideal[i], paper_actual[i]);
    i++;
  }
  std::printf("\nshape check: ideal declines with chunk size; metadata halves"
              " per doubling;\nactual peaks away from the smallest chunk.\n");
  return 0;
}
