// Ablations over the design choices DESIGN.md calls out — not a paper
// figure, but the knobs the paper argues about:
//
//  A. Chunk size: foreground 8KB-write latency, background flush traffic
//     and dedup ratio across 8..128KB static chunks (extends Table 2 with
//     the performance dimension).
//  B. Fixed vs content-defined chunking on a shifted backup stream: the
//     dedup ratio CDC buys vs the CPU it costs (the Section 5 trade-off
//     that made the paper choose static chunking).
//  C. Hotness threshold: a zipfian workload under different Hitcount
//     settings — chunk-pool churn vs read latency (the cache manager's
//     reason to exist).
//  D. Fingerprint algorithm: SHA-1 vs SHA-256 engine throughput.

#include <chrono>

#include "bench_util.h"
#include "dedup/chunker.h"
#include "dedup/ratio_analyzer.h"
#include "hash/fingerprint.h"
#include "workload/vm_corpus.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

// ------------------------------------------------------------ A: chunk size

void ablate_chunk_size() {
  print_header("Ablation A — chunk size: latency vs space",
               "design choice: 32KB static chunks (Section 5 / Table 2)");
  std::printf("\n%-8s %14s %14s %14s %12s\n", "chunk", "8K-wr lat ms",
              "flush ops", "chunk objs", "dedup %");
  std::printf("%s\n", std::string(68, '-').c_str());

  workload::CloudCorpusConfig ccfg;
  ccfg.num_vms = 8;
  ccfg.vm_bytes = 8ull << 20;
  workload::CloudCorpus corpus(ccfg);

  for (uint32_t cs : {8u * 1024, 16u * 1024, 32u * 1024, 64u * 1024,
                      128u * 1024}) {
    Cluster c;
    const PoolId meta = c.create_replicated_pool("meta", 2);
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(cs);
    t.rate_control = false;
    t.max_dedup_per_tick = 2048;
    t.hitcount_threshold = 1 << 30;
    c.enable_dedup(meta, chunks, t);
    RadosClient client(&c, c.client_node(0));

    // Ingest the corpus as 4MB objects.
    const uint64_t atoms_per_obj = (4 << 20) / ccfg.atom_size;
    uint64_t logical = 0;
    for (int vm = 0; vm < corpus.num_vms(); vm++) {
      for (uint64_t at = 0; at < corpus.atoms_per_vm(); at += atoms_per_obj) {
        const uint64_t n =
            std::min<uint64_t>(atoms_per_obj, corpus.atoms_per_vm() - at);
        Buffer d = corpus.read(vm, at, n);
        logical += d.size();
        sync_write(c, client, meta,
                   "vm" + std::to_string(vm) + "." + std::to_string(at),
                   0, std::move(d));
      }
    }
    c.drain_dedup();

    // Foreground 8KB random writes against the flushed dataset.
    BlockDevice bd(&client, meta, "vm0.0", 4 << 20);
    auto wops = workload::make_random_ops(4 << 20, 8192, 400, true, 0.0,
                                          static_cast<uint64_t>(cs));
    auto issue = make_bdev_issuer(c, bd, wops);
    const LoadResult w = run_closed_loop(c, wops.size(), 8, issue);
    c.drain_dedup();

    const auto ts = c.tier_stats(meta);
    const auto ck = c.pool_stats(chunks);
    const double ratio =
        100.0 * (1.0 - static_cast<double>(ck.stored_data_bytes) / 2 /
                           static_cast<double>(logical));
    uint64_t chunk_objs = ck.objects / 2;
    std::printf("%-8u %14.3f %14llu %14llu %12.2f\n", cs / 1024,
                w.mean_latency_ms(),
                static_cast<unsigned long long>(ts.chunks_flushed),
                static_cast<unsigned long long>(chunk_objs), ratio);
  }
  std::printf("\nsmaller chunks: better ratio, more metadata + flush ops;"
              " larger chunks: cheaper engine, coarser dedup.\n");
}

// ---------------------------------------------------- B: fixed vs CDC

void ablate_cdc() {
  print_header("Ablation B — fixed vs content-defined chunking",
               "Section 5: CDC rejected on the data path for CPU cost");

  // A backup-like stream: version 2 = version 1 with small insertions,
  // the pathological case for fixed chunking.
  Rng rng(31);
  Buffer v1(8 << 20);
  rng.fill(v1.mutable_data(), v1.size());
  Buffer v2;
  {
    // Insert 16 random short blobs.
    size_t pos = 0;
    Buffer acc;
    for (int i = 0; i < 16; i++) {
      const size_t cut = pos + (v1.size() - pos) / (16 - i);
      acc = Buffer::concat(acc, v1.slice(pos, cut - pos));
      Buffer ins(64 + rng.below(512));
      rng.fill(ins.mutable_data(), ins.size());
      acc = Buffer::concat(acc, ins);
      pos = cut;
    }
    v2 = std::move(acc);
  }

  auto dedup_ratio = [](const std::vector<Chunk>& a,
                        const std::vector<Chunk>& b) {
    std::unordered_set<Fingerprint> seen;
    uint64_t total = 0, unique = 0;
    for (const auto* vec : {&a, &b}) {
      for (const auto& ch : *vec) {
        total += ch.data.size();
        if (seen.insert(Fingerprint::compute(FingerprintAlgo::kSha256,
                                             ch.data.span()))
                .second) {
          unique += ch.data.size();
        }
      }
    }
    return 100.0 * (1.0 - static_cast<double>(unique) / total);
  };

  FixedChunker fixed(32 * 1024);
  CdcChunker cdc(8 * 1024, 32 * 1024, 128 * 1024);

  const auto t0 = std::chrono::steady_clock::now();
  auto f1 = fixed.split(v1);
  auto f2 = fixed.split(v2);
  const auto t1 = std::chrono::steady_clock::now();
  auto c1 = cdc.split(v1);
  auto c2 = cdc.split(v2);
  const auto t2 = std::chrono::steady_clock::now();

  const double fixed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double cdc_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();

  std::printf("\n%-8s %14s %16s %18s\n", "mode", "dedup %", "chunking ms",
              "(v1+v2, 16MB)");
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-8s %14.2f %16.2f\n", "fixed", dedup_ratio(f1, f2), fixed_ms);
  std::printf("%-8s %14.2f %16.2f\n", "cdc", dedup_ratio(c1, c2), cdc_ms);
  std::printf("\nCDC recovers cross-version duplicates that insertions shift"
              " off the fixed grid,\nat ~%0.0fx the chunking CPU — the trade"
              " the paper declines for a CPU-bound data path.\n",
              cdc_ms / std::max(0.01, fixed_ms));
}

// ------------------------------------------------- C: hotness threshold

void ablate_hitcount() {
  print_header("Ablation C — Hitcount threshold under a zipfian workload",
               "cache manager: hot objects are not deduplicated (Section 3.2)");
  std::printf("\n%-10s %12s %14s %14s %14s\n", "hitcount", "rd lat ms",
              "hot skips", "flush ops", "meta cached");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (int threshold : {1, 2, 4, 16, 1 << 20}) {
    Cluster c;
    const PoolId meta = c.create_replicated_pool("meta", 2);
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(32 * 1024);
    t.hitcount_threshold = threshold;
    t.hitset_period = kSecond;
    t.hitset_count = 4;
    t.promote_on_read = true;
    c.enable_dedup(meta, chunks, t);
    RadosClient client(&c, c.client_node(0));

    // 64 objects x 64KB; zipfian access (a few objects take most traffic).
    const int nobj = 64;
    for (int i = 0; i < nobj; i++) {
      sync_write(c, client, meta, "o" + std::to_string(i), 0,
                 workload::BlockContent::make(static_cast<uint64_t>(i),
                                              64 * 1024));
    }
    c.drain_dedup();

    ZipfDistribution zipf(nobj, 0.99);
    auto rng = std::make_shared<Rng>(7);
    Histogram rd;
    auto issue = [&](size_t idx, std::function<void(uint64_t)> done) {
      const auto oid = "o" + std::to_string(zipf.sample(*rng));
      const SimTime t0 = c.sched().now();
      if (idx % 4 == 0) {
        client.write(meta, oid, (idx % 2) * 8192,
                     workload::BlockContent::make(rng->next(), 8192),
                     [&, t0, done = std::move(done)](Status) {
                       rd.record(static_cast<uint64_t>(c.sched().now() - t0));
                       done(8192);
                     });
      } else {
        client.read(meta, oid, 0, 8192,
                    [&, t0, done = std::move(done)](Result<Buffer>) {
                      rd.record(static_cast<uint64_t>(c.sched().now() - t0));
                      done(8192);
                    });
      }
    };
    run_closed_loop(c, 4000, 8, issue);
    const auto ts = c.tier_stats(meta);
    const auto ms = c.pool_stats(meta);
    std::printf("%-10d %12.3f %14llu %14llu %14s\n", threshold,
                rd.mean() / 1e6,
                static_cast<unsigned long long>(ts.hot_skips),
                static_cast<unsigned long long>(ts.chunks_flushed),
                format_bytes(static_cast<double>(ms.stored_data_bytes)).c_str());
  }
  std::printf("\nlow thresholds keep the hot set cached (fast reads, less"
              " churn); very high thresholds\ndedup everything and pay "
              "redirects on the hot path.\n");
}

// ------------------------------------------------- D: fingerprint algo

void ablate_fp_algo() {
  print_header("Ablation D — fingerprint algorithm (engine throughput)",
               "SHA-1 (Ceph dedup default) vs SHA-256 (ours)");
  std::printf("\n%-10s %16s %16s %14s\n", "algo", "drain virt s",
              "cpu busy ms", "flush ops");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (auto algo : {FingerprintAlgo::kSha1, FingerprintAlgo::kSha256}) {
    Cluster c;
    const PoolId meta = c.create_replicated_pool("meta", 2);
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(32 * 1024);
    t.fp_algo = algo;
    t.rate_control = false;
    t.max_dedup_per_tick = 2048;
    t.hitcount_threshold = 1 << 30;
    c.enable_dedup(meta, chunks, t);
    RadosClient client(&c, c.client_node(0));
    for (int i = 0; i < 16; i++) {
      sync_write(c, client, meta, "o" + std::to_string(i), 0,
                 workload::BlockContent::make(static_cast<uint64_t>(i),
                                              1 << 20));
    }
    const SimTime t0 = c.sched().now();
    const uint64_t busy0 = c.storage_cpu_busy_ns();
    c.drain_dedup();
    const auto ts = c.tier_stats(meta);
    std::printf("%-10s %16.3f %16.2f %14llu\n",
                algo == FingerprintAlgo::kSha1 ? "sha1" : "sha256",
                static_cast<double>(c.sched().now() - t0) / kSecond,
                static_cast<double>(c.storage_cpu_busy_ns() - busy0) / 1e6,
                static_cast<unsigned long long>(ts.chunks_flushed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "");
  opts.check_unused();
  ablate_chunk_size();
  ablate_cdc();
  ablate_hitcount();
  ablate_fp_algo();
  return 0;
}
