#pragma once

// Frozen copies of the seed (pre-fast-path) content-pipeline
// implementations.  The pipeline bench hashes with both the live and these
// reference implementations so the reported speedups are measured against a
// fixed baseline inside one binary, not against numbers remembered from an
// older commit.  Do not optimize these.

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/buffer.h"

namespace gdedup::bench::ref {

inline uint32_t rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
inline uint32_t rotr32(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

// ------------------------------------------------------------------ SHA-1

class Sha1 {
 public:
  using Digest = std::array<uint8_t, 20>;

  Sha1() { reset(); }

  void reset() {
    state_[0] = 0x67452301;
    state_[1] = 0xEFCDAB89;
    state_[2] = 0x98BADCFE;
    state_[3] = 0x10325476;
    state_[4] = 0xC3D2E1F0;
    total_len_ = 0;
    buf_len_ = 0;
  }

  void update(std::span<const uint8_t> data) {
    total_len_ += data.size();
    const uint8_t* p = data.data();
    size_t n = data.size();
    if (buf_len_ > 0) {
      const size_t take = std::min(n, sizeof(buf_) - buf_len_);
      std::memcpy(buf_ + buf_len_, p, take);
      buf_len_ += take;
      p += take;
      n -= take;
      if (buf_len_ == sizeof(buf_)) {
        process_block(buf_);
        buf_len_ = 0;
      }
    }
    while (n >= 64) {
      process_block(p);
      p += 64;
      n -= 64;
    }
    if (n > 0) {
      std::memcpy(buf_, p, n);
      buf_len_ = n;
    }
  }

  Digest finish() {
    const uint64_t bit_len = total_len_ * 8;
    const uint8_t pad = 0x80;
    update({&pad, 1});
    const uint8_t zero = 0;
    while (buf_len_ != 56) update({&zero, 1});
    uint8_t len_be[8];
    for (int i = 0; i < 8; i++) {
      len_be[i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
    }
    update({len_be, 8});

    Digest d;
    for (int i = 0; i < 5; i++) {
      d[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
      d[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
      d[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
      d[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
    }
    return d;
  }

  static Digest of(std::span<const uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const uint8_t* block) {
    uint32_t w[80];
    for (int i = 0; i < 16; i++) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; i++) {
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
             e = state_[4];
    for (int i = 0; i < 80; i++) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = tmp;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
  }

  uint32_t state_[5];
  uint64_t total_len_;
  uint8_t buf_[64];
  size_t buf_len_;
};

// ---------------------------------------------------------------- SHA-256

class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256() { reset(); }

  void reset() {
    state_[0] = 0x6a09e667;
    state_[1] = 0xbb67ae85;
    state_[2] = 0x3c6ef372;
    state_[3] = 0xa54ff53a;
    state_[4] = 0x510e527f;
    state_[5] = 0x9b05688c;
    state_[6] = 0x1f83d9ab;
    state_[7] = 0x5be0cd19;
    total_len_ = 0;
    buf_len_ = 0;
  }

  void update(std::span<const uint8_t> data) {
    total_len_ += data.size();
    const uint8_t* p = data.data();
    size_t n = data.size();
    if (buf_len_ > 0) {
      const size_t take = std::min(n, sizeof(buf_) - buf_len_);
      std::memcpy(buf_ + buf_len_, p, take);
      buf_len_ += take;
      p += take;
      n -= take;
      if (buf_len_ == sizeof(buf_)) {
        process_block(buf_);
        buf_len_ = 0;
      }
    }
    while (n >= 64) {
      process_block(p);
      p += 64;
      n -= 64;
    }
    if (n > 0) {
      std::memcpy(buf_, p, n);
      buf_len_ = n;
    }
  }

  Digest finish() {
    const uint64_t bit_len = total_len_ * 8;
    const uint8_t pad = 0x80;
    update({&pad, 1});
    const uint8_t zero = 0;
    while (buf_len_ != 56) update({&zero, 1});
    uint8_t len_be[8];
    for (int i = 0; i < 8; i++) {
      len_be[i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
    }
    update({len_be, 8});

    Digest d;
    for (int i = 0; i < 8; i++) {
      d[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
      d[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
      d[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
      d[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
    }
    return d;
  }

  static Digest of(std::span<const uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const uint8_t* block) {
    static constexpr uint32_t kK[64] = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
        0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
        0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
        0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
        0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
        0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; i++) {
      const uint32_t s0 =
          rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
             e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int i = 0; i < 64; i++) {
      const uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
      const uint32_t ch = (e & f) ^ ((~e) & g);
      const uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buf_[64];
  size_t buf_len_;
};

// -------------------------------------------------- CRC32C (slicing-by-4)

inline uint32_t crc32c_slice4(std::span<const uint8_t> data,
                              uint32_t seed = 0) {
  struct Tables {
    uint32_t t[4][256];
    Tables() {
      constexpr uint32_t kPoly = 0x82f63b78;
      for (uint32_t i = 0; i < 256; i++) {
        uint32_t crc = i;
        for (int k = 0; k < 8; k++) {
          crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
        }
        t[0][i] = crc;
      }
      for (uint32_t i = 0; i < 256; i++) {
        t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
        t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
        t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
      }
    }
  };
  static const Tables tb;
  uint32_t crc = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

// ------------------------------------- Rabin rolling hash + CDC chunking
//
// The seed rolled byte-at-a-time through an out-of-line roll() with a `%`
// ring index and a static-init-guarded table lookup per byte; noinline
// preserves the call cost now that the live roll() is inlined.

class RabinRolling {
 public:
  static constexpr size_t kWindow = 48;

  RabinRolling() { reset(); }

  void reset() {
    hash_ = 0;
    count_ = 0;
    pos_ = 0;
    window_.fill(0);
  }

  __attribute__((noinline)) uint64_t roll(uint8_t in) {
    hash_ = hash_ * kMul + in;
    if (count_ >= kWindow) {
      hash_ -= out_table()[window_[pos_]];
    } else {
      count_++;
    }
    window_[pos_] = in;
    pos_ = (pos_ + 1) % kWindow;
    return hash_;
  }

  uint64_t value() const { return hash_; }
  bool window_full() const { return count_ >= kWindow; }

 private:
  static constexpr uint64_t kMul = 0x9b97714def8a0d8dULL;

  static const std::array<uint64_t, 256>& out_table() {
    static const std::array<uint64_t, 256> table = [] {
      std::array<uint64_t, 256> t{};
      uint64_t mw = 1;
      for (size_t i = 0; i < kWindow; i++) mw *= kMul;
      for (uint64_t b = 0; b < 256; b++) t[b] = b * mw;
      return t;
    }();
    return table;
  }

  uint64_t hash_;
  size_t count_;
  size_t pos_;
  std::array<uint8_t, kWindow> window_;
};

// Seed CDC split, reproduced byte-for-byte including the Buffer slice per
// chunk (the fast path pays that cost too, so the reference must).
struct CdcChunk {
  uint64_t offset = 0;
  Buffer data;
};

inline std::vector<CdcChunk> cdc_split(const Buffer& object_data,
                                       uint32_t min_size, uint32_t avg_size,
                                       uint32_t max_size) {
  std::vector<CdcChunk> out;
  const uint64_t mask = avg_size - 1;
  const uint8_t* p = object_data.data();
  const size_t n = object_data.size();
  size_t start = 0;
  RabinRolling rh;
  size_t i = 0;
  while (i < n) {
    rh.roll(p[i]);
    const size_t len = i + 1 - start;
    const bool boundary =
        (len >= min_size && rh.window_full() && (rh.value() & mask) == mask) ||
        len >= max_size;
    if (boundary) {
      out.push_back({start, object_data.slice(start, len)});
      start = i + 1;
      rh.reset();
    }
    i++;
  }
  if (start < n) out.push_back({start, object_data.slice(start, n - start)});
  return out;
}

}  // namespace gdedup::bench::ref
