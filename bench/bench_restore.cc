// bench_restore — restore throughput vs dedup ratio.
//
// Deduplication trades restore locality for capacity: a sequential image
// whose chunks deduplicated all over the chunk pool is read back as one
// small RPC per chunk.  This harness preloads an image at a swept dedupe
// ratio, drains the background engine, then measures a cold sequential
// restore (large reads, no promotion) four ways:
//
//   rewrite off  — the fragmented baseline: per-chunk chunk-pool reads.
//   rewrite on   — capping-style selective rewrite coalesced runs of
//                  adjacent cold chunks into container objects during the
//                  drain; the restore reads them back as batched RPCs.
//
// plus a determinism check: the forward-assembly read cache is host-side
// only, so the digest (per-op latencies + final counters) must be
// byte-identical with GDEDUP_RESTORE_ASSEMBLY on and off.  Rewrite mode
// intentionally changes placement and carries its own digest, printed
// here and frozen in tests/test_restore.cc.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim_e2e_scenario.h"

namespace gdedup::bench {
namespace {

struct RestoreConfig {
  double dedupe = 0.0;
  bool rewrite = false;
  int assembly = -1;  // ClusterConfig.restore_assembly: -1 env, 0 off, 1 on
  uint64_t image_bytes = 64ull << 20;
};

struct RestoreResult {
  double restore_mbps = 0;
  double objects_per_mb = 0;     // distinct chunk objects per logical MB read
  uint64_t read_rpcs = 0;        // chunk-pool read RPCs issued by the restore
  uint64_t asm_hits = 0;
  uint64_t asm_window_opens = 0;
  uint64_t rewrite_runs = 0;
  uint64_t rewrite_chunks = 0;
  uint64_t physical_bytes = 0;   // base + chunk pool, after drain
  bool drained = false;
  std::string digest;
};

RestoreResult run_restore(const RestoreConfig& rc, bool print_summary) {
  ClusterConfig cc;
  cc.storage_nodes = 3;
  cc.osds_per_node = 2;
  cc.client_nodes = 1;
  cc.restore_assembly = rc.assembly;
  // 25GbE fabric: restore locality is a *disk* phenomenon — the sweep
  // must not hide chunk-pool seek amplification behind a saturated client
  // NIC (10GbE caps at ~1.2 GB/s, right where the rewritten curve sits).
  cc.net.nic_bw_bytes_per_sec = 25.0 * 1000 * 1000 * 1000 / 8;
  Cluster c(cc);

  const PoolId base = c.create_replicated_pool("base", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  DedupTierConfig t = bench_tier_config(32 * 1024);
  t.promote_on_read = false;  // cold restore: no cache promotion mid-sweep
  t.restore_rewrite = rc.rewrite;
  t.rewrite_run_len = 16;     // restore-tuned: long containers,
  t.rewrite_max_pct = 100;    // every eligible run
  c.enable_dedup(base, chunks, t);

  RadosClient client(&c, c.client_node(0));
  BlockDevice bdev(&client, base, "restore-image", rc.image_bytes, 4u << 20);

  DeterminismDigest dig;
  RestoreResult res;

  // Phase 1: sequential preload at the swept dedupe ratio.
  workload::FioConfig fio;
  fio.total_bytes = rc.image_bytes;
  fio.block_size = 32 * 1024;
  fio.dedupe_ratio = rc.dedupe;
  fio.seed = 42;
  workload::FioGenerator gen(fio);
  {
    const uint32_t bs = gen.block_size();
    run_closed_loop(
        c, gen.num_blocks(), /*depth=*/8,
        digesting_issuer(
            c,
            [&](size_t idx, std::function<void(uint64_t)> done) {
              bdev.write(static_cast<uint64_t>(idx) * bs, gen.block(idx),
                         [done = std::move(done), bs](Status) { done(bs); });
            },
            &dig));
  }

  // Phase 2: drain flush + (when enabled) selective rewrite.
  res.drained = c.drain_dedup();
  {
    const auto sb = c.pool_stats(base);
    const auto sc = c.pool_stats(chunks);
    res.physical_bytes = sb.physical_bytes + sc.physical_bytes;
  }
  const DedupTierStats before = c.tier_stats(base);

  // Phase 3: cold sequential restore, 256 KiB reads.  Deep enough queue
  // to be capacity-bound — fragmentation shows up as burned device time
  // and hot-spot skew, not just per-op latency.
  const uint32_t rb = 256 * 1024;
  LoadResult r = run_closed_loop(
      c, rc.image_bytes / rb, /*depth=*/16,
      digesting_issuer(
          c,
          [&](size_t idx, std::function<void(uint64_t)> done) {
            bdev.read(static_cast<uint64_t>(idx) * rb, rb,
                      [done = std::move(done), rb](Result<Buffer>) {
                        done(rb);
                      });
          },
          &dig));
  res.restore_mbps = r.mbps();

  digest_final_state(c, base, chunks, &dig);
  res.digest = dig.hex();

  const DedupTierStats after = c.tier_stats(base);
  const uint64_t bytes = after.read_logical_bytes - before.read_logical_bytes;
  const uint64_t objs = after.read_chunk_objects - before.read_chunk_objects;
  res.objects_per_mb =
      bytes > 0 ? static_cast<double>(objs) /
                      (static_cast<double>(bytes) / (1024.0 * 1024.0))
                : 0.0;
  res.read_rpcs = after.read_chunk_rpcs - before.read_chunk_rpcs;
  res.asm_hits = after.asm_hits;
  res.asm_window_opens = after.asm_window_opens;
  res.rewrite_runs = after.rewrite_runs;
  res.rewrite_chunks = after.rewrite_chunks;

  if (print_summary) print_obs_summary(c);
  if (std::getenv("BENCH_RESTORE_DEBUG") != nullptr) {
    std::printf(
        "  [debug d=%.2f rw=%d] drained=%d flushed=%llu evict=%llu noop=%llu "
        "hot_skip=%llu promo=%llu cached_rd=%llu remote_rd=%llu rw_runs=%llu "
        "rw_chunks=%llu asm_open=%llu asm_hit=%llu\n",
        rc.dedupe, rc.rewrite ? 1 : 0, res.drained ? 1 : 0,
        (unsigned long long)after.chunks_flushed,
        (unsigned long long)after.evictions,
        (unsigned long long)after.noop_flushes,
        (unsigned long long)after.hot_skips,
        (unsigned long long)after.promotions,
        (unsigned long long)(after.cached_read_chunks -
                             before.cached_read_chunks),
        (unsigned long long)(after.redirected_read_chunks -
                             before.redirected_read_chunks),
        (unsigned long long)after.rewrite_runs,
        (unsigned long long)after.rewrite_chunks,
        (unsigned long long)after.asm_window_opens,
        (unsigned long long)after.asm_hits);
  }
  return res;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  print_header("Restore throughput vs dedup ratio (selective rewrite)",
               "Section 3.4 / 4.4 — restore locality under global dedup");

  const uint64_t image = smoke ? (16ull << 20) : (64ull << 20);
  const std::vector<double> ratios =
      smoke ? std::vector<double>{0.0, 0.9}
            : std::vector<double>{0.0, 0.5, 0.75, 0.9, 0.95};

  JsonWriter jw;
  jw.add("image_mb", static_cast<double>(image >> 20));

  std::printf("%7s  %12s  %12s  %8s  %10s  %10s  %9s\n", "dedupe",
              "off MB/s", "rewrite MB/s", "speedup", "objs/MB off",
              "objs/MB on", "phys blowup");
  bool ok = true;
  double worst_high_dedupe_speedup = 1e9;
  for (size_t i = 0; i < ratios.size(); i++) {
    const double d = ratios[i];
    RestoreConfig off_cfg{d, /*rewrite=*/false, /*assembly=*/-1, image};
    RestoreConfig on_cfg{d, /*rewrite=*/true, /*assembly=*/-1, image};
    const bool last = i + 1 == ratios.size();
    RestoreResult off = run_restore(off_cfg, false);
    RestoreResult on = run_restore(on_cfg, last);
    const double speedup =
        off.restore_mbps > 0 ? on.restore_mbps / off.restore_mbps : 0.0;
    const double blowup =
        off.physical_bytes > 0 ? static_cast<double>(on.physical_bytes) /
                                     static_cast<double>(off.physical_bytes)
                               : 0.0;
    std::printf("%7.2f  %12.1f  %12.1f  %7.2fx  %10.1f  %10.1f  %8.2fx\n", d,
                off.restore_mbps, on.restore_mbps, speedup, off.objects_per_mb,
                on.objects_per_mb, blowup);
    ok = ok && off.drained && on.drained;
    if (on.rewrite_runs == 0) {
      std::printf("  FAIL: rewrite mode produced no container runs at %.2f\n",
                  d);
      ok = false;
    }
    if (on.objects_per_mb >= off.objects_per_mb) {
      std::printf("  FAIL: read-amp did not drop with rewrite at %.2f\n", d);
      ok = false;
    }
    if (d >= 0.9) worst_high_dedupe_speedup =
        std::min(worst_high_dedupe_speedup, speedup);
    char key[64];
    std::snprintf(key, sizeof(key), "d%02d", static_cast<int>(d * 100));
    jw.add(std::string(key) + ".off_mbps", off.restore_mbps);
    jw.add(std::string(key) + ".rewrite_mbps", on.restore_mbps);
    jw.add(std::string(key) + ".speedup", speedup);
    jw.add(std::string(key) + ".off_objs_per_mb", off.objects_per_mb);
    jw.add(std::string(key) + ".rewrite_objs_per_mb", on.objects_per_mb);
    jw.add(std::string(key) + ".rewrite_runs",
           static_cast<double>(on.rewrite_runs));
    jw.add(std::string(key) + ".phys_blowup", blowup);
    if (last) jw.add(std::string(key) + ".rewrite_digest", on.digest);
  }

  // Acceptance: at high dedupe the rewritten restore is >= 1.5x faster.
  if (worst_high_dedupe_speedup < 1.5) {
    std::printf("FAIL: rewrite speedup %.2fx < 1.50x at dedupe >= 0.9\n",
                worst_high_dedupe_speedup);
    ok = false;
  } else {
    std::printf("rewrite speedup at dedupe >= 0.9: %.2fx (>= 1.50x required)\n",
                worst_high_dedupe_speedup);
  }
  jw.add("high_dedupe_speedup", worst_high_dedupe_speedup);

  // Determinism: the forward-assembly cache must not move a single event.
  {
    RestoreConfig a{0.9, /*rewrite=*/false, /*assembly=*/0, image};
    RestoreConfig b{0.9, /*rewrite=*/false, /*assembly=*/1, image};
    RestoreResult ra = run_restore(a, false);
    RestoreResult rb = run_restore(b, false);
    std::printf("assembly digest off=%s on=%s (%s), asm_hits=%llu\n",
                ra.digest.c_str(), rb.digest.c_str(),
                ra.digest == rb.digest ? "IDENTICAL" : "MISMATCH",
                static_cast<unsigned long long>(rb.asm_hits));
    if (ra.digest != rb.digest) {
      std::printf("FAIL: assembly cache perturbed the determinism digest\n");
      ok = false;
    }
    if (rb.asm_hits == 0 || rb.asm_window_opens == 0) {
      std::printf("FAIL: assembly cache never engaged on a sequential sweep\n");
      ok = false;
    }
    jw.add("assembly_digest", rb.digest);
    jw.add("asm_hits", static_cast<double>(rb.asm_hits));
  }

  if (!json_path.empty() && !jw.write_file(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) { return gdedup::bench::run(argc, argv); }
