#pragma once

// Shared harness pieces for the per-figure/table benchmark binaries.
//
// Each binary builds the paper's cluster shape, drives a workload in
// virtual time, and prints the same rows/series the paper reports,
// alongside the paper's published numbers for eyeballing the shape.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/options.h"
#include "obs/dump.h"
#include "rados/client.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "sim/metrics.h"
#include "workload/content.h"
#include "workload/fio_gen.h"

namespace gdedup::bench {

// ------------------------------------------------------------ formatting

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

// One-line cluster observability digest (perf-counter registry + op
// tracker), printed by the harnesses after their measured phases.  Same
// seed => same line, so it doubles as a cheap cross-PR sanity diff.
inline void print_obs_summary(Cluster& c) {
  std::printf("%s\n", obs::summary_line(c).c_str());
}

// --------------------------------------------------- wall-clock self-timing
//
// The load drivers below run in *virtual* time; this layer measures real
// host time, for tracking how fast the benchmark binaries themselves run
// across PRs (BENCH_PIPELINE.json is the recorded trajectory).

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Run `fn` repeatedly until ~min_sec of wall time has elapsed (always at
// least once) and return achieved MB/s given `bytes` processed per call.
template <typename Fn>
double measure_mbps(Fn&& fn, uint64_t bytes_per_call, double min_sec = 0.2) {
  // Untimed warm-up: first-touch page faults, table init, dispatch resolve.
  fn();
  WallTimer t;
  uint64_t calls = 0;
  do {
    fn();
    calls++;
  } while (t.elapsed_sec() < min_sec);
  const double sec = t.elapsed_sec();
  return static_cast<double>(calls * bytes_per_call) / (1e6 * sec);
}

// Minimal JSON emitter for flat metric documents: {"key": value, ...} with
// one nesting level of objects.  Enough for BENCH_*.json trajectory files;
// avoids dragging in a JSON dependency.
class JsonWriter {
 public:
  void add(const std::string& key, double value) {
    entries_.push_back({key, format_number(value), false});
  }
  void add(const std::string& key, const std::string& value) {
    entries_.push_back({key, value, true});
  }

  std::string str() const {
    std::string out = "{\n";
    for (size_t i = 0; i < entries_.size(); i++) {
      out += "  \"" + entries_[i].key + "\": ";
      if (entries_[i].quoted) {
        out += "\"" + entries_[i].value + "\"";
      } else {
        out += entries_[i].value;
      }
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string s = str();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string format_number(double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
    }
    return buf;
  }

  struct Entry {
    std::string key;
    std::string value;
    bool quoted;
  };
  std::vector<Entry> entries_;
};

// ------------------------------------------------------------ load driver

struct LoadResult {
  Histogram latency;          // per-op latency, ns
  uint64_t ops = 0;
  uint64_t bytes = 0;
  SimTime wall = 0;           // virtual duration of the measured phase
  double cpu_util = 0.0;      // mean storage-node CPU over the phase

  double seconds() const { return static_cast<double>(wall) / kSecond; }
  double iops() const { return wall > 0 ? ops / seconds() : 0.0; }
  double mbps() const {
    return wall > 0 ? static_cast<double>(bytes) / (1e6 * seconds()) : 0.0;
  }
  double mean_latency_ms() const { return latency.mean() / 1e6; }
};

// issue(index, done): start op `index`, call done(bytes_transferred) at
// completion.
using IssueFn = std::function<void(size_t, std::function<void(uint64_t)>)>;

// Closed loop: `depth` ops outstanding at all times (FIO iodepth).
inline LoadResult run_closed_loop(Cluster& c, size_t total_ops, int depth,
                                  const IssueFn& issue,
                                  RateSeries* series = nullptr) {
  LoadResult res;
  const SimTime start = c.sched().now();
  const uint64_t cpu_before = c.storage_cpu_busy_ns();
  size_t next = 0;
  size_t completed = 0;

  std::function<void()> pump = [&]() {
    while (next < total_ops &&
           next - completed < static_cast<size_t>(depth)) {
      const size_t idx = next++;
      const SimTime issued = c.sched().now();
      issue(idx, [&, issued](uint64_t bytes) {
        completed++;
        res.ops++;
        res.bytes += bytes;
        res.latency.record(static_cast<uint64_t>(c.sched().now() - issued));
        if (series != nullptr) {
          series->add(c.sched().now(), static_cast<double>(bytes));
        }
        pump();
      });
    }
  };
  pump();
  while (completed < total_ops) {
    if (!c.sched().step()) break;
  }
  res.wall = c.sched().now() - start;
  res.cpu_util = c.storage_cpu_utilization(cpu_before, start, c.sched().now());
  return res;
}

// Open loop: ops issued at a fixed rate regardless of completions (the
// SPEC SFS demand model).  Latency includes queueing delay.
inline LoadResult run_open_loop(Cluster& c, size_t total_ops,
                                double ops_per_sec, const IssueFn& issue,
                                RateSeries* series = nullptr) {
  LoadResult res;
  const SimTime start = c.sched().now();
  const uint64_t cpu_before = c.storage_cpu_busy_ns();
  size_t completed = 0;
  const double gap_ns = static_cast<double>(kSecond) / ops_per_sec;

  for (size_t i = 0; i < total_ops; i++) {
    const SimTime when = start + static_cast<SimTime>(gap_ns * static_cast<double>(i));
    c.sched().at(when, [&, i, when] {
      issue(i, [&, when](uint64_t bytes) {
        completed++;
        res.ops++;
        res.bytes += bytes;
        res.latency.record(static_cast<uint64_t>(c.sched().now() - when));
        if (series != nullptr) {
          series->add(c.sched().now(), static_cast<double>(bytes));
        }
      });
    });
  }
  while (completed < total_ops) {
    if (!c.sched().step()) break;
  }
  res.wall = c.sched().now() - start;
  res.cpu_util = c.storage_cpu_utilization(cpu_before, start, c.sched().now());
  return res;
}

// Time-bounded closed loop: run until `duration` of virtual time passes.
inline LoadResult run_closed_loop_for(Cluster& c, SimTime duration, int depth,
                                      const IssueFn& issue,
                                      RateSeries* series = nullptr) {
  LoadResult res;
  const SimTime start = c.sched().now();
  const SimTime deadline = start + duration;
  const uint64_t cpu_before = c.storage_cpu_busy_ns();
  size_t next = 0;
  size_t inflight = 0;
  bool stopping = false;

  std::function<void()> pump = [&]() {
    while (!stopping && inflight < static_cast<size_t>(depth)) {
      const size_t idx = next++;
      inflight++;
      const SimTime issued = c.sched().now();
      issue(idx, [&, issued](uint64_t bytes) {
        inflight--;
        res.ops++;
        res.bytes += bytes;
        res.latency.record(static_cast<uint64_t>(c.sched().now() - issued));
        if (series != nullptr) {
          series->add(c.sched().now(), static_cast<double>(bytes));
        }
        if (c.sched().now() >= deadline) stopping = true;
        pump();
      });
    }
  };
  pump();
  while (!stopping || inflight > 0) {
    if (!c.sched().step()) break;
    if (c.sched().now() >= deadline) stopping = true;
  }
  res.wall = c.sched().now() - start;
  res.cpu_util = c.storage_cpu_utilization(cpu_before, start, c.sched().now());
  return res;
}

// -------------------------------------------------------- block workloads

// Issue fn for an IoOp stream over a block device; writes synthesize
// content from the op's content seed.
inline IssueFn make_bdev_issuer(Cluster& c, BlockDevice& bd,
                                const std::vector<workload::IoOp>& ops,
                                double compressible = 0.0) {
  (void)c;
  return [&bd, &ops, compressible](size_t idx,
                                   std::function<void(uint64_t)> done) {
    const workload::IoOp& op = ops[idx % ops.size()];
    if (op.is_write) {
      Buffer data =
          workload::BlockContent::make(op.content_seed, op.length, compressible);
      bd.write(op.offset, std::move(data),
               [done = std::move(done), n = op.length](Status) { done(n); });
    } else {
      bd.read(op.offset, op.length,
              [done = std::move(done), n = op.length](Result<Buffer>) {
                done(n);
              });
    }
  };
}

// Preload a block device sequentially with FIO-generated content.
inline void preload_bdev(Cluster& c, BlockDevice& bd,
                         const workload::FioGenerator& gen) {
  RateSeries unused;
  const uint32_t bs = gen.block_size();
  run_closed_loop(c, gen.num_blocks(), /*depth=*/8,
                  [&](size_t idx, std::function<void(uint64_t)> done) {
                    bd.write(static_cast<uint64_t>(idx) * bs, gen.block(idx),
                             [done = std::move(done), bs](Status) {
                               done(bs);
                             });
                  });
}

// Standard dedup tier parameters used across benches (paper defaults).
inline DedupTierConfig bench_tier_config(uint32_t chunk_size = 32 * 1024) {
  DedupTierConfig t;
  t.mode = DedupMode::kPostProcess;
  t.chunk_size = chunk_size;
  t.rate_control = true;
  t.low_watermark_iops = 500;
  t.high_watermark_iops = 4000;
  t.engine_tick = msec(50);
  t.max_dedup_per_tick = 256;
  t.hitcount_threshold = 4;
  return t;
}

}  // namespace gdedup::bench
