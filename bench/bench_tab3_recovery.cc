// Table 3: recovery time after removing and re-adding 1 / 2 / 4 OSDs,
// Original vs Proposed, on a 50%-dedupable dataset (replication x2).
//
// Paper (100GB): Original 68.0 / 71.4 / 81.8 s; Proposed 43.7 / 44.5 /
// 54.8 s — dedup roughly halves the bytes that must move.  Our dataset is
// volume-scaled; the Proposed/Original ratio is the reproduced quantity.

#include "bench_util.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;

struct Measured {
  double seconds;
  uint64_t bytes;
};

Measured run_case(bool dedup, int failed_osds, uint64_t volume) {
  Cluster c;
  PoolId pool = -1;
  if (dedup) {
    pool = c.create_replicated_pool("meta", 2);
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    t.rate_control = false;
    t.max_dedup_per_tick = 2048;
    t.hitcount_threshold = 1 << 30;
    c.enable_dedup(pool, chunks, t);
  } else {
    pool = c.create_replicated_pool("data", 2);
  }
  RadosClient client(&c, c.client_node(0));
  BlockDevice bd(&client, pool, "vol", volume);

  workload::FioConfig fcfg;
  fcfg.total_bytes = volume;
  fcfg.block_size = kChunk;
  fcfg.dedupe_ratio = 0.5;
  fcfg.seed = 33;
  workload::FioGenerator gen(fcfg);
  preload_bdev(c, bd, gen);
  if (dedup) c.drain_dedup();

  // Remove and re-add OSDs 0..failed-1 (one host's worth at most, so no
  // object loses both replicas).
  for (int o = 0; o < failed_osds; o++) {
    c.fail_osd(o);
    c.revive_osd(o, /*wipe_store=*/true);
  }
  uint64_t bytes = 0;
  const SimTime dur = c.recover(nullptr, &bytes);
  print_obs_summary(c);
  return {static_cast<double>(dur) / kSecond, bytes};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "volume_mb=<dataset MB, default 96>");
  const uint64_t volume =
      static_cast<uint64_t>(opts.get_int("volume_mb", 96)) << 20;
  opts.check_unused();

  print_header("Table 3 — recovery time vs failed OSDs (50% dedup data)",
               "Tab. 3 (100GB): Original 68.04/71.35/81.77s, Proposed "
               "43.72/44.51/54.78s for 1/2/4 failed OSDs");
  std::printf("dataset: %s logical (scaled from 100GB), replication x2\n",
              format_bytes(static_cast<double>(volume)).c_str());

  const double paper_orig[] = {68.04, 71.35, 81.77};
  const double paper_prop[] = {43.72, 44.51, 54.78};

  std::printf("\n%-8s %14s %14s %10s | %10s %10s %10s\n", "failed",
              "Original s", "Proposed s", "ratio", "paperO", "paperP",
              "paper r");
  std::printf("%s\n", std::string(86, '-').c_str());
  int i = 0;
  for (int failed : {1, 2, 4}) {
    const Measured orig = run_case(false, failed, volume);
    const Measured prop = run_case(true, failed, volume);
    std::printf("%-8d %14.3f %14.3f %10.2f | %10.2f %10.2f %10.2f\n", failed,
                orig.seconds, prop.seconds, prop.seconds / orig.seconds,
                paper_orig[i], paper_prop[i], paper_prop[i] / paper_orig[i]);
    i++;
  }
  std::printf("\nshape check: Proposed/Original ratio ~0.6 across failure "
              "counts; time grows with failed OSDs.\n");
  return 0;
}
