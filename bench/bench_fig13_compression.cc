// Figure 13: cumulative capacity as Ubuntu VM images are added, for six
// configurations: rep, ec, rep+dedup, rep+dedup+comp, ec+dedup,
// ec+dedup+comp.  (Paper: ten 8GB images; rep = 160GB, EC 2+1 = 120GB,
// rep+dedup ~2.2GB with ~200MB per additional image; dedup+comp smallest.)
//
// Images are scaled (default 32MB) but keep the structural profile:
// shared OS payload, per-VM unique home data, large zero tail.
// Compression is the object store's at-rest LZ codec — real compressed
// bytes, standing in for Btrfs.

#include "bench_util.h"
#include "workload/vm_corpus.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;

struct Config {
  const char* name;
  bool ec;
  bool dedup;
  bool compress;
};

struct Run {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<RadosClient> client;
  PoolId pool = -1;
};

Run make_run(const Config& cfg) {
  Run r;
  r.cluster = std::make_unique<Cluster>();
  Cluster& c = *r.cluster;
  if (cfg.dedup) {
    r.pool = c.create_replicated_pool("meta", 2);
    const PoolId chunks =
        cfg.ec ? c.create_ec_pool("chunks", 2, 1, 128, cfg.compress)
               : c.create_replicated_pool("chunks", 2, 128, cfg.compress);
    auto t = bench_tier_config(kChunk);
    t.rate_control = false;
    t.max_dedup_per_tick = 4096;
    t.hitcount_threshold = 1 << 30;
    c.enable_dedup(r.pool, chunks, t);
  } else {
    r.pool = cfg.ec ? c.create_ec_pool("data", 2, 1, 128, cfg.compress)
                    : c.create_replicated_pool("data", 2, 128, cfg.compress);
  }
  r.client = std::make_unique<RadosClient>(&c, r.cluster->client_node(0));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               "images=<count, default 10> image_mb=<MB, default 32>");
  const int images = static_cast<int>(opts.get_int("images", 10));
  workload::VmImageConfig vcfg;
  vcfg.image_bytes = static_cast<uint64_t>(opts.get_int("image_mb", 32)) << 20;
  opts.check_unused();

  print_header("Figure 13 — capacity vs number of VM images (log scale in "
               "the paper)",
               "Fig. 13: rep 160GB, ec 120GB, rep+dedup ~2.2GB (+~200MB per "
               "image), ec+dedup+comp minimal — for ten 8GB images");
  std::printf("image size scaled: %s (paper: 8GB)\n",
              format_bytes(static_cast<double>(vcfg.image_bytes)).c_str());

  const Config configs[] = {
      {"rep", false, false, false},
      {"ec", true, false, false},
      {"rep+dedup", false, true, false},
      {"rep+dedup+comp", false, true, true},
      {"ec+dedup", true, true, false},
      {"ec+dedup+comp", true, true, true},
  };

  workload::VmImageCorpus corpus(vcfg);
  const uint64_t obj_bytes = 4 << 20;
  const uint64_t blocks_per_obj = obj_bytes / vcfg.block_size;

  std::vector<Run> runs;
  for (const auto& cfg : configs) runs.push_back(make_run(cfg));

  std::printf("\n%-8s", "images");
  for (const auto& cfg : configs) std::printf(" %14s", cfg.name);
  std::printf("\n%s\n", std::string(8 + 15 * 6, '-').c_str());

  for (int vm = 0; vm < images; vm++) {
    for (size_t ci = 0; ci < runs.size(); ci++) {
      Run& r = runs[ci];
      Cluster& c = *r.cluster;
      // Stream this VM's image in as 4MB objects.
      const uint64_t total_blocks = corpus.blocks_per_image();
      run_closed_loop(
          c, (total_blocks + blocks_per_obj - 1) / blocks_per_obj, 8,
          [&](size_t idx, std::function<void(uint64_t)> done) {
            Buffer obj;
            for (uint64_t j = 0; j < blocks_per_obj; j++) {
              const uint64_t b = idx * blocks_per_obj + j;
              if (b >= total_blocks) break;
              obj = Buffer::concat(obj, corpus.image_block(vm, b));
            }
            const uint64_t n = obj.size();
            const std::string oid =
                "vm" + std::to_string(vm) + ".obj." + std::to_string(idx);
            r.client->write_full(r.pool, oid, std::move(obj),
                                 [done = std::move(done), n](Status) {
                                   done(n);
                                 });
          });
      if (configs[ci].dedup) c.drain_dedup();
    }
    std::printf("%-8d", vm + 1);
    for (auto& r : runs) {
      std::printf(" %14s",
                  format_bytes(static_cast<double>(r.cluster->total_physical_bytes()))
                      .c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nshape check: rep = 2x logical, ec = 1.5x; dedup configs "
              "start tiny and grow only by the\nper-image unique data; "
              "compression shaves a further constant factor; "
              "ec+dedup+comp smallest.\n");
  return 0;
}
