// bench_churn — long-horizon multi-tenant churn under the telemetry engine
// and health watchdogs (DESIGN.md §13, EXPERIMENTS.md churn-timeline
// recipe).
//
// Drives a dedup-enabled cluster through virtual hours of hosted-storage
// churn: onboard an initial tenant population, run zipf overwrite/read/
// delete steady state, crank an overwrite storm, a delete storm, and a
// mid-run tenant-onboarding burst, then drain and read back.  A
// TelemetryEngine samples the cluster every virtual second on the control
// lane; a Watchdog evaluates the default health rules plus a
// refcount-conservation probe (the PR 2 invariant hooks) each tick.
//
// Determinism contract exercised here:
//   * the timeline JSONL is byte-identical run-to-run for a fixed seed;
//   * the determinism digest (per-op latencies + final counters) is
//     byte-identical with the healthy spec run twice;
//   * the healthy run raises ZERO incidents, while a cluster whose
//     RateController is misconfigured (watermarks degenerate at 0/0, so
//     every nonzero demand lands in the top throttle band) demonstrably
//     fires rate_dwell_high / dedup_backlog_growth.
//
// --smoke runs the acceptance assertions at tiny scale (the churn_smoke
// ctest); the full run is sized by --hours and feeds BENCH_CHURN.json +
// the timeline files consumed by scripts/run_bench.sh.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dedup/invariants.h"
#include "obs/json.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "sim_e2e_scenario.h"
#include "workload/churn.h"

namespace gdedup::bench {
namespace {

struct ChurnSpec {
  workload::ChurnConfig wl;
  int initial_tenants = 12;  // onboarded before steady state
  int burst_tenants = 4;     // onboarded mid-run (the onboarding burst)
  double steady_iops = 50;   // open-loop demand, steady phases
  double storm_iops = 200;   // overwrite storm demand
  double delete_iops = 100;  // delete storm demand
  SimTime steady_dur = 1800 * kSecond;  // per steady phase (two of them)
  SimTime storm_dur = 300 * kSecond;    // per storm phase
  size_t read_sweep_ops = 4096;         // closed-loop readback after drain
  int depth = 8;                        // closed-loop phases
  uint32_t chunk_size = 32 * 1024;
  int low_wm = 500;    // RateController watermarks (bench defaults);
  int high_wm = 4000;  // 0/0 = the degenerate misconfiguration
  bool drain = true;   // misconfigured runs skip the (unbounded) drain
  SimTime telemetry_interval = kSecond;
  int probe_every = 30;  // conservation-probe cadence, in ticks
};

struct ChurnResult {
  uint64_t ops = 0;
  double virtual_sec = 0;
  uint64_t ticks = 0;
  uint64_t frames = 0;
  uint64_t frames_dropped = 0;
  uint64_t conservation_checks = 0;  // probe evaluations that ran the walk
  size_t incidents = 0;
  size_t open_incidents = 0;
  std::vector<std::string> fired_rules;
  bool drained = true;
  std::string digest;
  std::string timeline_jsonl;
  std::string timeline_csv;
  std::string incident_log;
  double steady_p99_ms = 0;
  double storm_p99_ms = 0;
  double read_p99_ms = 0;
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
};

std::vector<workload::ChurnOp> gen_ops(workload::ChurnWorkload& wl, size_t n,
                                       double write_frac, double delete_frac) {
  std::vector<workload::ChurnOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; i++) ops.push_back(wl.next_op(write_frac, delete_frac));
  return ops;
}

IssueFn make_churn_issuer(RadosClient& cl, PoolId pool,
                          const std::vector<workload::ChurnOp>& ops) {
  return [&cl, pool, &ops](size_t idx, std::function<void(uint64_t)> done) {
    const workload::ChurnOp& op = ops[idx % ops.size()];
    switch (op.kind) {
      case workload::ChurnOpKind::kWrite: {
        Buffer data = workload::BlockContent::make(op.content_seed, op.length);
        cl.write(pool, op.oid, op.offset, std::move(data),
                 [done = std::move(done), n = op.length](Status) { done(n); });
        break;
      }
      case workload::ChurnOpKind::kRead:
        cl.read(pool, op.oid, op.offset, op.length,
                [done = std::move(done), n = op.length](Result<Buffer>) {
                  done(n);
                });
        break;
      case workload::ChurnOpKind::kRemove:
        cl.remove(pool, op.oid,
                  [done = std::move(done)](Status) { done(0); });
        break;
    }
  };
}

ChurnResult run_churn(const ChurnSpec& spec, bool verbose) {
  ClusterConfig cc;
  cc.storage_nodes = 3;
  cc.osds_per_node = 2;
  cc.client_nodes = 1;
  Cluster c(cc);

  const PoolId base = c.create_replicated_pool("base", 2);
  const PoolId chunks = c.create_replicated_pool("chunks", 2);
  DedupTierConfig t = bench_tier_config(spec.chunk_size);
  t.low_watermark_iops = spec.low_wm;
  t.high_watermark_iops = spec.high_wm;
  c.enable_dedup(base, chunks, t);

  RadosClient client(&c, c.client_node(0));
  workload::ChurnWorkload wl(spec.wl);

  // Telemetry engine on the control lane: default series, gauges synced at
  // the top of every tick, watchdog armed as the post-sample hook.
  obs::TelemetryConfig tc;
  tc.interval = spec.telemetry_interval;
  obs::TelemetryEngine eng(&c.sched(), c.perf_registry(), tc);
  eng.add_default_series();
  eng.set_presample([&c](SimTime) { c.sync_telemetry_gauges(); });

  obs::Watchdog dog(&eng, c.op_tracker());
  dog.add_default_rules();
  // Refcount-conservation drift probe (PR 2 invariant hooks).  The
  // metadata walk is only meaningful on a quiescent tier: while the
  // engines hold dirty entries or client ops are in flight, maps lag the
  // chunk pool by design, so the probe reports healthy and waits.
  ChurnResult res;
  {
    obs::HealthRule r;
    r.name = "refcount_conservation";
    r.kind = obs::RuleKind::kProbe;
    r.threshold = 0.5;  // any violation string is an incident
    r.min_consecutive = 1;
    r.probe_every = spec.probe_every;
    r.probe = [&c, &res, base, chunks](SimTime) -> double {
      if (dedup_walk::total_backlog(&c, base) > 0) return 0.0;
      if (c.op_tracker()->started() != c.op_tracker()->finished()) return 0.0;
      res.conservation_checks++;
      InvariantReport rep = InvariantChecker(&c, base, chunks).check_metadata();
      return static_cast<double>(rep.violations.size());
    };
    dog.add_rule(std::move(r));
  }
  dog.arm();
  eng.start();

  DeterminismDigest dig;

  auto run_phase = [&](const char* name,
                       const std::vector<workload::ChurnOp>& ops,
                       double iops) -> LoadResult {
    LoadResult r =
        iops > 0
            ? run_open_loop(c, ops.size(), iops,
                            digesting_issuer(
                                c, make_churn_issuer(client, base, ops), &dig))
            : run_closed_loop(c, ops.size(), spec.depth,
                              digesting_issuer(
                                  c, make_churn_issuer(client, base, ops),
                                  &dig));
    res.ops += r.ops;
    if (verbose) {
      std::printf("  %-16s %8llu ops  %7.1f iops  p99 %8.2f ms\n", name,
                  static_cast<unsigned long long>(r.ops), r.iops(),
                  r.latency.percentile(0.99) / 1e6);
    }
    return r;
  };

  const SimTime t0 = c.sched().now();

  // Phase 1: onboard the initial tenant population (closed loop).
  {
    auto plan = wl.onboarding_plan(0, spec.initial_tenants);
    run_phase("onboard", plan, 0);
  }

  // Phase 2: steady multi-tenant churn (open loop).
  const size_t steady_ops = static_cast<size_t>(
      spec.steady_iops * static_cast<double>(spec.steady_dur) / kSecond);
  {
    auto ops = gen_ops(wl, steady_ops, -1.0, -1.0);
    LoadResult r = run_phase("steady-a", ops, spec.steady_iops);
    res.steady_p99_ms = r.latency.percentile(0.99) / 1e6;
  }

  // Phase 3: overwrite storm — write-heavy, hotter, faster.
  {
    const size_t n = static_cast<size_t>(
        spec.storm_iops * static_cast<double>(spec.storm_dur) / kSecond);
    auto ops = gen_ops(wl, n, /*write_frac=*/0.95, /*delete_frac=*/0.01);
    LoadResult r = run_phase("overwrite-storm", ops, spec.storm_iops);
    res.storm_p99_ms = r.latency.percentile(0.99) / 1e6;
  }

  // Phase 4: delete storm — elevated whole-object removes.
  {
    const size_t n = static_cast<size_t>(
        spec.delete_iops * static_cast<double>(spec.storm_dur) / kSecond);
    auto ops = gen_ops(wl, n, /*write_frac=*/0.5, /*delete_frac=*/0.15);
    run_phase("delete-storm", ops, spec.delete_iops);
  }

  // Phase 5: tenant-onboarding burst while churn history is hot.
  if (spec.burst_tenants > 0) {
    auto plan = wl.onboarding_plan(spec.initial_tenants, spec.burst_tenants);
    run_phase("onboard-burst", plan, 0);
  }

  // Phase 6: steady churn again — the long tail of the horizon.
  {
    auto ops = gen_ops(wl, steady_ops, -1.0, -1.0);
    run_phase("steady-b", ops, spec.steady_iops);
  }

  // Phase 7: drain the dedup backlog, then give the conservation probe a
  // quiescent window to actually run its walk (probe_every ticks + 1).
  if (spec.drain) {
    res.drained = c.drain_dedup();
    c.sched().run_for(static_cast<SimTime>(spec.probe_every + 1) *
                      spec.telemetry_interval);
  }

  // Phase 8: read sweep over the surviving population.
  if (spec.read_sweep_ops > 0) {
    auto ops = gen_ops(wl, spec.read_sweep_ops, 0.0, 0.0);
    LoadResult r = run_phase("read-sweep", ops, 0);
    res.read_p99_ms = r.latency.percentile(0.99) / 1e6;
  }

  eng.sample_now();  // final frame at the end-of-run timestamp
  eng.stop();

  digest_final_state(c, base, chunks, &dig);
  res.digest = dig.hex();
  res.virtual_sec = static_cast<double>(c.sched().now() - t0) / kSecond;
  res.ticks = eng.ticks();
  res.frames = eng.frames();
  res.frames_dropped = eng.frames_dropped();
  res.incidents = dog.incidents().size();
  res.open_incidents = dog.open_incidents();
  for (const obs::Incident& inc : dog.incidents()) {
    res.fired_rules.push_back(inc.rule);
  }
  res.timeline_jsonl = eng.timeline_jsonl();
  res.timeline_csv = eng.timeline_csv();
  res.incident_log = dog.log_text();
  {
    const auto sb = c.pool_stats(base);
    const auto sc = c.pool_stats(chunks);
    res.logical_bytes = sb.logical_bytes + sc.logical_bytes;
    res.physical_bytes = sb.physical_bytes + sc.physical_bytes;
  }
  if (verbose) print_obs_summary(c);
  return res;
}

ChurnSpec smoke_spec() {
  ChurnSpec s;
  s.wl.tenants = 6;
  s.wl.objects_per_tenant = 12;
  s.wl.object_bytes = 128 * 1024;
  s.wl.io_bytes = 16 * 1024;
  s.wl.seed = 7;
  s.initial_tenants = 4;
  s.burst_tenants = 2;
  s.steady_iops = 40;
  s.storm_iops = 120;
  s.delete_iops = 80;
  s.steady_dur = 60 * kSecond;
  s.storm_dur = 20 * kSecond;
  s.read_sweep_ops = 512;
  s.probe_every = 10;
  return s;
}

ChurnSpec misconfigured(ChurnSpec s) {
  // Degenerate watermarks: low == high == 0, so every nonzero demand
  // lands in the top throttle band — the dedup engine starves, the
  // backlog climbs, and the controller dwells in regime 2.  (A literal
  // low/high swap would NOT misbehave: demand <= low short-circuits to
  // unthrottled.)
  s.low_wm = 0;
  s.high_wm = 0;
  s.drain = false;  // throttled drain would never finish
  // One steady phase is enough to trip the dwell rule; skip the storms.
  s.storm_iops = 0;
  s.delete_iops = 0;
  s.storm_dur = 0;
  s.burst_tenants = 0;
  s.read_sweep_ops = 0;
  return s;
}

int run(int argc, char** argv) {
  bool smoke = false;
  double hours = 1.0;
  uint64_t seed = 1;
  std::string json_path;
  std::string timeline_base;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--timeline=", 11) == 0) {
      timeline_base = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--hours=", 8) == 0) {
      hours = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "unrecognized flag: %s\n"
                   "usage: bench_churn [--smoke] [--hours=H] [--seed=N] "
                   "[--json=PATH] [--timeline=BASE]\n",
                   argv[i]);
      return 1;
    }
  }

  print_header("Long-horizon churn under telemetry + health watchdogs",
               "DESIGN.md §13 — deterministic timeline over virtual hours");

  bool ok = true;
  JsonWriter jw;

  if (smoke) {
    // Acceptance run A/B: same spec twice — the timeline and the digest
    // must be byte-identical, and a healthy cluster raises no incidents.
    const ChurnSpec spec = smoke_spec();
    std::printf("healthy run A:\n");
    ChurnResult a = run_churn(spec, true);
    std::printf("healthy run B (same seed):\n");
    ChurnResult b = run_churn(spec, false);
    std::printf("digest a=%s b=%s (%s), timeline %zu bytes (%s), "
                "frames=%llu incidents=%zu conservation_checks=%llu\n",
                a.digest.c_str(), b.digest.c_str(),
                a.digest == b.digest ? "IDENTICAL" : "MISMATCH",
                a.timeline_jsonl.size(),
                a.timeline_jsonl == b.timeline_jsonl ? "IDENTICAL"
                                                     : "MISMATCH",
                static_cast<unsigned long long>(a.frames), a.incidents,
                static_cast<unsigned long long>(a.conservation_checks));
    if (a.digest != b.digest) {
      std::printf("FAIL: same-seed digests differ\n");
      ok = false;
    }
    if (a.timeline_jsonl != b.timeline_jsonl || a.timeline_jsonl.empty()) {
      std::printf("FAIL: same-seed timelines differ (or empty)\n");
      ok = false;
    }
    if (a.incidents != 0) {
      std::printf("FAIL: healthy run raised incidents:\n%s",
                  a.incident_log.c_str());
      ok = false;
    }
    if (!a.drained) {
      std::printf("FAIL: healthy run did not drain\n");
      ok = false;
    }
    if (a.conservation_checks == 0) {
      std::printf("FAIL: conservation probe never reached a quiescent walk\n");
      ok = false;
    }

    // Acceptance run C: misconfigured RateController must fire a rule.
    std::printf("misconfigured run (watermarks 0/0):\n");
    ChurnResult m = run_churn(misconfigured(spec), true);
    bool fired = false;
    for (const std::string& rule : m.fired_rules) {
      if (rule == "rate_dwell_high" || rule == "dedup_backlog_growth") {
        fired = true;
      }
    }
    std::printf("misconfigured incidents=%zu:\n%s", m.incidents,
                m.incident_log.c_str());
    if (!fired) {
      std::printf(
          "FAIL: misconfigured watermarks fired no dwell/backlog rule\n");
      ok = false;
    }
    jw.add("smoke_digest", a.digest);
    jw.add("smoke_frames", static_cast<double>(a.frames));
    jw.add("smoke_incidents_misconfigured", static_cast<double>(m.incidents));
  } else {
    ChurnSpec spec;
    spec.wl.seed = seed;
    spec.steady_dur =
        static_cast<SimTime>(hours * 1800.0 * static_cast<double>(kSecond));
    std::printf("horizon: 2 x %.0f s steady + storms (seed %llu)\n",
                static_cast<double>(spec.steady_dur) / kSecond,
                static_cast<unsigned long long>(seed));
    ChurnResult r = run_churn(spec, true);
    std::printf("virtual %.1f s (%.2f h), %llu frames, %zu incidents "
                "(%zu open), conservation_checks=%llu, digest %s\n",
                r.virtual_sec, r.virtual_sec / 3600.0,
                static_cast<unsigned long long>(r.frames), r.incidents,
                r.open_incidents,
                static_cast<unsigned long long>(r.conservation_checks),
                r.digest.c_str());
    if (r.incidents > 0) std::printf("%s", r.incident_log.c_str());
    if (!r.drained) {
      std::printf("FAIL: backlog did not drain\n");
      ok = false;
    }
    if (r.frames == 0 || r.frames_dropped > 0) {
      std::printf("FAIL: timeline frames=%llu dropped=%llu\n",
                  static_cast<unsigned long long>(r.frames),
                  static_cast<unsigned long long>(r.frames_dropped));
      ok = false;
    }
    const double saved =
        r.logical_bytes > 0
            ? 100.0 * (1.0 - static_cast<double>(r.physical_bytes) /
                                 (2.0 * static_cast<double>(r.logical_bytes)))
            : 0.0;
    jw.add("ops", static_cast<double>(r.ops));
    jw.add("virtual_sec", r.virtual_sec);
    jw.add("frames", static_cast<double>(r.frames));
    jw.add("ticks", static_cast<double>(r.ticks));
    jw.add("incidents", static_cast<double>(r.incidents));
    jw.add("open_incidents", static_cast<double>(r.open_incidents));
    jw.add("conservation_checks", static_cast<double>(r.conservation_checks));
    jw.add("steady_p99_ms", r.steady_p99_ms);
    jw.add("storm_p99_ms", r.storm_p99_ms);
    jw.add("read_p99_ms", r.read_p99_ms);
    jw.add("saved_vs_raw_pct", saved);
    jw.add("timeline_bytes", static_cast<double>(r.timeline_jsonl.size()));
    jw.add("digest", r.digest);

    if (!timeline_base.empty()) {
      auto write_text = [&ok](const std::string& path, const std::string& s) {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::printf("FAIL: could not write %s\n", path.c_str());
          ok = false;
          return;
        }
        std::fwrite(s.data(), 1, s.size(), f);
        std::fclose(f);
      };
      write_text(timeline_base + ".jsonl", r.timeline_jsonl);
      write_text(timeline_base + ".csv", r.timeline_csv);
      std::printf("timeline: %s.jsonl (%zu bytes), %s.csv (%zu bytes)\n",
                  timeline_base.c_str(), r.timeline_jsonl.size(),
                  timeline_base.c_str(), r.timeline_csv.size());
    }
  }

  if (!json_path.empty() && !jw.write_file(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) { return gdedup::bench::run(argc, argv); }
