// Two-tier fingerprint lookup microbenchmark.
//
// Quantifies the pieces of the write-path fast path in isolation:
//   1. weak-hash vs full-SHA throughput on chunk-sized blocks (the raw
//      cost gap the fast path arbitrages);
//   2. fused CDC chunking + weak hashing (split_with_weak) vs chunking
//      followed by a second cold sweep;
//   3. the lookup strategies end to end: SHA-first (hash every chunk,
//      the pre-fast-path write path) vs weak-first (probe the
//      FingerprintIndex, full SHA only on miss/collision) over zipf-
//      distributed duplicate streams — hit rate and SHA avoidance as a
//      function of workload skew;
//   4. Kernel::kWeakHash offload through the exec pool.
//
// Modes:
//   --json=PATH  write the BENCH_FP.json trajectory point to PATH
//   --smoke      tiny inputs + structural self-checks only (ctest)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "dedup/chunker.h"
#include "dedup/fingerprint_index.h"
#include "hash/fingerprint.h"
#include "hash/weak_hash.h"
#include "sim/exec_pool.h"
#include "workload/content.h"

namespace gdedup::bench {
namespace {

constexpr uint32_t kChunkSize = 32 * 1024;

struct Tally {
  bool ok = true;
  void check(bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "bench_fp_lookup FAILED: %s\n", what);
      ok = false;
    }
  }
};

// Distinct chunk contents, derived deterministically from their id.
Buffer chunk_content(uint64_t id) {
  return workload::BlockContent::make(0xF00D0000 + id, kChunkSize);
}

double hash_mb_per_sec(bool weak, const std::vector<Buffer>& blocks,
                       int rounds) {
  WallTimer wt;
  uint64_t sink = 0;
  for (int r = 0; r < rounds; r++) {
    for (const Buffer& b : blocks) {
      if (weak) {
        sink ^= weak_hash64(b.data(), b.size());
      } else {
        sink ^= Fingerprint::compute(FingerprintAlgo::kSha256, b.span()).prefix64();
      }
    }
  }
  const double sec = wt.elapsed_sec();
  // Keep the loop observable.
  if (sink == 0x12345678) std::printf(" ");
  const double bytes =
      static_cast<double>(blocks.size()) * kChunkSize * rounds;
  return bytes / 1e6 / sec;
}

struct ZipfPoint {
  double theta;
  double hit_rate;
  double sha_avoided_ratio;
  double weak_first_mbps;
  double sha_first_mbps;
  uint64_t collisions;
};

// Replay a zipf-skewed duplicate stream through both lookup strategies.
ZipfPoint run_zipf(double theta, size_t universe, size_t stream_len,
                   Tally* t) {
  std::vector<Buffer> unique;
  unique.reserve(universe);
  std::vector<Fingerprint> fps;
  fps.reserve(universe);
  for (size_t i = 0; i < universe; i++) {
    unique.push_back(chunk_content(i));
    fps.push_back(
        Fingerprint::compute(FingerprintAlgo::kSha256, unique.back().span()));
  }

  Rng rng(0x21F + static_cast<uint64_t>(theta * 1000));
  ZipfDistribution zipf(universe, theta);
  std::vector<uint32_t> stream(stream_len);
  for (auto& s : stream) {
    s = static_cast<uint32_t>(zipf.sample(rng));  // 0-based rank
  }

  // SHA-first: the pre-fast-path write path hashes every chunk.
  WallTimer wt_sha;
  uint64_t sink = 0;
  for (uint32_t id : stream) {
    sink ^= Fingerprint::compute(FingerprintAlgo::kSha256, unique[id].span())
                .prefix64();
  }
  const double sha_sec = wt_sha.elapsed_sec();

  // Weak-first: probe the index, full SHA only on miss; insert on miss so
  // the index warms exactly as the tier's would.
  FingerprintIndex idx;
  uint64_t sha_runs = 0;
  WallTimer wt_weak;
  for (uint32_t id : stream) {
    const Buffer& b = unique[id];
    const uint64_t w = weak_hash64(b.data(), b.size());
    const FingerprintIndex::ProbeResult pr = idx.probe(w, b);
    if (pr.hit()) {
      sink ^= pr.fp->prefix64();
      continue;
    }
    sha_runs++;
    const Fingerprint fp =
        Fingerprint::compute(FingerprintAlgo::kSha256, b.span());
    sink ^= fp.prefix64();
    idx.insert(w, b, fp);
  }
  const double weak_sec = wt_weak.elapsed_sec();
  if (sink == 0x12345678) std::printf(" ");

  const FingerprintIndex::Stats& st = idx.stats();
  t->check(st.verified_hits + sha_runs == stream_len,
           "zipf stream accounting mismatch");
  // Every verified hit must return the true fingerprint — spot-check via
  // the precomputed table as we go is O(n); sample the stats instead and
  // re-verify one hit per run.
  {
    const uint32_t id = stream.front();
    const Buffer& b = unique[id];
    const auto pr = idx.probe(weak_hash64(b.data(), b.size()), b);
    if (pr.hit()) t->check(*pr.fp == fps[id], "verified hit wrong fp");
  }

  const double bytes = static_cast<double>(stream_len) * kChunkSize;
  ZipfPoint p;
  p.theta = theta;
  p.hit_rate = static_cast<double>(st.verified_hits) /
               static_cast<double>(stream_len);
  p.sha_avoided_ratio = 1.0 - static_cast<double>(sha_runs) /
                                  static_cast<double>(stream_len);
  p.weak_first_mbps = bytes / 1e6 / weak_sec;
  p.sha_first_mbps = bytes / 1e6 / sha_sec;
  p.collisions = st.collisions;
  return p;
}

int run(const std::string& json_path, bool smoke) {
  print_header("Two-tier fingerprint lookup microbenchmark",
               "weak-hash fast path vs SHA-first lookup (BENCH_FP.json)");
  Tally t;

  const size_t nblocks = smoke ? 8 : 64;
  const int rounds = smoke ? 2 : 20;
  std::vector<Buffer> blocks;
  for (size_t i = 0; i < nblocks; i++) blocks.push_back(chunk_content(i));

  // 1. Raw hash cost gap.
  const double weak_mbps = hash_mb_per_sec(true, blocks, rounds);
  const double sha_mbps = hash_mb_per_sec(false, blocks, rounds);
  std::printf("\nraw hash throughput (%u KB blocks):\n", kChunkSize / 1024);
  std::printf("  weak64 (fnv+mix)     : %9.0f MB/s\n", weak_mbps);
  std::printf("  sha256 fingerprint   : %9.0f MB/s\n", sha_mbps);
  std::printf("  weak / sha           : %9.1fx\n", weak_mbps / sha_mbps);

  // Incremental-vs-oneshot equivalence (same invariant the unit tests
  // pin; cheap enough to keep the bench self-checking).
  {
    const Buffer& b = blocks[0];
    WeakHasher h;
    h.update({b.data(), 1000});
    h.update({b.data() + 1000, b.size() - 1000});
    t.check(h.digest() == weak_hash64(b.data(), b.size()),
            "incremental weak hash != oneshot");
  }

  // 2. Fused chunk+weak vs chunk-then-sweep.
  const size_t image_bytes = smoke ? (1u << 20) : (64u << 20);
  Buffer image = workload::BlockContent::make(0xCDC, image_bytes);
  CdcChunker cdc(16 * 1024, 32 * 1024, 64 * 1024);
  WallTimer wt_fused;
  auto fused = cdc.split_with_weak(image);
  const double fused_sec = wt_fused.elapsed_sec();
  WallTimer wt_split;
  auto plain = cdc.split(image);
  uint64_t sink = 0;
  for (const auto& c : plain) sink ^= weak_hash64(c.data.data(), c.data.size());
  const double split_sec = wt_split.elapsed_sec();
  t.check(fused.size() == plain.size(), "fused chunking changed boundaries");
  for (size_t i = 0; i < fused.size() && i < plain.size(); i++) {
    if (fused[i].offset != plain[i].offset ||
        fused[i].weak != weak_hash64(plain[i].data.data(),
                                     plain[i].data.size())) {
      t.check(false, "fused weak hash mismatch");
      break;
    }
  }
  if (sink == 0x12345678) std::printf(" ");
  std::printf("\nCDC chunking of %zu MB:\n", image_bytes >> 20);
  std::printf("  split + weak sweep   : %9.1f ms\n", split_sec * 1e3);
  std::printf("  fused split_with_weak: %9.1f ms (%+.1f%%)\n", fused_sec * 1e3,
              (fused_sec / split_sec - 1.0) * 100.0);

  // 3. Lookup strategies over zipf duplicate streams.
  const size_t universe = smoke ? 64 : 2048;
  const size_t stream_len = smoke ? 512 : 16384;
  std::printf("\nlookup strategies, %zu unique chunks, %zu-chunk stream:\n",
              universe, stream_len);
  std::printf("  %-10s %9s %12s %14s %14s\n", "zipf", "hit rate", "sha avoided",
              "weak-first MB/s", "sha-first MB/s");
  std::vector<ZipfPoint> points;
  // ZipfDistribution requires theta > 0 and != 1; 0.2 is the near-uniform
  // end of the sweep.
  for (double theta : {0.2, 0.8, 0.99, 1.2}) {
    ZipfPoint p = run_zipf(theta, universe, stream_len, &t);
    std::printf("  theta=%-4.2f %8.1f%% %11.1f%% %14.0f %14.0f\n", p.theta,
                p.hit_rate * 100.0, p.sha_avoided_ratio * 100.0,
                p.weak_first_mbps, p.sha_first_mbps);
    points.push_back(p);
  }
  // With every unique chunk fitting in the index, skew only helps; even
  // the near-uniform stream must avoid re-hashing seen chunks.
  t.check(points.front().sha_avoided_ratio > 0.5,
          "near-uniform stream should still dedup against a warm index");

  // 4. Weak-hash kernel offload through the exec pool.
  {
    ExecPool pool(ExecPool::env_threads());
    std::vector<KernelFuture<uint64_t>> futs;
    futs.reserve(blocks.size());
    WallTimer wt;
    for (const Buffer& b : blocks) {
      futs.push_back(kernel_async<uint64_t>(
          &pool, Kernel::kWeakHash,
          [&b] { return weak_hash64(b.data(), b.size()); }));
    }
    uint64_t agg = 0;
    for (size_t i = 0; i < futs.size(); i++) agg ^= futs[i].take();
    const double sec = wt.elapsed_sec();
    uint64_t expect = 0;
    for (const Buffer& b : blocks) expect ^= weak_hash64(b.data(), b.size());
    t.check(agg == expect, "offloaded weak hashes disagree with inline");
    std::printf("\nexec-pool kWeakHash offload: %zu jobs, %d threads, "
                "%.2f ms\n", blocks.size(), pool.threads(), sec * 1e3);
  }

  if (!json_path.empty()) {
    JsonWriter jw;
    jw.add("bench", std::string("fp_lookup"));
    jw.add("chunk_kb", static_cast<double>(kChunkSize / 1024));
    jw.add("weak_mb_per_sec", weak_mbps);
    jw.add("sha256_mb_per_sec", sha_mbps);
    jw.add("weak_vs_sha_speedup", weak_mbps / sha_mbps);
    jw.add("fused_split_overhead_pct",
           (fused_sec / split_sec - 1.0) * 100.0);
    for (const ZipfPoint& p : points) {
      char key[64];
      std::snprintf(key, sizeof(key), "zipf_%.2f_", p.theta);
      jw.add(std::string(key) + "hit_rate", p.hit_rate);
      jw.add(std::string(key) + "sha_avoided_ratio", p.sha_avoided_ratio);
      jw.add(std::string(key) + "weak_first_mb_per_sec", p.weak_first_mbps);
      jw.add(std::string(key) + "sha_first_mb_per_sec", p.sha_first_mbps);
      jw.add(std::string(key) + "collisions",
             static_cast<double>(p.collisions));
    }
    if (!jw.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\ntrajectory point written to %s\n", json_path.c_str());
  }
  std::printf("\n%s\n", t.ok ? "all self-checks passed" : "SELF-CHECK FAILURE");
  return t.ok ? 0 : 1;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return gdedup::bench::run(json_path, smoke);
}
