// Figure 3: deduplication ratio, local (per-OSD) vs global, across the
// paper's six workloads: FIO dedupe=50%, FIO dedupe=80%, SPEC SFS 2014 DB
// at LOAD 1/3/10, and the SK Telecom private-cloud corpus.
//
// 16 OSDs (4 nodes x 4), 32KB static chunks, ratios exclude redundancy
// copies — the paper's accounting.  Dataset sizes are scaled from the
// paper's 5GB / 24GB / 3.3TB to tens-to-hundreds of MB; ratios are
// size-invariant for these generators (content profiles, not volumes).

#include "bench_util.h"
#include "dedup/ratio_analyzer.h"
#include "workload/sfs_db.h"
#include "workload/vm_corpus.h"

namespace gdedup {
namespace {

using bench::print_header;
using bench::print_note;

struct Row {
  std::string name;
  double local_pct;
  double global_pct;
  double paper_local;
  double paper_global;
};

OsdMap make_map(int osds) {
  OsdMap m;
  for (int i = 0; i < osds; i++) m.add_osd(i, i / 4);
  PoolConfig cfg;
  cfg.name = "data";
  cfg.pg_num = 4096;
  m.create_pool(cfg);
  return m;
}

Row run_fio(double dedupe, uint64_t bytes, uint64_t seed, double pl, double pg) {
  OsdMap map = make_map(16);
  RatioAnalyzer a(&map, 0, 32 * 1024);
  workload::FioConfig cfg;
  cfg.total_bytes = bytes;
  cfg.block_size = 8192;
  cfg.dedupe_ratio = dedupe;
  cfg.seed = seed;
  workload::FioGenerator gen(cfg);
  for (uint64_t i = 0; i < gen.num_blocks(); i++) {
    a.add_object("blk" + std::to_string(i), gen.block(i));
  }
  char name[64];
  std::snprintf(name, sizeof(name), "FIO dedup %.0f%%", dedupe * 100);
  return {name, a.local().percent(), a.global().percent(), pl, pg};
}

Row run_sfs(int load, uint64_t bytes, double pl, double pg) {
  OsdMap map = make_map(16);
  workload::SfsDbConfig cfg;
  cfg.load = load;
  cfg.dataset_bytes = bytes;
  workload::SfsDbGenerator gen(cfg);
  RatioAnalyzer a(&map, 0, 32 * 1024);
  // Pages grouped into the 4MB striping objects they live in, so local
  // accounting sees the same placement the cluster would use.
  const uint64_t pages_per_obj = (4 << 20) / cfg.page_size;
  Buffer obj;
  uint64_t obj_idx = 0;
  for (uint64_t i = 0; i < gen.num_pages(); i++) {
    obj = Buffer::concat(obj, gen.dataset_page(i));
    if ((i + 1) % pages_per_obj == 0 || i + 1 == gen.num_pages()) {
      a.add_object("db." + std::to_string(obj_idx++), obj);
      obj = Buffer();
    }
  }
  return {"SFS DB (LD" + std::to_string(load) + ")", a.local().percent(),
          a.global().percent(), pl, pg};
}

Row run_cloud(double pl, double pg) {
  OsdMap map = make_map(16);
  workload::CloudCorpusConfig cfg;  // calibrated private-cloud profile
  workload::CloudCorpus corpus(cfg);
  RatioAnalyzer a(&map, 0, 32 * 1024);
  const uint64_t atoms_per_obj = (4 << 20) / cfg.atom_size;
  for (int vm = 0; vm < cfg.num_vms; vm++) {
    for (uint64_t at = 0; at < corpus.atoms_per_vm(); at += atoms_per_obj) {
      const uint64_t n =
          std::min<uint64_t>(atoms_per_obj, corpus.atoms_per_vm() - at);
      a.add_object("vm" + std::to_string(vm) + "." + std::to_string(at / atoms_per_obj),
                   corpus.read(vm, at, n));
    }
  }
  return {"SKT Private Cloud", a.local().percent(), a.global().percent(), pl,
          pg};
}

}  // namespace
}  // namespace gdedup

int main(int argc, char** argv) {
  using namespace gdedup;
  Options opts(argc, argv, "scale=<bytes multiplier, default 1>");
  const auto scale = static_cast<uint64_t>(opts.get_int("scale", 1));
  opts.check_unused();

  print_header("Figure 3 — local vs global deduplication ratio (%)",
               "Fig. 3, 4 nodes x 4 OSDs, per-OSD local vs 16-OSD global");
  print_note("datasets scaled: FIO 5GB->32MB, SFS 24GB->192MB, cloud 3.3TB->576MB");

  std::vector<Row> rows;
  rows.push_back(run_fio(0.5, scale * (32ull << 20), 101, 4.20, 50.02));
  rows.push_back(run_fio(0.8, scale * (32ull << 20), 102, 12.98, 80.01));
  rows.push_back(run_sfs(1, scale * (192ull << 20), 8.96, 35.96));
  rows.push_back(run_sfs(3, scale * (192ull << 20), 32.53, 80.60));
  rows.push_back(run_sfs(10, scale * (192ull << 20), 50.02, 92.73));
  rows.push_back(run_cloud(21.53, 44.80));

  std::printf("\n%-20s %12s %12s | %12s %12s\n", "workload", "local %",
              "global %", "paper local", "paper glob");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-20s %12.2f %12.2f | %12.2f %12.2f\n", r.name.c_str(),
                r.local_pct, r.global_pct, r.paper_local, r.paper_global);
  }
  std::printf("\nshape check: global >> local on every workload; FIO global"
              " tracks the knob;\nSFS/global grows with LOAD; cloud gap ~2x."
              "\n");
  return 0;
}
