// Component microbenchmarks (google-benchmark): the building blocks whose
// calibrated costs drive the simulator — fingerprint hashing, rolling
// hash, chunking (fixed vs CDC — the Section 5 trade-off), LZ codec,
// Reed-Solomon, CRUSH selection, bloom filters, chunk-map codec — plus a
// double-hashing-vs-fingerprint-index lookup comparison.
//
// Extra modes (bypass google-benchmark):
//   --pipeline_json=PATH  run the content-pipeline suite (live vs frozen
//                         seed reference implementations) and write the
//                         BENCH_PIPELINE.json trajectory point to PATH
//   --smoke               same suite with tiny inputs/durations; used by
//                         the `bench_smoke` ctest to exercise the harness

#include <benchmark/benchmark.h>

#include <cstring>
#include <string_view>
#include <unordered_map>

#include "bench_util.h"
#include "cluster/crush.h"
#include "common/bloom_filter.h"
#include "common/buffer.h"
#include "common/crc32.h"
#include "common/random.h"
#include "compress/lz.h"
#include "dedup/chunk_map.h"
#include "dedup/chunker.h"
#include "dedup/fingerprint_cache.h"
#include "ec/reed_solomon.h"
#include "hash/fingerprint.h"
#include "hash/rabin.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "reference_impls.h"
#include "sim_e2e_scenario.h"
#include "workload/content.h"

namespace gdedup {
namespace {

Buffer test_data(size_t n, double compressible = 0.0) {
  return workload::BlockContent::make(0xbead, n, compressible);
}

void BM_Sha256(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::of(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(32768)->Arg(131072);

void BM_Sha1(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::of(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(32768);

void BM_Crc32c(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(32768);

void BM_RabinRoll(benchmark::State& state) {
  Buffer data = test_data(1 << 16);
  RabinRolling rh;
  for (auto _ : state) {
    uint64_t h = 0;
    for (uint8_t b : data.span()) h = rh.roll(b);
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RabinRoll);

void BM_FixedChunking(benchmark::State& state) {
  Buffer data = test_data(4 << 20);
  FixedChunker c(32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking);

void BM_CdcChunking(benchmark::State& state) {
  // The CPU cost the paper cites for rejecting CDC on the data path.
  Buffer data = test_data(4 << 20);
  CdcChunker c(8192, 32768, 131072);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcChunking);

void BM_LzCompress(benchmark::State& state) {
  Buffer data = test_data(32 * 1024, static_cast<double>(state.range(0)) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::compress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzCompress)->Arg(0)->Arg(50)->Arg(90);

void BM_LzDecompress(benchmark::State& state) {
  Buffer comp = LzCodec::compress(test_data(32 * 1024, 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::decompress(comp));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LzDecompress);

void BM_RsEncode(benchmark::State& state) {
  ReedSolomon rs(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1)));
  Buffer data = test_data(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RsEncode)->Args({2, 1})->Args({4, 2})->Args({6, 3});

void BM_RsReconstruct(benchmark::State& state) {
  ReedSolomon rs(4, 2);
  Buffer data = test_data(1 << 20);
  auto shards = rs.encode(data);
  for (auto _ : state) {
    std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
    opt[0].reset();
    opt[3].reset();
    benchmark::DoNotOptimize(rs.reconstruct(opt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RsReconstruct);

void BM_CrushSelect(benchmark::State& state) {
  CrushMap m;
  for (int i = 0; i < static_cast<int>(state.range(0)); i++) {
    m.add_device(i, i / 4);
  }
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.select(x++, 3));
  }
}
BENCHMARK(BM_CrushSelect)->Arg(16)->Arg(64)->Arg(256);

void BM_BloomInsertQuery(benchmark::State& state) {
  BloomFilter bf(100000, 0.01);
  uint64_t k = 0;
  for (auto _ : state) {
    bf.insert(k);
    benchmark::DoNotOptimize(bf.maybe_contains(k ^ 1));
    k++;
  }
}
BENCHMARK(BM_BloomInsertQuery);

void BM_ChunkMapCodec(benchmark::State& state) {
  ChunkMap cm;
  const int entries = static_cast<int>(state.range(0));
  const std::string fp =
      Fingerprint::compute(FingerprintAlgo::kSha256,
                           test_data(64).span())
          .hex();
  for (int i = 0; i < entries; i++) {
    ChunkMapEntry& e = cm.obtain(static_cast<uint64_t>(i) * 32768, 32768);
    e.chunk_id = fp;
    e.cached = (i % 2) == 0;
  }
  for (auto _ : state) {
    Buffer enc = cm.encode();
    benchmark::DoNotOptimize(ChunkMap::decode(enc));
  }
}
BENCHMARK(BM_ChunkMapCodec)->Arg(16)->Arg(128)->Arg(1024);

// Ablation: duplicate lookup via double hashing (placement function only,
// no index) vs a conventional in-memory fingerprint index.
void BM_LookupDoubleHashing(benchmark::State& state) {
  CrushMap m;
  for (int i = 0; i < 16; i++) m.add_device(i, i / 4);
  Buffer chunk = test_data(32 * 1024);
  for (auto _ : state) {
    // fingerprint -> OID -> placement; no table, scales with nothing.
    const Fingerprint fp =
        Fingerprint::compute(FingerprintAlgo::kSha256, chunk.span());
    benchmark::DoNotOptimize(m.select(fnv1a(fp.hex()), 2));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LookupDoubleHashing);

void BM_LookupFingerprintIndex(benchmark::State& state) {
  // Conventional design: fingerprint + probe of a (here: in-memory, in
  // reality memory-starved) index table.
  std::unordered_map<Fingerprint, uint64_t> index;
  Rng rng(5);
  for (int i = 0; i < static_cast<int>(state.range(0)); i++) {
    Buffer b(64);
    rng.fill(b.mutable_data(), b.size());
    index[Fingerprint::compute(FingerprintAlgo::kSha256, b.span())] =
        static_cast<uint64_t>(i);
  }
  Buffer chunk = test_data(32 * 1024);
  for (auto _ : state) {
    const Fingerprint fp =
        Fingerprint::compute(FingerprintAlgo::kSha256, chunk.span());
    benchmark::DoNotOptimize(index.find(fp));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LookupFingerprintIndex)->Arg(100000)->Arg(1000000);

// ------------------------------------------------- content-pipeline suite
//
// Measures the live implementations against the frozen seed copies in
// reference_impls.h, cross-checking outputs (digest / boundary mismatches
// abort), and writes a flat JSON document — the perf trajectory point.

int run_pipeline_suite(const std::string& json_path, bool smoke) {
  using bench::JsonWriter;
  using bench::WallTimer;
  using bench::measure_mbps;

  const double min_sec = smoke ? 0.02 : 0.25;
  const size_t hash_len = 32 * 1024;               // one chunk
  const size_t cdc_len = smoke ? (1 << 20) : (8 << 20);

  WallTimer total;
  JsonWriter j;
  j.add("schema", std::string("gdedup.bench_pipeline.v1"));
  j.add("mode", std::string(smoke ? "smoke" : "full"));

  Buffer hash_buf = test_data(hash_len);
  Buffer cdc_buf = test_data(cdc_len);

  // --- SHA-1 ---
  {
    const auto live = Sha1::of(hash_buf.span());
    const auto ref = bench::ref::Sha1::of(hash_buf.span());
    if (std::memcmp(live.data(), ref.data(), live.size()) != 0) {
      std::fprintf(stderr, "FATAL: sha1 fast path digest mismatch\n");
      return 1;
    }
    const double mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(Sha1::of(hash_buf.span())); },
        hash_len, min_sec);
    const double ref_mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(bench::ref::Sha1::of(hash_buf.span())); },
        hash_len, min_sec);
    j.add("sha1_mbps", mbps);
    j.add("sha1_ref_mbps", ref_mbps);
    j.add("sha1_speedup", mbps / ref_mbps);
  }

  // --- SHA-256 ---
  {
    const auto live = Sha256::of(hash_buf.span());
    const auto ref = bench::ref::Sha256::of(hash_buf.span());
    if (std::memcmp(live.data(), ref.data(), live.size()) != 0) {
      std::fprintf(stderr, "FATAL: sha256 fast path digest mismatch\n");
      return 1;
    }
    const double mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(Sha256::of(hash_buf.span())); },
        hash_len, min_sec);
    const double ref_mbps = measure_mbps(
        [&] {
          benchmark::DoNotOptimize(bench::ref::Sha256::of(hash_buf.span()));
        },
        hash_len, min_sec);
    j.add("sha256_mbps", mbps);
    j.add("sha256_ref_mbps", ref_mbps);
    j.add("sha256_speedup", mbps / ref_mbps);
  }

  // --- CRC32C ---
  {
    if (crc32c(hash_buf.span()) != bench::ref::crc32c_slice4(hash_buf.span())) {
      std::fprintf(stderr, "FATAL: crc32c fast path mismatch\n");
      return 1;
    }
    const double mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(crc32c(hash_buf.span())); }, hash_len,
        min_sec);
    const double ref_mbps = measure_mbps(
        [&] {
          benchmark::DoNotOptimize(bench::ref::crc32c_slice4(hash_buf.span()));
        },
        hash_len, min_sec);
    j.add("crc32c_mbps", mbps);
    j.add("crc32c_ref_mbps", ref_mbps);
    j.add("crc32c_speedup", mbps / ref_mbps);
  }

  // --- fixed chunking ---
  {
    FixedChunker c(32 * 1024);
    const double mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(c.split(cdc_buf)); }, cdc_len, min_sec);
    j.add("fixed_mbps", mbps);
  }

  // --- CDC chunking: fast split vs frozen seed split ---
  {
    CdcChunker c(8192, 32768, 131072);
    const auto fast = c.split(cdc_buf);
    const auto ref = bench::ref::cdc_split(cdc_buf, 8192, 32768, 131072);
    bool same = fast.size() == ref.size();
    for (size_t i = 0; same && i < fast.size(); i++) {
      same = fast[i].offset == ref[i].offset &&
             fast[i].data.size() == ref[i].data.size();
    }
    if (!same) {
      std::fprintf(stderr, "FATAL: cdc fast path boundary mismatch\n");
      return 1;
    }
    const double mbps = measure_mbps(
        [&] { benchmark::DoNotOptimize(c.split(cdc_buf)); }, cdc_len, min_sec);
    const double ref_mbps = measure_mbps(
        [&] {
          benchmark::DoNotOptimize(
              bench::ref::cdc_split(cdc_buf, 8192, 32768, 131072));
        },
        cdc_len, min_sec);
    j.add("cdc_mbps", mbps);
    j.add("cdc_ref_mbps", ref_mbps);
    j.add("cdc_speedup", mbps / ref_mbps);
  }

  // --- fingerprint memoization cache (COW identity) ---
  {
    FingerprintCache cache;
    const size_t nbufs = smoke ? 32 : 256;
    std::vector<Buffer> bufs;
    bufs.reserve(nbufs);
    for (size_t i = 0; i < nbufs; i++) {
      bufs.push_back(test_data(4096 + i));
    }
    // First pass misses and fills; second pass (same Buffers, unmutated)
    // must hit — the noop re-flush pattern.
    for (int pass = 0; pass < 2; pass++) {
      for (const Buffer& b : bufs) {
        const auto* hit = cache.find(b, FingerprintAlgo::kSha1);
        if (hit == nullptr) {
          cache.insert(b, FingerprintAlgo::kSha1,
                       Fingerprint::compute(FingerprintAlgo::kSha1, b.span()));
        }
      }
    }
    const double hit_rate =
        static_cast<double>(cache.hits()) / static_cast<double>(cache.lookups());
    if (cache.hits() != nbufs) {
      std::fprintf(stderr, "FATAL: fingerprint cache re-probe missed\n");
      return 1;
    }
    j.add("fp_cache_hit_rate", hit_rate);
  }

  // --- sim-e2e smoke digest: any exec-thread count must reproduce the
  //     frozen serial reference bit-for-bit ---
  {
    bench::SimE2eConfig cfg;
    cfg.image_bytes = 4ull << 20;
    cfg.preload_block = 64 * 1024;
    cfg.random_writes = 128;
    cfg.random_reads = 128;
    cfg.exec_threads = 0;  // ambient GDEDUP_EXEC_THREADS (default 1)
    const bench::SimE2eResult r = bench::run_sim_e2e(cfg);
    // Frozen from the serial (1-worker) run of this exact smoke scenario.
    // Re-frozen for the sharded event engine (receiver-sequenced rx +
    // global control lane; see tests/test_sim_determinism.cc).
    constexpr const char* kSerialSmokeDigest = "8a3248c7";
    if (r.digest != kSerialSmokeDigest) {
      std::fprintf(stderr,
                   "FATAL: sim-e2e smoke digest %s != frozen serial "
                   "reference %s (exec_threads=%d)\n",
                   r.digest.c_str(), kSerialSmokeDigest, r.exec_threads_used);
      return 1;
    }
    j.add("sim_e2e_smoke_digest", r.digest);
    j.add("sim_e2e_exec_threads", static_cast<double>(r.exec_threads_used));
    j.add("sim_e2e_kernel_jobs_offloaded",
          static_cast<double>(r.kernel_jobs_offloaded));
  }

  j.add("wall_sec", total.elapsed_sec());

  const std::string doc = j.str();
  std::fputs(doc.c_str(), stdout);
  if (!json_path.empty()) {
    if (!j.write_file(json_path)) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gdedup

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    const std::string_view a = argv[i];
    if (a.rfind("--pipeline_json=", 0) == 0) {
      json_path = std::string(a.substr(std::strlen("--pipeline_json=")));
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty() || smoke) {
    return gdedup::run_pipeline_suite(json_path, smoke);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
