// Component microbenchmarks (google-benchmark): the building blocks whose
// calibrated costs drive the simulator — fingerprint hashing, rolling
// hash, chunking (fixed vs CDC — the Section 5 trade-off), LZ codec,
// Reed-Solomon, CRUSH selection, bloom filters, chunk-map codec — plus a
// double-hashing-vs-fingerprint-index lookup comparison.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "cluster/crush.h"
#include "common/bloom_filter.h"
#include "common/buffer.h"
#include "common/crc32.h"
#include "common/random.h"
#include "compress/lz.h"
#include "dedup/chunk_map.h"
#include "dedup/chunker.h"
#include "ec/reed_solomon.h"
#include "hash/fingerprint.h"
#include "hash/rabin.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "workload/content.h"

namespace gdedup {
namespace {

Buffer test_data(size_t n, double compressible = 0.0) {
  return workload::BlockContent::make(0xbead, n, compressible);
}

void BM_Sha256(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::of(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(32768)->Arg(131072);

void BM_Sha1(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::of(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(32768);

void BM_Crc32c(benchmark::State& state) {
  Buffer data = test_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(32768);

void BM_RabinRoll(benchmark::State& state) {
  Buffer data = test_data(1 << 16);
  RabinRolling rh;
  for (auto _ : state) {
    uint64_t h = 0;
    for (uint8_t b : data.span()) h = rh.roll(b);
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RabinRoll);

void BM_FixedChunking(benchmark::State& state) {
  Buffer data = test_data(4 << 20);
  FixedChunker c(32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking);

void BM_CdcChunking(benchmark::State& state) {
  // The CPU cost the paper cites for rejecting CDC on the data path.
  Buffer data = test_data(4 << 20);
  CdcChunker c(8192, 32768, 131072);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcChunking);

void BM_LzCompress(benchmark::State& state) {
  Buffer data = test_data(32 * 1024, static_cast<double>(state.range(0)) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::compress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzCompress)->Arg(0)->Arg(50)->Arg(90);

void BM_LzDecompress(benchmark::State& state) {
  Buffer comp = LzCodec::compress(test_data(32 * 1024, 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::decompress(comp));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LzDecompress);

void BM_RsEncode(benchmark::State& state) {
  ReedSolomon rs(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1)));
  Buffer data = test_data(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RsEncode)->Args({2, 1})->Args({4, 2})->Args({6, 3});

void BM_RsReconstruct(benchmark::State& state) {
  ReedSolomon rs(4, 2);
  Buffer data = test_data(1 << 20);
  auto shards = rs.encode(data);
  for (auto _ : state) {
    std::vector<std::optional<Buffer>> opt(shards.begin(), shards.end());
    opt[0].reset();
    opt[3].reset();
    benchmark::DoNotOptimize(rs.reconstruct(opt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RsReconstruct);

void BM_CrushSelect(benchmark::State& state) {
  CrushMap m;
  for (int i = 0; i < static_cast<int>(state.range(0)); i++) {
    m.add_device(i, i / 4);
  }
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.select(x++, 3));
  }
}
BENCHMARK(BM_CrushSelect)->Arg(16)->Arg(64)->Arg(256);

void BM_BloomInsertQuery(benchmark::State& state) {
  BloomFilter bf(100000, 0.01);
  uint64_t k = 0;
  for (auto _ : state) {
    bf.insert(k);
    benchmark::DoNotOptimize(bf.maybe_contains(k ^ 1));
    k++;
  }
}
BENCHMARK(BM_BloomInsertQuery);

void BM_ChunkMapCodec(benchmark::State& state) {
  ChunkMap cm;
  const int entries = static_cast<int>(state.range(0));
  const std::string fp =
      Fingerprint::compute(FingerprintAlgo::kSha256,
                           test_data(64).span())
          .hex();
  for (int i = 0; i < entries; i++) {
    ChunkMapEntry& e = cm.obtain(static_cast<uint64_t>(i) * 32768, 32768);
    e.chunk_id = fp;
    e.cached = (i % 2) == 0;
  }
  for (auto _ : state) {
    Buffer enc = cm.encode();
    benchmark::DoNotOptimize(ChunkMap::decode(enc));
  }
}
BENCHMARK(BM_ChunkMapCodec)->Arg(16)->Arg(128)->Arg(1024);

// Ablation: duplicate lookup via double hashing (placement function only,
// no index) vs a conventional in-memory fingerprint index.
void BM_LookupDoubleHashing(benchmark::State& state) {
  CrushMap m;
  for (int i = 0; i < 16; i++) m.add_device(i, i / 4);
  Buffer chunk = test_data(32 * 1024);
  for (auto _ : state) {
    // fingerprint -> OID -> placement; no table, scales with nothing.
    const Fingerprint fp =
        Fingerprint::compute(FingerprintAlgo::kSha256, chunk.span());
    benchmark::DoNotOptimize(m.select(fnv1a(fp.hex()), 2));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LookupDoubleHashing);

void BM_LookupFingerprintIndex(benchmark::State& state) {
  // Conventional design: fingerprint + probe of a (here: in-memory, in
  // reality memory-starved) index table.
  std::unordered_map<Fingerprint, uint64_t> index;
  Rng rng(5);
  for (int i = 0; i < static_cast<int>(state.range(0)); i++) {
    Buffer b(64);
    rng.fill(b.mutable_data(), b.size());
    index[Fingerprint::compute(FingerprintAlgo::kSha256, b.span())] =
        static_cast<uint64_t>(i);
  }
  Buffer chunk = test_data(32 * 1024);
  for (auto _ : state) {
    const Fingerprint fp =
        Fingerprint::compute(FingerprintAlgo::kSha256, chunk.span());
    benchmark::DoNotOptimize(index.find(fp));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_LookupFingerprintIndex)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace gdedup

BENCHMARK_MAIN();
