// Figure 10: 8KB random write / read latency and storage-node CPU usage
// for the four configurations:
//   Original        — stock cluster, no dedup
//   Proposed        — post-processing dedup with rate control (data
//                     flushed to the chunk pool before the measurement)
//   Proposed-flush  — everything written straight to the chunk pool
//                     (inline processing)
//   Proposed-cache  — data resident in the metadata pool (cached)
//
// FIO shape: 4 threads x iodepth 4 (depth 16), single client.

#include "bench_util.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;
constexpr uint64_t kVolume = 64ull << 20;

enum class Config { kOriginal, kProposed, kProposedFlush, kProposedCache };

const char* config_name(Config c) {
  switch (c) {
    case Config::kOriginal:
      return "Original";
    case Config::kProposed:
      return "Proposed";
    case Config::kProposedFlush:
      return "Proposed-flush";
    case Config::kProposedCache:
      return "Proposed-cache";
  }
  return "?";
}

struct Outcome {
  double write_ms;
  double write_cpu;
  double read_ms;
  double read_cpu;
};

Outcome run_config(Config cfg, size_t ops_count) {
  Cluster c;
  const PoolId meta = c.create_replicated_pool("meta", 2);
  if (cfg != Config::kOriginal) {
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    if (cfg == Config::kProposedFlush) {
      t.mode = DedupMode::kInline;
    }
    if (cfg == Config::kProposedCache) {
      t.evict_after_flush = false;  // chunks stay cached in the meta pool
    }
    c.enable_dedup(meta, chunks, t);
  }
  RadosClient client(&c, c.client_node(0));
  BlockDevice bd(&client, meta, "vol", kVolume);

  workload::FioConfig pre;
  pre.total_bytes = kVolume;
  pre.block_size = kChunk;
  pre.dedupe_ratio = 0.0;
  pre.seed = 21;
  workload::FioGenerator gen(pre);
  preload_bdev(c, bd, gen);
  if (cfg == Config::kProposed || cfg == Config::kProposedCache) {
    c.drain_dedup();  // flush (and for kProposed, evict) everything
  }

  // 8KB random writes.
  auto wops = workload::make_random_ops(kVolume, 8192, ops_count,
                                        /*writes=*/true, 0.0, 22);
  auto wissue = make_bdev_issuer(c, bd, wops);
  const LoadResult w = run_closed_loop(c, wops.size(), /*depth=*/16, wissue);

  // Restore the "measured" state for reads: Proposed reads come from the
  // chunk pool, Proposed-cache from the metadata pool.
  if (cfg == Config::kProposed || cfg == Config::kProposedCache) {
    c.drain_dedup();
  }

  auto rops = workload::make_random_ops(kVolume, 8192, ops_count,
                                        /*writes=*/false, 0.0, 23);
  auto rissue = make_bdev_issuer(c, bd, rops);
  const LoadResult r = run_closed_loop(c, rops.size(), /*depth=*/16, rissue);

  print_obs_summary(c);
  return {w.mean_latency_ms(), w.cpu_util * 100.0, r.mean_latency_ms(),
          r.cpu_util * 100.0};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "ops=<op count per phase, default 2000>");
  const auto ops_count = static_cast<size_t>(opts.get_int("ops", 2000));
  opts.check_unused();

  print_header(
      "Figure 10 — 8KB random write/read latency and CPU usage",
      "Fig. 10: Proposed write +~20% latency / ~2x CPU vs Original; "
      "Proposed-flush worst; Proposed-cache ~= Original");

  std::printf("\n%-16s %12s %10s %12s %10s\n", "config", "wr lat ms",
              "wr CPU%", "rd lat ms", "rd CPU%");
  std::printf("%s\n", std::string(64, '-').c_str());
  Outcome base{};
  for (Config cfg : {Config::kOriginal, Config::kProposed,
                     Config::kProposedFlush, Config::kProposedCache}) {
    const Outcome o = run_config(cfg, ops_count);
    if (cfg == Config::kOriginal) base = o;
    std::printf("%-16s %12.3f %10.1f %12.3f %10.1f\n", config_name(cfg),
                o.write_ms, o.write_cpu, o.read_ms, o.read_cpu);
  }
  std::printf(
      "\nshape check vs Original (wr %.3fms / rd %.3fms): Proposed slightly"
      " higher,\nProposed-flush highest write latency, Proposed-cache "
      "closest to Original.\n",
      base.write_ms, base.read_ms);
  return 0;
}
