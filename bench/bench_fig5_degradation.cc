// Figure 5: the two failure modes that motivate the design.
//  (a) Inline dedup partial-write problem: 16KB foreground writes against
//      32KB chunks force a read-modify-write through the chunk pool.
//  (b) Post-processing interference: an uncontrolled background dedup
//      engine collapses foreground sequential-write throughput.

#include "bench_util.h"

using namespace gdedup;
using namespace gdedup::bench;

namespace {

constexpr uint32_t kChunk = 32 * 1024;

// --- (a) inline partial-write problem -----------------------------------

double partial_write_mbps(bool inline_dedup) {
  Cluster c;
  const PoolId meta = c.create_replicated_pool("meta", 2);
  PoolId chunks = -1;
  if (inline_dedup) {
    chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    t.mode = DedupMode::kInline;
    c.enable_dedup(meta, chunks, t);
  }
  RadosClient client(&c, c.client_node(0));
  BlockDevice bd(&client, meta, "vol", 64ull << 20);

  // Preload with whole 32KB chunks so every subsequent 16KB write is a
  // partial chunk update.
  workload::FioConfig pre;
  pre.total_bytes = 64ull << 20;
  pre.block_size = kChunk;
  pre.dedupe_ratio = 0.0;
  pre.seed = 11;
  workload::FioGenerator gen(pre);
  preload_bdev(c, bd, gen);

  // Foreground: sequential 16KB writes (the paper's Figure 5(a) setup).
  auto ops = workload::make_sequential_ops(64ull << 20, 16 * 1024, 3000,
                                           /*writes=*/true, 0.0, 12);
  auto issue = make_bdev_issuer(c, bd, ops);
  const LoadResult r = run_closed_loop(c, ops.size(), /*depth=*/4, issue);
  return r.mbps();
}

// --- (b) background interference ----------------------------------------

std::vector<double> interference_series(bool dedup, bool rate_control,
                                        SimTime duration) {
  ClusterConfig ccfg;
  // FileStore-era OSDs: journal + data double-write on the same SSD, which
  // is the regime the paper measured (Ceph 12 FileStore).  The cluster is
  // scaled to 2x2 OSDs to match the scaled traffic volume — on the full
  // 4x4 fabric the scaled-down dedup stream leaves too much slack to
  // reproduce the contention the paper measured at 10x the data rate.
  ccfg.ssd.journal_write_amplification = 2.0;
  ccfg.storage_nodes = 2;
  ccfg.osds_per_node = 2;
  Cluster c(ccfg);
  const PoolId meta = c.create_replicated_pool("meta", 2);
  if (dedup) {
    const PoolId chunks = c.create_replicated_pool("chunks", 2);
    auto t = bench_tier_config(kChunk);
    t.rate_control = rate_control;
    t.engine_tick = msec(10);
    t.max_dedup_per_tick = 1024;
    t.engine_parallelism = 16;
    t.hitcount_threshold = 1 << 30;  // isolate rate control from hotness
    c.enable_dedup(meta, chunks, t);
  }
  RadosClient client(&c, c.client_node(0));
  BlockDevice bd(&client, meta, "vol", 192ull << 20);

  // Content pool: bounded memory, bounded refcounts, still unique enough
  // that flushes do real chunk-pool work.
  // Fresh content per write: chunks are unique, so every background flush
  // moves real data into the chunk pool (dedup hits would degenerate into
  // cheap refcount updates and hide the interference).  Memory stays
  // bounded: overwrites replace extents in place and flushes evict them.
  const uint32_t bs = 256 * 1024;

  RateSeries series(kSecond);
  auto issue = [&](size_t idx, std::function<void(uint64_t)> done) {
    const uint64_t off = (static_cast<uint64_t>(idx) * bs) % (192ull << 20);
    Buffer content = workload::BlockContent::make(mix64(idx) | 1, bs);
    bd.write(off, std::move(content),
             [done = std::move(done), bs](Status) { done(bs); });
  };
  run_closed_loop_for(c, duration, /*depth=*/8, issue, &series);
  print_obs_summary(c);
  return series.rates();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "seconds=<fig5b duration, default 20>");
  const SimTime dur = sec(static_cast<double>(opts.get_int("seconds", 20)));
  opts.check_unused();

  print_header("Figure 5(a) — inline dedup partial-write problem",
               "Fig. 5(a): Original ~600+ MB/s vs Inline far lower at 16KB "
               "writes on 32KB chunks");
  const double orig = partial_write_mbps(false);
  const double inl = partial_write_mbps(true);
  std::printf("\n%-12s %14s\n", "config", "16KB-wr MB/s");
  std::printf("%s\n", std::string(28, '-').c_str());
  std::printf("%-12s %14.1f\n", "Original", orig);
  std::printf("%-12s %14.1f\n", "Inline", inl);
  std::printf("shape check: inline << original (paper shows ~600 vs "
              "low-hundreds).\n");

  print_header("Figure 5(b) — foreground interference, no rate control",
               "Fig. 5(b): sequential write drops from ~600 to ~200 MB/s "
               "while background dedup runs");
  auto ideal = interference_series(false, false, dur);
  auto nodedup_ctl = interference_series(true, false, dur);
  std::printf("\n%-6s %16s %22s\n", "t(s)", "no-dedup MB/s",
              "dedup-no-control MB/s");
  std::printf("%s\n", std::string(46, '-').c_str());
  size_t n = std::min(ideal.size(), nodedup_ctl.size());
  if (n > 1) n--;  // drop the partial trailing bucket
  double sum_ideal = 0, sum_nc = 0;
  for (size_t t = 0; t < n; t++) {
    std::printf("%-6zu %16.1f %22.1f\n", t, ideal[t] / 1e6,
                nodedup_ctl[t] / 1e6);
    sum_ideal += ideal[t];
    sum_nc += nodedup_ctl[t];
  }
  std::printf("\nmean: ideal %.1f MB/s, uncontrolled dedup %.1f MB/s "
              "(paper: ~600 -> ~200)\n",
              sum_ideal / n / 1e6, sum_nc / n / 1e6);
  return 0;
}
