#pragma once

// End-to-end simulation-core scenario shared by bench_sim_e2e and the
// determinism ctest.
//
// Drives a dedup-enabled cluster through the three phases every experiment
// in bench/ is built from — sequential preload, random small-block
// overwrites, background dedup drain, random reads — and folds every
// virtual-time observable into a determinism digest: the per-op latency
// stream in completion order, then the final stats counters (OSD, tier,
// pool, network, clock).  Two builds that produce the same digest took
// bit-identical virtual-time trajectories, so the digest is the contract
// the simulation-core fast path must preserve while making the wall clock
// faster.

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "bench_util.h"
#include "common/crc32.h"
#include "obs/timeseries.h"
#include "rados/sync.h"
#include "workload/fio_gen.h"

namespace gdedup::bench {

// Rolling CRC32C over a stream of 64-bit observables.  CRC is enough: the
// goal is drift *detection* across builds of the same code base, not
// adversarial collision resistance.
class DeterminismDigest {
 public:
  void u64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; i++) b[i] = static_cast<uint8_t>(v >> (8 * i));
    crc_ = crc32c({b, sizeof(b)}, crc_);
    count_++;
  }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

  uint64_t samples() const { return count_; }

  std::string hex() const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc_);
    return buf;
  }

 private:
  uint32_t crc_ = 0;
  uint64_t count_ = 0;
};

struct SimE2eConfig {
  int storage_nodes = 4;
  int osds_per_node = 4;
  int client_nodes = 3;
  uint64_t seed = 1;

  uint64_t image_bytes = 256ull << 20;  // sequentially preloaded span
  uint32_t object_size = 4u << 20;      // RADOS object striping
  uint32_t preload_block = 32 * 1024;   // sequential write size
  uint32_t small_block = 8 * 1024;      // random overwrite size
  size_t random_writes = 16384;
  size_t random_reads = 16384;
  int depth = 16;              // closed-loop outstanding ops
  double dedupe = 0.5;         // duplicate fraction of generated content
  uint32_t chunk_size = 32 * 1024;

  // Exec-pool worker threads for the real-byte kernels.  0 = inherit
  // GDEDUP_EXEC_THREADS (default 1 = serial).  The digest is the same for
  // every value — that is the point of the determinism tests.
  int exec_threads = 0;
  // Event-engine shards.  0 = inherit GDEDUP_SIM_SHARDS (default 1).  The
  // digest is the same for every value — enforced by test_sim_shards.
  int sim_shards = 0;
  // EC(2,1) base + chunk pools instead of 2x replicated: exercises the
  // ReedSolomon encode/decode kernels on the client and flush paths.
  bool ec = false;
  // Two-tier fingerprint fast path.  -1 = inherit GDEDUP_FP_FASTPATH
  // (default on), 0 = force off, 1 = force on.  The digest is the same
  // for every value — the fast path changes host-side work only.
  int fp_fastpath = -1;
  // Recipe-chunk metadata dedup.  -1 = inherit GDEDUP_RECIPE_DEDUP
  // (default off), 0 = force off, 1 = force on.  Unlike the knobs above
  // this changes on-disk layout and chunk traffic, so each state has its
  // own digest; either state is shard/thread-count invariant.
  int recipe_dedup = -1;
  // Telemetry sampling cadence (0 = off).  Sampling is reported, never
  // digested: the digest is byte-identical with any value here — enforced
  // by test_telemetry.
  SimTime telemetry = 0;
};

struct SimE2eResult {
  uint64_t sim_bytes = 0;   // client payload bytes moved across all phases
  uint64_t ops = 0;         // client ops completed
  SimTime sim_duration = 0; // virtual time consumed end to end
  uint64_t events = 0;      // scheduler events executed
  bool drained = true;      // dedup backlog fully flushed
  std::string digest;       // determinism digest (latencies + counters)
  uint64_t digest_samples = 0;

  double phase_write_mbps = 0;  // virtual-time MB/s, sanity only
  double phase_read_mbps = 0;

  // Event-engine internals (Scheduler::stats(); reported, never digested).
  int sim_shards_used = 1;
  Scheduler::Stats sim;

  // Host-side exec-pool accounting (never digested: wall-clock only).
  int exec_threads_used = 1;
  uint64_t kernel_jobs_offloaded = 0;  // ran on a worker thread
  struct KernelBreakdown {
    const char* name;
    uint64_t jobs;
    uint64_t busy_ns;
  };
  std::vector<KernelBreakdown> kernels;  // per-kernel host wall time

  // Two-tier fingerprint fast path + chunk-map metadata accounting
  // (host-side observability; never digested).
  bool fp_fastpath_used = false;
  uint64_t sha_computed = 0;
  uint64_t sha_avoided = 0;
  uint64_t weak_hash_hits = 0;
  uint64_t weak_collisions = 0;
  uint64_t bloom_negative_hits = 0;
  uint64_t fingerprint_cache_hits = 0;
  uint64_t meta_bytes_read = 0;
  uint64_t meta_bytes_written = 0;
  uint64_t refs_decodes = 0;
  uint64_t refs_cache_hits = 0;

  // Telemetry engine accounting (reported, never digested).
  uint64_t telemetry_ticks = 0;

  // Share of fingerprint requests answered without running the full SHA
  // (memo + verified index hits over all requests).
  double sha_avoided_ratio() const {
    const uint64_t total = sha_computed + sha_avoided + fingerprint_cache_hits;
    if (total == 0) return 0.0;
    return static_cast<double>(sha_avoided + fingerprint_cache_hits) /
           static_cast<double>(total);
  }
  // Chunk-map metadata bytes read per client payload byte moved.
  double meta_read_amp() const {
    if (sim_bytes == 0) return 0.0;
    return static_cast<double>(meta_bytes_read) /
           static_cast<double>(sim_bytes);
  }
};

// Wrap an issuer so each completion folds its latency into the digest.
inline IssueFn digesting_issuer(Cluster& c, IssueFn inner,
                                DeterminismDigest* dig) {
  return [&c, inner = std::move(inner), dig](
             size_t idx, std::function<void(uint64_t)> done) {
    const SimTime issued = c.sched().now();
    inner(idx, [&c, dig, issued, done = std::move(done)](uint64_t bytes) {
      dig->i64(c.sched().now() - issued);
      done(bytes);
    });
  };
}

inline void digest_final_state(Cluster& c, PoolId base_pool, PoolId chunk_pool,
                               DeterminismDigest* dig) {
  OsdStats osd_agg;
  for (Osd* o : c.osds()) {
    const OsdStats& s = o->stats();
    osd_agg.client_ops += s.client_ops;
    osd_agg.reads += s.reads;
    osd_agg.writes += s.writes;
    osd_agg.sub_writes += s.sub_writes;
    osd_agg.chunk_puts += s.chunk_puts;
    osd_agg.chunk_created += s.chunk_created;
    osd_agg.chunk_dedup_hits += s.chunk_dedup_hits;
    osd_agg.chunk_derefs += s.chunk_derefs;
    osd_agg.chunks_reclaimed += s.chunks_reclaimed;
    osd_agg.pulls += s.pulls;
    osd_agg.pushes += s.pushes;
  }
  dig->u64(osd_agg.client_ops);
  dig->u64(osd_agg.reads);
  dig->u64(osd_agg.writes);
  dig->u64(osd_agg.sub_writes);
  dig->u64(osd_agg.chunk_puts);
  dig->u64(osd_agg.chunk_created);
  dig->u64(osd_agg.chunk_dedup_hits);
  dig->u64(osd_agg.chunk_derefs);
  dig->u64(osd_agg.chunks_reclaimed);
  dig->u64(osd_agg.pulls);
  dig->u64(osd_agg.pushes);

  const DedupTierStats t = c.tier_stats(base_pool);
  dig->u64(t.writes);
  dig->u64(t.reads);
  dig->u64(t.removes);
  dig->u64(t.prereads);
  dig->u64(t.flush_merges);
  dig->u64(t.cached_read_chunks);
  dig->u64(t.redirected_read_chunks);
  dig->u64(t.chunks_flushed);
  dig->u64(t.flush_bytes);
  dig->u64(t.noop_flushes);
  dig->u64(t.derefs);
  dig->u64(t.evictions);
  dig->u64(t.capacity_evictions);
  dig->u64(t.promotions);
  dig->u64(t.hot_skips);
  dig->u64(t.racy_flushes);
  dig->u64(t.fingerprint_cache_hits);

  for (PoolId p : {base_pool, chunk_pool}) {
    const ObjectStore::Stats s = c.pool_stats(p);
    dig->u64(s.objects);
    dig->u64(s.logical_bytes);
    dig->u64(s.stored_data_bytes);
    dig->u64(s.xattr_bytes);
    dig->u64(s.omap_bytes);
    dig->u64(s.physical_bytes);
  }

  dig->u64(c.net().total_bytes_sent());
  dig->i64(c.sched().now());
}

// Run the canonical write -> flush -> read scenario for `cfg`.
inline SimE2eResult run_sim_e2e(const SimE2eConfig& cfg) {
  ClusterConfig cc;
  cc.storage_nodes = cfg.storage_nodes;
  cc.osds_per_node = cfg.osds_per_node;
  cc.client_nodes = cfg.client_nodes;
  cc.exec_threads = cfg.exec_threads;
  cc.sim_shards = cfg.sim_shards;
  cc.fp_fastpath = cfg.fp_fastpath;
  cc.recipe_dedup = cfg.recipe_dedup;
  Cluster c(cc);

  const PoolId base = cfg.ec ? c.create_ec_pool("base", 2, 1)
                             : c.create_replicated_pool("base", 2);
  const PoolId chunks = cfg.ec ? c.create_ec_pool("chunks", 2, 1)
                               : c.create_replicated_pool("chunks", 2);
  c.enable_dedup(base, chunks, bench_tier_config(cfg.chunk_size));

  RadosClient client(&c, c.client_node(0));
  BlockDevice bdev(&client, base, "e2e-image", cfg.image_bytes,
                   cfg.object_size);

  DeterminismDigest dig;
  SimE2eResult res;
  const SimTime t0 = c.sched().now();

  // Optional telemetry sampling riding along on the control lane.  The
  // digest below must not move by a single byte whether this runs or not.
  std::unique_ptr<obs::TelemetryEngine> telemetry;
  if (cfg.telemetry > 0) {
    obs::TelemetryConfig tc;
    tc.interval = cfg.telemetry;
    telemetry = std::make_unique<obs::TelemetryEngine>(
        &c.sched(), c.perf_registry(), tc);
    telemetry->add_default_series();
    telemetry->set_presample([&c](SimTime) { c.sync_telemetry_gauges(); });
    telemetry->start();
  }

  // Phase 1: sequential preload (dedupe-laden content, fio semantics).
  workload::FioConfig fio;
  fio.total_bytes = cfg.image_bytes;
  fio.block_size = cfg.preload_block;
  fio.dedupe_ratio = cfg.dedupe;
  fio.seed = cfg.seed;
  workload::FioGenerator gen(fio);
  {
    const uint32_t bs = gen.block_size();
    LoadResult r = run_closed_loop(
        c, gen.num_blocks(), cfg.depth,
        digesting_issuer(
            c,
            [&](size_t idx, std::function<void(uint64_t)> done) {
              bdev.write(static_cast<uint64_t>(idx) * bs, gen.block(idx),
                         [done = std::move(done), bs](Status) { done(bs); });
            },
            &dig));
    res.sim_bytes += r.bytes;
    res.ops += r.ops;
    res.phase_write_mbps = r.mbps();
  }

  // Phase 2: random small-block overwrites.
  {
    auto ops = workload::make_random_ops(cfg.image_bytes, cfg.small_block,
                                         cfg.random_writes, /*writes=*/true,
                                         cfg.dedupe, cfg.seed ^ 0x5EED);
    LoadResult r = run_closed_loop(
        c, ops.size(), cfg.depth,
        digesting_issuer(c, make_bdev_issuer(c, bdev, ops), &dig));
    res.sim_bytes += r.bytes;
    res.ops += r.ops;
  }

  // Phase 3: drain the dedup backlog (flush + chunk-pool traffic).
  res.drained = c.drain_dedup();

  // Phase 4: random reads over the deduplicated image.
  {
    auto ops = workload::make_random_ops(cfg.image_bytes, cfg.small_block,
                                         cfg.random_reads, /*writes=*/false,
                                         0.0, cfg.seed ^ 0xBEEF);
    LoadResult r = run_closed_loop(
        c, ops.size(), cfg.depth,
        digesting_issuer(c, make_bdev_issuer(c, bdev, ops), &dig));
    res.sim_bytes += r.bytes;
    res.ops += r.ops;
    res.phase_read_mbps = r.mbps();
  }

  if (telemetry) {
    telemetry->stop();
    res.telemetry_ticks = telemetry->ticks();
  }

  digest_final_state(c, base, chunks, &dig);
  res.sim_duration = c.sched().now() - t0;
  res.events = c.sched().events_executed();
  res.digest = dig.hex();
  res.digest_samples = dig.samples();
  res.sim_shards_used = c.sched().shards();
  res.sim = c.sched().stats();

  ExecPool* xp = c.exec_pool();
  res.exec_threads_used = xp->threads();
  res.kernel_jobs_offloaded = xp->jobs_offloaded();
  for (int k = 0; k < static_cast<int>(Kernel::kCount); k++) {
    const auto s = xp->kernel_stats(static_cast<Kernel>(k));
    if (s.jobs == 0) continue;
    res.kernels.push_back({kernel_name(static_cast<Kernel>(k)), s.jobs,
                           s.busy_ns});
  }

  res.fp_fastpath_used = c.fp_fastpath();
  const DedupTierStats ts = c.tier_stats(base);
  res.sha_computed = ts.sha_computed;
  res.sha_avoided = ts.sha_avoided;
  res.weak_hash_hits = ts.weak_hash_hits;
  res.weak_collisions = ts.weak_collisions;
  res.bloom_negative_hits = ts.bloom_negative_hits;
  res.fingerprint_cache_hits = ts.fingerprint_cache_hits;
  for (Osd* o : c.osds()) {
    const OsdStats& s = o->stats();
    res.meta_bytes_read += s.meta_bytes_read;
    res.meta_bytes_written += s.meta_bytes_written;
    res.refs_decodes += s.refs_decodes;
    res.refs_cache_hits += s.refs_cache_hits;
  }
  return res;
}

}  // namespace gdedup::bench
