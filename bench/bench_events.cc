// Raw event-engine throughput microbenchmark (hold model).
//
// Measures the scheduler's hot loop in isolation from the storage stack,
// at three layers:
//
//   heap_reference  — the pre-sharded engine's core structure, a
//                     std::priority_queue over (t, seq), driven through
//                     the same hold-model workload.  This is the "before"
//                     point: it is measured fresh every run so the
//                     comparison is same-host, same-load.
//   calendar        — CalendarQueue + EventArena, the sharded engine's
//                     per-shard structure.  The "after" point; speedup =
//                     calendar / heap is the data-structure win.
//   scheduler       — the full Scheduler dispatch loop (std::function
//                     callbacks, cancel filtering, window pump) with
//                     self-rescheduling events, i.e. what the simulation
//                     actually pays per event.
//
// Hold model: a fixed population of pending events; each pop schedules one
// replacement at t + delay, with delays drawn from the mix the cluster
// produces (dense device-service times, occasional long timer gaps, and
// same-timestamp bursts).  Deterministic seeds; throughput is events/sec
// of wall time.
//
//   --json=PATH   write the BENCH_EVENTS.json trajectory point
//   --smoke       tiny population/op count + structural checks (ctest)

#include <cstdio>
#include <cstring>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "sim/calendar_queue.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace gdedup::bench {
namespace {

struct HoldParams {
  size_t population = 32768;   // pending events held in the queue
  uint64_t ops = 4'000'000;    // pop+reinsert pairs measured
  uint64_t seed = 1;
};

// Delay distribution shared by every variant: mostly tight near-time gaps
// (device completions, network hops), a slice of exact ties (batch
// dispatch), and a sparse far tail (engine ticks, client timeouts).
inline SimTime next_delay(Rng& rng) {
  const double shape = rng.uniform01();
  if (shape < 0.10) return 0;  // same-timestamp burst member
  if (shape < 0.90) return static_cast<SimTime>(rng.between(200, 50'000));
  if (shape < 0.99) return static_cast<SimTime>(rng.below(2 * kMillisecond));
  return static_cast<SimTime>(rng.below(100 * kMillisecond));
}

// "Before": binary heap over (t, seq) — the exact core of the pre-sharded
// scheduler's pending set.
double run_heap(const HoldParams& p, uint64_t* checksum) {
  Rng rng(p.seed);
  using Ev = std::pair<SimTime, uint64_t>;
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> q;
  uint64_t seq = 1;
  for (size_t i = 0; i < p.population; i++) {
    q.push({next_delay(rng), seq++});
  }
  uint64_t sum = 0;
  WallTimer t;
  for (uint64_t i = 0; i < p.ops; i++) {
    const Ev e = q.top();
    q.pop();
    sum += static_cast<uint64_t>(e.first);
    q.push({e.first + next_delay(rng), seq++});
  }
  const double sec = t.elapsed_sec();
  *checksum = sum;
  return static_cast<double>(p.ops) / sec;
}

// "After": the calendar queue + slab arena, same workload.
double run_calendar(const HoldParams& p, uint64_t* checksum) {
  Rng rng(p.seed);
  EventArena arena;
  CalendarQueue q(&arena);
  uint64_t seq = 1;
  for (size_t i = 0; i < p.population; i++) {
    q.insert(arena.make(next_delay(rng), seq++));
  }
  uint64_t sum = 0;
  WallTimer t;
  for (uint64_t i = 0; i < p.ops; i++) {
    EventNode* n = q.pop_min();
    const SimTime at = n->t;
    sum += static_cast<uint64_t>(at);
    arena.destroy(n);
    q.insert(arena.make(at + next_delay(rng), seq++));
  }
  const double sec = t.elapsed_sec();
  *checksum = sum;
  return static_cast<double>(p.ops) / sec;
}

// Full dispatch loop: self-rescheduling std::function events through
// Scheduler::run_until, including the window pump and stats accounting.
double run_scheduler(const HoldParams& p, uint64_t* executed) {
  Scheduler sched(1);
  sched.set_lookahead(50 * kMicrosecond);
  Rng rng(p.seed);
  uint64_t budget = p.ops;
  std::function<void()> tick = [&] {
    if (budget == 0) return;
    budget--;
    sched.after(next_delay(rng), tick);
  };
  // Seed the population; each execution with budget left reschedules one
  // replacement, so executed == population + ops when the queue drains.
  for (size_t i = 0; i < p.population; i++) {
    sched.after(next_delay(rng), tick);
  }
  WallTimer t;
  sched.run();
  const double sec = t.elapsed_sec();
  *executed = sched.events_executed();
  return static_cast<double>(*executed) / sec;
}

int run(const HoldParams& p, const std::string& json_path, bool smoke) {
  if (!smoke) {
    print_header("Event-engine hold-model microbenchmark",
                 "raw scheduler throughput behind every simulated second");
  }

  uint64_t heap_sum = 0, cal_sum = 0, executed = 0;
  const double heap_eps = run_heap(p, &heap_sum);
  const double cal_eps = run_calendar(p, &cal_sum);
  const double sched_eps = run_scheduler(p, &executed);

  // The two structures ran the identical workload: same seed, same delay
  // stream, so the popped-time checksums must agree exactly.  This is the
  // in-bench ordering cross-check (test_calendar_queue is the exhaustive
  // one).
  if (heap_sum != cal_sum) {
    std::fprintf(stderr,
                 "FATAL: calendar/heap popped-time checksum mismatch "
                 "(%llu vs %llu) — pop order diverged\n",
                 static_cast<unsigned long long>(cal_sum),
                 static_cast<unsigned long long>(heap_sum));
    return 1;
  }
  if (executed != p.ops + p.population) {
    std::fprintf(stderr, "FATAL: scheduler executed %llu of %llu events\n",
                 static_cast<unsigned long long>(executed),
                 static_cast<unsigned long long>(p.ops + p.population));
    return 1;
  }

  const double speedup = cal_eps / heap_eps;
  std::printf("hold model: %zu pending, %llu ops, seed %llu\n", p.population,
              static_cast<unsigned long long>(p.ops),
              static_cast<unsigned long long>(p.seed));
  std::printf("  heap reference  : %8.2fM events/s  (pre-sharded engine core)\n",
              heap_eps / 1e6);
  std::printf("  calendar+arena  : %8.2fM events/s  (%.2fx vs heap)\n",
              cal_eps / 1e6, speedup);
  std::printf("  full scheduler  : %8.2fM events/s  (dispatch + window pump)\n",
              sched_eps / 1e6);

  if (!json_path.empty()) {
    JsonWriter jw;
    jw.add("bench", std::string("events"));
    jw.add("scenario", std::string("hold_model"));
    jw.add("population", static_cast<double>(p.population));
    jw.add("ops", static_cast<double>(p.ops));
    jw.add("heap_events_per_sec", heap_eps);
    jw.add("calendar_events_per_sec", cal_eps);
    jw.add("calendar_speedup_vs_heap", speedup);
    jw.add("scheduler_events_per_sec", sched_eps);
    if (!jw.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("trajectory point written to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gdedup::bench

int main(int argc, char** argv) {
  gdedup::bench::HoldParams p;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  if (smoke) {
    p.population = 1024;
    p.ops = 50'000;
  }
  return gdedup::bench::run(p, json_path, smoke);
}
