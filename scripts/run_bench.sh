#!/usr/bin/env bash
# Build Release and record the content-pipeline perf trajectory point.
#
# Usage: scripts/run_bench.sh [output.json]
#
# Writes BENCH_PIPELINE.json (MB/s for sha1/sha256/crc32c/fixed/cdc, each
# with its frozen-seed reference and speedup, the fingerprint-cache hit
# rate, and the suite's wall time).  The suite cross-checks fast-path
# digests and chunk boundaries against the reference implementations and
# fails loudly on any mismatch.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${1:-${repo_root}/BENCH_PIPELINE.json}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_components

"${build_dir}/bench/bench_micro_components" --pipeline_json="${out_json}"

echo "perf trajectory point recorded at ${out_json}"
