#!/usr/bin/env bash
# Build Release and record the perf trajectory points: the content-pipeline
# microbenchmark suite (BENCH_PIPELINE.json), the end-to-end simulation
# bench (BENCH_SIM.json), the event-engine bench (BENCH_EVENTS.json), the
# two-tier fingerprint lookup bench (BENCH_FP.json), the restore bench
# (BENCH_RESTORE.json), the long-horizon churn + telemetry bench
# (BENCH_CHURN.json + BENCH_CHURN_TIMELINE.{jsonl,csv}) and the recipe
# metadata-dedup bench (BENCH_META.json), then append one
# timestamped line per point to BENCH_HISTORY.jsonl so the trajectory is a
# log, not just a latest-wins snapshot.
#
# Usage: scripts/run_bench.sh [output.json]
#
# GDEDUP_EXEC_THREADS selects the exec-pool worker count for the sim bench;
# the determinism digest is asserted against the frozen serial reference
# either way.
#
# Writes BENCH_PIPELINE.json (MB/s for sha1/sha256/crc32c/fixed/cdc, each
# with its frozen-seed reference and speedup, the fingerprint-cache hit
# rate, and the suite's wall time).  The suite cross-checks fast-path
# digests and chunk boundaries against the reference implementations and
# fails loudly on any mismatch.
#
# Afterwards a perf_dump run distills the observability layer into an
# "obs" section that is merged additively into BENCH_PIPELINE.json and
# BENCH_SIM.json — existing keys are never modified, so the pipeline /
# sim schemas stay intact while the trajectory gains counter coverage
# (entity and counter totals, op trace completeness, tier latency p99s).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${1:-${repo_root}/BENCH_PIPELINE.json}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" \
  --target bench_micro_components bench_sim_e2e bench_events \
  bench_fp_lookup bench_restore bench_churn bench_meta perf_dump

"${build_dir}/bench/bench_micro_components" --pipeline_json="${out_json}"

echo "perf trajectory point recorded at ${out_json}"

sim_json="${repo_root}/BENCH_SIM.json"
"${build_dir}/bench/bench_sim_e2e" --json="${sim_json}"

echo "sim trajectory point recorded at ${sim_json}"

# Raw event-engine throughput: the heap_events_per_sec key is the pre-
# sharded engine's core structure measured fresh on this host (the
# "before" point), calendar_events_per_sec is the current engine's.
events_json="${repo_root}/BENCH_EVENTS.json"
"${build_dir}/bench/bench_events" --json="${events_json}"

echo "event-engine trajectory point recorded at ${events_json}"

# Two-tier fingerprint lookup: weak-hash vs SHA-first raw throughput, the
# fused-chunking overhead and the zipf hit-rate sweep over the node-local
# fingerprint index.
fp_json="${repo_root}/BENCH_FP.json"
"${build_dir}/bench/bench_fp_lookup" --json="${fp_json}"

echo "fingerprint fast-path trajectory point recorded at ${fp_json}"

# Restore throughput vs dedup ratio: the fragmented baseline against the
# selective-rewrite path, plus the assembly-cache digest-neutrality check.
restore_json="${repo_root}/BENCH_RESTORE.json"
"${build_dir}/bench/bench_restore" --json="${restore_json}"

echo "restore trajectory point recorded at ${restore_json}"

# Long-horizon churn under the telemetry engine + watchdogs: ~half a
# virtual hour of multi-tenant overwrite/delete storms, exporting the
# per-virtual-second timeline (JSONL + CSV) alongside the summary point.
# GDEDUP_CHURN_HOURS scales the steady phases (0.25 => 2 x 450 s).
churn_json="${repo_root}/BENCH_CHURN.json"
churn_timeline="${repo_root}/BENCH_CHURN_TIMELINE"
"${build_dir}/bench/bench_churn" --hours="${GDEDUP_CHURN_HOURS:-0.25}" \
  --json="${churn_json}" --timeline="${churn_timeline}"

echo "churn trajectory point recorded at ${churn_json}"

# Recipe metadata dedup: packed-codec footprint, the >= 4x metadata-bytes
# reduction gate on the churned multi-tenant fleet, omap txn counts and
# the recipe-mode determinism digest.
meta_json="${repo_root}/BENCH_META.json"
"${build_dir}/bench/bench_meta" --json="${meta_json}"

echo "metadata-dedup trajectory point recorded at ${meta_json}"

# --- observability section merge -----------------------------------------

obs_seed=1
obs_dump="${build_dir}/obs_dump.json"
"${build_dir}/examples/perf_dump" seed="${obs_seed}" out="${obs_dump}"

merge_obs() {
  local target="$1"
  [[ -f "${target}" ]] || return 0
  python3 - "${obs_dump}" "${target}" "${obs_seed}" <<'EOF'
import json, sys
dump_path, target_path, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
d = json.load(open(dump_path))
tiers = {k: v for k, v in d["counters"].items() if k.startswith("tier.")}
obs = {
    "schema": "gdedup.obs.v1",
    "seed": seed,
    "entities": len(d["counters"]),
    "declared_counters": sum(len(v) for v in d["counters"].values()),
    "ops_started": d["ops"]["started"],
    "ops_finished": d["ops"]["finished"],
    "tier_writes": sum(v.get("writes", 0) for v in tiers.values()),
    "tier_chunks_flushed": sum(v.get("chunks_flushed", 0)
                               for v in tiers.values()),
    "tier_write_lat_p99_ns": max(v["write_lat"]["p99"]
                                 for v in tiers.values()),
    "tier_flush_lat_p99_ns": max(v["flush_lat"]["p99"]
                                 for v in tiers.values()),
    # Event-engine gauges (entity "sim"): dispatch/batch/ingress totals,
    # barrier count and arena footprint of the perf_dump run.
    "sim": d["counters"].get("sim", {}),
}
bench = json.load(open(target_path))
# The sim bench records its exec-pool usage at top level; mirror it into
# the obs section so one blob carries the full observability picture.
for key in [k for k in bench if k == "exec_threads"
            or k == "kernel_jobs_offloaded" or k.startswith("offload_")]:
    obs[key] = bench[key]
# Additive merge: the obs section is ours to refresh, every other key is
# preserved untouched.
bench["obs"] = obs
with open(target_path, "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
print(f"obs section merged into {target_path}")
EOF
}

merge_obs "${out_json}"
merge_obs "${repo_root}/BENCH_SIM.json"

# --- bench history --------------------------------------------------------
# One JSONL line per trajectory point per run: {ts, file, point}.  Append-
# only, so regressions stay visible after the latest-wins JSONs move on.

history="${repo_root}/BENCH_HISTORY.jsonl"
python3 - "${history}" "${out_json}" "${sim_json}" "${events_json}" \
    "${fp_json}" "${restore_json}" "${churn_json}" "${meta_json}" <<'HIST'
import datetime, json, sys
history, paths = sys.argv[1], sys.argv[2:]
ts = datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
with open(history, "a") as out:
    for path in paths:
        try:
            point = json.load(open(path))
        except FileNotFoundError:
            continue
        out.write(json.dumps({"ts": ts, "file": path.rsplit("/", 1)[-1],
                              "point": point}, sort_keys=True) + "\n")
print(f"bench history appended to {history}")
HIST
