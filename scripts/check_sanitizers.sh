#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the test suite.
#
# Usage: scripts/check_sanitizers.sh [ctest-regex]
#
# Uses a separate build directory (build-asan) so the regular build stays
# untouched.  -fno-sanitize-recover=all turns every sanitizer report into
# a hard failure, so a green ctest run really means no UB and no memory
# errors on the exercised paths.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-}"

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${san_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${san_flags}"
cmake --build "${build_dir}" -j "$(nproc)"

cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -R "${filter}"
else
  ctest --output-on-failure
fi
