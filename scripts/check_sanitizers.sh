#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the test suite, then run
# the observability tests under TSan.
#
# Usage: scripts/check_sanitizers.sh [ctest-regex]
#
# Uses separate build directories (build-asan, build-tsan) so the regular
# build stays untouched.  -fno-sanitize-recover=all turns every sanitizer
# report into a hard failure, so a green ctest run really means no UB and
# no memory errors on the exercised paths.
#
# TSan cannot be combined with ASan, hence the second build tree.  Two
# sources of real host concurrency get exercised: the exec pool offloads
# the real-byte kernels (fingerprint, CRC, EC, compression scans, chunk
# scans) to worker threads, and the sharded event engine runs shard
# windows on parallel workers.  The TSan phase runs the exec-pool tests,
# the fault-campaign smoke, the bench smokes and the sim determinism/
# shard-invariance tests with GDEDUP_EXEC_THREADS=4 GDEDUP_SIM_SHARDS=4
# GDEDUP_SIM_PARALLEL=1 so every offloaded kernel, every cross-shard
# peek behind the gated locks (object store, OSD store maps, op tracker)
# and the shared observability paths (counter updates, trace span
# bookkeeping, JSON dumps) see real worker concurrency.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-}"

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${san_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${san_flags}"
cmake --build "${build_dir}" -j "$(nproc)"

cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -R "${filter}"
else
  # Fail-fast smoke first: the restore-path bench (assembly window,
  # selective rewrite, zero-copy window slices) and the refs-cache /
  # fingerprint fast path are the heaviest pointer-juggling paths —
  # surface ASan reports there before paying for the full suite.
  ctest --output-on-failure -L asan_smoke
  # Recipe metadata-dedup smoke next: the packed codec, batched omap txns
  # and the recipe compactor juggle buffers/iterators across async steps —
  # cheap to fail fast here before the full suite.
  ctest --output-on-failure -L meta_smoke
  ctest --output-on-failure -L "telemetry_smoke|churn_smoke"
  ctest --output-on-failure
fi

# --- TSan phase: observability layer only --------------------------------

tsan_dir="${repo_root}/build-tsan"
tsan_flags="-fsanitize=thread -fno-sanitize-recover=all"

cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${tsan_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${tsan_flags}"
cmake --build "${tsan_dir}" -j "$(nproc)" \
    --target test_observability perf_dump test_exec_pool \
    test_fault_campaign bench_micro_components bench_sim_e2e \
    test_sim_determinism test_sim_shards test_fp_fastpath bench_fp_lookup \
    test_telemetry bench_churn test_recipe bench_meta

cd "${tsan_dir}"
# Four exec-pool workers and four engine shards (serial windows): the
# fault-campaign smoke re-runs its schedules multi-threaded, the bench
# smoke asserts the MT determinism digest equals the frozen serial
# reference, and the obs byte-identity tests see the multi-shard event
# order.  Parallel windows stay off here: op-trace ids are assigned in
# wall-clock order across shard workers (DESIGN.md §9), so obs-dump
# byte-identity is a serial-execution guarantee.
GDEDUP_EXEC_THREADS=4 GDEDUP_SIM_SHARDS=4 ctest --output-on-failure -R \
    'test_observability|perf_dump_smoke|test_exec_pool|fault_smoke|bench_smoke|sim_e2e_smoke'

# Parallel shard windows on top for the digest tests: cross-shard inbox
# handoff, gated object-store/OSD locks and barrier synchronization get
# race-checked while the virtual-time digest must not move a byte.
GDEDUP_EXEC_THREADS=4 GDEDUP_SIM_SHARDS=4 GDEDUP_SIM_PARALLEL=1 \
    ctest --output-on-failure -R \
    'test_sim_determinism|test_sim_shards|sim_e2e_smoke'

# Fast-path phase: the two-tier fingerprint path forced ON while the exec
# pool offloads kernels and the engine runs four shards.  The node-local
# fingerprint index is thread-confined by design (probes/inserts only from
# the owning node's event thread); this run makes TSan check that claim
# wherever shard windows, kernel workers and the refs cache interleave.
GDEDUP_FP_FASTPATH=1 GDEDUP_EXEC_THREADS=4 GDEDUP_SIM_SHARDS=4 \
    ctest --output-on-failure -R \
    'test_fp_fastpath|bench_fp_smoke|sim_e2e_smoke'

# Recipe phase: recipe-chunk metadata dedup forced ON under four shards +
# four kernel workers.  The compactor's async window stepper, the batched
# omap apply and the recipe-chunk puts all interleave with shard windows
# here; the recipe-mode digest (frozen in bench_meta --smoke) must not
# move a byte.
GDEDUP_RECIPE_DEDUP=1 GDEDUP_EXEC_THREADS=4 GDEDUP_SIM_SHARDS=4 \
    ctest --output-on-failure -R \
    'test_recipe|meta_smoke'
