#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the test suite, then run
# the observability tests under TSan.
#
# Usage: scripts/check_sanitizers.sh [ctest-regex]
#
# Uses separate build directories (build-asan, build-tsan) so the regular
# build stays untouched.  -fno-sanitize-recover=all turns every sanitizer
# report into a hard failure, so a green ctest run really means no UB and
# no memory errors on the exercised paths.
#
# TSan cannot be combined with ASan, hence the second build tree.  The
# event loop is single-threaded, but the exec pool offloads the real-byte
# kernels (fingerprint, CRC, EC, compression scans, chunk scans) to worker
# threads; the TSan phase runs the exec-pool tests, the fault-campaign
# smoke and the bench smoke with GDEDUP_EXEC_THREADS=4 so every offloaded
# kernel and the shared observability paths (counter updates, trace span
# bookkeeping, JSON dumps) are exercised with real worker concurrency.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-}"

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${san_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${san_flags}"
cmake --build "${build_dir}" -j "$(nproc)"

cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -R "${filter}"
else
  ctest --output-on-failure
fi

# --- TSan phase: observability layer only --------------------------------

tsan_dir="${repo_root}/build-tsan"
tsan_flags="-fsanitize=thread -fno-sanitize-recover=all"

cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${tsan_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${tsan_flags}"
cmake --build "${tsan_dir}" -j "$(nproc)" \
    --target test_observability perf_dump test_exec_pool \
    test_fault_campaign bench_micro_components bench_sim_e2e

cd "${tsan_dir}"
# Four exec-pool workers everywhere: the fault-campaign smoke re-runs its
# schedules multi-threaded, and the bench smoke asserts the MT determinism
# digest equals the frozen serial reference.
GDEDUP_EXEC_THREADS=4 ctest --output-on-failure -R \
    'test_observability|perf_dump_smoke|test_exec_pool|fault_smoke|bench_smoke|sim_e2e_smoke'
