#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the test suite, then run
# the observability tests under TSan.
#
# Usage: scripts/check_sanitizers.sh [ctest-regex]
#
# Uses separate build directories (build-asan, build-tsan) so the regular
# build stays untouched.  -fno-sanitize-recover=all turns every sanitizer
# report into a hard failure, so a green ctest run really means no UB and
# no memory errors on the exercised paths.
#
# TSan cannot be combined with ASan, hence the second build tree.  The
# simulator is single-threaded by design, but the perf-counter registry
# and op tracker are shared across every layer; the TSan phase pins down
# that the observability paths (counter updates, trace span bookkeeping,
# JSON dumps) stay race-free as exercised by test_observability and the
# perf_dump determinism smoke.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-}"

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${san_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${san_flags}"
cmake --build "${build_dir}" -j "$(nproc)"

cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -R "${filter}"
else
  ctest --output-on-failure
fi

# --- TSan phase: observability layer only --------------------------------

tsan_dir="${repo_root}/build-tsan"
tsan_flags="-fsanitize=thread -fno-sanitize-recover=all"

cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${tsan_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${tsan_flags}"
cmake --build "${tsan_dir}" -j "$(nproc)" --target test_observability perf_dump

cd "${tsan_dir}"
ctest --output-on-failure -R 'test_observability|perf_dump_smoke'
