#!/usr/bin/env bash
# Build and run the crash-schedule fault-injection campaign.
#
# Usage: scripts/run_faults.sh [schedules] [first_seed]
#
# Replays N seeded fault schedules (default 200, seeds 1..N) against a
# full simulated cluster — replicated and EC chunk pools, OSD kill/restart
# with disk wipes, message drop/delay, and mid-transaction crashes at
# every engine FailurePoint and OSD OsdFailurePoint — then checks the
# cluster-wide dedup invariants (refcount conservation, oracle readback,
# no leaked or lost chunks) after heal.  Exits non-zero if any schedule
# violates an invariant, any injection point never fires, or a seed
# replay is not byte-identical.

set -euo pipefail

schedules="${1:-200}"
first_seed="${2:-1}"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target fault_storm

"${build_dir}/examples/fault_storm" "schedules=${schedules}" \
    "first_seed=${first_seed}"
