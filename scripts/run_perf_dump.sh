#!/usr/bin/env bash
# Build the perf_dump example, run its seeded workload, and validate the
# observability JSON it emits.
#
# Usage: scripts/run_perf_dump.sh [seed] [output.json]
#
# Runs perf_dump in check mode first (same seed twice must produce
# byte-identical dumps with >= 25 osd/tier/client counters — the
# determinism contract of DESIGN.md §7), then validates the written
# document: parses as JSON, has the expected top-level sections, and
# carries per-stage latency histograms on every tier entity.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
seed="${1:-1}"
out_json="${2:-${build_dir}/obs_dump.json}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target perf_dump

"${build_dir}/examples/perf_dump" check=1 seed="${seed}" out="${out_json}"

python3 - "${out_json}" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("sim_time_ns", "counters", "pools", "ops"):
    assert key in d, f"missing top-level section {key!r}"
tiers = {k: v for k, v in d["counters"].items() if k.startswith("tier.")}
assert tiers, "no tier entities in dump"
for name, c in tiers.items():
    for h in ("write_lat", "read_lat", "fingerprint_lat", "chunk_put_lat",
              "flush_lat"):
        assert isinstance(c.get(h), dict), f"{name} missing histogram {h}"
assert d["ops"]["started"] == d["ops"]["finished"], "ops left in flight"
assert d["ops"]["slow"], "empty slow-op flight recorder"
print(f"validated: {len(d['counters'])} entities, "
      f"{sum(len(v) for v in d['counters'].values())} counters, "
      f"{len(d['ops']['slow'])} slow ops recorded")
EOF

echo "observability dump written to ${out_json}"
