// perf_dump: run a small seeded dedup workload and emit the cluster's
// observability dump — every perf-counter entity (OSDs, tier engines,
// clients, scrubber), per-pool store stats, and the op tracker's slow-op
// flight recorder — as one deterministic JSON document.
//
//   $ ./perf_dump                      # dump to stdout
//   $ ./perf_dump seed=7 out=obs.json  # dump to a file
//   $ ./perf_dump check=1              # self-test: run the same seed twice,
//                                      # require byte-identical dumps and
//                                      # >= 25 osd/tier/client counters
//
// The check mode is wired as the `perf_dump_smoke` ctest entry: it is the
// executable form of the determinism promise in DESIGN.md §7 (virtual
// time + sorted registry + pinned formatting => reproducible dumps).

#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/random.h"
#include "dedup/scrub.h"
#include "obs/dump.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "workload/content.h"

using namespace gdedup;

namespace {

struct RunOutput {
  std::string json;
  size_t data_path_counters = 0;  // declared entries on osd./tier./client.
};

RunOutput run_and_dump(uint64_t seed) {
  ClusterConfig ccfg;
  ccfg.storage_nodes = 2;
  ccfg.osds_per_node = 2;
  ccfg.client_nodes = 1;
  Cluster cluster(ccfg);
  const PoolId meta = cluster.create_replicated_pool("meta", 2, 64);
  const PoolId chunks = cluster.create_replicated_pool("chunks", 2, 64);

  DedupTierConfig tier;
  tier.mode = DedupMode::kPostProcess;
  tier.chunk_size = 32 * 1024;
  cluster.enable_dedup(meta, chunks, tier);

  // Dup-heavy content from a small palette of seeds, so the engine takes
  // both the create and the dedup-hit path; a few partial overwrites keep
  // the flush-merge machinery in the picture.
  RadosClient client(&cluster, cluster.client_node(0));
  Rng rng(mix64(seed ^ 0x0b5e7ab111171e5ULL));
  for (int i = 0; i < 24; i++) {
    Buffer data = workload::BlockContent::make(1 + rng.below(6), 96 * 1024);
    (void)sync_write(cluster, client, meta, "obj-" + std::to_string(i), 0,
                     data);
  }
  cluster.drain_dedup();
  for (int i = 0; i < 24; i++) {
    Buffer patch = workload::BlockContent::make(100 + rng.below(4), 8 * 1024);
    (void)sync_write(cluster, client, meta, "obj-" + std::to_string(i),
                     16 * 1024, patch);
  }
  cluster.drain_dedup();
  for (int i = 0; i < 24; i++) {
    (void)sync_read(cluster, client, meta, "obj-" + std::to_string(i), 0, 0);
  }

  // One GC pass so the scrub entity shows up in the dump too.
  Scrubber scrub(&cluster, meta, chunks);
  (void)scrub.collect_garbage();

  RunOutput out;
  for (const auto& pc : cluster.perf_registry()->sorted()) {
    const std::string& n = pc->name();
    if (n.rfind("osd.", 0) == 0 || n.rfind("tier.", 0) == 0 ||
        n.rfind("client.", 0) == 0) {
      out.data_path_counters += pc->size();
    }
  }
  out.json = obs::dump(cluster);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               "seed=<workload seed, default 1> out=<path, default stdout> "
               "check=<0|1 self-test determinism + counter coverage>");
  const uint64_t seed = static_cast<uint64_t>(opts.get_int("seed", 1));
  const std::string out_path = opts.get("out", "-");
  const bool check = opts.get_bool("check", false);
  opts.check_unused();

  RunOutput a = run_and_dump(seed);

  if (check) {
    const RunOutput b = run_and_dump(seed);
    if (a.json != b.json) {
      std::fprintf(stderr,
                   "FAIL: same-seed dumps differ (%zu vs %zu bytes)\n",
                   a.json.size(), b.json.size());
      return 1;
    }
    if (a.data_path_counters < 25) {
      std::fprintf(stderr,
                   "FAIL: only %zu osd/tier/client counters declared "
                   "(need >= 25)\n",
                   a.data_path_counters);
      return 1;
    }
    std::fprintf(stderr,
                 "check ok: %zu-byte dump reproduced byte-identically; "
                 "%zu osd/tier/client counters\n",
                 a.json.size(), a.data_path_counters);
  }

  if (out_path == "-") {
    std::fwrite(a.json.data(), 1, a.json.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(a.json.data(), 1, a.json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "dump written to %s\n", out_path.c_str());
  }
  return 0;
}
