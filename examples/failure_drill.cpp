// Failure drill: kill OSDs under a deduplicated dataset and watch the
// stock recovery machinery restore everything — including the dedup
// metadata that lives inside the objects (the self-contained-object
// property).
//
//   $ ./failure_drill [volume_mb=64] [failures=2]

#include <cstdio>

#include "common/options.h"
#include "common/histogram.h"
#include "dedup/scrub.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "workload/fio_gen.h"

using namespace gdedup;

int main(int argc, char** argv) {
  Options opts(argc, argv, "volume_mb=<MB> failures=<osds to kill>");
  const uint64_t volume =
      static_cast<uint64_t>(opts.get_int("volume_mb", 64)) << 20;
  const int failures = static_cast<int>(opts.get_int("failures", 2));
  opts.check_unused();

  Cluster cluster;
  const PoolId meta = cluster.create_replicated_pool("meta", 2);
  const PoolId chunks = cluster.create_replicated_pool("chunks", 2);
  DedupTierConfig tier;
  tier.mode = DedupMode::kPostProcess;
  tier.rate_control = false;
  tier.max_dedup_per_tick = 2048;
  cluster.enable_dedup(meta, chunks, tier);
  RadosClient client(&cluster, cluster.client_node(0));
  BlockDevice bd(&client, meta, "vol", volume);

  // 50%-dedupable dataset.
  workload::FioConfig fcfg;
  fcfg.total_bytes = volume;
  fcfg.block_size = 32 * 1024;
  fcfg.dedupe_ratio = 0.5;
  workload::FioGenerator gen(fcfg);
  std::printf("writing %s (dedupe 50%%)...\n",
              format_bytes(static_cast<double>(volume)).c_str());
  for (uint64_t b = 0; b < gen.num_blocks(); b++) {
    Status s = sync_bdev_write(cluster, bd, b * fcfg.block_size, gen.block(b));
    if (!s.is_ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  cluster.drain_dedup();
  std::printf("physical after dedup: %s\n",
              format_bytes(static_cast<double>(cluster.total_physical_bytes())).c_str());

  // Kill OSDs on one host (replicas never share a host, so data survives),
  // wipe them — disk replacement — and bring them back empty.
  std::printf("\nkilling %d OSD(s) on host 0 and replacing their disks...\n",
              failures);
  for (int o = 0; o < failures && o < 4; o++) {
    cluster.fail_osd(o);
    cluster.revive_osd(o, /*wipe_store=*/true);
  }

  uint64_t objects = 0, bytes = 0;
  const SimTime dur = cluster.recover(&objects, &bytes);
  std::printf("recovery: %llu objects, %s moved, %.3f virtual seconds\n",
              static_cast<unsigned long long>(objects),
              format_bytes(static_cast<double>(bytes)).c_str(),
              static_cast<double>(dur) / kSecond);

  // Verify a sample of blocks end to end (each read crosses the restored
  // chunk maps and chunk objects).
  int checked = 0, bad = 0;
  for (uint64_t b = 0; b < gen.num_blocks(); b += 37) {
    auto r = sync_bdev_read(cluster, bd, b * fcfg.block_size, fcfg.block_size);
    checked++;
    if (!r.is_ok() || !r->content_equals(gen.block(b))) bad++;
  }
  std::printf("verification: %d/%d sampled blocks intact\n", checked - bad,
              checked);

  // Belt and braces: a deep scrub re-fingerprints every chunk object and
  // checks replicas; the GC audits every reference.
  Scrubber scrubber(&cluster, meta, chunks);
  const ScrubReport scrub = scrubber.deep_scrub();
  const ScrubReport gc = scrubber.collect_garbage();
  std::printf("scrub: %llu chunks / %s verified in %.3f virtual s — %s\n",
              static_cast<unsigned long long>(scrub.chunks_checked),
              format_bytes(static_cast<double>(scrub.bytes_verified)).c_str(),
              static_cast<double>(scrub.duration) / kSecond,
              scrub.clean() ? "clean" : "ISSUES FOUND");
  std::printf("gc: %llu refs audited, %llu dangling dropped, %llu chunks "
              "reclaimed\n",
              static_cast<unsigned long long>(gc.refs_checked),
              static_cast<unsigned long long>(gc.dangling_refs_dropped),
              static_cast<unsigned long long>(gc.leaked_chunks_reclaimed));
  return bad == 0 && scrub.clean() ? 0 : 1;
}
