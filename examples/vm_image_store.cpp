// VM image store: the paper's motivating cloud scenario.
//
// Ten VM images cloned from one OS template land in a dedup-enabled,
// erasure-coded, compressed chunk pool.  Prints capacity after each image
// and the marginal cost of one more clone — the Figure 13 story as an
// application.
//
//   $ ./vm_image_store [images=10] [image_mb=32]

#include <cstdio>

#include "common/options.h"
#include "common/histogram.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "workload/vm_corpus.h"

using namespace gdedup;

int main(int argc, char** argv) {
  Options opts(argc, argv, "images=<count> image_mb=<MB per image>");
  const int images = static_cast<int>(opts.get_int("images", 10));
  workload::VmImageConfig vcfg;
  vcfg.image_bytes = static_cast<uint64_t>(opts.get_int("image_mb", 32)) << 20;
  opts.check_unused();

  Cluster cluster;
  const PoolId meta = cluster.create_replicated_pool("images-meta", 2);
  // Cold image data: erasure-coded 2+1 with at-rest compression.
  const PoolId chunks =
      cluster.create_ec_pool("images-chunks", 2, 1, 128, /*compress=*/true);
  DedupTierConfig tier;
  tier.mode = DedupMode::kPostProcess;
  tier.chunk_size = 32 * 1024;
  tier.rate_control = false;     // bulk ingest: drain between images
  tier.max_dedup_per_tick = 4096;
  cluster.enable_dedup(meta, chunks, tier);

  RadosClient client(&cluster, cluster.client_node(0));
  workload::VmImageCorpus corpus(vcfg);

  std::printf("ingesting %d x %s images (shared OS base + unique home + "
              "zero tail)\n\n",
              images, format_bytes(static_cast<double>(vcfg.image_bytes)).c_str());
  std::printf("%-8s %16s %16s %14s\n", "image", "logical total",
              "physical total", "marginal");
  std::printf("%s\n", std::string(58, '-').c_str());

  uint64_t prev_physical = 0;
  const uint64_t obj_bytes = 4 << 20;
  const uint64_t blocks_per_obj = obj_bytes / vcfg.block_size;
  for (int vm = 0; vm < images; vm++) {
    for (uint64_t first = 0; first < corpus.blocks_per_image();
         first += blocks_per_obj) {
      Buffer obj;
      for (uint64_t j = 0;
           j < blocks_per_obj && first + j < corpus.blocks_per_image(); j++) {
        obj = Buffer::concat(obj, corpus.image_block(vm, first + j));
      }
      const std::string oid = "vm" + std::to_string(vm) + ".obj." +
                              std::to_string(first / blocks_per_obj);
      Status s = sync_write_full(cluster, client, meta, oid, std::move(obj));
      if (!s.is_ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", s.to_string().c_str());
        return 1;
      }
    }
    cluster.drain_dedup();
    const uint64_t physical = cluster.total_physical_bytes();
    std::printf("%-8d %16s %16s %14s\n", vm + 1,
                format_bytes(static_cast<double>(vcfg.image_bytes) * (vm + 1)).c_str(),
                format_bytes(static_cast<double>(physical)).c_str(),
                format_bytes(static_cast<double>(physical - prev_physical)).c_str());
    prev_physical = physical;
  }

  const auto ts = cluster.tier_stats(meta);
  std::printf("\nengine: %llu chunks flushed, %llu evictions, %llu derefs\n",
              static_cast<unsigned long long>(ts.chunks_flushed),
              static_cast<unsigned long long>(ts.evictions),
              static_cast<unsigned long long>(ts.derefs));

  // Verify a clone end to end.
  Buffer expect = corpus.image_block(images - 1, 0);
  auto r = sync_read(cluster, client, meta,
                     "vm" + std::to_string(images - 1) + ".obj.0", 0,
                     expect.size());
  if (!r.is_ok() || !r->content_equals(expect)) {
    std::fprintf(stderr, "verification failed!\n");
    return 1;
  }
  std::printf("verified first block of the last image reads back intact.\n");
  return 0;
}
