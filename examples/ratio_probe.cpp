// ratio_probe — estimate what global deduplication would save on a
// workload before deploying it, and what a per-node (local) design would
// leave on the table.  The Figure 3 methodology as a reusable tool.
//
//   $ ./ratio_probe workload=fio dedupe=0.5 osds=16 chunk_kb=32
//   $ ./ratio_probe workload=sfs load=10
//   $ ./ratio_probe workload=cloud vms=24 chunk_kb=16
//   $ ./ratio_probe workload=vmimages images=10

#include <cstdio>

#include "common/histogram.h"
#include "common/options.h"
#include "dedup/ratio_analyzer.h"
#include "workload/fio_gen.h"
#include "workload/sfs_db.h"
#include "workload/vm_corpus.h"

using namespace gdedup;

namespace {

OsdMap make_map(int osds) {
  OsdMap m;
  for (int i = 0; i < osds; i++) m.add_osd(i, i / 4);
  PoolConfig cfg;
  cfg.name = "probe";
  cfg.pg_num = 4096;
  m.create_pool(cfg);
  return m;
}

void report(RatioAnalyzer& a, uint64_t chunk) {
  const auto g = a.global();
  const auto l = a.local();
  std::printf("\nlogical data:        %s (%u KB chunks)\n",
              format_bytes(static_cast<double>(g.logical_bytes)).c_str(),
              static_cast<unsigned>(chunk / 1024));
  std::printf("global dedup:        %6.2f %%  (unique: %s)\n", g.percent(),
              format_bytes(static_cast<double>(g.unique_bytes)).c_str());
  std::printf("local  dedup:        %6.2f %%  (unique: %s)\n", l.percent(),
              format_bytes(static_cast<double>(l.unique_bytes)).c_str());
  std::printf("global advantage:    %.2fx the savings of a per-OSD design\n",
              l.percent() > 0 ? g.percent() / l.percent() : 0.0);
  std::printf("\nper-OSD placement balance (logical bytes):\n");
  for (const auto& [osd, rep] : a.per_osd()) {
    std::printf("  osd.%-3d %12s  local-unique %s\n", osd,
                format_bytes(static_cast<double>(rep.logical_bytes)).c_str(),
                format_bytes(static_cast<double>(rep.unique_bytes)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               "workload=fio|sfs|cloud|vmimages osds=<n> chunk_kb=<n>\n"
               "fio: mb=<data MB> dedupe=<0..1>   sfs: load=<1|3|10> mb=<MB>\n"
               "cloud: vms=<n> vm_mb=<MB>         vmimages: images=<n> image_mb=<MB>");
  const std::string workload = opts.get("workload", "fio");
  const int osds = static_cast<int>(opts.get_int("osds", 16));
  const uint64_t chunk = static_cast<uint64_t>(opts.get_int("chunk_kb", 32)) << 10;

  OsdMap map = make_map(osds);
  // Chunk scans run on the exec pool (GDEDUP_EXEC_THREADS workers); the
  // reported ratios are identical at any thread count.
  ExecPool pool(ExecPool::env_threads());
  RatioAnalyzer a(&map, 0, static_cast<uint32_t>(chunk),
                  FingerprintAlgo::kSha256, &pool);

  if (workload == "fio") {
    workload::FioConfig cfg;
    cfg.total_bytes = static_cast<uint64_t>(opts.get_int("mb", 64)) << 20;
    cfg.dedupe_ratio = opts.get_double("dedupe", 0.5);
    cfg.block_size = 8192;
    opts.check_unused();
    workload::FioGenerator gen(cfg);
    for (uint64_t i = 0; i < gen.num_blocks(); i++) {
      a.add_object("blk" + std::to_string(i), gen.block(i));
    }
    std::printf("FIO-like stream, dedupe_percentage=%.0f%%",
                cfg.dedupe_ratio * 100);
  } else if (workload == "sfs") {
    workload::SfsDbConfig cfg;
    cfg.load = static_cast<int>(opts.get_int("load", 10));
    cfg.dataset_bytes = static_cast<uint64_t>(opts.get_int("mb", 96)) << 20;
    opts.check_unused();
    workload::SfsDbGenerator gen(cfg);
    const uint64_t ppo = (4 << 20) / cfg.page_size;
    Buffer obj;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < gen.num_pages(); i++) {
      obj = Buffer::concat(obj, gen.dataset_page(i));
      if ((i + 1) % ppo == 0 || i + 1 == gen.num_pages()) {
        a.add_object("db." + std::to_string(idx++), obj);
        obj = Buffer();
      }
    }
    std::printf("SPEC-SFS-2014-DB-like dataset, LOAD=%d", cfg.load);
  } else if (workload == "cloud") {
    workload::CloudCorpusConfig cfg;
    cfg.num_vms = static_cast<int>(opts.get_int("vms", 16));
    cfg.vm_bytes = static_cast<uint64_t>(opts.get_int("vm_mb", 12)) << 20;
    opts.check_unused();
    workload::CloudCorpus corpus(cfg);
    const uint64_t apo = (4 << 20) / cfg.atom_size;
    for (int vm = 0; vm < corpus.num_vms(); vm++) {
      for (uint64_t at = 0; at < corpus.atoms_per_vm(); at += apo) {
        const uint64_t n = std::min<uint64_t>(apo, corpus.atoms_per_vm() - at);
        a.add_object("vm" + std::to_string(vm) + "." + std::to_string(at / apo),
                     corpus.read(vm, at, n));
      }
    }
    std::printf("private-cloud-like corpus, %d VMs", cfg.num_vms);
  } else if (workload == "vmimages") {
    workload::VmImageConfig cfg;
    cfg.image_bytes = static_cast<uint64_t>(opts.get_int("image_mb", 32)) << 20;
    const int images = static_cast<int>(opts.get_int("images", 10));
    opts.check_unused();
    workload::VmImageCorpus corpus(cfg);
    for (int vm = 0; vm < images; vm++) {
      for (uint64_t b = 0; b < corpus.blocks_per_image(); b++) {
        a.add_object(corpus.image_object_name(vm, b),
                     corpus.image_block(vm, b));
      }
    }
    std::printf("VM image clones, %d images", images);
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }
  std::printf(", %d OSDs\n", osds);
  report(a, chunk);
  return 0;
}
