// Quickstart: bring up a 4-node cluster, enable global deduplication, and
// watch duplicate data collapse in the chunk pool.
//
//   $ ./quickstart
//
// Walks the public API end to end: Cluster -> pools -> enable_dedup ->
// RadosClient I/O -> drain -> stats.

#include <cstdio>

#include "common/histogram.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "workload/content.h"

using namespace gdedup;

int main() {
  // 1. A cluster with the paper's shape: 4 storage nodes x 4 OSDs, 3
  //    client nodes, 10GbE, SSD-backed OSDs.  Time is virtual — the whole
  //    run takes milliseconds of wall clock.
  Cluster cluster;

  // 2. Two replicated pools: user-visible metadata pool, content-addressed
  //    chunk pool.  (The chunk pool could be erasure-coded instead.)
  const PoolId meta = cluster.create_replicated_pool("rbd-meta", 2);
  const PoolId chunks = cluster.create_replicated_pool("rbd-chunks", 2);

  // 3. Attach the dedup tier: 32KB static chunks, SHA-256 fingerprints,
  //    post-processing engine with watermark rate control.
  DedupTierConfig tier;
  tier.mode = DedupMode::kPostProcess;
  tier.chunk_size = 32 * 1024;
  tier.rate_control = true;
  cluster.enable_dedup(meta, chunks, tier);

  // 4. Write ten objects that all share the same 128KB payload.
  RadosClient client(&cluster, cluster.client_node(0));
  Buffer payload = workload::BlockContent::make(/*seed=*/42, 128 * 1024);
  for (int i = 0; i < 10; i++) {
    const std::string oid = "object-" + std::to_string(i);
    Status s = sync_write(cluster, client, meta, oid, 0, payload);
    if (!s.is_ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  std::printf("wrote 10 objects x %zu KB (identical content)\n",
              payload.size() / 1024);

  // 5. Let the background engine fingerprint, deduplicate and evict.
  cluster.drain_dedup();

  // 6. Inspect: ten 128KB objects, but the chunk pool holds one copy of
  //    each 32KB chunk (x2 replicas).
  const auto meta_stats = cluster.pool_stats(meta);
  const auto chunk_stats = cluster.pool_stats(chunks);
  std::printf("metadata pool: %llu objects, %s data cached\n",
              static_cast<unsigned long long>(meta_stats.objects),
              format_bytes(static_cast<double>(meta_stats.stored_data_bytes)).c_str());
  std::printf("chunk pool:    %llu unique chunks (x2 replicas), %s stored\n",
              static_cast<unsigned long long>(chunk_stats.objects / 2),
              format_bytes(static_cast<double>(chunk_stats.stored_data_bytes)).c_str());
  const double logical = 10.0 * 128 * 1024;
  std::printf("dedup ratio:   %.1f%% of logical data eliminated\n",
              100.0 * (1.0 - static_cast<double>(chunk_stats.stored_data_bytes) / 2 /
                                 logical));

  // 7. Reads are transparent: the tier reassembles from the chunk pool.
  auto r = sync_read(cluster, client, meta, "object-7", 0, 0);
  if (!r.is_ok() || !r->content_equals(payload)) {
    std::fprintf(stderr, "read-back mismatch!\n");
    return 1;
  }
  std::printf("read-back of object-7: %zu bytes, content verified\n",
              r->size());
  return 0;
}
