// Fault storm: the paper's Section 4.6 consistency argument, stress-tested.
//
// Runs N seeded crash schedules (default 200) against small clusters —
// replicated and EC(2,1) chunk pools, async-deref and rate-control variants
// — injecting OSD kills with disk wipes, mid-transaction crashes at every
// engine and OSD failure point, message drops/delays, and concurrent
// GC/scrub.  After each schedule heals, the cluster-wide InvariantChecker
// must find zero violations: refcounts conserved, every chunk reachable,
// every object byte-identical to the acked-write oracle.
//
// Exits 1 on any violation, on incomplete injection-point coverage, or if
// a re-run of the first seed is not byte-identical to its first report.
//
//   $ ./fault_storm [schedules=200] [first_seed=1] [report=0]
//
// report=1 prints each failing schedule's full byte-stable report — the
// replay recipe when triaging a seed.

#include <cstdio>
#include <string>

#include "common/options.h"
#include "dedup/tier.h"
#include "osd/osd.h"
#include "rados/fault_campaign.h"

using namespace gdedup;

int main(int argc, char** argv) {
  Options opts(argc, argv, "schedules=<count> first_seed=<seed> report=<0|1>");
  CampaignConfig cfg;
  cfg.schedules = static_cast<int>(opts.get_int("schedules", 200));
  cfg.first_seed = static_cast<uint64_t>(opts.get_int("first_seed", 1));
  const bool full_reports = opts.get_int("report", 0) != 0;
  opts.check_unused();

  std::printf("fault storm: %d schedules from seed %llu\n", cfg.schedules,
              static_cast<unsigned long long>(cfg.first_seed));

  if (full_reports) {
    for (int i = 0; i < cfg.schedules; i++) {
      const ScheduleResult r = run_fault_schedule(
          schedule_config_for_seed(cfg.first_seed + static_cast<uint64_t>(i)));
      if (!r.clean()) std::printf("%s\n", r.report.c_str());
    }
  }

  const CampaignSummary sum = run_fault_campaign(cfg);
  std::printf("%s", sum.to_string().c_str());

  bool ok = sum.clean();
  if (!ok) {
    std::printf("FAIL: %d of %d schedules violated an invariant\n",
                sum.failed, sum.schedules);
  }

  // Coverage: every engine and OSD injection point must actually have
  // fired somewhere in the campaign, or the sweep proved less than it
  // claims.  Only meaningful at campaign scale — a planner episode picks
  // one of nine points at random, so short triage runs (replaying a
  // handful of seeds) are exempt.
  const bool check_coverage = cfg.schedules >= 50;
  if (!check_coverage) {
    std::printf("coverage check skipped (schedules < 50)\n");
  }
  for (int i = 0; check_coverage && i < kNumEngineFailurePoints; i++) {
    const std::string k =
        "engine:" +
        std::string(failure_point_name(static_cast<FailurePoint>(i)));
    const auto it = sum.fired_points.find(k);
    if (it == sum.fired_points.end() || it->second == 0) {
      std::printf("FAIL: injection point %s never fired\n", k.c_str());
      ok = false;
    }
  }
  for (int i = 0; check_coverage && i < kNumOsdFailurePoints; i++) {
    const std::string k =
        "osd:" +
        std::string(osd_failure_point_name(static_cast<OsdFailurePoint>(i)));
    const auto it = sum.fired_points.find(k);
    if (it == sum.fired_points.end() || it->second == 0) {
      std::printf("FAIL: injection point %s never fired\n", k.c_str());
      ok = false;
    }
  }

  // Determinism spot-check: the first seed, replayed, must reproduce its
  // report byte for byte.
  const ScheduleResult a =
      run_fault_schedule(schedule_config_for_seed(cfg.first_seed));
  const ScheduleResult b =
      run_fault_schedule(schedule_config_for_seed(cfg.first_seed));
  if (a.report != b.report) {
    std::printf("FAIL: seed %llu replay is not byte-identical\n",
                static_cast<unsigned long long>(cfg.first_seed));
    ok = false;
  } else {
    std::printf("determinism: seed %llu replay byte-identical (%zu bytes)\n",
                static_cast<unsigned long long>(cfg.first_seed),
                a.report.size());
  }

  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
