// Backup ingest with a live foreground workload: the rate controller and
// the hotness-aware cache manager working together.
//
// A database keeps hammering a small hot region (stays cached in the
// metadata pool, never deduplicated while hot) while a bulk backup stream
// pours cold data in behind it.  Prints the foreground latency with and
// without rate control, plus cache-manager counters.
//
//   $ ./backup_tiering [seconds=10]

#include <cstdio>

#include "common/histogram.h"
#include "common/options.h"
#include "rados/cluster.h"
#include "rados/sync.h"
#include "sim/metrics.h"
#include "workload/content.h"

using namespace gdedup;

namespace {

struct RunStats {
  double fg_mean_ms;
  double fg_p99_ms;
  uint64_t hot_skips;
  uint64_t evictions;
  uint64_t flushed;
};

RunStats run(bool rate_control, SimTime duration) {
  Cluster cluster;
  const PoolId meta = cluster.create_replicated_pool("meta", 2);
  const PoolId chunks = cluster.create_replicated_pool("chunks", 2);
  DedupTierConfig tier;
  tier.mode = DedupMode::kPostProcess;
  tier.rate_control = rate_control;
  tier.low_watermark_iops = 200;
  tier.high_watermark_iops = 1500;
  tier.hitcount_threshold = 2;  // hot region heats up fast
  tier.hitset_period = kSecond;
  tier.max_dedup_per_tick = 256;
  cluster.enable_dedup(meta, chunks, tier);
  RadosClient fg_client(&cluster, cluster.client_node(0));
  RadosClient bk_client(&cluster, cluster.client_node(1));

  // Foreground: 8KB writes over 16 hot objects, ~2000 IOPS, open loop.
  Histogram fg_lat;
  Rng rng(5);
  size_t fg_outstanding = 0;
  const double fg_gap = static_cast<double>(kSecond) / 2000.0;
  for (SimTime t = 0; t < duration; t += static_cast<SimTime>(fg_gap)) {
    cluster.sched().at(t, [&, t] {
      const std::string oid = "hot" + std::to_string(rng.below(16));
      Buffer data = workload::BlockContent::make(rng.next(), 8192);
      fg_outstanding++;
      fg_client.write(meta, oid, rng.below(4) * 8192, std::move(data),
                      [&, t](Status) {
                        fg_lat.record(static_cast<uint64_t>(
                            cluster.sched().now() - t));
                        fg_outstanding--;
                      });
    });
  }

  // Background: 1MB backup objects streamed continuously (cold, unique).
  uint64_t backup_idx = 0;
  std::function<void()> pour = [&]() {
    if (cluster.sched().now() >= duration) return;
    Buffer obj = workload::BlockContent::make(mix64(backup_idx) | 1, 1 << 20,
                                              0.3);
    const std::string oid = "backup." + std::to_string(backup_idx++);
    bk_client.write_full(meta, oid, std::move(obj), [&](Status) { pour(); });
  };
  pour();

  cluster.sched().run_until(duration);
  while (fg_outstanding > 0 && cluster.sched().step()) {
  }

  const auto ts = cluster.tier_stats(meta);
  return {fg_lat.mean() / 1e6,
          static_cast<double>(fg_lat.percentile(0.99)) / 1e6, ts.hot_skips,
          ts.evictions, ts.chunks_flushed};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, "seconds=<virtual duration>");
  const SimTime dur = sec(static_cast<double>(opts.get_int("seconds", 10)));
  opts.check_unused();

  std::printf("backup ingest behind a 2000-IOPS hot database workload\n\n");
  std::printf("%-16s %14s %14s %12s %12s %12s\n", "rate control",
              "fg mean ms", "fg p99 ms", "hot skips", "evictions",
              "chunks flushed");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (bool rc : {false, true}) {
    const RunStats s = run(rc, dur);
    std::printf("%-16s %14.3f %14.3f %12llu %12llu %12llu\n",
                rc ? "on" : "off", s.fg_mean_ms, s.fg_p99_ms,
                static_cast<unsigned long long>(s.hot_skips),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.flushed));
  }
  std::printf("\nexpected: the hot objects rack up hot-skips instead of "
              "churning through the chunk\npool, and rate control trims the "
              "flush stream on the OSDs the database keeps busy\n(watermarks "
              "are per-OSD, so the idle backup targets still drain freely).\n");
  return 0;
}
