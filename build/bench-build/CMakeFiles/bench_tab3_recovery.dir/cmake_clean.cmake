file(REMOVE_RECURSE
  "../bench/bench_tab3_recovery"
  "../bench/bench_tab3_recovery.pdb"
  "CMakeFiles/bench_tab3_recovery.dir/bench_tab3_recovery.cc.o"
  "CMakeFiles/bench_tab3_recovery.dir/bench_tab3_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
