# Empty dependencies file for bench_tab3_recovery.
# This may be replaced when dependencies are built.
