file(REMOVE_RECURSE
  "../bench/bench_fig11_sequential"
  "../bench/bench_fig11_sequential.pdb"
  "CMakeFiles/bench_fig11_sequential.dir/bench_fig11_sequential.cc.o"
  "CMakeFiles/bench_fig11_sequential.dir/bench_fig11_sequential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
