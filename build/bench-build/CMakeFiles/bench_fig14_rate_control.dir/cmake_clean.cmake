file(REMOVE_RECURSE
  "../bench/bench_fig14_rate_control"
  "../bench/bench_fig14_rate_control.pdb"
  "CMakeFiles/bench_fig14_rate_control.dir/bench_fig14_rate_control.cc.o"
  "CMakeFiles/bench_fig14_rate_control.dir/bench_fig14_rate_control.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rate_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
