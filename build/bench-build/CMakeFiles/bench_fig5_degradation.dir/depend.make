# Empty dependencies file for bench_fig5_degradation.
# This may be replaced when dependencies are built.
