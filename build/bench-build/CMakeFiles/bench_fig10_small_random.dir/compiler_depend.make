# Empty compiler generated dependencies file for bench_fig10_small_random.
# This may be replaced when dependencies are built.
