file(REMOVE_RECURSE
  "../bench/bench_fig12_sfs_db"
  "../bench/bench_fig12_sfs_db.pdb"
  "CMakeFiles/bench_fig12_sfs_db.dir/bench_fig12_sfs_db.cc.o"
  "CMakeFiles/bench_fig12_sfs_db.dir/bench_fig12_sfs_db.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sfs_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
