# Empty compiler generated dependencies file for bench_fig12_sfs_db.
# This may be replaced when dependencies are built.
