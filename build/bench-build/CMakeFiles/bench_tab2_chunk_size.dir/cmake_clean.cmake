file(REMOVE_RECURSE
  "../bench/bench_tab2_chunk_size"
  "../bench/bench_tab2_chunk_size.pdb"
  "CMakeFiles/bench_tab2_chunk_size.dir/bench_tab2_chunk_size.cc.o"
  "CMakeFiles/bench_tab2_chunk_size.dir/bench_tab2_chunk_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
