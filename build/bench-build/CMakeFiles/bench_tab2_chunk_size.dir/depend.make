# Empty dependencies file for bench_tab2_chunk_size.
# This may be replaced when dependencies are built.
