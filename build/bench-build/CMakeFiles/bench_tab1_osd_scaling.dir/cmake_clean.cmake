file(REMOVE_RECURSE
  "../bench/bench_tab1_osd_scaling"
  "../bench/bench_tab1_osd_scaling.pdb"
  "CMakeFiles/bench_tab1_osd_scaling.dir/bench_tab1_osd_scaling.cc.o"
  "CMakeFiles/bench_tab1_osd_scaling.dir/bench_tab1_osd_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_osd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
