# Empty dependencies file for bench_tab1_osd_scaling.
# This may be replaced when dependencies are built.
