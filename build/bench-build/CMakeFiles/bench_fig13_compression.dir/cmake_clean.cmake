file(REMOVE_RECURSE
  "../bench/bench_fig13_compression"
  "../bench/bench_fig13_compression.pdb"
  "CMakeFiles/bench_fig13_compression.dir/bench_fig13_compression.cc.o"
  "CMakeFiles/bench_fig13_compression.dir/bench_fig13_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
