file(REMOVE_RECURSE
  "libgdedup_osd.a"
)
