# Empty compiler generated dependencies file for gdedup_osd.
# This may be replaced when dependencies are built.
