file(REMOVE_RECURSE
  "CMakeFiles/gdedup_osd.dir/messages.cc.o"
  "CMakeFiles/gdedup_osd.dir/messages.cc.o.d"
  "CMakeFiles/gdedup_osd.dir/object_store.cc.o"
  "CMakeFiles/gdedup_osd.dir/object_store.cc.o.d"
  "CMakeFiles/gdedup_osd.dir/osd.cc.o"
  "CMakeFiles/gdedup_osd.dir/osd.cc.o.d"
  "libgdedup_osd.a"
  "libgdedup_osd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_osd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
