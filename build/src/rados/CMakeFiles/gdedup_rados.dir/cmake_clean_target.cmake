file(REMOVE_RECURSE
  "libgdedup_rados.a"
)
