# Empty dependencies file for gdedup_rados.
# This may be replaced when dependencies are built.
