file(REMOVE_RECURSE
  "CMakeFiles/gdedup_rados.dir/client.cc.o"
  "CMakeFiles/gdedup_rados.dir/client.cc.o.d"
  "CMakeFiles/gdedup_rados.dir/cluster.cc.o"
  "CMakeFiles/gdedup_rados.dir/cluster.cc.o.d"
  "libgdedup_rados.a"
  "libgdedup_rados.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_rados.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
