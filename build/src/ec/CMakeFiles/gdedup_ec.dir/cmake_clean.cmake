file(REMOVE_RECURSE
  "CMakeFiles/gdedup_ec.dir/galois.cc.o"
  "CMakeFiles/gdedup_ec.dir/galois.cc.o.d"
  "CMakeFiles/gdedup_ec.dir/reed_solomon.cc.o"
  "CMakeFiles/gdedup_ec.dir/reed_solomon.cc.o.d"
  "libgdedup_ec.a"
  "libgdedup_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
