
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/galois.cc" "src/ec/CMakeFiles/gdedup_ec.dir/galois.cc.o" "gcc" "src/ec/CMakeFiles/gdedup_ec.dir/galois.cc.o.d"
  "/root/repo/src/ec/reed_solomon.cc" "src/ec/CMakeFiles/gdedup_ec.dir/reed_solomon.cc.o" "gcc" "src/ec/CMakeFiles/gdedup_ec.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdedup_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
