# Empty dependencies file for gdedup_ec.
# This may be replaced when dependencies are built.
