file(REMOVE_RECURSE
  "libgdedup_ec.a"
)
