file(REMOVE_RECURSE
  "libgdedup_sim.a"
)
