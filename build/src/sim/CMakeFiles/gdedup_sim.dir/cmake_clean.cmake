file(REMOVE_RECURSE
  "CMakeFiles/gdedup_sim.dir/metrics.cc.o"
  "CMakeFiles/gdedup_sim.dir/metrics.cc.o.d"
  "CMakeFiles/gdedup_sim.dir/network.cc.o"
  "CMakeFiles/gdedup_sim.dir/network.cc.o.d"
  "CMakeFiles/gdedup_sim.dir/scheduler.cc.o"
  "CMakeFiles/gdedup_sim.dir/scheduler.cc.o.d"
  "libgdedup_sim.a"
  "libgdedup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
