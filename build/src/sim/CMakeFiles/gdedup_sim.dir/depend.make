# Empty dependencies file for gdedup_sim.
# This may be replaced when dependencies are built.
