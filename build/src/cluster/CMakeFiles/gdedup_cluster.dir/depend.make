# Empty dependencies file for gdedup_cluster.
# This may be replaced when dependencies are built.
