file(REMOVE_RECURSE
  "CMakeFiles/gdedup_cluster.dir/crush.cc.o"
  "CMakeFiles/gdedup_cluster.dir/crush.cc.o.d"
  "CMakeFiles/gdedup_cluster.dir/osd_map.cc.o"
  "CMakeFiles/gdedup_cluster.dir/osd_map.cc.o.d"
  "libgdedup_cluster.a"
  "libgdedup_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
