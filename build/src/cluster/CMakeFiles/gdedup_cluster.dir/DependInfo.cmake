
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/crush.cc" "src/cluster/CMakeFiles/gdedup_cluster.dir/crush.cc.o" "gcc" "src/cluster/CMakeFiles/gdedup_cluster.dir/crush.cc.o.d"
  "/root/repo/src/cluster/osd_map.cc" "src/cluster/CMakeFiles/gdedup_cluster.dir/osd_map.cc.o" "gcc" "src/cluster/CMakeFiles/gdedup_cluster.dir/osd_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdedup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gdedup_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdedup_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
