file(REMOVE_RECURSE
  "libgdedup_cluster.a"
)
