file(REMOVE_RECURSE
  "libgdedup_hash.a"
)
