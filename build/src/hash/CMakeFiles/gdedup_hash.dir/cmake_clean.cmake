file(REMOVE_RECURSE
  "CMakeFiles/gdedup_hash.dir/fingerprint.cc.o"
  "CMakeFiles/gdedup_hash.dir/fingerprint.cc.o.d"
  "CMakeFiles/gdedup_hash.dir/rabin.cc.o"
  "CMakeFiles/gdedup_hash.dir/rabin.cc.o.d"
  "CMakeFiles/gdedup_hash.dir/sha1.cc.o"
  "CMakeFiles/gdedup_hash.dir/sha1.cc.o.d"
  "CMakeFiles/gdedup_hash.dir/sha256.cc.o"
  "CMakeFiles/gdedup_hash.dir/sha256.cc.o.d"
  "libgdedup_hash.a"
  "libgdedup_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
