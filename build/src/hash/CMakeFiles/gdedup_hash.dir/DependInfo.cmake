
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/fingerprint.cc" "src/hash/CMakeFiles/gdedup_hash.dir/fingerprint.cc.o" "gcc" "src/hash/CMakeFiles/gdedup_hash.dir/fingerprint.cc.o.d"
  "/root/repo/src/hash/rabin.cc" "src/hash/CMakeFiles/gdedup_hash.dir/rabin.cc.o" "gcc" "src/hash/CMakeFiles/gdedup_hash.dir/rabin.cc.o.d"
  "/root/repo/src/hash/sha1.cc" "src/hash/CMakeFiles/gdedup_hash.dir/sha1.cc.o" "gcc" "src/hash/CMakeFiles/gdedup_hash.dir/sha1.cc.o.d"
  "/root/repo/src/hash/sha256.cc" "src/hash/CMakeFiles/gdedup_hash.dir/sha256.cc.o" "gcc" "src/hash/CMakeFiles/gdedup_hash.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdedup_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
