# Empty compiler generated dependencies file for gdedup_hash.
# This may be replaced when dependencies are built.
