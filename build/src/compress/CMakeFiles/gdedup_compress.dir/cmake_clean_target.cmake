file(REMOVE_RECURSE
  "libgdedup_compress.a"
)
