# Empty compiler generated dependencies file for gdedup_compress.
# This may be replaced when dependencies are built.
