file(REMOVE_RECURSE
  "CMakeFiles/gdedup_compress.dir/lz.cc.o"
  "CMakeFiles/gdedup_compress.dir/lz.cc.o.d"
  "libgdedup_compress.a"
  "libgdedup_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
