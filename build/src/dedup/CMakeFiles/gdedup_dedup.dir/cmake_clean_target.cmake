file(REMOVE_RECURSE
  "libgdedup_dedup.a"
)
