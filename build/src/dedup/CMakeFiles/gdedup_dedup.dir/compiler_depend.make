# Empty compiler generated dependencies file for gdedup_dedup.
# This may be replaced when dependencies are built.
