file(REMOVE_RECURSE
  "CMakeFiles/gdedup_dedup.dir/chunk_map.cc.o"
  "CMakeFiles/gdedup_dedup.dir/chunk_map.cc.o.d"
  "CMakeFiles/gdedup_dedup.dir/chunker.cc.o"
  "CMakeFiles/gdedup_dedup.dir/chunker.cc.o.d"
  "CMakeFiles/gdedup_dedup.dir/hitset.cc.o"
  "CMakeFiles/gdedup_dedup.dir/hitset.cc.o.d"
  "CMakeFiles/gdedup_dedup.dir/ratio_analyzer.cc.o"
  "CMakeFiles/gdedup_dedup.dir/ratio_analyzer.cc.o.d"
  "CMakeFiles/gdedup_dedup.dir/scrub.cc.o"
  "CMakeFiles/gdedup_dedup.dir/scrub.cc.o.d"
  "CMakeFiles/gdedup_dedup.dir/tier.cc.o"
  "CMakeFiles/gdedup_dedup.dir/tier.cc.o.d"
  "libgdedup_dedup.a"
  "libgdedup_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
