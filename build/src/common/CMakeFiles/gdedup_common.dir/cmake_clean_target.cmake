file(REMOVE_RECURSE
  "libgdedup_common.a"
)
