# Empty dependencies file for gdedup_common.
# This may be replaced when dependencies are built.
