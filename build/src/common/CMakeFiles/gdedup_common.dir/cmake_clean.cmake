file(REMOVE_RECURSE
  "CMakeFiles/gdedup_common.dir/bloom_filter.cc.o"
  "CMakeFiles/gdedup_common.dir/bloom_filter.cc.o.d"
  "CMakeFiles/gdedup_common.dir/buffer.cc.o"
  "CMakeFiles/gdedup_common.dir/buffer.cc.o.d"
  "CMakeFiles/gdedup_common.dir/crc32.cc.o"
  "CMakeFiles/gdedup_common.dir/crc32.cc.o.d"
  "CMakeFiles/gdedup_common.dir/histogram.cc.o"
  "CMakeFiles/gdedup_common.dir/histogram.cc.o.d"
  "CMakeFiles/gdedup_common.dir/logging.cc.o"
  "CMakeFiles/gdedup_common.dir/logging.cc.o.d"
  "CMakeFiles/gdedup_common.dir/options.cc.o"
  "CMakeFiles/gdedup_common.dir/options.cc.o.d"
  "CMakeFiles/gdedup_common.dir/random.cc.o"
  "CMakeFiles/gdedup_common.dir/random.cc.o.d"
  "CMakeFiles/gdedup_common.dir/status.cc.o"
  "CMakeFiles/gdedup_common.dir/status.cc.o.d"
  "libgdedup_common.a"
  "libgdedup_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
