file(REMOVE_RECURSE
  "libgdedup_workload.a"
)
