file(REMOVE_RECURSE
  "CMakeFiles/gdedup_workload.dir/content.cc.o"
  "CMakeFiles/gdedup_workload.dir/content.cc.o.d"
  "CMakeFiles/gdedup_workload.dir/fio_gen.cc.o"
  "CMakeFiles/gdedup_workload.dir/fio_gen.cc.o.d"
  "CMakeFiles/gdedup_workload.dir/sfs_db.cc.o"
  "CMakeFiles/gdedup_workload.dir/sfs_db.cc.o.d"
  "CMakeFiles/gdedup_workload.dir/vm_corpus.cc.o"
  "CMakeFiles/gdedup_workload.dir/vm_corpus.cc.o.d"
  "libgdedup_workload.a"
  "libgdedup_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdedup_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
