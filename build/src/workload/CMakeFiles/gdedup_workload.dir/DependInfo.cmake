
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/content.cc" "src/workload/CMakeFiles/gdedup_workload.dir/content.cc.o" "gcc" "src/workload/CMakeFiles/gdedup_workload.dir/content.cc.o.d"
  "/root/repo/src/workload/fio_gen.cc" "src/workload/CMakeFiles/gdedup_workload.dir/fio_gen.cc.o" "gcc" "src/workload/CMakeFiles/gdedup_workload.dir/fio_gen.cc.o.d"
  "/root/repo/src/workload/sfs_db.cc" "src/workload/CMakeFiles/gdedup_workload.dir/sfs_db.cc.o" "gcc" "src/workload/CMakeFiles/gdedup_workload.dir/sfs_db.cc.o.d"
  "/root/repo/src/workload/vm_corpus.cc" "src/workload/CMakeFiles/gdedup_workload.dir/vm_corpus.cc.o" "gcc" "src/workload/CMakeFiles/gdedup_workload.dir/vm_corpus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdedup_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
