# Empty compiler generated dependencies file for gdedup_workload.
# This may be replaced when dependencies are built.
