# Empty dependencies file for test_hitset_rate.
# This may be replaced when dependencies are built.
