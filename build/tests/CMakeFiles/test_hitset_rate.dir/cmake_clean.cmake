file(REMOVE_RECURSE
  "CMakeFiles/test_hitset_rate.dir/test_hitset_rate.cc.o"
  "CMakeFiles/test_hitset_rate.dir/test_hitset_rate.cc.o.d"
  "test_hitset_rate"
  "test_hitset_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hitset_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
