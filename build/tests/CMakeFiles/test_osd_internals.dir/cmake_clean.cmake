file(REMOVE_RECURSE
  "CMakeFiles/test_osd_internals.dir/test_osd_internals.cc.o"
  "CMakeFiles/test_osd_internals.dir/test_osd_internals.cc.o.d"
  "test_osd_internals"
  "test_osd_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osd_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
