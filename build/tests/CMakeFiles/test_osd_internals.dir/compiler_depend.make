# Empty compiler generated dependencies file for test_osd_internals.
# This may be replaced when dependencies are built.
