file(REMOVE_RECURSE
  "CMakeFiles/test_rebalance.dir/test_rebalance.cc.o"
  "CMakeFiles/test_rebalance.dir/test_rebalance.cc.o.d"
  "test_rebalance"
  "test_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
