# Empty dependencies file for test_dedup_tier.
# This may be replaced when dependencies are built.
