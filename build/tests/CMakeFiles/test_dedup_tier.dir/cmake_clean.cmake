file(REMOVE_RECURSE
  "CMakeFiles/test_dedup_tier.dir/test_dedup_tier.cc.o"
  "CMakeFiles/test_dedup_tier.dir/test_dedup_tier.cc.o.d"
  "test_dedup_tier"
  "test_dedup_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedup_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
