file(REMOVE_RECURSE
  "CMakeFiles/test_tier_edgecases.dir/test_tier_edgecases.cc.o"
  "CMakeFiles/test_tier_edgecases.dir/test_tier_edgecases.cc.o.d"
  "test_tier_edgecases"
  "test_tier_edgecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tier_edgecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
