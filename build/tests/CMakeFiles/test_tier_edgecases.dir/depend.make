# Empty dependencies file for test_tier_edgecases.
# This may be replaced when dependencies are built.
