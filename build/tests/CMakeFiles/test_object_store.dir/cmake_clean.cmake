file(REMOVE_RECURSE
  "CMakeFiles/test_object_store.dir/test_object_store.cc.o"
  "CMakeFiles/test_object_store.dir/test_object_store.cc.o.d"
  "test_object_store"
  "test_object_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
