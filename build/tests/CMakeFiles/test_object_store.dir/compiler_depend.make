# Empty compiler generated dependencies file for test_object_store.
# This may be replaced when dependencies are built.
