file(REMOVE_RECURSE
  "CMakeFiles/test_io_edgecases.dir/test_io_edgecases.cc.o"
  "CMakeFiles/test_io_edgecases.dir/test_io_edgecases.cc.o.d"
  "test_io_edgecases"
  "test_io_edgecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_edgecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
