# Empty dependencies file for test_io_edgecases.
# This may be replaced when dependencies are built.
