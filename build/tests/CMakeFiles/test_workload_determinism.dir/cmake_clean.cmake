file(REMOVE_RECURSE
  "CMakeFiles/test_workload_determinism.dir/test_workload_determinism.cc.o"
  "CMakeFiles/test_workload_determinism.dir/test_workload_determinism.cc.o.d"
  "test_workload_determinism"
  "test_workload_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
