# Empty compiler generated dependencies file for test_workload_determinism.
# This may be replaced when dependencies are built.
