file(REMOVE_RECURSE
  "CMakeFiles/test_ratio_analyzer.dir/test_ratio_analyzer.cc.o"
  "CMakeFiles/test_ratio_analyzer.dir/test_ratio_analyzer.cc.o.d"
  "test_ratio_analyzer"
  "test_ratio_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratio_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
