# Empty dependencies file for test_ratio_analyzer.
# This may be replaced when dependencies are built.
