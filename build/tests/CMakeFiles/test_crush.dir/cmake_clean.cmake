file(REMOVE_RECURSE
  "CMakeFiles/test_crush.dir/test_crush.cc.o"
  "CMakeFiles/test_crush.dir/test_crush.cc.o.d"
  "test_crush"
  "test_crush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
