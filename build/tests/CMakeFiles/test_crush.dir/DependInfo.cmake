
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crush.cc" "tests/CMakeFiles/test_crush.dir/test_crush.cc.o" "gcc" "tests/CMakeFiles/test_crush.dir/test_crush.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rados/CMakeFiles/gdedup_rados.dir/DependInfo.cmake"
  "/root/repo/build/src/dedup/CMakeFiles/gdedup_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/osd/CMakeFiles/gdedup_osd.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/gdedup_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gdedup_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gdedup_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gdedup_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdedup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gdedup_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdedup_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
