# Empty dependencies file for test_cluster_io.
# This may be replaced when dependencies are built.
