file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_io.dir/test_cluster_io.cc.o"
  "CMakeFiles/test_cluster_io.dir/test_cluster_io.cc.o.d"
  "test_cluster_io"
  "test_cluster_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
