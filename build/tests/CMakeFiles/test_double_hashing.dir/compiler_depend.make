# Empty compiler generated dependencies file for test_double_hashing.
# This may be replaced when dependencies are built.
