file(REMOVE_RECURSE
  "CMakeFiles/test_double_hashing.dir/test_double_hashing.cc.o"
  "CMakeFiles/test_double_hashing.dir/test_double_hashing.cc.o.d"
  "test_double_hashing"
  "test_double_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
