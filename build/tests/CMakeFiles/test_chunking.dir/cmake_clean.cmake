file(REMOVE_RECURSE
  "CMakeFiles/test_chunking.dir/test_chunking.cc.o"
  "CMakeFiles/test_chunking.dir/test_chunking.cc.o.d"
  "test_chunking"
  "test_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
