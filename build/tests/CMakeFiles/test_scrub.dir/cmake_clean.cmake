file(REMOVE_RECURSE
  "CMakeFiles/test_scrub.dir/test_scrub.cc.o"
  "CMakeFiles/test_scrub.dir/test_scrub.cc.o.d"
  "test_scrub"
  "test_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
