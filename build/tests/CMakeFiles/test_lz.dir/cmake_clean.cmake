file(REMOVE_RECURSE
  "CMakeFiles/test_lz.dir/test_lz.cc.o"
  "CMakeFiles/test_lz.dir/test_lz.cc.o.d"
  "test_lz"
  "test_lz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
