# Empty compiler generated dependencies file for vm_image_store.
# This may be replaced when dependencies are built.
