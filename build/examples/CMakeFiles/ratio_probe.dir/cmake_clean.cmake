file(REMOVE_RECURSE
  "CMakeFiles/ratio_probe.dir/ratio_probe.cpp.o"
  "CMakeFiles/ratio_probe.dir/ratio_probe.cpp.o.d"
  "ratio_probe"
  "ratio_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratio_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
