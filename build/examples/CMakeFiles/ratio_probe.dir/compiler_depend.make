# Empty compiler generated dependencies file for ratio_probe.
# This may be replaced when dependencies are built.
