file(REMOVE_RECURSE
  "CMakeFiles/backup_tiering.dir/backup_tiering.cpp.o"
  "CMakeFiles/backup_tiering.dir/backup_tiering.cpp.o.d"
  "backup_tiering"
  "backup_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
