# Empty compiler generated dependencies file for backup_tiering.
# This may be replaced when dependencies are built.
