#include "ec/galois.h"

#include <cassert>

namespace gdedup::gf256 {

namespace {

struct Tables {
  std::array<uint8_t, 512> exp;  // doubled to skip the mod-255 in mul
  std::array<int, 256> log;
};

const Tables& tables() {
  static const Tables t = [] {
    Tables t{};
    constexpr uint16_t kPoly = 0x11d;
    uint16_t x = 1;
    for (int i = 0; i < 255; i++) {
      t.exp[i] = static_cast<uint8_t>(x);
      t.log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    for (int i = 255; i < 512; i++) t.exp[i] = t.exp[i - 255];
    t.log[0] = -1;
    return t;
  }();
  return t;
}

}  // namespace

uint8_t mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] - t.log[b] + 255];
}

uint8_t inv(uint8_t a) {
  assert(a != 0);
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

uint8_t exp(int power) {
  const auto& t = tables();
  power %= 255;
  if (power < 0) power += 255;
  return t.exp[power];
}

uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }

void mul_acc(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < n; i++) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const int lc = t.log[c];
  for (size_t i = 0; i < n; i++) {
    if (src[i] != 0) dst[i] ^= t.exp[t.log[src[i]] + lc];
  }
}

void mul_row(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c) {
  if (c == 0) {
    for (size_t i = 0; i < n; i++) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < n; i++) dst[i] = src[i];
    return;
  }
  const auto& t = tables();
  const int lc = t.log[c];
  for (size_t i = 0; i < n; i++) {
    dst[i] = src[i] == 0 ? 0 : t.exp[t.log[src[i]] + lc];
  }
}

}  // namespace gdedup::gf256
