#pragma once

// Systematic Reed-Solomon (k data + m parity) over GF(2^8).
//
// The generator matrix is [ I_k ; C ] with C a Cauchy matrix, so every
// k-row submatrix is invertible: any m shard losses are recoverable.
// Used by the EC pool backend (paper configuration: k=2, m=1) and by
// recovery to rebuild lost shards.

#include <optional>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace gdedup {

class ReedSolomon {
 public:
  // 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  // Split `data` into k equal shards (zero-padded) and append m parity
  // shards.  Returns k+m buffers, each of size shard_len(data.size()).
  std::vector<Buffer> encode(const Buffer& data) const;

  // Compute only the parity shards for pre-split data shards (all the
  // same length).
  std::vector<Buffer> encode_parity(const std::vector<Buffer>& data) const;

  // Reconstruct all missing shards in-place.  `shards` has k+m slots;
  // nullopt means lost.  Needs >= k present.  All present shards must have
  // equal length.
  Status reconstruct(std::vector<std::optional<Buffer>>& shards) const;

  // Reassemble the original byte stream (first `original_len` bytes) from
  // the k data shards, reconstructing first if necessary.
  Result<Buffer> decode(std::vector<std::optional<Buffer>> shards,
                        size_t original_len) const;

  size_t shard_len(size_t data_len) const {
    return (data_len + static_cast<size_t>(k_) - 1) / static_cast<size_t>(k_);
  }

 private:
  // rows_ holds the full (k+m) x k generator matrix, row-major.
  uint8_t gen(int row, int col) const {
    return gen_[static_cast<size_t>(row) * static_cast<size_t>(k_) +
                static_cast<size_t>(col)];
  }

  static Status invert(std::vector<uint8_t>& a, int n);

  int k_;
  int m_;
  std::vector<uint8_t> gen_;
};

}  // namespace gdedup
