#pragma once

// GF(2^8) arithmetic for Reed-Solomon erasure coding.
//
// Field: polynomial basis mod x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the
// conventional choice for storage codes.  Multiplication uses exp/log
// tables; bulk multiply-accumulate is the inner loop of encode/decode.

#include <array>
#include <cstdint>
#include <span>

namespace gdedup::gf256 {

uint8_t mul(uint8_t a, uint8_t b);
uint8_t div(uint8_t a, uint8_t b);  // b != 0
uint8_t inv(uint8_t a);             // a != 0
uint8_t exp(int power);             // generator^power
uint8_t add(uint8_t a, uint8_t b);  // XOR, provided for symmetry

// dst[i] ^= c * src[i] for i in [0, n): the SpMV kernel of RS coding.
void mul_acc(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c);

// dst[i] = c * src[i].
void mul_row(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c);

}  // namespace gdedup::gf256
