#include "ec/reed_solomon.h"

#include <cassert>
#include <cstring>

#include "ec/galois.h"

namespace gdedup {

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  assert(k >= 1 && m >= 0 && k + m <= 255);
  gen_.assign(static_cast<size_t>(k + m) * static_cast<size_t>(k), 0);
  // Identity for the data rows.
  for (int i = 0; i < k; i++) {
    gen_[static_cast<size_t>(i) * static_cast<size_t>(k) + static_cast<size_t>(i)] = 1;
  }
  // Cauchy rows: element (i, j) = 1 / (x_i ^ y_j), x_i = k + i, y_j = j.
  // x and y ranges are disjoint so x_i ^ y_j != 0.
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < k; j++) {
      const uint8_t x = static_cast<uint8_t>(k + i);
      const uint8_t y = static_cast<uint8_t>(j);
      gen_[static_cast<size_t>(k + i) * static_cast<size_t>(k) +
           static_cast<size_t>(j)] = gf256::inv(x ^ y);
    }
  }
}

std::vector<Buffer> ReedSolomon::encode(const Buffer& data) const {
  const size_t slen = shard_len(data.size());
  std::vector<Buffer> shards;
  shards.reserve(static_cast<size_t>(k_ + m_));
  for (int i = 0; i < k_; i++) {
    Buffer s(slen);
    const size_t off = static_cast<size_t>(i) * slen;
    if (off < data.size()) {
      const size_t n = std::min(slen, data.size() - off);
      std::memcpy(s.mutable_data(), data.data() + off, n);
    }
    shards.push_back(std::move(s));
  }
  auto parity = encode_parity(shards);
  for (auto& p : parity) shards.push_back(std::move(p));
  return shards;
}

std::vector<Buffer> ReedSolomon::encode_parity(
    const std::vector<Buffer>& data) const {
  assert(static_cast<int>(data.size()) == k_);
  const size_t slen = data.empty() ? 0 : data[0].size();
  std::vector<Buffer> parity;
  parity.reserve(static_cast<size_t>(m_));
  for (int i = 0; i < m_; i++) {
    Buffer p(slen);
    uint8_t* dst = p.mutable_data();
    for (int j = 0; j < k_; j++) {
      assert(data[static_cast<size_t>(j)].size() == slen);
      gf256::mul_acc(dst, data[static_cast<size_t>(j)].data(), slen,
                     gen(k_ + i, j));
    }
    parity.push_back(std::move(p));
  }
  return parity;
}

Status ReedSolomon::invert(std::vector<uint8_t>& a, int n) {
  // Gauss-Jordan on [A | I] over GF(256); `a` is n x n row-major,
  // augmented in-place into a 2n-wide scratch.
  const size_t N = static_cast<size_t>(n);
  std::vector<uint8_t> aug(N * 2 * N, 0);
  for (size_t r = 0; r < N; r++) {
    std::memcpy(&aug[r * 2 * N], &a[r * N], N);
    aug[r * 2 * N + N + r] = 1;
  }
  for (size_t col = 0; col < N; col++) {
    size_t pivot = col;
    while (pivot < N && aug[pivot * 2 * N + col] == 0) pivot++;
    if (pivot == N) return Status::corruption("singular decode matrix");
    if (pivot != col) {
      for (size_t j = 0; j < 2 * N; j++) {
        std::swap(aug[pivot * 2 * N + j], aug[col * 2 * N + j]);
      }
    }
    const uint8_t inv_p = gf256::inv(aug[col * 2 * N + col]);
    for (size_t j = 0; j < 2 * N; j++) {
      aug[col * 2 * N + j] = gf256::mul(aug[col * 2 * N + j], inv_p);
    }
    for (size_t r = 0; r < N; r++) {
      if (r == col) continue;
      const uint8_t f = aug[r * 2 * N + col];
      if (f == 0) continue;
      for (size_t j = 0; j < 2 * N; j++) {
        aug[r * 2 * N + j] ^= gf256::mul(f, aug[col * 2 * N + j]);
      }
    }
  }
  for (size_t r = 0; r < N; r++) {
    std::memcpy(&a[r * N], &aug[r * 2 * N + N], N);
  }
  return Status::ok();
}

Status ReedSolomon::reconstruct(
    std::vector<std::optional<Buffer>>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) {
    return Status::invalid("wrong shard count");
  }
  std::vector<int> present;
  std::vector<int> missing;
  size_t slen = 0;
  for (int i = 0; i < k_ + m_; i++) {
    if (shards[static_cast<size_t>(i)].has_value()) {
      present.push_back(i);
      const size_t len = shards[static_cast<size_t>(i)]->size();
      if (slen == 0) {
        slen = len;
      } else if (len != slen) {
        return Status::invalid("unequal shard lengths");
      }
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) return Status::ok();
  if (static_cast<int>(present.size()) < k_) {
    return Status::corruption("too many shards lost");
  }

  // Decode matrix: first k present rows of the generator, inverted.
  std::vector<uint8_t> dm(static_cast<size_t>(k_) * static_cast<size_t>(k_));
  for (int r = 0; r < k_; r++) {
    for (int c = 0; c < k_; c++) {
      dm[static_cast<size_t>(r) * static_cast<size_t>(k_) +
         static_cast<size_t>(c)] = gen(present[static_cast<size_t>(r)], c);
    }
  }
  if (auto s = invert(dm, k_); !s.is_ok()) return s;

  // Recover data shards: data[j] = sum_r dm[j][r] * present_shard[r].
  std::vector<Buffer> data(static_cast<size_t>(k_));
  for (int j = 0; j < k_; j++) {
    if (j < k_ && shards[static_cast<size_t>(j)].has_value()) {
      data[static_cast<size_t>(j)] = *shards[static_cast<size_t>(j)];
      continue;
    }
    Buffer out(slen);
    uint8_t* dst = out.mutable_data();
    for (int r = 0; r < k_; r++) {
      gf256::mul_acc(dst,
                     shards[static_cast<size_t>(present[static_cast<size_t>(r)])]->data(),
                     slen,
                     dm[static_cast<size_t>(j) * static_cast<size_t>(k_) +
                        static_cast<size_t>(r)]);
    }
    data[static_cast<size_t>(j)] = std::move(out);
  }
  for (int j = 0; j < k_; j++) {
    if (!shards[static_cast<size_t>(j)].has_value()) {
      shards[static_cast<size_t>(j)] = data[static_cast<size_t>(j)];
    }
  }
  // Recompute any missing parity from the (now complete) data shards.
  bool parity_missing = false;
  for (int i = k_; i < k_ + m_; i++) {
    if (!shards[static_cast<size_t>(i)].has_value()) parity_missing = true;
  }
  if (parity_missing) {
    auto parity = encode_parity(data);
    for (int i = 0; i < m_; i++) {
      if (!shards[static_cast<size_t>(k_ + i)].has_value()) {
        shards[static_cast<size_t>(k_ + i)] = parity[static_cast<size_t>(i)];
      }
    }
  }
  return Status::ok();
}

Result<Buffer> ReedSolomon::decode(std::vector<std::optional<Buffer>> shards,
                                   size_t original_len) const {
  if (auto s = reconstruct(shards); !s.is_ok()) return s;
  Buffer out(original_len);
  uint8_t* dst = out.mutable_data();
  size_t copied = 0;
  for (int i = 0; i < k_ && copied < original_len; i++) {
    const Buffer& s = *shards[static_cast<size_t>(i)];
    const size_t n = std::min(s.size(), original_len - copied);
    std::memcpy(dst + copied, s.data(), n);
    copied += n;
  }
  return out;
}

}  // namespace gdedup
