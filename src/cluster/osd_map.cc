#include "cluster/osd_map.h"

#include <cassert>

#include "common/random.h"

namespace gdedup {

void OsdMap::add_osd(OsdId id, HostId host, double weight) {
  crush_.add_device(id, host, weight);
  up_[id] = true;
  epoch_++;
}

void OsdMap::mark_down(OsdId id) {
  assert(up_.count(id));
  if (up_[id]) {
    up_[id] = false;
    epoch_++;
  }
}

void OsdMap::mark_up(OsdId id) {
  assert(up_.count(id));
  if (!up_[id]) {
    up_[id] = true;
    epoch_++;
  }
}

bool OsdMap::is_up(OsdId id) const {
  auto it = up_.find(id);
  return it != up_.end() && it->second;
}

std::vector<OsdId> OsdMap::up_osds() const {
  std::vector<OsdId> out;
  for (const auto& [id, up] : up_) {
    if (up) out.push_back(id);
  }
  return out;
}

PoolId OsdMap::create_pool(PoolConfig cfg) {
  assert(cfg.pg_num > 0);
  const PoolId id = next_pool_++;
  pools_[id] = std::move(cfg);
  epoch_++;
  return id;
}

const PoolConfig& OsdMap::pool(PoolId id) const {
  auto it = pools_.find(id);
  assert(it != pools_.end());
  return it->second;
}

PoolConfig& OsdMap::mutable_pool(PoolId id) {
  auto it = pools_.find(id);
  assert(it != pools_.end());
  epoch_++;
  return it->second;
}

std::optional<PoolId> OsdMap::pool_by_name(const std::string& name) const {
  for (const auto& [id, cfg] : pools_) {
    if (cfg.name == name) return id;
  }
  return std::nullopt;
}

std::vector<PoolId> OsdMap::pool_ids() const {
  std::vector<PoolId> out;
  out.reserve(pools_.size());
  for (const auto& [id, cfg] : pools_) out.push_back(id);
  return out;
}

uint32_t OsdMap::pg_of(PoolId pool, const std::string& oid) const {
  const PoolConfig& cfg = this->pool(pool);
  return static_cast<uint32_t>(fnv1a(oid) % cfg.pg_num);
}

uint64_t OsdMap::placement_seed(PoolId pool, uint32_t pg) const {
  return mix64((static_cast<uint64_t>(pool) << 32) | pg);
}

std::vector<OsdId> OsdMap::acting_for_pg(PoolId pool, uint32_t pg) const {
  const PoolConfig& cfg = this->pool(pool);
  std::vector<OsdId> down;
  for (const auto& [id, up] : up_) {
    if (!up) down.push_back(id);
  }
  return crush_.select(placement_seed(pool, pg), cfg.size(), down);
}

std::vector<OsdId> OsdMap::acting(PoolId pool, const std::string& oid) const {
  return acting_for_pg(pool, pg_of(pool, oid));
}

}  // namespace gdedup
