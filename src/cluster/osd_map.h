#pragma once

// Cluster map: pools, OSD liveness, and the oid -> PG -> OSDs mapping.
//
// This is the decentralized placement function of Figure 2(b): every
// client and OSD evaluates the same pure function of (map epoch, oid), so
// there is no metadata server.  Pool configuration carries the dedup tier
// parameters the same way Ceph's OSDMap carries cache-tier settings —
// that's what lets the dedup design ship without new cluster-wide state.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/crush.h"
#include "common/status.h"
#include "hash/fingerprint.h"
#include "sim/scheduler.h"

namespace gdedup {

using PoolId = int;

enum class RedundancyScheme { kReplicated, kErasure };

enum class DedupMode {
  kOff,
  kPostProcess,  // the paper's design: dirty list + background engine
  kInline,       // baseline for Figure 5(a) / Section 3.1
};

// Dedup tier parameters, attached to the *metadata* pool.
struct DedupTierConfig {
  DedupMode mode = DedupMode::kOff;
  PoolId chunk_pool = -1;
  uint32_t chunk_size = 32 * 1024;
  FingerprintAlgo fp_algo = FingerprintAlgo::kSha256;

  // Hotness (Section 5: HitSet + bloom filter; Hitcount threshold).
  bool cache_enabled = true;
  SimTime hitset_period = kSecond;
  int hitset_count = 4;       // retained periods
  int hitcount_threshold = 2; // accesses before an object counts as hot
  bool promote_on_read = true;
  // Cap on cached (clean) bytes kept in the metadata pool per OSD; 0 means
  // unlimited.  Enforcement is LRU over objects — Section 4.3: "various
  // cache algorithms could be applied here but ... we used a LRU based
  // approach".
  uint64_t cache_capacity_bytes = 0;

  // Background engine (Section 4.4.1) + rate control (Section 4.4.2).
  SimTime engine_tick = msec(100);
  int max_dedup_per_tick = 64;
  int engine_parallelism = 8;  // concurrent background flushes per OSD
  bool rate_control = true;
  // Watermarks are "based on IOPS or throughput" (Section 4.4.2): when
  // watermark_by_bytes is set, the regimes are picked by foreground
  // bytes/s instead of ops/s (sequential-stream workloads).
  bool watermark_by_bytes = false;
  double low_watermark_iops = 1000.0;
  double high_watermark_iops = 5000.0;
  double low_watermark_bps = 50e6;
  double high_watermark_bps = 200e6;
  int ios_per_dedup_mid = 100;   // between watermarks: 1 dedup per 100 fg IOs
  int ios_per_dedup_high = 500;  // above high watermark: 1 per 500
  bool evict_after_flush = true; // reclaim cached copies of cold chunks
  // Section 4.6's optimization: do not wait for de-reference completion on
  // the flush path ("no locking on decrement").  Cheaper flushes; any ref
  // a lost deref leaves behind is reclaimed by the garbage collector
  // (dedup/scrub.h), exactly the trade the paper describes.
  bool async_deref = false;

  // Capping-style selective rewrite (fragmentation-aware restore path):
  // after an object flushes fully clean, if its measured fragmentation
  // (distinct chunk-object extents / chunks) exceeds the threshold, runs
  // of adjacent cold duplicate chunks are rewritten as one fresh
  // contiguous container object, trading bounded storage blowup for
  // restored sequentiality.  Intentionally changes placement, so it is
  // off by default and carries its own frozen determinism digest.
  bool restore_rewrite = false;
  double rewrite_frag_threshold = 0.5;  // rewrite when frag ratio exceeds
  int rewrite_max_pct = 50;             // cap: % of the object's chunks
  int rewrite_run_len = 8;              // max chunks coalesced per container

  // Recipe metadata dedup (Metadedup-style indirection): entries per
  // fixed offset-aligned recipe window.  A window compacts into one
  // content-addressed recipe chunk once its members are all flushed and
  // clean; mutated members shadow the recipe as inline omap entries
  // until enough accumulate to justify a rebuild.  Only consulted when
  // the cluster-level recipe_dedup knob is on.
  int recipe_entries = 32;

  bool enabled() const { return mode != DedupMode::kOff; }
};

struct PoolConfig {
  std::string name;
  RedundancyScheme scheme = RedundancyScheme::kReplicated;
  int replicas = 2;  // paper's experiments use replication factor 2
  int ec_k = 2;
  int ec_m = 1;
  uint32_t pg_num = 128;
  bool compress_at_rest = false;
  DedupTierConfig dedup;

  // Width of an acting set.
  int size() const {
    return scheme == RedundancyScheme::kReplicated ? replicas : ec_k + ec_m;
  }
  // Raw-capacity multiplier of the redundancy scheme.
  double space_amplification() const {
    return scheme == RedundancyScheme::kReplicated
               ? static_cast<double>(replicas)
               : static_cast<double>(ec_k + ec_m) / static_cast<double>(ec_k);
  }
};

class OsdMap {
 public:
  uint64_t epoch() const { return epoch_; }

  // --- topology ---
  void add_osd(OsdId id, HostId host, double weight = 1.0);
  void mark_down(OsdId id);
  void mark_up(OsdId id);
  bool is_up(OsdId id) const;
  std::vector<OsdId> all_osds() const { return crush_.device_ids(); }
  std::vector<OsdId> up_osds() const;
  int num_osds() const { return crush_.num_devices(); }

  CrushMap& crush() { return crush_; }
  const CrushMap& crush() const { return crush_; }

  // --- pools ---
  PoolId create_pool(PoolConfig cfg);
  bool has_pool(PoolId id) const { return pools_.count(id) > 0; }
  const PoolConfig& pool(PoolId id) const;
  PoolConfig& mutable_pool(PoolId id);
  std::optional<PoolId> pool_by_name(const std::string& name) const;
  std::vector<PoolId> pool_ids() const;

  // --- placement ---
  uint32_t pg_of(PoolId pool, const std::string& oid) const;

  // Ordered acting set for an object (primary first).  Down OSDs are
  // excluded, so the set reflects post-failure placement.
  std::vector<OsdId> acting(PoolId pool, const std::string& oid) const;
  std::vector<OsdId> acting_for_pg(PoolId pool, uint32_t pg) const;

  OsdId primary(PoolId pool, const std::string& oid) const {
    auto a = acting(pool, oid);
    return a.empty() ? -1 : a[0];
  }

 private:
  uint64_t placement_seed(PoolId pool, uint32_t pg) const;

  uint64_t epoch_ = 1;
  CrushMap crush_;
  std::map<OsdId, bool> up_;
  std::map<PoolId, PoolConfig> pools_;
  PoolId next_pool_ = 0;
};

}  // namespace gdedup
