#include "cluster/fault_planner.h"

#include <algorithm>

#include "common/random.h"

namespace gdedup {

namespace {

constexpr int kNumEngineFailurePoints = 4;  // FailurePoint in dedup/tier.h
constexpr int kNumOsdFailurePointsHere = 5; // OsdFailurePoint in osd/osd.h

enum class EpisodeKind { kCrash, kEnginePoint, kOsdPoint, kNet };

}  // namespace

FaultPlan plan_faults(const OsdMap& map, uint64_t seed,
                      const FaultPlannerConfig& cfg) {
  FaultPlan plan;
  plan.seed = seed;
  const std::vector<OsdId> up = map.up_osds();
  if (up.empty() || cfg.max_episodes <= 0) return plan;

  Rng rng(mix64(seed ^ 0xfa1075c4ed01eULL));
  auto below_t = [&rng](SimTime n) -> SimTime {
    return n > 0 ? static_cast<SimTime>(rng.below(static_cast<uint64_t>(n)))
                 : 0;
  };
  const int episodes =
      1 + static_cast<int>(rng.below(static_cast<uint64_t>(cfg.max_episodes)));
  const SimTime slice = cfg.horizon / episodes;
  // Tail of each slice reserved for heal + backfill to settle.
  const SimTime settle = slice / 5;

  for (int ep = 0; ep < episodes; ep++) {
    const SimTime s = slice * ep;
    const SimTime e = s + slice;

    std::vector<EpisodeKind> kinds{EpisodeKind::kCrash};
    if (cfg.allow_engine_points) kinds.push_back(EpisodeKind::kEnginePoint);
    if (cfg.allow_osd_points) kinds.push_back(EpisodeKind::kOsdPoint);
    if (cfg.allow_net_faults) kinds.push_back(EpisodeKind::kNet);
    const EpisodeKind kind = kinds[rng.below(kinds.size())];
    const OsdId victim = up[rng.below(up.size())];

    switch (kind) {
      case EpisodeKind::kCrash: {
        const SimTime t_crash = s + below_t(slice / 4);
        const SimTime t_revive = t_crash + slice / 4 + below_t(slice / 4);
        // Crash revives wipe the store: without versioned peering a replica
        // that died mid-fanout would rejoin with a stale chunk map whose old
        // chunks may already be deref-reclaimed — backfilling it whole from
        // the survivors is the only reconciliation the design offers (and
        // the strongest variant of the Figure 9 recovery argument).
        const bool wipe = cfg.allow_wipe;
        plan.events.push_back(
            {t_crash, FaultAction::kCrashOsd, victim, 0, 0, 0});
        plan.events.push_back(
            {t_revive, FaultAction::kReviveOsd, victim, wipe ? 1 : 0, 0, 0});
        plan.events.push_back({t_revive, FaultAction::kRecover, -1, 0, 0, 0});
        break;
      }
      case EpisodeKind::kEnginePoint: {
        const int point = static_cast<int>(rng.below(kNumEngineFailurePoints));
        const int mode = rng.chance(0.5) ? 1 : 0;  // 1 = crash, 0 = abort
        plan.events.push_back(
            {s, FaultAction::kArmEnginePoint, -1, point, mode, 0});
        // Heal at episode end: disarm, and if the point crashed an OSD,
        // revive it wiped and backfill (osd == -1: "whoever fired").
        plan.events.push_back(
            {e - settle, FaultAction::kReviveOsd, -1, 1, 0, 0});
        plan.events.push_back(
            {e - settle, FaultAction::kRecover, -1, 0, 0, 0});
        break;
      }
      case EpisodeKind::kOsdPoint: {
        const int point = static_cast<int>(rng.below(kNumOsdFailurePointsHere));
        if (point == 3) {  // OsdFailurePoint::kBeforeRecoveryPull
          // Pull traffic only exists during a recover() pass over diverged
          // copies, and arming at episode start is useless — the heal-time
          // revive disarms every hook before its recover runs.  Stage the
          // divergence with a drop window instead of a crash: partially
          // applied (unacked) writes skew per-copy versions without taking
          // a disk down, so when the armed recover's pull source is killed
          // mid-backfill it is the episode's ONLY store loss — acked data
          // still has a surviving copy, keeping the schedule inside the
          // pool's redundancy budget.
          const int modulus = 2 + static_cast<int>(rng.below(2));
          plan.events.push_back({s + below_t(slice / 8),
                                 FaultAction::kNetDrop, -1, modulus, 0, 0});
          plan.events.push_back(
              {s + slice * 2 / 5, FaultAction::kNetHeal, -1, 0, 0, 0});
          plan.events.push_back(
              {s + slice / 2, FaultAction::kArmOsdPoint, -1, point, 0, 0});
          plan.events.push_back(
              {s + slice / 2, FaultAction::kRecover, -1, 0, 0, 0});
          plan.events.push_back(
              {e - settle, FaultAction::kReviveOsd, -1, 1, 0, 0});
        } else {
          plan.events.push_back(
              {s, FaultAction::kArmOsdPoint, -1, point, 0, 0});
          plan.events.push_back(
              {e - settle, FaultAction::kReviveOsd, -1, 1, 0, 0});
        }
        plan.events.push_back(
            {e - settle, FaultAction::kRecover, -1, 0, 0, 0});
        break;
      }
      case EpisodeKind::kNet: {
        const SimTime t0 = s + below_t(slice / 4);
        if (rng.chance(0.5)) {
          // Extra latency; kept far below the campaign op timeout so the
          // cluster degrades instead of wedging.
          const SimTime d = usec(500) + below_t(msec(20));
          plan.events.push_back({t0, FaultAction::kNetDelay, -1, 0, 0, d});
        } else {
          const int modulus = 3 + static_cast<int>(rng.below(6));
          plan.events.push_back(
              {t0, FaultAction::kNetDrop, -1, modulus, 0, 0});
        }
        plan.events.push_back({e - settle, FaultAction::kNetHeal, -1, 0, 0, 0});
        break;
      }
    }

    if (rng.chance(cfg.concurrent_gc_chance)) {
      plan.events.push_back({s + slice / 2, FaultAction::kGc, -1, 0, 0, 0});
    }
    if (rng.chance(cfg.concurrent_scrub_chance)) {
      plan.events.push_back(
          {s + slice * 3 / 4, FaultAction::kDeepScrub, -1, 0, 0, 0});
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace gdedup
