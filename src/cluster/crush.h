#pragma once

// CRUSH-style pseudo-random placement (straw2 buckets).
//
// This is the *second* hash of the paper's double hashing: any object ID —
// including a chunk object ID that is itself a content fingerprint — maps
// deterministically to an ordered set of OSDs, with host-level failure
// domains and weight-proportional load.  straw2 selection means weight
// changes and device removals move only the minimal fraction of inputs,
// which the placement-stability tests assert.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gdedup {

using OsdId = int;
using HostId = int;

struct CrushDevice {
  OsdId id = -1;
  HostId host = -1;
  double weight = 1.0;  // 0 == "out" (no new data placed)
};

class CrushMap {
 public:
  void add_device(OsdId id, HostId host, double weight = 1.0);
  Status set_weight(OsdId id, double weight);
  bool has_device(OsdId id) const;
  double weight(OsdId id) const;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  int num_hosts() const;
  std::vector<OsdId> device_ids() const;

  // Select up to `n` distinct OSDs for placement seed `x`, first replica
  // first.  Spreads across distinct hosts while enough hosts have weight;
  // falls back to distinct devices otherwise.  OSDs in `exclude` are
  // skipped (used to re-place around failed devices).
  std::vector<OsdId> select(uint64_t x, int n,
                            const std::vector<OsdId>& exclude = {}) const;

 private:
  // straw2 draw: length of the straw device `d` draws for input `x`.
  static double straw2_draw(uint64_t x, uint64_t item, double weight);

  std::map<OsdId, CrushDevice> devices_;
};

}  // namespace gdedup
