#pragma once

// Topology-aware generation of deterministic fault schedules.
//
// plan_faults(seed) carves the fault phase into disjoint *episodes* and
// fills each one with a fault of a random kind: a plain crash/restart of a
// random OSD, a one-shot crash point armed in the dedup engine or the OSD
// replication/recovery paths, or a network degradation window.  Episode
// discipline keeps every schedule survivable by construction:
//
//   * episodes never overlap, and at most one OSD is down at a time, so no
//     schedule can lose the last copy of an object;
//   * every revive is immediately followed by a recover, so stale or wiped
//     stores are backfilled before the next episode begins;
//   * armed crash points are disarmed at the episode end, and their victim
//     (unknown at planning time, osd == -1) is revived with a wiped store —
//     backfill then rebuilds it from the surviving copies, which is the
//     strongest variant of the paper's Figure 9 recovery argument;
//   * injected network delay stays well under the campaign's op timeout, so
//     degradation slows the cluster down without wedging it.
//
// Concurrent GC / deep-scrub events are sprinkled into episodes to drive
// exactly the "crash + restart + concurrent GC" combinations where dedup
// refcount bugs live.

#include "cluster/osd_map.h"
#include "sim/fault_plan.h"

namespace gdedup {

struct FaultPlannerConfig {
  SimTime horizon = sec(3);  // length of the fault phase
  int max_episodes = 3;      // up to this many disjoint episodes
  bool allow_wipe = true;    // wipe-on-revive for plain crashes (a stale
                             // restarted replica has no peering to reconcile
                             // against deref-reclaimed chunks; keep true)
  bool allow_net_faults = true;
  bool allow_engine_points = true;  // dedup-tier FailurePoint arming
  bool allow_osd_points = true;     // OsdFailurePoint arming
  double concurrent_gc_chance = 0.5;
  double concurrent_scrub_chance = 0.35;
};

FaultPlan plan_faults(const OsdMap& map, uint64_t seed,
                      const FaultPlannerConfig& cfg = {});

}  // namespace gdedup
