#include "cluster/crush.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "common/random.h"

namespace gdedup {

void CrushMap::add_device(OsdId id, HostId host, double weight) {
  assert(!devices_.count(id));
  devices_[id] = CrushDevice{id, host, weight};
}

Status CrushMap::set_weight(OsdId id, double weight) {
  auto it = devices_.find(id);
  if (it == devices_.end()) return Status::not_found("no such osd");
  if (weight < 0) return Status::invalid("negative weight");
  it->second.weight = weight;
  return Status::ok();
}

bool CrushMap::has_device(OsdId id) const { return devices_.count(id) > 0; }

double CrushMap::weight(OsdId id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? 0.0 : it->second.weight;
}

int CrushMap::num_hosts() const {
  std::set<HostId> hosts;
  for (const auto& [id, d] : devices_) hosts.insert(d.host);
  return static_cast<int>(hosts.size());
}

std::vector<OsdId> CrushMap::device_ids() const {
  std::vector<OsdId> out;
  out.reserve(devices_.size());
  for (const auto& [id, d] : devices_) out.push_back(id);
  return out;
}

double CrushMap::straw2_draw(uint64_t x, uint64_t item, double weight) {
  if (weight <= 0) return -1e300;
  // Uniform (0,1] hash of (input, item), then ln(u)/w: the device with the
  // maximum draw wins.  Equal-content inputs get equal draws — placement
  // is a pure function of (x, map).
  const uint64_t h = mix64(x ^ mix64(item * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  const double u =
      (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
  return std::log(u) / weight;
}

std::vector<OsdId> CrushMap::select(uint64_t x, int n,
                                    const std::vector<OsdId>& exclude) const {
  std::set<OsdId> excluded(exclude.begin(), exclude.end());

  // Candidate devices with positive weight, not excluded.
  std::vector<const CrushDevice*> cands;
  cands.reserve(devices_.size());
  std::set<HostId> cand_hosts;
  for (const auto& [id, d] : devices_) {
    if (d.weight > 0 && !excluded.count(id)) {
      cands.push_back(&d);
      cand_hosts.insert(d.host);
    }
  }

  const bool spread_hosts = static_cast<int>(cand_hosts.size()) >= n;
  std::vector<OsdId> out;
  std::set<OsdId> chosen;
  std::set<HostId> chosen_hosts;

  while (static_cast<int>(out.size()) < n) {
    const CrushDevice* best = nullptr;
    double best_draw = -1e301;
    for (const CrushDevice* d : cands) {
      if (chosen.count(d->id)) continue;
      if (spread_hosts && chosen_hosts.count(d->host)) continue;
      const double draw = straw2_draw(x, static_cast<uint64_t>(d->id), d->weight);
      if (draw > best_draw) {
        best_draw = draw;
        best = d;
      }
    }
    if (best == nullptr) break;  // fewer candidates than n
    out.push_back(best->id);
    chosen.insert(best->id);
    chosen_hosts.insert(best->host);
  }
  return out;
}

}  // namespace gdedup
