#include "hash/fingerprint.h"

#include <algorithm>
#include <cstring>

#include "hash/sha1.h"
#include "hash/sha256.h"

namespace gdedup {

std::string_view fingerprint_algo_name(FingerprintAlgo a) {
  switch (a) {
    case FingerprintAlgo::kSha1:
      return "sha1";
    case FingerprintAlgo::kSha256:
      return "sha256";
  }
  return "unknown";
}

Fingerprint Fingerprint::compute(FingerprintAlgo algo,
                                 std::span<const uint8_t> data) {
  Fingerprint f;
  f.algo_ = algo;
  switch (algo) {
    case FingerprintAlgo::kSha1: {
      auto d = Sha1::of(data);
      f.len_ = d.size();
      std::copy(d.begin(), d.end(), f.digest_.begin());
      break;
    }
    case FingerprintAlgo::kSha256: {
      auto d = Sha256::of(data);
      f.len_ = d.size();
      std::copy(d.begin(), d.end(), f.digest_.begin());
      break;
    }
  }
  return f;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Fingerprint> Fingerprint::from_hex(std::string_view hex) {
  Fingerprint f;
  auto colon = hex.find(':');
  if (colon == std::string_view::npos) {
    return Status::invalid("fingerprint missing algo prefix");
  }
  auto name = hex.substr(0, colon);
  if (name == "sha1") {
    f.algo_ = FingerprintAlgo::kSha1;
    f.len_ = Sha1::kDigestSize;
  } else if (name == "sha256") {
    f.algo_ = FingerprintAlgo::kSha256;
    f.len_ = Sha256::kDigestSize;
  } else {
    return Status::invalid("unknown fingerprint algo");
  }
  auto digits = hex.substr(colon + 1);
  if (digits.size() != f.len_ * 2) {
    return Status::invalid("bad fingerprint length");
  }
  for (size_t i = 0; i < f.len_; i++) {
    const int hi = hex_val(digits[i * 2]);
    const int lo = hex_val(digits[i * 2 + 1]);
    if (hi < 0 || lo < 0) return Status::invalid("bad hex digit");
    f.digest_[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return f;
}

std::string Fingerprint::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string s(fingerprint_algo_name(algo_));
  s.push_back(':');
  for (size_t i = 0; i < len_; i++) {
    s.push_back(kHex[digest_[i] >> 4]);
    s.push_back(kHex[digest_[i] & 0xf]);
  }
  return s;
}

uint64_t Fingerprint::prefix64() const {
  uint64_t v = 0;
  std::memcpy(&v, digest_.data(), std::min<size_t>(8, len_));
  return v;
}

bool Fingerprint::operator<(const Fingerprint& o) const {
  if (algo_ != o.algo_) return algo_ < o.algo_;
  return std::lexicographical_compare(digest_.begin(), digest_.begin() + len_,
                                      o.digest_.begin(),
                                      o.digest_.begin() + o.len_);
}

uint64_t fnv1a(std::span<const uint8_t> data, uint64_t seed) {
  uint64_t h = seed;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t fnv1a(std::string_view s, uint64_t seed) {
  return fnv1a(std::span<const uint8_t>(
                   reinterpret_cast<const uint8_t*>(s.data()), s.size()),
               seed);
}

}  // namespace gdedup
