#pragma once

// SHA-1 (FIPS 180-4).
//
// Kept alongside SHA-256 because the original Ceph dedup work fingerprints
// with SHA-1 by default; the Fingerprint type can use either, and the
// micro benchmark compares their costs.

#include <array>
#include <cstdint>
#include <span>

namespace gdedup {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const uint8_t> data);
  Digest finish();

  static Digest of(std::span<const uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_blocks(const uint8_t* blocks, size_t nblocks);

  uint32_t state_[5];
  uint64_t total_len_;
  uint8_t buf_[64];
  size_t buf_len_;
};

}  // namespace gdedup
