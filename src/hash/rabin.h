#pragma once

// Rabin-style rolling hash over a sliding window.
//
// Backs the content-defined chunker (the paper uses fixed-size chunking in
// production because CDC's CPU cost hurts Ceph's already CPU-bound small
// writes — Section 5 — but we implement CDC too so the chunk-size ablation
// can quantify that trade-off).

#include <array>
#include <cstdint>
#include <span>

namespace gdedup {

class RabinRolling {
 public:
  static constexpr size_t kWindow = 48;

  RabinRolling() { reset(); }

  void reset();

  // Slide one byte in (and the oldest out once the window is full).
  uint64_t roll(uint8_t in);

  uint64_t value() const { return hash_; }
  bool window_full() const { return count_ >= kWindow; }

 private:
  // Multiplier tables precomputed for the "remove oldest byte" step.
  static const std::array<uint64_t, 256>& out_table();

  uint64_t hash_;
  size_t count_;
  size_t pos_;
  std::array<uint8_t, kWindow> window_;
};

}  // namespace gdedup
