#pragma once

// Rabin-style rolling hash over a sliding window.
//
// Backs the content-defined chunker (the paper uses fixed-size chunking in
// production because CDC's CPU cost hurts Ceph's already CPU-bound small
// writes — Section 5 — but we implement CDC too so the chunk-size ablation
// can quantify that trade-off).

#include <array>
#include <cstdint>
#include <span>

namespace gdedup {

class RabinRolling {
 public:
  static constexpr size_t kWindow = 48;
  static constexpr uint64_t kMul = 0x9b97714def8a0d8dULL;  // odd multiplier

  RabinRolling() { reset(); }

  void reset();

  // Slide one byte in (and the oldest out once the window is full).
  // Inline and branch-light: the table pointer is resolved once in the
  // constructor so the hot loop carries no static-init guard, and the ring
  // index wraps with a compare instead of `%`.
  uint64_t roll(uint8_t in) {
    hash_ = hash_ * kMul + in;
    if (count_ >= kWindow) {
      hash_ -= out_[window_[pos_]];
    } else {
      count_++;
    }
    window_[pos_] = in;
    if (++pos_ == kWindow) pos_ = 0;
    return hash_;
  }

  uint64_t value() const { return hash_; }
  bool window_full() const { return count_ >= kWindow; }

  // Multiplier table for the "remove oldest byte" step: out_table()[b] ==
  // b * kMul^kWindow.  Public so the chunker's skip-ahead loop can hoist
  // the lookup out of its inner loop too.
  static const std::array<uint64_t, 256>& out_table();

 private:
  uint64_t hash_;
  size_t count_;
  size_t pos_;
  const uint64_t* out_ = out_table().data();
  std::array<uint8_t, kWindow> window_;
};

}  // namespace gdedup
