#pragma once

// Chunk fingerprints — the first hash of the paper's "double hashing".
//
// A Fingerprint is the content hash of a chunk.  Its hex form *is* the
// chunk object's ID in the chunk pool; the cluster's placement hash (the
// second hash) then maps equal content to the same OSDs, which is what
// deletes the fingerprint index from the design.

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/status.h"

namespace gdedup {

enum class FingerprintAlgo : uint8_t {
  kSha1 = 1,
  kSha256 = 2,
};

std::string_view fingerprint_algo_name(FingerprintAlgo a);

class Fingerprint {
 public:
  static constexpr size_t kMaxDigest = 32;

  Fingerprint() = default;

  static Fingerprint compute(FingerprintAlgo algo,
                             std::span<const uint8_t> data);

  // Parse the hex form produced by hex() (with the algo prefix).
  static Result<Fingerprint> from_hex(std::string_view hex);

  FingerprintAlgo algo() const { return algo_; }
  std::span<const uint8_t> digest() const { return {digest_.data(), len_}; }

  // "sha256:ab12..."; used verbatim as the chunk object ID.
  std::string hex() const;

  // First 8 bytes as a u64 — convenient key for bloom filters / maps.
  uint64_t prefix64() const;

  bool operator==(const Fingerprint& o) const {
    return algo_ == o.algo_ && len_ == o.len_ &&
           std::equal(digest_.begin(), digest_.begin() + len_,
                      o.digest_.begin());
  }
  bool operator<(const Fingerprint& o) const;

  bool empty() const { return len_ == 0; }

 private:
  FingerprintAlgo algo_ = FingerprintAlgo::kSha256;
  size_t len_ = 0;
  std::array<uint8_t, kMaxDigest> digest_{};
};

// FNV-1a — cheap non-cryptographic hash for placement and bucketing.
uint64_t fnv1a(std::span<const uint8_t> data, uint64_t seed = 0xcbf29ce484222325ULL);
uint64_t fnv1a(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace gdedup

template <>
struct std::hash<gdedup::Fingerprint> {
  size_t operator()(const gdedup::Fingerprint& f) const noexcept {
    return static_cast<size_t>(f.prefix64());
  }
};
