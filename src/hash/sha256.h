#pragma once

// SHA-256 (FIPS 180-4) — the default fingerprint hash for chunk objects.

#include <array>
#include <cstdint>
#include <span>

namespace gdedup {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const uint8_t> data);
  Digest finish();

  static Digest of(std::span<const uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_blocks(const uint8_t* blocks, size_t nblocks);

  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buf_[64];
  size_t buf_len_;
};

}  // namespace gdedup
