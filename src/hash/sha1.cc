#include "hash/sha1.h"

#include <cstring>

// Two interchangeable block compressors sit behind process_blocks(): a
// portable unrolled scalar path and (on x86-64 with SHA-NI) a hardware
// path.  Both are the same FIPS 180-4 function, so digests are
// bit-identical regardless of which one runs — the tests pin that with
// golden vectors.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GDEDUP_HAVE_SHA_NI 1
#include <immintrin.h>
#endif

namespace gdedup {

namespace {

inline uint32_t rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline uint32_t load_be32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}

// Portable compressor: branch-free unrolled rounds over a 16-word rolling
// schedule (the w[80] expansion of the textbook form is redundant — only
// the last 16 words are ever live).
void compress_portable(uint32_t state[5], const uint8_t* p, size_t nblocks) {
  uint32_t a, b, c, d, e;
  uint32_t w[16];
  while (nblocks-- > 0) {
    for (int i = 0; i < 16; i++) w[i] = load_be32(p + i * 4);
    p += 64;
    a = state[0];
    b = state[1];
    c = state[2];
    d = state[3];
    e = state[4];

#define W(i) w[(i)&15]
#define SCHED(i) \
  (W(i) = rotl32(W(i + 13) ^ W(i + 8) ^ W(i + 2) ^ W(i), 1))
#define R(f, k, x, a, b, c, d, e) \
  e += rotl32(a, 5) + (f) + (k) + (x); \
  b = rotl32(b, 30);
#define F1(b, c, d) (((c ^ d) & b) ^ d)
#define F2(b, c, d) (b ^ c ^ d)
#define F3(b, c, d) (((b | c) & d) | (b & c))

    R(F1(b, c, d), 0x5A827999, W(0), a, b, c, d, e)
    R(F1(a, b, c), 0x5A827999, W(1), e, a, b, c, d)
    R(F1(e, a, b), 0x5A827999, W(2), d, e, a, b, c)
    R(F1(d, e, a), 0x5A827999, W(3), c, d, e, a, b)
    R(F1(c, d, e), 0x5A827999, W(4), b, c, d, e, a)
    R(F1(b, c, d), 0x5A827999, W(5), a, b, c, d, e)
    R(F1(a, b, c), 0x5A827999, W(6), e, a, b, c, d)
    R(F1(e, a, b), 0x5A827999, W(7), d, e, a, b, c)
    R(F1(d, e, a), 0x5A827999, W(8), c, d, e, a, b)
    R(F1(c, d, e), 0x5A827999, W(9), b, c, d, e, a)
    R(F1(b, c, d), 0x5A827999, W(10), a, b, c, d, e)
    R(F1(a, b, c), 0x5A827999, W(11), e, a, b, c, d)
    R(F1(e, a, b), 0x5A827999, W(12), d, e, a, b, c)
    R(F1(d, e, a), 0x5A827999, W(13), c, d, e, a, b)
    R(F1(c, d, e), 0x5A827999, W(14), b, c, d, e, a)
    R(F1(b, c, d), 0x5A827999, W(15), a, b, c, d, e)
    R(F1(a, b, c), 0x5A827999, SCHED(16), e, a, b, c, d)
    R(F1(e, a, b), 0x5A827999, SCHED(17), d, e, a, b, c)
    R(F1(d, e, a), 0x5A827999, SCHED(18), c, d, e, a, b)
    R(F1(c, d, e), 0x5A827999, SCHED(19), b, c, d, e, a)

    R(F2(b, c, d), 0x6ED9EBA1, SCHED(20), a, b, c, d, e)
    R(F2(a, b, c), 0x6ED9EBA1, SCHED(21), e, a, b, c, d)
    R(F2(e, a, b), 0x6ED9EBA1, SCHED(22), d, e, a, b, c)
    R(F2(d, e, a), 0x6ED9EBA1, SCHED(23), c, d, e, a, b)
    R(F2(c, d, e), 0x6ED9EBA1, SCHED(24), b, c, d, e, a)
    R(F2(b, c, d), 0x6ED9EBA1, SCHED(25), a, b, c, d, e)
    R(F2(a, b, c), 0x6ED9EBA1, SCHED(26), e, a, b, c, d)
    R(F2(e, a, b), 0x6ED9EBA1, SCHED(27), d, e, a, b, c)
    R(F2(d, e, a), 0x6ED9EBA1, SCHED(28), c, d, e, a, b)
    R(F2(c, d, e), 0x6ED9EBA1, SCHED(29), b, c, d, e, a)
    R(F2(b, c, d), 0x6ED9EBA1, SCHED(30), a, b, c, d, e)
    R(F2(a, b, c), 0x6ED9EBA1, SCHED(31), e, a, b, c, d)
    R(F2(e, a, b), 0x6ED9EBA1, SCHED(32), d, e, a, b, c)
    R(F2(d, e, a), 0x6ED9EBA1, SCHED(33), c, d, e, a, b)
    R(F2(c, d, e), 0x6ED9EBA1, SCHED(34), b, c, d, e, a)
    R(F2(b, c, d), 0x6ED9EBA1, SCHED(35), a, b, c, d, e)
    R(F2(a, b, c), 0x6ED9EBA1, SCHED(36), e, a, b, c, d)
    R(F2(e, a, b), 0x6ED9EBA1, SCHED(37), d, e, a, b, c)
    R(F2(d, e, a), 0x6ED9EBA1, SCHED(38), c, d, e, a, b)
    R(F2(c, d, e), 0x6ED9EBA1, SCHED(39), b, c, d, e, a)

    R(F3(b, c, d), 0x8F1BBCDC, SCHED(40), a, b, c, d, e)
    R(F3(a, b, c), 0x8F1BBCDC, SCHED(41), e, a, b, c, d)
    R(F3(e, a, b), 0x8F1BBCDC, SCHED(42), d, e, a, b, c)
    R(F3(d, e, a), 0x8F1BBCDC, SCHED(43), c, d, e, a, b)
    R(F3(c, d, e), 0x8F1BBCDC, SCHED(44), b, c, d, e, a)
    R(F3(b, c, d), 0x8F1BBCDC, SCHED(45), a, b, c, d, e)
    R(F3(a, b, c), 0x8F1BBCDC, SCHED(46), e, a, b, c, d)
    R(F3(e, a, b), 0x8F1BBCDC, SCHED(47), d, e, a, b, c)
    R(F3(d, e, a), 0x8F1BBCDC, SCHED(48), c, d, e, a, b)
    R(F3(c, d, e), 0x8F1BBCDC, SCHED(49), b, c, d, e, a)
    R(F3(b, c, d), 0x8F1BBCDC, SCHED(50), a, b, c, d, e)
    R(F3(a, b, c), 0x8F1BBCDC, SCHED(51), e, a, b, c, d)
    R(F3(e, a, b), 0x8F1BBCDC, SCHED(52), d, e, a, b, c)
    R(F3(d, e, a), 0x8F1BBCDC, SCHED(53), c, d, e, a, b)
    R(F3(c, d, e), 0x8F1BBCDC, SCHED(54), b, c, d, e, a)
    R(F3(b, c, d), 0x8F1BBCDC, SCHED(55), a, b, c, d, e)
    R(F3(a, b, c), 0x8F1BBCDC, SCHED(56), e, a, b, c, d)
    R(F3(e, a, b), 0x8F1BBCDC, SCHED(57), d, e, a, b, c)
    R(F3(d, e, a), 0x8F1BBCDC, SCHED(58), c, d, e, a, b)
    R(F3(c, d, e), 0x8F1BBCDC, SCHED(59), b, c, d, e, a)

    R(F2(b, c, d), 0xCA62C1D6, SCHED(60), a, b, c, d, e)
    R(F2(a, b, c), 0xCA62C1D6, SCHED(61), e, a, b, c, d)
    R(F2(e, a, b), 0xCA62C1D6, SCHED(62), d, e, a, b, c)
    R(F2(d, e, a), 0xCA62C1D6, SCHED(63), c, d, e, a, b)
    R(F2(c, d, e), 0xCA62C1D6, SCHED(64), b, c, d, e, a)
    R(F2(b, c, d), 0xCA62C1D6, SCHED(65), a, b, c, d, e)
    R(F2(a, b, c), 0xCA62C1D6, SCHED(66), e, a, b, c, d)
    R(F2(e, a, b), 0xCA62C1D6, SCHED(67), d, e, a, b, c)
    R(F2(d, e, a), 0xCA62C1D6, SCHED(68), c, d, e, a, b)
    R(F2(c, d, e), 0xCA62C1D6, SCHED(69), b, c, d, e, a)
    R(F2(b, c, d), 0xCA62C1D6, SCHED(70), a, b, c, d, e)
    R(F2(a, b, c), 0xCA62C1D6, SCHED(71), e, a, b, c, d)
    R(F2(e, a, b), 0xCA62C1D6, SCHED(72), d, e, a, b, c)
    R(F2(d, e, a), 0xCA62C1D6, SCHED(73), c, d, e, a, b)
    R(F2(c, d, e), 0xCA62C1D6, SCHED(74), b, c, d, e, a)
    R(F2(b, c, d), 0xCA62C1D6, SCHED(75), a, b, c, d, e)
    R(F2(a, b, c), 0xCA62C1D6, SCHED(76), e, a, b, c, d)
    R(F2(e, a, b), 0xCA62C1D6, SCHED(77), d, e, a, b, c)
    R(F2(d, e, a), 0xCA62C1D6, SCHED(78), c, d, e, a, b)
    R(F2(c, d, e), 0xCA62C1D6, SCHED(79), b, c, d, e, a)

#undef W
#undef SCHED
#undef R
#undef F1
#undef F2
#undef F3

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
  }
}

#if GDEDUP_HAVE_SHA_NI

__attribute__((target("sha,sse4.1"))) void compress_shani(uint32_t state[5],
                                                          const uint8_t* data,
                                                          size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);
  __m128i abcd =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);

  while (nblocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e_save = e0;
    __m128i e1;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    data += 64;

    // Rounds 0-3
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    // Rounds 4-7
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    // Rounds 8-11
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 12-15
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<uint32_t>(_mm_extract_epi32(e0, 3));
}

#endif  // GDEDUP_HAVE_SHA_NI

using CompressFn = void (*)(uint32_t*, const uint8_t*, size_t);

CompressFn resolve_compress() {
#if GDEDUP_HAVE_SHA_NI
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
    return compress_shani;
  }
#endif
  return compress_portable;
}

inline void compress(uint32_t* state, const uint8_t* p, size_t nblocks) {
  static const CompressFn fn = resolve_compress();
  fn(state, p, nblocks);
}

}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha1::process_blocks(const uint8_t* blocks, size_t nblocks) {
  compress(state_, blocks, nblocks);
}

void Sha1::update(std::span<const uint8_t> data) {
  total_len_ += data.size();
  const uint8_t* p = data.data();
  size_t n = data.size();
  if (buf_len_ > 0) {
    const size_t take = std::min(n, sizeof(buf_) - buf_len_);
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    n -= take;
    if (buf_len_ == sizeof(buf_)) {
      process_blocks(buf_, 1);
      buf_len_ = 0;
    }
  }
  if (n >= 64) {
    // Bulk path: compress whole blocks straight out of the caller's span,
    // no staging copy through buf_.
    const size_t nblocks = n / 64;
    process_blocks(p, nblocks);
    p += nblocks * 64;
    n -= nblocks * 64;
  }
  if (n > 0) {
    std::memcpy(buf_, p, n);
    buf_len_ = n;
  }
}

Sha1::Digest Sha1::finish() {
  const uint64_t bit_len = total_len_ * 8;
  buf_[buf_len_++] = 0x80;
  if (buf_len_ > 56) {
    std::memset(buf_ + buf_len_, 0, sizeof(buf_) - buf_len_);
    process_blocks(buf_, 1);
    buf_len_ = 0;
  }
  std::memset(buf_ + buf_len_, 0, 56 - buf_len_);
  for (int i = 0; i < 8; i++) {
    buf_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
  }
  process_blocks(buf_, 1);

  Digest d;
  for (int i = 0; i < 5; i++) {
    d[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    d[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    d[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    d[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return d;
}

}  // namespace gdedup
