#include "hash/sha1.h"

#include <cstring>

namespace gdedup {

namespace {
inline uint32_t rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha1::process_block(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; i++) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; i++) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4];
  for (int i = 0; i < 80; i++) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const uint8_t> data) {
  total_len_ += data.size();
  const uint8_t* p = data.data();
  size_t n = data.size();
  if (buf_len_ > 0) {
    const size_t take = std::min(n, sizeof(buf_) - buf_len_);
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    n -= take;
    if (buf_len_ == sizeof(buf_)) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buf_, p, n);
    buf_len_ = n;
  }
}

Sha1::Digest Sha1::finish() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad = 0x80;
  update({&pad, 1});
  const uint8_t zero = 0;
  while (buf_len_ != 56) update({&zero, 1});
  uint8_t len_be[8];
  for (int i = 0; i < 8; i++) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
  }
  update({len_be, 8});

  Digest d;
  for (int i = 0; i < 5; i++) {
    d[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    d[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    d[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    d[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return d;
}

}  // namespace gdedup
