#include "hash/sha256.h"

#include <cstring>

// Same layering as sha1.cc: a portable unrolled compressor and (on x86-64
// with SHA-NI) a hardware compressor behind one dispatch point.  Both
// compute the identical FIPS 180-4 function; golden-vector tests pin the
// outputs.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GDEDUP_HAVE_SHA_NI 1
#include <immintrin.h>
#endif

namespace gdedup {

namespace {

inline uint32_t rotr32(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

inline uint32_t load_be32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// Portable compressor: 16-word rolling schedule and rounds unrolled eight
// at a time via register rotation, instead of the textbook w[64] + per-
// round shifting of eight state variables.
void compress_portable(uint32_t state[8], const uint8_t* p, size_t nblocks) {
  uint32_t w[16];
  while (nblocks-- > 0) {
    for (int i = 0; i < 16; i++) w[i] = load_be32(p + i * 4);
    p += 64;
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

#define S0(x) (rotr32(x, 2) ^ rotr32(x, 13) ^ rotr32(x, 22))
#define S1(x) (rotr32(x, 6) ^ rotr32(x, 11) ^ rotr32(x, 25))
#define LS0(x) (rotr32(x, 7) ^ rotr32(x, 18) ^ ((x) >> 3))
#define LS1(x) (rotr32(x, 17) ^ rotr32(x, 19) ^ ((x) >> 10))
#define W(i) w[(i)&15]
#define SCHED(i) \
  (W(i) += LS1(W(i + 14)) + W(i + 9) + LS0(W(i + 1)))
#define RND(a, b, c, d, e, f, g, h, k, x)                    \
  {                                                          \
    const uint32_t t1 = h + S1(e) + (g ^ (e & (f ^ g))) + (k) + (x); \
    const uint32_t t2 = S0(a) + ((a & b) | (c & (a | b)));   \
    d += t1;                                                 \
    h = t1 + t2;                                             \
  }

    for (int i = 0; i < 64; i += 8) {
      if (i >= 16) {
        SCHED(i);
        SCHED(i + 1);
        SCHED(i + 2);
        SCHED(i + 3);
        SCHED(i + 4);
        SCHED(i + 5);
        SCHED(i + 6);
        SCHED(i + 7);
      }
      RND(a, b, c, d, e, f, g, h, kK[i], W(i));
      RND(h, a, b, c, d, e, f, g, kK[i + 1], W(i + 1));
      RND(g, h, a, b, c, d, e, f, kK[i + 2], W(i + 2));
      RND(f, g, h, a, b, c, d, e, kK[i + 3], W(i + 3));
      RND(e, f, g, h, a, b, c, d, kK[i + 4], W(i + 4));
      RND(d, e, f, g, h, a, b, c, kK[i + 5], W(i + 5));
      RND(c, d, e, f, g, h, a, b, kK[i + 6], W(i + 6));
      RND(b, c, d, e, f, g, h, a, kK[i + 7], W(i + 7));
    }

#undef S0
#undef S1
#undef LS0
#undef LS1
#undef W
#undef SCHED
#undef RND

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if GDEDUP_HAVE_SHA_NI

__attribute__((target("sha,sse4.1"))) void compress_shani(uint32_t state[8],
                                                          const uint8_t* data,
                                                          size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // State lanes as the SHA-NI instructions want them: ABEF / CDGH.
  __m128i tmp = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0])), 0xB1);
  __m128i st1 = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4])), 0x1B);
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);           // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);                // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg, tmp2;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    data += 64;

    // Rounds 0-3
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    // Rounds 4-7
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    // Rounds 8-11
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);
    // Rounds 12-15
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp2);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    // Rounds 16-19
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp2);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);
    // Rounds 20-23
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp2);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    // Rounds 24-27
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp2);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);
    // Rounds 28-31
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp2);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    // Rounds 32-35
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp2);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);
    // Rounds 36-39
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp2);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    // Rounds 40-43
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp2);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);
    // Rounds 44-47
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp2);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    // Rounds 48-51
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp2);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);
    // Rounds 52-55
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp2);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    // Rounds 56-59
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp2 = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp2);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    // Rounds 60-63
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
  }

  tmp = _mm_shuffle_epi32(st0, 0x1B);                   // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);                   // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);                // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);                   // ABEF -> HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

#endif  // GDEDUP_HAVE_SHA_NI

using CompressFn = void (*)(uint32_t*, const uint8_t*, size_t);

CompressFn resolve_compress() {
#if GDEDUP_HAVE_SHA_NI
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
    return compress_shani;
  }
#endif
  return compress_portable;
}

inline void compress(uint32_t* state, const uint8_t* p, size_t nblocks) {
  static const CompressFn fn = resolve_compress();
  fn(state, p, nblocks);
}

}  // namespace

void Sha256::reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha256::process_blocks(const uint8_t* blocks, size_t nblocks) {
  compress(state_, blocks, nblocks);
}

void Sha256::update(std::span<const uint8_t> data) {
  total_len_ += data.size();
  const uint8_t* p = data.data();
  size_t n = data.size();
  if (buf_len_ > 0) {
    const size_t take = std::min(n, sizeof(buf_) - buf_len_);
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    n -= take;
    if (buf_len_ == sizeof(buf_)) {
      process_blocks(buf_, 1);
      buf_len_ = 0;
    }
  }
  if (n >= 64) {
    // Bulk path: compress whole blocks straight out of the caller's span,
    // no staging copy through buf_.
    const size_t nblocks = n / 64;
    process_blocks(p, nblocks);
    p += nblocks * 64;
    n -= nblocks * 64;
  }
  if (n > 0) {
    std::memcpy(buf_, p, n);
    buf_len_ = n;
  }
}

Sha256::Digest Sha256::finish() {
  const uint64_t bit_len = total_len_ * 8;
  buf_[buf_len_++] = 0x80;
  if (buf_len_ > 56) {
    std::memset(buf_ + buf_len_, 0, sizeof(buf_) - buf_len_);
    process_blocks(buf_, 1);
    buf_len_ = 0;
  }
  std::memset(buf_ + buf_len_, 0, 56 - buf_len_);
  for (int i = 0; i < 8; i++) {
    buf_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
  }
  process_blocks(buf_, 1);

  Digest d;
  for (int i = 0; i < 8; i++) {
    d[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    d[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    d[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    d[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return d;
}

}  // namespace gdedup
