#include "hash/weak_hash.h"

#include <cstring>

namespace gdedup {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t load_le64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (the whole sim assumes LE wire)
}

inline uint64_t mix_word(uint64_t h, uint64_t w) {
  return (h ^ w) * kFnvPrime;
}

// splitmix64 finalizer: FNV over words leaves the low bits weakly mixed
// for short inputs; the index shards and the Bloom filter key off the low
// bits, so avalanche them.
inline uint64_t finalize(uint64_t h, uint64_t len) {
  h ^= len;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

void WeakHasher::update(std::span<const uint8_t> data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  total_len_ += n;

  // Finish a partial word carried from the previous update().
  if (tail_len_ > 0) {
    const size_t take = std::min(n, sizeof(tail_) - tail_len_);
    std::memcpy(tail_ + tail_len_, p, take);
    tail_len_ += take;
    p += take;
    n -= take;
    if (tail_len_ < sizeof(tail_)) return;
    h_ = mix_word(h_, load_le64(tail_));
    tail_len_ = 0;
  }

  while (n >= 8) {
    h_ = mix_word(h_, load_le64(p));
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::memcpy(tail_, p, n);
    tail_len_ = n;
  }
}

uint64_t WeakHasher::digest() const {
  uint64_t h = h_;
  if (tail_len_ > 0) {
    // Zero-padded final word: the length fold in finalize() keeps streams
    // that differ only by trailing zero-padding distinct.
    uint8_t w[8] = {};
    std::memcpy(w, tail_, tail_len_);
    h = mix_word(h, load_le64(w));
  }
  return finalize(h, total_len_);
}

void WeakHasher::reset() {
  h_ = kOffsetBasis;
  total_len_ = 0;
  tail_len_ = 0;
}

uint64_t WeakHasher::oneshot(std::span<const uint8_t> data) {
  uint64_t h = kOffsetBasis;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    h = mix_word(h, load_le64(p));
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint8_t w[8] = {};
    std::memcpy(w, p, n);
    h = mix_word(h, load_le64(w));
  }
  return finalize(h, data.size());
}

uint64_t weak_hash64(const void* data, size_t len) {
  return WeakHasher::oneshot({static_cast<const uint8_t*>(data), len});
}

}  // namespace gdedup
