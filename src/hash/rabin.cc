#include "hash/rabin.h"

namespace gdedup {

namespace {
constexpr uint64_t pow_mul(size_t e) {
  uint64_t r = 1;
  for (size_t i = 0; i < e; i++) r *= RabinRolling::kMul;
  return r;
}
}  // namespace

const std::array<uint64_t, 256>& RabinRolling::out_table() {
  // out_table[b] = b * kMul^kWindow, so removing the byte that entered
  // kWindow steps ago is a single subtract.
  static const std::array<uint64_t, 256> table = [] {
    std::array<uint64_t, 256> t{};
    const uint64_t mw = pow_mul(kWindow);
    for (uint64_t b = 0; b < 256; b++) t[b] = b * mw;
    return t;
  }();
  return table;
}

void RabinRolling::reset() {
  hash_ = 0;
  count_ = 0;
  pos_ = 0;
  window_.fill(0);
}

}  // namespace gdedup
