#pragma once

// Weak (non-cryptographic) chunk hash — the candidate filter of the
// two-tier fingerprint fast path.
//
// The write pipeline fingerprints every dirty chunk with full SHA even
// though, on dedup-heavy workloads, most chunks repeat content the node
// has hashed before.  A cheap 64-bit weak hash is enough to *find* the
// candidate: the fingerprint index keeps the candidate's real bytes, and
// a memcmp against them decides.  Weak-hash collisions are therefore
// harmless — a collision fails byte verification and falls back to the
// full SHA — so this hash optimizes for speed, not distribution-theoretic
// guarantees (FNV-1a over 8-byte words, ~8x fewer multiplies than the
// byte-wise FNV used for placement, plus a splitmix64 finalizer so short
// tails still spread over the index shards).
//
// Streaming: WeakHasher::update() may be fed arbitrary spans; digest() is
// defined over the byte stream only, never over the split points — the
// incremental-vs-oneshot equivalence test pins that down.

#include <cstdint>
#include <span>

namespace gdedup {

class WeakHasher {
 public:
  void update(std::span<const uint8_t> data);
  // Final value over all bytes fed so far; does not consume (more
  // update() calls continue the same stream).
  uint64_t digest() const;
  void reset();

  uint64_t bytes_consumed() const { return total_len_; }

  static uint64_t oneshot(std::span<const uint8_t> data);

 private:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;

  uint64_t h_ = kOffsetBasis;
  uint64_t total_len_ = 0;
  uint8_t tail_[8] = {};
  size_t tail_len_ = 0;
};

// Convenience alias for call sites that hold a raw pointer.
uint64_t weak_hash64(const void* data, size_t len);

}  // namespace gdedup
