#include "workload/vm_corpus.h"

#include <algorithm>
#include <cassert>

namespace gdedup::workload {

Buffer VmImageCorpus::image_block(int vm, uint64_t b) const {
  const uint64_t total = blocks_per_image();
  const uint64_t os_blocks = static_cast<uint64_t>(total * cfg_.os_fraction);
  const uint64_t unique_blocks =
      static_cast<uint64_t>(total * cfg_.unique_fraction);
  assert(b < total);

  if (b < os_blocks) {
    // Shared OS payload: identical across every VM cloned from the
    // template, block-for-block.
    return BlockContent::make(mix64(cfg_.template_seed ^ mix64(b + 1)),
                              cfg_.block_size, cfg_.os_compressible);
  }
  if (b < os_blocks + unique_blocks) {
    return BlockContent::make(
        mix64(cfg_.template_seed ^ mix64((static_cast<uint64_t>(vm) << 32) |
                                         (b + 17))),
        cfg_.block_size, cfg_.unique_compressible);
  }
  return BlockContent::zeros(cfg_.block_size);
}

CloudCorpus::CloudCorpus(CloudCorpusConfig cfg) : cfg_(cfg) {
  const uint64_t atoms = atoms_per_vm();
  seeds_.resize(static_cast<size_t>(cfg_.num_vms));
  Rng rng(cfg_.seed);
  const uint64_t os_atoms =
      static_cast<uint64_t>(static_cast<double>(atoms) * cfg_.os_fraction);
  for (int vm = 0; vm < cfg_.num_vms; vm++) {
    auto& s = seeds_[static_cast<size_t>(vm)];
    s.reserve(atoms);
    const uint64_t tmpl =
        static_cast<uint64_t>(vm % std::max(1, cfg_.num_templates));

    // OS region: positional clone of the template — every VM cloned from
    // the same template shares these atoms byte-for-byte at the same
    // offsets, like real cinder images.
    for (uint64_t a = 0; a < os_atoms; a++) {
      s.push_back(mix64(cfg_.seed ^ mix64((tmpl << 48) | a)));
    }

    // User region: self-copies (near, mostly aligned) + unique data.
    uint64_t a = os_atoms;
    while (a < atoms) {
      if (a > os_atoms + 8 && rng.uniform01() < cfg_.p_self) {
        const bool unaligned = rng.uniform01() < cfg_.p_self_unaligned;
        // Aligned copies replicate 4-atom (64KB) groups on the 4-atom
        // grid, so they dedup at every chunk size up to 64KB; unaligned
        // copies only dedup at the 16KB atom granularity.
        uint64_t run = unaligned ? 1 + rng.below(3) : 4;
        uint64_t dst = a;
        if (!unaligned) {
          while (dst % 4 != 0 && dst < atoms) {
            // Pad to the grid with unique atoms.
            s.push_back(mix64(cfg_.seed ^
                              mix64((static_cast<uint64_t>(vm) << 40) | dst)));
            dst++;
          }
          if (dst >= atoms) break;
        }
        const uint64_t window =
            std::min<uint64_t>(cfg_.self_window_atoms, dst - os_atoms);
        if (window < run + 4) {
          a = dst;
          continue;
        }
        uint64_t src = dst - 4 - rng.below(window - run - 3);
        if (!unaligned) src -= src % 4;
        if (src < os_atoms) src = os_atoms;
        for (uint64_t r = 0; r < run && dst < atoms; r++, dst++) {
          s.push_back(s[src + r]);
        }
        a = dst;
      } else {
        s.push_back(mix64(cfg_.seed ^
                          mix64((static_cast<uint64_t>(vm) << 40) | a)));
        a++;
      }
    }
  }
}

Buffer CloudCorpus::read(int vm, uint64_t first_atom,
                         uint64_t num_atoms) const {
  const auto& s = seeds_[static_cast<size_t>(vm)];
  assert(first_atom + num_atoms <= s.size());
  Buffer out(num_atoms * cfg_.atom_size);
  size_t pos = 0;
  for (uint64_t a = first_atom; a < first_atom + num_atoms; a++) {
    out.write_at(pos,
                 BlockContent::make(s[a], cfg_.atom_size, cfg_.compressible));
    pos += cfg_.atom_size;
  }
  return out;
}

}  // namespace gdedup::workload
