#pragma once

// Deterministic block-content synthesis.
//
// A block's bytes are a pure function of its content seed, so two
// generators (or two runs) that pick the same seed produce bit-identical
// buffers — that is what makes deduplication ratios controllable.  The
// compressible fraction of a block is filled with a short repeating
// pattern (LZ-friendly), the rest with seeded pseudo-random bytes
// (incompressible), so compression experiments see realistic mixes.

#include <cstdint>

#include "common/buffer.h"
#include "common/random.h"

namespace gdedup::workload {

class BlockContent {
 public:
  // `compressible` in [0,1]: fraction of the block that compresses away.
  static Buffer make(uint64_t seed, size_t size, double compressible = 0.0);

  // An all-zero block (VM image free space).
  static Buffer zeros(size_t size) { return Buffer(size); }
};

}  // namespace gdedup::workload
