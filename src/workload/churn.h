#pragma once

// Long-horizon multi-tenant churn (ROADMAP item 2, fed to the telemetry
// engine by bench/bench_churn.cc).
//
// Models a hosted-storage population: `tenants` tenants each own a fixed
// set of objects; steady-state traffic picks a tenant by one zipf draw and
// an object within the tenant by another (hot tenants exist, and every
// tenant has hot objects), then overwrites a block, reads a block, or
// deletes the whole object (it is recreated by the next write that lands
// on it — the overwrite/delete storm shape).  Onboarding plans generate
// the full-object preload burst for a tenant range.
//
// Determinism: the stream is a pure function of (config, call order).
// Content seeds are drawn from a bounded shared palette with probability
// `dedupe` (cross-tenant duplicates — what makes *global* dedup matter)
// and are otherwise unique, so the realized dedup ratio is controllable
// the same way FioGenerator controls it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace gdedup::workload {

struct ChurnConfig {
  int tenants = 16;
  int objects_per_tenant = 48;
  uint32_t object_bytes = 256 * 1024;  // logical size of a tenant object
  uint32_t io_bytes = 16 * 1024;       // churn op size (aligned blocks)
  double tenant_theta = 0.9;           // zipf skew across tenants
  double object_theta = 0.8;           // zipf skew within a tenant
  double write_frac = 0.7;             // steady-state write fraction
  double delete_frac = 0.02;           // of ops: whole-object removes
  double dedupe = 0.6;                 // duplicate-content probability
  uint64_t seed = 1;
};

enum class ChurnOpKind { kWrite, kRead, kRemove };

struct ChurnOp {
  ChurnOpKind kind = ChurnOpKind::kWrite;
  std::string oid;
  uint64_t offset = 0;
  uint32_t length = 0;
  uint64_t content_seed = 0;  // writes only
};

class ChurnWorkload {
 public:
  explicit ChurnWorkload(ChurnConfig cfg);

  const ChurnConfig& config() const { return cfg_; }
  std::string oid(int tenant, int object) const;

  // Full-object writes for tenants [first_tenant, first_tenant + n): the
  // onboarding burst.  Objects are written in io_bytes blocks, in order.
  std::vector<ChurnOp> onboarding_plan(int first_tenant, int n_tenants);

  // Next steady-churn op.  `write_frac`/`delete_frac` overrides (< 0 =
  // use config) let storm phases crank the mix without a second stream.
  ChurnOp next_op(double write_frac = -1.0, double delete_frac = -1.0);

  uint64_t ops_generated() const { return ops_; }

 private:
  uint64_t content_seed();

  ChurnConfig cfg_;
  Rng rng_;
  ZipfDistribution tenant_zipf_;
  ZipfDistribution object_zipf_;
  std::vector<uint64_t> palette_;  // shared duplicate-content seeds
  uint64_t unique_next_ = 0;
  uint64_t ops_ = 0;
};

}  // namespace gdedup::workload
