#pragma once

// FIO-like workload generator.
//
// Reproduces fio's `dedupe_percentage` semantics: each new buffer is, with
// probability p, a duplicate of a uniformly random *earlier* buffer
// (duplicates can chain, so duplicate clusters grow beyond pairs — which is
// why measured local-dedup ratios sit slightly above p / #OSDs, as in
// Table 1).  Also produces the op streams of the performance experiments:
// sequential and random reads/writes at a configurable block size.

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "workload/content.h"

namespace gdedup::workload {

struct FioConfig {
  uint64_t total_bytes = 64ull << 20;
  uint32_t block_size = 8 * 1024;
  double dedupe_ratio = 0.5;   // fio dedupe_percentage / 100
  double compressible = 0.0;   // fio buffer_compress_percentage / 100
  uint64_t seed = 42;
};

class FioGenerator {
 public:
  explicit FioGenerator(FioConfig cfg);

  uint64_t num_blocks() const { return num_blocks_; }
  uint32_t block_size() const { return cfg_.block_size; }
  uint64_t total_bytes() const { return num_blocks_ * cfg_.block_size; }

  // Content of block `index` (stable across calls).
  Buffer block(uint64_t index) const;

  uint64_t content_seed(uint64_t index) const { return seeds_[index]; }

  // Exact achievable global dedup ratio of this instance (duplicate bytes
  // over total) — the "given ratio" fio reports.
  double exact_dedup_ratio() const;

 private:
  FioConfig cfg_;
  uint64_t num_blocks_;
  std::vector<uint64_t> seeds_;
};

// Op stream descriptors for the latency/throughput experiments.
struct IoOp {
  bool is_write = true;
  uint64_t offset = 0;
  uint32_t length = 0;
  uint64_t content_seed = 0;  // writes only
};

// Uniform-random offsets within [0, span_bytes), block-aligned.
std::vector<IoOp> make_random_ops(uint64_t span_bytes, uint32_t block_size,
                                  size_t count, bool writes, double dedupe,
                                  uint64_t seed);

// Sequential stream starting at 0.
std::vector<IoOp> make_sequential_ops(uint64_t span_bytes, uint32_t block_size,
                                      size_t count, bool writes, double dedupe,
                                      uint64_t seed);

}  // namespace gdedup::workload
