#pragma once

// SPEC SFS 2014 "database" workload model.
//
// SPEC SFS 2014's DB profile drives a block device with a fixed demand per
// LOAD unit and a mix of random 8K writes (page flushes), random 8K reads
// and larger sequential reads (scans).  The content generator is
// calibrated to the duplicate-content profile the paper *measured* for
// this workload (Figure 3): higher LOAD rewrites the same hot DB regions
// more, so both the duplicate fraction and the spatial locality of
// duplicates grow with LOAD.  (The real benchmark's content generation is
// proprietary; matching its measured dedup profile is the substitution —
// see DESIGN.md.)
//
//   LOAD=1  -> ~36% dedupable, mostly cross-object duplicates
//   LOAD=3  -> ~81% dedupable, more same-object locality
//   LOAD=10 -> ~93% dedupable, mostly local rewrites
//
// "Local" duplicates target blocks within the same 4MB striping object, so
// they land on the same OSD — which is what separates the paper's local-
// vs-global dedup curves for this workload.

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/fio_gen.h"

namespace gdedup::workload {

struct SfsDbConfig {
  int load = 1;                        // SPEC SFS LOAD metric
  uint64_t dataset_bytes = 48ull << 20;  // scaled from 24GB (paper)
  uint32_t page_size = 8 * 1024;
  // Dirty pages are flushed in 32KB page clusters (extent writes), so
  // churn preserves chunk-level dedupability — single 8KB page writes
  // would mix unique pages into every 32KB chunk they touch.
  uint32_t write_cluster = 32 * 1024;
  uint32_t scan_size = 128 * 1024;
  uint32_t stripe_object_size = 4 * 1024 * 1024;
  uint64_t seed = 7;

  // Per-LOAD content calibration (duplicate fraction / same-object
  // locality); defaults follow the paper's measured profile.
  double dup_fraction() const;
  double local_fraction() const;

  // Demand: ops per second per LOAD unit (open-loop issue rate).
  double ops_per_sec_per_load = 200.0;
};

class SfsDbGenerator {
 public:
  explicit SfsDbGenerator(SfsDbConfig cfg);

  const SfsDbConfig& config() const { return cfg_; }

  // The initial dataset image, block by block (for ratio analysis or
  // preload).  Returns the content seed of page `index`.
  uint64_t dataset_page_seed(uint64_t index) const { return seeds_[index]; }
  uint64_t num_pages() const { return seeds_.size(); }
  Buffer dataset_page(uint64_t index) const;

  // The runtime op mix: 40% random write / 40% random read / 20% scan.
  // Writes carry content following the same duplicate profile.
  std::vector<IoOp> make_ops(size_t count, uint64_t seed_salt = 0);

  double issue_rate_ops_per_sec() const {
    return cfg_.ops_per_sec_per_load * cfg_.load;
  }

 private:
  SfsDbConfig cfg_;
  std::vector<uint64_t> seeds_;       // dataset page content seeds
  std::vector<uint64_t> write_roots_;  // fresh write-cluster contents
  // Seeds grouped by striping object, for local-duplicate picks.
  uint64_t pages_per_object_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace gdedup::workload
