#include "workload/content.h"

#include <algorithm>
#include <cstring>

namespace gdedup::workload {

Buffer BlockContent::make(uint64_t seed, size_t size, double compressible) {
  Buffer b(size);
  uint8_t* p = b.mutable_data();
  compressible = std::clamp(compressible, 0.0, 1.0);
  const size_t patterned = static_cast<size_t>(size * compressible);

  // Repeating 32-byte motif derived from the seed: compresses to ~nothing
  // but still differs between seeds (so it does not accidentally dedup).
  uint8_t motif[32];
  Rng motif_rng(mix64(seed ^ 0xC0FFEE));
  motif_rng.fill(motif, sizeof(motif));
  for (size_t i = 0; i < patterned; i += sizeof(motif)) {
    std::memcpy(p + i, motif, std::min(sizeof(motif), patterned - i));
  }

  if (patterned < size) {
    Rng body_rng(seed);
    body_rng.fill(p + patterned, size - patterned);
  }
  return b;
}

}  // namespace gdedup::workload
