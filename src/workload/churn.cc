#include "workload/churn.h"

#include <algorithm>
#include <cassert>

namespace gdedup::workload {

namespace {
constexpr size_t kPaletteSize = 512;
}  // namespace

ChurnWorkload::ChurnWorkload(ChurnConfig cfg)
    : cfg_(cfg),
      rng_(mix64(cfg.seed ^ 0x636875726eULL)),  // "churn"
      tenant_zipf_(static_cast<uint64_t>(std::max(1, cfg.tenants)),
                   cfg.tenant_theta),
      object_zipf_(static_cast<uint64_t>(std::max(1, cfg.objects_per_tenant)),
                   cfg.object_theta) {
  assert(cfg_.io_bytes > 0 && cfg_.object_bytes >= cfg_.io_bytes);
  palette_.reserve(kPaletteSize);
  for (size_t i = 0; i < kPaletteSize; i++) {
    palette_.push_back(mix64(cfg.seed * 0x10001 + i));
  }
}

std::string ChurnWorkload::oid(int tenant, int object) const {
  return "t" + std::to_string(tenant) + "/o" + std::to_string(object);
}

uint64_t ChurnWorkload::content_seed() {
  if (rng_.chance(cfg_.dedupe)) {
    return palette_[rng_.below(palette_.size())];
  }
  return mix64(cfg_.seed ^ (0xABCDull << 48) ^ unique_next_++);
}

std::vector<ChurnOp> ChurnWorkload::onboarding_plan(int first_tenant,
                                                    int n_tenants) {
  std::vector<ChurnOp> plan;
  const uint32_t blocks = cfg_.object_bytes / cfg_.io_bytes;
  plan.reserve(static_cast<size_t>(n_tenants) *
               static_cast<size_t>(cfg_.objects_per_tenant) * blocks);
  for (int t = first_tenant; t < first_tenant + n_tenants; t++) {
    for (int o = 0; o < cfg_.objects_per_tenant; o++) {
      for (uint32_t b = 0; b < blocks; b++) {
        ChurnOp op;
        op.kind = ChurnOpKind::kWrite;
        op.oid = oid(t, o);
        op.offset = static_cast<uint64_t>(b) * cfg_.io_bytes;
        op.length = cfg_.io_bytes;
        op.content_seed = content_seed();
        plan.push_back(std::move(op));
      }
    }
  }
  ops_ += plan.size();
  return plan;
}

ChurnOp ChurnWorkload::next_op(double write_frac, double delete_frac) {
  if (write_frac < 0.0) write_frac = cfg_.write_frac;
  if (delete_frac < 0.0) delete_frac = cfg_.delete_frac;
  ops_++;

  const int tenant = static_cast<int>(tenant_zipf_.sample(rng_));
  const int object = static_cast<int>(object_zipf_.sample(rng_));
  const uint32_t blocks = cfg_.object_bytes / cfg_.io_bytes;

  ChurnOp op;
  op.oid = oid(tenant, object);
  if (rng_.chance(delete_frac)) {
    op.kind = ChurnOpKind::kRemove;
    return op;
  }
  op.offset = rng_.below(blocks) * static_cast<uint64_t>(cfg_.io_bytes);
  op.length = cfg_.io_bytes;
  if (rng_.chance(write_frac)) {
    op.kind = ChurnOpKind::kWrite;
    op.content_seed = content_seed();
  } else {
    op.kind = ChurnOpKind::kRead;
  }
  return op;
}

}  // namespace gdedup::workload
