#pragma once

// VM-image corpora.
//
// VmImageCorpus models the Figure 13 experiment: N virtual machine images
// cloned from the same OS template — identical base blocks, a slice of
// per-VM unique home data, and a large free-space (zero) tail.  Dedup
// collapses the zeros to one chunk and the OS base to one copy; the
// compressible share of the OS payload is what compression then removes.
//
// CloudCorpus models the SK Telecom private-cloud dataset of Figure 3 /
// Table 2: ~100 developer VMs from a handful of OS templates plus
// majority-unique user data, with duplicate *runs* at 16KB granularity so
// the measured dedup ratio declines gently as the chunk size grows
// (Table 2's 46.4 / 44.8 / 43.7% shape).

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "workload/content.h"

namespace gdedup::workload {

struct VmImageConfig {
  uint64_t image_bytes = 64ull << 20;  // scaled from the paper's 8GB
  double os_fraction = 0.14;           // shared OS payload
  double unique_fraction = 0.016;      // per-VM home data
  double os_compressible = 0.55;       // OS binaries/text compress well
  double unique_compressible = 0.30;
  uint64_t template_seed = 0xce9;
  uint32_t block_size = 32 * 1024;
};

class VmImageCorpus {
 public:
  explicit VmImageCorpus(VmImageConfig cfg) : cfg_(cfg) {}

  const VmImageConfig& config() const { return cfg_; }

  uint64_t blocks_per_image() const {
    return cfg_.image_bytes / cfg_.block_size;
  }

  // Content of block `b` of VM `vm`'s image.  Layout: [OS | unique | zeros].
  Buffer image_block(int vm, uint64_t b) const;

  std::string image_object_name(int vm, uint64_t b) const {
    return "vm" + std::to_string(vm) + ".img." + std::to_string(b);
  }

 private:
  VmImageConfig cfg_;
};

struct CloudCorpusConfig {
  int num_vms = 24;                     // scaled from ~100
  uint64_t vm_bytes = 24ull << 20;      // scaled from 50-500GB
  uint32_t atom_size = 16 * 1024;       // duplicate-run granularity
  int num_templates = 4;
  // Calibrated to the measured private-cloud profile (global ~45%,
  // local ~21% on 16 OSDs; Figure 3 / Table 2).  Each VM image starts
  // with a positional clone of its OS template (os_fraction of the image);
  // the remainder mixes self-copies (file copies / backups inside the VM,
  // mostly chunk-aligned and near the copy source, hence OSD-local) with
  // unique data.  A slice of self-copies is unaligned at 16KB granularity,
  // which produces Table 2's gentle ratio decline as chunks grow.
  double os_fraction = 0.215;
  double p_self = 0.19;
  double p_self_unaligned = 0.18;  // share of self-copies not chunk-aligned
  uint64_t self_window_atoms = 240;  // copy sources stay near (same object)
  double compressible = 0.35;
  uint64_t seed = 0xc10d;
};

class CloudCorpus {
 public:
  explicit CloudCorpus(CloudCorpusConfig cfg);

  const CloudCorpusConfig& config() const { return cfg_; }

  uint64_t atoms_per_vm() const { return cfg_.vm_bytes / cfg_.atom_size; }
  int num_vms() const { return cfg_.num_vms; }

  // Assemble `bytes` of VM `vm`'s data starting at atom `first_atom`.
  Buffer read(int vm, uint64_t first_atom, uint64_t num_atoms) const;

  uint64_t atom_seed(int vm, uint64_t atom) const {
    return seeds_[static_cast<size_t>(vm)][atom];
  }

 private:
  CloudCorpusConfig cfg_;
  std::vector<std::vector<uint64_t>> seeds_;  // [vm][atom] content seeds
};

}  // namespace gdedup::workload
