#include "workload/sfs_db.h"

#include <cassert>

#include "workload/content.h"

namespace gdedup::workload {

double SfsDbConfig::dup_fraction() const {
  // Calibrated to the paper's measured global dedup ratios (Figure 3).
  if (load >= 10) return 0.93;
  if (load >= 3) return 0.81;
  return 0.37;
}

double SfsDbConfig::local_fraction() const {
  // Fraction of duplicate picks that stay within the same striping object
  // (same OSD), calibrated so the local-dedup ratios land near Figure 3.
  // Values sit below the paper's local/global quotient because duplicate
  // chains and accidental same-object hits amplify effective locality.
  if (load >= 10) return 0.25;
  if (load >= 3) return 0.15;
  return 0.06;
}

SfsDbGenerator::SfsDbGenerator(SfsDbConfig cfg) : cfg_(cfg) {
  pages_per_object_ = cfg_.stripe_object_size / cfg_.page_size;
  const uint64_t pages = cfg_.dataset_bytes / cfg_.page_size;
  seeds_.resize(pages);
  Rng rng(cfg_.seed);
  const double p_dup = cfg_.dup_fraction();
  const double p_local = cfg_.local_fraction();

  // Database duplication happens at extent granularity (copied tables,
  // journal segments, page-split copies), not at single 8KB pages —
  // duplicate decisions are made per 64KB group of pages, aligned, so the
  // profile survives 16-64KB chunking (the paper measures these ratios
  // with its 32KB-chunk system).
  const uint64_t group = 64 * 1024 / cfg_.page_size;
  const uint64_t groups = (pages + group - 1) / group;
  const uint64_t groups_per_object = pages_per_object_ / group;
  std::vector<uint64_t> roots;        // groups holding fresh content
  std::vector<uint64_t> local_roots;  // ... within the current object
  for (uint64_t g = 0; g < groups; g++) {
    const uint64_t first = g * group;
    const uint64_t count = std::min(group, pages - first);
    if (g % groups_per_object == 0) local_roots.clear();
    // Copies reference *root* extents (fio-like), keeping duplicate
    // cluster sizes near p/(1-p) instead of the heavy-tailed chains a
    // copy-of-copy process produces — that tail is what would otherwise
    // push local ratios toward the global ones.
    if (!roots.empty() && rng.uniform01() < p_dup) {
      uint64_t src_group;
      if (!local_roots.empty() && rng.uniform01() < p_local) {
        // Copy of an extent in the same striping object (OSD-local).
        src_group = local_roots[rng.below(local_roots.size())];
      } else {
        src_group = roots[rng.below(roots.size())];
      }
      for (uint64_t j = 0; j < count; j++) {
        seeds_[first + j] = seeds_[src_group * group + j];
      }
    } else {
      for (uint64_t j = 0; j < count; j++) {
        seeds_[first + j] = mix64(cfg_.seed ^ mix64(first + j + 0x5f5));
      }
      roots.push_back(g);
      local_roots.push_back(g);
    }
  }
}

Buffer SfsDbGenerator::dataset_page(uint64_t index) const {
  // DB pages compress moderately (structured rows): ~30%.
  return BlockContent::make(seeds_[index], cfg_.page_size, 0.3);
}

std::vector<IoOp> SfsDbGenerator::make_ops(size_t count, uint64_t seed_salt) {
  Rng rng(cfg_.seed ^ mix64(seed_salt + 1));
  const uint64_t clusters = cfg_.dataset_bytes / cfg_.write_cluster;
  const uint64_t pages = cfg_.dataset_bytes / cfg_.page_size;
  const uint64_t scan_starts =
      cfg_.dataset_bytes > cfg_.scan_size
          ? (cfg_.dataset_bytes - cfg_.scan_size) / cfg_.page_size
          : 1;
  std::vector<IoOp> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; i++) {
    const double roll = rng.uniform01();
    IoOp op;
    if (roll < 0.4) {
      // Dirty page-cluster flush: aligned 32KB write whose content follows
      // the workload's duplicate profile.
      op.is_write = true;
      op.offset = rng.below(clusters) * cfg_.write_cluster;
      op.length = cfg_.write_cluster;
      if (!write_roots_.empty() && rng.uniform01() < cfg_.dup_fraction()) {
        op.content_seed = write_roots_[rng.below(write_roots_.size())];
      } else {
        op.content_seed =
            mix64(cfg_.seed ^ mix64(fresh_counter_++ + seed_salt * 1000003));
        write_roots_.push_back(op.content_seed);
      }
    } else if (roll < 0.8) {
      // Random page read.
      op.is_write = false;
      op.offset = rng.below(pages) * cfg_.page_size;
      op.length = cfg_.page_size;
    } else {
      // Sequential scan segment.
      op.is_write = false;
      op.offset = rng.below(scan_starts) * cfg_.page_size;
      op.length = cfg_.scan_size;
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace gdedup::workload