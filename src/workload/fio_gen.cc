#include "workload/fio_gen.h"

#include <unordered_map>

namespace gdedup::workload {

FioGenerator::FioGenerator(FioConfig cfg) : cfg_(cfg) {
  num_blocks_ = cfg_.total_bytes / cfg_.block_size;
  seeds_.reserve(num_blocks_);
  std::vector<uint64_t> roots;  // blocks generated as fresh content
  Rng rng(cfg_.seed);
  for (uint64_t i = 0; i < num_blocks_; i++) {
    if (!roots.empty() && rng.uniform01() < cfg_.dedupe_ratio) {
      // Duplicate of a uniformly random *unique* earlier buffer (fio's
      // dedupe_percentage semantics).  Duplicate clusters stay small —
      // mean size 1/(1-p) — which is what puts measured local-dedup
      // ratios slightly above p / #OSDs (Table 1's 4.1% at p=50, 16 OSDs).
      seeds_.push_back(roots[rng.below(roots.size())]);
    } else {
      const uint64_t s = mix64(cfg_.seed ^ mix64(i + 1));
      roots.push_back(s);
      seeds_.push_back(s);
    }
  }
}

Buffer FioGenerator::block(uint64_t index) const {
  return BlockContent::make(seeds_[index], cfg_.block_size, cfg_.compressible);
}

double FioGenerator::exact_dedup_ratio() const {
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t s : seeds_) counts[s]++;
  uint64_t dup_blocks = 0;
  for (const auto& [s, n] : counts) dup_blocks += n - 1;
  return num_blocks_ == 0
             ? 0.0
             : static_cast<double>(dup_blocks) / static_cast<double>(num_blocks_);
}

std::vector<IoOp> make_random_ops(uint64_t span_bytes, uint32_t block_size,
                                  size_t count, bool writes, double dedupe,
                                  uint64_t seed) {
  const uint64_t blocks = span_bytes / block_size;
  std::vector<IoOp> ops;
  ops.reserve(count);
  std::vector<uint64_t> seeds;
  Rng rng(seed);
  for (size_t i = 0; i < count; i++) {
    IoOp op;
    op.is_write = writes;
    op.offset = rng.below(blocks) * block_size;
    op.length = block_size;
    if (writes) {
      if (!seeds.empty() && rng.uniform01() < dedupe) {
        op.content_seed = seeds[rng.below(seeds.size())];
      } else {
        op.content_seed = mix64(seed ^ mix64(i + 1));
      }
      seeds.push_back(op.content_seed);
    }
    ops.push_back(op);
  }
  return ops;
}

std::vector<IoOp> make_sequential_ops(uint64_t span_bytes, uint32_t block_size,
                                      size_t count, bool writes, double dedupe,
                                      uint64_t seed) {
  const uint64_t blocks = std::max<uint64_t>(1, span_bytes / block_size);
  std::vector<IoOp> ops;
  ops.reserve(count);
  std::vector<uint64_t> seeds;
  Rng rng(seed);
  for (size_t i = 0; i < count; i++) {
    IoOp op;
    op.is_write = writes;
    op.offset = (i % blocks) * block_size;
    op.length = block_size;
    if (writes) {
      if (!seeds.empty() && rng.uniform01() < dedupe) {
        op.content_seed = seeds[rng.below(seeds.size())];
      } else {
        op.content_seed = mix64(seed ^ mix64(i + 1));
      }
      seeds.push_back(op.content_seed);
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace gdedup::workload
