#include "osd/object_store.h"

#include <algorithm>
#include <cassert>

#include "compress/lz.h"
#include "sim/exec_pool.h"

namespace gdedup {

// ---------------------------------------------------------------- ExtentMap

void ExtentMap::write(uint64_t off, Buffer data) {
  if (data.empty()) return;
  const uint64_t end = off + data.size();
  punch_hole(off, data.size());
  extents_[off] = std::move(data);
  (void)end;
}

void ExtentMap::punch_hole(uint64_t off, uint64_t len) {
  if (len == 0) return;
  const uint64_t end = off + len;

  // Find the first extent that could overlap: the one before `off` may
  // straddle it.
  auto it = extents_.lower_bound(off);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const uint64_t pend = prev->first + prev->second.size();
    if (pend > off) {
      // prev straddles `off`; keep its head, and maybe its tail.
      Buffer whole = std::move(prev->second);
      const uint64_t pstart = prev->first;
      extents_.erase(prev);
      extents_[pstart] = whole.slice(0, off - pstart);
      if (pend > end) {
        extents_[end] = whole.slice(end - pstart, pend - end);
      }
    }
  }
  it = extents_.lower_bound(off);
  while (it != extents_.end() && it->first < end) {
    const uint64_t estart = it->first;
    const uint64_t eend = estart + it->second.size();
    if (eend <= end) {
      it = extents_.erase(it);
    } else {
      // Tail survives.
      Buffer tail = it->second.slice(end - estart, eend - end);
      extents_.erase(it);
      extents_[end] = std::move(tail);
      break;
    }
  }
}

Buffer ExtentMap::read(uint64_t off, uint64_t len) const {
  if (len == 0) return Buffer(0);
  const uint64_t end = off + len;

  auto it = extents_.lower_bound(off);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > off) it = prev;
  }
  // Zero-copy fast path: one extent covers the whole range.  Returning a
  // slice preserves the stored Buffer's storage identity and generation, so
  // a flush re-reading unchanged data can hit the fingerprint cache (the
  // slice is COW — any writer detaches before mutating).
  if (it != extents_.end() && it->first <= off &&
      it->first + it->second.size() >= end) {
    return it->second.slice(off - it->first, len);
  }

  Buffer out(len);  // zero-filled
  uint8_t* dst = out.mutable_data();
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t estart = it->first;
    const uint64_t eend = estart + it->second.size();
    const uint64_t cs = std::max(off, estart);
    const uint64_t ce = std::min(end, eend);
    if (cs >= ce) continue;
    std::memcpy(dst + (cs - off), it->second.data() + (cs - estart), ce - cs);
  }
  return out;
}

void ExtentMap::truncate(uint64_t size) {
  punch_hole(size, UINT64_MAX - size);
}

bool ExtentMap::fully_present(uint64_t off, uint64_t len) const {
  if (len == 0) return true;
  uint64_t cursor = off;
  const uint64_t end = off + len;

  auto it = extents_.lower_bound(off);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > off) it = prev;
  }
  for (; it != extents_.end() && cursor < end; ++it) {
    if (it->first > cursor) return false;  // gap
    cursor = std::max(cursor, it->first + it->second.size());
  }
  return cursor >= end;
}

uint64_t ExtentMap::stored_bytes() const {
  uint64_t n = 0;
  for (const auto& [off, buf] : extents_) n += buf.size();
  return n;
}

uint64_t ExtentMap::end_offset() const {
  if (extents_.empty()) return 0;
  auto it = std::prev(extents_.end());
  return it->first + it->second.size();
}

// -------------------------------------------------------------- Transaction

void Transaction::create(const ObjectKey& k) {
  ops_.push_back({OpType::kCreate, k, 0, 0, {}, {}});
}
void Transaction::write(const ObjectKey& k, uint64_t off, Buffer data) {
  ops_.push_back({OpType::kWrite, k, off, data.size(), std::move(data), {}});
}
void Transaction::write_full(const ObjectKey& k, Buffer data) {
  ops_.push_back({OpType::kWriteFull, k, 0, data.size(), std::move(data), {}});
}
void Transaction::truncate(const ObjectKey& k, uint64_t size) {
  ops_.push_back({OpType::kTruncate, k, size, 0, {}, {}});
}
void Transaction::punch_hole(const ObjectKey& k, uint64_t off, uint64_t len) {
  ops_.push_back({OpType::kPunchHole, k, off, len, {}, {}});
}
void Transaction::remove(const ObjectKey& k) {
  ops_.push_back({OpType::kRemove, k, 0, 0, {}, {}});
}
void Transaction::setxattr(const ObjectKey& k, std::string name, Buffer value) {
  ops_.push_back({OpType::kSetXattr, k, 0, 0, std::move(value), std::move(name)});
}
void Transaction::rmxattr(const ObjectKey& k, std::string name) {
  ops_.push_back({OpType::kRmXattr, k, 0, 0, {}, std::move(name)});
}
void Transaction::omap_set(const ObjectKey& k, std::string key, Buffer value) {
  ops_.push_back({OpType::kOmapSet, k, 0, 0, std::move(value), std::move(key)});
}
void Transaction::omap_rm(const ObjectKey& k, std::string key) {
  ops_.push_back({OpType::kOmapRm, k, 0, 0, {}, std::move(key)});
}

uint64_t Transaction::byte_size() const {
  uint64_t n = 0;
  for (const auto& op : ops_) {
    n += 32;  // op header
    n += op.data.size();
    n += op.name.size();
    n += op.key.oid.size();
  }
  return n;
}

void Transaction::append(const Transaction& other) {
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

// -------------------------------------------------------------- ObjectStore

Status ObjectStore::apply_to_state(const Transaction& txn, const ObjectKey& key,
                                   ObjectState* state, bool* exists) {
  for (const auto& op : txn.ops()) {
    if (!(op.key == key)) continue;
    switch (op.type) {
      case Transaction::OpType::kCreate:
        *exists = true;
        break;
      case Transaction::OpType::kWrite:
        *exists = true;
        state->data.write(op.off, op.data);
        state->logical_size = std::max(state->logical_size, op.off + op.len);
        break;
      case Transaction::OpType::kWriteFull:
        *exists = true;
        state->data.truncate(0);
        state->data.write(0, op.data);
        state->logical_size = op.len;
        break;
      case Transaction::OpType::kTruncate:
        if (!*exists) return Status::not_found("truncate: " + key.oid);
        state->data.truncate(op.off);
        state->logical_size = op.off;
        break;
      case Transaction::OpType::kPunchHole:
        if (!*exists) return Status::not_found("punch_hole: " + key.oid);
        state->data.punch_hole(op.off, op.len);
        break;
      case Transaction::OpType::kRemove:
        if (!*exists) return Status::not_found("remove: " + key.oid);
        *state = ObjectState{};
        *exists = false;
        break;
      case Transaction::OpType::kSetXattr:
        *exists = true;
        state->xattrs[op.name] = op.data;
        break;
      case Transaction::OpType::kRmXattr:
        if (!*exists) return Status::not_found("rmxattr: " + key.oid);
        state->xattrs.erase(op.name);
        break;
      case Transaction::OpType::kOmapSet:
        *exists = true;
        state->omap[op.name] = op.data;
        break;
      case Transaction::OpType::kOmapRm:
        if (!*exists) return Status::not_found("omap_rm: " + key.oid);
        state->omap.erase(op.name);
        break;
    }
  }
  if (*exists) state->version++;
  return Status::ok();
}

Status ObjectStore::apply(const Transaction& txn) {
  MaybeUniqueLock g(mu_);
  // Validation pass: the only failable ops reference missing objects.
  // Track objects the transaction itself creates so create-then-write in
  // one transaction validates.
  std::map<ObjectKey, bool> will_exist;
  for (const auto& op : txn.ops()) {
    auto it = will_exist.find(op.key);
    bool ex =
        it != will_exist.end() ? it->second : objects_.count(op.key) > 0;
    switch (op.type) {
      case Transaction::OpType::kCreate:
      case Transaction::OpType::kWrite:
      case Transaction::OpType::kWriteFull:
      case Transaction::OpType::kSetXattr:
      case Transaction::OpType::kOmapSet:
        ex = true;
        break;
      case Transaction::OpType::kTruncate:
      case Transaction::OpType::kPunchHole:
      case Transaction::OpType::kRmXattr:
      case Transaction::OpType::kOmapRm:
        if (!ex) {
          return Status::not_found("txn references missing " + op.key.oid +
                                   " (op " +
                                   std::to_string(static_cast<int>(op.type)) +
                                   ")");
        }
        break;
      case Transaction::OpType::kRemove:
        if (!ex) return Status::not_found("txn removes missing " + op.key.oid);
        ex = false;
        break;
    }
    will_exist[op.key] = ex;
  }

  // Mutation pass (cannot fail).
  std::map<ObjectKey, bool> touched_exists;
  for (const auto& op : txn.ops()) {
    ObjectState& st = objects_[op.key];  // creates placeholder if absent
    switch (op.type) {
      case Transaction::OpType::kCreate:
        break;
      case Transaction::OpType::kWrite:
        st.data.write(op.off, op.data);
        st.logical_size = std::max(st.logical_size, op.off + op.len);
        break;
      case Transaction::OpType::kWriteFull:
        st.data.truncate(0);
        st.data.write(0, op.data);
        st.logical_size = op.len;
        break;
      case Transaction::OpType::kTruncate:
        st.data.truncate(op.off);
        st.logical_size = op.off;
        break;
      case Transaction::OpType::kPunchHole:
        st.data.punch_hole(op.off, op.len);
        break;
      case Transaction::OpType::kRemove:
        objects_.erase(op.key);
        touched_exists[op.key] = false;
        continue;
      case Transaction::OpType::kSetXattr:
        st.xattrs[op.name] = op.data;
        break;
      case Transaction::OpType::kRmXattr:
        st.xattrs.erase(op.name);
        break;
      case Transaction::OpType::kOmapSet:
        st.omap[op.name] = op.data;
        break;
      case Transaction::OpType::kOmapRm:
        st.omap.erase(op.name);
        break;
    }
    touched_exists[op.key] = true;
  }
  // Bump versions once per touched live object.
  for (const auto& [key, alive] : touched_exists) {
    if (alive) {
      auto it = objects_.find(key);
      if (it != objects_.end()) it->second.version++;
    }
  }
  return Status::ok();
}

Result<uint64_t> ObjectStore::size(const ObjectKey& k) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  return it->second.logical_size;
}

Result<uint64_t> ObjectStore::version(const ObjectKey& k) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  return it->second.version;
}

Result<Buffer> ObjectStore::read(const ObjectKey& k, uint64_t off,
                                 uint64_t len) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  const ObjectState& st = it->second;
  if (off >= st.logical_size) return Buffer();
  const uint64_t avail = st.logical_size - off;
  const uint64_t n = (len == 0) ? avail : std::min(len, avail);
  return st.data.read(off, n);
}

Result<Buffer> ObjectStore::getxattr(const ObjectKey& k,
                                     const std::string& name) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  auto xit = it->second.xattrs.find(name);
  if (xit == it->second.xattrs.end()) {
    return Status::not_found("xattr " + name);
  }
  return xit->second;
}

Result<Buffer> ObjectStore::omap_get(const ObjectKey& k,
                                     const std::string& key) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  auto oit = it->second.omap.find(key);
  if (oit == it->second.omap.end()) {
    return Status::not_found("omap " + key);
  }
  return oit->second;
}

std::vector<std::pair<std::string, Buffer>> ObjectStore::omap_list(
    const ObjectKey& k, const std::string& prefix) const {
  MaybeSharedLock g(mu_);
  std::vector<std::pair<std::string, Buffer>> out;
  auto it = objects_.find(k);
  if (it == objects_.end()) return out;
  for (auto oit = it->second.omap.lower_bound(prefix);
       oit != it->second.omap.end(); ++oit) {
    if (oit->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(oit->first, oit->second);
  }
  return out;
}

const ObjectState* ObjectStore::find(const ObjectKey& k) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<ObjectState> ObjectStore::snapshot(const ObjectKey& k) const {
  MaybeSharedLock g(mu_);
  auto it = objects_.find(k);
  if (it == objects_.end()) return Status::not_found(k.oid);
  return it->second;
}

void ObjectStore::install(const ObjectKey& k, ObjectState state) {
  MaybeUniqueLock g(mu_);
  objects_[k] = std::move(state);
}

Status ObjectStore::remove_object(const ObjectKey& k) {
  MaybeUniqueLock g(mu_);
  return objects_.erase(k) > 0 ? Status::ok() : Status::not_found(k.oid);
}

std::vector<ObjectKey> ObjectStore::list(PoolId pool) const {
  MaybeSharedLock g(mu_);
  std::vector<ObjectKey> out;
  for (const auto& [key, st] : objects_) {
    if (key.pool == pool) out.push_back(key);
  }
  return out;
}

std::vector<ObjectKey> ObjectStore::list_all() const {
  MaybeSharedLock g(mu_);
  std::vector<ObjectKey> out;
  out.reserve(objects_.size());
  for (const auto& [key, st] : objects_) out.push_back(key);
  return out;
}

uint64_t ObjectStore::stored_bytes_of(const ObjectState& st) const {
  if (!compress_at_rest_) return st.data.stored_bytes();
  uint64_t n = 0;
  for (const auto& [off, buf] : st.data.extents()) {
    n += LzCodec::compressed_size(buf);
  }
  return n;
}

uint64_t ObjectStore::kv_bytes(const std::map<std::string, Buffer>& kv) {
  uint64_t n = 0;
  for (const auto& [k, v] : kv) n += k.size() + v.size();
  return n;
}

ObjectStore::Stats ObjectStore::stats() const { return stats_impl(nullptr); }

ObjectStore::Stats ObjectStore::stats(PoolId pool) const {
  return stats_impl(&pool);
}

ObjectStore::Stats ObjectStore::stats_impl(const PoolId* pool) const {
  MaybeSharedLock g(mu_);
  Stats s;
  // Compression-at-rest scans walk every stored byte, which dominates
  // stats() on compressed pools.  With workers available, batch objects
  // into kCompress jobs and join them in submission order: the total is a
  // sum of pure per-batch sums, so the result is identical at any thread
  // count.  The store is not mutated between submit and join (both happen
  // inside this call, on the event-loop thread), so the jobs can read the
  // ObjectStates in place.
  const bool offload =
      compress_at_rest_ && exec_pool_ && exec_pool_->parallel();
  constexpr size_t kScanBatch = 32;
  std::vector<const ObjectState*> batch;
  std::vector<KernelFuture<uint64_t>> scans;
  auto flush_batch = [&] {
    if (batch.empty()) return;
    scans.push_back(kernel_async<uint64_t>(
        exec_pool_, Kernel::kCompress,
        [batch = std::move(batch)] {
          uint64_t n = 0;
          for (const ObjectState* st : batch) {
            for (const auto& [off, buf] : st->data.extents()) {
              n += LzCodec::compressed_size(buf);
            }
          }
          return n;
        }));
    batch.clear();
  };
  for (const auto& [key, st] : objects_) {
    if (pool && key.pool != *pool) continue;
    s.objects++;
    s.logical_bytes += st.logical_size;
    if (offload) {
      batch.push_back(&st);
      if (batch.size() >= kScanBatch) flush_batch();
    } else {
      s.stored_data_bytes += stored_bytes_of(st);
    }
    s.xattr_bytes += kv_bytes(st.xattrs);
    s.omap_bytes += kv_bytes(st.omap);
  }
  flush_batch();
  for (auto& scan : scans) s.stored_data_bytes += scan.take();
  s.physical_bytes = s.stored_data_bytes + s.xattr_bytes + s.omap_bytes +
                     s.objects * kPerObjectBaseBytes;
  return s;
}

}  // namespace gdedup
