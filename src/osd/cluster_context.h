#pragma once

// Services an OSD (and the dedup tier running inside it) needs from the
// cluster: the scheduler, the network fabric, the shared OsdMap, peer OSD
// lookup and per-node device models.  Implemented by rados::Cluster;
// kept abstract here so osd/ and dedup/ stay independent of bring-up code.

#include <cstdlib>

#include "cluster/osd_map.h"
#include "sim/cpu.h"
#include "sim/exec_pool.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace gdedup {

class Osd;
class FingerprintIndex;

namespace obs {
class PerfRegistry;
class OpTracker;
}

class ClusterContext {
 public:
  virtual ~ClusterContext() = default;

  virtual Scheduler& sched() = 0;
  virtual Network& net() = 0;
  virtual OsdMap& osdmap() = 0;

  virtual Osd* osd(OsdId id) = 0;
  virtual NodeId node_of_osd(OsdId id) const = 0;
  virtual CpuModel& node_cpu(NodeId node) = 0;

  // When > 0, remote OsdOps give up after this much virtual time and the
  // reply callback fires with a timeout status — required for liveness when
  // OSDs can crash (silently dropping requests) or the fabric loses
  // messages.  0 (the default) preserves wait-forever semantics.
  virtual SimTime op_timeout() const { return 0; }

  // Observability hooks (obs/).  Default nullptr: contexts without an
  // observability layer (unit-test fixtures) cost nothing, and every
  // instrumentation site null-checks.  rados::Cluster returns its own.
  virtual obs::PerfRegistry* perf_registry() { return nullptr; }
  virtual obs::OpTracker* op_tracker() { return nullptr; }

  // Worker pool for the real-byte kernels (sim/exec_pool.h).  Default
  // nullptr: kernel_async() then runs the job inline at take(), which is
  // exactly the serial path — fixtures without a cluster need no pool.
  virtual ExecPool* exec_pool() { return nullptr; }

  // Two-tier fingerprint fast path (dedup/fingerprint_index.h).  The knob
  // gates *host-side* work only — SHA invocations actually run and chunk
  // refcount decode/encode round trips — so the determinism digest is
  // byte-identical either way; both states stay testable.  Default: the
  // GDEDUP_FP_FASTPATH environment variable, on unless set to "0".
  // rados::Cluster overrides with its ClusterConfig knob.
  static bool env_fp_fastpath() {
    const char* v = std::getenv("GDEDUP_FP_FASTPATH");
    return v == nullptr || v[0] == '\0' || v[0] != '0';
  }
  virtual bool fp_fastpath() const { return env_fp_fastpath(); }

  // Forward-assembly restore cache (dedup/tier.cc handle_read).  Host-side
  // only, like the fingerprint fast path: a sequential-read window plans
  // the next chunk refs and assembles replies from one window buffer, but
  // every chunk-pool RPC, cpu cost, and digested counter is issued
  // identically — the determinism digest is byte-identical either way.
  // Default: the GDEDUP_RESTORE_ASSEMBLY environment variable, on unless
  // set to "0".  rados::Cluster overrides with its ClusterConfig knob.
  static bool env_restore_assembly() {
    const char* v = std::getenv("GDEDUP_RESTORE_ASSEMBLY");
    return v == nullptr || v[0] == '\0' || v[0] != '0';
  }
  virtual bool restore_assembly() const { return env_restore_assembly(); }

  // Recipe-chunk metadata dedup (dedup/recipe.h).  Unlike the two knobs
  // above this one changes persisted bytes — chunk maps compact into
  // content-addressed recipe chunks and omap writes batch per flush
  // cycle — so it carries its own frozen determinism digest (byte-
  // identical at any shards×threads, but different from default mode).
  // Default: the GDEDUP_RECIPE_DEDUP environment variable, OFF unless
  // set non-empty and not "0".  rados::Cluster overrides with its
  // ClusterConfig knob.
  static bool env_recipe_dedup() {
    const char* v = std::getenv("GDEDUP_RECIPE_DEDUP");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }
  virtual bool recipe_dedup() const { return env_recipe_dedup(); }

  // Node-local fingerprint index shared by the dedup tiers of one storage
  // node (every event of a node runs on that node's engine shard, so the
  // index needs no lock).  Default nullptr: tiers in cluster-less
  // fixtures fall back to a private per-tier index.
  virtual FingerprintIndex* fp_index(NodeId node) {
    (void)node;
    return nullptr;
  }
};

}  // namespace gdedup
