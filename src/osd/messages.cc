#include "osd/messages.h"

#include "common/encoding.h"

namespace gdedup {

std::string_view osd_op_type_name(OsdOpType t) {
  switch (t) {
    case OsdOpType::kRead:
      return "read";
    case OsdOpType::kWrite:
      return "write";
    case OsdOpType::kWriteFull:
      return "write_full";
    case OsdOpType::kRemove:
      return "remove";
    case OsdOpType::kStat:
      return "stat";
    case OsdOpType::kGetXattr:
      return "getxattr";
    case OsdOpType::kSetXattr:
      return "setxattr";
    case OsdOpType::kChunkPutRef:
      return "chunk_put_ref";
    case OsdOpType::kChunkDeref:
      return "chunk_deref";
    case OsdOpType::kSubWrite:
      return "sub_write";
    case OsdOpType::kShardRead:
      return "shard_read";
    case OsdOpType::kPull:
      return "pull";
    case OsdOpType::kPush:
      return "push";
  }
  return "unknown";
}

Buffer encode_refs(const std::vector<ChunkRef>& refs) {
  Encoder e;
  e.put_u32(static_cast<uint32_t>(refs.size()));
  for (const auto& r : refs) {
    e.put_u32(static_cast<uint32_t>(r.pool));
    e.put_string(r.oid);
    e.put_u64(r.offset);
  }
  return e.finish();
}

Result<std::vector<ChunkRef>> decode_refs(const Buffer& b) {
  Decoder d(b);
  uint32_t n = 0;
  if (auto s = d.get_u32(&n); !s.is_ok()) return s;
  std::vector<ChunkRef> refs;
  refs.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    ChunkRef r;
    uint32_t pool = 0;
    if (auto s = d.get_u32(&pool); !s.is_ok()) return s;
    r.pool = static_cast<PoolId>(pool);
    if (auto s = d.get_string(&r.oid); !s.is_ok()) return s;
    if (auto s = d.get_u64(&r.offset); !s.is_ok()) return s;
    refs.push_back(std::move(r));
  }
  return refs;
}

uint64_t object_state_bytes(const ObjectState& st) {
  uint64_t n = st.data.stored_bytes();
  for (const auto& [k, v] : st.xattrs) n += k.size() + v.size();
  for (const auto& [k, v] : st.omap) n += k.size() + v.size();
  return n + 64;
}

uint64_t OsdOp::wire_bytes() const {
  uint64_t n = 64 + oid.size() + name.size();  // op header
  n += data.size();
  if (txn) n += txn->byte_size();
  if (state) n += object_state_bytes(*state);
  if (type == OsdOpType::kChunkPutRef || type == OsdOpType::kChunkDeref) {
    n += 16 + ref.oid.size();
    for (const auto& r : extra_refs) n += 16 + r.oid.size();
  }
  return n;
}

uint64_t OsdOpReply::wire_bytes() const {
  uint64_t n = 32 + data.size();
  for (const auto& [k, v] : attrs) n += k.size() + v.size();
  if (state) n += object_state_bytes(*state);
  return n;
}

}  // namespace gdedup
