#pragma once

// Decoded chunk-reference cache — the chunk-map half of the metadata fast
// path (the fingerprint half lives in dedup/fingerprint_index.h).
//
// Every chunk put/deref reads the chunk's refs xattr and decodes the full
// reference list just to answer "is this ref recorded?" — O(refs bytes)
// of decode per operation on hot chunks that accumulate hundreds of
// references.  This cache keeps the decoded list keyed by chunk object,
// validated against the *identity* of the currently stored xattr buffer:
// Buffers are copy-on-write and carry a globally unique, never-reused
// mutation generation (see Buffer::generation()), so (data pointer, size,
// generation) identifies the encoded bytes exactly.  If the store still
// holds the very buffer we decoded (or encoded ourselves on the previous
// update), the cached vector is byte-for-byte what a fresh decode would
// produce; any recovery, wipe, or peer rewrite installs a different
// buffer and the entry silently misses.  No invalidation protocol needed,
// and no ABA hazard from recycled allocations.
//
// The cache changes host-side work only: the xattr read itself (and its
// accounted metadata bytes) happens in both modes, a hit merely skips the
// decode.  Per-OSD and thread-confined like the rest of OSD state.

#include <cstdint>
#include <vector>

#include "common/buffer.h"
#include "common/lru.h"
#include "osd/messages.h"
#include "osd/object_store.h"

namespace gdedup {
struct ObjectKeyHash {
  size_t operator()(const ObjectKey& k) const noexcept {
    size_t h = std::hash<std::string>{}(k.oid);
    return h * 0x9e3779b97f4a7c15ULL + static_cast<size_t>(k.pool);
  }
};
}  // namespace gdedup

template <>
struct std::hash<gdedup::ObjectKey> : gdedup::ObjectKeyHash {};

namespace gdedup {

class RefsCache {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit RefsCache(size_t capacity = kDefaultCapacity) : lru_(capacity) {}

  // Returns the cached decoded refs iff `raw` is the exact buffer the
  // entry was built against; stale entries are dropped eagerly.
  const std::vector<ChunkRef>* find(const ObjectKey& key, const Buffer& raw) {
    Entry* e = lru_.get(key);
    if (e == nullptr) return nullptr;
    // Generation 0 means "never went through next_generation()" — e.g. a
    // default-constructed Buffer — so it is NOT globally unique and two
    // distinct buffers can share the full (data, len, 0) identity.  An
    // entry bound to such a buffer could survive a delete+recreate of the
    // object; refuse to validate against it.
    if (e->gen == 0 || raw.generation() == 0 ||
        e->data != reinterpret_cast<uintptr_t>(raw.data()) ||
        e->len != raw.size() || e->gen != raw.generation()) {
      lru_.erase(key);
      return nullptr;
    }
    return &e->refs;
  }

  // Bind `refs` to the identity of encoded buffer `enc`.  Callers pass the
  // buffer they are about to setxattr: if the store retains it zero-copy,
  // the next read hits; if the store copies (or the txn never lands), the
  // identity check simply fails.
  void put(const ObjectKey& key, const Buffer& enc,
           std::vector<ChunkRef> refs) {
    if (enc.storage_id() == nullptr || enc.generation() == 0) return;
    lru_.put(key, Entry{reinterpret_cast<uintptr_t>(enc.data()), enc.size(),
                        enc.generation(), std::move(refs)});
  }

  void erase(const ObjectKey& key) { lru_.erase(key); }
  void clear() { lru_.clear(); }
  size_t size() const { return lru_.size(); }

 private:
  struct Entry {
    uintptr_t data = 0;
    size_t len = 0;
    uint64_t gen = 0;
    std::vector<ChunkRef> refs;
  };

  LruMap<ObjectKey, Entry> lru_;
};

}  // namespace gdedup
