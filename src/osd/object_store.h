#pragma once

// Per-OSD object store.
//
// BlueStore-flavoured in-memory store: object data is an extent map (sparse
// by construction — dedup eviction punches holes where chunks moved to the
// chunk pool), plus xattrs and omap.  All mutations go through Transactions
// applied atomically; per-object versions advance once per transaction.
//
// Physical accounting is real: bytes-used sums live extents (after at-rest
// compression when the pool enables it) plus encoded xattr/omap sizes plus
// a fixed per-object base, mirroring how the paper computes its "actual
// deduplication ratio" (Table 2).

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "sim/scheduler.h"  // MaybeSharedLock / MaybeUniqueLock

namespace gdedup {

class ExecPool;  // sim/exec_pool.h — optional worker pool for stats scans

using PoolId = int;

// Matches the paper's note that a Ceph object carries >= 512 bytes of its
// own metadata regardless of size.
constexpr uint64_t kPerObjectBaseBytes = 512;

struct ObjectKey {
  PoolId pool = -1;
  std::string oid;

  bool operator<(const ObjectKey& o) const {
    if (pool != o.pool) return pool < o.pool;
    return oid < o.oid;
  }
  bool operator==(const ObjectKey& o) const {
    return pool == o.pool && oid == o.oid;
  }
};

// Sparse object data: non-overlapping extents keyed by offset.
class ExtentMap {
 public:
  // Overwrite [off, off+data.size()), splitting/trimming overlaps.
  void write(uint64_t off, Buffer data);

  // Read [off, off+len); holes read as zeros.  len past logical size is
  // clamped by the caller (the map itself has no size notion).
  Buffer read(uint64_t off, uint64_t len) const;

  // Drop all extent bytes in [off, off+len) (dedup eviction).
  void punch_hole(uint64_t off, uint64_t len);

  // Drop everything at or beyond `size`.
  void truncate(uint64_t size);

  // True if every byte of [off, off+len) is backed by an extent.
  bool fully_present(uint64_t off, uint64_t len) const;

  uint64_t stored_bytes() const;
  uint64_t end_offset() const;  // highest extent end, 0 if empty
  bool empty() const { return extents_.empty(); }
  size_t extent_count() const { return extents_.size(); }

  const std::map<uint64_t, Buffer>& extents() const { return extents_; }

 private:
  std::map<uint64_t, Buffer> extents_;
};

struct ObjectState {
  ExtentMap data;
  uint64_t logical_size = 0;  // max write/truncate high-water mark
  std::map<std::string, Buffer> xattrs;
  std::map<std::string, Buffer> omap;
  uint64_t version = 0;
};

class Transaction {
 public:
  enum class OpType {
    kCreate,
    kWrite,
    kWriteFull,
    kTruncate,
    kPunchHole,
    kRemove,
    kSetXattr,
    kRmXattr,
    kOmapSet,
    kOmapRm,
  };

  struct Op {
    OpType type;
    ObjectKey key;
    uint64_t off = 0;
    uint64_t len = 0;
    Buffer data;
    std::string name;
  };

  void create(const ObjectKey& k);
  void write(const ObjectKey& k, uint64_t off, Buffer data);
  void write_full(const ObjectKey& k, Buffer data);
  void truncate(const ObjectKey& k, uint64_t size);
  void punch_hole(const ObjectKey& k, uint64_t off, uint64_t len);
  void remove(const ObjectKey& k);
  void setxattr(const ObjectKey& k, std::string name, Buffer value);
  void rmxattr(const ObjectKey& k, std::string name);
  void omap_set(const ObjectKey& k, std::string key, Buffer value);
  void omap_rm(const ObjectKey& k, std::string key);

  bool empty() const { return ops_.empty(); }
  const std::vector<Op>& ops() const { return ops_; }

  // Payload bytes — what the journal write and the wire transfer cost.
  uint64_t byte_size() const;

  void append(const Transaction& other);

 private:
  std::vector<Op> ops_;
};

class ObjectStore {
 public:
  struct Stats {
    uint64_t objects = 0;
    uint64_t logical_bytes = 0;    // sum of logical sizes
    uint64_t stored_data_bytes = 0;  // extent bytes (post-compression)
    uint64_t xattr_bytes = 0;
    uint64_t omap_bytes = 0;
    // stored_data + xattr + omap + objects * kPerObjectBaseBytes
    uint64_t physical_bytes = 0;
  };

  explicit ObjectStore(bool compress_at_rest = false)
      : compress_at_rest_(compress_at_rest) {}

  // Optional worker pool for the compression-at-rest stats scan (the
  // kCompress kernel).  The scan walks every stored byte, so it dominates
  // stats() on compressed pools; the total is an in-order sum of pure
  // per-batch sums, identical at any thread count.
  void set_exec_pool(ExecPool* pool) { exec_pool_ = pool; }

  // Apply atomically: validates first, then mutates; a failed validation
  // leaves the store untouched.
  Status apply(const Transaction& txn);

  bool exists(const ObjectKey& k) const {
    MaybeSharedLock g(mu_);
    return objects_.count(k) > 0;
  }
  Result<uint64_t> size(const ObjectKey& k) const;
  Result<uint64_t> version(const ObjectKey& k) const;

  // len == 0 means "to logical end".  Holes read as zeros.
  Result<Buffer> read(const ObjectKey& k, uint64_t off, uint64_t len) const;

  Result<Buffer> getxattr(const ObjectKey& k, const std::string& name) const;
  Result<Buffer> omap_get(const ObjectKey& k, const std::string& key) const;

  // All omap entries whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, Buffer>> omap_list(
      const ObjectKey& k, const std::string& prefix) const;

  const ObjectState* find(const ObjectKey& k) const;

  // Full-state snapshot / install, used by recovery push/pull.
  Result<ObjectState> snapshot(const ObjectKey& k) const;
  void install(const ObjectKey& k, ObjectState state);
  Status remove_object(const ObjectKey& k);

  std::vector<ObjectKey> list(PoolId pool) const;
  std::vector<ObjectKey> list_all() const;

  Stats stats() const;
  Stats stats(PoolId pool) const;

  bool compress_at_rest() const { return compress_at_rest_; }

  // Apply a transaction's ops to a detached ObjectState image (used by the
  // EC write path, which rewrites whole objects).  `exists` tracks object
  // liveness across create/remove ops.
  static Status apply_to_state(const Transaction& txn, const ObjectKey& key,
                               ObjectState* state, bool* exists);

 private:
  uint64_t stored_bytes_of(const ObjectState& st) const;
  static uint64_t kv_bytes(const std::map<std::string, Buffer>& kv);
  Stats stats_impl(const PoolId* pool) const;

  bool compress_at_rest_;
  ExecPool* exec_pool_ = nullptr;
  // Guards the map *structure* against cross-shard lookups racing a local
  // insert/erase during parallel windows (the gated locks are no-ops in
  // serial execution).  Field-level read/write races on one object are
  // excluded by protocol order: all cross-node access to an object's
  // contents flows through its primary OSD (DESIGN.md §9).
  mutable std::shared_mutex mu_;
  std::map<ObjectKey, ObjectState> objects_;
};

}  // namespace gdedup
