#pragma once

// Object Storage Daemon.
//
// One OSD owns one simulated SSD and per-pool object stores, and serves
// OsdOps delivered over the network.  It is the coordinator for objects
// whose acting set it leads: replicated writes fan out sub-writes to the
// peer replicas; erasure-coded writes encode and distribute shards; reads
// serve locally or gather shards.  The chunk-pool verbs (kChunkPutRef /
// kChunkDeref) implement content-addressed reference counting: because a
// chunk's OID is its fingerprint, "same OID already stored" *is* the
// duplicate-detection test (double hashing), so a put of existing content
// only appends a reference entry.
//
// A TierService (the dedup tier) may be installed per pool; client reads
// and writes to that pool are delegated to it, everything else (replication,
// EC, recovery, chunk verbs) is unchanged — the self-contained-object
// property the paper's design hinges on.

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "obs/perf_counters.h"
#include "osd/cluster_context.h"
#include "osd/messages.h"
#include "osd/object_store.h"
#include "osd/refs_cache.h"
#include "sim/disk.h"
#include "sim/metrics.h"

namespace gdedup {

class TierService {
 public:
  virtual ~TierService() = default;
  virtual void handle_read(const OsdOp& op, ReplyFn reply) = 0;
  virtual void handle_write(const OsdOp& op, ReplyFn reply) = 0;
  virtual void handle_remove(const OsdOp& op, ReplyFn reply) = 0;
  virtual void start() = 0;
  virtual void stop() = 0;
  virtual size_t dirty_backlog() const = 0;
  // True while the tier holds volatile state for `oid` (dirty entry,
  // in-flight flush, or an unapplied client write).  GC uses this to defer
  // reclaiming chunks an open flush window is about to reference.
  virtual bool object_busy(const std::string& oid) const {
    (void)oid;
    return false;
  }
  // The local copy of `oid` was trimmed as a stray (this OSD left the
  // object's acting set): drop any volatile per-object state so a stale
  // dirty flag cannot keep the engine busy with an object it no longer
  // owns.
  virtual void forget_object(const std::string& oid) { (void)oid; }
};

// Crash-injection points in the OSD's replication / recovery / chunk-verb
// paths (the campaign's counterparts to the dedup tier's FailurePoints).
// When the hook returns true the OSD crashes *at that point*: it goes down
// with drop-when-down semantics, its volatile op queues are lost, and the
// in-flight op is abandoned exactly as a kill -9 would abandon it.
enum class OsdFailurePoint {
  kBeforeReplicatedFanout,  // primary dies before any sub-write is sent
  kAfterLocalApply,         // local copy applied; peer acks never collected
  kBeforeSubWriteApply,     // replica dies before applying a sub-write
  kBeforeRecoveryPull,      // holder dies before serving a recovery pull
  kBeforeChunkRefWrite,     // chunk-pool OSD dies before a ref update
};
constexpr int kNumOsdFailurePoints = 5;
const char* osd_failure_point_name(OsdFailurePoint p);

using OsdFailureHook =
    std::function<bool(OsdFailurePoint, const ObjectKey& key)>;

// Perf-counter indices for one OSD (registry entity "osd.<id>").  The
// counters are the source of truth; OsdStats below is a compatibility
// view rebuilt from them on demand.
enum {
  l_osd_first = 1000,
  l_osd_client_ops,
  l_osd_reads,
  l_osd_writes,
  l_osd_sub_writes,
  l_osd_chunk_puts,
  l_osd_chunk_created,
  l_osd_chunk_dedup_hits,
  l_osd_chunk_derefs,
  l_osd_chunks_reclaimed,
  l_osd_pulls,
  l_osd_pushes,
  l_osd_op_r_lat,  // client-facing read latency (dispatch -> reply), ns
  l_osd_op_w_lat,  // client-facing write latency, ns
  l_osd_bytes_zero_copied,    // payload bytes applied as shared COW slices
  l_osd_crc_verifies,         // exec-pool payload CRC cross-checks run
  l_osd_crc_verify_failures,  // dedup-hit payload mismatched stored chunk
  // Chunk-map metadata accounting (osd/refs_cache.h).  meta_bytes_* count
  // the refs-xattr traffic identically with the fast path on or off; the
  // cache counters measure decodes actually skipped.  Host-side only —
  // never part of the determinism digest.
  l_osd_meta_bytes_read,      // refs xattr bytes read (incl. peer union)
  l_osd_meta_bytes_written,   // refs xattr bytes encoded + written
  l_osd_refs_decodes,         // full reference-list decodes performed
  l_osd_refs_cache_hits,      // decodes skipped via identity-validated hit
  l_osd_last,
};

// Legacy aggregate view of the OSD perf counters.  Kept because a pile of
// tests and harnesses read these fields; Osd::stats() refreshes one from
// the registry-backed counters.
struct OsdStats {
  uint64_t client_ops = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sub_writes = 0;
  uint64_t chunk_puts = 0;
  uint64_t chunk_created = 0;      // new chunk objects stored
  uint64_t chunk_dedup_hits = 0;   // puts satisfied by an existing chunk
  uint64_t chunk_derefs = 0;
  uint64_t chunks_reclaimed = 0;   // refcount hit zero
  uint64_t pulls = 0;
  uint64_t pushes = 0;
  uint64_t meta_bytes_read = 0;
  uint64_t meta_bytes_written = 0;
  uint64_t refs_decodes = 0;
  uint64_t refs_cache_hits = 0;
};

class Osd {
 public:
  Osd(ClusterContext* ctx, OsdId id, NodeId node, const SsdConfig& disk_cfg);

  OsdId id() const { return id_; }
  NodeId node() const { return node_; }

  bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  // When true, ops arriving while down are silently dropped (no reply) —
  // crash semantics for consistency tests.  Default: reply kUnavailable.
  void set_drop_when_down(bool drop) { drop_when_down_ = drop; }
  bool drop_when_down() const { return drop_when_down_; }

  // Fault-injection: arm a hook consulted at each OsdFailurePoint; return
  // true to crash this OSD there.  nullptr disarms.
  void set_failure_hook(OsdFailureHook hook) {
    failure_hook_ = std::move(hook);
  }
  uint64_t injected_crashes() const { return injected_crashes_; }

  // Drop the volatile per-object op queues — a crash loses them, and late
  // completions of ops that were in flight must find them gone rather than
  // assert.  Called on crash; harmless on a live OSD with no queued work.
  void reset_volatile();

  // Drop the decoded-refs cache entry for `key` (all entries when `key`
  // is omitted).  Needed wherever a chunk object is destroyed *without*
  // passing through chunk_deref_locked — GC reclaim, store wipes — since
  // a recreate could otherwise revalidate a stale entry whose bound
  // buffer was never mutated.
  void drop_refs_cache(const ObjectKey& key) { refs_cache_.erase(key); }
  void drop_refs_cache() { refs_cache_.clear(); }

  // Per-pool backing store (created on first touch; compression-at-rest
  // follows the pool config).
  ObjectStore& store(PoolId pool);
  const ObjectStore* store_if_exists(PoolId pool) const;

  SsdModel& disk() { return disk_; }

  // Compatibility accessors: rebuild the legacy struct from the perf
  // counters.  Reads through the returned reference are always current;
  // writes would be lost (no caller writes — they all go through the
  // counters now).
  OsdStats& stats() {
    refresh_stats_view();
    return stats_view_;
  }
  const OsdStats& stats() const {
    refresh_stats_view();
    return stats_view_;
  }

  obs::PerfCounters& perf() { return *perf_; }
  const obs::PerfCounters& perf() const { return *perf_; }

  // Foreground client-op completions in the last second (rate control).
  SlidingWindowCounter& foreground_window() { return fg_window_; }

  void set_tier(PoolId pool, std::unique_ptr<TierService> tier);
  TierService* tier(PoolId pool);

  // Entry point for ops delivered to this OSD (already at this node).
  void handle_op(OsdOp op, ReplyFn reply);

  // ---- redundancy-aware primitives (this OSD coordinates) ----

  // Apply `txn` to object (pool, oid) across its acting set.
  void submit_write(PoolId pool, const std::string& oid, Transaction txn,
                    std::function<void(Status)> done, bool foreground = true);

  // Read object data through the pool's redundancy (local for replicated,
  // shard-gather for EC).  len == 0 reads to the end.
  void submit_read(PoolId pool, const std::string& oid, uint64_t off,
                   uint64_t len, std::function<void(Result<Buffer>)> done,
                   bool foreground = true);

  void submit_remove(PoolId pool, const std::string& oid,
                     std::function<void(Status)> done,
                     bool foreground = true);

  // ---- local (no I/O cost) helpers for tiers and tests ----
  Result<Buffer> local_getxattr(PoolId pool, const std::string& oid,
                                const std::string& name) const;
  bool local_exists(PoolId pool, const std::string& oid) const;

  ClusterContext& ctx() { return *ctx_; }

 private:
  CpuModel& cpu() { return ctx_->node_cpu(node_); }

  // Consult the armed failure hook; on true, self-crash (mark down with
  // silent-drop semantics, reset volatile queues) and report true so the
  // caller abandons the in-flight op.
  bool fail_at(OsdFailurePoint p, const ObjectKey& key);

  void dispatch(OsdOp op, ReplyFn reply);

  void handle_read(const OsdOp& op, ReplyFn reply);
  void handle_write(const OsdOp& op, ReplyFn reply);
  void handle_remove(const OsdOp& op, ReplyFn reply);
  void handle_stat(const OsdOp& op, ReplyFn reply);
  void handle_getxattr(const OsdOp& op, ReplyFn reply);
  void handle_setxattr(const OsdOp& op, ReplyFn reply);
  void handle_sub_write(const OsdOp& op, ReplyFn reply);
  void handle_shard_read(const OsdOp& op, ReplyFn reply);
  void handle_pull(const OsdOp& op, ReplyFn reply);
  void handle_push(const OsdOp& op, ReplyFn reply);
  void handle_chunk_put_ref(const OsdOp& op, ReplyFn reply);
  void handle_chunk_deref(const OsdOp& op, ReplyFn reply);

  void chunk_put_ref_locked(const OsdOp& op, ReplyFn reply);
  void chunk_deref_locked(const OsdOp& op, ReplyFn reply);

  // Read + decode the chunk's reference list (empty vector if none is
  // recorded yet), consulting the decoded-refs cache when the fast path
  // is on.  Metadata read bytes are accounted identically in both modes.
  Status load_refs(const ObjectKey& key, std::vector<ChunkRef>* out);
  // Encode `refs`, account the metadata write, and pre-populate the cache
  // with the encoded buffer's identity (the store retains it zero-copy,
  // so the next load_refs on this chunk skips the decode).
  Buffer store_refs(const ObjectKey& key, std::vector<ChunkRef> refs);

  // Per-object FIFO op queues.  Chunk verbs serialize so two in-flight
  // puts of the same (new) chunk cannot both take the create path; EC
  // writes serialize so concurrent read-modify-writes of one object can
  // neither race nor hold multiple full-object images in memory.
  using OpQueue = std::map<ObjectKey, std::deque<std::function<void()>>>;
  void enqueue_object_op(OpQueue& q, const ObjectKey& key,
                         std::function<void()> fn);
  void finish_object_op(OpQueue& q, const ObjectKey& key);
  void enqueue_chunk_op(const ObjectKey& key, std::function<void()> fn) {
    enqueue_object_op(chunk_op_queue_, key, std::move(fn));
  }
  void finish_chunk_op(const ObjectKey& key) {
    finish_object_op(chunk_op_queue_, key);
  }

  void replicated_write(PoolId pool, const std::string& oid, Transaction txn,
                        std::function<void(Status)> done, bool foreground);
  void ec_write(PoolId pool, const std::string& oid, Transaction txn,
                std::function<void(Status)> done, bool foreground);
  void ec_write_locked(PoolId pool, const std::string& oid, Transaction txn,
                       std::function<void(Status)> done, bool foreground);
  void ec_read(PoolId pool, const std::string& oid, uint64_t off, uint64_t len,
               std::function<void(Result<Buffer>)> done, bool foreground);

  // Apply a transaction locally: journal/disk write, then store apply.
  void local_apply(PoolId pool, Transaction txn,
                   std::function<void(Status)> done);

  void refresh_stats_view() const;

  ClusterContext* ctx_;
  OsdId id_;
  NodeId node_;
  SsdModel disk_;
  // Read cross-shard by recovery scans and liveness checks; flipped only
  // from control / global-lane code, but atomic keeps parallel windows
  // race-free without a lock.
  std::atomic<bool> up_{true};
  bool drop_when_down_ = false;
  // Guards the per-pool store map structure during parallel windows (the
  // stores themselves carry their own gated lock).
  mutable std::shared_mutex stores_mu_;
  std::map<PoolId, std::unique_ptr<ObjectStore>> stores_;
  std::map<PoolId, std::unique_ptr<TierService>> tiers_;
  OpQueue chunk_op_queue_;
  OpQueue ec_write_queue_;
  // Decoded refs-xattr cache, consulted only when ctx_->fp_fastpath().
  // Identity validation makes stale entries self-healing, so crash resets
  // (reset_volatile) need not touch it.
  RefsCache refs_cache_;
  obs::PerfCountersRef perf_;
  mutable OsdStats stats_view_;
  OsdFailureHook failure_hook_;
  uint64_t injected_crashes_ = 0;
  SlidingWindowCounter fg_window_{kSecond};
};

// Route an op from `from_node` to `target`'s node, run it there, and route
// the reply back; `cb` fires on the sender's side.
void send_osd_op(ClusterContext& ctx, NodeId from_node, OsdId target, OsdOp op,
                 ReplyFn cb);

}  // namespace gdedup
