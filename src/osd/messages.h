#pragma once

// OSD operation messages.
//
// Clients and OSDs exchange OsdOp / OsdOpReply over the simulated network.
// The op set is the small RADOS-like core plus the two verbs the dedup
// design adds to the chunk pool: kChunkPutRef (create-or-add-reference,
// the write half of double hashing) and kChunkDeref (drop one reference,
// reclaiming the chunk at zero).  kSubWrite/kShardRead/kPull/kPush are
// internal replication, EC and recovery traffic.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "osd/object_store.h"

namespace gdedup {

namespace obs {
class OpTrace;
}

enum class OsdOpType : uint8_t {
  kRead,
  kWrite,       // offset write (creates the object if absent)
  kWriteFull,
  kRemove,
  kStat,
  kGetXattr,
  kSetXattr,
  kChunkPutRef,  // chunk pool: create chunk object or add a reference
  kChunkDeref,   // chunk pool: remove a reference, delete at refcount 0
  kSubWrite,     // replica/shard: apply a transaction
  kShardRead,    // EC internal: full shard data + attrs
  kPull,         // recovery: full object state out
  kPush,         // recovery: full object state in
};

std::string_view osd_op_type_name(OsdOpType t);

// Identity of one chunk-map slot referencing a chunk object (the paper's
// reference information: pool id, source object ID, offset).
struct ChunkRef {
  PoolId pool = -1;
  std::string oid;
  uint64_t offset = 0;

  bool operator==(const ChunkRef& o) const {
    return pool == o.pool && offset == o.offset && oid == o.oid;
  }
  bool operator<(const ChunkRef& o) const {
    if (pool != o.pool) return pool < o.pool;
    if (oid != o.oid) return oid < o.oid;
    return offset < o.offset;
  }
};

// Encoded under this xattr on every chunk object.
inline constexpr const char* kRefsXattr = "dedup.refs";

Buffer encode_refs(const std::vector<ChunkRef>& refs);
Result<std::vector<ChunkRef>> decode_refs(const Buffer& b);

struct OsdOp {
  OsdOpType type = OsdOpType::kRead;
  PoolId pool = -1;
  std::string oid;
  uint64_t off = 0;
  uint64_t len = 0;
  Buffer data;
  std::string name;  // xattr name
  ChunkRef ref;      // kChunkPutRef / kChunkDeref
  // Additional back-references recorded with the same kChunkPutRef — a
  // rewrite container carries one ref per coalesced slot in a single put.
  std::vector<ChunkRef> extra_refs;
  std::shared_ptr<Transaction> txn;        // kSubWrite
  std::shared_ptr<ObjectState> state;      // kPush
  bool foreground = true;  // false for background dedup / recovery traffic

  // Optional op-trace context (obs/op_tracker.h), threaded across message
  // hops so each layer can annotate per-stage spans.  Not wire data: it
  // contributes nothing to wire_bytes() and crosses the simulated network
  // for free, like Ceph's in-process tracking state.
  std::shared_ptr<obs::OpTrace> trace;

  // CRC32C of `data`, computed by the exec pool's CRC kernel at receive
  // dispatch when worker threads are available.  Lets dedup hits
  // cross-check the incoming payload against the stored chunk without
  // touching bytes on the event loop.  Host-side metadata, not wire data
  // (a real message would carry its checksum anyway); absent in serial
  // runs, where the CRC cost stays virtual-only.
  uint32_t payload_crc = 0;
  bool has_payload_crc = false;

  uint64_t wire_bytes() const;
};

struct OsdOpReply {
  Status status;
  Buffer data;            // kRead / kShardRead / kGetXattr
  uint64_t size = 0;      // kStat; logical size for kShardRead
  std::map<std::string, Buffer> attrs;  // kShardRead / kPull extras
  std::shared_ptr<ObjectState> state;   // kPull

  uint64_t wire_bytes() const;
};

using ReplyFn = std::function<void(OsdOpReply)>;

uint64_t object_state_bytes(const ObjectState& st);

}  // namespace gdedup
