#include "osd/osd.h"

#include <algorithm>
#include <cassert>

#include "common/crc32.h"
#include "common/encoding.h"
#include "common/logging.h"
#include "ec/reed_solomon.h"
#include "obs/op_tracker.h"

namespace gdedup {

namespace {

constexpr const char* kEcShardXattr = "ec.shard";
constexpr const char* kEcOrigLenXattr = "ec.orig_len";

Buffer encode_u64(uint64_t v) {
  Encoder e;
  e.put_u64(v);
  return e.finish();
}

Result<uint64_t> decode_u64(const Buffer& b) {
  Decoder d(b);
  uint64_t v = 0;
  if (auto s = d.get_u64(&v); !s.is_ok()) return s;
  return v;
}

// Shared completion barrier: runs `done(worst_status)` after `expected`
// arms have completed.
struct Barrier {
  int remaining;
  Status worst;
  std::function<void(Status)> done;

  void arrive(Status s) {
    if (!s.is_ok() && worst.is_ok()) worst = s;
    if (--remaining == 0) done(worst);
  }
};

}  // namespace

const char* osd_failure_point_name(OsdFailurePoint p) {
  switch (p) {
    case OsdFailurePoint::kBeforeReplicatedFanout:
      return "before_replicated_fanout";
    case OsdFailurePoint::kAfterLocalApply:
      return "after_local_apply";
    case OsdFailurePoint::kBeforeSubWriteApply:
      return "before_sub_write_apply";
    case OsdFailurePoint::kBeforeRecoveryPull:
      return "before_recovery_pull";
    case OsdFailurePoint::kBeforeChunkRefWrite:
      return "before_chunk_ref_write";
  }
  return "?";
}

Osd::Osd(ClusterContext* ctx, OsdId id, NodeId node, const SsdConfig& disk_cfg)
    : ctx_(ctx), id_(id), node_(node), disk_(&ctx->sched(), disk_cfg) {
  obs::PerfCountersBuilder b("osd." + std::to_string(id), l_osd_first,
                             l_osd_last);
  b.add_counter(l_osd_client_ops, "client_ops");
  b.add_counter(l_osd_reads, "reads");
  b.add_counter(l_osd_writes, "writes");
  b.add_counter(l_osd_sub_writes, "sub_writes");
  b.add_counter(l_osd_chunk_puts, "chunk_puts");
  b.add_counter(l_osd_chunk_created, "chunk_created");
  b.add_counter(l_osd_chunk_dedup_hits, "chunk_dedup_hits");
  b.add_counter(l_osd_chunk_derefs, "chunk_derefs");
  b.add_counter(l_osd_chunks_reclaimed, "chunks_reclaimed");
  b.add_counter(l_osd_pulls, "pulls");
  b.add_counter(l_osd_pushes, "pushes");
  b.add_histogram(l_osd_op_r_lat, "op_r_lat");
  b.add_histogram(l_osd_op_w_lat, "op_w_lat");
  b.add_counter(l_osd_bytes_zero_copied, "bytes_zero_copied");
  b.add_counter(l_osd_crc_verifies, "crc_verifies");
  b.add_counter(l_osd_crc_verify_failures, "crc_verify_failures");
  b.add_counter(l_osd_meta_bytes_read, "meta_bytes_read");
  b.add_counter(l_osd_meta_bytes_written, "meta_bytes_written");
  b.add_counter(l_osd_refs_decodes, "refs_decodes");
  b.add_counter(l_osd_refs_cache_hits, "refs_cache_hits");
  perf_ = b.create();
  if (auto* reg = ctx_->perf_registry()) reg->add(perf_);
}

void Osd::refresh_stats_view() const {
  stats_view_.client_ops = perf_->get(l_osd_client_ops);
  stats_view_.reads = perf_->get(l_osd_reads);
  stats_view_.writes = perf_->get(l_osd_writes);
  stats_view_.sub_writes = perf_->get(l_osd_sub_writes);
  stats_view_.chunk_puts = perf_->get(l_osd_chunk_puts);
  stats_view_.chunk_created = perf_->get(l_osd_chunk_created);
  stats_view_.chunk_dedup_hits = perf_->get(l_osd_chunk_dedup_hits);
  stats_view_.chunk_derefs = perf_->get(l_osd_chunk_derefs);
  stats_view_.chunks_reclaimed = perf_->get(l_osd_chunks_reclaimed);
  stats_view_.pulls = perf_->get(l_osd_pulls);
  stats_view_.pushes = perf_->get(l_osd_pushes);
  stats_view_.meta_bytes_read = perf_->get(l_osd_meta_bytes_read);
  stats_view_.meta_bytes_written = perf_->get(l_osd_meta_bytes_written);
  stats_view_.refs_decodes = perf_->get(l_osd_refs_decodes);
  stats_view_.refs_cache_hits = perf_->get(l_osd_refs_cache_hits);
}

bool Osd::fail_at(OsdFailurePoint p, const ObjectKey& key) {
  if (!failure_hook_ || !failure_hook_(p, key)) return false;
  injected_crashes_++;
  // Self-crash with kill -9 semantics.  Cluster-level cleanup (stopping
  // tier services, scheduling the restart) belongs to whoever armed the
  // hook — this layer only knows about the OSD itself.
  drop_when_down_ = true;
  up_ = false;
  ctx_->osdmap().mark_down(id_);
  reset_volatile();
  return true;
}

void Osd::reset_volatile() {
  // The call may originate *inside* a queued closure (fail_at at the top of
  // chunk_put_ref_locked runs from chunk_op_queue_'s front element), so the
  // closures cannot be destroyed here — that would free the frame we are
  // executing.  Swap them into a graveyard that a zero-delay event buries
  // after the stack unwinds; the live queues are empty immediately.
  auto graveyard = std::make_shared<std::pair<OpQueue, OpQueue>>();
  graveyard->first.swap(chunk_op_queue_);
  graveyard->second.swap(ec_write_queue_);
  if (!graveyard->first.empty() || !graveyard->second.empty()) {
    ctx_->sched().after(0, [graveyard] {});
  }
}

ObjectStore& Osd::store(PoolId pool) {
  // First touch creates the store; a cross-shard store_if_exists during a
  // parallel window must not race the map insert.
  MaybeUniqueLock g(stores_mu_);
  auto it = stores_.find(pool);
  if (it == stores_.end()) {
    const bool compress = ctx_->osdmap().pool(pool).compress_at_rest;
    it = stores_.emplace(pool, std::make_unique<ObjectStore>(compress)).first;
    it->second->set_exec_pool(ctx_->exec_pool());
  }
  return *it->second;
}

const ObjectStore* Osd::store_if_exists(PoolId pool) const {
  MaybeSharedLock g(stores_mu_);
  auto it = stores_.find(pool);
  return it == stores_.end() ? nullptr : it->second.get();
}

void Osd::set_tier(PoolId pool, std::unique_ptr<TierService> tier) {
  tiers_[pool] = std::move(tier);
}

TierService* Osd::tier(PoolId pool) {
  auto it = tiers_.find(pool);
  return it == tiers_.end() ? nullptr : it->second.get();
}

Result<Buffer> Osd::local_getxattr(PoolId pool, const std::string& oid,
                                   const std::string& name) const {
  const ObjectStore* st = store_if_exists(pool);
  if (st == nullptr) return Status::not_found(oid);
  return st->getxattr({pool, oid}, name);
}

bool Osd::local_exists(PoolId pool, const std::string& oid) const {
  const ObjectStore* st = store_if_exists(pool);
  return st != nullptr && st->exists({pool, oid});
}

void Osd::handle_op(OsdOp op, ReplyFn reply) {
  if (!up_) {
    if (!drop_when_down_) {
      ctx_->sched().after(usec(1), [reply] {
        reply(OsdOpReply{Status::unavailable("osd down"), {}, 0, {}, nullptr});
      });
    }
    return;  // crashed: message silently lost
  }

  // Request-processing CPU: fixed dispatch cost + checksumming of payload.
  // The virtual CRC cost has always been charged here; with a parallel
  // exec pool the checksum is now really computed — a worker overlaps it
  // with the virtual delay, and the result rides on the op so downstream
  // dedup hits can cross-check payload-vs-stored-chunk integrity.  Gated
  // on parallel(): serial runs keep the checksum virtual-only, exactly
  // the pre-offload event-loop work.
  KernelFuture<uint32_t> crc;
  ExecPool* xp = ctx_->exec_pool();
  if (xp != nullptr && xp->parallel() && !op.data.empty()) {
    Buffer payload = op.data;
    crc = kernel_async<uint32_t>(xp, Kernel::kCrc, [payload = std::move(
                                                        payload)] {
      return crc32c(payload.span());
    });
  }
  const SimTime cost =
      cpu().op_fixed_cost() + cpu().crc_cost(op.data.size());
  cpu().execute(cost, [this, op = std::move(op), crc = std::move(crc),
                       reply = std::move(reply)]() mutable {
    if (crc.valid()) {
      op.payload_crc = crc.take();
      op.has_payload_crc = true;
    }
    dispatch(std::move(op), std::move(reply));
  });
}

void Osd::dispatch(OsdOp op, ReplyFn reply) {
  const bool client_facing =
      op.type == OsdOpType::kRead || op.type == OsdOpType::kWrite ||
      op.type == OsdOpType::kWriteFull || op.type == OsdOpType::kRemove ||
      op.type == OsdOpType::kStat || op.type == OsdOpType::kGetXattr ||
      op.type == OsdOpType::kSetXattr;
  if (client_facing) {
    perf_->inc(l_osd_client_ops);
    if (op.foreground) {
      fg_window_.advance(ctx_->sched().now());
      fg_window_.add(ctx_->sched().now());
    }
    // End-to-end OSD-side data-op latency (covers the tier path too).
    if (op.type == OsdOpType::kRead || op.type == OsdOpType::kWrite ||
        op.type == OsdOpType::kWriteFull) {
      const int idx =
          op.type == OsdOpType::kRead ? l_osd_op_r_lat : l_osd_op_w_lat;
      Scheduler* sched = &ctx_->sched();
      const SimTime t0 = sched->now();
      reply = [perf = perf_, idx, t0, sched,
               inner = std::move(reply)](OsdOpReply rep) {
        perf->record(idx, static_cast<uint64_t>(sched->now() - t0));
        inner(std::move(rep));
      };
    }
  }

  // Dedup tier interposes on client data ops for its pool.
  if (client_facing && ctx_->osdmap().pool(op.pool).dedup.enabled()) {
    TierService* t = tier(op.pool);
    if (t != nullptr) {
      if (op.type == OsdOpType::kRead) {
        t->handle_read(op, std::move(reply));
        return;
      }
      if (op.type == OsdOpType::kWrite || op.type == OsdOpType::kWriteFull) {
        t->handle_write(op, std::move(reply));
        return;
      }
      if (op.type == OsdOpType::kRemove) {
        t->handle_remove(op, std::move(reply));
        return;
      }
    }
  }

  switch (op.type) {
    case OsdOpType::kRead:
      handle_read(op, std::move(reply));
      break;
    case OsdOpType::kWrite:
    case OsdOpType::kWriteFull:
      handle_write(op, std::move(reply));
      break;
    case OsdOpType::kRemove:
      handle_remove(op, std::move(reply));
      break;
    case OsdOpType::kStat:
      handle_stat(op, std::move(reply));
      break;
    case OsdOpType::kGetXattr:
      handle_getxattr(op, std::move(reply));
      break;
    case OsdOpType::kSetXattr:
      handle_setxattr(op, std::move(reply));
      break;
    case OsdOpType::kSubWrite:
      handle_sub_write(op, std::move(reply));
      break;
    case OsdOpType::kShardRead:
      handle_shard_read(op, std::move(reply));
      break;
    case OsdOpType::kPull:
      handle_pull(op, std::move(reply));
      break;
    case OsdOpType::kPush:
      handle_push(op, std::move(reply));
      break;
    case OsdOpType::kChunkPutRef:
      handle_chunk_put_ref(op, std::move(reply));
      break;
    case OsdOpType::kChunkDeref:
      handle_chunk_deref(op, std::move(reply));
      break;
  }
}

// ------------------------------------------------------------- plain ops

void Osd::handle_read(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_osd_reads);
  submit_read(op.pool, op.oid, op.off, op.len,
              [reply = std::move(reply)](Result<Buffer> r) {
                if (!r.is_ok()) {
                  reply(OsdOpReply{r.status(), {}, 0, {}, nullptr});
                } else {
                  reply(OsdOpReply{Status::ok(), std::move(r).value(), 0, {},
                                   nullptr});
                }
              },
              op.foreground);
}

void Osd::handle_write(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_osd_writes);
  Transaction txn;
  const ObjectKey key{op.pool, op.oid};
  if (op.type == OsdOpType::kWriteFull) {
    txn.write_full(key, op.data);
  } else {
    txn.write(key, op.off, op.data);
  }
  submit_write(op.pool, op.oid, std::move(txn),
               [reply = std::move(reply)](Status s) {
                 reply(OsdOpReply{s, {}, 0, {}, nullptr});
               },
               op.foreground);
}

void Osd::handle_remove(const OsdOp& op, ReplyFn reply) {
  submit_remove(op.pool, op.oid,
                [reply = std::move(reply)](Status s) {
                  reply(OsdOpReply{s, {}, 0, {}, nullptr});
                },
                op.foreground);
}

void Osd::handle_stat(const OsdOp& op, ReplyFn reply) {
  OsdOpReply rep;
  auto r = store(op.pool).size({op.pool, op.oid});
  if (r.is_ok()) {
    rep.size = r.value();
  } else {
    rep.status = r.status();
  }
  reply(std::move(rep));
}

void Osd::handle_getxattr(const OsdOp& op, ReplyFn reply) {
  OsdOpReply rep;
  auto r = store(op.pool).getxattr({op.pool, op.oid}, op.name);
  if (r.is_ok()) {
    rep.data = std::move(r).value();
  } else {
    rep.status = r.status();
  }
  reply(std::move(rep));
}

void Osd::handle_setxattr(const OsdOp& op, ReplyFn reply) {
  Transaction txn;
  txn.setxattr({op.pool, op.oid}, op.name, op.data);
  submit_write(op.pool, op.oid, std::move(txn),
               [reply = std::move(reply)](Status s) {
                 reply(OsdOpReply{s, {}, 0, {}, nullptr});
               },
               op.foreground);
}

void Osd::handle_sub_write(const OsdOp& op, ReplyFn reply) {
  if (fail_at(OsdFailurePoint::kBeforeSubWriteApply, {op.pool, op.oid})) {
    return;  // crashed: the primary never hears back
  }
  perf_->inc(l_osd_sub_writes);
  assert(op.txn);
  local_apply(op.pool, *op.txn, [reply = std::move(reply)](Status s) {
    reply(OsdOpReply{s, {}, 0, {}, nullptr});
  });
}

void Osd::handle_shard_read(const OsdOp& op, ReplyFn reply) {
  const ObjectKey key{op.pool, op.oid};
  ObjectStore& st = store(op.pool);
  auto sz = st.size(key);
  if (!sz.is_ok()) {
    reply(OsdOpReply{sz.status(), {}, 0, {}, nullptr});
    return;
  }
  auto data = st.read(key, 0, 0);
  assert(data.is_ok());
  OsdOpReply rep;
  rep.data = std::move(data).value();
  rep.size = sz.value();
  for (const char* name : {kEcShardXattr, kEcOrigLenXattr}) {
    auto a = st.getxattr(key, name);
    if (a.is_ok()) rep.attrs[name] = std::move(a).value();
  }
  disk_.read(rep.data.size(), [reply = std::move(reply), rep]() mutable {
    reply(std::move(rep));
  });
}

void Osd::handle_pull(const OsdOp& op, ReplyFn reply) {
  if (fail_at(OsdFailurePoint::kBeforeRecoveryPull, {op.pool, op.oid})) {
    return;  // crashed: recovery must route around this holder
  }
  perf_->inc(l_osd_pulls);
  auto snap = store(op.pool).snapshot({op.pool, op.oid});
  if (!snap.is_ok()) {
    reply(OsdOpReply{snap.status(), {}, 0, {}, nullptr});
    return;
  }
  auto state = std::make_shared<ObjectState>(std::move(snap).value());
  const uint64_t bytes = object_state_bytes(*state);
  // The serve side of a recovery pull: snapshot + disk read of the full
  // object state.
  size_t sp = 0;
  if (op.trace) sp = op.trace->span_begin("pull_serve", ctx_->sched().now());
  disk_.read(bytes, [this, trace = op.trace, sp, reply = std::move(reply),
                     state]() mutable {
    if (trace) trace->span_end(sp, ctx_->sched().now());
    OsdOpReply rep;
    rep.state = state;
    reply(std::move(rep));
  });
}

void Osd::handle_push(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_osd_pushes);
  assert(op.state);
  const uint64_t bytes = object_state_bytes(*op.state);
  auto state = op.state;
  const ObjectKey key{op.pool, op.oid};
  disk_.write(bytes, [this, key, state, reply = std::move(reply)]() mutable {
    store(key.pool).install(key, *state);
    reply(OsdOpReply{});
  });
}

// ----------------------------------------------------------- chunk verbs

void Osd::handle_chunk_put_ref(const OsdOp& op, ReplyFn reply) {
  const ObjectKey key{op.pool, op.oid};
  enqueue_chunk_op(key, [this, op, reply = std::move(reply)]() mutable {
    chunk_put_ref_locked(op, std::move(reply));
  });
}

void Osd::handle_chunk_deref(const OsdOp& op, ReplyFn reply) {
  const ObjectKey key{op.pool, op.oid};
  enqueue_chunk_op(key, [this, op, reply = std::move(reply)]() mutable {
    chunk_deref_locked(op, std::move(reply));
  });
}

void Osd::enqueue_object_op(OpQueue& q, const ObjectKey& key,
                            std::function<void()> fn) {
  auto& dq = q[key];
  dq.push_back(std::move(fn));
  if (dq.size() == 1) dq.front()();
}

void Osd::finish_object_op(OpQueue& q, const ObjectKey& key) {
  auto it = q.find(key);
  // A crash resets the queues; an op that was in flight when it happened
  // may still complete afterwards and must find its entry simply gone.
  if (it == q.end() || it->second.empty()) return;
  it->second.pop_front();
  if (it->second.empty()) {
    q.erase(it);
  } else {
    // Defer to a fresh event so the stack unwinds.
    auto next = it->second.front();
    ctx_->sched().after(0, next);
  }
}

Status Osd::load_refs(const ObjectKey& key, std::vector<ChunkRef>* out) {
  auto raw = local_getxattr(key.pool, key.oid, kRefsXattr);
  if (!raw.is_ok()) return Status::ok();  // no refs recorded yet
  perf_->inc(l_osd_meta_bytes_read, raw.value().size());
  if (ctx_->fp_fastpath()) {
    if (const std::vector<ChunkRef>* cached =
            refs_cache_.find(key, raw.value())) {
      perf_->inc(l_osd_refs_cache_hits);
      *out = *cached;
      return Status::ok();
    }
  }
  perf_->inc(l_osd_refs_decodes);
  auto dec = decode_refs(raw.value());
  if (!dec.is_ok()) return dec.status();
  *out = std::move(dec).value();
  if (ctx_->fp_fastpath()) refs_cache_.put(key, raw.value(), *out);
  return Status::ok();
}

Buffer Osd::store_refs(const ObjectKey& key, std::vector<ChunkRef> refs) {
  Buffer enc = encode_refs(refs);
  perf_->inc(l_osd_meta_bytes_written, enc.size());
  if (ctx_->fp_fastpath()) refs_cache_.put(key, enc, std::move(refs));
  return enc;
}

void Osd::chunk_put_ref_locked(const OsdOp& op, ReplyFn reply) {
  if (fail_at(OsdFailurePoint::kBeforeChunkRefWrite, {op.pool, op.oid})) {
    return;  // crashed mid-refcount-update; queue already reset
  }
  perf_->inc(l_osd_chunk_puts);
  const ObjectKey key{op.pool, op.oid};

  // Double-hashing integrity tripwire, free when workers exist: on a
  // dedup hit the OID promises the incoming payload equals the stored
  // chunk.  Cross-check the receive-time payload CRC against the stored
  // bytes on a worker; the verdict is consumed (joined) when the op
  // finishes.  Counters only — never part of the determinism digest.
  KernelFuture<bool> crc_ok;
  ExecPool* xp = ctx_->exec_pool();
  if (xp != nullptr && xp->parallel() && op.has_payload_crc &&
      !op.data.empty() && local_exists(op.pool, op.oid)) {
    if (auto stored = store(op.pool).read(key, 0, 0); stored.is_ok()) {
      perf_->inc(l_osd_crc_verifies);
      crc_ok = kernel_async<bool>(
          xp, Kernel::kCrc,
          [sb = std::move(stored).value(), want = op.payload_crc] {
            return crc32c(sb.span()) == want;
          });
    }
  }

  auto finish = [this, key, crc_ok = std::move(crc_ok),
                 reply = std::move(reply)](Status s) mutable {
    if (crc_ok.valid() && !crc_ok.take()) {
      perf_->inc(l_osd_crc_verify_failures);
    }
    reply(OsdOpReply{s, {}, 0, {}, nullptr});
    finish_chunk_op(key);
  };

  if (local_exists(op.pool, op.oid)) {
    // Double hashing at work: same OID == same content, so this put is a
    // duplicate.  Normally only reference bookkeeping is written.
    std::vector<ChunkRef> refs;
    if (Status s = load_refs(key, &refs); !s.is_ok()) {
      finish(s);
      return;
    }
    const bool recorded =
        std::find(refs.begin(), refs.end(), op.ref) != refs.end();
    bool extras_recorded = true;
    for (const auto& r : op.extra_refs) {
      if (std::find(refs.begin(), refs.end(), r) == refs.end()) {
        extras_recorded = false;
        break;
      }
    }
    // The local copy alone does not make the put durable: a prior attempt
    // can have created the chunk here while its replica fanout was lost to
    // a network fault, and acking a retry off local state would leave the
    // chunk one disk-wipe away from vanishing under a recorded reference.
    // If any acting member lacks a copy, rewrite the data so the fanout
    // re-places it — the ack then means what the client thinks it means.
    bool fully_placed = true;
    for (OsdId t : ctx_->osdmap().acting(op.pool, op.oid)) {
      Osd* to = ctx_->osd(t);
      if (to == nullptr || !to->is_up() || !to->local_exists(op.pool, op.oid)) {
        fully_placed = false;
        break;
      }
    }
    if (recorded && extras_recorded && fully_placed) {
      // Retried flush; the reference is already recorded everywhere.
      finish(Status::ok());
      return;
    }
    if (!recorded) {
      perf_->inc(l_osd_chunk_dedup_hits);
      refs.push_back(op.ref);
    }
    for (const auto& r : op.extra_refs) {
      if (std::find(refs.begin(), refs.end(), r) == refs.end()) {
        refs.push_back(r);
      }
    }
    Transaction txn;
    if (!fully_placed) txn.write_full(key, op.data);
    txn.setxattr(key, kRefsXattr, store_refs(key, std::move(refs)));
    submit_write(op.pool, op.oid, std::move(txn), std::move(finish),
                 op.foreground);
    return;
  }

  perf_->inc(l_osd_chunk_created);
  // A rotated-in primary can be "creating" over a degraded placement:
  // other holders may still carry this content-addressed chunk with refs
  // this primary cannot see locally.  The content is identical by
  // construction (the OID is its fingerprint), but seeding the refs list
  // with only the new reference would orphan every peer-recorded one — a
  // later deref-to-zero would then destroy a chunk another object's map
  // still names.  Union the surviving refs in.
  std::vector<ChunkRef> refs{op.ref};
  for (const auto& r : op.extra_refs) {
    if (std::find(refs.begin(), refs.end(), r) == refs.end()) refs.push_back(r);
  }
  for (OsdId pid : ctx_->osdmap().all_osds()) {
    if (pid == id_) continue;
    Osd* peer = ctx_->osd(pid);
    if (peer == nullptr || !peer->is_up()) continue;
    const ObjectStore* ps = peer->store_if_exists(op.pool);
    if (ps == nullptr) continue;
    auto praw = ps->getxattr(key, kRefsXattr);
    if (!praw.is_ok()) continue;
    // Peer reads stay uncached — they cross OSDs, and this degraded-create
    // path is rare — but their metadata traffic is still accounted.
    perf_->inc(l_osd_meta_bytes_read, praw.value().size());
    perf_->inc(l_osd_refs_decodes);
    auto pdec = decode_refs(praw.value());
    if (!pdec.is_ok()) continue;
    for (const auto& r : pdec.value()) {
      if (std::find(refs.begin(), refs.end(), r) == refs.end()) {
        refs.push_back(r);
      }
    }
  }
  Transaction txn;
  txn.write_full(key, op.data);
  txn.setxattr(key, kRefsXattr, store_refs(key, std::move(refs)));
  submit_write(op.pool, op.oid, std::move(txn), std::move(finish),
               op.foreground);
}

void Osd::chunk_deref_locked(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_osd_chunk_derefs);
  const ObjectKey key{op.pool, op.oid};
  auto finish = [this, key, reply = std::move(reply)](Status s) mutable {
    reply(OsdOpReply{s, {}, 0, {}, nullptr});
    finish_chunk_op(key);
  };

  if (!local_exists(op.pool, op.oid)) {
    finish(Status::ok());  // already reclaimed — deref is idempotent
    return;
  }
  std::vector<ChunkRef> refs;
  if (Status s = load_refs(key, &refs); !s.is_ok()) {
    finish(s);
    return;
  }
  auto it = std::find(refs.begin(), refs.end(), op.ref);
  if (it == refs.end()) {
    finish(Status::ok());  // reference already dropped
    return;
  }
  refs.erase(it);
  if (refs.empty()) {
    perf_->inc(l_osd_chunks_reclaimed);
    refs_cache_.erase(key);  // chunk object is going away
    submit_remove(op.pool, op.oid, std::move(finish), op.foreground);
    return;
  }
  Transaction txn;
  txn.setxattr(key, kRefsXattr, store_refs(key, std::move(refs)));
  submit_write(op.pool, op.oid, std::move(txn), std::move(finish),
               op.foreground);
}

// ----------------------------------------------------- redundancy engines

void Osd::submit_write(PoolId pool, const std::string& oid, Transaction txn,
                       std::function<void(Status)> done, bool foreground) {
  if (!up_ && drop_when_down_) {
    // Crashed process: nothing this OSD coordinates can make progress.
    ctx_->sched().after(0, [done = std::move(done)] {
      done(Status::unavailable("osd crashed"));
    });
    return;
  }
  const PoolConfig& cfg = ctx_->osdmap().pool(pool);
  if (cfg.scheme == RedundancyScheme::kReplicated) {
    replicated_write(pool, oid, std::move(txn), std::move(done), foreground);
  } else {
    ec_write(pool, oid, std::move(txn), std::move(done), foreground);
  }
}

void Osd::submit_read(PoolId pool, const std::string& oid, uint64_t off,
                      uint64_t len, std::function<void(Result<Buffer>)> done,
                      bool foreground) {
  if (!up_ && drop_when_down_) {
    ctx_->sched().after(0, [done = std::move(done)] {
      done(Status::unavailable("osd crashed"));
    });
    return;
  }
  const PoolConfig& cfg = ctx_->osdmap().pool(pool);
  if (cfg.scheme == RedundancyScheme::kReplicated) {
    auto r = store(pool).read({pool, oid}, off, len);
    if (!r.is_ok()) {
      ctx_->sched().after(0, [done = std::move(done), s = r.status()] {
        done(s);
      });
      return;
    }
    Buffer data = std::move(r).value();
    const uint64_t bytes = data.size();
    disk_.read(bytes, [done = std::move(done), data = std::move(data)]() mutable {
      done(std::move(data));
    });
    return;
  }
  ec_read(pool, oid, off, len, std::move(done), foreground);
}

void Osd::submit_remove(PoolId pool, const std::string& oid,
                        std::function<void(Status)> done, bool foreground) {
  Transaction txn;
  txn.remove({pool, oid});
  submit_write(pool, oid, std::move(txn), std::move(done), foreground);
}

void Osd::local_apply(PoolId pool, Transaction txn,
                      std::function<void(Status)> done) {
  const uint64_t bytes = txn.byte_size();
  // Zero-copy accounting: payload Buffers still sharing their source
  // storage (client message, tier cache, peer shard) land in the store as
  // refcount bumps, not byte copies.
  uint64_t shared_bytes = 0;
  for (const auto& op : txn.ops()) {
    if (!op.data.empty() && op.data.storage_shared()) {
      shared_bytes += op.data.size();
    }
  }
  if (shared_bytes > 0) perf_->inc(l_osd_bytes_zero_copied, shared_bytes);
  disk_.write(bytes, [this, pool, txn = std::move(txn),
                      done = std::move(done)]() mutable {
    done(store(pool).apply(txn));
  });
}

void Osd::replicated_write(PoolId pool, const std::string& oid,
                           Transaction txn, std::function<void(Status)> done,
                           bool foreground) {
  if (fail_at(OsdFailurePoint::kBeforeReplicatedFanout, {pool, oid})) {
    return;  // crashed: no replica ever sees this write
  }
  auto acting = ctx_->osdmap().acting(pool, oid);
  if (acting.empty()) {
    ctx_->sched().after(0, [done = std::move(done)] {
      done(Status::unavailable("no acting set"));
    });
    return;
  }

  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = static_cast<int>(acting.size());
  barrier->done = std::move(done);

  auto shared_txn = std::make_shared<Transaction>(std::move(txn));
  for (OsdId target : acting) {
    if (target == id_) {
      local_apply(pool, *shared_txn, [this, pool, oid, barrier](Status s) {
        if (fail_at(OsdFailurePoint::kAfterLocalApply, {pool, oid})) {
          return;  // crashed between the local commit and the peer acks
        }
        barrier->arrive(s);
      });
    } else {
      OsdOp sub;
      sub.type = OsdOpType::kSubWrite;
      sub.pool = pool;
      sub.oid = oid;
      sub.txn = shared_txn;
      sub.foreground = foreground;
      send_osd_op(*ctx_, node_, target, std::move(sub),
                  [barrier](OsdOpReply rep) { barrier->arrive(rep.status); });
    }
  }
}

void Osd::ec_write(PoolId pool, const std::string& oid, Transaction txn,
                   std::function<void(Status)> done, bool foreground) {
  // Serialize per object: a partial EC write reads, re-encodes and
  // rewrites the whole object — concurrent RMWs would lose updates and
  // each holds a full object image while in flight.
  const ObjectKey key{pool, oid};
  enqueue_object_op(
      ec_write_queue_, key,
      [this, pool, oid, key, txn = std::move(txn), done = std::move(done),
       foreground]() mutable {
        ec_write_locked(pool, oid, std::move(txn),
                        [this, key, done = std::move(done)](Status s) {
                          done(s);
                          finish_object_op(ec_write_queue_, key);
                        },
                        foreground);
      });
}

void Osd::ec_write_locked(PoolId pool, const std::string& oid, Transaction txn,
                          std::function<void(Status)> done, bool foreground) {
  const PoolConfig& cfg = ctx_->osdmap().pool(pool);
  auto acting = ctx_->osdmap().acting(pool, oid);
  if (static_cast<int>(acting.size()) < cfg.ec_k + cfg.ec_m) {
    ctx_->sched().after(0, [done = std::move(done)] {
      done(Status::unavailable("not enough shards up"));
    });
    return;
  }
  const ObjectKey key{pool, oid};

  // Classify the transaction.
  bool has_data_op = false;
  bool full_rewrite_only = true;
  bool removes = false;
  for (const auto& op : txn.ops()) {
    switch (op.type) {
      case Transaction::OpType::kWriteFull:
        has_data_op = true;
        break;
      case Transaction::OpType::kWrite:
      case Transaction::OpType::kTruncate:
      case Transaction::OpType::kPunchHole:
        has_data_op = true;
        full_rewrite_only = false;
        break;
      case Transaction::OpType::kRemove:
        removes = true;
        break;
      default:
        break;
    }
  }

  auto broadcast = [this, acting, pool, oid, foreground](
                       std::vector<Transaction> shard_txns,
                       std::function<void(Status)> cb) {
    auto barrier = std::make_shared<Barrier>();
    barrier->remaining = static_cast<int>(acting.size());
    barrier->done = std::move(cb);
    for (size_t i = 0; i < acting.size(); i++) {
      auto st = std::make_shared<Transaction>(std::move(shard_txns[i]));
      if (acting[i] == id_) {
        local_apply(pool, *st, [barrier](Status s) { barrier->arrive(s); });
      } else {
        OsdOp sub;
        sub.type = OsdOpType::kSubWrite;
        sub.pool = pool;
        sub.oid = oid;
        sub.txn = st;
        sub.foreground = foreground;
        send_osd_op(*ctx_, node_, acting[i], std::move(sub),
                    [barrier](OsdOpReply rep) { barrier->arrive(rep.status); });
      }
    }
  };

  if (removes) {
    std::vector<Transaction> shard_txns(acting.size());
    for (auto& st : shard_txns) st.remove(key);
    broadcast(std::move(shard_txns), std::move(done));
    return;
  }

  if (!has_data_op) {
    // Metadata-only update: mirror the ops to every shard, no re-encode.
    std::vector<Transaction> shard_txns(acting.size());
    for (auto& st : shard_txns) st = txn;
    broadcast(std::move(shard_txns), std::move(done));
    return;
  }

  // Data write: produce the new full object image, encode, distribute.
  auto done_sp =
      std::make_shared<std::function<void(Status)>>(std::move(done));
  auto encode_and_send = [this, cfg, key, acting, txn, broadcast,
                          done_sp](ObjectState base, bool existed) mutable {
    auto done = [done_sp](Status s) { (*done_sp)(s); };
    bool exists = existed;
    if (auto s = ObjectStore::apply_to_state(txn, key, &base, &exists);
        !s.is_ok()) {
      done(s);
      return;
    }
    if (!exists) {
      done(Status::invalid("ec txn removed object mid-write"));
      return;
    }
    Buffer full = base.data.read(0, base.logical_size);
    const uint64_t parity_cost_bytes = full.size();
    // Parity math runs on the exec pool while the virtual cost elapses;
    // the shards are joined exactly when the cost model says the encode
    // completes (inline there in serial mode).
    auto shards_fut = kernel_async<std::vector<Buffer>>(
        ctx_->exec_pool(), Kernel::kEcEncode,
        [ec_k = cfg.ec_k, ec_m = cfg.ec_m, full = std::move(full)] {
          ReedSolomon rs(ec_k, ec_m);
          return rs.encode(full);
        });
    cpu().execute(
        cpu().ec_parity_cost(parity_cost_bytes),
        [this, cfg, key, acting, base = std::move(base),
         shards_fut = std::move(shards_fut), broadcast = std::move(broadcast),
         done = std::move(done)]() mutable {
          auto shards = shards_fut.take();
          std::vector<Transaction> shard_txns(acting.size());
          for (size_t i = 0; i < acting.size(); i++) {
            Transaction& st = shard_txns[i];
            st.write_full(key, shards[i]);
            Encoder se;
            se.put_u32(static_cast<uint32_t>(i));
            st.setxattr(key, kEcShardXattr, se.finish());
            st.setxattr(key, kEcOrigLenXattr, encode_u64(base.logical_size));
            for (const auto& [name, value] : base.xattrs) {
              st.setxattr(key, name, value);
            }
            for (const auto& [k2, v2] : base.omap) {
              st.omap_set(key, k2, v2);
            }
          }
          broadcast(std::move(shard_txns), std::move(done));
        });
  };

  const bool exists_locally = local_exists(pool, oid);
  if (full_rewrite_only || !exists_locally) {
    // No read-modify-write needed (fresh object or whole-object rewrite).
    ObjectState base;
    bool existed = false;
    if (exists_locally) {
      // Keep existing xattrs/omap: they are mirrored on our local shard.
      auto snap = store(pool).snapshot(key);
      assert(snap.is_ok());
      base.xattrs = snap.value().xattrs;
      base.omap = snap.value().omap;
      base.xattrs.erase(kEcShardXattr);
      base.xattrs.erase(kEcOrigLenXattr);
      existed = true;
    }
    encode_and_send(std::move(base), existed);
    return;
  }

  // Partial write to an existing EC object: gather, rebuild, re-encode.
  ec_read(pool, oid, 0, 0,
          [this, pool, key, done_sp,
           encode_and_send = std::move(encode_and_send)](
              Result<Buffer> r) mutable {
            if (!r.is_ok()) {
              // Cannot reconstruct the old image; surface the error.
              (*done_sp)(r.status());
              return;
            }
            ObjectState base;
            base.data.write(0, r.value());
            base.logical_size = r.value().size();
            auto snap = store(pool).snapshot(key);
            if (snap.is_ok()) {
              base.xattrs = snap.value().xattrs;
              base.omap = snap.value().omap;
              base.xattrs.erase(kEcShardXattr);
              base.xattrs.erase(kEcOrigLenXattr);
            }
            encode_and_send(std::move(base), true);
          },
          foreground);
}

void Osd::ec_read(PoolId pool, const std::string& oid, uint64_t off,
                  uint64_t len, std::function<void(Result<Buffer>)> done,
                  bool foreground) {
  const PoolConfig& cfg = ctx_->osdmap().pool(pool);
  auto acting = ctx_->osdmap().acting(pool, oid);
  const int k = cfg.ec_k;
  const int m = cfg.ec_m;
  if (acting.empty()) {
    ctx_->sched().after(0, [done = std::move(done)] {
      done(Status::unavailable("no acting set"));
    });
    return;
  }

  struct GatherState {
    std::vector<std::optional<Buffer>> shards;
    uint64_t orig_len = 0;
    bool have_orig_len = false;
    int outstanding = 0;
    int successes = 0;
    bool reconstructed_needed = false;
    std::function<void(Result<Buffer>)> done;
  };
  auto gs = std::make_shared<GatherState>();
  gs->shards.assign(static_cast<size_t>(k + m), std::nullopt);
  gs->outstanding = static_cast<int>(acting.size());
  gs->done = std::move(done);

  auto finish = [this, gs, k, m, off, len]() {
    if (gs->successes < k) {
      gs->done(Status::unavailable("fewer than k shards readable"));
      return;
    }
    // Count available data shards; reconstruction costs decode CPU.
    int data_present = 0;
    for (int i = 0; i < k; i++) {
      if (gs->shards[static_cast<size_t>(i)].has_value()) data_present++;
    }
    ReedSolomon rs(k, m);
    auto deliver = [gs, off, len](Result<Buffer> decoded) {
      if (!decoded.is_ok()) {
        gs->done(decoded.status());
        return;
      }
      Buffer full = std::move(decoded).value();
      if (off >= full.size()) {
        gs->done(Buffer());
        return;
      }
      const uint64_t n =
          len == 0 ? full.size() - off : std::min<uint64_t>(len, full.size() - off);
      gs->done(full.slice(off, n));
    };
    if (data_present < k) {
      uint64_t bytes = 0;
      for (const auto& s : gs->shards) {
        if (s.has_value()) bytes += s->size();
      }
      // Degraded read: reconstruct on the exec pool under the virtual
      // decode cost.  All replies are in (outstanding == 0), so
      // gs->shards is immutable from here on — safe to share with the
      // worker.
      auto fut = kernel_async<Result<Buffer>>(
          ctx_->exec_pool(), Kernel::kEcDecode,
          [gs, rs] { return rs.decode(gs->shards, gs->orig_len); });
      cpu().execute(cpu().ec_parity_cost(bytes),
                    [fut = std::move(fut), deliver]() mutable {
                      deliver(fut.take());
                    });
    } else {
      // All k data shards local-fast-path: no virtual gap to hide the
      // decode in, so it stays synchronous (it is a cheap concatenation).
      deliver(rs.decode(gs->shards, gs->orig_len));
    }
  };

  for (size_t i = 0; i < acting.size(); i++) {
    OsdOp sub;
    sub.type = OsdOpType::kShardRead;
    sub.pool = pool;
    sub.oid = oid;
    sub.foreground = foreground;
    auto on_reply = [gs, finish, k, m](OsdOpReply rep) {
      if (rep.status.is_ok()) {
        int shard_idx = -1;
        auto it = rep.attrs.find(kEcShardXattr);
        if (it != rep.attrs.end()) {
          Decoder d(it->second);
          uint32_t v = 0;
          if (d.get_u32(&v).is_ok() && v < static_cast<uint32_t>(k + m)) {
            shard_idx = static_cast<int>(v);
          }
        }
        auto ol = rep.attrs.find(kEcOrigLenXattr);
        if (ol != rep.attrs.end()) {
          if (auto v = decode_u64(ol->second); v.is_ok()) {
            gs->orig_len = v.value();
            gs->have_orig_len = true;
          }
        }
        if (shard_idx >= 0 && !gs->shards[static_cast<size_t>(shard_idx)]) {
          gs->shards[static_cast<size_t>(shard_idx)] = std::move(rep.data);
          gs->successes++;
        }
      }
      if (--gs->outstanding == 0) finish();
    };
    if (acting[i] == id_) {
      handle_shard_read(sub, on_reply);
    } else {
      send_osd_op(*ctx_, node_, acting[i], std::move(sub), on_reply);
    }
  }
}

// ------------------------------------------------------------- messaging

void send_osd_op(ClusterContext& ctx, NodeId from_node, OsdId target, OsdOp op,
                 ReplyFn cb) {
  Osd* osd = ctx.osd(target);
  if (osd == nullptr) {
    // Client-side state lives on the caller's node; pin the synthetic
    // reply (and the timeout timer below) to that shard so the reply path
    // never crosses shards outside the network.
    ctx.sched().after_node(from_node, usec(1), [cb = std::move(cb)] {
      cb(OsdOpReply{Status::unavailable("unknown osd"), {}, 0, {}, nullptr});
    });
    return;
  }
  const NodeId tnode = ctx.node_of_osd(target);
  const uint64_t req_bytes = op.wire_bytes();
  ClusterContext* pctx = &ctx;
  if (const SimTime timeout = ctx.op_timeout(); timeout > 0) {
    // The reply races a timer; first arrival wins, the loser is dropped.
    // Needed for liveness once OSDs can crash (silently eating requests)
    // or the fabric can lose messages.
    auto fired = std::make_shared<bool>(false);
    ReplyFn inner = std::move(cb);
    cb = [fired, inner](OsdOpReply rep) {
      if (*fired) return;
      *fired = true;
      inner(std::move(rep));
    };
    ctx.sched().after_node(from_node, timeout, [cb] {
      cb(OsdOpReply{Status::unavailable("osd op timed out"), {}, 0, {},
                    nullptr});
    });
  }
  ctx.net().send(
      from_node, tnode, req_bytes,
      [pctx, osd, from_node, tnode, op = std::move(op), cb = std::move(cb)]() mutable {
        osd->handle_op(std::move(op), [pctx, from_node, tnode,
                                       cb = std::move(cb)](OsdOpReply rep) {
          const uint64_t rep_bytes = rep.wire_bytes();
          pctx->net().send(tnode, from_node, rep_bytes,
                           [cb, rep = std::move(rep)]() mutable {
                             cb(std::move(rep));
                           });
        });
      });
}

}  // namespace gdedup
