#include "compress/lz.h"

#include <cstring>
#include <vector>

namespace gdedup {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kTailLiterals = 5;  // end-of-stream must be literals

inline uint32_t read_u32le(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit hash
}

void put_length(std::vector<uint8_t>& out, size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<uint8_t>(len));
}

}  // namespace

Buffer LzCodec::compress(const Buffer& in) {
  const uint8_t* src = in.data();
  const size_t n = in.size();

  std::vector<uint8_t> out;
  out.reserve(n / 2 + 16);
  out.push_back(1);  // flag: compressed (may be rewritten to 0)
  const uint32_t n32 = static_cast<uint32_t>(n);
  out.insert(out.end(), reinterpret_cast<const uint8_t*>(&n32),
             reinterpret_cast<const uint8_t*>(&n32) + 4);

  std::vector<uint32_t> table(1 << 13, 0);  // position + 1; 0 = empty
  size_t i = 0;
  size_t literal_start = 0;

  const size_t match_limit = n > kTailLiterals + kMinMatch
                                 ? n - kTailLiterals - kMinMatch
                                 : 0;
  while (i < match_limit) {
    const uint32_t h = hash4(src + i);
    const uint32_t cand_plus1 = table[h];
    table[h] = static_cast<uint32_t>(i + 1);
    if (cand_plus1 != 0) {
      const size_t cand = cand_plus1 - 1;
      if (i - cand <= kMaxOffset &&
          read_u32le(src + cand) == read_u32le(src + i)) {
        // Extend the match forward.
        size_t len = kMinMatch;
        const size_t max_len = n - kTailLiterals - i;
        while (len < max_len && src[cand + len] == src[i + len]) len++;

        const size_t lit_len = i - literal_start;
        const uint8_t lit_nib =
            lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
        const size_t mlen_code = len - kMinMatch;
        const uint8_t m_nib =
            mlen_code >= 15 ? 15 : static_cast<uint8_t>(mlen_code);
        out.push_back(static_cast<uint8_t>((lit_nib << 4) | m_nib));
        if (lit_nib == 15) put_length(out, lit_len - 15);
        out.insert(out.end(), src + literal_start, src + i);
        const uint16_t off = static_cast<uint16_t>(i - cand);
        out.push_back(static_cast<uint8_t>(off & 0xff));
        out.push_back(static_cast<uint8_t>(off >> 8));
        if (m_nib == 15) put_length(out, mlen_code - 15);

        // Seed the table inside the match so long repeats chain.
        const size_t step = len > 64 ? 8 : 1;
        for (size_t j = i + 1; j + kMinMatch <= i + len; j += step) {
          table[hash4(src + j)] = static_cast<uint32_t>(j + 1);
        }
        i += len;
        literal_start = i;
        continue;
      }
    }
    i++;
  }

  // Trailing literal run (match nibble 0 with no offset follows at end).
  const size_t lit_len = n - literal_start;
  const uint8_t lit_nib = lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
  out.push_back(static_cast<uint8_t>(lit_nib << 4));
  if (lit_nib == 15) put_length(out, lit_len - 15);
  out.insert(out.end(), src + literal_start, src + n);

  if (out.size() >= n + 5) {
    // Expansion: store raw.
    Buffer raw(n + 5);
    uint8_t* p = raw.mutable_data();
    p[0] = 0;
    std::memcpy(p + 1, &n32, 4);
    if (n > 0) std::memcpy(p + 5, src, n);
    return raw;
  }
  return Buffer::copy_of(out.data(), out.size());
}

Result<Buffer> LzCodec::decompress(const Buffer& in) {
  if (in.size() < 5) return Status::corruption("short lz stream");
  const uint8_t* p = in.data();
  const uint8_t* end = p + in.size();
  const uint8_t flag = *p++;
  uint32_t orig_len;
  std::memcpy(&orig_len, p, 4);
  p += 4;

  if (flag == 0) {
    if (static_cast<size_t>(end - p) != orig_len) {
      return Status::corruption("raw length mismatch");
    }
    return Buffer::copy_of(p, orig_len);
  }
  if (flag != 1) return Status::corruption("bad lz flag");

  Buffer out(orig_len);
  uint8_t* dst = out.mutable_data();
  size_t o = 0;

  auto read_ext = [&](size_t base) -> Result<size_t> {
    size_t len = base;
    while (true) {
      if (p >= end) return Status::corruption("truncated length");
      const uint8_t b = *p++;
      len += b;
      if (b != 255) return len;
    }
  };

  while (p < end) {
    const uint8_t token = *p++;
    size_t lit_len = token >> 4;
    if (lit_len == 15) {
      auto r = read_ext(15);
      if (!r.is_ok()) return r.status();
      lit_len = r.value();
    }
    if (static_cast<size_t>(end - p) < lit_len || o + lit_len > orig_len) {
      return Status::corruption("literal overrun");
    }
    std::memcpy(dst + o, p, lit_len);
    p += lit_len;
    o += lit_len;

    if (p >= end) break;  // trailing literals consumed the stream

    if (p + 2 > end) return Status::corruption("truncated offset");
    const size_t off = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    if (off == 0 || off > o) return Status::corruption("bad match offset");

    size_t mlen = (token & 0xf);
    if (mlen == 15) {
      auto r = read_ext(15);
      if (!r.is_ok()) return r.status();
      mlen = r.value();
    }
    mlen += kMinMatch;
    if (o + mlen > orig_len) return Status::corruption("match overrun");
    // Byte-wise copy: matches may overlap their own output.
    for (size_t j = 0; j < mlen; j++, o++) dst[o] = dst[o - off];
  }
  if (o != orig_len) return Status::corruption("decoded length mismatch");
  return out;
}

}  // namespace gdedup
