#pragma once

// LZ77 byte-oriented compressor (LZ4-like token format).
//
// Stands in for the Btrfs transparent compression of the paper's Figure 13
// experiment: the OSD object store applies it at rest when a pool sets
// `compress_at_rest`.  Real algorithm, real round-trip — capacity numbers
// come from actually compressed bytes, not a ratio knob.
//
// Stream layout:
//   u8  flag        0 = stored raw, 1 = LZ-compressed
//   u32 original length (little endian)
//   payload         raw bytes, or LZ4-style token stream:
//     token: high nibble = literal run (15 = extended with 255-chains),
//            low nibble  = match length - 4 (15 = extended)
//     literals, then u16 LE match offset (if a match follows)

#include "common/buffer.h"
#include "common/status.h"

namespace gdedup {

class LzCodec {
 public:
  // Never fails; falls back to stored-raw when compression would expand.
  static Buffer compress(const Buffer& in);

  static Result<Buffer> decompress(const Buffer& in);

  // Compressed size without materializing (convenience for accounting).
  static size_t compressed_size(const Buffer& in) {
    return compress(in).size();
  }
};

}  // namespace gdedup
