#pragma once

// Crash-schedule fault-injection campaign (the paper's Section 4.6 / Figure 9
// consistency argument, tested end to end).
//
// One *schedule* is a full cluster lifetime driven from a single seed:
//
//   preload -> storm -> heal -> verdict
//
// The preload seeds a small object population and lets the dedup engines
// flush it, so the storm's overwrites exercise the deref path from the very
// first fault.  The storm replays a deterministic client workload (writes,
// overwrites, removes of dup-heavy data) while a seeded FaultPlan kills and
// wipes OSDs, crashes them at armed engine/OSD failure points, degrades the
// network and runs GC / deep scrub mid-flight.  Every acked op is recorded
// in an in-memory oracle; failed ops are retried and, as a last resort,
// stashed and replayed after heal so the oracle and cluster agree on the
// final content even when an ack was lost mid-crash.  The heal phase
// revives stragglers, backfills, restarts every engine from its on-disk
// dirty state and drains.  The verdict runs the garbage collector to a
// fixpoint, a deep scrub, and the cluster-wide InvariantChecker (refcount
// conservation, reachability, oracle readback).
//
// Everything — topology, workload, fault placement — derives from the seed,
// so a schedule is reproducible bit for bit: same seed, same report string.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/fault_planner.h"
#include "rados/cluster.h"

namespace gdedup {

struct FaultScheduleConfig {
  uint64_t seed = 1;

  // Topology (small on purpose: more ops land near faults).
  int storage_nodes = 3;
  int osds_per_node = 2;
  bool ec_chunks = false;    // chunk pool: EC(2,1) instead of replicated x2
  bool async_deref = false;  // Section 4.6 "no locking on decrement" variant
  bool rate_control = false; // exercise the throttle alongside the faults

  // Workload.
  int objects = 8;
  int bursts = 4;
  int ops_per_burst = 6;

  // Client ops give up (kUnavailable) after this long without a reply; a
  // crashed OSD must not wedge the storm.  Must exceed the planner's worst
  // injected network delay.
  SimTime op_timeout = msec(250);

  FaultPlannerConfig plan;
};

// The campaign's seed -> variant mapping: alternates replicated / EC chunk
// pools and sweeps the async-deref and rate-control toggles so a seed range
// covers the configuration matrix.
FaultScheduleConfig schedule_config_for_seed(uint64_t seed);

struct ScheduleResult {
  uint64_t seed = 0;
  bool ec_chunks = false;

  // Everything that went wrong; empty means the schedule upheld every
  // invariant.  Sorted, deterministic.
  std::vector<std::string> violations;

  // Byte-stable full report (plan, applied-event log, counters, verdict).
  std::string report;

  // Campaign-level aggregates.
  uint64_t engine_aborts = 0;        // engine flushes abandoned by injection
  uint64_t injected_osd_crashes = 0; // OSD self-crashes at armed points
  uint64_t dropped_messages = 0;
  uint64_t write_retries = 0;
  uint64_t stashed_ops = 0;
  // "engine:<point>" / "osd:<point>" -> times an armed hook fired.
  std::map<std::string, uint64_t> fired_points;

  bool clean() const { return violations.empty(); }
};

ScheduleResult run_fault_schedule(const FaultScheduleConfig& cfg);

struct CampaignConfig {
  uint64_t first_seed = 1;
  int schedules = 200;
};

struct CampaignSummary {
  int schedules = 0;
  int failed = 0;  // schedules with >= 1 violation
  uint64_t engine_aborts = 0;
  uint64_t injected_osd_crashes = 0;
  uint64_t write_retries = 0;
  std::map<std::string, uint64_t> fired_points;
  std::vector<std::string> failures;  // "seed=N: <first violation>"

  bool clean() const { return failed == 0; }
  std::string to_string() const;
};

// Run `schedules` consecutive seeds and aggregate.  Each schedule builds
// and tears down its own cluster.
CampaignSummary run_fault_campaign(const CampaignConfig& cfg);

}  // namespace gdedup
