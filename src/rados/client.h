#pragma once

// librados-style asynchronous client.
//
// Stateless: each op resolves the current primary from the shared OsdMap
// (the decentralized translation of Figure 2(b)) and ships the op over the
// network.  Completion callbacks fire on the client node after the reply
// lands.  Synchronous wrappers (which drive the scheduler) live in
// rados/sync.h for tests and setup code.

#include <functional>
#include <string>

#include "obs/perf_counters.h"
#include "osd/cluster_context.h"
#include "osd/messages.h"
#include "osd/osd.h"

namespace gdedup {

// Perf-counter indices for one client (registry entity
// "client.node<N>[.k]"; the suffix disambiguates multiple clients on one
// node in construction order).
enum {
  l_client_first = 3000,
  l_client_ops,
  l_client_reads,
  l_client_writes,
  l_client_removes,
  l_client_bytes_read,
  l_client_bytes_written,
  l_client_errors,      // replies with a non-OK status
  l_client_read_lat,    // submit -> reply, ns, client side
  l_client_write_lat,
  l_client_last,
};

class RadosClient {
 public:
  RadosClient(ClusterContext* ctx, NodeId node);

  NodeId node() const { return node_; }
  obs::PerfCounters& perf() { return *perf_; }
  const obs::PerfCounters& perf() const { return *perf_; }

  void write(PoolId pool, const std::string& oid, uint64_t off, Buffer data,
             std::function<void(Status)> cb);
  void write_full(PoolId pool, const std::string& oid, Buffer data,
                  std::function<void(Status)> cb);
  void read(PoolId pool, const std::string& oid, uint64_t off, uint64_t len,
            std::function<void(Result<Buffer>)> cb);
  void remove(PoolId pool, const std::string& oid,
              std::function<void(Status)> cb);
  void stat(PoolId pool, const std::string& oid,
            std::function<void(Result<uint64_t>)> cb);
  void getxattr(PoolId pool, const std::string& oid, const std::string& name,
                std::function<void(Result<Buffer>)> cb);
  void setxattr(PoolId pool, const std::string& oid, const std::string& name,
                Buffer value, std::function<void(Status)> cb);

 private:
  void submit(OsdOp op, ReplyFn cb);

  ClusterContext* ctx_;
  NodeId node_;
  obs::PerfCountersRef perf_;
};

// Client-side striping over fixed-size RADOS objects — the role the KRBD
// block device plays in the paper's block-storage experiments.
class BlockDevice {
 public:
  BlockDevice(RadosClient* client, PoolId pool, std::string image_name,
              uint64_t size_bytes, uint32_t object_size = 4 * 1024 * 1024);

  uint64_t size() const { return size_; }
  uint32_t object_size() const { return object_size_; }
  const std::string& name() const { return name_; }

  void write(uint64_t off, Buffer data, std::function<void(Status)> cb);
  void read(uint64_t off, uint64_t len,
            std::function<void(Result<Buffer>)> cb);

  // Object backing a block offset (for tests / placement inspection).
  std::string object_for(uint64_t off) const;

 private:
  RadosClient* client_;
  PoolId pool_;
  std::string name_;
  uint64_t size_;
  uint32_t object_size_;
};

}  // namespace gdedup
