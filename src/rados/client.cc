#include "rados/client.h"

#include <cassert>

#include "obs/op_tracker.h"

namespace gdedup {

RadosClient::RadosClient(ClusterContext* ctx, NodeId node)
    : ctx_(ctx), node_(node) {
  auto* reg = ctx_->perf_registry();
  const std::string base = "client.node" + std::to_string(node);
  obs::PerfCountersBuilder b(reg != nullptr ? reg->unique_name(base) : base,
                             l_client_first, l_client_last);
  b.add_counter(l_client_ops, "ops");
  b.add_counter(l_client_reads, "reads");
  b.add_counter(l_client_writes, "writes");
  b.add_counter(l_client_removes, "removes");
  b.add_counter(l_client_bytes_read, "bytes_read");
  b.add_counter(l_client_bytes_written, "bytes_written");
  b.add_counter(l_client_errors, "errors");
  b.add_histogram(l_client_read_lat, "read_lat");
  b.add_histogram(l_client_write_lat, "write_lat");
  perf_ = b.create();
  if (reg != nullptr) reg->add(perf_);
}

void RadosClient::submit(OsdOp op, ReplyFn cb) {
  Scheduler* sched = &ctx_->sched();
  const SimTime t0 = sched->now();
  perf_->inc(l_client_ops);
  int lat_idx = -1;
  bool count_read_bytes = false;
  switch (op.type) {
    case OsdOpType::kRead:
      perf_->inc(l_client_reads);
      lat_idx = l_client_read_lat;
      count_read_bytes = true;
      break;
    case OsdOpType::kWrite:
    case OsdOpType::kWriteFull:
      perf_->inc(l_client_writes);
      perf_->inc(l_client_bytes_written, op.data.size());
      lat_idx = l_client_write_lat;
      break;
    case OsdOpType::kRemove:
      perf_->inc(l_client_removes);
      break;
    default:
      break;
  }
  obs::OpTracker* trk = ctx_->op_tracker();
  if (trk != nullptr) {
    op.trace = trk->start(std::string(osd_op_type_name(op.type)) + " " +
                              std::to_string(op.pool) + "/" + op.oid,
                          t0);
  }
  // The wrapper captures everything it needs by value / stable pointer
  // (scheduler, tracker and counters all outlive in-flight ops) — never
  // `this`, since clients may be shorter-lived than their last reply.
  cb = [perf = perf_, trk, sched, t0, lat_idx, count_read_bytes,
        trace = op.trace, inner = std::move(cb)](OsdOpReply rep) mutable {
    const SimTime now = sched->now();
    if (lat_idx >= 0) perf->record(lat_idx, static_cast<uint64_t>(now - t0));
    if (!rep.status.is_ok()) {
      perf->inc(l_client_errors);
    } else if (count_read_bytes) {
      perf->inc(l_client_bytes_read, rep.data.size());
    }
    if (trk != nullptr) trk->finish(trace, now);
    inner(std::move(rep));
  };

  const OsdId primary = ctx_->osdmap().primary(op.pool, op.oid);
  if (primary < 0) {
    ctx_->sched().after(usec(1), [cb = std::move(cb)] {
      cb(OsdOpReply{Status::unavailable("no primary"), {}, 0, {}, nullptr});
    });
    return;
  }
  send_osd_op(*ctx_, node_, primary, std::move(op), std::move(cb));
}

void RadosClient::write(PoolId pool, const std::string& oid, uint64_t off,
                        Buffer data, std::function<void(Status)> cb) {
  OsdOp op;
  op.type = OsdOpType::kWrite;
  op.pool = pool;
  op.oid = oid;
  op.off = off;
  op.len = data.size();
  op.data = std::move(data);
  submit(std::move(op),
         [cb = std::move(cb)](OsdOpReply rep) { cb(rep.status); });
}

void RadosClient::write_full(PoolId pool, const std::string& oid, Buffer data,
                             std::function<void(Status)> cb) {
  OsdOp op;
  op.type = OsdOpType::kWriteFull;
  op.pool = pool;
  op.oid = oid;
  op.len = data.size();
  op.data = std::move(data);
  submit(std::move(op),
         [cb = std::move(cb)](OsdOpReply rep) { cb(rep.status); });
}

void RadosClient::read(PoolId pool, const std::string& oid, uint64_t off,
                       uint64_t len, std::function<void(Result<Buffer>)> cb) {
  OsdOp op;
  op.type = OsdOpType::kRead;
  op.pool = pool;
  op.oid = oid;
  op.off = off;
  op.len = len;
  submit(std::move(op), [cb = std::move(cb)](OsdOpReply rep) {
    if (!rep.status.is_ok()) {
      cb(rep.status);
    } else {
      cb(std::move(rep.data));
    }
  });
}

void RadosClient::remove(PoolId pool, const std::string& oid,
                         std::function<void(Status)> cb) {
  OsdOp op;
  op.type = OsdOpType::kRemove;
  op.pool = pool;
  op.oid = oid;
  submit(std::move(op),
         [cb = std::move(cb)](OsdOpReply rep) { cb(rep.status); });
}

void RadosClient::stat(PoolId pool, const std::string& oid,
                       std::function<void(Result<uint64_t>)> cb) {
  OsdOp op;
  op.type = OsdOpType::kStat;
  op.pool = pool;
  op.oid = oid;
  submit(std::move(op), [cb = std::move(cb)](OsdOpReply rep) {
    if (!rep.status.is_ok()) {
      cb(rep.status);
    } else {
      cb(rep.size);
    }
  });
}

void RadosClient::getxattr(PoolId pool, const std::string& oid,
                           const std::string& name,
                           std::function<void(Result<Buffer>)> cb) {
  OsdOp op;
  op.type = OsdOpType::kGetXattr;
  op.pool = pool;
  op.oid = oid;
  op.name = name;
  submit(std::move(op), [cb = std::move(cb)](OsdOpReply rep) {
    if (!rep.status.is_ok()) {
      cb(rep.status);
    } else {
      cb(std::move(rep.data));
    }
  });
}

void RadosClient::setxattr(PoolId pool, const std::string& oid,
                           const std::string& name, Buffer value,
                           std::function<void(Status)> cb) {
  OsdOp op;
  op.type = OsdOpType::kSetXattr;
  op.pool = pool;
  op.oid = oid;
  op.name = name;
  op.data = std::move(value);
  submit(std::move(op),
         [cb = std::move(cb)](OsdOpReply rep) { cb(rep.status); });
}

// ---------------------------------------------------------- BlockDevice

BlockDevice::BlockDevice(RadosClient* client, PoolId pool,
                         std::string image_name, uint64_t size_bytes,
                         uint32_t object_size)
    : client_(client),
      pool_(pool),
      name_(std::move(image_name)),
      size_(size_bytes),
      object_size_(object_size) {
  assert(object_size_ > 0);
}

std::string BlockDevice::object_for(uint64_t off) const {
  return name_ + ".obj." + std::to_string(off / object_size_);
}

void BlockDevice::write(uint64_t off, Buffer data,
                        std::function<void(Status)> cb) {
  assert(off + data.size() <= size_);
  struct State {
    int outstanding = 0;
    Status worst;
    std::function<void(Status)> cb;
  };
  auto st = std::make_shared<State>();
  st->cb = std::move(cb);

  uint64_t pos = 0;
  const uint64_t len = data.size();
  st->outstanding = 1;  // sentinel
  while (pos < len) {
    const uint64_t abs = off + pos;
    const uint64_t obj_off = abs % object_size_;
    const uint64_t n = std::min<uint64_t>(object_size_ - obj_off, len - pos);
    st->outstanding++;
    client_->write(pool_, object_for(abs), obj_off, data.slice(pos, n),
                   [st](Status s) {
                     if (!s.is_ok() && st->worst.is_ok()) st->worst = s;
                     if (--st->outstanding == 0) st->cb(st->worst);
                   });
    pos += n;
  }
  if (--st->outstanding == 0) st->cb(st->worst);
}

void BlockDevice::read(uint64_t off, uint64_t len,
                       std::function<void(Result<Buffer>)> cb) {
  assert(off + len <= size_);
  struct State {
    Buffer out;
    int outstanding = 0;
    Status worst;
    std::function<void(Result<Buffer>)> cb;
  };
  auto st = std::make_shared<State>();
  st->out.resize(len);
  st->cb = std::move(cb);

  uint64_t pos = 0;
  st->outstanding = 1;  // sentinel
  while (pos < len) {
    const uint64_t abs = off + pos;
    const uint64_t obj_off = abs % object_size_;
    const uint64_t n = std::min<uint64_t>(object_size_ - obj_off, len - pos);
    st->outstanding++;
    const uint64_t dst = pos;
    client_->read(pool_, object_for(abs), obj_off, n,
                  [st, dst, n](Result<Buffer> r) {
                    if (r.is_ok()) {
                      Buffer b = std::move(r).value();
                      b.resize(n);  // short reads (holes) zero-fill
                      st->out.write_at(dst, b);
                    } else if (st->worst.is_ok() &&
                               r.status().code() != Code::kNotFound) {
                      st->worst = r.status();
                    }
                    if (--st->outstanding == 0) {
                      if (st->worst.is_ok()) {
                        st->cb(std::move(st->out));
                      } else {
                        st->cb(st->worst);
                      }
                    }
                  });
    pos += n;
  }
  if (--st->outstanding == 0) {
    if (st->worst.is_ok()) {
      st->cb(std::move(st->out));
    } else {
      st->cb(st->worst);
    }
  }
}

}  // namespace gdedup
