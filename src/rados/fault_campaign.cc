#include "rados/fault_campaign.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/random.h"
#include "dedup/invariants.h"
#include "dedup/scrub.h"
#include "dedup/tier.h"
#include "rados/sync.h"

namespace gdedup {

FaultScheduleConfig schedule_config_for_seed(uint64_t seed) {
  FaultScheduleConfig cfg;
  cfg.seed = seed;
  cfg.ec_chunks = (seed % 2) == 1;
  cfg.async_deref = (seed / 2) % 2 == 1;
  cfg.rate_control = (seed / 4) % 2 == 1;
  return cfg;
}

namespace {

constexpr uint32_t kChunk = 8 * 1024;

// One client op of the storm, kept so a failed (possibly half-applied) op
// can be replayed verbatim after heal.
struct Intent {
  std::string oid;
  bool remove_op = false;
  bool full = false;
  uint64_t off = 0;
  Buffer data;
};

// Acked-state oracle: what the cluster must read back at the end.
struct Oracle {
  std::map<std::string, Buffer> data;
  std::set<std::string> removed;

  void apply(const Intent& in) {
    if (in.remove_op) {
      data.erase(in.oid);
      removed.insert(in.oid);
      return;
    }
    removed.erase(in.oid);
    if (in.full) {
      data[in.oid] = Buffer::copy_of(in.data.span());
    } else {
      data[in.oid].write_at(in.off, in.data);
    }
  }
};

class ScheduleRunner {
 public:
  explicit ScheduleRunner(const FaultScheduleConfig& cfg)
      : cfg_(cfg), rng_(mix64(cfg.seed ^ 0x5eedface5eedfaceULL)) {
    ClusterConfig ccfg;
    ccfg.storage_nodes = cfg.storage_nodes;
    ccfg.osds_per_node = cfg.osds_per_node;
    ccfg.client_nodes = 1;
    ccfg.op_timeout = cfg.op_timeout;
    cluster_ = std::make_unique<Cluster>(ccfg);
    // Fault events mutate state that other nodes' events peek at event
    // granularity (crash hooks flip OSDMap entries mid-window, dropped
    // messages change rx queueing), so the windowed-lookahead execution
    // is not safe here: run the whole schedule in lockstep windows.
    cluster_->sched().set_lockstep(true);
    cluster_->sched().set_parallel(false);

    meta_ = cluster_->create_replicated_pool("meta", 2, 64);
    chunks_ = cfg.ec_chunks ? cluster_->create_ec_pool("chunks", 2, 1, 64)
                            : cluster_->create_replicated_pool("chunks", 2, 64);

    DedupTierConfig d;
    d.mode = DedupMode::kPostProcess;
    d.chunk_size = kChunk;
    d.engine_tick = msec(10);
    d.max_dedup_per_tick = 128;
    d.async_deref = cfg.async_deref;
    d.rate_control = cfg.rate_control;
    if (cfg.rate_control) {
      // Keep the throttle in the game without starving the heal drain.
      d.low_watermark_iops = 5;
      d.high_watermark_iops = 100000;
    }
    cluster_->enable_dedup(meta_, chunks_, d);

    client_ = std::make_unique<RadosClient>(cluster_.get(),
                                            cluster_->client_node());
  }

  ScheduleResult run() {
    res_.seed = cfg_.seed;
    res_.ec_chunks = cfg_.ec_chunks;
    line("schedule seed=" + std::to_string(cfg_.seed) +
         " chunks=" + std::string(cfg_.ec_chunks ? "ec21" : "rep2") +
         " async_deref=" + std::to_string(cfg_.async_deref ? 1 : 0) +
         " rate_control=" + std::to_string(cfg_.rate_control ? 1 : 0));

    preload();
    const FaultPlan plan =
        plan_faults(cluster_->osdmap(), cfg_.seed, cfg_.plan);
    report_ += plan.describe();
    storm(plan);
    heal();
    verdict();
    finish();
    return res_;
  }

 private:
  Scheduler& sched() { return cluster_->sched(); }

  void line(const std::string& s) { report_ += s + "\n"; }

  void violation(const std::string& v) { res_.violations.push_back(v); }

  std::string oid_of(int i) { return "obj-" + std::to_string(i); }

  // Dup-heavy deterministic content: bodies assembled from a small palette
  // of 4 KB blocks, so overwrites constantly re-reference existing chunks
  // and the deref / refcount machinery stays hot.
  Buffer gen_content(size_t len) {
    Buffer out(len);
    uint8_t* p = out.mutable_data();
    size_t off = 0;
    while (off < len) {
      const size_t n = std::min<size_t>(4096, len - off);
      Rng block(mix64(0xC0FFEEULL * 31 + rng_.below(12)));
      block.fill(p + off, n);
      off += n;
    }
    return out;
  }

  Intent random_intent() {
    Intent in;
    in.oid = oid_of(static_cast<int>(rng_.below(cfg_.objects)));
    const uint64_t roll = rng_.below(100);
    if (roll < 6) {
      in.remove_op = true;
      return in;
    }
    // A partial write to a removed / never-written object would depend on
    // hole semantics; recreate it whole instead.
    const bool must_full = oracle_.data.count(in.oid) == 0;
    if (must_full || roll < 31) {
      in.full = true;
      in.data = gen_content(kChunk + rng_.below(2 * kChunk));
      return in;
    }
    in.off = rng_.below(3) * kChunk;
    if (rng_.chance(0.4)) {
      // Sub-chunk write: exercises the flush-merge (RMW) path.
      in.off += rng_.below(kChunk / 2);
      in.data = gen_content(512 + rng_.below(kChunk / 2));
    } else {
      in.data = gen_content(kChunk * (1 + rng_.below(2)));
    }
    return in;
  }

  bool try_once(const Intent& in) {
    Status s;
    if (in.remove_op) {
      s = sync_remove(*cluster_, *client_, meta_, in.oid);
      if (s.code() == Code::kNotFound) s = Status::ok();
    } else if (in.full) {
      s = sync_write_full(*cluster_, *client_, meta_, in.oid, in.data);
    } else {
      s = sync_write(*cluster_, *client_, meta_, in.oid, in.off, in.data);
    }
    if (s.is_ok()) {
      oracle_.apply(in);
      return true;
    }
    return false;
  }

  void issue(const Intent& in, int attempts) {
    for (int a = 0; a < attempts; a++) {
      if (try_once(in)) return;
      res_.write_retries++;
      sched().run_for(msec(20));
    }
    // Could not get an ack; the op may or may not have partially applied.
    // Replaying it verbatim after heal makes oracle and cluster agree
    // either way (rewriting identical bytes is idempotent).
    stash_.push_back(in);
    res_.stashed_ops++;
  }

  void preload() {
    for (int i = 0; i < cfg_.objects; i++) {
      Intent in;
      in.oid = oid_of(i);
      in.full = true;
      in.data = gen_content(2 * kChunk + kChunk / 2);
      issue(in, 5);
    }
    const bool drained = cluster_->drain_dedup(sec(60));
    line("preload objects=" + std::to_string(cfg_.objects) +
         " drained=" + std::to_string(drained ? 1 : 0));
  }

  void storm(const FaultPlan& plan) {
    const SimTime start = sched().now();
    for (const FaultEvent& ev : plan.events) {
      sched().at(start + ev.at, [this, ev] { apply_event(ev); });
    }
    const SimTime horizon = cfg_.plan.horizon;
    for (int b = 0; b < cfg_.bursts; b++) {
      const SimTime t_b = start + horizon * b / cfg_.bursts;
      if (sched().now() < t_b) sched().run_until(t_b);
      for (int i = 0; i < cfg_.ops_per_burst; i++) {
        issue(random_intent(), 5);
      }
    }
    if (sched().now() < start + horizon) sched().run_until(start + horizon);
  }

  void apply_event(const FaultEvent& ev) {
    line("  apply at=" + std::to_string(sched().now() / kMicrosecond) + "us " +
         ev.describe());
    switch (ev.action) {
      case FaultAction::kCrashOsd: {
        Osd* o = cluster_->osd(ev.osd);
        if (o != nullptr && o->is_up()) cluster_->crash_osd(ev.osd);
        break;
      }
      case FaultAction::kReviveOsd: {
        disarm_all();
        const OsdId v = ev.osd >= 0 ? ev.osd : armed_victim_;
        armed_victim_ = -1;
        Osd* o = v >= 0 ? cluster_->osd(v) : nullptr;
        if (o == nullptr || o->is_up()) break;
        const bool wipe = (ev.arg & 1) != 0;
        cluster_->revive_osd(v, wipe);
        if (wipe) {
          // Backfill *inside* this event: between an empty revived store
          // and its recovery, a read through the revived primary would
          // cache an empty chunk map and poison later writes.
          cluster_->recover();
          for (PoolId p : cluster_->osdmap().pool_ids()) {
            if (auto* t = cluster_->tier_of(v, p)) t->rebuild_dirty_list();
          }
        }
        break;
      }
      case FaultAction::kRecover:
        cluster_->recover();
        break;
      case FaultAction::kGc: {
        Scrubber s(cluster_.get(), meta_, chunks_);
        (void)s.collect_garbage();  // mid-storm pass: adversarial, unchecked
        break;
      }
      case FaultAction::kDeepScrub: {
        Scrubber s(cluster_.get(), meta_, chunks_);
        (void)s.deep_scrub(/*repair=*/!cfg_.ec_chunks);
        break;
      }
      case FaultAction::kArmEnginePoint:
        arm_engine(ev.arg, ev.mode);
        break;
      case FaultAction::kArmOsdPoint:
        arm_osd(ev.arg);
        break;
      case FaultAction::kNetDelay:
        cluster_->net().set_extra_latency(ev.dur);
        break;
      case FaultAction::kNetDrop:
        cluster_->net().set_drop_every(static_cast<uint32_t>(ev.arg));
        break;
      case FaultAction::kNetHeal:
        cluster_->net().set_extra_latency(0);
        cluster_->net().set_drop_every(0);
        break;
    }
  }

  void arm_engine(int point, int mode) {
    disarm_all();
    auto armed = std::make_shared<bool>(false);
    for (Osd* o : cluster_->osds()) {
      auto* t = cluster_->tier_of(o->id(), meta_);
      if (t == nullptr) continue;
      const OsdId vid = o->id();
      t->set_failure_hook(
          [this, armed, point, mode, vid](FailurePoint p, const std::string&) {
            if (*armed || static_cast<int>(p) != point) return false;
            *armed = true;
            res_.fired_points["engine:" +
                              std::string(failure_point_name(p))]++;
            if (mode == 1) {
              // Crash the whole OSD at the engine point (not just the
              // flush): the strongest Figure 9 interpretation.
              armed_victim_ = vid;
              cluster_->crash_osd(vid);
            }
            return true;
          });
    }
  }

  void arm_osd(int point) {
    disarm_all();
    auto armed = std::make_shared<bool>(false);
    for (Osd* o : cluster_->osds()) {
      const OsdId vid = o->id();
      o->set_failure_hook(
          [this, armed, point, vid](OsdFailurePoint p, const ObjectKey&) {
            if (*armed || static_cast<int>(p) != point) return false;
            *armed = true;
            res_.fired_points["osd:" +
                              std::string(osd_failure_point_name(p))]++;
            armed_victim_ = vid;
            // fail_at already marked the OSD down; the cluster-level
            // cleanup (stopping its engines) must wait until the crashing
            // op's stack unwinds.
            sched().after(0, [this, vid] { cluster_->crash_osd(vid); });
            return true;
          });
    }
  }

  void disarm_all() {
    for (Osd* o : cluster_->osds()) {
      o->set_failure_hook(nullptr);
      if (auto* t = cluster_->tier_of(o->id(), meta_)) {
        t->set_failure_hook(nullptr);
      }
    }
  }

  void heal() {
    cluster_->net().set_extra_latency(0);
    cluster_->net().set_drop_every(0);
    disarm_all();

    // Revive stragglers (an armed point can fire after its episode's revive
    // event has already passed).  Wiped: see fault_planner.cc.
    for (Osd* o : cluster_->osds()) {
      if (!o->is_up()) {
        line("  heal revive osd=" + std::to_string(o->id()));
        cluster_->revive_osd(o->id(), /*wipe_store=*/true);
      }
    }
    uint64_t objs = 0;
    for (int pass = 0; pass < 4; pass++) {
      cluster_->recover(&objs);
      if (objs == 0) break;
    }

    // Quiesce and restart every engine from its on-disk state: the storm
    // can leave volatile tier state on ex-temporary primaries that no
    // longer own the objects it describes.
    for (Osd* o : cluster_->osds()) {
      for (PoolId p : cluster_->osdmap().pool_ids()) {
        if (TierService* t = o->tier(p)) t->stop();
      }
    }
    sched().run_for(sec(1));
    for (Osd* o : cluster_->osds()) {
      for (PoolId p : cluster_->osdmap().pool_ids()) {
        if (auto* t = cluster_->tier_of(o->id(), p)) {
          t->rebuild_dirty_list();
          t->start();
        }
      }
    }

    for (const Intent& in : stash_) {
      bool ok = false;
      for (int a = 0; a < 10 && !ok; a++) {
        ok = try_once(in);
        if (!ok) sched().run_for(msec(50));
      }
      if (!ok) {
        violation("stash replay failed: " + in.oid);
      }
    }
    stash_.clear();

    if (!cluster_->drain_dedup(sec(120))) {
      violation("engines failed to drain after heal");
      for (Osd* o : cluster_->osds()) {
        for (PoolId p : cluster_->osdmap().pool_ids()) {
          auto* t = cluster_->tier_of(o->id(), p);
          if (t == nullptr || t->dirty_backlog() == 0) continue;
          line("  WEDGE osd=" + std::to_string(o->id()) + " pool=" +
               std::to_string(p) + " backlog=" +
               std::to_string(t->dirty_backlog()));
          const ObjectStore* st = o->store_if_exists(p);
          if (st == nullptr) continue;
          for (const auto& key : st->list(p)) {
            if (!t->is_dirty(key.oid)) continue;
            line("    dirty oid=" + key.oid + " primary=" +
                 std::to_string(cluster_->osdmap().primary(p, key.oid)));
          }
        }
      }
    }
  }

  void verdict() {
    Scrubber scrub(cluster_.get(), meta_, chunks_);
    const ScrubReport gc1 = scrub.collect_garbage();
    line("gc1 refs=" + std::to_string(gc1.refs_checked) +
         " dangling=" + std::to_string(gc1.dangling_refs_dropped) +
         " leaked=" + std::to_string(gc1.leaked_chunks_reclaimed) +
         " repaired=" + std::to_string(gc1.refs_repaired) +
         " busy_skips=" + std::to_string(gc1.busy_ref_skips));
    const ScrubReport gc2 = scrub.collect_garbage();
    line("gc2 refs=" + std::to_string(gc2.refs_checked) +
         " dangling=" + std::to_string(gc2.dangling_refs_dropped) +
         " leaked=" + std::to_string(gc2.leaked_chunks_reclaimed) +
         " repaired=" + std::to_string(gc2.refs_repaired));
    if (!gc2.clean()) {
      violation("gc did not converge in one pass");
    }

    const ScrubReport ds = scrub.deep_scrub(/*repair=*/!cfg_.ec_chunks);
    line("scrub chunks=" + std::to_string(ds.chunks_checked) +
         " fp_mismatch=" + std::to_string(ds.fingerprint_mismatches) +
         " replica_mismatch=" + std::to_string(ds.replica_mismatches));
    if (ds.fingerprint_mismatches != 0 || ds.replica_mismatches != 0) {
      violation("deep scrub found corrupt chunks");
    }

    InvariantChecker checker(cluster_.get(), meta_, chunks_);
    const InvariantReport inv = checker.check(
        oracle_.data, oracle_.removed, [this](const std::string& oid) {
          return sync_read(*cluster_, *client_, meta_, oid, 0, 0);
        });
    report_ += inv.to_string();
    for (const std::string& v : inv.violations) violation(v);
  }

  void finish() {
    const DedupTierStats ts = cluster_->tier_stats(meta_);
    res_.engine_aborts = ts.engine_aborts;
    for (Osd* o : cluster_->osds()) {
      res_.injected_osd_crashes += o->injected_crashes();
    }
    res_.dropped_messages = cluster_->net().dropped_messages();

    std::sort(res_.violations.begin(), res_.violations.end());
    line("counters aborts=" + std::to_string(res_.engine_aborts) +
         " osd_crashes=" + std::to_string(res_.injected_osd_crashes) +
         " dropped=" + std::to_string(res_.dropped_messages) +
         " retries=" + std::to_string(res_.write_retries) +
         " stashed=" + std::to_string(res_.stashed_ops));
    for (const auto& [k, n] : res_.fired_points) {
      line("fired " + k + "=" + std::to_string(n));
    }
    for (const std::string& v : res_.violations) {
      line("VIOLATION " + v);
    }
    if (!res_.violations.empty()) {
      // Flight recorder: attach the slowest completed ops of the schedule
      // so a failure report carries latency context without a rerun.
      report_ += cluster_->op_tracker()->slow_ops_text(8);
    }
    line(res_.violations.empty() ? "verdict CLEAN" : "verdict FAILED");
    res_.report = report_;
  }

  FaultScheduleConfig cfg_;
  Rng rng_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RadosClient> client_;
  PoolId meta_ = -1;
  PoolId chunks_ = -1;
  Oracle oracle_;
  std::vector<Intent> stash_;
  OsdId armed_victim_ = -1;
  std::string report_;
  ScheduleResult res_;
};

}  // namespace

ScheduleResult run_fault_schedule(const FaultScheduleConfig& cfg) {
  ScheduleRunner runner(cfg);
  return runner.run();
}

CampaignSummary run_fault_campaign(const CampaignConfig& cfg) {
  CampaignSummary sum;
  for (int i = 0; i < cfg.schedules; i++) {
    const uint64_t seed = cfg.first_seed + static_cast<uint64_t>(i);
    ScheduleResult r = run_fault_schedule(schedule_config_for_seed(seed));
    sum.schedules++;
    if (!r.clean()) {
      sum.failed++;
      sum.failures.push_back("seed=" + std::to_string(seed) + ": " +
                             r.violations.front());
    }
    sum.engine_aborts += r.engine_aborts;
    sum.injected_osd_crashes += r.injected_osd_crashes;
    sum.write_retries += r.write_retries;
    for (const auto& [k, n] : r.fired_points) sum.fired_points[k] += n;
  }
  return sum;
}

std::string CampaignSummary::to_string() const {
  std::string out = "campaign schedules=" + std::to_string(schedules) +
                    " failed=" + std::to_string(failed) +
                    " engine_aborts=" + std::to_string(engine_aborts) +
                    " osd_crashes=" + std::to_string(injected_osd_crashes) +
                    " retries=" + std::to_string(write_retries) + "\n";
  for (const auto& [k, n] : fired_points) {
    out += "  fired " + k + "=" + std::to_string(n) + "\n";
  }
  for (const auto& f : failures) out += "  FAILED " + f + "\n";
  return out;
}

}  // namespace gdedup
