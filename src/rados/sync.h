#pragma once

// Synchronous wrappers for setup code and tests.
//
// Each wrapper issues the async op and steps the scheduler until the
// completion fires.  Background activity (dedup engine ticks, replication)
// naturally progresses while waiting — virtual time advances exactly as it
// would under a blocking client.

#include "common/logging.h"
#include "rados/client.h"
#include "rados/cluster.h"

namespace gdedup {

template <typename Fire>
void run_until_done(Scheduler& sched, bool* done, Fire fire) {
  fire();
  while (!*done) {
    const bool progressed = sched.step();
    if (!progressed && !*done) {
      // Queue drained without completion — deadlock in the op graph.
      LOG_ERROR("scheduler drained before op completion");
      break;
    }
  }
}

inline Status sync_write(Cluster& c, RadosClient& cl, PoolId pool,
                         const std::string& oid, uint64_t off, Buffer data) {
  bool done = false;
  Status out;
  run_until_done(c.sched(), &done, [&] {
    cl.write(pool, oid, off, std::move(data), [&](Status s) {
      out = s;
      done = true;
    });
  });
  return out;
}

inline Status sync_write_full(Cluster& c, RadosClient& cl, PoolId pool,
                              const std::string& oid, Buffer data) {
  bool done = false;
  Status out;
  run_until_done(c.sched(), &done, [&] {
    cl.write_full(pool, oid, std::move(data), [&](Status s) {
      out = s;
      done = true;
    });
  });
  return out;
}

inline Result<Buffer> sync_read(Cluster& c, RadosClient& cl, PoolId pool,
                                const std::string& oid, uint64_t off,
                                uint64_t len) {
  bool done = false;
  Result<Buffer> out = Status::timed_out("never completed");
  run_until_done(c.sched(), &done, [&] {
    cl.read(pool, oid, off, len, [&](Result<Buffer> r) {
      out = std::move(r);
      done = true;
    });
  });
  return out;
}

inline Status sync_remove(Cluster& c, RadosClient& cl, PoolId pool,
                          const std::string& oid) {
  bool done = false;
  Status out;
  run_until_done(c.sched(), &done, [&] {
    cl.remove(pool, oid, [&](Status s) {
      out = s;
      done = true;
    });
  });
  return out;
}

inline Result<uint64_t> sync_stat(Cluster& c, RadosClient& cl, PoolId pool,
                                  const std::string& oid) {
  bool done = false;
  Result<uint64_t> out = Status::timed_out("never completed");
  run_until_done(c.sched(), &done, [&] {
    cl.stat(pool, oid, [&](Result<uint64_t> r) {
      out = std::move(r);
      done = true;
    });
  });
  return out;
}

inline Status sync_bdev_write(Cluster& c, BlockDevice& bd, uint64_t off,
                              Buffer data) {
  bool done = false;
  Status out;
  run_until_done(c.sched(), &done, [&] {
    bd.write(off, std::move(data), [&](Status s) {
      out = s;
      done = true;
    });
  });
  return out;
}

inline Result<Buffer> sync_bdev_read(Cluster& c, BlockDevice& bd, uint64_t off,
                                     uint64_t len) {
  bool done = false;
  Result<Buffer> out = Status::timed_out("never completed");
  run_until_done(c.sched(), &done, [&] {
    bd.read(off, len, [&](Result<Buffer> r) {
      out = std::move(r);
      done = true;
    });
  });
  return out;
}

}  // namespace gdedup
