#include "rados/cluster.h"

#include <atomic>
#include <cassert>

#include "common/encoding.h"
#include "common/logging.h"
#include "dedup/fingerprint_index.h"
#include "ec/reed_solomon.h"

namespace gdedup {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      sched_(cfg.sim_shards > 0 ? cfg.sim_shards : Scheduler::env_shards()),
      exec_pool_(cfg.exec_threads > 0 ? cfg.exec_threads
                                      : ExecPool::env_threads()),
      op_tracker_(obs::OpTracker::resolve_historic_cap(cfg.ops_history),
                  obs::OpTracker::resolve_slow_cap(cfg.ops_slow_board)),
      net_(&sched_, cfg.storage_nodes + cfg.client_nodes, cfg.net),
      fp_fastpath_(cfg.fp_fastpath < 0 ? ClusterContext::env_fp_fastpath()
                                       : cfg.fp_fastpath != 0),
      restore_assembly_(cfg.restore_assembly < 0
                            ? ClusterContext::env_restore_assembly()
                            : cfg.restore_assembly != 0),
      recipe_dedup_(cfg.recipe_dedup < 0 ? ClusterContext::env_recipe_dedup()
                                         : cfg.recipe_dedup != 0) {
  // Storage nodes spread round-robin over shards; client nodes pin to
  // shard 0 so the bench harnesses' shared completion counters stay
  // single-shard.  The map is part of the determinism contract only in
  // that it is a pure function of the topology, never of timing.
  {
    std::vector<int> node_shard(static_cast<size_t>(num_nodes()), 0);
    for (int n = 0; n < cfg_.storage_nodes; n++) {
      node_shard[static_cast<size_t>(n)] = n % sched_.shards();
    }
    sched_.set_node_shard_map(std::move(node_shard));
  }
  {
    obs::PerfCountersBuilder b("sim", l_sim_first, l_sim_last);
    b.add_gauge(l_sim_shards, "shards");
    b.add_gauge(l_sim_events_dispatched, "events_dispatched");
    b.add_gauge(l_sim_events_batched, "events_batched");
    b.add_gauge(l_sim_ingress_messages, "ingress_messages");
    b.add_gauge(l_sim_shard_sync_barriers, "shard_sync_barriers");
    b.add_gauge(l_sim_windows, "windows");
    b.add_gauge(l_sim_arena_bytes, "arena_bytes");
    sim_pc_ = b.create();
    perf_registry_.add(sim_pc_);
    sync_sim_counters();
  }
  {
    obs::PerfCountersBuilder b("derived", l_derived_first, l_derived_last);
    b.add_gauge(l_derived_dedup_ratio_ppm, "dedup_ratio_ppm");
    b.add_gauge(l_derived_read_amp_objs_per_gb, "read_amp_objs_per_gb");
    b.add_gauge(l_derived_read_rpcs, "read_rpcs");
    b.add_gauge(l_derived_asm_hit_ppm, "asm_hit_ppm");
    b.add_gauge(l_derived_sha_avoided_ppm, "sha_avoided_ppm");
    b.add_gauge(l_derived_meta_read_amp_ppm, "meta_read_amp_ppm");
    b.add_gauge(l_derived_meta_dedup_ratio_ppm, "meta_dedup_ratio_ppm");
    derived_pc_ = b.create();
    perf_registry_.add(derived_pc_);
  }
  for (int n = 0; n < num_nodes(); n++) {
    node_cpus_.push_back(std::make_unique<CpuModel>(&sched_, cfg_.cpu));
  }
  for (int n = 0; n < cfg_.storage_nodes; n++) {
    node_fp_indexes_.push_back(std::make_unique<FingerprintIndex>());
  }
  int osd_id = 0;
  for (int n = 0; n < cfg_.storage_nodes; n++) {
    for (int d = 0; d < cfg_.osds_per_node; d++) {
      osdmap_.add_osd(osd_id, /*host=*/n);
      osds_.push_back(std::make_unique<Osd>(this, osd_id, n, cfg_.ssd));
      osd_node_[osd_id] = n;
      osd_id++;
    }
  }
}

Cluster::~Cluster() {
  // Stop engines before members tear down.
  for (auto& o : osds_) {
    for (PoolId p : osdmap_.pool_ids()) {
      if (TierService* t = o->tier(p)) t->stop();
    }
  }
}

Osd* Cluster::osd(OsdId id) {
  if (id < 0 || id >= static_cast<OsdId>(osds_.size())) return nullptr;
  return osds_[static_cast<size_t>(id)].get();
}

FingerprintIndex* Cluster::fp_index(NodeId node) {
  if (node < 0 || node >= static_cast<NodeId>(node_fp_indexes_.size())) {
    return nullptr;  // client nodes run no tiers
  }
  return node_fp_indexes_[static_cast<size_t>(node)].get();
}

NodeId Cluster::node_of_osd(OsdId id) const {
  auto it = osd_node_.find(id);
  assert(it != osd_node_.end());
  return it->second;
}

std::vector<Osd*> Cluster::osds() {
  std::vector<Osd*> out;
  out.reserve(osds_.size());
  for (auto& o : osds_) out.push_back(o.get());
  return out;
}

PoolId Cluster::create_pool(PoolConfig cfg) {
  return osdmap_.create_pool(std::move(cfg));
}

PoolId Cluster::create_replicated_pool(const std::string& name, int replicas,
                                       uint32_t pg_num, bool compress) {
  PoolConfig cfg;
  cfg.name = name;
  cfg.scheme = RedundancyScheme::kReplicated;
  cfg.replicas = replicas;
  cfg.pg_num = pg_num;
  cfg.compress_at_rest = compress;
  return create_pool(std::move(cfg));
}

PoolId Cluster::create_ec_pool(const std::string& name, int k, int m,
                               uint32_t pg_num, bool compress) {
  PoolConfig cfg;
  cfg.name = name;
  cfg.scheme = RedundancyScheme::kErasure;
  cfg.ec_k = k;
  cfg.ec_m = m;
  cfg.pg_num = pg_num;
  cfg.compress_at_rest = compress;
  return create_pool(std::move(cfg));
}

void Cluster::enable_dedup(PoolId metadata_pool, PoolId chunk_pool,
                           DedupTierConfig params) {
  assert(params.mode != DedupMode::kOff);
  params.chunk_pool = chunk_pool;
  osdmap_.mutable_pool(metadata_pool).dedup = params;
  for (auto& o : osds_) {
    auto tier = std::make_unique<DedupTier>(o.get(), metadata_pool);
    tier->start();
    o->set_tier(metadata_pool, std::move(tier));
  }
}

DedupTier* Cluster::tier_of(OsdId osd_id, PoolId metadata_pool) {
  Osd* o = osd(osd_id);
  if (o == nullptr) return nullptr;
  return static_cast<DedupTier*>(o->tier(metadata_pool));
}

DedupTierStats Cluster::tier_stats(PoolId metadata_pool) {
  DedupTierStats agg;
  for (auto& o : osds_) {
    auto* t = static_cast<DedupTier*>(o->tier(metadata_pool));
    if (t == nullptr) continue;
    const DedupTierStats& s = t->stats();
    agg.writes += s.writes;
    agg.reads += s.reads;
    agg.removes += s.removes;
    agg.prereads += s.prereads;
    agg.flush_merges += s.flush_merges;
    agg.cached_read_chunks += s.cached_read_chunks;
    agg.redirected_read_chunks += s.redirected_read_chunks;
    agg.chunks_flushed += s.chunks_flushed;
    agg.flush_bytes += s.flush_bytes;
    agg.noop_flushes += s.noop_flushes;
    agg.derefs += s.derefs;
    agg.evictions += s.evictions;
    agg.capacity_evictions += s.capacity_evictions;
    agg.promotions += s.promotions;
    agg.hot_skips += s.hot_skips;
    agg.racy_flushes += s.racy_flushes;
    agg.engine_ticks += s.engine_ticks;
    agg.engine_aborts += s.engine_aborts;
    agg.fingerprint_cache_hits += s.fingerprint_cache_hits;
    agg.weak_hash_hits += s.weak_hash_hits;
    agg.weak_hash_misses += s.weak_hash_misses;
    agg.weak_collisions += s.weak_collisions;
    agg.bloom_negative_hits += s.bloom_negative_hits;
    agg.sha_computed += s.sha_computed;
    agg.sha_avoided += s.sha_avoided;
    agg.read_logical_bytes += s.read_logical_bytes;
    agg.read_chunk_objects += s.read_chunk_objects;
    agg.read_chunk_rpcs += s.read_chunk_rpcs;
    agg.asm_window_opens += s.asm_window_opens;
    agg.asm_hits += s.asm_hits;
    agg.asm_prefetched_refs += s.asm_prefetched_refs;
    agg.asm_wasted_refs += s.asm_wasted_refs;
    agg.rewrite_runs += s.rewrite_runs;
    agg.rewrite_chunks += s.rewrite_chunks;
    agg.rewrite_bytes += s.rewrite_bytes;
    agg.recipe_chunks += s.recipe_chunks;
    agg.recipe_hits += s.recipe_hits;
    agg.meta_txns += s.meta_txns;
    agg.meta_bytes_baseline += s.meta_bytes_baseline;
    agg.meta_bytes_actual += s.meta_bytes_actual;
  }
  return agg;
}

OsdId Cluster::add_osd(NodeId host, double weight) {
  assert(host >= 0 && host < cfg_.storage_nodes);
  const OsdId id = static_cast<OsdId>(osds_.size());
  osdmap_.add_osd(id, host, weight);
  osds_.push_back(std::make_unique<Osd>(this, id, host, cfg_.ssd));
  osd_node_[id] = host;
  // Dedup tiers are per-OSD services: give the newcomer its own.
  for (PoolId p : osdmap_.pool_ids()) {
    if (osdmap_.pool(p).dedup.enabled()) {
      auto tier = std::make_unique<DedupTier>(osds_.back().get(), p);
      tier->start();
      osds_.back()->set_tier(p, std::move(tier));
    }
  }
  return id;
}

void Cluster::fail_osd(OsdId id) {
  Osd* o = osd(id);
  assert(o != nullptr);
  o->set_drop_when_down(false);
  o->set_up(false);
  osdmap_.mark_down(id);
}

void Cluster::crash_osd(OsdId id) {
  Osd* o = osd(id);
  assert(o != nullptr);
  o->set_drop_when_down(true);
  o->set_up(false);
  osdmap_.mark_down(id);
  // A crash takes the process with it: engines stop and every queue the
  // daemon held in memory is gone.  (Idempotent when the OSD already
  // crashed itself via an injected failure point.)
  for (PoolId p : osdmap_.pool_ids()) {
    if (TierService* t = o->tier(p)) t->stop();
  }
  o->reset_volatile();
}

void Cluster::revive_osd(OsdId id, bool wipe_store) {
  Osd* o = osd(id);
  assert(o != nullptr);
  // drop_when_down distinguishes a crash (volatile state lost) from an
  // administrative fail_osd; compute before flipping up_.
  const bool crashed = !o->is_up() && o->drop_when_down();
  if (wipe_store) {
    for (PoolId p : osdmap_.pool_ids()) {
      ObjectStore& st = o->store(p);
      for (const auto& key : st.list(p)) {
        (void)st.remove_object(key);
      }
    }
    // Every object this OSD held is gone; decoded-refs entries bound to
    // the wiped xattr buffers must not survive into the recreated world.
    o->drop_refs_cache();
  }
  o->set_up(true);
  osdmap_.mark_up(id);
  if (crashed) {
    // Daemon restart: tiers rebuild their dirty knowledge from the local
    // store (the crash dropped their in-memory lists) and resume ticking.
    for (PoolId p : osdmap_.pool_ids()) {
      if (auto* t = static_cast<DedupTier*>(o->tier(p))) {
        t->rebuild_dirty_list();
        t->start();
      }
    }
  }
}

SimTime Cluster::recover(uint64_t* objects_recovered,
                         uint64_t* bytes_recovered) {
  const SimTime start = sched_.now();

  // Discover holders by scanning surviving OSD stores — no central catalog,
  // matching the shared-nothing design.
  std::map<ObjectKey, std::vector<OsdId>> holders;
  for (auto& o : osds_) {
    if (!o->is_up()) continue;
    for (PoolId p : osdmap_.pool_ids()) {
      const ObjectStore* st = o->store_if_exists(p);
      if (st == nullptr) continue;
      for (const auto& key : st->list(p)) {
        holders[key].push_back(o->id());
      }
    }
  }

  // Decrements land in per-shard completion callbacks, which may run on
  // worker threads during parallel windows; the totals are commutative
  // sums, so relaxed atomics keep them exact at any shard count.
  struct Tally {
    std::atomic<int> outstanding{0};
    bool launched_all = false;
    std::atomic<uint64_t> objects{0};
    std::atomic<uint64_t> bytes{0};
  };
  auto tally = std::make_shared<Tally>();

  // The EC read/write paths identify a copy's shard by its ec.shard xattr,
  // but placement is by acting-set position.  Rotations while a member was
  // down leave shards duplicated or mislabeled relative to the current
  // order, which position-blind "pull what is missing" cannot repair.
  auto shard_label = [this](const ObjectKey& key, OsdId id, int km) -> int {
    Osd* o = osd(id);
    const ObjectStore* st =
        (o != nullptr && o->is_up()) ? o->store_if_exists(key.pool) : nullptr;
    if (st == nullptr) return -1;
    auto attr = st->getxattr(key, "ec.shard");
    if (!attr.is_ok()) return -1;
    Decoder d(attr.value());
    uint32_t v = 0;
    if (!d.get_u32(&v).is_ok() || v >= static_cast<uint32_t>(km)) return -1;
    return static_cast<int>(v);
  };

  // Pre-pass for EC realignment: the decode + re-encode below is pure CPU
  // over store state that nothing mutates until the drive loop runs, so
  // gather the shards and submit every rebuild to the exec pool up front,
  // then join each one at its original position in the launch loop.  Same
  // results in the same order; workers overlap the parity math with the
  // rest of the scan.
  struct EcPrep {
    uint64_t orig_len = 0;
    ObjectState donor;
    KernelFuture<std::vector<Buffer>> shards_out;  // empty = < k shards
  };
  std::map<ObjectKey, EcPrep> ec_prep;
  for (const auto& [key, who] : holders) {
    const PoolConfig& pcfg = osdmap_.pool(key.pool);
    if (pcfg.scheme == RedundancyScheme::kReplicated) continue;
    auto acting = osdmap_.acting(key.pool, key.oid);
    const int k = pcfg.ec_k;
    const int m = pcfg.ec_m;
    bool need_any = false;
    for (size_t i = 0; i < acting.size(); i++) {
      Osd* t = osd(acting[i]);
      if (t == nullptr || !t->is_up()) continue;
      if (shard_label(key, acting[i], k + m) != static_cast<int>(i)) {
        need_any = true;
        break;
      }
    }
    if (!need_any) continue;

    // Gather k distinct shards from every up holder — strays included,
    // since a bumped member can hold the only copy of a shard index.
    EcPrep prep;
    bool have_donor = false;
    std::vector<std::optional<Buffer>> shards(static_cast<size_t>(k + m));
    for (const OsdId h : who) {
      const int idx = shard_label(key, h, k + m);
      if (idx < 0) continue;
      const ObjectStore* st = osd(h)->store_if_exists(key.pool);
      auto data = st->read(key, 0, 0);
      if (!data.is_ok()) continue;
      if (!have_donor) {
        if (auto snap = st->snapshot(key); snap.is_ok()) {
          prep.donor = std::move(snap).value();
          have_donor = true;
        }
      }
      if (auto len_attr = st->getxattr(key, "ec.orig_len");
          len_attr.is_ok()) {
        Decoder ld(len_attr.value());
        uint64_t v = 0;
        if (ld.get_u64(&v).is_ok()) prep.orig_len = v;
      }
      if (!shards[static_cast<size_t>(idx)]) {
        shards[static_cast<size_t>(idx)] = std::move(data).value();
      }
    }
    const uint64_t orig_len = prep.orig_len;
    prep.shards_out = kernel_async<std::vector<Buffer>>(
        &exec_pool_, Kernel::kEcDecode,
        [k, m, orig_len, shards = std::move(shards)] {
          ReedSolomon rs(k, m);
          auto decoded = rs.decode(shards, orig_len);
          if (!decoded.is_ok()) return std::vector<Buffer>{};
          return rs.encode(decoded.value());
        });
    ec_prep.emplace(key, std::move(prep));
  }

  for (const auto& [key, who] : holders) {
    const PoolConfig& pcfg = osdmap_.pool(key.pool);
    auto acting = osdmap_.acting(key.pool, key.oid);

    if (pcfg.scheme == RedundancyScheme::kReplicated) {
      // Fanout auto-creates the object on a freshly rotated-in member, so
      // a holder may be a partial "husk" carrying only the extents and
      // omap keys of the writes it happened to see.  Every applied write
      // bumps the copy's version, and every write reaches every acting
      // member, so the highest-version holder has applied a superset of
      // the transactions any lower-version holder saw: pull from it, and
      // also refresh acting members whose copy lags it.
      auto copy_version = [this, &key](OsdId id) -> int64_t {
        Osd* o = osd(id);
        const ObjectStore* st =
            (o != nullptr && o->is_up()) ? o->store_if_exists(key.pool)
                                         : nullptr;
        const ObjectState* os = st != nullptr ? st->find(key) : nullptr;
        return os == nullptr ? -1 : static_cast<int64_t>(os->version);
      };
      OsdId src = -1;
      int64_t best_v = -1;
      for (const OsdId h : who) {
        const int64_t v = copy_version(h);
        if (v > best_v) {
          best_v = v;
          src = h;
        }
      }
      if (src < 0) continue;
      for (const OsdId target : acting) {
        if (target == src || copy_version(target) >= best_v) continue;
        Osd* t = osd(target);
        if (t == nullptr || !t->is_up()) continue;
        tally->outstanding++;
        tally->objects++;
        // Pull the full object state from the chosen replica, then write
        // it locally (backfill initiated by the target).
        OsdOp pull;
        pull.type = OsdOpType::kPull;
        pull.pool = key.pool;
        pull.oid = key.oid;
        pull.foreground = false;
        pull.trace = op_tracker_.start(
            "recovery_pull " + std::to_string(key.pool) + "/" + key.oid,
            sched_.now());
        Osd* tptr = t;
        // Install is compare-and-swap on the target's version: between the
        // pull launch and the snapshot landing, an in-flight client write
        // can apply at the target, and blindly installing the (older)
        // snapshot would erase it — an acked write lost to recovery.  On a
        // raced install we skip; the caller's next pass re-evaluates with
        // fresh versions.
        const int64_t tv_launch = copy_version(target);
        auto pull_trace = pull.trace;
        send_osd_op(*this, t->node(), src, std::move(pull),
                    [this, tptr, key, tally, tv_launch,
                     pull_trace](OsdOpReply rep) {
                      if (!rep.status.is_ok() || !rep.state) {
                        tally->outstanding--;
                        op_tracker_.finish(pull_trace, sched_.now());
                        return;
                      }
                      auto state = rep.state;
                      const uint64_t bytes = object_state_bytes(*state);
                      tally->bytes += bytes;
                      tptr->disk().write(
                          bytes, [this, tptr, key, state, tally, tv_launch,
                                  pull_trace] {
                            const ObjectStore* st =
                                tptr->store_if_exists(key.pool);
                            const ObjectState* cur =
                                st != nullptr ? st->find(key) : nullptr;
                            const int64_t now_v =
                                cur == nullptr
                                    ? -1
                                    : static_cast<int64_t>(cur->version);
                            if (tptr->is_up() && now_v == tv_launch) {
                              tptr->store(key.pool).install(key, *state);
                            }
                            tally->outstanding--;
                            op_tracker_.finish(pull_trace, sched_.now());
                          });
                    });
      }
      continue;
    }

    // EC realignment: every acting position i must end up holding shard i.
    const int k = pcfg.ec_k;
    const int m = pcfg.ec_m;
    std::vector<size_t> need;
    for (size_t i = 0; i < acting.size(); i++) {
      Osd* t = osd(acting[i]);
      if (t == nullptr || !t->is_up()) continue;
      if (shard_label(key, acting[i], k + m) != static_cast<int>(i)) {
        need.push_back(i);
      }
    }
    if (need.empty()) continue;

    auto prep_it = ec_prep.find(key);
    if (prep_it == ec_prep.end()) continue;  // raced away; next pass
    EcPrep& prep = prep_it->second;
    auto out = prep.shards_out.take();
    if (out.empty()) continue;  // < k distinct shards; retry next pass
    const uint64_t orig_len = prep.orig_len;
    const ObjectState& donor = prep.donor;
    for (const size_t i : need) {
      Osd* t = osd(acting[i]);
      tally->outstanding++;
      tally->objects++;
      ObjectState st;
      st.data.write(0, out[i]);
      st.logical_size = out[i].size();
      st.xattrs = donor.xattrs;
      st.omap = donor.omap;
      Encoder se;
      se.put_u32(static_cast<uint32_t>(i));
      st.xattrs["ec.shard"] = se.finish();
      Encoder ol;
      ol.put_u64(orig_len);
      st.xattrs["ec.orig_len"] = ol.finish();
      const uint64_t bytes = object_state_bytes(st);
      tally->bytes += bytes;
      auto stp = std::make_shared<ObjectState>(std::move(st));
      t->disk().write(bytes, [t, key, stp, tally] {
        t->store(key.pool).install(key, *stp);
        tally->outstanding--;
      });
    }
  }
  tally->launched_all = true;

  // Drive the simulation until every transfer lands.  The deadline is a
  // backstop for fault campaigns: if a source dies mid-pull its ack never
  // comes, and the next recover() pass will pick the object up again.
  const SimTime deadline = sched_.now() + sec(600);
  while (tally->outstanding > 0 && sched_.now() < deadline) {
    if (!sched_.step()) break;
  }

  // Trim stray copies.  An OSD bumped out of an object's acting set by a
  // revive holds a copy that will never see another update: map-update
  // fanout and removes address the acting set only.  Left alone, a stray
  // can wedge an engine on a dirty flag no flush will ever clear, shadow
  // a reclaimed chunk, or resurrect a removed object through a later
  // recovery pull.  A copy is only trimmed once every acting member holds
  // the object, so a stray that is still the sole survivor stays put for
  // the next pass to pull from.
  std::map<ObjectKey, std::vector<OsdId>> post;
  for (auto& o : osds_) {
    if (!o->is_up()) continue;
    for (PoolId p : osdmap_.pool_ids()) {
      const ObjectStore* st = o->store_if_exists(p);
      if (st == nullptr) continue;
      for (const auto& key : st->list(p)) post[key].push_back(o->id());
    }
  }
  for (const auto& [key, who] : post) {
    const PoolConfig& pcfg = osdmap_.pool(key.pool);
    const auto acting = osdmap_.acting(key.pool, key.oid);
    if (acting.empty()) continue;
    // For replicated pools, presence is not enough either: an acting
    // member may hold a partial husk (fanout auto-created it), and a
    // stray may be the most-complete copy until the version-directed
    // refresh above lands.  Only trim once every acting copy has caught
    // up to the best version any holder has.
    uint64_t max_v = 0;
    for (const OsdId h : who) {
      const ObjectStore* st = osd(h)->store_if_exists(key.pool);
      const ObjectState* os = st != nullptr ? st->find(key) : nullptr;
      if (os != nullptr) max_v = std::max(max_v, os->version);
    }
    bool covered = true;
    for (size_t i = 0; i < acting.size(); i++) {
      const OsdId a = acting[i];
      Osd* ao = osd(a);
      if (ao == nullptr || !ao->is_up() ||
          std::find(who.begin(), who.end(), a) == who.end()) {
        covered = false;
        break;
      }
      if (pcfg.scheme == RedundancyScheme::kReplicated) {
        const ObjectStore* st = ao->store_if_exists(key.pool);
        const ObjectState* os = st != nullptr ? st->find(key) : nullptr;
        if (os == nullptr || os->version < max_v) {
          covered = false;
          break;
        }
      }
      // For EC, a stray may hold the only copy of a shard index until
      // realignment lands, so require every acting position to hold its
      // own correctly-labeled shard first.
      if (pcfg.scheme != RedundancyScheme::kReplicated &&
          shard_label(key, a, pcfg.ec_k + pcfg.ec_m) !=
              static_cast<int>(i)) {
        covered = false;
        break;
      }
    }
    if (!covered) continue;
    for (OsdId id : who) {
      if (std::find(acting.begin(), acting.end(), id) != acting.end()) {
        continue;
      }
      Osd* so = osd(id);
      (void)so->store(key.pool).remove_object(key);
      if (TierService* t = so->tier(key.pool)) t->forget_object(key.oid);
    }
  }

  if (objects_recovered != nullptr) *objects_recovered = tally->objects;
  if (bytes_recovered != nullptr) *bytes_recovered = tally->bytes;
  return sched_.now() - start;
}

bool Cluster::drain_dedup(SimTime max_wait) {
  const SimTime deadline = sched_.now() + max_wait;
  while (sched_.now() < deadline) {
    bool busy = false;
    for (auto& o : osds_) {
      for (PoolId p : osdmap_.pool_ids()) {
        if (TierService* t = o->tier(p)) {
          if (t->dirty_backlog() > 0) busy = true;
        }
      }
    }
    if (!busy) return true;
    sched_.run_for(msec(200));
  }
  return false;
}

ObjectStore::Stats Cluster::pool_stats(PoolId pool) const {
  ObjectStore::Stats agg;
  for (const auto& o : osds_) {
    const ObjectStore* st = o->store_if_exists(pool);
    if (st == nullptr) continue;
    const auto s = st->stats(pool);
    agg.objects += s.objects;
    agg.logical_bytes += s.logical_bytes;
    agg.stored_data_bytes += s.stored_data_bytes;
    agg.xattr_bytes += s.xattr_bytes;
    agg.omap_bytes += s.omap_bytes;
    agg.physical_bytes += s.physical_bytes;
  }
  return agg;
}

uint64_t Cluster::total_physical_bytes() const {
  uint64_t n = 0;
  for (PoolId p : osdmap_.pool_ids()) n += pool_stats(p).physical_bytes;
  return n;
}

void Cluster::sync_sim_counters() {
  const Scheduler::Stats st = sched_.stats();
  sim_pc_->set_gauge(l_sim_shards, sched_.shards());
  sim_pc_->set_gauge(l_sim_events_dispatched,
                     static_cast<int64_t>(st.events_dispatched));
  sim_pc_->set_gauge(l_sim_events_batched,
                     static_cast<int64_t>(st.events_batched));
  sim_pc_->set_gauge(l_sim_ingress_messages,
                     static_cast<int64_t>(st.ingress_messages));
  sim_pc_->set_gauge(l_sim_shard_sync_barriers,
                     static_cast<int64_t>(st.shard_sync_barriers));
  sim_pc_->set_gauge(l_sim_windows, static_cast<int64_t>(st.windows));
  sim_pc_->set_gauge(l_sim_arena_bytes, static_cast<int64_t>(st.arena_bytes));
}

void Cluster::sync_pool_counters() {
  for (PoolId pid : osdmap_.pool_ids()) {
    auto it = pool_pcs_.find(pid);
    if (it == pool_pcs_.end()) {
      obs::PerfCountersBuilder b(
          "pool." + std::to_string(pid) + "." + osdmap_.pool(pid).name,
          l_pool_first, l_pool_last);
      b.add_gauge(l_pool_objects, "objects");
      b.add_gauge(l_pool_logical_bytes, "logical_bytes");
      b.add_gauge(l_pool_stored_data_bytes, "stored_data_bytes");
      b.add_gauge(l_pool_xattr_bytes, "xattr_bytes");
      b.add_gauge(l_pool_omap_bytes, "omap_bytes");
      b.add_gauge(l_pool_physical_bytes, "physical_bytes");
      it = pool_pcs_.emplace(pid, b.create()).first;
      perf_registry_.add(it->second);
    }
    const ObjectStore::Stats st = pool_stats(pid);
    obs::PerfCounters& pc = *it->second;
    pc.set_gauge(l_pool_objects, static_cast<int64_t>(st.objects));
    pc.set_gauge(l_pool_logical_bytes, static_cast<int64_t>(st.logical_bytes));
    pc.set_gauge(l_pool_stored_data_bytes,
                 static_cast<int64_t>(st.stored_data_bytes));
    pc.set_gauge(l_pool_xattr_bytes, static_cast<int64_t>(st.xattr_bytes));
    pc.set_gauge(l_pool_omap_bytes, static_cast<int64_t>(st.omap_bytes));
    pc.set_gauge(l_pool_physical_bytes,
                 static_cast<int64_t>(st.physical_bytes));
  }
}

void Cluster::sync_derived_counters() {
  // The same prefix sums obs::summary_line prints, promoted to gauges so
  // the telemetry sampler and the JSON dump see them as first-class
  // series.  Gauges are int64, hence the fixed-point units.
  uint64_t sha_computed = 0, sha_avoided = 0, memo_hits = 0;
  uint64_t meta_read = 0;
  uint64_t meta_baseline = 0, meta_actual = 0;
  uint64_t read_bytes = 0, read_objects = 0, read_rpcs = 0;
  uint64_t asm_hits = 0, remote_chunks = 0;
  for (const auto& pc : perf_registry_.sorted()) {
    if (pc->name().rfind("tier.", 0) == 0) {
      sha_computed += pc->get(l_tier_sha_computed);
      sha_avoided += pc->get(l_tier_sha_avoided);
      memo_hits += pc->get(l_tier_fingerprint_cache_hits);
      read_bytes += pc->get(l_tier_read_logical_bytes);
      read_objects += pc->get(l_tier_read_chunk_objects);
      read_rpcs += pc->get(l_tier_read_chunk_rpcs);
      asm_hits += pc->get(l_tier_asm_hits);
      remote_chunks += pc->get(l_tier_redirected_read_chunks);
      meta_baseline += pc->get(l_tier_meta_bytes_baseline);
      meta_actual += pc->get(l_tier_meta_bytes_actual);
    } else if (pc->name().rfind("osd.", 0) == 0) {
      meta_read += pc->get(l_osd_meta_bytes_read);
    }
  }
  uint64_t logical = 0, physical = 0;
  for (PoolId pid : osdmap_.pool_ids()) {
    const ObjectStore::Stats st = pool_stats(pid);
    logical += st.logical_bytes;
    physical += st.physical_bytes;
  }
  const auto ppm = [](uint64_t num, uint64_t den) -> int64_t {
    return den > 0 ? static_cast<int64_t>(num * 1'000'000 / den) : 0;
  };
  // Can go negative under replication (physical > logical); that is the
  // honest space-efficiency number, so no clamping.
  derived_pc_->set_gauge(
      l_derived_dedup_ratio_ppm,
      logical > 0 ? 1'000'000 - static_cast<int64_t>(physical * 1'000'000 /
                                                     logical)
                  : 0);
  derived_pc_->set_gauge(
      l_derived_read_amp_objs_per_gb,
      read_bytes > 0
          ? static_cast<int64_t>(read_objects * (1ull << 30) / read_bytes)
          : 0);
  derived_pc_->set_gauge(l_derived_read_rpcs,
                         static_cast<int64_t>(read_rpcs));
  derived_pc_->set_gauge(l_derived_asm_hit_ppm, ppm(asm_hits, remote_chunks));
  derived_pc_->set_gauge(
      l_derived_sha_avoided_ppm,
      ppm(sha_avoided + memo_hits, sha_computed + sha_avoided + memo_hits));
  derived_pc_->set_gauge(l_derived_meta_read_amp_ppm, ppm(meta_read, logical));
  // How many bytes of fixed-format metadata one actually-written byte
  // stands in for (1e6 = parity; recipe mode pushes this well above 1e6).
  derived_pc_->set_gauge(l_derived_meta_dedup_ratio_ppm,
                         ppm(meta_baseline, meta_actual));
}

void Cluster::sync_telemetry_gauges() {
  sync_sim_counters();
  for (auto& o : osds_) {
    for (PoolId p : osdmap_.pool_ids()) {
      if (auto* t = static_cast<DedupTier*>(o->tier(p))) {
        t->sync_telemetry_gauges();
      }
    }
  }
  sync_pool_counters();
  sync_derived_counters();
}

uint64_t Cluster::storage_cpu_busy_ns() const {
  uint64_t n = 0;
  for (int i = 0; i < cfg_.storage_nodes; i++) {
    n += node_cpus_[static_cast<size_t>(i)]->cumulative_busy_ns();
  }
  return n;
}

double Cluster::storage_cpu_utilization(uint64_t busy_before, SimTime t0,
                                        SimTime t1) const {
  if (t1 <= t0) return 0.0;
  const uint64_t busy_after = storage_cpu_busy_ns();
  const double denom = static_cast<double>(t1 - t0) *
                       cfg_.storage_nodes * cfg_.cpu.cores;
  return static_cast<double>(busy_after - busy_before) / denom;
}

}  // namespace gdedup
