#include "rados/cluster.h"

#include <cassert>

#include "common/encoding.h"
#include "common/logging.h"
#include "ec/reed_solomon.h"

namespace gdedup {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      net_(&sched_, cfg.storage_nodes + cfg.client_nodes, cfg.net) {
  for (int n = 0; n < num_nodes(); n++) {
    node_cpus_.push_back(std::make_unique<CpuModel>(&sched_, cfg_.cpu));
  }
  int osd_id = 0;
  for (int n = 0; n < cfg_.storage_nodes; n++) {
    for (int d = 0; d < cfg_.osds_per_node; d++) {
      osdmap_.add_osd(osd_id, /*host=*/n);
      osds_.push_back(std::make_unique<Osd>(this, osd_id, n, cfg_.ssd));
      osd_node_[osd_id] = n;
      osd_id++;
    }
  }
}

Cluster::~Cluster() {
  // Stop engines before members tear down.
  for (auto& o : osds_) {
    for (PoolId p : osdmap_.pool_ids()) {
      if (TierService* t = o->tier(p)) t->stop();
    }
  }
}

Osd* Cluster::osd(OsdId id) {
  if (id < 0 || id >= static_cast<OsdId>(osds_.size())) return nullptr;
  return osds_[static_cast<size_t>(id)].get();
}

NodeId Cluster::node_of_osd(OsdId id) const {
  auto it = osd_node_.find(id);
  assert(it != osd_node_.end());
  return it->second;
}

std::vector<Osd*> Cluster::osds() {
  std::vector<Osd*> out;
  out.reserve(osds_.size());
  for (auto& o : osds_) out.push_back(o.get());
  return out;
}

PoolId Cluster::create_pool(PoolConfig cfg) {
  return osdmap_.create_pool(std::move(cfg));
}

PoolId Cluster::create_replicated_pool(const std::string& name, int replicas,
                                       uint32_t pg_num, bool compress) {
  PoolConfig cfg;
  cfg.name = name;
  cfg.scheme = RedundancyScheme::kReplicated;
  cfg.replicas = replicas;
  cfg.pg_num = pg_num;
  cfg.compress_at_rest = compress;
  return create_pool(std::move(cfg));
}

PoolId Cluster::create_ec_pool(const std::string& name, int k, int m,
                               uint32_t pg_num, bool compress) {
  PoolConfig cfg;
  cfg.name = name;
  cfg.scheme = RedundancyScheme::kErasure;
  cfg.ec_k = k;
  cfg.ec_m = m;
  cfg.pg_num = pg_num;
  cfg.compress_at_rest = compress;
  return create_pool(std::move(cfg));
}

void Cluster::enable_dedup(PoolId metadata_pool, PoolId chunk_pool,
                           DedupTierConfig params) {
  assert(params.mode != DedupMode::kOff);
  params.chunk_pool = chunk_pool;
  osdmap_.mutable_pool(metadata_pool).dedup = params;
  for (auto& o : osds_) {
    auto tier = std::make_unique<DedupTier>(o.get(), metadata_pool);
    tier->start();
    o->set_tier(metadata_pool, std::move(tier));
  }
}

DedupTier* Cluster::tier_of(OsdId osd_id, PoolId metadata_pool) {
  Osd* o = osd(osd_id);
  if (o == nullptr) return nullptr;
  return static_cast<DedupTier*>(o->tier(metadata_pool));
}

DedupTierStats Cluster::tier_stats(PoolId metadata_pool) {
  DedupTierStats agg;
  for (auto& o : osds_) {
    auto* t = static_cast<DedupTier*>(o->tier(metadata_pool));
    if (t == nullptr) continue;
    const DedupTierStats& s = t->stats();
    agg.writes += s.writes;
    agg.reads += s.reads;
    agg.removes += s.removes;
    agg.prereads += s.prereads;
    agg.flush_merges += s.flush_merges;
    agg.cached_read_chunks += s.cached_read_chunks;
    agg.redirected_read_chunks += s.redirected_read_chunks;
    agg.chunks_flushed += s.chunks_flushed;
    agg.flush_bytes += s.flush_bytes;
    agg.noop_flushes += s.noop_flushes;
    agg.derefs += s.derefs;
    agg.evictions += s.evictions;
    agg.capacity_evictions += s.capacity_evictions;
    agg.promotions += s.promotions;
    agg.hot_skips += s.hot_skips;
    agg.racy_flushes += s.racy_flushes;
    agg.engine_ticks += s.engine_ticks;
    agg.engine_aborts += s.engine_aborts;
    agg.fingerprint_cache_hits += s.fingerprint_cache_hits;
  }
  return agg;
}

OsdId Cluster::add_osd(NodeId host, double weight) {
  assert(host >= 0 && host < cfg_.storage_nodes);
  const OsdId id = static_cast<OsdId>(osds_.size());
  osdmap_.add_osd(id, host, weight);
  osds_.push_back(std::make_unique<Osd>(this, id, host, cfg_.ssd));
  osd_node_[id] = host;
  // Dedup tiers are per-OSD services: give the newcomer its own.
  for (PoolId p : osdmap_.pool_ids()) {
    if (osdmap_.pool(p).dedup.enabled()) {
      auto tier = std::make_unique<DedupTier>(osds_.back().get(), p);
      tier->start();
      osds_.back()->set_tier(p, std::move(tier));
    }
  }
  return id;
}

void Cluster::fail_osd(OsdId id) {
  Osd* o = osd(id);
  assert(o != nullptr);
  o->set_drop_when_down(false);
  o->set_up(false);
  osdmap_.mark_down(id);
}

void Cluster::crash_osd(OsdId id) {
  Osd* o = osd(id);
  assert(o != nullptr);
  o->set_drop_when_down(true);
  o->set_up(false);
  osdmap_.mark_down(id);
}

void Cluster::revive_osd(OsdId id, bool wipe_store) {
  Osd* o = osd(id);
  assert(o != nullptr);
  if (wipe_store) {
    for (PoolId p : osdmap_.pool_ids()) {
      ObjectStore& st = o->store(p);
      for (const auto& key : st.list(p)) {
        (void)st.remove_object(key);
      }
    }
  }
  o->set_up(true);
  osdmap_.mark_up(id);
}

SimTime Cluster::recover(uint64_t* objects_recovered,
                         uint64_t* bytes_recovered) {
  const SimTime start = sched_.now();

  // Discover holders by scanning surviving OSD stores — no central catalog,
  // matching the shared-nothing design.
  std::map<ObjectKey, std::vector<OsdId>> holders;
  for (auto& o : osds_) {
    if (!o->is_up()) continue;
    for (PoolId p : osdmap_.pool_ids()) {
      const ObjectStore* st = o->store_if_exists(p);
      if (st == nullptr) continue;
      for (const auto& key : st->list(p)) {
        holders[key].push_back(o->id());
      }
    }
  }

  struct Tally {
    int outstanding = 0;
    bool launched_all = false;
    uint64_t objects = 0;
    uint64_t bytes = 0;
  };
  auto tally = std::make_shared<Tally>();

  for (const auto& [key, who] : holders) {
    const PoolConfig& pcfg = osdmap_.pool(key.pool);
    auto acting = osdmap_.acting(key.pool, key.oid);
    for (size_t i = 0; i < acting.size(); i++) {
      const OsdId target = acting[i];
      if (std::find(who.begin(), who.end(), target) != who.end()) continue;
      Osd* t = osd(target);
      if (t == nullptr || !t->is_up()) continue;
      tally->outstanding++;
      tally->objects++;

      if (pcfg.scheme == RedundancyScheme::kReplicated) {
        // Pull the full object state from a surviving replica, then write
        // it locally (backfill initiated by the target).
        const OsdId src = who.front();
        OsdOp pull;
        pull.type = OsdOpType::kPull;
        pull.pool = key.pool;
        pull.oid = key.oid;
        pull.foreground = false;
        Osd* tptr = t;
        send_osd_op(*this, t->node(), src, std::move(pull),
                    [this, tptr, key, tally](OsdOpReply rep) {
                      if (!rep.status.is_ok() || !rep.state) {
                        tally->outstanding--;
                        return;
                      }
                      auto state = rep.state;
                      const uint64_t bytes = object_state_bytes(*state);
                      tally->bytes += bytes;
                      tptr->disk().write(bytes, [tptr, key, state, tally] {
                        tptr->store(key.pool).install(key, *state);
                        tally->outstanding--;
                      });
                    });
      } else {
        // EC shard rebuild: gather k shards through the normal EC read
        // path (decode cost charged), re-encode, install shard i locally.
        const int shard = static_cast<int>(i);
        Osd* tptr = t;
        const int k = pcfg.ec_k;
        const int m = pcfg.ec_m;
        // Borrow xattrs from a surviving holder (control-plane metadata;
        // tiny next to the data transfer, which is costed).
        ObjectState donor;
        if (Osd* h = osd(who.front())) {
          auto snap = h->store(key.pool).snapshot(key);
          if (snap.is_ok()) donor = std::move(snap).value();
        }
        tptr->submit_read(
            key.pool, key.oid, 0, 0,
            [this, tptr, key, shard, k, m, donor, tally](Result<Buffer> r) {
              if (!r.is_ok()) {
                tally->outstanding--;
                return;
              }
              ReedSolomon rs(k, m);
              auto shards = rs.encode(r.value());
              ObjectState st;
              st.data.write(0, shards[static_cast<size_t>(shard)]);
              st.logical_size = shards[static_cast<size_t>(shard)].size();
              st.xattrs = donor.xattrs;
              st.omap = donor.omap;
              Encoder se;
              se.put_u32(static_cast<uint32_t>(shard));
              st.xattrs["ec.shard"] = se.finish();
              Encoder ol;
              ol.put_u64(r.value().size());
              st.xattrs["ec.orig_len"] = ol.finish();
              const uint64_t bytes = object_state_bytes(st);
              tally->bytes += bytes;
              auto stp = std::make_shared<ObjectState>(std::move(st));
              tptr->disk().write(bytes, [tptr, key, stp, tally] {
                tptr->store(key.pool).install(key, *stp);
                tally->outstanding--;
              });
            },
            /*foreground=*/false);
      }
    }
  }
  tally->launched_all = true;

  // Drive the simulation until every transfer lands.
  while (tally->outstanding > 0) {
    if (!sched_.step()) break;
  }
  if (objects_recovered != nullptr) *objects_recovered = tally->objects;
  if (bytes_recovered != nullptr) *bytes_recovered = tally->bytes;
  return sched_.now() - start;
}

bool Cluster::drain_dedup(SimTime max_wait) {
  const SimTime deadline = sched_.now() + max_wait;
  while (sched_.now() < deadline) {
    bool busy = false;
    for (auto& o : osds_) {
      for (PoolId p : osdmap_.pool_ids()) {
        if (TierService* t = o->tier(p)) {
          if (t->dirty_backlog() > 0) busy = true;
        }
      }
    }
    if (!busy) return true;
    sched_.run_for(msec(200));
  }
  return false;
}

ObjectStore::Stats Cluster::pool_stats(PoolId pool) const {
  ObjectStore::Stats agg;
  for (const auto& o : osds_) {
    const ObjectStore* st = o->store_if_exists(pool);
    if (st == nullptr) continue;
    const auto s = st->stats(pool);
    agg.objects += s.objects;
    agg.logical_bytes += s.logical_bytes;
    agg.stored_data_bytes += s.stored_data_bytes;
    agg.xattr_bytes += s.xattr_bytes;
    agg.omap_bytes += s.omap_bytes;
    agg.physical_bytes += s.physical_bytes;
  }
  return agg;
}

uint64_t Cluster::total_physical_bytes() const {
  uint64_t n = 0;
  for (PoolId p : osdmap_.pool_ids()) n += pool_stats(p).physical_bytes;
  return n;
}

uint64_t Cluster::storage_cpu_busy_ns() const {
  uint64_t n = 0;
  for (int i = 0; i < cfg_.storage_nodes; i++) {
    n += node_cpus_[static_cast<size_t>(i)]->cumulative_busy_ns();
  }
  return n;
}

double Cluster::storage_cpu_utilization(uint64_t busy_before, SimTime t0,
                                        SimTime t1) const {
  if (t1 <= t0) return 0.0;
  const uint64_t busy_after = storage_cpu_busy_ns();
  const double denom = static_cast<double>(t1 - t0) *
                       cfg_.storage_nodes * cfg_.cpu.cores;
  return static_cast<double>(busy_after - busy_before) / denom;
}

}  // namespace gdedup
