#pragma once

// Cluster bring-up and lifecycle.
//
// Owns the scheduler, the network, per-node CPU models, the OSDMap and all
// OSDs; implements ClusterContext for them.  Shapes the paper's testbed by
// default: 4 storage nodes x 4 OSDs, 3 client nodes, 10GbE, SATA-SSD-class
// devices, 12-core Xeons.  Also hosts the failure / recovery / dedup
// orchestration the experiments script against.

#include <map>
#include <memory>
#include <vector>

#include "dedup/tier.h"
#include "obs/op_tracker.h"
#include "obs/perf_counters.h"
#include "osd/cluster_context.h"
#include "osd/osd.h"
#include "sim/disk.h"

namespace gdedup {

struct ClusterConfig {
  int storage_nodes = 4;
  int osds_per_node = 4;
  int client_nodes = 3;
  NetworkConfig net;
  SsdConfig ssd;
  CpuConfig cpu;
  // When > 0, client-side OSD ops time out with kUnavailable after this
  // long without a reply, so crashed OSDs (which drop in-flight ops on the
  // floor) cannot wedge the dedup engines.  0 keeps the legacy wait-forever
  // behaviour for latency-exact benches.
  SimTime op_timeout = 0;
  // Worker threads for the real-byte kernels (fingerprint, CDC, CRC, EC,
  // compression).  0 = take GDEDUP_EXEC_THREADS from the environment
  // (default 1).  1 = serial: no workers, kernels run inline at the
  // virtual completion exactly as before.  Any value produces the same
  // determinism digest; only wall-clock changes.
  int exec_threads = 0;
  // Event-engine shards (conservative parallel DES partitions).  0 = take
  // GDEDUP_SIM_SHARDS from the environment (default 1).  Any value
  // produces the same determinism digest — storage nodes spread round-
  // robin over shards, client nodes pin to shard 0; whether shard windows
  // actually run on worker threads is a separate switch
  // (GDEDUP_SIM_PARALLEL / Scheduler::set_parallel).
  int sim_shards = 0;
  // Two-tier fingerprint fast path + chunk-refs metadata cache.  -1 =
  // take GDEDUP_FP_FASTPATH from the environment (default on), 0 = off,
  // 1 = on.  Either state produces the same determinism digest — the
  // fast path avoids host-side SHA invocations and refs-xattr decode
  // round trips, never virtual-time observables.
  int fp_fastpath = -1;
  // Forward-assembly restore cache: -1 = take GDEDUP_RESTORE_ASSEMBLY
  // from the environment (default on), 0 = off, 1 = on.  Host-side only,
  // digest-identical either way (see ClusterContext::restore_assembly).
  int restore_assembly = -1;
  // Recipe-chunk metadata dedup + batched omap write path: -1 = take
  // GDEDUP_RECIPE_DEDUP from the environment (default OFF), 0 = off,
  // 1 = on.  Changes on-disk omap layout and chunk-pool traffic, so the
  // two states have *different* digests; each state is individually
  // deterministic at any shards x threads (see DESIGN.md §14).
  int recipe_dedup = -1;
  // OpTracker ring sizes.  0 = GDEDUP_OPS_HISTORY env / built-in defaults;
  // out-of-range values are validated loudly and clamped (see
  // obs::OpTracker::resolve_historic_cap).
  int ops_history = 0;
  int ops_slow_board = 0;
};

// Perf-counter indices for the event engine (registry entity "sim").
// Gauges, not counters: the Scheduler keeps its own tallies and the
// cluster mirrors them into the registry on demand (sync_sim_counters),
// so obs::dump sees engine totals without the hot dispatch loop paying a
// registry write per event.  Wall-clock-only values (they depend on shard
// count and window geometry) — reported, never digested.
enum {
  l_sim_first = 5000,
  l_sim_shards,
  l_sim_events_dispatched,
  l_sim_events_batched,
  l_sim_ingress_messages,
  l_sim_shard_sync_barriers,
  l_sim_windows,
  l_sim_arena_bytes,
  l_sim_last,
};

// Per-pool capacity gauges (registry entity "pool.<id>.<name>"), mirrored
// from ObjectStore::Stats by sync_telemetry_gauges().  Virtual-time
// deterministic — safe to include in timelines at any shard count.
enum {
  l_pool_first = 5200,
  l_pool_objects,
  l_pool_logical_bytes,
  l_pool_stored_data_bytes,
  l_pool_xattr_bytes,
  l_pool_omap_bytes,
  l_pool_physical_bytes,
  l_pool_last,
};

// Cluster-wide derived efficiency ratios (registry entity "derived") —
// the summary_line numbers promoted to first-class gauges so the
// telemetry sampler and the obs JSON dump see them.  Gauges are int64, so
// ratios are fixed-point: _ppm = parts per million, read-amp = chunk
// objects touched per GiB of logical read.
enum {
  l_derived_first = 5100,
  l_derived_dedup_ratio_ppm,       // 1e6 * (1 - physical/logical)
  l_derived_read_amp_objs_per_gb,  // chunk objects per GiB logical read
  l_derived_read_rpcs,             // chunk-pool read round trips
  l_derived_asm_hit_ppm,           // assembly-cache hits per redirected read
  l_derived_sha_avoided_ppm,       // SHA computations avoided by fast path
  l_derived_meta_read_amp_ppm,     // metadata bytes read per logical byte
  l_derived_meta_dedup_ratio_ppm,  // 1e6 * baseline/actual metadata bytes
  l_derived_last,
};

class Cluster : public ClusterContext {
 public:
  explicit Cluster(ClusterConfig cfg = {});
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- ClusterContext ---
  Scheduler& sched() override { return sched_; }
  Network& net() override { return net_; }
  OsdMap& osdmap() override { return osdmap_; }
  Osd* osd(OsdId id) override;
  NodeId node_of_osd(OsdId id) const override;
  CpuModel& node_cpu(NodeId node) override { return *node_cpus_[static_cast<size_t>(node)]; }
  SimTime op_timeout() const override { return cfg_.op_timeout; }
  obs::PerfRegistry* perf_registry() override { return &perf_registry_; }
  obs::OpTracker* op_tracker() override { return &op_tracker_; }
  ExecPool* exec_pool() override { return &exec_pool_; }
  bool fp_fastpath() const override { return fp_fastpath_; }
  bool restore_assembly() const override { return restore_assembly_; }
  bool recipe_dedup() const override { return recipe_dedup_; }
  FingerprintIndex* fp_index(NodeId node) override;

  // --- topology ---
  const ClusterConfig& config() const { return cfg_; }
  int num_osds() const { return static_cast<int>(osds_.size()); }
  int num_nodes() const { return cfg_.storage_nodes + cfg_.client_nodes; }
  // Client nodes are numbered after storage nodes.
  NodeId client_node(int i = 0) const {
    return cfg_.storage_nodes + (i % std::max(1, cfg_.client_nodes));
  }
  std::vector<Osd*> osds();

  // --- pools ---
  PoolId create_pool(PoolConfig cfg);
  PoolId create_replicated_pool(const std::string& name, int replicas = 2,
                                uint32_t pg_num = 128, bool compress = false);
  PoolId create_ec_pool(const std::string& name, int k = 2, int m = 1,
                        uint32_t pg_num = 128, bool compress = false);

  // Attach `params` (mode, chunk size, watermarks, ...) to metadata_pool,
  // pointing at chunk_pool, and install + start a DedupTier on every OSD.
  void enable_dedup(PoolId metadata_pool, PoolId chunk_pool,
                    DedupTierConfig params);

  DedupTier* tier_of(OsdId osd, PoolId metadata_pool);

  // Aggregate tier stats across all OSDs for a dedup pool.
  DedupTierStats tier_stats(PoolId metadata_pool);

  // --- expansion / rebalancing ---
  // Add a fresh OSD to an existing storage node at runtime.  Placement
  // remaps the minimal straw2 share of PGs to it; recover() then
  // backfills them (the paper's "data rebalancing reuses storage
  // features" claim, exercised in tests).
  OsdId add_osd(NodeId host, double weight = 1.0);

  // --- failure & recovery ---
  void fail_osd(OsdId id);            // down; ops answered kUnavailable
  void crash_osd(OsdId id);           // down; in-flight ops silently lost
  void revive_osd(OsdId id, bool wipe_store);

  // Backfill every object whose acting set has members missing it; runs
  // the scheduler to completion of recovery and returns the virtual-time
  // duration.  `objects_recovered`/`bytes_recovered` out-params optional.
  SimTime recover(uint64_t* objects_recovered = nullptr,
                  uint64_t* bytes_recovered = nullptr);

  // --- dedup orchestration ---
  // Run virtual time until every tier's backlog drains (no dirty objects,
  // no pending derefs), or until `max_wait` elapses.  Returns drained?
  bool drain_dedup(SimTime max_wait = sec(7200));

  // --- stats ---
  ObjectStore::Stats pool_stats(PoolId pool) const;
  uint64_t total_physical_bytes() const;

  // Mirror the scheduler's event-engine tallies into the "sim" registry
  // entity (obs::dump calls this before walking the registry).
  void sync_sim_counters();

  // Refresh every on-demand gauge: sim engine tallies, per-tier backlog /
  // rate-controller posture, per-pool capacity entities, and the cluster-
  // wide "derived" efficiency ratios.  Wire this as the TelemetryEngine
  // presample hook; obs::dump also calls it so one-shot dumps are fresh.
  // Pure reads of simulated state — never advances virtual time.
  void sync_telemetry_gauges();
  void sync_pool_counters();
  void sync_derived_counters();

  // Sum of cumulative CPU busy-ns across storage nodes (for CPU% windows).
  uint64_t storage_cpu_busy_ns() const;
  double storage_cpu_utilization(uint64_t busy_before, SimTime t0,
                                 SimTime t1) const;

 private:
  ClusterConfig cfg_;
  Scheduler sched_;
  // Declared before the OSDs: teardown may still hold kernel tokens in
  // queued op closures, and the pool must outlive every future.
  ExecPool exec_pool_;
  // Observability: declared before the OSDs so entities can register at
  // construction and the registry outlives them on teardown.
  obs::PerfRegistry perf_registry_;
  obs::OpTracker op_tracker_;
  obs::PerfCountersRef sim_pc_;  // "sim" entity; see sync_sim_counters()
  obs::PerfCountersRef derived_pc_;  // "derived"; see sync_derived_counters()
  std::map<PoolId, obs::PerfCountersRef> pool_pcs_;  // "pool.<id>.<name>"
  Network net_;
  OsdMap osdmap_;
  std::vector<std::unique_ptr<CpuModel>> node_cpus_;
  std::vector<std::unique_ptr<Osd>> osds_;
  std::map<OsdId, NodeId> osd_node_;
  // One fingerprint index per storage node, shared by that node's tiers
  // (thread-confined to the node's engine shard; see fingerprint_index.h).
  bool fp_fastpath_;
  bool restore_assembly_;
  bool recipe_dedup_;
  std::vector<std::unique_ptr<FingerprintIndex>> node_fp_indexes_;
};

}  // namespace gdedup
