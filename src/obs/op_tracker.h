#pragma once

// Op tracing in simulated time (Ceph's OpTracker / dump_historic_ops
// analog).
//
// A trace is created where an operation is born (a client submit, a flush
// pipeline launch, a recovery pull), threaded by shared_ptr through the
// async callback chain (OsdOp carries one across message hops), and
// annotated with named spans per stage: chunking, fingerprint, chunk-pool
// put, deref, flush, recovery pull.  Because the callback style here is
// explicit continuation-passing rather than RAII scopes, spans are opened
// with span_begin() (returning an index) and closed with span_end().
//
// The tracker never retains in-flight traces: an op abandoned by a crash
// simply drops its trace when the last closure holding it is destroyed.
// finish() moves a trace into (a) a bounded ring of recently completed
// ops, evicted FIFO, and (b) a bounded "slowest N" board ordered by
// duration (ties broken by op id, so same-seed runs rank identically).
// dump_historic_slow_ops() is the flight-recorder view the fault campaign
// attaches to failure reports.
//
// All timestamps are sim-time nanoseconds supplied by the caller; the
// tracker itself never consults a clock, which keeps it trivially
// deterministic and usable from any layer.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/scheduler.h"

namespace gdedup::obs {

struct TraceSpan {
  std::string stage;
  SimTime begin = 0;
  SimTime end = -1;  // -1 while open
};

class OpTrace {
 public:
  OpTrace(uint64_t id, std::string desc, SimTime start)
      : id_(id), desc_(std::move(desc)), start_(start) {}

  // Open a named stage; returns an index for span_end().  Spans may nest
  // or overlap freely (they are intervals, not a stack).
  size_t span_begin(std::string stage, SimTime now);
  void span_end(size_t idx, SimTime now);
  // Zero-duration marker span.
  void event(std::string stage, SimTime now);

  uint64_t id() const { return id_; }
  const std::string& description() const { return desc_; }
  SimTime start() const { return start_; }
  SimTime finish_time() const { return finish_; }
  // Total latency; -1 while unfinished.
  SimTime duration() const { return finish_ < 0 ? -1 : finish_ - start_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  // "id=12 dur=34.00 us write bench/obj-1 [rpc 0+34.00us; ...]"
  std::string text() const;
  void dump(JsonWriter& w) const;

 private:
  friend class OpTracker;

  uint64_t id_;
  std::string desc_;
  SimTime start_;
  SimTime finish_ = -1;
  std::vector<TraceSpan> spans_;
};

using OpTraceRef = std::shared_ptr<OpTrace>;

class OpTracker {
 public:
  // Bounds for the configurable rings.  Oversized boards would make every
  // finish() pay a large sorted-insert; zero-sized ones would silently
  // drop the flight recorder, so both ends are validated loudly.
  static constexpr size_t kDefaultHistoricCap = 128;
  static constexpr size_t kDefaultSlowCap = 16;
  static constexpr size_t kMaxHistoricCap = 1u << 20;
  static constexpr size_t kMaxSlowCap = 4096;

  explicit OpTracker(size_t historic_cap = kDefaultHistoricCap,
                     size_t slow_cap = kDefaultSlowCap)
      : historic_cap_(historic_cap), slow_cap_(slow_cap) {}

  size_t historic_cap() const { return historic_cap_; }
  size_t slow_cap() const { return slow_cap_; }

  // Resolve the historic-ring cap: `configured` (ClusterConfig, > 0) wins,
  // else the GDEDUP_OPS_HISTORY env var, else kDefaultHistoricCap.
  // Unparseable values warn and fall back to the default; out-of-range
  // values warn and clamp to [1, kMaxHistoricCap] — never a silent
  // truncation.
  static size_t resolve_historic_cap(int configured);
  // Same for the slow board (ClusterConfig only; clamps to
  // [1, kMaxSlowCap]).
  static size_t resolve_slow_cap(int configured);

  // Create a trace.  Never fails; the tracker keeps no reference until
  // finish().
  OpTraceRef start(std::string desc, SimTime now);

  // Record completion.  Null-safe so call sites can pass an optional
  // trace unconditionally.  Double-finish is ignored.
  void finish(const OpTraceRef& t, SimTime now);

  uint64_t started() const { return started_; }
  uint64_t finished() const { return finished_; }

  // Most recent completions, oldest first (bounded by historic_cap).
  const std::deque<OpTraceRef>& historic() const { return historic_; }

  // The n slowest completed ops, slowest first; ties by ascending id.
  std::vector<OpTraceRef> dump_historic_slow_ops(size_t n) const;

  // Deterministic flight-recorder tail for plain-text reports.
  std::string slow_ops_text(size_t n) const;

  void dump(JsonWriter& w, size_t slow_n = 16) const;

 private:
  // start()/finish() run on whichever shard hosts the op; the lock keeps
  // the rings exact during parallel windows (uncontended in serial runs).
  // Trace ids may interleave differently across thread schedules — they
  // are debugging handles, never digested.
  mutable std::mutex mu_;
  size_t historic_cap_;
  size_t slow_cap_;
  uint64_t next_id_ = 1;
  uint64_t started_ = 0;
  uint64_t finished_ = 0;
  std::deque<OpTraceRef> historic_;
  std::vector<OpTraceRef> slow_;  // sorted: duration desc, id asc
};

}  // namespace gdedup::obs
