#include "obs/json.h"

#include <cassert>
#include <cstdio>

namespace gdedup::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_element() {
  if (pending_key_) {
    // Value follows "key": on the same line.
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // top-level document value
  Frame& f = stack_.back();
  if (f.elems > 0) out_ += ',';
  out_ += '\n';
  indent();
  f.elems++;
}

void JsonWriter::begin_object() {
  before_element();
  out_ += '{';
  stack_.push_back({false, 0});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().is_array);
  const bool empty = stack_.back().elems == 0;
  stack_.pop_back();
  if (!empty) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_element();
  out_ += '[';
  stack_.push_back({true, 0});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().is_array);
  const bool empty = stack_.back().elems == 0;
  stack_.pop_back();
  if (!empty) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && !stack_.back().is_array && !pending_key_);
  before_element();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& s) {
  before_element();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(uint64_t v) {
  before_element();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(int64_t v) {
  before_element();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(double v) {
  before_element();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  before_element();
  out_ += v ? "true" : "false";
}

void JsonWriter::raw(const std::string& json_fragment) {
  before_element();
  out_ += json_fragment;
}

}  // namespace gdedup::obs
