#pragma once

// Ceph-style perf counters.
//
// Every instrumented entity (OSD, dedup tier engine, client) declares a
// contiguous enum range [l_foo_first .. l_foo_last], builds a PerfCounters
// with one named entry per index via PerfCountersBuilder, and registers it
// in the cluster's PerfRegistry under a unique entity name ("osd.3",
// "tier.osd3.pool1", "client.node4.1").  Counter access is an O(1) array
// index; names only matter at dump time.
//
// Naming scheme (see DESIGN.md §7): entity names are dot-separated
// hierarchies, counter names are lower_snake_case nouns; histograms end in
// "_lat" (nanosecond samples) or "_bytes".  Dumps iterate entities in
// lexicographic order and counters in declaration order so the JSON output
// is byte-stable.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/json.h"

namespace gdedup::obs {

enum class CounterType {
  kCounter,    // monotonically increasing uint64
  kGauge,      // instantaneous int64, set/inc/dec
  kHistogram,  // log-bucketed value distribution (common/histogram.h)
};

class PerfCounters {
 public:
  const std::string& name() const { return name_; }

  void inc(int idx, uint64_t by = 1);
  void dec(int idx, int64_t by = 1);       // gauges only
  void set_gauge(int idx, int64_t v);
  void record(int idx, uint64_t sample);   // histograms only

  uint64_t get(int idx) const;             // counter value / gauge as u64
  int64_t gauge(int idx) const;
  const Histogram* histogram(int idx) const;  // nullptr if not a histogram

  // Number of declared entries.
  size_t size() const { return entries_.size(); }

  // Entry iteration for samplers: valid indices are
  // [first_index(), last_index()) in declaration order.
  int first_index() const { return first_ + 1; }
  int last_index() const {
    return first_ + 1 + static_cast<int>(entries_.size());
  }
  const std::string& entry_name(int idx) const { return at(idx).name; }
  CounterType entry_type(int idx) const { return at(idx).type; }

  // Declaration index of the entry called `name`, or -1.  O(entries) — the
  // telemetry engine caches the result per entity.
  int index_of(const std::string& name) const;

  // Emit {"name": value, ..., "x_lat": {histogram json}} in declaration
  // order.
  void dump(JsonWriter& w) const;

 private:
  friend class PerfCountersBuilder;

  struct Entry {
    std::string name;
    CounterType type = CounterType::kCounter;
    uint64_t count = 0;
    int64_t gauge = 0;
    std::unique_ptr<Histogram> hist;
  };

  Entry& at(int idx);
  const Entry& at(int idx) const;

  std::string name_;
  int first_ = 0;  // enum value of the "first" sentinel; entries start at +1
  std::vector<Entry> entries_;
};

using PerfCountersRef = std::shared_ptr<PerfCounters>;

class PerfCountersBuilder {
 public:
  // `first` and `last` are the sentinel enum values bracketing the range;
  // indices (first, last) exclusive must each be declared exactly once.
  PerfCountersBuilder(std::string entity_name, int first, int last);

  void add_counter(int idx, std::string name);
  void add_gauge(int idx, std::string name);
  void add_histogram(int idx, std::string name);

  PerfCountersRef create();

 private:
  std::unique_ptr<PerfCounters> pc_;
  int last_;
};

// Cluster-wide registry.  Entity names are unique; re-adding a name
// replaces the previous instance (an OSD revived after a crash keeps its
// counters because the DedupTier/Osd objects survive, but a rebuilt entity
// simply takes over the slot).
class PerfRegistry {
 public:
  void add(PerfCountersRef pc);
  void remove(const std::string& entity_name);
  PerfCountersRef get(const std::string& entity_name) const;

  // "base", then "base.2", "base.3", ... — for entities without a natural
  // unique id (e.g. several clients on one node).  Deterministic given a
  // deterministic construction order.
  std::string unique_name(const std::string& base);

  size_t num_entities() const { return by_name_.size(); }
  size_t num_counters() const;  // total declared entries across entities

  // Entities sorted by name.
  std::vector<PerfCountersRef> sorted() const;

  // {"entity": {counters...}, ...} sorted by entity name.
  void dump(JsonWriter& w) const;

 private:
  std::map<std::string, PerfCountersRef> by_name_;
  std::map<std::string, int> name_seq_;
};

}  // namespace gdedup::obs
