#include "obs/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace gdedup::obs {

namespace {

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// Quantile sub-metrics batched into one Histogram::percentiles() walk;
// returns a negative value for non-quantile subs.
double quantile_of(const std::string& sub) {
  if (sub == "p50") return 0.50;
  if (sub == "p90") return 0.90;
  if (sub == "p99") return 0.99;
  if (sub == "p999") return 0.999;
  return -1.0;
}

bool is_known_sub(const std::string& sub) {
  return quantile_of(sub) >= 0.0 || sub == "count" || sub == "mean" ||
         sub == "min" || sub == "max";
}

}  // namespace

std::string format_sample(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

TelemetryEngine::SeriesState::SeriesState(SeriesSpec s, size_t cap)
    : spec(std::move(s)), ring(cap) {
  const size_t dot = spec.counter.rfind('.');
  if (dot != std::string::npos && is_known_sub(spec.counter.substr(dot + 1))) {
    counter_base = spec.counter.substr(0, dot);
    sub = spec.counter.substr(dot + 1);
  } else {
    counter_base = spec.counter;
  }
}

TelemetryEngine::TelemetryEngine(Scheduler* sched, PerfRegistry* registry,
                                 TelemetryConfig cfg)
    : sched_(sched), registry_(registry), cfg_(cfg) {
  assert(sched_ != nullptr && registry_ != nullptr);
  assert(cfg_.interval > 0);
}

TelemetryEngine::~TelemetryEngine() { stop(); }

void TelemetryEngine::add_series(SeriesSpec spec) {
  assert(by_name_.find(spec.name) == by_name_.end() &&
         "duplicate series name");
  by_name_[spec.name] = series_.size();
  series_.emplace_back(std::move(spec), cfg_.ring_capacity);
}

void TelemetryEngine::add_default_series() {
  const auto S = [this](const char* name, const char* prefix,
                        const char* counter, SeriesAgg agg, bool rate) {
    add_series(SeriesSpec{name, prefix, counter, agg, rate});
  };
  // Client-visible traffic and tails.
  S("client_ops", "client.", "ops", SeriesAgg::kSum, true);
  S("client_bytes_written", "client.", "bytes_written", SeriesAgg::kSum, true);
  S("client_bytes_read", "client.", "bytes_read", SeriesAgg::kSum, true);
  S("client_errors", "client.", "errors", SeriesAgg::kSum, false);
  S("client_write_p99_ns", "client.", "write_lat.p99", SeriesAgg::kMax, false);
  S("client_read_p99_ns", "client.", "read_lat.p99", SeriesAgg::kMax, false);
  S("client_read_p999_ns", "client.", "read_lat.p999", SeriesAgg::kMax, false);
  // OSD data path, recovery traffic, metadata I/O.
  S("osd_client_ops", "osd.", "client_ops", SeriesAgg::kSum, true);
  S("osd_pulls", "osd.", "pulls", SeriesAgg::kSum, true);
  S("osd_pushes", "osd.", "pushes", SeriesAgg::kSum, true);
  S("osd_chunk_puts", "osd.", "chunk_puts", SeriesAgg::kSum, true);
  S("osd_chunk_created", "osd.", "chunk_created", SeriesAgg::kSum, false);
  S("osd_chunk_dedup_hits", "osd.", "chunk_dedup_hits", SeriesAgg::kSum,
    false);
  S("osd_chunk_derefs", "osd.", "chunk_derefs", SeriesAgg::kSum, true);
  S("osd_chunks_reclaimed", "osd.", "chunks_reclaimed", SeriesAgg::kSum, true);
  S("osd_meta_bytes_read", "osd.", "meta_bytes_read", SeriesAgg::kSum, true);
  S("osd_meta_bytes_written", "osd.", "meta_bytes_written", SeriesAgg::kSum,
    true);
  S("osd_op_w_p99_ns", "osd.", "op_w_lat.p99", SeriesAgg::kMax, false);
  S("osd_op_r_p99_ns", "osd.", "op_r_lat.p99", SeriesAgg::kMax, false);
  // Dedup tier: backlog, rate-controller posture, flush/read pipelines.
  S("tier_backlog", "tier.", "backlog", SeriesAgg::kSum, false);
  S("tier_backlog_derefs", "tier.", "backlog_derefs", SeriesAgg::kSum, false);
  S("tier_rate_credits_x1000", "tier.", "rate_credits_x1000", SeriesAgg::kSum,
    false);
  S("tier_rate_demand", "tier.", "rate_demand", SeriesAgg::kMax, false);
  S("tier_rate_regime", "tier.", "rate_regime", SeriesAgg::kMax, false);
  S("tier_writes", "tier.", "writes", SeriesAgg::kSum, true);
  S("tier_chunks_flushed", "tier.", "chunks_flushed", SeriesAgg::kSum, true);
  S("tier_flush_bytes", "tier.", "flush_bytes", SeriesAgg::kSum, true);
  S("tier_derefs", "tier.", "derefs", SeriesAgg::kSum, true);
  S("tier_sha_computed", "tier.", "sha_computed", SeriesAgg::kSum, true);
  S("tier_sha_avoided", "tier.", "sha_avoided", SeriesAgg::kSum, false);
  S("tier_read_logical_bytes", "tier.", "read_logical_bytes", SeriesAgg::kSum,
    true);
  S("tier_read_chunk_objects", "tier.", "read_chunk_objects", SeriesAgg::kSum,
    true);
  S("tier_read_chunk_rpcs", "tier.", "read_chunk_rpcs", SeriesAgg::kSum, true);
  S("tier_asm_hits", "tier.", "asm_hits", SeriesAgg::kSum, false);
  // Recipe metadata dedup + batched omap path (counters move only in
  // recipe mode; the meta byte counters move in both modes).
  S("tier_recipe_chunks", "tier.", "recipe_chunks", SeriesAgg::kSum, false);
  S("tier_recipe_hits", "tier.", "recipe_hits", SeriesAgg::kSum, false);
  S("tier_recipe_inline_tail", "tier.", "recipe_inline_tail", SeriesAgg::kSum,
    false);
  S("tier_meta_txns", "tier.", "meta_txns", SeriesAgg::kSum, true);
  S("tier_meta_bytes_actual", "tier.", "meta_bytes_actual", SeriesAgg::kSum,
    true);
  // Bloom rebuild observability (node-shared index mirrored into every
  // tier entity on the node: kMax avoids double-counting).
  S("tier_bloom_rebuilds", "tier.", "bloom_rebuilds", SeriesAgg::kMax, false);
  S("tier_bloom_rebuild_ns", "tier.", "bloom_rebuild_ns", SeriesAgg::kMax,
    false);
  S("tier_hot_skips", "tier.", "hot_skips", SeriesAgg::kSum, false);
  S("tier_evictions", "tier.", "evictions", SeriesAgg::kSum, false);
  S("tier_write_p99_ns", "tier.", "write_lat.p99", SeriesAgg::kMax, false);
  S("tier_write_p999_ns", "tier.", "write_lat.p999", SeriesAgg::kMax, false);
  S("tier_read_p99_ns", "tier.", "read_lat.p99", SeriesAgg::kMax, false);
  S("tier_flush_p99_ns", "tier.", "flush_lat.p99", SeriesAgg::kMax, false);
  // Pool capacity gauges and the derived efficiency ratios (both mirrored
  // into the registry by Cluster::sync_telemetry_gauges()).
  S("pool_objects", "pool.", "objects", SeriesAgg::kSum, false);
  S("pool_logical_bytes", "pool.", "logical_bytes", SeriesAgg::kSum, false);
  S("pool_stored_data_bytes", "pool.", "stored_data_bytes", SeriesAgg::kSum,
    false);
  S("pool_physical_bytes", "pool.", "physical_bytes", SeriesAgg::kSum, false);
  S("derived_dedup_ratio_ppm", "derived", "dedup_ratio_ppm", SeriesAgg::kMax,
    false);
  S("derived_read_amp_objs_per_gb", "derived", "read_amp_objs_per_gb",
    SeriesAgg::kMax, false);
  S("derived_asm_hit_ppm", "derived", "asm_hit_ppm", SeriesAgg::kMax, false);
  S("derived_meta_read_amp_ppm", "derived", "meta_read_amp_ppm",
    SeriesAgg::kMax, false);
  S("derived_sha_avoided_ppm", "derived", "sha_avoided_ppm", SeriesAgg::kMax,
    false);
  S("derived_meta_dedup_ratio_ppm", "derived", "meta_dedup_ratio_ppm",
    SeriesAgg::kMax, false);
}

void TelemetryEngine::start() {
  if (running_) return;
  running_ = true;
  schedule_tick();
}

void TelemetryEngine::stop() {
  running_ = false;
  if (tick_pending_) {
    sched_->cancel(tick_event_);
    tick_pending_ = false;
  }
}

void TelemetryEngine::schedule_tick() {
  // at() from control-plane code or from inside a global-lane event lands
  // on the global control lane, so the sampler always executes with every
  // shard synchronized at the sample timestamp.
  tick_event_ = sched_->at(sched_->now() + cfg_.interval, [this] { on_tick(); });
  tick_pending_ = true;
}

void TelemetryEngine::on_tick() {
  tick_pending_ = false;
  if (!running_) return;
  sample_now();
  if (running_) schedule_tick();
}

double TelemetryEngine::read_value(SeriesState& st, const PerfCounters& pc,
                                   int idx) const {
  switch (pc.entry_type(idx)) {
    case CounterType::kGauge:
      return static_cast<double>(pc.gauge(idx));
    case CounterType::kCounter:
      return static_cast<double>(pc.get(idx));
    case CounterType::kHistogram: {
      const Histogram* h = pc.histogram(idx);
      if (h == nullptr) return 0.0;
      if (st.sub == "mean") return h->mean();
      if (st.sub == "min") return static_cast<double>(h->min());
      if (st.sub == "max") return static_cast<double>(h->max());
      // "count", or a bare histogram reference without sub-metric.
      return static_cast<double>(h->count());
    }
  }
  return 0.0;
}

void TelemetryEngine::sample_now() {
  const SimTime now = sched_->now();
  if (presample_) presample_(now);

  const auto entities = registry_->sorted();
  const size_t n = series_.size();
  std::vector<double> sum(n, 0.0), mx(n, 0.0);
  std::vector<size_t> matched(n, 0);
  const auto accum = [&](size_t i, double v) {
    sum[i] += v;
    if (matched[i] == 0 || v > mx[i]) mx[i] = v;
    matched[i]++;
  };

  // Group quantile series by (entity_prefix, histogram) so each entity's
  // histogram is walked once per tick no matter how many quantiles target
  // it (Histogram::percentiles batches the ranks into one pass).
  struct QGroup {
    std::string prefix;
    std::string base;
    std::vector<double> qs;
    std::vector<size_t> specs;
    std::unordered_map<std::string, int>* cache;
  };
  std::vector<QGroup> groups;
  for (size_t i = 0; i < n; i++) {
    SeriesState& st = series_[i];
    const double q = quantile_of(st.sub);
    if (q < 0.0) continue;
    QGroup* g = nullptr;
    for (QGroup& cand : groups) {
      if (cand.prefix == st.spec.entity_prefix && cand.base == st.counter_base) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(
          {st.spec.entity_prefix, st.counter_base, {}, {}, &st.index_cache});
      g = &groups.back();
    }
    g->qs.push_back(q);
    g->specs.push_back(i);
  }

  for (const PerfCountersRef& pc : entities) {
    const std::string& entity = pc->name();
    for (size_t i = 0; i < n; i++) {
      SeriesState& st = series_[i];
      if (quantile_of(st.sub) >= 0.0) continue;  // handled via groups
      if (!has_prefix(entity, st.spec.entity_prefix)) continue;
      auto it = st.index_cache.find(entity);
      if (it == st.index_cache.end()) {
        it = st.index_cache.emplace(entity, pc->index_of(st.counter_base))
                 .first;
      }
      if (it->second < 0) continue;
      accum(i, read_value(st, *pc, it->second));
    }
    for (QGroup& g : groups) {
      if (!has_prefix(entity, g.prefix)) continue;
      auto it = g.cache->find(entity);
      if (it == g.cache->end()) {
        it = g.cache->emplace(entity, pc->index_of(g.base)).first;
      }
      const int idx = it->second;
      if (idx < 0 || pc->entry_type(idx) != CounterType::kHistogram) continue;
      const Histogram* h = pc->histogram(idx);
      if (h == nullptr) continue;
      const std::vector<uint64_t> ps = h->percentiles(g.qs);
      for (size_t k = 0; k < g.specs.size(); k++) {
        accum(g.specs[k], static_cast<double>(ps[k]));
      }
    }
  }

  std::vector<double> frame(n, 0.0);
  for (size_t i = 0; i < n; i++) {
    switch (series_[i].spec.agg) {
      case SeriesAgg::kSum:
        frame[i] = sum[i];
        break;
      case SeriesAgg::kMax:
        frame[i] = mx[i];
        break;
      case SeriesAgg::kMean:
        frame[i] = matched[i] > 0
                       ? sum[i] / static_cast<double>(matched[i])
                       : 0.0;
        break;
    }
    series_[i].ring.push(frame[i]);
  }

  if (cfg_.record_timeline) {
    if (frames_.size() < cfg_.max_frames) {
      frame_times_.push_back(now);
      frames_.push_back(std::move(frame));
    } else {
      frames_dropped_++;
    }
  }
  ticks_++;
  if (post_sample_) post_sample_(now, ticks_);
}

const TimeSeries* TelemetryEngine::series(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &series_[it->second].ring;
}

double TelemetryEngine::rate(const std::string& name, int span) const {
  const TimeSeries* s = series(name);
  if (s == nullptr || s->size() < 2 || span < 1) return 0.0;
  const size_t back = std::min<size_t>(static_cast<size_t>(span),
                                       s->size() - 1);
  const double dt =
      static_cast<double>(cfg_.interval) * static_cast<double>(back) / 1e9;
  if (dt <= 0.0) return 0.0;
  return (s->back(0) - s->back(back)) / dt;
}

std::vector<std::string> TelemetryEngine::columns() const {
  std::vector<std::string> out;
  for (const SeriesState& st : series_) {
    out.push_back(st.spec.name);
    if (st.spec.rate) out.push_back(st.spec.name + "_rate");
  }
  return out;
}

std::string TelemetryEngine::timeline_jsonl() const {
  std::string out;
  char buf[64];
  for (size_t f = 0; f < frames_.size(); f++) {
    out += "{\"tick\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(f + 1));
    out += buf;
    out += ",\"t_ns\":";
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(frame_times_[f]));
    out += buf;
    const double dt =
        f > 0 ? static_cast<double>(frame_times_[f] - frame_times_[f - 1]) /
                    1e9
              : 0.0;
    for (size_t i = 0; i < series_.size(); i++) {
      const SeriesState& st = series_[i];
      out += ",\"";
      out += st.spec.name;
      out += "\":";
      out += format_sample(frames_[f][i]);
      if (st.spec.rate) {
        const double r =
            dt > 0.0 ? (frames_[f][i] - frames_[f - 1][i]) / dt : 0.0;
        out += ",\"";
        out += st.spec.name;
        out += "_rate\":";
        out += format_sample(r);
      }
    }
    out += "}\n";
  }
  return out;
}

std::string TelemetryEngine::timeline_csv() const {
  std::string out = "tick,t_s";
  for (const std::string& c : columns()) {
    out += ',';
    out += c;
  }
  out += '\n';
  char buf[64];
  for (size_t f = 0; f < frames_.size(); f++) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(f + 1));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",%.3f",
                  static_cast<double>(frame_times_[f]) / 1e9);
    out += buf;
    const double dt =
        f > 0 ? static_cast<double>(frame_times_[f] - frame_times_[f - 1]) /
                    1e9
              : 0.0;
    for (size_t i = 0; i < series_.size(); i++) {
      const SeriesState& st = series_[i];
      out += ',';
      out += format_sample(frames_[f][i]);
      if (st.spec.rate) {
        const double r =
            dt > 0.0 ? (frames_[f][i] - frames_[f - 1][i]) / dt : 0.0;
        out += ',';
        out += format_sample(r);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace gdedup::obs
