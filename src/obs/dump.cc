#include "obs/dump.h"

#include <cstdio>

#include "dedup/tier.h"
#include "obs/json.h"
#include "obs/op_tracker.h"
#include "obs/perf_counters.h"
#include "osd/osd.h"
#include "rados/cluster.h"

namespace gdedup::obs {

std::string dump(Cluster& cluster, size_t slow_ops) {
  // Mirror every on-demand gauge (event engine, tier backlog / rate
  // posture, pool capacity, derived efficiency ratios) so the counters
  // section carries them as first-class entities.
  cluster.sync_telemetry_gauges();

  JsonWriter w;
  w.begin_object();
  w.kv("sim_time_ns", static_cast<int64_t>(cluster.sched().now()));

  w.key("counters");
  cluster.perf_registry()->dump(w);

  // Per-pool aggregate store stats (pool ids ascend; names disambiguate).
  w.key("pools");
  w.begin_object();
  for (PoolId pid : cluster.osdmap().pool_ids()) {
    const PoolConfig& pc = cluster.osdmap().pool(pid);
    w.key("pool." + std::to_string(pid) + "." + pc.name);
    const ObjectStore::Stats st = cluster.pool_stats(pid);
    w.begin_object();
    w.kv("objects", st.objects);
    w.kv("logical_bytes", st.logical_bytes);
    w.kv("stored_data_bytes", st.stored_data_bytes);
    w.kv("xattr_bytes", st.xattr_bytes);
    w.kv("omap_bytes", st.omap_bytes);
    w.kv("physical_bytes", st.physical_bytes);
    w.end_object();
  }
  w.end_object();

  w.key("ops");
  cluster.op_tracker()->dump(w, slow_ops);

  w.end_object();
  return w.str() + "\n";
}

std::string summary_line(Cluster& cluster) {
  const PerfRegistry& reg = *cluster.perf_registry();
  const OpTracker& trk = *cluster.op_tracker();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "obs: entities=%zu counters=%zu ops=%llu/%llu",
                reg.num_entities(), reg.num_counters(),
                static_cast<unsigned long long>(trk.started()),
                static_cast<unsigned long long>(trk.finished()));
  std::string out = buf;

  // Every ratio goes through safe_div so an idle cluster prints 0.000
  // rather than nan/inf (or silently dropping the segment).
  auto safe_div = [](uint64_t num, uint64_t den) {
    return den > 0
               ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
  };

  // Fingerprint fast path, chunk-map metadata traffic, and restore-path
  // read amplification, summed across entities by name prefix (the
  // registry is the source of truth).
  uint64_t sha_computed = 0, sha_avoided = 0, memo_hits = 0;
  uint64_t meta_read = 0, meta_written = 0;
  uint64_t meta_baseline = 0, meta_actual = 0;
  uint64_t recipe_chunks = 0, recipe_hits = 0;
  uint64_t read_bytes = 0, read_objects = 0, read_rpcs = 0;
  uint64_t asm_hits = 0, remote_chunks = 0;
  for (const auto& pc : reg.sorted()) {
    if (pc->name().rfind("tier.", 0) == 0) {
      sha_computed += pc->get(l_tier_sha_computed);
      sha_avoided += pc->get(l_tier_sha_avoided);
      memo_hits += pc->get(l_tier_fingerprint_cache_hits);
      read_bytes += pc->get(l_tier_read_logical_bytes);
      read_objects += pc->get(l_tier_read_chunk_objects);
      read_rpcs += pc->get(l_tier_read_chunk_rpcs);
      asm_hits += pc->get(l_tier_asm_hits);
      remote_chunks += pc->get(l_tier_redirected_read_chunks);
      meta_baseline += pc->get(l_tier_meta_bytes_baseline);
      meta_actual += pc->get(l_tier_meta_bytes_actual);
      recipe_chunks += pc->get(l_tier_recipe_chunks);
      recipe_hits += pc->get(l_tier_recipe_hits);
    } else if (pc->name().rfind("osd.", 0) == 0) {
      meta_read += pc->get(l_osd_meta_bytes_read);
      meta_written += pc->get(l_osd_meta_bytes_written);
    }
  }
  const uint64_t fp_total = sha_computed + sha_avoided + memo_hits;
  uint64_t client_bytes = 0;
  for (PoolId pid : cluster.osdmap().pool_ids()) {
    client_bytes += cluster.pool_stats(pid).logical_bytes;
  }
  std::snprintf(buf, sizeof(buf),
                " sha_avoided=%.3f meta_read_amp=%.4f meta_kb=%llu/%llu",
                safe_div(sha_avoided + memo_hits, fp_total),
                safe_div(meta_read, client_bytes),
                static_cast<unsigned long long>(meta_read / 1024),
                static_cast<unsigned long long>(meta_written / 1024));
  out += buf;
  // meta_dedup: bytes of fixed-format metadata one actually-written byte
  // stands in for (1.0 = parity; recipe mode drives it up).  recipes:
  // recipe chunks created / deduplicated against an existing one.
  std::snprintf(buf, sizeof(buf), " meta_dedup=%.2f recipes=%llu/%llu",
                safe_div(meta_baseline, meta_actual),
                static_cast<unsigned long long>(recipe_chunks),
                static_cast<unsigned long long>(recipe_hits));
  out += buf;
  // read_amp: distinct chunk-pool objects touched per logical MB read
  // (Section 3.4's restore-locality figure of merit); asm_hit: fraction
  // of remote chunk reads served from the forward-assembly window.
  std::snprintf(buf, sizeof(buf), " read_amp=%.2f/MB asm_hit=%.3f rpc=%llu",
                read_bytes > 0 ? static_cast<double>(read_objects) /
                                     (static_cast<double>(read_bytes) /
                                      (1024.0 * 1024.0))
                               : 0.0,
                safe_div(asm_hits, remote_chunks),
                static_cast<unsigned long long>(read_rpcs));
  out += buf;
  auto slow = trk.dump_historic_slow_ops(1);
  if (!slow.empty()) {
    out += " slowest: ";
    out += slow[0]->text();
  }
  return out;
}

}  // namespace gdedup::obs
