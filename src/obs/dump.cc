#include "obs/dump.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/op_tracker.h"
#include "obs/perf_counters.h"
#include "rados/cluster.h"

namespace gdedup::obs {

std::string dump(Cluster& cluster, size_t slow_ops) {
  cluster.sync_sim_counters();  // event-engine gauges are mirrored on demand

  JsonWriter w;
  w.begin_object();
  w.kv("sim_time_ns", static_cast<int64_t>(cluster.sched().now()));

  w.key("counters");
  cluster.perf_registry()->dump(w);

  // Per-pool aggregate store stats (pool ids ascend; names disambiguate).
  w.key("pools");
  w.begin_object();
  for (PoolId pid : cluster.osdmap().pool_ids()) {
    const PoolConfig& pc = cluster.osdmap().pool(pid);
    w.key("pool." + std::to_string(pid) + "." + pc.name);
    const ObjectStore::Stats st = cluster.pool_stats(pid);
    w.begin_object();
    w.kv("objects", st.objects);
    w.kv("logical_bytes", st.logical_bytes);
    w.kv("stored_data_bytes", st.stored_data_bytes);
    w.kv("xattr_bytes", st.xattr_bytes);
    w.kv("omap_bytes", st.omap_bytes);
    w.kv("physical_bytes", st.physical_bytes);
    w.end_object();
  }
  w.end_object();

  w.key("ops");
  cluster.op_tracker()->dump(w, slow_ops);

  w.end_object();
  return w.str() + "\n";
}

std::string summary_line(Cluster& cluster) {
  const PerfRegistry& reg = *cluster.perf_registry();
  const OpTracker& trk = *cluster.op_tracker();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "obs: entities=%zu counters=%zu ops=%llu/%llu",
                reg.num_entities(), reg.num_counters(),
                static_cast<unsigned long long>(trk.started()),
                static_cast<unsigned long long>(trk.finished()));
  std::string out = buf;
  auto slow = trk.dump_historic_slow_ops(1);
  if (!slow.empty()) {
    out += " slowest: ";
    out += slow[0]->text();
  }
  return out;
}

}  // namespace gdedup::obs
