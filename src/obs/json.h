#pragma once

// Deterministic streaming JSON writer for introspection dumps.
//
// The whole observability layer promises byte-identical output for the
// same seed, so the writer pins down everything the C++ standard leaves
// loose: keys are emitted in the order the caller provides them (callers
// iterate sorted containers), doubles always print as "%.3f", and the
// pretty-printing (2-space indent, newline placement) is fixed.  No
// locale-dependent formatting anywhere.

#include <cstdint>
#include <string>
#include <vector>

namespace gdedup::obs {

// Escape for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  JsonWriter() = default;

  // Containers.  Call key() first when inside an object.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(const std::string& k);

  // Scalars.
  void value(const std::string& s);
  void value(const char* s);
  void value(uint64_t v);
  void value(int64_t v);
  void value(int v) { value(static_cast<int64_t>(v)); }
  void value(double v);
  void value(bool v);

  // Splice a pre-serialized JSON fragment (e.g. Histogram::json()) as one
  // value; the caller guarantees it is valid JSON.
  void raw(const std::string& json_fragment);

  // key + scalar in one call.
  template <typename T>
  void kv(const std::string& k, T v) {
    key(k);
    value(v);
  }
  void kv_raw(const std::string& k, const std::string& fragment) {
    key(k);
    raw(fragment);
  }

  // Finished document.  Valid once every container is closed.
  const std::string& str() const { return out_; }

 private:
  struct Frame {
    bool is_array;
    int elems = 0;
  };

  void before_element();  // comma / newline / indent bookkeeping
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace gdedup::obs
