#pragma once

// Whole-cluster introspection dump.
//
// obs::dump(cluster) walks the cluster's perf registry, pool stats and op
// tracker and emits one deterministic JSON document: same seed, same
// workload => byte-identical output (the scheduler is virtual-time, the
// registry iterates sorted, and the JSON writer pins all formatting).
// Consumed by the perf_dump example, the fault campaign's failure reports
// and the bench harnesses.
//
// Declared here, implemented in dump.cc which is compiled into
// gdedup_rados (it needs the full Cluster definition; the rest of obs
// stays independent of the upper layers).

#include <cstddef>
#include <string>

namespace gdedup {
class Cluster;
}

namespace gdedup::obs {

// Full document: sim time, per-entity counters, per-pool store stats, op
// tracker summary with the `slow_ops` slowest traces.
std::string dump(Cluster& cluster, size_t slow_ops = 16);

// One-line digest for bench tables / logs:
// "obs: entities=N counters=M ops=started/finished slowest=<dur> <desc>".
std::string summary_line(Cluster& cluster);

}  // namespace gdedup::obs
