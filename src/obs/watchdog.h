#pragma once

// Health watchdog over the telemetry engine (DESIGN.md §13).
//
// A Watchdog evaluates declarative HealthRules against the engine's ring
// series after every sampling tick and keeps a deterministic incident log.
// Rules are edge-triggered with hysteresis: an incident opens only after
// `min_consecutive` consecutive unhealthy ticks and closes (is marked
// resolved) after the same number of consecutive healthy ticks, so a
// metric oscillating around its threshold produces one incident, not one
// per tick.
//
// When an incident opens, the OpTracker slow-op flight recorder tail is
// attached verbatim.  The tail contains op-trace ids, which are assigned
// in wall-clock dispatch order across parallel shard workers — so the
// *tail text* is byte-reproducible only under serial execution, while
// everything else about an incident (rule, tick, value, threshold) is a
// pure function of virtual time.  incidents_json(with_tail=false) is the
// parallel-safe form; comparisons across shard/thread counts must use it.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/op_tracker.h"
#include "obs/timeseries.h"

namespace gdedup::obs {

enum class RuleKind {
  // Latest sample of `series` > threshold.
  kAbove,
  // Mean per-second rate of `series` over `window` intervals > threshold
  // (after `scale`).
  kRateAbove,
  // `series` is non-decreasing across the last `window` intervals AND the
  // total growth over that window >= threshold.  Catches backlogs that
  // climb without ever draining; a healthy backlog that plateaus at zero
  // growth stays silent.
  kGrowth,
  // rate(series) / rate(series_b) * scale > threshold, evaluated only when
  // the denominator rate >= min_denominator (avoids 0/0 flapping on idle).
  kRatioAbove,
  // User probe function, called every `probe_every` ticks; value >
  // threshold is unhealthy.  Lets callers wire cluster-level checks (e.g.
  // the PR 2 refcount-conservation walk) without obs depending on dedup.
  kProbe,
};

struct HealthRule {
  std::string name;
  RuleKind kind = RuleKind::kAbove;
  std::string series;    // engine series name
  std::string series_b;  // denominator series for kRatioAbove
  double threshold = 0.0;
  double scale = 1.0;
  int window = 8;           // intervals for kGrowth / rate spans
  int min_consecutive = 3;  // unhealthy ticks before an incident opens
  double min_denominator = 0.0;
  std::function<double(SimTime)> probe;
  int probe_every = 1;
};

struct Incident {
  std::string rule;
  uint64_t tick = 0;  // engine tick that opened the incident
  SimTime t = 0;
  double value = 0.0;
  double threshold = 0.0;
  std::string flight_recorder;  // slow-op tail at open (may be empty)
  int64_t resolved_tick = -1;   // -1 while still open
  SimTime resolved_t = -1;
};

class Watchdog {
 public:
  // `tracker` may be null (no flight-recorder tails then).
  explicit Watchdog(TelemetryEngine* engine, OpTracker* tracker = nullptr);

  void add_rule(HealthRule rule);
  // The generic rule set over add_default_series() names: dedup/deref
  // backlog growth, RateController high-watermark dwell, recovery
  // interference, and read-amplification regression.  Thresholds are
  // conservative: quiet on a healthy rate-controlled run, loud when the
  // controller is misconfigured (see tests/test_telemetry.cc).
  void add_default_rules();
  size_t num_rules() const { return rules_.size(); }

  // Registers this watchdog as the engine's post-sample hook.
  void arm();
  // Evaluate every rule against the latest samples (called by the engine
  // after each tick once armed).
  void on_tick(SimTime now, uint64_t tick);

  const std::vector<Incident>& incidents() const { return incidents_; }
  size_t open_incidents() const;

  // Deterministic incident log.  With `with_tail` the flight-recorder text
  // is included (serial-execution reproducibility only; see header note).
  std::string log_text(bool with_tail = true) const;
  void incidents_json(JsonWriter& w, bool with_tail = false) const;

 private:
  struct RuleState {
    int unhealthy_streak = 0;
    int healthy_streak = 0;
    bool firing = false;
    size_t open_idx = 0;
    double last_probe = 0.0;
  };

  // Returns the rule's current value and whether it is unhealthy.
  bool evaluate(const HealthRule& r, RuleState& st, SimTime now,
                uint64_t tick, double* value) const;

  TelemetryEngine* engine_;
  OpTracker* tracker_;
  std::vector<HealthRule> rules_;
  std::vector<RuleState> states_;
  std::vector<Incident> incidents_;
};

}  // namespace gdedup::obs
