#pragma once

// Deterministic time-series telemetry engine (DESIGN.md §13).
//
// A TelemetryEngine samples the PerfRegistry on a fixed virtual-time
// cadence.  The sampling tick is a *control-lane* sim event: it executes
// with every shard synchronized at one global timestamp, reads counters,
// and re-arms itself — it never mutates simulated state, issues I/O, or
// advances any clock beyond what the workload already drives.  That is the
// determinism contract: telemetry is *reported, never digested*, so the
// DeterminismDigest is byte-identical with sampling on or off at any
// GDEDUP_SIM_SHARDS / GDEDUP_EXEC_THREADS setting, and the timeline
// itself is byte-identical run-to-run for a fixed seed (it contains only
// virtual-time-deterministic values — no wall clocks, no op-trace ids,
// and no host-scheduling-dependent "sim" engine counters).
//
// Rather than ring-buffering every counter of every entity (~1.2k series
// on a 16-OSD cluster), the engine samples *declarative aggregate series*:
// a SeriesSpec names an entity prefix ("tier.", "osd."), a counter, and an
// aggregation (sum / max / mean) across the matching entities.  Histogram
// sub-metrics are addressed with a suffix ("write_lat.p99"); all quantile
// suffixes of one histogram are answered with a single batched
// Histogram::percentiles() bucket walk per entity per tick.  Each series
// keeps a bounded ring of samples for the watchdog's windowed rules, and
// (optionally) every sampled frame is retained for timeline_jsonl()/csv().

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/perf_counters.h"
#include "sim/scheduler.h"

namespace gdedup::obs {

enum class SeriesAgg {
  kSum,   // sum across matching entities
  kMax,   // max across matching entities
  kMean,  // mean across matching entities (0 when none match)
};

struct SeriesSpec {
  std::string name;           // timeline column name; unique per engine
  std::string entity_prefix;  // registry entities to aggregate over
  // Counter or gauge name, or "<histogram>.<sub>" where <sub> is one of
  // count / mean / min / max / p50 / p90 / p99 / p999.
  std::string counter;
  SeriesAgg agg = SeriesAgg::kSum;
  // Also derive a "<name>_rate" per-virtual-second column in the timeline
  // (delta between consecutive frames / interval; 0 on the first frame).
  bool rate = false;
};

// Fixed-capacity ring of samples, oldest evicted first.
class TimeSeries {
 public:
  explicit TimeSeries(size_t cap) : buf_(cap > 0 ? cap : 1) {}

  void push(double v) {
    buf_[head_] = v;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) size_++;
    total_++;
  }
  // Samples currently held (<= capacity).
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  // Samples ever pushed.
  uint64_t total() const { return total_; }
  // back(0) is the latest sample, back(size()-1) the oldest retained.
  double back(size_t ago = 0) const {
    if (ago >= size_) return 0.0;
    return buf_[(head_ + buf_.size() - 1 - ago) % buf_.size()];
  }

 private:
  std::vector<double> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_ = 0;
};

struct TelemetryConfig {
  SimTime interval = 1'000'000'000;  // sample cadence (default 1 virtual s)
  size_t ring_capacity = 512;        // per-series samples kept for rules
  bool record_timeline = true;       // retain frames for timeline dumps
  // Frame cap for very long runs; excess frames are *counted* as dropped
  // (frames_dropped()), never silently discarded without trace.  Rings keep
  // advancing regardless, so watchdog rules still see fresh samples.
  size_t max_frames = 1 << 20;
};

class TelemetryEngine {
 public:
  TelemetryEngine(Scheduler* sched, PerfRegistry* registry,
                  TelemetryConfig cfg = {});
  ~TelemetryEngine();

  TelemetryEngine(const TelemetryEngine&) = delete;
  TelemetryEngine& operator=(const TelemetryEngine&) = delete;

  // Series must be added before the first sample.
  void add_series(SeriesSpec spec);
  // The curated default timeline: client / osd / tier / pool / derived
  // aggregates.  Excludes the "sim" entity (host-scheduling-dependent) so
  // the timeline stays byte-identical across shard/thread counts.
  void add_default_series();

  // Called at the top of every tick, before counters are read — wire this
  // to Cluster::sync_telemetry_gauges() so mirrored gauges are fresh.
  void set_presample(std::function<void(SimTime)> fn) {
    presample_ = std::move(fn);
  }
  // Called after each frame is recorded — the Watchdog hooks in here.
  void set_post_sample(std::function<void(SimTime, uint64_t)> fn) {
    post_sample_ = std::move(fn);
  }

  // Schedules the first control-lane tick at now()+interval and re-arms
  // after every sample until stop().  Call from control-plane code.
  void start();
  void stop();
  bool running() const { return running_; }

  // Take one sample immediately (also usable without start(), e.g. a final
  // end-of-run frame or unit tests driving the cadence by hand).
  void sample_now();

  uint64_t ticks() const { return ticks_; }
  SimTime interval() const { return cfg_.interval; }
  const TelemetryConfig& config() const { return cfg_; }

  // Series access for the watchdog / tests; nullptr if unknown.
  const TimeSeries* series(const std::string& name) const;
  // Mean per-virtual-second rate over the last `span` sampling intervals
  // (clamped to the samples available; 0 with fewer than two samples).
  double rate(const std::string& name, int span = 1) const;

  // Timeline export.  One frame per line; fixed formatting (integral
  // values print as integers, everything else "%.3f") so output is
  // byte-stable.  Columns are the specs in declaration order plus a
  // "<name>_rate" column after each rate-enabled spec.
  std::vector<std::string> columns() const;
  std::string timeline_jsonl() const;
  std::string timeline_csv() const;
  size_t frames() const { return frame_times_.size(); }
  uint64_t frames_dropped() const { return frames_dropped_; }
  const std::vector<SimTime>& frame_times() const { return frame_times_; }

 private:
  struct SeriesState {
    SeriesSpec spec;
    // Parsed histogram addressing: counter base name + sub-metric, empty
    // sub means plain counter/gauge.
    std::string counter_base;
    std::string sub;
    TimeSeries ring;
    // entity name -> declaration index of counter_base (-1 = absent);
    // layouts are stable per entity name, so resolution is cached.
    std::unordered_map<std::string, int> index_cache;

    SeriesState(SeriesSpec s, size_t cap);
  };

  void schedule_tick();
  void on_tick();
  double sample_series(SeriesState& st,
                       const std::vector<PerfCountersRef>& entities);
  double read_value(SeriesState& st, const PerfCounters& pc, int idx) const;

  Scheduler* sched_;
  PerfRegistry* registry_;
  TelemetryConfig cfg_;
  std::vector<SeriesState> series_;
  std::unordered_map<std::string, size_t> by_name_;
  std::function<void(SimTime)> presample_;
  std::function<void(SimTime, uint64_t)> post_sample_;
  bool running_ = false;
  Scheduler::EventId tick_event_ = 0;
  bool tick_pending_ = false;
  uint64_t ticks_ = 0;
  uint64_t frames_dropped_ = 0;
  std::vector<SimTime> frame_times_;
  std::vector<std::vector<double>> frames_;  // [frame][spec]
};

// Deterministic number formatting shared by the timeline and incident
// dumps: integral values print "%lld", everything else "%.3f".
std::string format_sample(double v);

}  // namespace gdedup::obs
