#include "obs/op_tracker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "common/logging.h"

namespace gdedup::obs {

namespace {

// Shared bounds validation for the tracker rings: reject garbage loudly
// (warn + default), clamp out-of-range values loudly (warn + clamp) —
// never a silent truncation.
size_t validated_cap(long long v, size_t dflt, size_t max_cap,
                     const char* what) {
  if (v < 1) {
    LOG_WARN("op_tracker: %s=%lld out of range [1, %zu], clamping to 1", what,
             v, max_cap);
    return 1;
  }
  if (static_cast<unsigned long long>(v) > max_cap) {
    LOG_WARN("op_tracker: %s=%lld out of range [1, %zu], clamping to %zu",
             what, v, max_cap, max_cap);
    return max_cap;
  }
  (void)dflt;
  return static_cast<size_t>(v);
}

}  // namespace

size_t OpTracker::resolve_historic_cap(int configured) {
  if (configured != 0) {
    return validated_cap(configured, kDefaultHistoricCap, kMaxHistoricCap,
                         "ClusterConfig.ops_history");
  }
  const char* env = std::getenv("GDEDUP_OPS_HISTORY");
  if (env == nullptr || *env == '\0') return kDefaultHistoricCap;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') {
    LOG_WARN("op_tracker: GDEDUP_OPS_HISTORY=\"%s\" is not a number, using "
             "default %zu",
             env, kDefaultHistoricCap);
    return kDefaultHistoricCap;
  }
  return validated_cap(v, kDefaultHistoricCap, kMaxHistoricCap,
                       "GDEDUP_OPS_HISTORY");
}

size_t OpTracker::resolve_slow_cap(int configured) {
  if (configured == 0) return kDefaultSlowCap;
  return validated_cap(configured, kDefaultSlowCap, kMaxSlowCap,
                       "ClusterConfig.ops_slow_board");
}

size_t OpTrace::span_begin(std::string stage, SimTime now) {
  spans_.push_back({std::move(stage), now, -1});
  return spans_.size() - 1;
}

void OpTrace::span_end(size_t idx, SimTime now) {
  if (idx < spans_.size() && spans_[idx].end < 0) spans_[idx].end = now;
}

void OpTrace::event(std::string stage, SimTime now) {
  spans_.push_back({std::move(stage), now, now});
}

std::string OpTrace::text() const {
  char head[128];
  std::snprintf(head, sizeof(head), "id=%llu dur=%s ",
                static_cast<unsigned long long>(id_),
                duration() < 0
                    ? "?"
                    : format_duration_ns(static_cast<double>(duration()))
                          .c_str());
  std::string out = head;
  out += desc_;
  if (!spans_.empty()) {
    out += " [";
    for (size_t i = 0; i < spans_.size(); i++) {
      const TraceSpan& s = spans_[i];
      if (i) out += "; ";
      char buf[96];
      const SimTime rel = s.begin - start_;
      if (s.end < 0) {
        std::snprintf(buf, sizeof(buf), "%s @+%s(open)", s.stage.c_str(),
                      format_duration_ns(static_cast<double>(rel)).c_str());
      } else {
        std::snprintf(
            buf, sizeof(buf), "%s @+%s+%s", s.stage.c_str(),
            format_duration_ns(static_cast<double>(rel)).c_str(),
            format_duration_ns(static_cast<double>(s.end - s.begin)).c_str());
      }
      out += buf;
    }
    out += "]";
  }
  return out;
}

void OpTrace::dump(JsonWriter& w) const {
  w.begin_object();
  w.kv("id", id_);
  w.kv("desc", desc_);
  w.kv("start_ns", static_cast<int64_t>(start_));
  w.kv("duration_ns", static_cast<int64_t>(duration()));
  w.key("spans");
  w.begin_array();
  for (const TraceSpan& s : spans_) {
    w.begin_object();
    w.kv("stage", s.stage);
    w.kv("begin_ns", static_cast<int64_t>(s.begin - start_));
    w.kv("end_ns", static_cast<int64_t>(s.end < 0 ? -1 : s.end - start_));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

OpTraceRef OpTracker::start(std::string desc, SimTime now) {
  std::lock_guard<std::mutex> g(mu_);
  started_++;
  return std::make_shared<OpTrace>(next_id_++, std::move(desc), now);
}

void OpTracker::finish(const OpTraceRef& t, SimTime now) {
  if (t == nullptr || t->finish_ >= 0) return;
  std::lock_guard<std::mutex> g(mu_);
  t->finish_ = now;
  finished_++;
  historic_.push_back(t);
  if (historic_.size() > historic_cap_) historic_.pop_front();

  // Insert into the bounded slow board (duration desc, id asc).
  const auto slower = [](const OpTraceRef& a, const OpTraceRef& b) {
    if (a->duration() != b->duration()) return a->duration() > b->duration();
    return a->id() < b->id();
  };
  if (slow_.size() < slow_cap_ || slower(t, slow_.back())) {
    slow_.insert(std::upper_bound(slow_.begin(), slow_.end(), t, slower), t);
    if (slow_.size() > slow_cap_) slow_.pop_back();
  }
}

std::vector<OpTraceRef> OpTracker::dump_historic_slow_ops(size_t n) const {
  std::vector<OpTraceRef> out(slow_.begin(),
                              slow_.begin() + std::min(n, slow_.size()));
  return out;
}

std::string OpTracker::slow_ops_text(size_t n) const {
  std::string out;
  char head[96];
  std::snprintf(head, sizeof(head),
                "slow ops (top %zu of %llu finished, %llu started):\n",
                std::min(n, slow_.size()),
                static_cast<unsigned long long>(finished_),
                static_cast<unsigned long long>(started_));
  out += head;
  for (const OpTraceRef& t : dump_historic_slow_ops(n)) {
    out += "  ";
    out += t->text();
    out += "\n";
  }
  return out;
}

void OpTracker::dump(JsonWriter& w, size_t slow_n) const {
  w.begin_object();
  w.kv("started", started_);
  w.kv("finished", finished_);
  w.kv("historic", static_cast<uint64_t>(historic_.size()));
  w.key("slow");
  w.begin_array();
  for (const OpTraceRef& t : dump_historic_slow_ops(slow_n)) t->dump(w);
  w.end_array();
  w.end_object();
}

}  // namespace gdedup::obs
