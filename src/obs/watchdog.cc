#include "obs/watchdog.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace gdedup::obs {

Watchdog::Watchdog(TelemetryEngine* engine, OpTracker* tracker)
    : engine_(engine), tracker_(tracker) {
  assert(engine_ != nullptr);
}

void Watchdog::add_rule(HealthRule rule) {
  assert(!rule.name.empty());
  assert(rule.kind != RuleKind::kProbe || rule.probe != nullptr);
  if (rule.window < 1) rule.window = 1;
  if (rule.min_consecutive < 1) rule.min_consecutive = 1;
  if (rule.probe_every < 1) rule.probe_every = 1;
  rules_.push_back(std::move(rule));
  states_.push_back({});
}

void Watchdog::add_default_rules() {
  // Dedup backlog that climbs for a whole window without ever draining:
  // the rate controller has stopped keeping up (or was configured so it
  // never runs).  A healthy backlog oscillates as engine ticks drain it,
  // which breaks the monotone-growth requirement.
  {
    HealthRule r;
    r.name = "dedup_backlog_growth";
    r.kind = RuleKind::kGrowth;
    r.series = "tier_backlog";
    r.window = 12;
    r.threshold = 48;
    r.min_consecutive = 3;
    add_rule(std::move(r));
  }
  // Same shape for the deref/GC queue feeding chunk reclamation.
  {
    HealthRule r;
    r.name = "deref_backlog_growth";
    r.kind = RuleKind::kGrowth;
    r.series = "tier_backlog_derefs";
    r.window = 12;
    r.threshold = 64;
    r.min_consecutive = 3;
    add_rule(std::move(r));
  }
  // Sustained dwell above the high watermark: some tier has been in the
  // harshest throttle regime for every one of the last N samples.
  {
    HealthRule r;
    r.name = "rate_dwell_high";
    r.kind = RuleKind::kAbove;
    r.series = "tier_rate_regime";
    r.threshold = 1.5;
    r.min_consecutive = 15;
    add_rule(std::move(r));
  }
  // Recovery traffic crowding out client I/O.
  {
    HealthRule r;
    r.name = "recovery_interference";
    r.kind = RuleKind::kRatioAbove;
    r.series = "osd_pulls";
    r.series_b = "osd_client_ops";
    r.threshold = 0.5;
    r.window = 8;
    r.min_consecutive = 3;
    r.min_denominator = 1.0;  // at least 1 client op/s before judging
    add_rule(std::move(r));
  }
  // Read amplification regression: chunk objects touched per logical MiB
  // read, over the recent window.  The bound depends on the read size:
  // 256 KiB restore reads against 32 KiB chunks top out at 32/MiB with no
  // locality, but 16 KiB random reads legitimately reach 64/MiB when they
  // land on cold chunks.  The threshold sits at 48 — crossed only when
  // nearly every small-read byte is going remote with zero cache or
  // assembly-window help, which is the pathological regime.
  {
    HealthRule r;
    r.name = "read_amp_regression";
    r.kind = RuleKind::kRatioAbove;
    r.series = "tier_read_chunk_objects";
    r.series_b = "tier_read_logical_bytes";
    r.scale = 1024.0 * 1024.0;
    r.threshold = 48.0;
    r.window = 8;
    r.min_consecutive = 4;
    r.min_denominator = 256.0 * 1024.0;  // >= 0.25 MiB/s read traffic
    add_rule(std::move(r));
  }
}

void Watchdog::arm() {
  engine_->set_post_sample(
      [this](SimTime now, uint64_t tick) { on_tick(now, tick); });
}

bool Watchdog::evaluate(const HealthRule& r, RuleState& st, SimTime now,
                        uint64_t tick, double* value) const {
  *value = 0.0;
  switch (r.kind) {
    case RuleKind::kAbove: {
      const TimeSeries* s = engine_->series(r.series);
      if (s == nullptr || s->size() == 0) return false;
      *value = s->back(0) * r.scale;
      return *value > r.threshold;
    }
    case RuleKind::kRateAbove: {
      *value = engine_->rate(r.series, r.window) * r.scale;
      return *value > r.threshold;
    }
    case RuleKind::kGrowth: {
      const TimeSeries* s = engine_->series(r.series);
      if (s == nullptr ||
          s->size() < static_cast<size_t>(r.window) + 1) {
        return false;
      }
      for (int k = 0; k < r.window; k++) {
        if (s->back(static_cast<size_t>(k)) <
            s->back(static_cast<size_t>(k) + 1)) {
          return false;  // dipped at least once: it is draining
        }
      }
      *value = s->back(0) - s->back(static_cast<size_t>(r.window));
      return *value >= r.threshold;
    }
    case RuleKind::kRatioAbove: {
      const double den = engine_->rate(r.series_b, r.window);
      if (den < r.min_denominator || den <= 0.0) return false;
      const double num = engine_->rate(r.series, r.window);
      *value = num / den * r.scale;
      return *value > r.threshold;
    }
    case RuleKind::kProbe: {
      if ((tick - 1) % static_cast<uint64_t>(r.probe_every) == 0) {
        st.last_probe = r.probe(now);
      }
      *value = st.last_probe;
      return *value > r.threshold;
    }
  }
  return false;
}

void Watchdog::on_tick(SimTime now, uint64_t tick) {
  for (size_t i = 0; i < rules_.size(); i++) {
    const HealthRule& r = rules_[i];
    RuleState& st = states_[i];
    double value = 0.0;
    const bool unhealthy = evaluate(r, st, now, tick, &value);
    if (unhealthy) {
      st.unhealthy_streak++;
      st.healthy_streak = 0;
      if (!st.firing && st.unhealthy_streak >= r.min_consecutive) {
        st.firing = true;
        st.open_idx = incidents_.size();
        Incident inc;
        inc.rule = r.name;
        inc.tick = tick;
        inc.t = now;
        inc.value = value;
        inc.threshold = r.threshold;
        if (tracker_ != nullptr) {
          inc.flight_recorder = tracker_->slow_ops_text(4);
        }
        incidents_.push_back(std::move(inc));
      }
    } else {
      st.healthy_streak++;
      st.unhealthy_streak = 0;
      if (st.firing && st.healthy_streak >= r.min_consecutive) {
        st.firing = false;
        incidents_[st.open_idx].resolved_tick = static_cast<int64_t>(tick);
        incidents_[st.open_idx].resolved_t = now;
      }
    }
  }
}

size_t Watchdog::open_incidents() const {
  size_t n = 0;
  for (const Incident& inc : incidents_) {
    if (inc.resolved_tick < 0) n++;
  }
  return n;
}

std::string Watchdog::log_text(bool with_tail) const {
  std::string out;
  char buf[256];
  for (const Incident& inc : incidents_) {
    std::snprintf(buf, sizeof(buf),
                  "[t=%s tick=%llu] %s: value=%s threshold=%s",
                  format_sample(static_cast<double>(inc.t) / 1e9).c_str(),
                  static_cast<unsigned long long>(inc.tick), inc.rule.c_str(),
                  format_sample(inc.value).c_str(),
                  format_sample(inc.threshold).c_str());
    out += buf;
    if (inc.resolved_tick >= 0) {
      std::snprintf(buf, sizeof(buf), " (resolved tick=%lld)",
                    static_cast<long long>(inc.resolved_tick));
      out += buf;
    } else {
      out += " (open)";
    }
    out += '\n';
    if (with_tail && !inc.flight_recorder.empty()) {
      out += inc.flight_recorder;
    }
  }
  return out;
}

void Watchdog::incidents_json(JsonWriter& w, bool with_tail) const {
  w.begin_array();
  for (const Incident& inc : incidents_) {
    w.begin_object();
    w.kv("rule", inc.rule);
    w.kv("tick", inc.tick);
    w.kv("t_ns", static_cast<int64_t>(inc.t));
    w.kv("value", inc.value);
    w.kv("threshold", inc.threshold);
    w.kv("resolved_tick", inc.resolved_tick);
    if (with_tail) w.kv("flight_recorder", inc.flight_recorder);
    w.end_object();
  }
  w.end_array();
}

}  // namespace gdedup::obs
