#include "obs/perf_counters.h"

#include <cassert>

namespace gdedup::obs {

PerfCounters::Entry& PerfCounters::at(int idx) {
  const size_t i = static_cast<size_t>(idx - first_ - 1);
  assert(i < entries_.size());
  return entries_[i];
}

const PerfCounters::Entry& PerfCounters::at(int idx) const {
  const size_t i = static_cast<size_t>(idx - first_ - 1);
  assert(i < entries_.size());
  return entries_[i];
}

void PerfCounters::inc(int idx, uint64_t by) {
  Entry& e = at(idx);
  assert(e.type != CounterType::kHistogram);
  if (e.type == CounterType::kGauge) {
    e.gauge += static_cast<int64_t>(by);
  } else {
    e.count += by;
  }
}

void PerfCounters::dec(int idx, int64_t by) {
  Entry& e = at(idx);
  assert(e.type == CounterType::kGauge);
  e.gauge -= by;
}

void PerfCounters::set_gauge(int idx, int64_t v) {
  Entry& e = at(idx);
  assert(e.type == CounterType::kGauge);
  e.gauge = v;
}

void PerfCounters::record(int idx, uint64_t sample) {
  Entry& e = at(idx);
  assert(e.type == CounterType::kHistogram);
  e.hist->record(sample);
}

uint64_t PerfCounters::get(int idx) const {
  const Entry& e = at(idx);
  if (e.type == CounterType::kGauge) return static_cast<uint64_t>(e.gauge);
  if (e.type == CounterType::kHistogram) return e.hist->count();
  return e.count;
}

int64_t PerfCounters::gauge(int idx) const { return at(idx).gauge; }

const Histogram* PerfCounters::histogram(int idx) const {
  return at(idx).hist.get();
}

int PerfCounters::index_of(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); i++) {
    if (entries_[i].name == name) return first_ + 1 + static_cast<int>(i);
  }
  return -1;
}

void PerfCounters::dump(JsonWriter& w) const {
  w.begin_object();
  for (const Entry& e : entries_) {
    switch (e.type) {
      case CounterType::kCounter:
        w.kv(e.name, e.count);
        break;
      case CounterType::kGauge:
        w.kv(e.name, e.gauge);
        break;
      case CounterType::kHistogram:
        w.kv_raw(e.name, e.hist->json());
        break;
    }
  }
  w.end_object();
}

PerfCountersBuilder::PerfCountersBuilder(std::string entity_name, int first,
                                         int last)
    : pc_(std::make_unique<PerfCounters>()), last_(last) {
  assert(last > first + 1);
  pc_->name_ = std::move(entity_name);
  pc_->first_ = first;
  pc_->entries_.resize(static_cast<size_t>(last - first - 1));
}

void PerfCountersBuilder::add_counter(int idx, std::string name) {
  auto& e = pc_->at(idx);
  e.name = std::move(name);
  e.type = CounterType::kCounter;
}

void PerfCountersBuilder::add_gauge(int idx, std::string name) {
  auto& e = pc_->at(idx);
  e.name = std::move(name);
  e.type = CounterType::kGauge;
}

void PerfCountersBuilder::add_histogram(int idx, std::string name) {
  auto& e = pc_->at(idx);
  e.name = std::move(name);
  e.type = CounterType::kHistogram;
  e.hist = std::make_unique<Histogram>();
}

PerfCountersRef PerfCountersBuilder::create() {
  for ([[maybe_unused]] const auto& e : pc_->entries_) {
    assert(!e.name.empty() && "every index in (first, last) must be declared");
  }
  return PerfCountersRef(pc_.release());
}

void PerfRegistry::add(PerfCountersRef pc) {
  assert(pc != nullptr && !pc->name().empty());
  by_name_[pc->name()] = std::move(pc);
}

void PerfRegistry::remove(const std::string& entity_name) {
  by_name_.erase(entity_name);
}

PerfCountersRef PerfRegistry::get(const std::string& entity_name) const {
  auto it = by_name_.find(entity_name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::string PerfRegistry::unique_name(const std::string& base) {
  const int n = ++name_seq_[base];
  if (n == 1 && by_name_.find(base) == by_name_.end()) return base;
  return base + "." + std::to_string(n);
}

size_t PerfRegistry::num_counters() const {
  size_t n = 0;
  for (const auto& [name, pc] : by_name_) n += pc->size();
  return n;
}

std::vector<PerfCountersRef> PerfRegistry::sorted() const {
  std::vector<PerfCountersRef> out;
  out.reserve(by_name_.size());
  for (const auto& [name, pc] : by_name_) out.push_back(pc);
  return out;
}

void PerfRegistry::dump(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [name, pc] : by_name_) {
    w.key(name);
    pc->dump(w);
  }
  w.end_object();
}

}  // namespace gdedup::obs
