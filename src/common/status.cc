#include "common/status.h"

namespace gdedup {

std::string_view code_name(Code c) {
  switch (c) {
    case Code::kOk:
      return "Ok";
    case Code::kNotFound:
      return "NotFound";
    case Code::kExists:
      return "Exists";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kIoError:
      return "IoError";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kCorruption:
      return "Corruption";
    case Code::kBusy:
      return "Busy";
    case Code::kTimedOut:
      return "TimedOut";
    case Code::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  std::string s(code_name(code_));
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace gdedup
