#pragma once

// key=value command-line options for the benchmark/example binaries.
//
//   bench_fig10 chunk_size=32768 osds=16 seed=7
//
// Unknown keys abort with a usage message so experiment sweeps can't
// silently typo a parameter name.

#include <cstdint>
#include <map>
#include <string>

namespace gdedup {

class Options {
 public:
  // Parses argv; calls std::exit(2) with usage on malformed input or if
  // "help" is requested.
  Options(int argc, char** argv, std::string usage = "");

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& dflt) const;
  int64_t get_int(const std::string& key, int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  // Call after all get()s: aborts if any provided key was never queried
  // (catches typos in sweep scripts).
  void check_unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
  std::string usage_;
};

}  // namespace gdedup
