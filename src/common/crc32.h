#pragma once

// CRC32C (Castagnoli) — the checksum RADOS uses on the wire and on disk.
// We stamp message payloads and journal records with it; the corruption
// tests flip bits and expect Code::kCorruption.

#include <cstdint>
#include <span>

namespace gdedup {

uint32_t crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace gdedup
