#pragma once

// Error handling primitives used across the library.
//
// The storage data path avoids exceptions: operations return Status or
// Result<T>.  Codes deliberately mirror the small set of errno-style
// conditions a RADOS-like object store surfaces to clients.

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gdedup {

enum class Code {
  kOk = 0,
  kNotFound,       // object / pool / key does not exist
  kExists,         // create-exclusive target already exists
  kInvalidArgument,
  kOutOfRange,     // offset beyond object bounds where not allowed
  kIoError,        // injected or simulated device failure
  kUnavailable,    // no OSD up for the placement group
  kCorruption,     // checksum / decode failure
  kBusy,           // resource temporarily unavailable (e.g. mid-recovery)
  kTimedOut,
  kAborted,        // transaction / op cancelled (e.g. injected crash)
};

std::string_view code_name(Code c);

// Value-semantic status: Ok or (code, message).
class Status {
 public:
  Status() = default;  // Ok
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }
  static Status not_found(std::string msg = "not found") {
    return {Code::kNotFound, std::move(msg)};
  }
  static Status exists(std::string msg = "already exists") {
    return {Code::kExists, std::move(msg)};
  }
  static Status invalid(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  static Status out_of_range(std::string msg) {
    return {Code::kOutOfRange, std::move(msg)};
  }
  static Status io_error(std::string msg) {
    return {Code::kIoError, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  static Status corruption(std::string msg) {
    return {Code::kCorruption, std::move(msg)};
  }
  static Status busy(std::string msg) { return {Code::kBusy, std::move(msg)}; }
  static Status timed_out(std::string msg) {
    return {Code::kTimedOut, std::move(msg)};
  }
  static Status aborted(std::string msg) {
    return {Code::kAborted, std::move(msg)};
  }

  bool is_ok() const { return code_ == Code::kOk; }
  explicit operator bool() const { return is_ok(); }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string to_string() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  Code code_ = Code::kOk;
  std::string msg_;
};

// Result<T>: either a value or a non-Ok Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from Ok status requires a value");
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gdedup
