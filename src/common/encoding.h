#pragma once

// Little-endian wire/xattr encoding.
//
// Dedup metadata (chunk maps, reference sets) is persisted inside object
// xattrs, so it needs a stable byte encoding that survives replication,
// erasure coding and recovery — this is that encoding.  Decoding is
// defensive: short or garbled input yields Status, never UB.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace gdedup {

class Encoder {
 public:
  void put_u8(uint8_t v) { bytes_.push_back(v); }
  void put_u16(uint16_t v) { put_raw(&v, 2); }
  void put_u32(uint32_t v) { put_raw(&v, 4); }
  void put_u64(uint64_t v) { put_raw(&v, 8); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s) {
    put_u32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }
  void put_bytes(const Buffer& b) {
    put_u32(static_cast<uint32_t>(b.size()));
    put_raw(b.data(), b.size());
  }

  // ULEB128: 7 value bits per byte, high bit = continuation.  Small values
  // (offsets, lengths, counts) shrink to 1–3 bytes; the packed chunk-map
  // entry codec is built on this.
  void put_varint(uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(v));
  }

  Buffer finish() const { return Buffer::copy_of(bytes_.data(), bytes_.size()); }
  size_t size() const { return bytes_.size(); }

 private:
  void put_raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }
  std::vector<uint8_t> bytes_;
};

class Decoder {
 public:
  explicit Decoder(const Buffer& b) : buf_(b) {}

  Status get_u8(uint8_t* out) { return get_raw(out, 1); }
  Status get_u16(uint16_t* out) { return get_raw(out, 2); }
  Status get_u32(uint32_t* out) { return get_raw(out, 4); }
  Status get_u64(uint64_t* out) { return get_raw(out, 8); }
  Status get_bool(bool* out) {
    uint8_t v = 0;
    auto s = get_u8(&v);
    if (s.is_ok()) *out = (v != 0);
    return s;
  }
  Status get_string(std::string* out) {
    uint32_t n = 0;
    if (auto s = get_u32(&n); !s.is_ok()) return s;
    if (pos_ + n > buf_.size()) return Status::corruption("short string");
    out->assign(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
    pos_ += n;
    return Status::ok();
  }
  Status get_bytes(Buffer* out) {
    uint32_t n = 0;
    if (auto s = get_u32(&n); !s.is_ok()) return s;
    if (pos_ + n > buf_.size()) return Status::corruption("short bytes");
    *out = buf_.slice(pos_, n);
    pos_ += n;
    return Status::ok();
  }

  // ULEB128 decode; caps at 10 bytes (ceil(64/7)) so garbage can't loop.
  Status get_varint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= buf_.size()) return Status::corruption("short varint");
      const uint8_t b = buf_.data()[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        *out = v;
        return Status::ok();
      }
    }
    return Status::corruption("varint overflow");
  }

  bool at_end() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  Status get_raw(void* out, size_t n) {
    if (pos_ + n > buf_.size()) return Status::corruption("short read");
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::ok();
  }

  const Buffer& buf_;
  size_t pos_ = 0;
};

}  // namespace gdedup
