#include "common/buffer.h"

#include <algorithm>
#include <atomic>

namespace gdedup {

uint64_t Buffer::next_generation() {
  // Global monotonic counter.  Exec-pool workers construct Buffers (EC
  // shards, decode outputs), so this must be thread-safe; relaxed order
  // suffices because only *uniqueness* matters — generations are compared
  // for equality in cache keys, never ordered or digested.  Starts at 1 so
  // gen 0 means "no storage yet".
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Buffer::detach() {
  const bool sole = store_ && store_.use_count() == 1 && off_ == 0 &&
                    len_ == store_->size();
  if (sole) return;
  auto fresh = std::make_shared<std::vector<uint8_t>>(len_);
  if (len_ > 0) std::memcpy(fresh->data(), store_->data() + off_, len_);
  store_ = std::move(fresh);
  off_ = 0;
}

uint8_t* Buffer::mutable_data() {
  if (!store_) {
    store_ = std::make_shared<std::vector<uint8_t>>();
    off_ = len_ = 0;
    gen_ = next_generation();
    return store_->data();
  }
  detach();
  gen_ = next_generation();  // caller may write through the pointer
  return store_->data();
}

Buffer Buffer::slice(size_t off, size_t len) const {
  Buffer b;
  if (off >= len_) return b;
  b.store_ = store_;
  b.off_ = off_ + off;
  b.len_ = std::min(len, len_ - off);
  b.gen_ = gen_;  // same bytes until someone detaches
  return b;
}

Buffer Buffer::concat(const Buffer& a, const Buffer& b) {
  Buffer out(a.size() + b.size());
  uint8_t* p = out.mutable_data();
  if (a.size() > 0) std::memcpy(p, a.data(), a.size());
  if (b.size() > 0) std::memcpy(p + a.size(), b.data(), b.size());
  return out;
}

void Buffer::write_at(size_t off, const Buffer& src) {
  const size_t need = off + src.size();
  if (need > len_) resize(need);
  if (src.size() > 0) {
    std::memcpy(mutable_data() + off, src.data(), src.size());
  }
}

void Buffer::resize(size_t len) {
  if (len == len_) return;
  detach();
  if (!store_) store_ = std::make_shared<std::vector<uint8_t>>();
  store_->resize(len);
  len_ = len;
  gen_ = next_generation();
}

}  // namespace gdedup
