#pragma once

// Standard Bloom filter.
//
// The paper stores each HitSet on disk and keeps an in-memory Bloom filter
// for existence checks (Section 5, "Cache management"); this is that
// filter.  Also reused by the local-dedup baseline's fingerprint cache.

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace gdedup {

class BloomFilter {
 public:
  // Sized for `expected_entries` at `false_positive_rate`.
  BloomFilter(size_t expected_entries, double false_positive_rate);

  void insert(uint64_t key);
  bool maybe_contains(uint64_t key) const;
  void clear();

  size_t bit_count() const { return bits_.size() * 64; }
  int hash_count() const { return hashes_; }
  size_t inserted() const { return inserted_; }

  // Predicted false-positive probability at current fill.
  double estimated_fp_rate() const;

 private:
  std::vector<uint64_t> bits_;
  int hashes_;
  size_t inserted_ = 0;
};

}  // namespace gdedup
