#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GDEDUP_HAVE_SSE42 1
#include <nmmintrin.h>
#endif

namespace gdedup {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial

std::array<std::array<uint32_t, 256>, 8> build_tables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t[0][i] = crc;
  }
  for (int j = 1; j < 8; j++) {
    for (uint32_t i = 0; i < 256; i++) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xff];
    }
  }
  return t;
}

const auto kTables = build_tables();

// Slicing-by-8: two 32-bit table fans per 8-byte load.
uint32_t crc_sw(uint32_t crc, const uint8_t* p, size_t n) {
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    const uint32_t lo = crc ^ static_cast<uint32_t>(v);
    const uint32_t hi = static_cast<uint32_t>(v >> 32);
    crc = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
          kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#if GDEDUP_HAVE_SSE42

__attribute__((target("sse4.2"))) uint32_t crc_hw(uint32_t crc,
                                                  const uint8_t* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

#endif  // GDEDUP_HAVE_SSE42

using CrcFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

CrcFn resolve_crc() {
#if GDEDUP_HAVE_SSE42
  if (__builtin_cpu_supports("sse4.2")) return crc_hw;
#endif
  return crc_sw;
}

}  // namespace

uint32_t crc32c(std::span<const uint8_t> data, uint32_t seed) {
  static const CrcFn fn = resolve_crc();
  return ~fn(~seed, data.data(), data.size());
}

}  // namespace gdedup
