#include "common/crc32.h"

#include <array>

namespace gdedup {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial

std::array<std::array<uint32_t, 256>, 4> build_tables() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; i++) {
    t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
    t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
    t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
  }
  return t;
}

const auto kTables = build_tables();

}  // namespace

uint32_t crc32c(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t crc = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();
  // Slice-by-4.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables[3][crc & 0xff] ^ kTables[2][(crc >> 8) & 0xff] ^
          kTables[1][(crc >> 16) & 0xff] ^ kTables[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace gdedup
