#include "common/options.h"

#include <cstdio>
#include <cstdlib>

namespace gdedup {

Options::Options(int argc, char** argv, std::string usage)
    : usage_(std::move(usage)) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "help" || arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: %s [key=value ...]\n%s\n", argv[0],
                   usage_.c_str());
      std::exit(2);
    }
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad argument '%s' (expected key=value)\n",
                   arg.c_str());
      std::exit(2);
    }
    kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

bool Options::has(const std::string& key) const {
  used_[key] = true;
  return kv_.count(key) > 0;
}

std::string Options::get(const std::string& key, const std::string& dflt) const {
  used_[key] = true;
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : it->second;
}

int64_t Options::get_int(const std::string& key, int64_t dflt) const {
  used_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Options::get_double(const std::string& key, double dflt) const {
  used_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool dflt) const {
  used_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

void Options::check_unused() const {
  bool bad = false;
  for (const auto& [k, v] : kv_) {
    if (!used_.count(k)) {
      std::fprintf(stderr, "unknown option '%s=%s'\n", k.c_str(), v.c_str());
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "%s\n", usage_.c_str());
    std::exit(2);
  }
}

}  // namespace gdedup
